(* adapt_pnc — command-line interface to the ADAPT-pNC reproduction.

   Subcommands:
     datasets         list the 15 benchmark datasets
     train            train one model on one dataset and evaluate it
     ablate           run the Fig. 7 ablation variants on one dataset
     hwcost           Table III row for one dataset
     augment-preview  Fig. 6 augmentation showcase
     spice-char       mu extraction and filter characterization
     tune-aug         random-search augmentation hyper-parameters *)

open Cmdliner

module Config = Pnc_exp.Config
module Experiments = Pnc_exp.Experiments
module Registry = Pnc_data.Registry
module Dataset = Pnc_data.Dataset
module Rng = Pnc_util.Rng
module Obs = Pnc_obs.Obs

(* Common arguments ------------------------------------------------------- *)

let dataset_arg =
  let doc = "Benchmark dataset name (see `adapt_pnc datasets`)." in
  Arg.(value & opt string "PowerCons" & info [ "d"; "dataset" ] ~docv:"NAME" ~doc)

let seed_arg =
  let doc = "Random seed." in
  Arg.(value & opt int 0 & info [ "seed" ] ~docv:"SEED" ~doc)

let scale_arg =
  let doc = "Experiment scale: smoke, fast or paper." in
  Arg.(value & opt string "fast" & info [ "scale" ] ~docv:"SCALE" ~doc)

let jobs_arg =
  let doc =
    "Worker domains for Monte-Carlo evaluation (0 or 1 = sequential; results are identical \
     for every worker count, only wall-clock changes)."
  in
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

(* Evaluation pool from --jobs: sizes <= 1 skip pool creation entirely
   so the default CLI behaviour is byte-for-byte the sequential path. *)
let with_jobs jobs f =
  if jobs <= 1 then f None
  else Pnc_util.Pool.with_pool ~size:jobs (fun pool -> f (Some pool))

(* Observability: --metrics-out installs the JSONL sink for the whole
   command (and appends a final metrics snapshot); --trace prints the
   span tree to stderr as it closes. Neither flag changes any computed
   number — telemetry is read-only (see docs/OBSERVABILITY.md). *)

let metrics_out_arg =
  let doc =
    "Write telemetry (per-epoch training records, Monte-Carlo throughput, pool utilization) \
     as JSON Lines to $(docv). With no sink installed the instrumentation is inert."
  in
  Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)

let trace_arg =
  let doc = "Print span open/close lines (with durations) to stderr." in
  Arg.(value & flag & info [ "trace" ] ~doc)

let with_obs ~metrics_out ~trace f =
  Obs.trace_stderr := trace;
  match metrics_out with
  | None -> f ()
  | Some path ->
      Obs.with_jsonl ~path (fun () ->
          let r = f () in
          Obs.emit_metrics ();
          r)

let config_of ~scale =
  Config.of_scale (Config.scale_of_string scale)

let check_dataset name =
  if not (List.mem name Registry.names) then (
    Printf.eprintf "unknown dataset %s; available: %s\n" name (String.concat ", " Registry.names);
    exit 1)

(* datasets ---------------------------------------------------------------- *)

let datasets_cmd =
  let run () =
    let t = Pnc_util.Table.create ~header:[ "Name"; "Classes"; "Samples (default)" ] in
    List.iter
      (fun spec ->
        Pnc_util.Table.add_row t
          [
            spec.Registry.name;
            string_of_int spec.Registry.n_classes;
            string_of_int spec.Registry.default_n;
          ])
      Registry.all;
    Pnc_util.Table.print t
  in
  Cmd.v (Cmd.info "datasets" ~doc:"List the 15 benchmark datasets (Table I).")
    Term.(const run $ const ())

(* train -------------------------------------------------------------------- *)

let variant_of_string = function
  | "elman" -> Experiments.Reference
  | "ptpnc" | "baseline" -> Experiments.Base
  | "va" -> Experiments.Va
  | "at" -> Experiments.At
  | "so-lf" | "so" -> Experiments.So_lf
  | "adapt" | "full" -> Experiments.Full
  | "ni" -> Experiments.Ni
  | s -> invalid_arg ("unknown model variant: " ^ s)

let model_arg =
  let doc = "Model variant: elman, ptpnc, va, at, so-lf, adapt or ni." in
  Arg.(value & opt string "adapt" & info [ "m"; "model" ] ~docv:"MODEL" ~doc)

let corr_arg =
  let doc =
    "Correlated-variation spec RHO,CLEN or RHO,CLEN,TEMP_C,AGE_HOURS: attaches a \
     distance-kernel correlation (and optionally a SPICE-characterized drift operating \
     point) to the +NI training spec and the corr+var metric. Without it the built-in \
     default (0.5,2.0) is used for those and everything else is untouched."
  in
  Arg.(value & opt (some string) None & info [ "corr" ] ~docv:"SPEC" ~doc)

let apply_corr cfg = function
  | None -> cfg
  | Some s -> { cfg with Config.corr = Some (Config.corr_of_string s) }

let checkpoint_dir_arg =
  let doc =
    "Write a resumable training checkpoint to $(docv)/train.ckpt (atomically, every \
     --checkpoint-every epochs) and the final trained model to $(docv)/model.ckpt."
  in
  Arg.(value & opt (some string) None & info [ "checkpoint-dir" ] ~docv:"DIR" ~doc)

let checkpoint_every_arg =
  let doc = "Epochs between training checkpoints (with --checkpoint-dir)." in
  Arg.(value & opt int 1 & info [ "checkpoint-every" ] ~docv:"N" ~doc)

let resume_arg =
  let doc = "Resume from DIR/train.ckpt (with --checkpoint-dir); the completed run is \
             bit-identical to an uninterrupted one." in
  Arg.(value & flag & info [ "resume" ] ~doc)

let die_at_epoch_arg =
  let doc =
    "Simulate a crash: exit right after writing the checkpoint for epoch $(docv) (for \
     testing crash-safe resume; see `make resume-demo`)."
  in
  Arg.(value & opt (some int) None & info [ "die-at-epoch" ] ~docv:"EPOCH" ~doc)

let train_cmd =
  let run dataset model seed scale jobs ckpt_dir ckpt_every resume die_at corr metrics_out
      trace =
    check_dataset dataset;
    let cfg = apply_corr (config_of ~scale) corr in
    let variant = variant_of_string model in
    let train_ckpt = Option.map (fun d -> Filename.concat d "train.ckpt") ckpt_dir in
    (* Resolve --resume before creating the checkpoint directory: a
       missing train.ckpt used to fall through to [None] here, silently
       training from scratch and then overwriting the directory the
       user asked to resume from. That is never what --resume means. *)
    let resume_from =
      match (resume, train_ckpt) with
      | false, _ -> None
      | true, None ->
          prerr_endline "--resume requires --checkpoint-dir";
          exit 2
      | true, Some p ->
          if Sys.file_exists p then Some p
          else begin
            Printf.eprintf
              "--resume: no checkpoint at %s (nothing to resume; run without --resume to \
               start a fresh run)\n"
              p;
            exit 2
          end
    in
    Option.iter
      (fun d ->
        if not (Sys.file_exists d) then
          try Sys.mkdir d 0o755
          with Sys_error msg ->
            Printf.eprintf
              "cannot create checkpoint directory: %s (does the parent directory exist?)\n"
              msg;
            exit 2)
      ckpt_dir;
    Printf.printf "training %s on %s (seed %d, scale %s)...\n%!"
      (Experiments.variant_name variant)
      dataset seed scale;
    let r =
      try
        with_obs ~metrics_out ~trace (fun () ->
            with_jobs jobs (fun pool ->
                Experiments.train_run ?pool ~checkpoint_every:ckpt_every
                  ?checkpoint_path:train_ckpt ?resume_from ?die_at_epoch:die_at cfg ~dataset
                  ~variant ~seed))
      with Pnc_core.Train.Killed e ->
        Printf.printf "simulated crash after epoch %d; checkpoint written%s\n" e
          (match train_ckpt with Some p -> " to " ^ p | None -> "");
        exit 0
    in
    Option.iter
      (fun d ->
        let path = Filename.concat d "model.ckpt" in
        Pnc_core.Persist.save_model ~path r.Experiments.model;
        Printf.printf "model checkpoint:                         %s\n" path)
      ckpt_dir;
    Printf.printf "epochs:                                   %d (%.1f s)\n" r.Experiments.epochs
      r.Experiments.train_seconds;
    Printf.printf "accuracy, clean:                          %.3f\n" r.Experiments.clean_acc;
    Printf.printf "accuracy, ±10%% components:                %.3f\n" r.Experiments.clean_var_acc;
    Printf.printf "accuracy, augmented test + ±10%% (Tab. I): %.3f\n" r.Experiments.aug_var_acc;
    Printf.printf "accuracy, perturbed inputs + ±10%%:        %.3f\n" r.Experiments.pert_var_acc;
    Printf.printf "accuracy, correlated ±10%% + drift:        %.3f\n" r.Experiments.corr_var_acc;
    match r.Experiments.model with
    | Pnc_core.Model.Circuit net ->
        Printf.printf "hardware: %s, %.3f mW\n"
          (Pnc_core.Hardware.describe (Pnc_core.Hardware.of_network net))
          (Pnc_core.Hardware.power_mw net)
    | Pnc_core.Model.Reference _ -> ()
  in
  Cmd.v
    (Cmd.info "train" ~doc:"Train one model on one dataset and evaluate it as the paper does.")
    Term.(
      const run $ dataset_arg $ model_arg $ seed_arg $ scale_arg $ jobs_arg
      $ checkpoint_dir_arg $ checkpoint_every_arg $ resume_arg $ die_at_epoch_arg
      $ corr_arg $ metrics_out_arg $ trace_arg)

(* eval ---------------------------------------------------------------------- *)

(* Shared by eval and serve. Resolution happens at this entry point
   (explicit flag, else ADAPT_PNC_PRECISION, else exact) — library
   defaults never read the environment. *)
let precision_arg =
  let doc =
    "Activation tier for the no-grad evaluation kernels: $(b,exact) is bit-identical to \
     training; $(b,fast) swaps in a bounded fast tanh (absolute tanh error at most 1e-7) \
     for throughput. Defaults to \\$ADAPT_PNC_PRECISION, else exact."
  in
  Arg.(
    value
    & opt (some (enum [ ("exact", `Exact); ("fast", `Fast) ])) None
    & info [ "precision" ] ~docv:"TIER" ~doc)

let eval_cmd =
  let load_arg =
    let doc = "Model or train checkpoint to evaluate (written by `train --checkpoint-dir`)." in
    Arg.(required & opt (some string) None & info [ "load" ] ~docv:"FILE" ~doc)
  in
  let draws_arg =
    let doc = "Monte-Carlo draws for accuracy under variation." in
    Arg.(value & opt int 10 & info [ "draws" ] ~docv:"N" ~doc)
  in
  let level_arg =
    let doc = "Component variation level (0.1 = ±10%)." in
    Arg.(value & opt float 0.1 & info [ "level" ] ~docv:"L" ~doc)
  in
  let batch_size_arg =
    let doc =
      "Evaluation batch size (rows per kernel call on the batched no-grad path). 0 or \
       negative means the whole test split as one block; results are identical for every \
       value — this is a throughput knob only."
    in
    Arg.(value & opt int 0 & info [ "batch-size" ] ~docv:"N" ~doc)
  in
  let run load dataset seed scale draws level batch precision jobs metrics_out trace =
    let batch_size = if batch > 0 then Some batch else None in
    let precision = Pnc_core.Batch.resolve_precision ?precision () in
    check_dataset dataset;
    let cfg = config_of ~scale in
    let model =
      match Pnc_core.Persist.load_model ~path:load with
      | Ok m -> m
      | Error e ->
          Printf.eprintf "cannot load %s: %s\n" load (Pnc_ckpt.Ckpt.error_to_string e);
          exit 1
    in
    let raw = Registry.load ?n:cfg.Pnc_exp.Config.dataset_n ~seed dataset in
    let split = Dataset.preprocess (Rng.create ~seed:(seed + 1000)) raw in
    let test = split.Dataset.test in
    with_obs ~metrics_out ~trace (fun () ->
        with_jobs jobs (fun pool ->
            Printf.printf "%s on %s (test set, seed %d, %s precision)\n"
              (Pnc_core.Model.label model) dataset seed
              (Pnc_core.Batch.precision_name precision);
            Printf.printf "accuracy, clean:            %.3f\n"
              (Pnc_core.Train.accuracy ?batch_size ~precision model test);
            if Pnc_core.Model.is_circuit model then
              Printf.printf "accuracy, ±%.0f%% components: %.3f (%d draws)\n"
                (100. *. level)
                (Pnc_core.Train.accuracy_under_variation ?batch_size ~precision ?pool
                   ~rng:(Rng.create ~seed:(seed + 4000))
                   ~spec:(Pnc_core.Variation.uniform level) ~draws model test)
                draws))
  in
  Cmd.v
    (Cmd.info "eval"
       ~doc:"Evaluate a checkpointed model on a dataset (batched no-grad fast path), clean \
             and under variation.")
    Term.(
      const run $ load_arg $ dataset_arg $ seed_arg $ scale_arg $ draws_arg $ level_arg
      $ batch_size_arg $ precision_arg $ jobs_arg $ metrics_out_arg $ trace_arg)

(* stream -------------------------------------------------------------------- *)

module Scenario = Pnc_stream.Scenario
module Online = Pnc_stream.Online

let stream_cmd =
  let samples_arg =
    let doc = "Stream length, in samples." in
    Arg.(value & opt int 96 & info [ "samples" ] ~docv:"N" ~doc)
  in
  let length_arg =
    let doc = "Time steps per stream sample (the series length fed to the circuit)." in
    Arg.(value & opt int 64 & info [ "length" ] ~docv:"T" ~doc)
  in
  let drift_at_arg =
    let doc =
      "Inject concept drift: labels rotate by --drift-shift from stream index $(docv) on. \
       Absent = drift-free stream."
    in
    Arg.(value & opt (some int) None & info [ "drift-at" ] ~docv:"I" ~doc)
  in
  let drift_ramp_arg =
    let doc = "Gradual-drift ramp, in samples (0 = abrupt change point)." in
    Arg.(value & opt int 0 & info [ "drift-ramp" ] ~docv:"N" ~doc)
  in
  let drift_shift_arg =
    let doc = "Label rotation amount at the change point (mod n_classes)." in
    Arg.(value & opt int 1 & info [ "drift-shift" ] ~docv:"K" ~doc)
  in
  let burst_rate_arg =
    let doc = "Probability that a stream sample carries one gaussian noise burst." in
    Arg.(value & opt float 0. & info [ "burst-rate" ] ~docv:"P" ~doc)
  in
  let burst_sigma_arg =
    let doc = "Noise sigma inside a burst." in
    Arg.(value & opt float 0.5 & info [ "burst-sigma" ] ~docv:"S" ~doc)
  in
  let dropout_rate_arg =
    let doc = "Per-time-step sample-and-hold dropout probability." in
    Arg.(value & opt float 0. & info [ "dropout-rate" ] ~docv:"P" ~doc)
  in
  let wander_amp_arg =
    let doc = "Baseline-wander amplitude (0 = off)." in
    Arg.(value & opt float 0. & info [ "wander-amp" ] ~docv:"A" ~doc)
  in
  let wander_period_arg =
    let doc = "Baseline-wander period, in units of stream samples." in
    Arg.(value & opt float 8. & info [ "wander-period" ] ~docv:"P" ~doc)
  in
  let width_arg =
    let doc = "Evaluation window width, in samples." in
    Arg.(value & opt int 16 & info [ "width" ] ~docv:"W" ~doc)
  in
  let stride_arg =
    let doc = "Window stride (0 = same as --width, i.e. non-overlapping windows)." in
    Arg.(value & opt int 0 & info [ "stride" ] ~docv:"S" ~doc)
  in
  let state_init_arg =
    let doc =
      "Filter initial-voltage semantics per window: $(b,v0) (the drawn device V0, the \
       offline-parity default), $(b,zero) (settled circuit) or $(b,rand) (fresh gaussian \
       V[0] per window from its own seeded stream, sigma from --state-sigma)."
    in
    Arg.(
      value
      & opt (enum [ ("v0", `V0); ("zero", `Zero); ("rand", `Rand) ]) `V0
      & info [ "state-init" ] ~docv:"INIT" ~doc)
  in
  let state_sigma_arg =
    let doc = "Gaussian sigma for --state-init rand." in
    Arg.(value & opt float 0.1 & info [ "state-sigma" ] ~docv:"S" ~doc)
  in
  let adapt_arg =
    let doc =
      "Online test-time adaptation: $(b,off) (frozen baseline), $(b,filters) (adapt only \
       the learnable filter parameters) or $(b,all). When on, the frozen baseline is \
       always computed too, on the same realizations, for the ablation."
    in
    Arg.(
      value
      & opt (enum [ ("off", Online.Off); ("filters", Online.Filters); ("all", Online.All) ])
          Online.Off
      & info [ "adapt" ] ~docv:"MODE" ~doc)
  in
  let adapt_lr_arg =
    let doc = "Adaptation learning rate." in
    Arg.(value & opt float 0.05 & info [ "adapt-lr" ] ~docv:"LR" ~doc)
  in
  let adapt_steps_arg =
    let doc = "Optimizer steps per window when adaptation is on." in
    Arg.(value & opt int 2 & info [ "adapt-steps" ] ~docv:"N" ~doc)
  in
  let detect_baseline_arg =
    let doc = "Windows averaged into the drift detector's reference level." in
    Arg.(value & opt int 3 & info [ "detect-baseline" ] ~docv:"N" ~doc)
  in
  let detect_drop_arg =
    let doc = "Accuracy drop below the reference level that fires the drift detector." in
    Arg.(value & opt float 0.25 & info [ "detect-drop" ] ~docv:"D" ~doc)
  in
  let batch_size_arg =
    let doc =
      "Window-scoring batch size (rows per kernel call); 0 = each window as one block. A \
       throughput knob only — results are identical for every value."
    in
    Arg.(value & opt int 0 & info [ "batch-size" ] ~docv:"N" ~doc)
  in
  let cache_dir_arg =
    let doc =
      "Grid-cell cache directory (same files and keys as `grid run --cache-dir`): the \
       trained model is loaded from it when present, written to it otherwise."
    in
    Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR" ~doc)
  in
  let run dataset model seed scale samples length drift_at drift_ramp drift_shift burst_rate
      burst_sigma dropout_rate wander_amp wander_period width stride state_init state_sigma
      adapt adapt_lr adapt_steps detect_baseline detect_drop batch cache_dir jobs metrics_out
      trace =
    check_dataset dataset;
    let cfg = config_of ~scale in
    let variant = variant_of_string model in
    let drift =
      Option.map
        (fun drift_at ->
          {
            Scenario.drift_at;
            kind = (if drift_ramp > 0 then Scenario.Gradual drift_ramp else Scenario.Abrupt);
            shift = drift_shift;
          })
        drift_at
    in
    let perturb =
      { Scenario.burst_rate; burst_sigma; dropout_rate; wander_amp; wander_period }
    in
    let scenario =
      try Scenario.make ~length ?drift ~perturb ~dataset ~n_samples:samples ~seed ()
      with Invalid_argument msg ->
        Printf.eprintf "bad scenario: %s\n" msg;
        exit 1
    in
    let state_init =
      match state_init with
      | `V0 -> `V0
      | `Zero -> `Zero
      | `Rand -> `Randomized state_sigma
    in
    let protocol =
      {
        Online.width;
        stride = (if stride > 0 then stride else width);
        state_init;
        adapt;
        adapt_lr;
        adapt_steps;
        detect_baseline;
        detect_drop;
      }
    in
    let batch_size = if batch > 0 then Some batch else None in
    with_obs ~metrics_out ~trace (fun () ->
        with_jobs jobs (fun pool ->
            let sr =
              Experiments.stream_run ?batch_size ?pool ?cache_dir cfg ~scenario ~protocol
                ~variant ~seed
            in
            Experiments.print_stream ~scenario ~protocol sr))
  in
  Cmd.v
    (Cmd.info "stream"
       ~doc:"Run a model over a synthetic sensor stream (drift, bursts, dropouts, wander) \
             through the sliding-window evaluator, optionally with online test-time \
             adaptation against the frozen baseline.")
    Term.(
      const run $ dataset_arg $ model_arg $ seed_arg $ scale_arg $ samples_arg $ length_arg
      $ drift_at_arg $ drift_ramp_arg $ drift_shift_arg $ burst_rate_arg $ burst_sigma_arg
      $ dropout_rate_arg $ wander_amp_arg $ wander_period_arg $ width_arg $ stride_arg
      $ state_init_arg $ state_sigma_arg $ adapt_arg $ adapt_lr_arg $ adapt_steps_arg
      $ detect_baseline_arg $ detect_drop_arg $ batch_size_arg $ cache_dir_arg $ jobs_arg
      $ metrics_out_arg $ trace_arg)

(* serve --------------------------------------------------------------------- *)

let serve_cmd =
  let load_arg =
    let doc =
      "Model or train checkpoint to serve (written by `train --checkpoint-dir`). The file \
       is polled for changes and hot-reloaded atomically (see --reload-every-ms)."
    in
    Arg.(required & opt (some string) None & info [ "load" ] ~docv:"FILE" ~doc)
  in
  let host_arg =
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"ADDR" ~doc:"Bind address.")
  in
  let port_arg =
    let doc = "TCP port (0 picks an ephemeral port, printed at startup)." in
    Arg.(value & opt int 8080 & info [ "p"; "port" ] ~docv:"PORT" ~doc)
  in
  let max_batch_arg =
    let doc = "Flush the admission queue once this many rows have coalesced." in
    Arg.(value & opt int 64 & info [ "max-batch" ] ~docv:"ROWS" ~doc)
  in
  let max_delay_arg =
    let doc =
      "Flush when the oldest queued request has waited this long (milliseconds), even if \
       the batch is not full — the latency bound under light load."
    in
    Arg.(value & opt float 2.0 & info [ "max-delay-ms" ] ~docv:"MS" ~doc)
  in
  let batch_size_arg =
    let doc =
      "Kernel block size for the batched forward (rows per kernel call); 0 or negative \
       runs each coalesced batch as one block. A throughput knob only — served logits are \
       identical for every value."
    in
    Arg.(value & opt int 0 & info [ "batch-size" ] ~docv:"N" ~doc)
  in
  let reload_arg =
    let doc = "Checkpoint poll period for hot reload, in milliseconds (0 disables)." in
    Arg.(value & opt float 500.0 & info [ "reload-every-ms" ] ~docv:"MS" ~doc)
  in
  let run load host port max_batch max_delay_ms batch precision reload_ms jobs metrics_out
      trace =
    let precision = Pnc_core.Batch.resolve_precision ?precision () in
    let config =
      {
        Pnc_serve.Serve.default_config with
        host;
        port;
        max_batch;
        max_delay_s = max_delay_ms /. 1000.;
        batch_size = (if batch > 0 then Some batch else None);
        precision;
        pool_size = jobs;
        reload_every_s = reload_ms /. 1000.;
      }
    in
    with_obs ~metrics_out ~trace (fun () ->
        match Pnc_serve.Serve.create ~config ~checkpoint:load () with
        | Error msg ->
            Printf.eprintf "serve: %s\n" msg;
            exit 1
        | Ok srv ->
            Printf.printf "serving %s (model version %d, %s precision) on http://%s:%d\n%!"
              (Pnc_serve.Serve.model_label srv)
              (Pnc_serve.Serve.model_version srv)
              (Pnc_core.Batch.precision_name precision)
              host (Pnc_serve.Serve.port srv);
            Printf.printf
              "micro-batching: flush at %d rows or %.1f ms; hot reload: %s; SIGINT/SIGTERM \
               drain and exit\n%!"
              max_batch max_delay_ms
              (if reload_ms > 0. then Printf.sprintf "every %.0f ms" reload_ms else "off");
            Pnc_serve.Serve.run srv;
            print_endline "serve: drained and stopped.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Serve a checkpointed model over HTTP/1.1 with dynamic micro-batching (see \
             docs/SERVING.md).")
    Term.(
      const run $ load_arg $ host_arg $ port_arg $ max_batch_arg $ max_delay_arg
      $ batch_size_arg $ precision_arg $ reload_arg $ jobs_arg $ metrics_out_arg
      $ trace_arg)

(* ckpt ---------------------------------------------------------------------- *)

let ckpt_cmd =
  let file_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"Checkpoint file.")
  in
  let inspect =
    let run file =
      match Pnc_ckpt.Ckpt.load ~path:file with
      | Ok ck -> print_string (Pnc_ckpt.Ckpt.inspect ck)
      | Error e ->
          Printf.eprintf "%s: %s\n" file (Pnc_ckpt.Ckpt.error_to_string e);
          exit 1
    in
    Cmd.v
      (Cmd.info "inspect"
         ~doc:"Validate a checkpoint (magic, version, CRCs) and print its header.")
      Term.(const run $ file_arg)
  in
  Cmd.group
    (Cmd.info "ckpt" ~doc:"Checkpoint utilities (see docs/CHECKPOINTS.md).")
    [ inspect ]

(* grid ---------------------------------------------------------------------- *)

(* Process-sharded experiment grid over the checkpoint cache (see
   docs/GRID.md). Workers coordinate solely through the cache
   directory: claim files for in-progress cells, atomic renames for
   results — so `run` is resumable, crash-tolerant and shard-count
   invariant, and `merge` is byte-identical however the cells got
   there. *)

module Grid = Pnc_grid.Grid

let cache_dir_arg =
  let doc =
    "Grid cache directory — the only coordination channel between workers. Created by \
     $(b,run)/$(b,worker); $(b,status) and $(b,merge) require it to exist."
  in
  Arg.(required & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR" ~doc)

let grid_datasets_arg =
  let doc =
    "Restrict the grid to $(docv) (repeatable). Default: every dataset of the scale. Cells \
     are keyed independently of this selection, so narrowing or widening it reuses the cache."
  in
  Arg.(value & opt_all string [] & info [ "d"; "dataset" ] ~docv:"NAME" ~doc)

let grid_variants_arg =
  let doc = "Variant set: $(b,all) (six variants, every artifact), $(b,table1) or $(b,fig7)." in
  Arg.(value & opt string "all" & info [ "variants" ] ~docv:"SET" ~doc)

let lease_ttl_arg =
  let doc =
    "Seconds before a live-pid claim is considered hung and reaped. Dead-pid claims are \
     reaped immediately regardless."
  in
  Arg.(value & opt float 3600. & info [ "lease-ttl" ] ~docv:"SECONDS" ~doc)

let grid_config ~scale ~precision ~datasets =
  let cfg = config_of ~scale in
  let precision = Pnc_core.Batch.resolve_precision ?precision () in
  let cfg = { cfg with Pnc_exp.Config.precision } in
  match datasets with
  | [] -> cfg
  | ds ->
      List.iter check_dataset ds;
      { cfg with Pnc_exp.Config.datasets = ds }

let grid_variants_of ~variants:s =
  try Grid.variants_of_string s
  with Invalid_argument msg ->
    Printf.eprintf "grid: %s\n" msg;
    exit 2

let require_cache_dir dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then begin
    Printf.eprintf
      "grid: no cache directory at %s (run `adapt_pnc grid run --cache-dir %s` first)\n" dir dir;
    exit 2
  end

let grid_worker_cmd =
  let worker_id_arg =
    let doc = "Shard label used in claim files and telemetry." in
    Arg.(value & opt int 0 & info [ "worker-id" ] ~docv:"N" ~doc)
  in
  let run cache_dir scale datasets variants_s precision lease_ttl worker_id metrics_out trace =
    let variants = grid_variants_of ~variants:variants_s in
    let cfg = grid_config ~scale ~precision ~datasets in
    Grid.mkdir_p cache_dir;
    with_obs ~metrics_out ~trace (fun () ->
        let cells = Grid.cells_of_config ~dir:cache_dir cfg ~variants in
        let owner = Printf.sprintf "worker-%d" worker_id in
        let n =
          Grid.Proto.work ~lease_ttl ~progress:(Printf.eprintf "%s\n%!") ~owner cells
        in
        Printf.printf "[%s] grid complete: computed %d of %d cells\n" owner n
          (List.length cells))
  in
  Cmd.v
    (Cmd.info "worker"
       ~doc:"One grid worker process (spawned by `grid run`; also usable standalone — \
             workers sharing a cache dir shard the grid between them).")
    Term.(
      const run $ cache_dir_arg $ scale_arg $ grid_datasets_arg $ grid_variants_arg
      $ precision_arg $ lease_ttl_arg $ worker_id_arg $ metrics_out_arg $ trace_arg)

let grid_run_cmd =
  let shards_arg =
    let doc =
      "Worker processes to shard the grid across (1 = in-process, no subprocess). Results \
       are invariant to the shard count; only wall-clock changes."
    in
    Arg.(value & opt int 1 & info [ "shards" ] ~docv:"N" ~doc)
  in
  let run cache_dir shards scale datasets variants_s precision lease_ttl metrics_out trace =
    if shards < 1 then begin
      Printf.eprintf "grid run: --shards must be >= 1 (got %d)\n" shards;
      exit 2
    end;
    let variants = grid_variants_of ~variants:variants_s in
    let cfg = grid_config ~scale ~precision ~datasets in
    Grid.mkdir_p cache_dir;
    with_obs ~metrics_out ~trace (fun () ->
        if shards = 1 then begin
          let cells = Grid.cells_of_config ~dir:cache_dir cfg ~variants in
          let n =
            Grid.Proto.work ~lease_ttl ~progress:(Printf.eprintf "%s\n%!") ~owner:"worker-0"
              cells
          in
          Printf.printf "grid complete: %d cells (%d computed, %d from cache)\n"
            (List.length cells) n
            (List.length cells - n)
        end
        else begin
          let precision_s =
            Pnc_core.Batch.precision_name cfg.Pnc_exp.Config.precision
          in
          let argv ~worker_id =
            Array.of_list
              ([
                 Sys.executable_name; "grid"; "worker"; "--cache-dir"; cache_dir; "--scale";
                 scale; "--variants"; variants_s; "--precision"; precision_s; "--lease-ttl";
                 Printf.sprintf "%g" lease_ttl; "--worker-id"; string_of_int worker_id;
               ]
              @ List.concat_map (fun d -> [ "--dataset"; d ]) datasets
              @ (match metrics_out with
                | Some f -> [ "--metrics-out"; Printf.sprintf "%s.worker%d" f worker_id ]
                | None -> [])
              @ if trace then [ "--trace" ] else [])
          in
          let exits = Grid.spawn_workers ~shards ~argv in
          List.iter
            (fun (worker_id, st) ->
              match st with
              | Unix.WEXITED 0 -> ()
              | Unix.WEXITED c ->
                  Printf.eprintf "grid run: worker-%d exited with code %d\n" worker_id c
              | Unix.WSIGNALED s ->
                  Printf.eprintf "grid run: worker-%d killed by signal %d\n" worker_id s
              | Unix.WSTOPPED s ->
                  Printf.eprintf "grid run: worker-%d stopped by signal %d\n" worker_id s)
            exits;
          let st = Grid.status ~lease_ttl ~dir:cache_dir cfg ~variants in
          if st.Grid.done_ = st.Grid.total then
            Printf.printf "grid complete: %d cells across %d workers\n" st.Grid.total shards
          else begin
            (* Workers only exit early when killed or crashed; the grid
               is resumable — rerunning picks up exactly the missing
               cells. *)
            Grid.print_status st;
            Printf.eprintf "grid run: incomplete (%d of %d cells done); rerun to resume\n"
              st.Grid.done_ st.Grid.total;
            exit 1
          end
        end)
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Compute the (dataset × variant × seed) grid, sharded across worker processes \
             coordinating only through the cache directory. Resumable: cached cells are \
             skipped, a killed run continues where it stopped.")
    Term.(
      const run $ cache_dir_arg $ shards_arg $ scale_arg $ grid_datasets_arg
      $ grid_variants_arg $ precision_arg $ lease_ttl_arg $ metrics_out_arg $ trace_arg)

let grid_status_cmd =
  let json_arg =
    let doc = "Emit JSON Lines (one object per cell plus a summary) instead of the table." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let run cache_dir scale datasets variants_s precision lease_ttl json =
    let variants = grid_variants_of ~variants:variants_s in
    let cfg = grid_config ~scale ~precision ~datasets in
    require_cache_dir cache_dir;
    let st = Grid.status ~lease_ttl ~dir:cache_dir cfg ~variants in
    if json then List.iter print_endline (Grid.status_json_lines st) else Grid.print_status st
  in
  Cmd.v
    (Cmd.info "status"
       ~doc:"Cells done/claimed/stale/pending for a grid cache, with an ETA from the \
             cached per-cell timings. Stale means present-but-untrustworthy (corrupt cell, \
             interrupted write, dead worker's claim): it will be recomputed, never trusted.")
    Term.(
      const run $ cache_dir_arg $ scale_arg $ grid_datasets_arg $ grid_variants_arg
      $ precision_arg $ lease_ttl_arg $ json_arg)

let grid_merge_cmd =
  let run cache_dir scale datasets variants_s precision =
    let variants = grid_variants_of ~variants:variants_s in
    let cfg = grid_config ~scale ~precision ~datasets in
    require_cache_dir cache_dir;
    match Grid.merge ~dir:cache_dir cfg ~variants with
    | Ok runs -> Grid.print_merged cfg ~variants runs
    | Error missing ->
        Printf.eprintf "grid merge: %d cells missing or invalid:\n" (List.length missing);
        List.iter (fun id -> Printf.eprintf "  %s\n" id) missing;
        Printf.eprintf "run `adapt_pnc grid run --cache-dir %s` to compute them\n" cache_dir;
        exit 3
  in
  Cmd.v
    (Cmd.info "merge"
       ~doc:"Assemble the paper tables from cached cells only (no training). Deterministic: \
             byte-identical output for every shard count and completion order; exits 3 if \
             any cell is missing.")
    Term.(
      const run $ cache_dir_arg $ scale_arg $ grid_datasets_arg $ grid_variants_arg
      $ precision_arg)

let grid_cmd =
  Cmd.group
    (Cmd.info "grid"
       ~doc:"Process-sharded experiment grid over the checkpoint cache (see docs/GRID.md).")
    [ grid_run_cmd; grid_worker_cmd; grid_status_cmd; grid_merge_cmd ]

(* ablate -------------------------------------------------------------------- *)

let ablate_cmd =
  let run dataset seed scale jobs corr metrics_out trace =
    check_dataset dataset;
    let cfg = apply_corr (config_of ~scale) corr in
    let t =
      Pnc_util.Table.create
        ~header:[ "Configuration"; "clean+var"; "perturbed+var"; "corr+var" ]
    in
    with_obs ~metrics_out ~trace (fun () ->
        with_jobs jobs (fun pool ->
            List.iter
              (fun variant ->
                Printf.eprintf "training %s...\n%!" (Experiments.variant_name variant);
                let r =
                  Obs.Span.with_
                    ~attrs:[ ("variant", Obs.Str (Experiments.variant_name variant)) ]
                    "ablate.variant"
                    (fun () -> Experiments.train_run ?pool cfg ~dataset ~variant ~seed)
                in
                Pnc_util.Table.add_row t
                  [
                    Experiments.variant_name variant;
                    Printf.sprintf "%.3f" r.Experiments.clean_var_acc;
                    Printf.sprintf "%.3f" r.Experiments.pert_var_acc;
                    Printf.sprintf "%.3f" r.Experiments.corr_var_acc;
                  ])
              Experiments.ablate_variants));
    Printf.printf "Fig. 7 ablation (+NI extension) on %s (seed %d):\n" dataset seed;
    Pnc_util.Table.print t
  in
  Cmd.v
    (Cmd.info "ablate"
       ~doc:"Run the Fig. 7 ablation variants, plus the +NI noise-injection extension, on \
             one dataset. The corr+var column evaluates every variant under the same \
             correlated-variation draws (--corr, default 0.5,2.0).")
    Term.(
      const run $ dataset_arg $ seed_arg $ scale_arg $ jobs_arg $ corr_arg $ metrics_out_arg
      $ trace_arg)

(* hwcost -------------------------------------------------------------------- *)

let hwcost_cmd =
  let run dataset seed scale =
    check_dataset dataset;
    let cfg = config_of ~scale in
    let row variant =
      Printf.eprintf "training %s...\n%!" (Experiments.variant_name variant);
      let r = Experiments.train_run cfg ~dataset ~variant ~seed in
      match r.Experiments.model with
      | Pnc_core.Model.Circuit net ->
          (Pnc_core.Hardware.of_network net, Pnc_core.Hardware.power_mw net)
      | _ -> assert false
    in
    let bc, bp = row Experiments.Base in
    let ac, ap = row Experiments.Full in
    Printf.printf "Table III row for %s:\n" dataset;
    Printf.printf "  pTPNC:     %s, %.3f mW\n" (Pnc_core.Hardware.describe bc) bp;
    Printf.printf "  ADAPT-pNC: %s, %.3f mW\n" (Pnc_core.Hardware.describe ac) ap;
    Printf.printf "  devices x%.2f, power %.0f%% saving\n"
      (float_of_int (Pnc_core.Hardware.total ac) /. float_of_int (Pnc_core.Hardware.total bc))
      (100. *. (1. -. (ap /. bp)))
  in
  Cmd.v (Cmd.info "hwcost" ~doc:"Device counts and power for one dataset (Table III).")
    Term.(const run $ dataset_arg $ seed_arg $ scale_arg)

(* augment-preview ------------------------------------------------------------- *)

let augment_preview_cmd =
  let run seed =
    Experiments.print_fig6 (Experiments.fig6 ~seed ())
  in
  Cmd.v (Cmd.info "augment-preview" ~doc:"Show the augmentation transforms (Fig. 6).")
    Term.(const run $ seed_arg)

(* spice-char -------------------------------------------------------------------- *)

let spice_char_cmd =
  let run () =
    Experiments.print_mu_survey (Experiments.mu_survey ());
    Experiments.filter_characterization ();
    (* Activation circuit: DC sweep of the 2T/2R stage and the eta fit
       (the circuit-level grounding of Ptanh's parameters). *)
    let e, rms = Pnc_core.Ptanh_circuit.characterize () in
    Printf.printf
      "ptanh circuit fit (after inverter): eta1=%.3f eta2=%.3f eta3=%.3f eta4=%.3f (rms %.4f)\n"
      e.Pnc_core.Ptanh_circuit.eta1 e.Pnc_core.Ptanh_circuit.eta2 e.Pnc_core.Ptanh_circuit.eta3
      e.Pnc_core.Ptanh_circuit.eta4 rms;
    (* Temperature/aging drift of the learnable-filter RC, extracted by
       transient tau fits at each operating point (docs/VARIATION.md). *)
    let pts =
      Pnc_spice.Drift.survey ~r:330. ~c:1e-5 ~dt:Pnc_core.Printed.dt ()
    in
    Printf.printf "\nfilter RC drift characterization (tau-fit multipliers):\n";
    let t =
      Pnc_util.Table.create
        ~header:[ "temp (C)"; "age (h)"; "R mult"; "C mult"; "fit rms" ]
    in
    List.iter
      (fun p ->
        Pnc_util.Table.add_row t
          [
            Printf.sprintf "%.0f" p.Pnc_spice.Drift.temp_c;
            Printf.sprintf "%.0f" p.Pnc_spice.Drift.age_hours;
            Printf.sprintf "%.4f" p.Pnc_spice.Drift.r_mult;
            Printf.sprintf "%.4f" p.Pnc_spice.Drift.c_mult;
            Printf.sprintf "%.2e" p.Pnc_spice.Drift.fit_rms;
          ])
      pts;
    Pnc_util.Table.print t
  in
  Cmd.v
    (Cmd.info "spice-char"
       ~doc:"Extract the coupling factor mu and characterize the printed filters (SPICE-lite).")
    Term.(const run $ const ())

(* tune-aug ----------------------------------------------------------------------- *)

let tune_aug_cmd =
  let budget_arg =
    Arg.(value & opt int 8 & info [ "budget" ] ~docv:"N" ~doc:"Number of random candidates.")
  in
  let run dataset seed budget =
    check_dataset dataset;
    let raw = Registry.load ~seed dataset in
    let split = Dataset.preprocess (Rng.create ~seed:(seed + 1)) raw in
    let eval policy =
      (* Score a policy by validation accuracy of a quickly trained
         ADAPT-pNC on policy-augmented data. *)
      let arng = Rng.create ~seed:(seed + 2) in
      let aug d = Pnc_augment.Augment.augment_dataset arng policy ~copies:1 d in
      let s = { split with Dataset.train = aug split.Dataset.train; valid = aug split.Dataset.valid } in
      let net =
        Pnc_core.Network.create (Rng.create ~seed:(seed + 3)) Pnc_core.Network.Adapt ~inputs:1
          ~classes:raw.Dataset.n_classes
      in
      let model = Pnc_core.Model.Circuit net in
      let _ = Pnc_core.Train.train ~rng:(Rng.create ~seed:(seed + 4)) Pnc_core.Train.smoke_config model s in
      let acc = Pnc_core.Train.accuracy model split.Dataset.valid in
      Printf.eprintf "  %.3f  %s\n%!" acc (Pnc_augment.Augment.describe_policy policy);
      acc
    in
    let best = Pnc_augment.Tune.search (Rng.create ~seed:(seed + 5)) ~budget ~eval in
    Printf.printf "best policy (val acc %.3f): %s\n" best.Pnc_augment.Tune.score
      (Pnc_augment.Augment.describe_policy best.Pnc_augment.Tune.policy)
  in
  Cmd.v
    (Cmd.info "tune-aug"
       ~doc:"Random-search augmentation hyper-parameters (the Ray Tune substitute).")
    Term.(const run $ dataset_arg $ seed_arg $ budget_arg)

(* nas -------------------------------------------------------------------------- *)

let nas_cmd =
  let budget_arg =
    Arg.(value & opt int 6 & info [ "budget" ] ~docv:"N" ~doc:"Number of random architectures.")
  in
  let run dataset seed scale budget =
    check_dataset dataset;
    let cfg = config_of ~scale in
    let progress g = Printf.eprintf "evaluating %s...\n%!" g in
    let candidates = Pnc_exp.Search.random_search ~progress cfg ~dataset ~seed ~budget in
    let t =
      Pnc_util.Table.create
        ~header:[ "Architecture"; "val acc (±10%)"; "test acc (±10%)"; "#devices"; "power mW" ]
    in
    List.iter
      (fun c ->
        Pnc_util.Table.add_row t
          [
            Pnc_exp.Search.describe_genome c.Pnc_exp.Search.genome;
            Printf.sprintf "%.3f" c.Pnc_exp.Search.val_acc;
            Printf.sprintf "%.3f" c.Pnc_exp.Search.test_acc;
            string_of_int c.Pnc_exp.Search.devices;
            Printf.sprintf "%.3f" c.Pnc_exp.Search.power_mw;
          ])
      candidates;
    Printf.printf "architecture search on %s (%d candidates):\n" dataset (List.length candidates);
    Pnc_util.Table.print t;
    print_endline "accuracy/devices Pareto front:";
    List.iter
      (fun c ->
        Printf.printf "  %-28s acc %.3f, %d devices\n"
          (Pnc_exp.Search.describe_genome c.Pnc_exp.Search.genome)
          c.Pnc_exp.Search.val_acc c.Pnc_exp.Search.devices)
      (Pnc_exp.Search.pareto_front candidates)
  in
  Cmd.v
    (Cmd.info "nas"
       ~doc:"Random architecture search over hidden width, filter order, VA and AT (future work).")
    Term.(const run $ dataset_arg $ seed_arg $ scale_arg $ budget_arg)

(* export ------------------------------------------------------------------------ *)

let export_cmd =
  let run dataset seed =
    check_dataset dataset;
    let cfg = config_of ~scale:"smoke" in
    Printf.eprintf "training a small ADAPT-pNC on %s to export...\n%!" dataset;
    let r = Experiments.train_run cfg ~dataset ~variant:Experiments.Full ~seed in
    match r.Experiments.model with
    | Pnc_core.Model.Circuit net ->
        print_string (Pnc_core.Netlist_export.deck net);
        (match Pnc_core.Network.layers net with
        | (cb, _, _) :: _ ->
            let inputs = Array.make (Pnc_core.Crossbar.inputs cb) 0.5 in
            let ok = Pnc_core.Netlist_export.dc_check cb ~inputs ~max_abs_error:1e-9 in
            Printf.eprintf "DC cross-check of layer-1 crossbar at V_in = 0.5 V: %s\n"
              (if ok then "netlist matches Eq. (1)" else "MISMATCH")
        | [] -> ())
    | Pnc_core.Model.Reference _ -> ()
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:"Train a circuit and print its SPICE deck (crossbars and filter stages).")
    Term.(const run $ dataset_arg $ seed_arg)

(* describe --------------------------------------------------------------------- *)

let describe_cmd =
  let run dataset seed =
    check_dataset dataset;
    let d = Registry.load ~seed dataset in
    print_endline (Pnc_data.Describe.report ~seed d)
  in
  Cmd.v
    (Cmd.info "describe"
       ~doc:"Dataset diagnostics: class balance, separability, 1-NN reference accuracy.")
    Term.(const run $ dataset_arg $ seed_arg)

(* sensitivity ------------------------------------------------------------------- *)

let sensitivity_cmd =
  let level_arg =
    Arg.(value & opt float 0.1 & info [ "level" ] ~docv:"L" ~doc:"Variation level (0.1 = ±10%).")
  in
  let run dataset seed level jobs metrics_out trace =
    check_dataset dataset;
    let cfg = config_of ~scale:"smoke" in
    Printf.eprintf "training an ADAPT-pNC on %s...\n%!" dataset;
    with_obs ~metrics_out ~trace (fun () ->
        with_jobs jobs (fun pool ->
            let r = Experiments.train_run ?pool cfg ~dataset ~variant:Experiments.Full ~seed in
            match r.Experiments.model with
            | Pnc_core.Model.Circuit net ->
                let raw = Registry.load ?n:cfg.Pnc_exp.Config.dataset_n ~seed dataset in
                let split = Dataset.preprocess (Rng.create ~seed:(seed + 1000)) raw in
                let rows =
                  Pnc_core.Sensitivity.analyze ?pool ~rng:(Rng.create ~seed:77) ~level ~draws:10
                    net split.Dataset.test
                in
                Printf.printf "component-family sensitivity on %s at ±%.0f%%:\n%s\n" dataset
                  (100. *. level)
                  (Pnc_core.Sensitivity.report rows)
            | Pnc_core.Model.Reference _ -> ()))
  in
  Cmd.v
    (Cmd.info "sensitivity"
       ~doc:"Which printed component family drives the accuracy loss under variation.")
    Term.(
      const run $ dataset_arg $ seed_arg $ level_arg $ jobs_arg $ metrics_out_arg $ trace_arg)

(* discretize --------------------------------------------------------------------- *)

let discretize_cmd =
  let run dataset seed =
    check_dataset dataset;
    let cfg = config_of ~scale:"smoke" in
    Printf.eprintf "training an ADAPT-pNC on %s...\n%!" dataset;
    let r = Experiments.train_run cfg ~dataset ~variant:Experiments.Full ~seed in
    match r.Experiments.model with
    | Pnc_core.Model.Circuit net ->
        let raw = Registry.load ?n:cfg.Pnc_exp.Config.dataset_n ~seed dataset in
        let split = Dataset.preprocess (Rng.create ~seed:(seed + 1000)) raw in
        let ladder =
          Pnc_core.Discretize.accuracy_ladder ~levels_list:[ 2; 3; 4; 6; 8; 16; 32 ] net
            split.Dataset.test
        in
        Printf.printf "conductance discretization ladder on %s (continuous acc %.3f):\n" dataset
          r.Experiments.clean_acc;
        List.iter (fun (l, acc) -> Printf.printf "  %2d ink levels: acc %.3f\n" l acc) ladder
    | Pnc_core.Model.Reference _ -> ()
  in
  Cmd.v
    (Cmd.info "discretize"
       ~doc:"Accuracy after snapping the trained conductances to k printable ink levels.")
    Term.(const run $ dataset_arg $ seed_arg)

let () =
  let doc = "ADAPT-pNC: robustness-aware printed temporal neuromorphic circuits (DATE 2025)" in
  let info = Cmd.info "adapt_pnc" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            datasets_cmd;
            train_cmd;
            eval_cmd;
            stream_cmd;
            serve_cmd;
            ckpt_cmd;
            grid_cmd;
            ablate_cmd;
            hwcost_cmd;
            augment_preview_cmd;
            spice_char_cmd;
            tune_aug_cmd;
            nas_cmd;
            export_cmd;
            describe_cmd;
            sensitivity_cmd;
            discretize_cmd;
          ]))
