(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section (see DESIGN.md section 3 and EXPERIMENTS.md).

   Sections, in order:
   - Fig. 6    augmentation showcase (PowerCons)
   - Sec III-2 coupling-factor (mu) extraction via SPICE-lite
   - Fig. 4    printed filter characterization (cutoffs)
   - Table I   accuracy on the 15 benchmarks (3 model families)
   - Fig. 5    baseline degradation under variation
   - Fig. 7    ablation (VA / AT / SO-LF / combined)
   - Table III hardware costs and power
   - Table II  runtime (Timer means + Bechamel microbenchmark)

   Scale via ADAPT_PNC_SCALE=smoke|fast|paper (default fast). *)

module Config = Pnc_exp.Config
module Experiments = Pnc_exp.Experiments
module Obs = Pnc_obs.Obs

let progress msg = Printf.eprintf "[bench] %s\n%!" msg

(* Table II microbenchmark: one Bechamel test per model family, each
   running a single full-batch training epoch on the first dataset. *)
let bechamel_table2 cfg =
  let open Bechamel in
  let open Toolkit in
  let dataset = List.hd cfg.Config.datasets in
  let raw = Pnc_data.Registry.load ?n:cfg.Config.dataset_n ~seed:0 dataset in
  let split = Pnc_data.Dataset.preprocess (Pnc_util.Rng.create ~seed:1) raw in
  let classes = raw.Pnc_data.Dataset.n_classes in
  let rng = Pnc_util.Rng.create ~seed:2 in
  let mk_epoch model train_cfg =
    let x, y = Pnc_core.Train.to_xy split.Pnc_data.Dataset.train in
    let params = Pnc_core.Model.params model in
    let opt = Pnc_optim.Optimizer.adamw ~params () in
    fun () ->
      Pnc_optim.Optimizer.zero_grads opt;
      let loss =
        Pnc_core.Mc_loss.expected ~rng ~spec:train_cfg.Pnc_core.Train.variation
          ~n:train_cfg.Pnc_core.Train.mc_samples model ~x ~labels:y
      in
      Pnc_autodiff.Var.backward loss;
      Pnc_optim.Optimizer.step opt ~lr:1e-4
  in
  let elman =
    mk_epoch
      (Pnc_core.Model.Reference (Pnc_core.Elman.create rng ~inputs:1 ~classes))
      cfg.Config.train_base
  in
  let ptpnc =
    mk_epoch
      (Pnc_core.Model.Circuit
         (Pnc_core.Network.create ~hidden:(max 2 classes) rng Pnc_core.Network.Ptpnc ~inputs:1
            ~classes))
      cfg.Config.train_base
  in
  let adapt =
    mk_epoch
      (Pnc_core.Model.Circuit
         (Pnc_core.Network.create ~hidden:(max 4 (2 * classes)) rng Pnc_core.Network.Adapt
            ~inputs:1 ~classes))
      cfg.Config.train_va
  in
  let tests =
    Test.make_grouped ~name:"epoch" ~fmt:"%s %s"
      [
        Test.make ~name:"elman-rnn" (Staged.stage elman);
        Test.make ~name:"ptpnc-baseline" (Staged.stage ptpnc);
        Test.make ~name:"adapt-pnc" (Staged.stage adapt);
      ]
  in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |] in
  let instances = Instance.[ monotonic_clock ] in
  let bench_cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 2.0) ~kde:(Some 10) () in
  let raw_results = Benchmark.all bench_cfg instances tests in
  let results = List.map (fun instance -> Analyze.all ols instance raw_results) instances in
  let merged = Analyze.merge ols instances results in
  print_endline "Table II (Bechamel) - one training epoch, monotonic clock";
  let clock = Hashtbl.find merged (Measure.label Instance.monotonic_clock) in
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some (est :: _) ->
          Printf.printf "  %-28s %s/epoch\n" name (Pnc_util.Timer.fmt_seconds (est *. 1e-9))
      | _ -> Printf.printf "  %-28s (no estimate)\n" name)
    clock;
  print_newline ()

(* Tentpole benchmark: throughput of accuracy evaluation under
   variation — the Var-graph path (builds the full autodiff DAG per
   draw) against the no-grad tensor fast path used by Model.predict /
   Mc_loss.expected_value. Also reports training epochs/s for
   context. *)
let bench_eval_throughput cfg =
  let dataset = List.hd cfg.Config.datasets in
  let raw = Pnc_data.Registry.load ?n:cfg.Config.dataset_n ~seed:0 dataset in
  let split = Pnc_data.Dataset.preprocess (Pnc_util.Rng.create ~seed:1) raw in
  let classes = raw.Pnc_data.Dataset.n_classes in
  let rng = Pnc_util.Rng.create ~seed:2 in
  let net =
    Pnc_core.Network.create ~hidden:(max 4 (2 * classes)) rng Pnc_core.Network.Adapt ~inputs:1
      ~classes
  in
  let x, y = Pnc_core.Train.to_xy split.Pnc_data.Dataset.test in
  let spec = Pnc_core.Variation.uniform 0.1 in
  let n_draws = 20 in
  let eval_with forward () =
    let r = Pnc_util.Rng.create ~seed:7 in
    for _ = 1 to n_draws do
      let draw = Pnc_core.Variation.make_draw r spec in
      let pred = forward ~draw in
      ignore (Pnc_util.Stats.accuracy ~pred ~truth:y)
    done
  in
  let eval_var =
    eval_with (fun ~draw ->
        Pnc_tensor.Tensor.argmax_rows
          (Pnc_autodiff.Var.value (Pnc_core.Network.forward ~draw net x)))
  in
  let eval_fast = eval_with (fun ~draw -> Pnc_core.Network.predict ~draw net x) in
  eval_var ();
  eval_fast ();
  let t_var = Pnc_util.Timer.time_mean ~repeats:3 eval_var in
  let t_fast = Pnc_util.Timer.time_mean ~repeats:3 eval_fast in
  let per_draw t = t /. float_of_int n_draws in
  let emit_throughput path t =
    if Obs.enabled () then
      Obs.emit "bench.throughput"
        [
          ("section", Obs.Str "eval");
          ("path", Obs.Str path);
          ("draws", Obs.Int n_draws);
          ("seconds", Obs.Float t);
          ("draws_per_s", Obs.Float (1. /. per_draw t));
        ]
  in
  print_endline "Eval throughput - accuracy under +-10% variation, ADAPT net, test split";
  Printf.printf "  Var graph path               %8.1f draws/s (%s per draw)\n"
    (1. /. per_draw t_var)
    (Pnc_util.Timer.fmt_seconds (per_draw t_var));
  Printf.printf "  no-grad tensor path          %8.1f draws/s (%s per draw)\n"
    (1. /. per_draw t_fast)
    (Pnc_util.Timer.fmt_seconds (per_draw t_fast));
  Printf.printf "  speedup                      %8.2fx\n" (t_var /. t_fast);
  emit_throughput "var" t_var;
  emit_throughput "tensor" t_fast;

  (* Batched vs single-sample no-grad path. Three regimes over the same
     protocol:
     - single-sample: one [forward_t] call per series — the scalar
       client loop the batched engine replaces. Evaluating one physical
       instance sample by sample forces the caller to replay the draw
       (copy the stream) for every series, so each call pays a full
       realization on top of the [1 x time] kernels.
     - chunked block=1: [predict_batch ~batch_size:1] — realize once,
       then per-sample row blocks through the blocked kernels.
     - batched: the whole split as one block (t_fast above).
     All three produce bit-identical predictions (checked below); only
     throughput changes. *)
  let rows = Pnc_tensor.Tensor.rows x in
  let scalar_predict ~rng_draw =
    Array.init rows (fun i ->
        (* Same physical instance for every series: replay the draw's
           stream per call, as a scalar consumer must. *)
        let draw = Pnc_core.Variation.make_draw (Pnc_util.Rng.copy rng_draw) spec in
        (Pnc_core.Network.predict ~draw net
           (Pnc_tensor.Tensor.rows_view x ~row:i ~len:1)).(0))
  in
  let eval_scalar () =
    let r = Pnc_util.Rng.create ~seed:7 in
    for _ = 1 to n_draws do
      let pred = scalar_predict ~rng_draw:r in
      (* Advance the parent stream exactly like [make_draw] + realize
         does on the batched paths. *)
      ignore (Pnc_core.Network.predict ~draw:(Pnc_core.Variation.make_draw r spec) net
                (Pnc_tensor.Tensor.rows_view x ~row:0 ~len:1));
      ignore (Pnc_util.Stats.accuracy ~pred ~truth:y)
    done
  in
  let eval_chunked =
    eval_with (fun ~draw -> Pnc_core.Network.predict_batch ~batch_size:1 ~draw net x)
  in
  eval_scalar ();
  eval_chunked ();
  let t_scalar = Pnc_util.Timer.time_mean ~repeats:3 eval_scalar in
  let t_chunked = Pnc_util.Timer.time_mean ~repeats:3 eval_chunked in
  let batch_parity =
    let r1 = Pnc_util.Rng.create ~seed:7
    and r2 = Pnc_util.Rng.create ~seed:7
    and r3 = Pnc_util.Rng.create ~seed:7 in
    let ok = ref true in
    for _ = 1 to n_draws do
      let scalar = scalar_predict ~rng_draw:r1 in
      (* Advance r1's stream by one realization, like the other paths. *)
      ignore
        (Pnc_core.Network.predict ~draw:(Pnc_core.Variation.make_draw r1 spec) net
           (Pnc_tensor.Tensor.rows_view x ~row:0 ~len:1));
      let whole = Pnc_core.Network.predict ~draw:(Pnc_core.Variation.make_draw r2 spec) net x in
      let chunked =
        Pnc_core.Network.predict_batch ~batch_size:1
          ~draw:(Pnc_core.Variation.make_draw r3 spec) net x
      in
      if scalar <> whole || chunked <> whole then ok := false
    done;
    !ok
  in
  let emit_batch ?(precision = `Exact) ?extra path batch_size t =
    if Obs.enabled () then
      Obs.emit "bench.batch"
        ([
           ("path", Obs.Str path);
           ("precision", Obs.Str (Pnc_core.Batch.precision_name precision));
           ("batch_size", Obs.Int batch_size);
           ("rows", Obs.Int rows);
           ("draws", Obs.Int n_draws);
           ("seconds", Obs.Float t);
           ("draws_per_s", Obs.Float (1. /. per_draw t));
           ("speedup_vs_single", Obs.Float (t_scalar /. t));
         ]
        @ Option.value extra ~default:[ ("parity", Obs.Str (if batch_parity then "ok" else "VIOLATION")) ])
  in
  Printf.printf "  single-sample scalar loop    %8.1f draws/s (%s per draw)\n"
    (1. /. per_draw t_scalar)
    (Pnc_util.Timer.fmt_seconds (per_draw t_scalar));
  Printf.printf "  chunked (batch 1)            %8.1f draws/s (%s per draw)\n"
    (1. /. per_draw t_chunked)
    (Pnc_util.Timer.fmt_seconds (per_draw t_chunked));
  Printf.printf "  batched speedup              %8.2fx over single-sample (%d rows/block)%s\n"
    (t_scalar /. t_fast) rows
    (if batch_parity then "" else "  PARITY VIOLATION");
  emit_batch "single" 1 t_scalar;
  emit_batch "chunked" 1 t_chunked;
  emit_batch "batched" rows t_fast;

  (* Precision tier: the same whole-split batched evaluation with the
     `Fast rational-tanh kernel (<=1e-7 absolute error per activation,
     see lib/tensor/fast_math.mli). Its parity contract is a bounded
     drift, not bit-identity: max |logit delta| against `Exact under
     the same draw, plus the prediction agreement rate. *)
  let eval_tier precision =
    eval_with (fun ~draw -> Pnc_core.Network.predict_batch ~precision ~draw net x)
  in
  let eval_exact_tier = eval_tier `Exact and eval_fast_tier = eval_tier `Fast in
  eval_exact_tier ();
  eval_fast_tier ();
  let t_exact_tier = Pnc_util.Timer.time_mean ~repeats:3 eval_exact_tier in
  let t_fast_tier = Pnc_util.Timer.time_mean ~repeats:3 eval_fast_tier in
  let drift, agree =
    let mk () = Pnc_core.Variation.make_draw (Pnc_util.Rng.create ~seed:7) spec in
    let le = Pnc_core.Network.forward_batch_t ~precision:`Exact ~draw:(mk ()) net x in
    let lf = Pnc_core.Network.forward_batch_t ~precision:`Fast ~draw:(mk ()) net x in
    let d = ref 0. in
    for r = 0 to rows - 1 do
      for c = 0 to Pnc_tensor.Tensor.cols le - 1 do
        d :=
          Float.max !d
            (Float.abs (Pnc_tensor.Tensor.get le r c -. Pnc_tensor.Tensor.get lf r c))
      done
    done;
    let pe = Pnc_tensor.Tensor.argmax_rows le and pf = Pnc_tensor.Tensor.argmax_rows lf in
    let same = ref 0 in
    Array.iteri (fun i p -> if p = pf.(i) then incr same) pe;
    (!d, float_of_int !same /. float_of_int rows)
  in
  let drift_ok = drift <= 1e-5 in
  Printf.printf "  batched fast tier            %8.1f draws/s (%s per draw)\n"
    (1. /. per_draw t_fast_tier)
    (Pnc_util.Timer.fmt_seconds (per_draw t_fast_tier));
  Printf.printf
    "  fast-tier speedup            %8.2fx over exact batched (max |dlogit| %.2e, %.1f%% agree)%s\n"
    (t_exact_tier /. t_fast_tier) drift (100. *. agree)
    (if drift_ok then "" else "  DRIFT VIOLATION");
  let tier_extra parity =
    [
      ("max_logit_delta", Obs.Float drift);
      ("agreement", Obs.Float agree);
      ("speedup_vs_exact", Obs.Float (t_exact_tier /. t_fast_tier));
      ("parity", Obs.Str parity);
    ]
  in
  emit_batch ~precision:`Exact
    ~extra:(tier_extra (if batch_parity then "ok" else "VIOLATION"))
    "batched-tier" rows t_exact_tier;
  emit_batch ~precision:`Fast
    ~extra:(tier_extra (if drift_ok then "ok" else "VIOLATION"))
    "batched-tier" rows t_fast_tier;
  let t_epoch =
    Pnc_core.Train.epoch_seconds cfg.Config.train_va (Pnc_core.Model.Circuit net) split
  in
  Printf.printf "  training (Var path)          %8.2f epochs/s (%s per epoch)\n\n%!"
    (1. /. t_epoch)
    (Pnc_util.Timer.fmt_seconds t_epoch);
  if Obs.enabled () then
    Obs.emit "bench.train"
      [ ("seconds_per_epoch", Obs.Float t_epoch); ("epochs_per_s", Obs.Float (1. /. t_epoch)) ];

  (* Multicore MC engine: the same no-grad MC objective distributed
     over a domain pool, per worker count. Each draw owns a pre-split
     child stream, so every row computes the *same* estimate — checked
     here at eps 0 — and only wall-clock changes. *)
  let model = Pnc_core.Model.Circuit net in
  let labels = y in
  let mc_draws = 32 in
  let mc_value ?pool () =
    Pnc_core.Mc_loss.expected_value ?pool ~rng:(Pnc_util.Rng.create ~seed:7) ~spec ~n:mc_draws
      model ~x ~labels
  in
  let reference = mc_value () in
  let t_seq = Pnc_util.Timer.time_mean ~repeats:3 (fun () -> ignore (mc_value ())) in
  let cores = Domain.recommended_domain_count () in
  Printf.printf "MC eval throughput vs pool size - %d draws, ADAPT net (%d core%s available)\n"
    mc_draws cores (if cores = 1 then "" else "s");
  Printf.printf "  %-10s %12s %12s %10s\n" "workers" "draws/s" "per draw" "speedup";
  let report label workers t =
    Printf.printf "  %-10s %12.1f %12s %9.2fx\n" label
      (float_of_int mc_draws /. t)
      (Pnc_util.Timer.fmt_seconds (t /. float_of_int mc_draws))
      (t_seq /. t);
    if Obs.enabled () then
      Obs.emit "bench.mc_pool"
        [
          ("workers", Obs.Int workers);
          ("draws", Obs.Int mc_draws);
          ("seconds", Obs.Float t);
          ("draws_per_s", Obs.Float (float_of_int mc_draws /. t));
          ("speedup", Obs.Float (t_seq /. t));
        ]
  in
  report "sequential" 0 t_seq;
  List.iter
    (fun size ->
      Pnc_util.Pool.with_pool ~size (fun pool ->
          let v = mc_value ~pool () in
          if v <> reference then
            Printf.printf "  PARITY VIOLATION at %d workers: %.17g vs %.17g\n" size v reference;
          let t = Pnc_util.Timer.time_mean ~repeats:3 (fun () -> ignore (mc_value ~pool ())) in
          report (string_of_int size) size t))
    [ 1; 2; 4 ];
  print_newline ()

(* Streaming workload: windows/s of the sliding-window evaluator over a
   drifting, perturbed sensor stream — frozen model vs online test-time
   adaptation — with the usual parity check (frozen results bit-identical
   across batch chunking and pool size). *)
let bench_stream cfg =
  let module Scenario = Pnc_stream.Scenario in
  let module Online = Pnc_stream.Online in
  let dataset = List.hd cfg.Config.datasets in
  let scenario =
    Scenario.make ~dataset ~n_samples:48 ~seed:0
      ~drift:{ Scenario.drift_at = 24; kind = Scenario.Abrupt; shift = 1 }
      ~perturb:{ Scenario.no_perturb with burst_rate = 0.2; dropout_rate = 0.05 }
      ()
  in
  let rz = Scenario.realize scenario in
  Printf.eprintf "[bench] training the streaming model (%s)...\n%!" dataset;
  let r = Experiments.train_run cfg ~dataset ~variant:Experiments.Full ~seed:0 in
  let model = r.Experiments.model in
  let spec =
    if cfg.Config.eval_level > 0. then Some (Pnc_core.Variation.uniform cfg.Config.eval_level)
    else None
  in
  let precision = cfg.Config.precision in
  let protocol = { Online.default_protocol with Online.width = 8; stride = 8 } in
  let adapted_protocol = { protocol with Online.adapt = Online.All } in
  let rng () = Pnc_util.Rng.create ~seed:6000 in
  let frozen ?batch_size ?pool () =
    Online.eval ?batch_size ?pool ~precision ?spec ~rng:(rng ()) protocol model rz
  in
  let reference = frozen () in
  let nw = Array.length reference.Online.points in
  let parity =
    let chunked = frozen ~batch_size:1 () in
    let pooled = Pnc_util.Pool.with_pool ~size:2 (fun pool -> frozen ~pool ()) in
    chunked.Online.points = reference.Online.points
    && pooled.Online.points = reference.Online.points
  in
  let snap = Online.snapshot_params model in
  let adapted () =
    let a = Online.eval ~precision ?spec ~rng:(rng ()) adapted_protocol model rz in
    Online.restore_params model snap;
    a
  in
  ignore (adapted ());
  let t_frozen = Pnc_util.Timer.time_mean ~repeats:3 (fun () -> ignore (frozen ())) in
  let t_adapted = Pnc_util.Timer.time_mean ~repeats:3 (fun () -> ignore (adapted ())) in
  let wps t = float_of_int nw /. t in
  Printf.printf
    "Streaming throughput - %d windows of %d over %d drifting samples (%s)%s\n"
    nw protocol.Online.width (Array.length rz.Scenario.x) dataset
    (if parity then "" else "  PARITY VIOLATION");
  Printf.printf "  frozen                       %8.1f windows/s (%s per window)\n" (wps t_frozen)
    (Pnc_util.Timer.fmt_seconds (t_frozen /. float_of_int nw));
  Printf.printf "  adapted (all, %d steps)       %8.1f windows/s (%s per window)\n"
    adapted_protocol.Online.adapt_steps (wps t_adapted)
    (Pnc_util.Timer.fmt_seconds (t_adapted /. float_of_int nw));
  Printf.printf "  adaptation overhead          %8.2fx\n\n%!" (t_adapted /. t_frozen);
  let emit mode t =
    if Obs.enabled () then
      Obs.emit "bench.stream"
        [
          ("mode", Obs.Str mode);
          ("windows", Obs.Int nw);
          ("samples", Obs.Int (Array.length rz.Scenario.x));
          ("width", Obs.Int protocol.Online.width);
          ("seconds", Obs.Float t);
          ("windows_per_s", Obs.Float (wps t));
          ("parity", Obs.Str (if parity then "ok" else "VIOLATION"));
        ]
  in
  emit "frozen" t_frozen;
  emit "adapted" t_adapted

(* Noise-injection ablation under correlated variation: the same ADAPT
   architecture trained with and without straight-through noise
   injection, both evaluated under the correlated +drift draw model
   (the corr+var operating point of `adapt_pnc ablate`). The +NI row is
   the robust-training payoff this section pins. *)
let bench_ni ?pool cfg =
  let dataset = List.hd cfg.Config.datasets in
  let corr = Experiments.corr_of_cfg cfg in
  let row variant =
    Printf.eprintf "[bench] training %s (%s)...\n%!"
      (Experiments.variant_name variant)
      dataset;
    Experiments.train_run ?pool cfg ~dataset ~variant ~seed:0
  in
  let full = row Experiments.Full in
  let ni = row Experiments.Ni in
  Printf.printf
    "Noise-injection ablation - ADAPT net on %s, correlated variation (rho=%.2f, clen=%.2f)\n"
    dataset corr.Pnc_core.Variation.rho corr.Pnc_core.Variation.clen;
  let line name (r : Experiments.run) =
    Printf.printf "  %-12s clean %.3f   i.i.d.+var %.3f   corr+var %.3f\n" name
      r.Experiments.clean_acc r.Experiments.clean_var_acc r.Experiments.corr_var_acc
  in
  line "ADAPT" full;
  line "ADAPT +NI" ni;
  let gain = ni.Experiments.corr_var_acc -. full.Experiments.corr_var_acc in
  Printf.printf "  +NI corr+var gain            %+.3f%s\n\n%!" gain
    (if gain >= 0. then "" else "  REGRESSION");
  let emit name (r : Experiments.run) =
    if Obs.enabled () then
      Obs.emit "bench.ni"
        [
          ("variant", Obs.Str name);
          ("dataset", Obs.Str dataset);
          ("corr_rho", Obs.Float corr.Pnc_core.Variation.rho);
          ("corr_clen", Obs.Float corr.Pnc_core.Variation.clen);
          ("clean_acc", Obs.Float r.Experiments.clean_acc);
          ("clean_var_acc", Obs.Float r.Experiments.clean_var_acc);
          ("corr_var_acc", Obs.Float r.Experiments.corr_var_acc);
          ("gain", Obs.Float gain);
        ]
  in
  emit "adapt" full;
  emit "adapt+ni" ni

let run_all () =
  let cfg = Config.from_env () in
  (* ADAPT_PNC_JOBS=n selects the evaluation pool size (default: one
     worker per available core minus one; 0/1 = sequential). Results
     are worker-count-invariant by construction. *)
  let jobs =
    match Sys.getenv_opt "ADAPT_PNC_JOBS" with
    | Some s -> (try int_of_string (String.trim s) with _ -> Pnc_util.Pool.default_size ())
    | None -> Pnc_util.Pool.default_size ()
  in
  if Obs.enabled () then
    Obs.emit "bench.meta"
      [
        ("scale", Obs.Str (Config.scale_name cfg.Config.scale));
        ("datasets", Obs.Int (List.length cfg.Config.datasets));
        ("seeds", Obs.Int (List.length cfg.Config.seeds));
        ("jobs", Obs.Int jobs);
        ("cores", Obs.Int (Domain.recommended_domain_count ()));
      ];
  (* ADAPT_PNC_BENCH_ONLY=eval runs just the eval-throughput section
     (the batched-vs-scalar comparison CI uploads as an artifact) and
     skips the training grid; =stream likewise runs just the streaming
     throughput section. *)
  (match Sys.getenv_opt "ADAPT_PNC_BENCH_ONLY" with
  | Some s when String.trim (String.lowercase_ascii s) = "eval" ->
      Printf.printf "ADAPT-pNC benchmark harness (scale: %s, eval section only)\n\n"
        (Config.scale_name cfg.Config.scale);
      bench_eval_throughput cfg;
      Obs.emit_metrics ();
      print_endline "done.";
      exit 0
  | Some s when String.trim (String.lowercase_ascii s) = "stream" ->
      Printf.printf "ADAPT-pNC benchmark harness (scale: %s, stream section only)\n\n"
        (Config.scale_name cfg.Config.scale);
      bench_stream cfg;
      Obs.emit_metrics ();
      print_endline "done.";
      exit 0
  | Some s when String.trim (String.lowercase_ascii s) = "ni" ->
      Printf.printf "ADAPT-pNC benchmark harness (scale: %s, noise-injection section only)\n\n"
        (Config.scale_name cfg.Config.scale);
      bench_ni cfg;
      Obs.emit_metrics ();
      print_endline "done.";
      exit 0
  | _ -> ());
  let pool = Pnc_util.Pool.create ~size:jobs () in
  Printf.printf "ADAPT-pNC benchmark harness (scale: %s, %d datasets, seeds: %d, eval workers: %d)\n\n"
    (Config.scale_name cfg.Config.scale)
    (List.length cfg.Config.datasets)
    (List.length cfg.Config.seeds)
    (Pnc_util.Pool.size pool);

  (* Light artifacts first. *)
  Experiments.print_fig6 (Experiments.fig6 ());
  Experiments.print_mu_survey (Experiments.mu_survey ());
  Experiments.filter_characterization ();
  bench_eval_throughput cfg;
  bench_stream cfg;
  bench_ni ~pool cfg;

  (* The shared training grid behind Table I, Fig. 5, Fig. 7, Table III. *)
  let variants = Experiments.Reference :: Experiments.fig7_variants in
  (* ADAPT_PNC_CACHE_DIR=path caches each trained cell on disk, so an
     interrupted or re-run harness skips completed training runs. *)
  let cache_dir =
    match Sys.getenv_opt "ADAPT_PNC_CACHE_DIR" with
    | Some d when String.trim d <> "" -> Some d
    | _ -> None
  in
  let grid = Experiments.run_grid ~progress ~pool ?cache_dir cfg ~variants in
  Experiments.print_table1 (Experiments.table1_of_grid cfg grid);
  Experiments.print_fig5 (Experiments.fig5_of_grid cfg grid);
  Experiments.print_fig7 (Experiments.fig7_of_grid cfg grid);
  Experiments.print_table3 (Experiments.table3_of_grid cfg grid);

  (* Extension ablation: robustness and manufacturing yield as the
     process variation grows beyond the paper's 10% operating point. *)
  Experiments.print_variation_sweep ~threshold:0.6
    (Experiments.variation_sweep_of_grid ~threshold:0.6 ~pool cfg grid);

  (* Runtime comparisons. *)
  Experiments.print_table2 (Experiments.table2 ~progress cfg);
  bechamel_table2 cfg;
  Pnc_util.Pool.shutdown pool;
  Obs.emit_metrics ();
  print_endline "done."

let () =
  (* BENCH_OUT=path streams every bench section as JSON Lines (plus a
     final metrics snapshot) alongside the human-readable report. The
     instrumentation never touches an Rng stream, so the printed
     numbers are identical with and without the sink. *)
  match Sys.getenv_opt "BENCH_OUT" with
  | Some path when String.trim path <> "" -> Obs.with_jsonl ~path run_all
  | _ -> run_all ()
