(* Load generator for the model-serving daemon (the `bench.serve`
   section CI uploads as an artifact).

   Boots an in-process daemon over a fresh checkpoint, then hammers it
   from hundreds of concurrent keep-alive connections for a fixed wall
   window, swapping the checkpoint mid-run to exercise hot reload under
   load. Every response is parity-checked bit-for-bit against offline
   [Model.logits_batch_t] for the model version the daemon echoed; any
   mismatch makes the process exit non-zero, so CI fails loudly.

   Knobs (environment):
     SERVE_BENCH_CONNS     concurrent connections        (default 512)
     SERVE_BENCH_SECONDS   measured load window, seconds (default 4.0)
     ADAPT_PNC_JOBS        server pool size              (default cores-1)
     ADAPT_PNC_SERVE_BATCH server max_batch              (default 64)
     BENCH_OUT             JSONL sink (same contract as bench/main.ml) *)

module T = Pnc_tensor.Tensor
module Rng = Pnc_util.Rng
module Obs = Pnc_obs.Obs
module Model = Pnc_core.Model
module Network = Pnc_core.Network
module Persist = Pnc_core.Persist
module Serve = Pnc_serve.Serve

let env_int name default =
  match Sys.getenv_opt name with
  | Some s -> ( match int_of_string_opt (String.trim s) with Some v when v > 0 -> v | _ -> default)
  | None -> default

let env_float name default =
  match Sys.getenv_opt name with
  | Some s -> (
      match float_of_string_opt (String.trim s) with Some v when v > 0. -> v | _ -> default)
  | None -> default

let conns = env_int "SERVE_BENCH_CONNS" 512
let window_s = env_float "SERVE_BENCH_SECONDS" 4.0
let pool_size = env_int "ADAPT_PNC_JOBS" (Pnc_util.Pool.default_size ())
let max_batch = env_int "ADAPT_PNC_SERVE_BATCH" 64
let cols = 16
let classes = 3
let n_inputs = 32

let make_model seed =
  Model.Circuit
    (Network.create ~hidden:6 (Rng.create ~seed) Network.Adapt ~inputs:1 ~classes)

(* One logits row per input row via the offline batched engine — the
   truth the daemon must reproduce bit-for-bit. *)
let offline model rows =
  let y = Model.logits_batch_t model (T.of_rows rows) in
  Array.init (T.rows y) (fun i -> T.row y i)

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then nan else sorted.(min (n - 1) (int_of_float (p *. float_of_int n)))

type worker_stats = {
  mutable requests : int;
  mutable lat : float list;  (* per-request seconds *)
  mutable parity_failures : int;
  mutable transport_failures : int;
  mutable reload_seen : bool;
}

let run () =
  let ckpt =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "serve_bench_%d.ckpt" (Unix.getpid ()))
  in
  let model_a = make_model 1001 in
  let model_b = make_model 1002 in
  Persist.save_model ~path:ckpt model_a;
  let inputs =
    let rng = Rng.create ~seed:2025 in
    Array.init n_inputs (fun _ -> Array.init cols (fun _ -> Rng.uniform rng ~lo:(-1.5) ~hi:1.5))
  in
  (* expected.(version - 1).(input index): the daemon serves version 1
     (model A) until the mid-run swap bumps it to 2 (model B). *)
  let expected = [| offline model_a inputs; offline model_b inputs |] in
  let config =
    {
      Serve.default_config with
      port = 0;
      max_batch;
      max_delay_s = 2e-3;
      pool_size;
      reload_every_s = 0.05;
    }
  in
  let srv =
    match Serve.create ~config ~checkpoint:ckpt () with
    | Ok s -> s
    | Error msg ->
        Printf.eprintf "serve_bench: %s\n" msg;
        exit 1
  in
  let port = Serve.port srv in
  let server_th = Thread.create (fun () -> Serve.run ~handle_signals:false srv) () in
  Printf.printf
    "serve_bench: %d connections for %.1fs against 127.0.0.1:%d (max_batch %d, pool %d)\n%!"
    conns window_s port max_batch pool_size;

  (* Warm up: one connection, a handful of requests outside the window. *)
  (let c = Serve.Client.connect ~port () in
   for i = 0 to 7 do
     ignore (Serve.Client.logits c inputs.(i))
   done;
   Serve.Client.close c);

  let stats =
    Array.init conns (fun _ ->
        { requests = 0; lat = []; parity_failures = 0; transport_failures = 0; reload_seen = false })
  in
  let start_gate = ref false in
  let gate_mu = Mutex.create () in
  let gate_cv = Condition.create () in
  let deadline = ref infinity in
  let worker wi =
    let st = stats.(wi) in
    (* Stagger dials a little so [conns] SYNs do not land in one burst. *)
    Thread.delay (float_of_int (wi mod 64) *. 0.002);
    let c = Serve.Client.connect ~port () in
    Mutex.lock gate_mu;
    while not !start_gate do
      Condition.wait gate_cv gate_mu
    done;
    Mutex.unlock gate_mu;
    let k = ref wi in
    while Unix.gettimeofday () < !deadline do
      let input_i = !k mod n_inputs in
      incr k;
      let t0 = Unix.gettimeofday () in
      (match Serve.Client.logits c inputs.(input_i) with
      | exception _ -> st.transport_failures <- st.transport_failures + 1
      | Error _ -> st.transport_failures <- st.transport_failures + 1
      | Ok (version, got) ->
          st.lat <- (Unix.gettimeofday () -. t0) :: st.lat;
          st.requests <- st.requests + 1;
          if version >= 2 then st.reload_seen <- true;
          if version < 1 || version > 2 then st.parity_failures <- st.parity_failures + 1
          else
            let expect = expected.(version - 1).(input_i) in
            if Array.length expect <> Array.length got then
              st.parity_failures <- st.parity_failures + 1
            else
              Array.iteri
                (fun j e ->
                  if Int64.bits_of_float e <> Int64.bits_of_float got.(j) then
                    st.parity_failures <- st.parity_failures + 1)
                expect);
      ()
    done;
    Serve.Client.close c
  in
  let ths = Array.init conns (fun wi -> Thread.create worker wi) in
  (* Give every dial its stagger slot, then open the gate and start the
     measured window. *)
  Thread.delay 0.3;
  let t_start = Unix.gettimeofday () in
  deadline := t_start +. window_s;
  Mutex.lock gate_mu;
  start_gate := true;
  Condition.broadcast gate_cv;
  Mutex.unlock gate_mu;
  (* Swap the checkpoint mid-window: the reload poller must pick up
     model B while the fleet is in full flight. *)
  Thread.delay (window_s /. 2.);
  Persist.save_model ~path:ckpt model_b;
  Array.iter Thread.join ths;
  let elapsed = Unix.gettimeofday () -. t_start in
  Serve.stop srv;
  Thread.join server_th;
  Sys.remove ckpt;

  let requests = Array.fold_left (fun a s -> a + s.requests) 0 stats in
  let parity_failures = Array.fold_left (fun a s -> a + s.parity_failures) 0 stats in
  let transport_failures = Array.fold_left (fun a s -> a + s.transport_failures) 0 stats in
  let reload_seen = Array.exists (fun s -> s.reload_seen) stats in
  let lat = Array.of_list (Array.fold_left (fun a s -> List.rev_append s.lat a) [] stats) in
  Array.sort compare lat;
  let p50 = percentile lat 0.50
  and p90 = percentile lat 0.90
  and p99 = percentile lat 0.99 in
  let mean =
    if Array.length lat = 0 then nan
    else Array.fold_left ( +. ) 0. lat /. float_of_int (Array.length lat)
  in
  let throughput = float_of_int requests /. elapsed in
  let fmt = Pnc_util.Timer.fmt_seconds in
  Printf.printf "  requests answered            %8d (%.1f req/s sustained)\n" requests throughput;
  Printf.printf "  latency p50 / p90 / p99      %s / %s / %s (mean %s)\n" (fmt p50) (fmt p90)
    (fmt p99) (fmt mean);
  Printf.printf "  hot reload observed          %b (final model version %d)\n" reload_seen
    (Serve.model_version srv);
  Printf.printf "  parity                       %s\n"
    (if parity_failures = 0 then "ok (bit-identical to offline engine)"
     else Printf.sprintf "%d VIOLATIONS" parity_failures);
  if transport_failures > 0 then
    Printf.printf "  transport failures           %d\n" transport_failures;
  if Obs.enabled () then
    Obs.emit "bench.serve"
      [
        ("section", Obs.Str "serve");
        ("connections", Obs.Int conns);
        ("window_seconds", Obs.Float window_s);
        ("elapsed_seconds", Obs.Float elapsed);
        ("requests", Obs.Int requests);
        ("requests_per_s", Obs.Float throughput);
        ("latency_p50_s", Obs.Float p50);
        ("latency_p90_s", Obs.Float p90);
        ("latency_p99_s", Obs.Float p99);
        ("latency_mean_s", Obs.Float mean);
        ("max_batch", Obs.Int max_batch);
        ("pool_size", Obs.Int pool_size);
        ("final_model_version", Obs.Int (Serve.model_version srv));
        ("reload_observed", Obs.Str (if reload_seen then "yes" else "no"));
        ("parity", Obs.Str (if parity_failures = 0 then "ok" else "VIOLATION"));
        ("parity_failures", Obs.Int parity_failures);
        ("transport_failures", Obs.Int transport_failures);
      ];
  Obs.emit_metrics ();
  if parity_failures > 0 || requests = 0 then exit 1;
  print_endline "done."

(* Same JSONL contract as bench/main.ml: BENCH_OUT=path streams every
   section (and the final metrics snapshot) alongside the report. *)
let () =
  match Sys.getenv_opt "BENCH_OUT" with
  | Some path when String.trim path <> "" -> Obs.with_jsonl ~path run
  | _ -> run ()
