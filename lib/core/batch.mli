(** Batch-size resolution and telemetry for the batched no-grad
    evaluation path.

    Every [*_batch_t] forward takes a [?batch_size] knob resolved here:
    an explicit argument wins, otherwise the [ADAPT_PNC_BATCH]
    environment variable (a positive integer), otherwise the whole
    split runs as one block. The knob only chooses how many rows each
    kernel call carries — the variation draw is realized once per
    forward and shared across blocks, so results are bit-identical for
    every block size (enforced by test/test_batch.ml). It is therefore
    deliberately excluded from {!Pnc_exp.Config.fingerprint}. *)

val env_default : unit -> int option
(** [ADAPT_PNC_BATCH] parsed as a positive block size, if set. A set
    but malformed value (not a positive integer) resolves to [None] and
    prints one warning per process to [stderr] instead of being
    silently indistinguishable from "unset". *)

val resolve : ?batch_size:int -> n:int -> unit -> int
(** Effective block size for a batch of [n] rows: [batch_size] if
    given, else {!env_default}, else [n]; clamped to [1, max 1 n].
    An explicit non-positive [batch_size] is a caller error and raises
    [Invalid_argument] (the environment fallback still degrades
    silently — only the explicit argument is rejected). *)

type precision = [ `Exact | `Fast ]
(** Activation tier for the batched no-grad kernels. [`Exact] is
    [Stdlib.tanh] — bit-identical to the autodiff path. [`Fast] is
    {!Pnc_tensor.Fast_math.tanh} (≤1e-7 absolute tanh error). *)

val precision_name : precision -> string
(** ["exact"] / ["fast"] — the wire/CLI spelling. *)

val precision_of_string : string -> precision option
(** Case-insensitive inverse of {!precision_name}. *)

val precision_env_default : unit -> precision option
(** [ADAPT_PNC_PRECISION] parsed as a tier, if set. A set but malformed
    value resolves to [None] with one warning per process on
    [stderr]. *)

val resolve_precision : ?precision:precision -> unit -> precision
(** Entry-point resolution: explicit argument, else
    {!precision_env_default}, else [`Exact]. Unlike the batch-size
    knob, precision can change results, so ONLY entry points (CLI,
    serve, bench, [Config.from_env]) may consult the environment —
    library functions default to [`Exact] unconditionally, and every
    Fast run is recorded in {!Pnc_exp.Config.fingerprint}. *)

val chunked : rows:int -> block:int -> (row:int -> len:int -> unit) -> int
(** [chunked ~rows ~block f] calls [f] once per consecutive row block
    (the final block may be ragged) and returns the block count. *)

val start : unit -> float
(** Clock origin for {!record}; reads the clock only when the
    observability sink is enabled. *)

val record : block:int -> rows:int -> blocks:int -> t0:float -> unit
(** Account one batched forward: bumps the [eval.batch.samples] /
    [eval.batch.blocks] counters (always), and — with an enabled sink —
    observes [eval.batch_seconds] and emits an [eval.batch] event with
    the throughput. *)
