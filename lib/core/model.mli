(** Uniform handle over the three model families compared in the paper:
    the baseline pTPNC circuit, the proposed ADAPT-pNC circuit, and the
    Elman RNN reference. *)

type t = Circuit of Network.t | Reference of Elman.t

val label : t -> string

val params : t -> Pnc_autodiff.Var.t list

val named_params : t -> (string * Pnc_autodiff.Var.t) list
(** Stable checkpoint path names for every trainable parameter; same
    order as {!params} (the persistence layer keys sections by these
    paths). *)

val n_params : t -> int

val logits : ?draw:Variation.draw -> t -> Pnc_tensor.Tensor.t -> Pnc_autodiff.Var.t
(** [batch x time] to [batch x classes]. The draw is meaningful only
    for circuit models (the RNN has no physical components). *)

val logits_t : ?draw:Variation.draw -> t -> Pnc_tensor.Tensor.t -> Pnc_tensor.Tensor.t
(** Pure-tensor logits (no autodiff nodes); bit-identical to
    [Var.value (logits ...)] under the same draw. *)

val logits_batch_t :
  ?batch_size:int ->
  ?precision:[ `Exact | `Fast ] ->
  ?state_init:Filter_layer.state_init ->
  ?draw:Variation.draw ->
  t ->
  Pnc_tensor.Tensor.t ->
  Pnc_tensor.Tensor.t
(** Batched twin of {!logits_t}: the draw is realized once and the
    batch runs through it block of rows at a time ([?batch_size]
    resolved by {!Batch.resolve} — explicit argument, else
    [ADAPT_PNC_BATCH], else one block). Bit-identical to {!logits_t}
    for every batch size under [`Exact] (the default); [`Fast]
    substitutes {!Pnc_tensor.Fast_math.tanh} (≤1e-7 absolute tanh
    error) for the activation transcendentals. [state_init] selects
    the filter initial-voltage semantics (default [`V0]; batch-size
    invariant under every value — see {!Network.forward_batch_t});
    ignored by the reference RNN, which has no filter state. *)

val predict : ?draw:Variation.draw -> t -> Pnc_tensor.Tensor.t -> int array
(** Runs on the tensor fast path. *)

val predict_batch :
  ?batch_size:int ->
  ?precision:[ `Exact | `Fast ] ->
  ?state_init:Filter_layer.state_init ->
  ?draw:Variation.draw ->
  t ->
  Pnc_tensor.Tensor.t ->
  int array
(** {!predict} on the batched path. *)

val clamp : t -> unit
(** Printable-window projection; no-op for the reference RNN. *)

val is_circuit : t -> bool
