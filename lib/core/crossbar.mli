(** Learnable printed resistor crossbar (Fig. 3a, Eq. 1).

    Each connection carries a signed surrogate parameter θ: its
    magnitude is the printed conductance in units of the maximum
    printable crossbar conductance (so |θ| ∈ (0, 1]); a negative sign
    means the input passes through an inverter (Fig. 3c) before its
    weight resistor. The circuit computes

      V_out = (Σᵢ θᵢ Vᵢ + θ_b·V_b) / (Σᵢ |θᵢ| + |θ_b| + g_d)

    which is differentiable almost everywhere, so θ is trained
    directly. Under process variation every θ is multiplied by an
    ε factor from the active {!Variation.draw}. *)

type t

val create : Pnc_util.Rng.t -> inputs:int -> outputs:int -> t
val inputs : t -> int
val outputs : t -> int

val params : t -> Pnc_autodiff.Var.t list
(** [theta; theta_b] — handed to the optimizer. *)

val named_params : t -> (string * Pnc_autodiff.Var.t) list
(** Stable checkpoint path names ([theta], [theta_b]); same order as
    {!params}. *)

val forward : draw:Variation.draw -> t -> Pnc_autodiff.Var.t -> Pnc_autodiff.Var.t
(** Map a [batch x inputs] node to [batch x outputs]. A fresh ε sample
    is taken from [draw] per call (per Monte-Carlo sample). *)

type realization
(** One physical instance of the crossbar: effective conductances with
    ε folded in, shared across all time steps of a sequence. *)

val realize : draw:Variation.draw -> t -> realization
val apply : realization -> Pnc_autodiff.Var.t -> Pnc_autodiff.Var.t

type realization_t
(** Pure-tensor realization for the no-grad evaluation path; consumes
    the draw's random stream exactly like {!realize} and produces
    bit-identical outputs without building autodiff nodes. *)

val realize_t : draw:Variation.draw -> t -> realization_t

val apply_t_into : dst:Pnc_tensor.Tensor.t -> realization_t -> Pnc_tensor.Tensor.t -> unit
(** Writes the [batch x outputs] crossbar response into [dst]
    (allocation-free; [dst] must not alias the input). *)

val apply_batch_t : ?block:int -> realization_t -> Pnc_tensor.Tensor.t -> Pnc_tensor.Tensor.t
(** Batched twin of {!apply_t_into}: maps [batch x inputs] to
    [batch x outputs] block of rows at a time (default: one block)
    through zero-copy row views — bit-identical for any [block]. *)

val kernel_t :
  realization_t -> Pnc_tensor.Tensor.t * Pnc_tensor.Tensor.t * Pnc_tensor.Tensor.t
(** [(theta_eff, bias_num, 1/denominator)] — the raw coefficient
    tensors backing {!apply_t_into}, exposed so {!Network} can fuse the
    bias-plus-normalization step into its single-pass layer kernel.
    Read-only views; mutating them voids the parity guarantees. *)

val forward_const :
  theta_eps:Pnc_tensor.Tensor.t ->
  bias_eps:Pnc_tensor.Tensor.t ->
  t ->
  Pnc_autodiff.Var.t ->
  Pnc_autodiff.Var.t
(** Forward with explicit ε factors (used to share one component draw
    across all time steps of a sequence). *)

val sample_eps : draw:Variation.draw -> t -> Pnc_tensor.Tensor.t * Pnc_tensor.Tensor.t
(** One joint ε sample (theta, bias) matching this crossbar's shape. *)

val theta_values : t -> Pnc_tensor.Tensor.t
(** Current surrogate weights (inputs x outputs), for hardware
    costing. *)

val bias_values : t -> Pnc_tensor.Tensor.t

val g_dummy : float
(** Normalized dummy conductance g_d added to the denominator. *)

val clamp : t -> unit
(** Project parameters back into the printable window (applied after
    each optimizer step). *)
