(** Model-aware persistence on top of {!Pnc_ckpt.Ckpt}.

    Two checkpoint kinds:

    - ["model"]: architecture metadata plus one [param/<path>] section
      per trainable parameter — enough to rebuild and evaluate a model
      in a fresh process ({!save_model} / {!load_model});
    - ["train"]: everything {!Train.train} accumulates mid-run —
      current and best-so-far parameters, optimizer slots and step
      count, scheduler state, the RNG stream image, and both loss
      curves — enough to resume training bit-identically
      ({!save_train_state} / {!load_train_state}).

    All loaders return typed {!Pnc_ckpt.Ckpt.error}s and validate every
    shape against the live model before mutating anything: a rejected
    checkpoint leaves the model, optimizer and scheduler untouched. *)

module T := Pnc_tensor.Tensor
module Rng := Pnc_util.Rng
module Json := Pnc_obs.Obs.Json
module Ckpt := Pnc_ckpt.Ckpt

(** {1 Model metadata} *)

val model_meta : Model.t -> (string * Json.t) list
(** [family]/[arch]/[inputs]/[hidden]/[classes] — everything needed to
    rebuild the model skeleton with {!model_of_meta}. *)

val model_of_meta : (string * Json.t) list -> (Model.t, Ckpt.error) result
(** Rebuild a model skeleton (freshly initialised parameters) from
    header metadata. *)

(** {1 Parameter sections} *)

val param_sections : ?prefix:string -> Model.t -> (string * Ckpt.section) list
(** One [F64] section per {!Model.named_params} entry, named
    [prefix ^ path] (default prefix ["param/"]). *)

val load_params_into : ?prefix:string -> Model.t -> Ckpt.t -> (unit, Ckpt.error) result
(** Overwrite the model's parameters from the checkpoint's sections.
    Every section is located and shape-checked before any write. *)

(** {1 Model checkpoints} *)

val save_model : ?extra_meta:(string * Json.t) list -> path:string -> Model.t -> unit

val load_model : path:string -> (Model.t, Ckpt.error) result
(** Accepts kind ["model"] or ["train"] (a train checkpoint embeds the
    same metadata and [param/] sections). *)

val load_model_exn : path:string -> Model.t
(** Raises {!Pnc_ckpt.Ckpt.Error}. *)

(** {1 Training-state checkpoints} *)

type resume = {
  r_epoch : int;  (** last completed epoch *)
  r_best : float;  (** best validation loss so far *)
  r_best_snap : T.t list;  (** best-epoch parameter values, in {!Model.params} order *)
  r_rng : Rng.t;  (** training RNG stream, positioned after epoch [r_epoch] *)
  r_train_curve : float array;  (** per-epoch training losses, oldest first *)
  r_val_curve : float array;  (** per-epoch validation losses, oldest first *)
}

val save_train_state :
  path:string ->
  model:Model.t ->
  opt:Pnc_optim.Optimizer.t ->
  sched:Pnc_optim.Scheduler.t ->
  rng:Rng.t ->
  epoch:int ->
  best:float ->
  best_snap:T.t list ->
  train_curve:float array ->
  val_curve:float array ->
  unit
(** Atomically write a ["train"] checkpoint capturing the loop state at
    the end of epoch [epoch]. [best_snap] must be in
    {!Model.params} order; curves are oldest-first. *)

val load_train_state :
  path:string ->
  model:Model.t ->
  opt:Pnc_optim.Optimizer.t ->
  sched:Pnc_optim.Scheduler.t ->
  (resume, Ckpt.error) result
(** Validate the checkpoint against [model] (architecture metadata and
    every parameter/slot shape), then overwrite the model's parameters
    and restore [opt] and [sched] in place. Nothing is mutated on any
    error path. *)
