(** Learnable printed low-pass filter banks: first-order (the baseline
    pTPNC of prior work) and the paper's second-order SO-LF.

    Each of the [features] channels owns its own printed resistor(s)
    and capacitor(s). Resistances and capacitances are trained
    separately (the paper's stated difference from prior work, which
    learned only the RC product) through normalized parameters
    r_norm = R / R_max and c_norm = C / C_max, and the discrete update

      V[k] = a · V[k−1] + b · V_in[k],
      a = RC / (µRC + Δt), b = Δt / (µRC + Δt)     (Eq. 10–11)

    is unrolled through the autodiff engine. The coupling factor µ and
    the initial voltage V₀ are non-trainable random variables sampled
    per {!Variation.draw}; component variation multiplies R and C by
    ε factors. *)

type order = First | Second

type t

val create : Pnc_util.Rng.t -> order -> features:int -> t
val order : t -> order
val features : t -> int
val params : t -> Pnc_autodiff.Var.t list

val named_params : t -> (string * Pnc_autodiff.Var.t) list
(** Stable checkpoint path names ([stage<i>/r_norm], [stage<i>/c_norm]);
    same order as {!params}. *)

(** {1 Per-forward-pass realization}

    One physical sample of the filter bank: coefficient nodes with ε
    and µ folded in, plus the sampled initial voltages. Realize once
    per forward pass, then step through the sequence. *)

type realization

val realize : draw:Variation.draw -> t -> realization

type state

val init_state : realization -> batch:int -> state

val step : realization -> state -> Pnc_autodiff.Var.t -> state * Pnc_autodiff.Var.t
(** Advance the filter bank by one time step: input and output are
    [batch x features] nodes. *)

(** {1 Pure-tensor realization (no-grad evaluation path)}

    Consumes the draw's random stream exactly like {!realize} and steps
    through the same floating-point update in place, without building
    autodiff nodes. *)

type realization_t

val realize_t : draw:Variation.draw -> t -> realization_t

type state_t = Pnc_tensor.Tensor.t array
(** One [batch x features] voltage tensor per stage, mutated in place
    by {!step_t}. *)

type state_init = [ `V0 | `Zero | `Gaussian of Pnc_util.Rng.t * float ]
(** Initial-voltage semantics for a fresh (or reused) state:
    - [`V0] (the default, and the historical behaviour): every batch
      row starts from the draw's sampled initial voltages — the same
      physical power-up transient for each sample;
    - [`Zero]: the fully settled circuit (all capacitors discharged);
    - [`Gaussian (rng, sigma)]: an independent V[0] ~ N(0, sigma²) per
      (row, channel, stage) — the sliding-window regime of the
      exemplar LearnableFilter, where each window meets the filter
      mid-transient. The stream is consumed stage-major then
      row-major. *)

val reset_state_t : ?init:state_init -> realization_t -> state_t -> unit
(** Refill an existing state in place — the explicit entry point for
    callers that re-run a realization over many windows (instead of
    re-calling {!init_state_t} with ad-hoc conventions). A full-batch
    reset followed by row-sliced views is bit-identical to resetting
    each slice in turn only under [`V0]/[`Zero]; under [`Gaussian] the
    stream order makes the {e full-batch} reset the canonical one (the
    batched forwards pre-draw full states for exactly this reason). *)

val init_state_t : ?init:state_init -> realization_t -> batch:int -> state_t
(** Allocate and fill a fresh state; [init] defaults to [`V0], making
    this bit-identical to the historical entry point. *)

val step_t : realization_t -> state_t -> Pnc_tensor.Tensor.t -> Pnc_tensor.Tensor.t
(** Advances the state in place and returns the last stage's voltages
    (an alias of the state, valid until the next step). *)

val step_batch_t :
  ?block:int -> realization_t -> state_t -> Pnc_tensor.Tensor.t -> Pnc_tensor.Tensor.t
(** Batched twin of {!step_t}: advances the state block of rows at a
    time (default: one block) through zero-copy row views —
    bit-identical for any [block]. *)

val kernel_t :
  realization_t -> (Pnc_tensor.Tensor.t * Pnc_tensor.Tensor.t) array
(** Per-stage [(a, b)] coefficient rows backing {!step_t} (the state
    update is [s' = s ∘ a + x ∘ b]), exposed so {!Network} can fuse the
    stage updates into its single-pass layer kernel. Read-only views. *)

(** {1 Physical values} *)

val r_values : t -> float array array
(** [r_values f].(stage).(channel) in ohms; one stage for first-order,
    two for second-order. *)

val c_values : t -> float array array
(** Capacitances in farads, same indexing. *)

val cutoff_hz : t -> float array
(** Current per-channel −3 dB cutoff of the (ideal) filter. *)

val clamp : t -> unit
(** Project R and C back into the printable windows. *)
