(** The variation-aware Monte-Carlo training objective (Eq. 12–14).

    The expected loss over component variation, coupling factors and
    initial voltages is approximated by averaging [n] independent
    forward passes, each with a fresh joint sample (θᵢ, Cᵢ, Rᵢ, µᵢ,
    V₀ᵢ). With [spec = Variation.none] and [n = 1] this reduces to the
    ordinary (no-variation-aware) objective used by the baseline.

    {b Determinism contract.} Both estimators pre-split one child
    generator per draw (per antithetic pair) from [rng] via
    {!Pnc_util.Rng.split_n}: draw i consumes child i and nothing else,
    so the per-draw values — and their fixed-order sum — are identical
    whether the draws run sequentially or distributed over a
    {!Pnc_util.Pool} of any worker count, and the Var and tensor paths
    consume randomness identically. *)

val expected :
  ?antithetic:bool ->
  ?ni:bool ->
  rng:Pnc_util.Rng.t ->
  spec:Variation.spec ->
  n:int ->
  Model.t ->
  x:Pnc_tensor.Tensor.t ->
  labels:int array ->
  Pnc_autodiff.Var.t
(** Mean cross-entropy over [n] Monte-Carlo draws (a [1 x 1] node).
    With [antithetic] (default false; an extension, not in the paper),
    draws come in mirrored pairs ({!Variation.antithetic_pair}), which
    reduces the estimator's variance at equal cost. With [ni] (default
    false), each draw is realized in noise-injection mode: forward
    values — and therefore the loss reported — are bit-identical to
    the plain estimator, but gradients flow straight through the
    variation fold to the clean parameters
    ({!Pnc_autodiff.Var.ste_mul}). *)

val expected_value :
  ?antithetic:bool ->
  ?batch_size:int ->
  ?precision:[ `Exact | `Fast ] ->
  ?pool:Pnc_util.Pool.t ->
  rng:Pnc_util.Rng.t ->
  spec:Variation.spec ->
  n:int ->
  Model.t ->
  x:Pnc_tensor.Tensor.t ->
  labels:int array ->
  float
(** Forward-only evaluation of the same objective on the pure-tensor
    fast path — consumes the random stream exactly like {!expected} but
    allocates no autodiff nodes. With [pool], the independent draws are
    distributed across the pool's worker domains; the result is
    bit-identical to the sequential path for every worker count (each
    draw owns a pre-split child stream and the summation order is
    fixed). Each draw evaluates on the batched path; like the pool
    size, [batch_size] never changes the result. [precision] does:
    [`Fast] swaps in the bounded fast tanh (default [`Exact]). *)
