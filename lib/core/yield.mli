(** Monte-Carlo yield analysis of printed classifiers.

    In printed electronics the question behind the paper's robustness
    story is manufacturing yield: out of N printed instances of the
    same trained design, how many meet an accuracy specification once
    their components have been scattered by the process? This module
    samples physical instances via {!Variation} draws and reports the
    distribution of their accuracies. *)

type result = {
  draws : int;
  mean_acc : float;
  std_acc : float;
  worst : float;
  best : float;
  yield : float;  (** fraction of instances with accuracy >= threshold *)
  threshold : float;
}

val estimate :
  ?batch_size:int ->
  ?pool:Pnc_util.Pool.t ->
  rng:Pnc_util.Rng.t ->
  spec:Variation.spec ->
  threshold:float ->
  draws:int ->
  Model.t ->
  Pnc_data.Dataset.t ->
  result
(** Reference (non-circuit) models have a single deterministic instance;
    their result collapses to that accuracy. With [pool], the sampled
    instances are evaluated in parallel on the pool's domains; each
    instance owns a pre-split child stream, so the result is identical
    for every worker count. Each instance evaluates on the batched
    no-grad path; like the pool size, [batch_size] never changes the
    result. *)

val sweep_levels :
  ?batch_size:int ->
  ?pool:Pnc_util.Pool.t ->
  rng:Pnc_util.Rng.t ->
  levels:float list ->
  threshold:float ->
  draws:int ->
  Model.t ->
  Pnc_data.Dataset.t ->
  (float * result) list
(** Yield as a function of the process-variation level (uniform ±level)
    — the ablation bench behind the paper's Fig. 5 narrative. *)

val describe : result -> string
