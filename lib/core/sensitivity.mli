(** Component-family sensitivity analysis.

    The paper treats ±10 % variation as one lump; this analysis asks
    which family of printed components actually drives the accuracy
    loss: the crossbar conductances (θ), the filter RC values, or the
    activation circuit parameters (η). Each family is varied alone
    while the other two stay nominal, and the accuracy drop relative to
    the nominal circuit is reported. *)

type family = Crossbar_conductances | Filter_rc | Activation_eta | All_families

val family_name : family -> string

type row = {
  family : family;
  accuracy : float;  (** mean accuracy with only this family varying *)
  drop : float;  (** nominal accuracy − accuracy *)
}

val analyze :
  ?batch_size:int ->
  ?pool:Pnc_util.Pool.t ->
  rng:Pnc_util.Rng.t ->
  level:float ->
  draws:int ->
  Network.t ->
  Pnc_data.Dataset.t ->
  row list
(** Rows for the three families plus [All_families], ordered as
    declared. The [All_families] row reproduces the standard
    evaluation-under-variation number. Runs on the batched no-grad
    tensor path; with [pool] the per-family Monte-Carlo draws evaluate
    in parallel with worker-count-invariant results (pre-split child
    streams). Like the pool size, [batch_size] never changes the
    result. *)

val report : row list -> string
