module T = Pnc_tensor.Tensor
module Var = Pnc_autodiff.Var

type arch = Ptpnc | Adapt

let arch_name = function Ptpnc -> "pTPNC" | Adapt -> "ADAPT-pNC"

type layer = Crossbar.t * Filter_layer.t * Ptanh.t

type t = { arch : arch; n_in : int; n_hidden : int; n_classes : int; layers : layer list }

let create ?hidden rng arch ~inputs ~classes =
  let hidden =
    match hidden with Some h -> h | None -> ( match arch with Ptpnc -> 3 | Adapt -> 6)
  in
  let filter_order =
    match arch with Ptpnc -> Filter_layer.First | Adapt -> Filter_layer.Second
  in
  let layer ~n_in ~n_out =
    ( Crossbar.create rng ~inputs:n_in ~outputs:n_out,
      Filter_layer.create rng filter_order ~features:n_out,
      Ptanh.create rng ~features:n_out )
  in
  {
    arch;
    n_in = inputs;
    n_hidden = hidden;
    n_classes = classes;
    layers = [ layer ~n_in:inputs ~n_out:hidden; layer ~n_in:hidden ~n_out:classes ];
  }

let arch net = net.arch
let inputs net = net.n_in
let classes net = net.n_classes
let hidden net = net.n_hidden
let layers net = net.layers

let params net =
  List.concat_map
    (fun (cb, fl, act) -> Crossbar.params cb @ Filter_layer.params fl @ Ptanh.params act)
    net.layers

let named_params net =
  List.concat
    (List.mapi
       (fun i (cb, fl, act) ->
         let under prefix ps =
           List.map (fun (n, p) -> (Printf.sprintf "layer%d/%s/%s" i prefix n, p)) ps
         in
         under "crossbar" (Crossbar.named_params cb)
         @ under "filter" (Filter_layer.named_params fl)
         @ under "ptanh" (Ptanh.named_params act))
       net.layers)

let n_params net =
  List.fold_left (fun acc v -> acc + T.numel (Var.value v)) 0 (params net)

(* One sampled physical instance of a layer, shared across time steps:
   the variation-folded component values are realized once, only the
   input-dependent computation runs per step. *)
type layer_real = {
  cb : Crossbar.realization;
  filt : Filter_layer.realization;
  act : Ptanh.realization;
  mutable filt_state : Filter_layer.state;
}

let realize_layers_selective ~draw_crossbar ~draw_filter ~draw_act ~batch net =
  List.map
    (fun (cb, fl, act) ->
      (* Explicit sampling order — filters, activation, crossbar. The
         tensor path below must consume the draws' random streams in
         exactly this order for realization parity. *)
      let filt = Filter_layer.realize ~draw:draw_filter fl in
      let act = Ptanh.realize ~draw:draw_act act in
      let cb = Crossbar.realize ~draw:draw_crossbar cb in
      { cb; filt; act; filt_state = Filter_layer.init_state filt ~batch })
    net.layers

let step_layer lr x =
  let summed = Crossbar.apply lr.cb x in
  let state', filtered = Filter_layer.step lr.filt lr.filt_state summed in
  lr.filt_state <- state';
  Ptanh.apply lr.act filtered

type readout = Integrated | Last_step

let forward_multi_readout ~readout ~draw_crossbar ~draw_filter ~draw_act net steps =
  assert (Array.length steps > 0);
  let batch = T.rows steps.(0) in
  let reals = realize_layers_selective ~draw_crossbar ~draw_filter ~draw_act ~batch net in
  (* Default read-out: the class scores integrate the output voltage
     over the window — physically one slow RC stage per output (counted
     by Hardware). Reading only the final instant (Last_step, kept for
     the ablation bench) forgets transient evidence faster than any
     printable RC can retain it. *)
  let acc = ref None in
  Array.iter
    (fun x_t ->
      let signal = ref (Var.const x_t) in
      List.iter (fun lr -> signal := step_layer lr !signal) reals;
      acc :=
        Some
          (match (readout, !acc) with
          | Last_step, _ | Integrated, None -> !signal
          | Integrated, Some a -> Var.add a !signal))
    steps;
  match (readout, !acc) with
  | Integrated, Some sum -> Var.scale (1. /. float_of_int (Array.length steps)) sum
  | Last_step, Some last -> last
  | _, None -> assert false

let forward_multi_selective ~draw_crossbar ~draw_filter ~draw_act net steps =
  forward_multi_readout ~readout:Integrated ~draw_crossbar ~draw_filter ~draw_act net steps

let forward_readout ~readout ~draw net x =
  let steps = Array.init (T.cols x) (fun k -> T.col x k) in
  forward_multi_readout ~readout ~draw_crossbar:draw ~draw_filter:draw ~draw_act:draw net steps

let forward_multi ~draw net steps =
  forward_multi_selective ~draw_crossbar:draw ~draw_filter:draw ~draw_act:draw net steps

let forward_selective ~draw_crossbar ~draw_filter ~draw_act net x =
  let steps = Array.init (T.cols x) (fun k -> T.col x k) in
  forward_multi_selective ~draw_crossbar ~draw_filter ~draw_act net steps

let forward ~draw net x =
  let time = T.cols x in
  let steps = Array.init time (fun k -> T.col x k) in
  forward_multi ~draw net steps

(* Pure-tensor forward for evaluation: same sampling order and same
   floating-point operation sequence as the Var path, but no autodiff
   nodes are allocated and the per-step kernels run in preallocated
   buffers. Logits are bit-identical to [forward] under the same
   draw(s).

   Realization (the RNG-consuming part) is separated from the per-block
   workspace (state + scratch buffers): the batched forwards below
   realize ONCE per draw and then chunk the batch through zero-copy row
   views, which is what makes the block size a pure performance knob —
   every block sees the same physical circuit instance, so results are
   bit-identical for any batch size. *)
type layer_real_t = {
  cb_t : Crossbar.realization_t;
  filt_t : Filter_layer.realization_t;
  act_t : Ptanh.realization_t;
  n_out : int;
}

let realize_net_t ~draw_crossbar ~draw_filter ~draw_act net =
  List.map
    (fun (cb, fl, act) ->
      (* Same sampling order as the Var path: filters, activation,
         crossbar. *)
      let filt_t = Filter_layer.realize_t ~draw:draw_filter fl in
      let act_t = Ptanh.realize_t ~draw:draw_act act in
      let cb_t = Crossbar.realize_t ~draw:draw_crossbar cb in
      { cb_t; filt_t; act_t; n_out = Crossbar.outputs cb })
    net.layers

(* Raw coefficient views of one realized layer, extracted once per
   draw so the per-time-step loop below touches plain tensors only. *)
type layer_kernel = {
  k_theta : T.t;
  k_bias : T.t;
  k_inv : T.t;
  k_stages : (T.t * T.t) array;
  k_e1 : T.t;
  k_e2 : T.t;
  k_e3 : T.t;
  k_e4 : T.t;
}

let make_kernel real =
  let theta, bias, inv = Crossbar.kernel_t real.cb_t in
  let e1, e2, e3, e4 = Ptanh.kernel_t real.act_t in
  {
    k_theta = theta;
    k_bias = bias;
    k_inv = inv;
    k_stages = Filter_layer.kernel_t real.filt_t;
    k_e1 = e1;
    k_e2 = e2;
    k_e3 = e3;
    k_e4 = e4;
  }

type layer_ws = {
  real : layer_real_t;
  kern : layer_kernel;
  filt_state_t : Filter_layer.state_t;
  cb_out : T.t;
  act_out : T.t;
}

(* [states], when given, hands each layer a pre-initialized filter
   state for this block (usually row views of a full-batch state) —
   the batched forwards use it to keep [`Gaussian] initial-state draws
   independent of the block size. Otherwise a fresh state is drawn
   here with [init] semantics. *)
let make_ws ?(init = `V0) ?states ~batch reals =
  let states =
    match states with
    | Some sts -> sts
    | None -> List.map (fun real -> Filter_layer.init_state_t ~init real.filt_t ~batch) reals
  in
  List.map2
    (fun real st ->
      {
        real;
        kern = make_kernel real;
        filt_state_t = st;
        cb_out = T.zeros ~rows:batch ~cols:real.n_out;
        act_out = T.zeros ~rows:batch ~cols:real.n_out;
      })
    reals states

let step_layer_t ?precision lr x =
  Crossbar.apply_t_into ~dst:lr.cb_out lr.real.cb_t x;
  let filtered = Filter_layer.step_t lr.real.filt_t lr.filt_state_t lr.cb_out in
  Ptanh.apply_t_into ?precision ~dst:lr.act_out lr.real.act_t filtered;
  lr.act_out

(* Fused layer step for the no-grad path: after the crossbar matmul,
   one elementwise pass applies bias + normalization, the RC filter
   stage update(s) and the printable-tanh activation. Every one of
   those kernels is elementwise over the same [batch x features] block
   with no cross-element reduction, and the fused loop evaluates the
   exact per-element operation sequence of [step_layer_t]
   (apply_t_into; step_t; Ptanh.apply_t_into) — so fusing the passes
   changes memory traffic only, never a result bit. Unchecked accesses
   are covered by the shape asserts plus the tensor view invariant.
   Specialized for the two printable filter orders; any other stage
   count falls back to the unfused sequence.

   [~fast] selects the activation implementation: [false] is
   [Stdlib.tanh] (bit-identical to the Var path), [true] is
   [Fast_math.tanh] (≤1e-7 absolute tanh error; see docs/BATCHING.md).
   Nothing else in the element sequence changes between the tiers. *)
(* Activation pass over one row whose elements already hold the scaled
   pre-activations: tanh in place, then the eta2/eta1 affine. Two entry
   points for the transcendental — `Fast runs [Fast_math.apply_range]
   (one unboxed in-module loop; a per-element cross-module call would
   box both floats without flambda and cost more than the polynomial
   saves), `Exact the direct unboxed [Stdlib.tanh] extern. The
   per-element expression tree is identical to the former single-pass
   form, so `Exact results stay bit-for-bit unchanged. *)
let activation_rows ~fast od ~off ~cols e2 eo2 e1 eo1 =
  let module BA = Bigarray.Array1 in
  if fast then Pnc_tensor.Fast_math.apply_range od ~off ~len:cols
  else
    for c = 0 to cols - 1 do
      BA.unsafe_set od (off + c) (Stdlib.tanh (BA.unsafe_get od (off + c)))
    done;
  for c = 0 to cols - 1 do
    BA.unsafe_set od (off + c)
      ((BA.unsafe_get od (off + c) *. BA.unsafe_get e2 (eo2 + c))
      +. BA.unsafe_get e1 (eo1 + c))
  done

let fused_step_layer ~fast lr x =
  let module BA = Bigarray.Array1 in
  let k = lr.kern in
  let mm = lr.cb_out and out = lr.act_out in
  let rows = T.rows mm and cols = T.cols mm in
  assert (T.cols k.k_bias = cols && T.cols k.k_inv = cols && T.cols k.k_e1 = cols);
  let md = mm.T.data and od = out.T.data in
  let bd = k.k_bias.T.data and bo = k.k_bias.T.off in
  let id = k.k_inv.T.data and io = k.k_inv.T.off in
  let e1 = k.k_e1.T.data and eo1 = k.k_e1.T.off in
  let e2 = k.k_e2.T.data and eo2 = k.k_e2.T.off in
  let e3 = k.k_e3.T.data and eo3 = k.k_e3.T.off in
  let e4 = k.k_e4.T.data and eo4 = k.k_e4.T.off in
  match (lr.filt_state_t, k.k_stages) with
  | [| s1; s2 |], [| (a1, b1); (a2, b2) |] ->
      T.matmul_into ~dst:mm x k.k_theta;
      assert (T.same_shape s1 mm && T.same_shape s2 mm);
      assert (T.cols a1 = cols && T.cols b1 = cols && T.cols a2 = cols && T.cols b2 = cols);
      let s1d = s1.T.data and s2d = s2.T.data in
      let a1d = a1.T.data and a1o = a1.T.off in
      let b1d = b1.T.data and b1o = b1.T.off in
      let a2d = a2.T.data and a2o = a2.T.off in
      let b2d = b2.T.data and b2o = b2.T.off in
      for r = 0 to rows - 1 do
        let mo = mm.T.off + (r * cols)
        and oo = out.T.off + (r * cols)
        and s1o = s1.T.off + (r * cols)
        and s2o = s2.T.off + (r * cols) in
        for c = 0 to cols - 1 do
          let v =
            (BA.unsafe_get md (mo + c) +. BA.unsafe_get bd (bo + c))
            *. BA.unsafe_get id (io + c)
          in
          let s1v =
            (BA.unsafe_get s1d (s1o + c) *. BA.unsafe_get a1d (a1o + c))
            +. (v *. BA.unsafe_get b1d (b1o + c))
          in
          BA.unsafe_set s1d (s1o + c) s1v;
          let s2v =
            (BA.unsafe_get s2d (s2o + c) *. BA.unsafe_get a2d (a2o + c))
            +. (s1v *. BA.unsafe_get b2d (b2o + c))
          in
          BA.unsafe_set s2d (s2o + c) s2v;
          BA.unsafe_set od (oo + c)
            ((s2v +. -.BA.unsafe_get e3 (eo3 + c)) *. BA.unsafe_get e4 (eo4 + c))
        done;
        activation_rows ~fast od ~off:oo ~cols e2 eo2 e1 eo1
      done;
      out
  | [| s1 |], [| (a1, b1) |] ->
      T.matmul_into ~dst:mm x k.k_theta;
      assert (T.same_shape s1 mm);
      assert (T.cols a1 = cols && T.cols b1 = cols);
      let s1d = s1.T.data in
      let a1d = a1.T.data and a1o = a1.T.off in
      let b1d = b1.T.data and b1o = b1.T.off in
      for r = 0 to rows - 1 do
        let mo = mm.T.off + (r * cols)
        and oo = out.T.off + (r * cols)
        and s1o = s1.T.off + (r * cols) in
        for c = 0 to cols - 1 do
          let v =
            (BA.unsafe_get md (mo + c) +. BA.unsafe_get bd (bo + c))
            *. BA.unsafe_get id (io + c)
          in
          let s1v =
            (BA.unsafe_get s1d (s1o + c) *. BA.unsafe_get a1d (a1o + c))
            +. (v *. BA.unsafe_get b1d (b1o + c))
          in
          BA.unsafe_set s1d (s1o + c) s1v;
          BA.unsafe_set od (oo + c)
            ((s1v +. -.BA.unsafe_get e3 (eo3 + c)) *. BA.unsafe_get e4 (eo4 + c))
        done;
        activation_rows ~fast od ~off:oo ~cols e2 eo2 e1 eo1
      done;
      out
  | _ -> step_layer_t ~precision:(if fast then `Fast else `Exact) lr x

(* Run one block of rows through all time steps against an already
   realized circuit instance. *)
let forward_block ?(precision = `Exact) ?(state_init = `V0) ?states ~readout ~classes reals
    steps =
  let fast = match precision with `Fast -> true | `Exact -> false in
  let batch = T.rows steps.(0) in
  let ws = make_ws ~init:state_init ?states ~batch reals in
  let acc = T.zeros ~rows:batch ~cols:classes in
  let last = ref acc in
  Array.iter
    (fun x_t ->
      let signal = ref x_t in
      List.iter (fun lr -> signal := fused_step_layer ~fast lr !signal) ws;
      (match readout with
      | Integrated -> T.add_inplace acc !signal
      | Last_step -> ());
      last := !signal)
    steps;
  match readout with
  | Integrated -> T.scale (1. /. float_of_int (Array.length steps)) acc
  | Last_step -> T.copy !last

let forward_multi_readout_t ?state_init ~readout ~draw_crossbar ~draw_filter ~draw_act net
    steps =
  assert (Array.length steps > 0);
  let reals = realize_net_t ~draw_crossbar ~draw_filter ~draw_act net in
  forward_block ?state_init ~readout ~classes:net.n_classes reals steps

let forward_multi_readout_batch_t ?batch_size ?precision ?(state_init = `V0) ~readout
    ~draw_crossbar ~draw_filter ~draw_act net steps =
  assert (Array.length steps > 0);
  let rows = T.rows steps.(0) in
  let block = Batch.resolve ?batch_size ~n:rows () in
  let reals = realize_net_t ~draw_crossbar ~draw_filter ~draw_act net in
  (* Under [`Gaussian] the initial-state draws must not depend on the
     block size: pre-draw the full-batch states once and hand each
     block its row slice. [`V0] keeps the historical per-block init
     (bit-identical, and row-independent anyway); [`Zero] rides the
     same pre-draw path — it is row-independent too, so slicing
     changes nothing. *)
  let full_states =
    match state_init with
    | `V0 -> None
    | init ->
        Some
          (List.map (fun real -> Filter_layer.init_state_t ~init real.filt_t ~batch:rows) reals)
  in
  let t0 = Batch.start () in
  let out = T.zeros ~rows ~cols:net.n_classes in
  let blocks =
    Batch.chunked ~rows ~block (fun ~row ~len ->
        let sub = Array.map (fun s -> T.rows_view s ~row ~len) steps in
        let states =
          Option.map (List.map (Array.map (fun s -> T.rows_view s ~row ~len))) full_states
        in
        let logits = forward_block ?precision ?states ~readout ~classes:net.n_classes reals sub in
        T.blit_into ~dst:(T.rows_view out ~row ~len) logits)
  in
  Batch.record ~block ~rows ~blocks ~t0;
  out

let forward_multi_selective_t ~draw_crossbar ~draw_filter ~draw_act net steps =
  forward_multi_readout_t ~readout:Integrated ~draw_crossbar ~draw_filter ~draw_act net steps

let forward_multi_t ~draw net steps =
  forward_multi_selective_t ~draw_crossbar:draw ~draw_filter:draw ~draw_act:draw net steps

let forward_multi_batch_t ?batch_size ?precision ?state_init ~draw net steps =
  forward_multi_readout_batch_t ?batch_size ?precision ?state_init ~readout:Integrated
    ~draw_crossbar:draw ~draw_filter:draw ~draw_act:draw net steps

let forward_selective_t ~draw_crossbar ~draw_filter ~draw_act net x =
  let steps = Array.init (T.cols x) (fun k -> T.col x k) in
  forward_multi_selective_t ~draw_crossbar ~draw_filter ~draw_act net steps

let forward_selective_batch_t ?batch_size ?precision ~draw_crossbar ~draw_filter ~draw_act
    net x =
  let steps = Array.init (T.cols x) (fun k -> T.col x k) in
  forward_multi_readout_batch_t ?batch_size ?precision ~readout:Integrated ~draw_crossbar
    ~draw_filter ~draw_act net steps

let forward_readout_t ~readout ~draw net x =
  let steps = Array.init (T.cols x) (fun k -> T.col x k) in
  forward_multi_readout_t ~readout ~draw_crossbar:draw ~draw_filter:draw ~draw_act:draw net
    steps

let forward_t ~draw net x =
  let steps = Array.init (T.cols x) (fun k -> T.col x k) in
  forward_multi_t ~draw net steps

let forward_batch_t ?batch_size ?precision ?state_init ~draw net x =
  let steps = Array.init (T.cols x) (fun k -> T.col x k) in
  forward_multi_batch_t ?batch_size ?precision ?state_init ~draw net steps

let predict ?(draw = Variation.deterministic) net x = T.argmax_rows (forward_t ~draw net x)

let predict_batch ?batch_size ?precision ?state_init ?(draw = Variation.deterministic) net x =
  T.argmax_rows (forward_batch_t ?batch_size ?precision ?state_init ~draw net x)

let clamp net =
  List.iter
    (fun (cb, fl, act) ->
      Crossbar.clamp cb;
      Filter_layer.clamp fl;
      Ptanh.clamp act)
    net.layers
