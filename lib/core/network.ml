module T = Pnc_tensor.Tensor
module Var = Pnc_autodiff.Var

type arch = Ptpnc | Adapt

let arch_name = function Ptpnc -> "pTPNC" | Adapt -> "ADAPT-pNC"

type layer = Crossbar.t * Filter_layer.t * Ptanh.t

type t = { arch : arch; n_in : int; n_hidden : int; n_classes : int; layers : layer list }

let create ?hidden rng arch ~inputs ~classes =
  let hidden =
    match hidden with Some h -> h | None -> ( match arch with Ptpnc -> 3 | Adapt -> 6)
  in
  let filter_order =
    match arch with Ptpnc -> Filter_layer.First | Adapt -> Filter_layer.Second
  in
  let layer ~n_in ~n_out =
    ( Crossbar.create rng ~inputs:n_in ~outputs:n_out,
      Filter_layer.create rng filter_order ~features:n_out,
      Ptanh.create rng ~features:n_out )
  in
  {
    arch;
    n_in = inputs;
    n_hidden = hidden;
    n_classes = classes;
    layers = [ layer ~n_in:inputs ~n_out:hidden; layer ~n_in:hidden ~n_out:classes ];
  }

let arch net = net.arch
let inputs net = net.n_in
let classes net = net.n_classes
let hidden net = net.n_hidden
let layers net = net.layers

let params net =
  List.concat_map
    (fun (cb, fl, act) -> Crossbar.params cb @ Filter_layer.params fl @ Ptanh.params act)
    net.layers

let named_params net =
  List.concat
    (List.mapi
       (fun i (cb, fl, act) ->
         let under prefix ps =
           List.map (fun (n, p) -> (Printf.sprintf "layer%d/%s/%s" i prefix n, p)) ps
         in
         under "crossbar" (Crossbar.named_params cb)
         @ under "filter" (Filter_layer.named_params fl)
         @ under "ptanh" (Ptanh.named_params act))
       net.layers)

let n_params net =
  List.fold_left (fun acc v -> acc + T.numel (Var.value v)) 0 (params net)

(* One sampled physical instance of a layer, shared across time steps:
   the variation-folded component values are realized once, only the
   input-dependent computation runs per step. *)
type layer_real = {
  cb : Crossbar.realization;
  filt : Filter_layer.realization;
  act : Ptanh.realization;
  mutable filt_state : Filter_layer.state;
}

let realize_layers_selective ~draw_crossbar ~draw_filter ~draw_act ~batch net =
  List.map
    (fun (cb, fl, act) ->
      (* Explicit sampling order — filters, activation, crossbar. The
         tensor path below must consume the draws' random streams in
         exactly this order for realization parity. *)
      let filt = Filter_layer.realize ~draw:draw_filter fl in
      let act = Ptanh.realize ~draw:draw_act act in
      let cb = Crossbar.realize ~draw:draw_crossbar cb in
      { cb; filt; act; filt_state = Filter_layer.init_state filt ~batch })
    net.layers

let step_layer lr x =
  let summed = Crossbar.apply lr.cb x in
  let state', filtered = Filter_layer.step lr.filt lr.filt_state summed in
  lr.filt_state <- state';
  Ptanh.apply lr.act filtered

type readout = Integrated | Last_step

let forward_multi_readout ~readout ~draw_crossbar ~draw_filter ~draw_act net steps =
  assert (Array.length steps > 0);
  let batch = T.rows steps.(0) in
  let reals = realize_layers_selective ~draw_crossbar ~draw_filter ~draw_act ~batch net in
  (* Default read-out: the class scores integrate the output voltage
     over the window — physically one slow RC stage per output (counted
     by Hardware). Reading only the final instant (Last_step, kept for
     the ablation bench) forgets transient evidence faster than any
     printable RC can retain it. *)
  let acc = ref None in
  Array.iter
    (fun x_t ->
      let signal = ref (Var.const x_t) in
      List.iter (fun lr -> signal := step_layer lr !signal) reals;
      acc :=
        Some
          (match (readout, !acc) with
          | Last_step, _ | Integrated, None -> !signal
          | Integrated, Some a -> Var.add a !signal))
    steps;
  match (readout, !acc) with
  | Integrated, Some sum -> Var.scale (1. /. float_of_int (Array.length steps)) sum
  | Last_step, Some last -> last
  | _, None -> assert false

let forward_multi_selective ~draw_crossbar ~draw_filter ~draw_act net steps =
  forward_multi_readout ~readout:Integrated ~draw_crossbar ~draw_filter ~draw_act net steps

let forward_readout ~readout ~draw net x =
  let steps = Array.init (T.cols x) (fun k -> T.col x k) in
  forward_multi_readout ~readout ~draw_crossbar:draw ~draw_filter:draw ~draw_act:draw net steps

let forward_multi ~draw net steps =
  forward_multi_selective ~draw_crossbar:draw ~draw_filter:draw ~draw_act:draw net steps

let forward_selective ~draw_crossbar ~draw_filter ~draw_act net x =
  let steps = Array.init (T.cols x) (fun k -> T.col x k) in
  forward_multi_selective ~draw_crossbar ~draw_filter ~draw_act net steps

let forward ~draw net x =
  let time = T.cols x in
  let steps = Array.init time (fun k -> T.col x k) in
  forward_multi ~draw net steps

(* Pure-tensor forward for evaluation: same sampling order and same
   floating-point operation sequence as the Var path, but no autodiff
   nodes are allocated and the per-step kernels run in preallocated
   buffers. Logits are bit-identical to [forward] under the same
   draw(s). *)
type layer_fast = {
  cb_t : Crossbar.realization_t;
  filt_t : Filter_layer.realization_t;
  act_t : Ptanh.realization_t;
  filt_state_t : Filter_layer.state_t;
  cb_out : T.t;
  act_out : T.t;
}

let realize_layers_t ~draw_crossbar ~draw_filter ~draw_act ~batch net =
  List.map
    (fun (cb, fl, act) ->
      let filt_t = Filter_layer.realize_t ~draw:draw_filter fl in
      let act_t = Ptanh.realize_t ~draw:draw_act act in
      let cb_t = Crossbar.realize_t ~draw:draw_crossbar cb in
      let n_out = Crossbar.outputs cb in
      {
        cb_t;
        filt_t;
        act_t;
        filt_state_t = Filter_layer.init_state_t filt_t ~batch;
        cb_out = T.zeros ~rows:batch ~cols:n_out;
        act_out = T.zeros ~rows:batch ~cols:n_out;
      })
    net.layers

let step_layer_t lr x =
  Crossbar.apply_t_into ~dst:lr.cb_out lr.cb_t x;
  let filtered = Filter_layer.step_t lr.filt_t lr.filt_state_t lr.cb_out in
  Ptanh.apply_t_into ~dst:lr.act_out lr.act_t filtered;
  lr.act_out

let forward_multi_readout_t ~readout ~draw_crossbar ~draw_filter ~draw_act net steps =
  assert (Array.length steps > 0);
  let batch = T.rows steps.(0) in
  let reals = realize_layers_t ~draw_crossbar ~draw_filter ~draw_act ~batch net in
  let acc = T.zeros ~rows:batch ~cols:net.n_classes in
  let last = ref acc in
  Array.iter
    (fun x_t ->
      let signal = ref x_t in
      List.iter (fun lr -> signal := step_layer_t lr !signal) reals;
      (match readout with
      | Integrated -> T.add_inplace acc !signal
      | Last_step -> ());
      last := !signal)
    steps;
  match readout with
  | Integrated -> T.scale (1. /. float_of_int (Array.length steps)) acc
  | Last_step -> T.copy !last

let forward_multi_selective_t ~draw_crossbar ~draw_filter ~draw_act net steps =
  forward_multi_readout_t ~readout:Integrated ~draw_crossbar ~draw_filter ~draw_act net steps

let forward_multi_t ~draw net steps =
  forward_multi_selective_t ~draw_crossbar:draw ~draw_filter:draw ~draw_act:draw net steps

let forward_selective_t ~draw_crossbar ~draw_filter ~draw_act net x =
  let steps = Array.init (T.cols x) (fun k -> T.col x k) in
  forward_multi_selective_t ~draw_crossbar ~draw_filter ~draw_act net steps

let forward_readout_t ~readout ~draw net x =
  let steps = Array.init (T.cols x) (fun k -> T.col x k) in
  forward_multi_readout_t ~readout ~draw_crossbar:draw ~draw_filter:draw ~draw_act:draw net
    steps

let forward_t ~draw net x =
  let steps = Array.init (T.cols x) (fun k -> T.col x k) in
  forward_multi_t ~draw net steps

let predict ?(draw = Variation.deterministic) net x = T.argmax_rows (forward_t ~draw net x)

let clamp net =
  List.iter
    (fun (cb, fl, act) ->
      Crossbar.clamp cb;
      Filter_layer.clamp fl;
      Ptanh.clamp act)
    net.layers
