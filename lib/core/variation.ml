module Rng = Pnc_util.Rng
module Linalg = Pnc_util.Linalg
module T = Pnc_tensor.Tensor

type dist =
  | Uniform
  | Gaussian
  | Gmm of { w1 : float; m1 : float; s1 : float; m2 : float; s2 : float }

type drift = { temp_c : float; age_hours : float }
type corr = { rho : float; clen : float; drift : drift option }
type spec = { level : float; dist : dist; corr : corr option }

let none = { level = 0.; dist = Uniform; corr = None }
let uniform level = { level; dist = Uniform; corr = None }
let gaussian level = { level; dist = Gaussian; corr = None }

(* A dominant tight mode plus a minority wide mode: the qualitative
   shape reported for printed EGT parameter spreads. *)
let default_gmm level =
  { level; dist = Gmm { w1 = 0.85; m1 = 0.; s1 = 0.35; m2 = 0.3; s2 = 1.0 }; corr = None }

let default_corr = { rho = 0.5; clen = 2.0; drift = None }
let correlated ?drift ?(rho = default_corr.rho) ?(clen = default_corr.clen) spec =
  { spec with corr = Some { rho; clen; drift } }

let corr_active spec =
  spec.level > 0. && match spec.corr with Some c -> c.rho <> 0. | None -> false

let sample_scalar rng spec =
  if spec.level = 0. then 1.
  else
    match spec.dist with
    | Uniform -> Rng.uniform rng ~lo:(1. -. spec.level) ~hi:(1. +. spec.level)
    | Gaussian ->
        let s = spec.level /. 2. in
        let x = Rng.gaussian ~mu:1. ~sigma:s rng in
        Float.max (1. -. (3. *. s)) (Float.min (1. +. (3. *. s)) x)
    | Gmm { w1; m1; s1; m2; s2 } ->
        let m, s = if Rng.float rng 1. < w1 then (m1, s1) else (m2, s2) in
        1. +. (spec.level *. Rng.gaussian ~mu:m ~sigma:s rng)

let sample_eps rng spec ~rows ~cols = T.init ~rows ~cols (fun _ _ -> sample_scalar rng spec)

(* {2 Correlated sampling}

   Devices of one [rows x cols] parameter tensor sit on an integer grid
   at their own (row, col) index; the covariance over their variation
   factors is Σ = (1−ρ)·I + ρ·K with K_ij = exp(−d_ij/clen), d the
   Euclidean grid distance. Σ has unit diagonal, so the marginals stay
   N(1, (level/2)²) no matter the correlation — only the joint changes.
   Sampling goes through a Cholesky factor L (Σ = LLᵀ), cached per
   (ρ, clen, rows, cols): eps = 1 + (level/2)·L·z with z ~ N(0, I). *)

let chol_lock = Mutex.create ()

let chol_cache : (float * float * int * int, float array array) Hashtbl.t = Hashtbl.create 16

let chol_factor ~rho ~clen ~rows ~cols =
  let key = (rho, clen, rows, cols) in
  Mutex.lock chol_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock chol_lock) @@ fun () ->
  match Hashtbl.find_opt chol_cache key with
  | Some l -> l
  | None ->
      let n = rows * cols in
      let sigma =
        Array.init n (fun i ->
            Array.init n (fun j ->
                if i = j then 1.
                else
                  let dr = float_of_int ((i / cols) - (j / cols))
                  and dc = float_of_int ((i mod cols) - (j mod cols)) in
                  rho *. exp (-.sqrt ((dr *. dr) +. (dc *. dc)) /. clen)))
      in
      let l, _jitter = Linalg.cholesky_psd sigma in
      Hashtbl.add chol_cache key l;
      l

let sample_eps_corr rng ~level ~rho ~clen ~rows ~cols =
  let l = chol_factor ~rho ~clen ~rows ~cols in
  let n = rows * cols in
  (* z is drawn row-major so the stream consumption order is part of
     the documented realization contract (docs/VARIATION.md). *)
  let z = Array.init n (fun _ -> Rng.gaussian rng) in
  let w = Linalg.mat_vec_lower l z in
  let s = level /. 2. in
  let lo = 1. -. (4. *. s) and hi = 1. +. (4. *. s) in
  (* The clamp is symmetric around 1 so the antithetic mirror
     eps ↦ 2 − eps commutes with it. *)
  T.init ~rows ~cols (fun r c ->
      Float.max lo (Float.min hi (1. +. (s *. w.((r * cols) + c)))))

let sample_mu rng ~cols =
  T.init ~rows:1 ~cols (fun _ _ -> Rng.uniform rng ~lo:Printed.mu_min ~hi:Printed.mu_max)

let sample_v0 rng ~sigma ~cols = T.init ~rows:1 ~cols (fun _ _ -> Rng.gaussian ~sigma rng)

(* {2 SPICE-characterized drift multipliers}

   The temperature factor on filter R and the aging factor on filter C
   come from transient characterization of the drifted RC stage
   ({!Pnc_spice.Drift}), not hand-picked constants. Characterization is
   deterministic and expensive relative to a draw, so it is memoized
   per (temp_c, age_hours) behind a mutex (Pool workers are domains). *)

let drift_lock = Mutex.create ()
let drift_cache : (float * float, float * float) Hashtbl.t = Hashtbl.create 8

let drift_mults { temp_c; age_hours } =
  Mutex.lock drift_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock drift_lock) @@ fun () ->
  match Hashtbl.find_opt drift_cache (temp_c, age_hours) with
  | Some m -> m
  | None ->
      (* The survey point of the coupling study: R = 330 Ω, C = 10 µF
         sampled at the data rate. Multipliers are ratios of fitted
         time constants, so the absolute R/C choice cancels to first
         order. *)
      let p = Pnc_spice.Drift.characterize ~r:330. ~c:1e-5 ~dt:Printed.dt ~temp_c ~age_hours () in
      let m = (p.Pnc_spice.Drift.r_mult, p.Pnc_spice.Drift.c_mult) in
      Hashtbl.add drift_cache (temp_c, age_hours) m;
      m

type draw = { rng : Rng.t; spec : spec; v0_sigma : float; mirror : bool; ste : bool }

let make_draw ?(v0_sigma = 0.05) ?(ste = false) rng spec =
  { rng; spec; v0_sigma; mirror = false; ste }

let deterministic =
  { rng = Rng.create ~seed:0; spec = none; v0_sigma = 0.; mirror = false; ste = false }

let is_deterministic d = d.spec.level = 0. && d.v0_sigma = 0.

let antithetic_pair ?(v0_sigma = 0.05) ?(ste = false) rng spec =
  (* The mirrored draw replays the same random stream (a state copy)
     and reflects every sample around its mean — the classic antithetic
     variates construction, which cancels the linear part of the loss's
     dependence on the variation factors. Under correlation the mirror
     is defined in the whitened space (z ↦ −z); because eps is affine
     in z (eps = 1 + s·L·z) this is exactly the same ε ↦ 2 − ε map as
     the scalar model, so one post-transform reflection serves both. *)
  let r1 = Rng.split rng in
  let r2 = Rng.copy r1 in
  ( { rng = r1; spec; v0_sigma; mirror = false; ste },
    { rng = r2; spec; v0_sigma; mirror = true; ste } )

let eps_for d ~rows ~cols =
  match d.spec.corr with
  | Some c when corr_active d.spec ->
      let e = sample_eps_corr d.rng ~level:d.spec.level ~rho:c.rho ~clen:c.clen ~rows ~cols in
      if d.mirror then T.map (fun x -> 2. -. x) e else e
  | _ ->
      (* Degenerate correlation (corr absent, ρ = 0, or level 0) falls
         through to the literal i.i.d. path: same RNG consumption, same
         float operations — bit-identical to the pre-correlation
         model. *)
      if d.spec.level = 0. then T.create ~rows ~cols 1.
      else
        let e = sample_eps d.rng d.spec ~rows ~cols in
        if d.mirror then T.map (fun x -> 2. -. x) e else e

let drift_of d = match d.spec.corr with Some { drift = Some dr; _ } -> Some dr | _ -> None
let drift_r_mult d = match drift_of d with None -> 1. | Some dr -> fst (drift_mults dr)
let drift_c_mult d = match drift_of d with None -> 1. | Some dr -> snd (drift_mults dr)

let mu_for d ~cols =
  if is_deterministic d then T.create ~rows:1 ~cols 1.
  else
    let mu = sample_mu d.rng ~cols in
    if d.mirror then T.map (fun m -> Printed.mu_min +. Printed.mu_max -. m) mu else mu

let v0_for d ~cols =
  if d.v0_sigma = 0. then T.zeros ~rows:1 ~cols
  else
    let v0 = sample_v0 d.rng ~sigma:d.v0_sigma ~cols in
    if d.mirror then T.neg v0 else v0
