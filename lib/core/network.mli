(** Printed temporal processing networks.

    A pTPB layer (Fig. 4) is a resistor crossbar followed by a bank of
    learnable low-pass filters and a printed tanh activation. Stacking
    two layers gives:

    - the baseline {b pTPNC} of prior work: first-order filters,
      trained without variation awareness;
    - the proposed {b ADAPT-pNC}: second-order learnable filters
      (SO-LF), trained variation-aware.

    The network processes a univariate (or multivariate) series one
    step at a time; class scores are the time-integrated outputs. *)

type arch = Ptpnc | Adapt

val arch_name : arch -> string

type t

val create :
  ?hidden:int -> Pnc_util.Rng.t -> arch -> inputs:int -> classes:int -> t
(** Two pTPB layers: [inputs -> hidden -> classes]. Default hidden
    width: 3 for [Ptpnc] (matching the small baseline circuits of
    Table III) and 6 for [Adapt] (the paper reports ≈1.9x devices). *)

val arch : t -> arch
val inputs : t -> int
val classes : t -> int
val hidden : t -> int
val params : t -> Pnc_autodiff.Var.t list

val named_params : t -> (string * Pnc_autodiff.Var.t) list
(** Stable checkpoint path names
    ([layer<i>/{crossbar,filter,ptanh}/<leaf>]); same order as
    {!params}. *)

val n_params : t -> int

val layers : t -> (Crossbar.t * Filter_layer.t * Ptanh.t) list
(** In order, for hardware costing and inspection. *)

val forward : draw:Variation.draw -> t -> Pnc_tensor.Tensor.t -> Pnc_autodiff.Var.t
(** [forward ~draw net x] runs the batch of series [x]
    ([batch x time], univariate) and returns the logits
    [batch x classes]: the time-average of the output voltages —
    physically an RC integrator per class output (accounted for by
    {!Hardware}). One component sample is
    drawn per call and shared across all time steps — the circuit is
    the same physical device throughout the sequence. *)

val forward_multi :
  draw:Variation.draw -> t -> Pnc_tensor.Tensor.t array -> Pnc_autodiff.Var.t
(** Multivariate variant: one [batch x inputs] tensor per time step. *)

type readout = Integrated | Last_step

val forward_readout :
  readout:readout -> draw:Variation.draw -> t -> Pnc_tensor.Tensor.t -> Pnc_autodiff.Var.t
(** {!forward} with a selectable read-out: [Integrated] (the default,
    time-averaged output) or [Last_step] (the final instant only) —
    used by the read-out ablation bench. *)

val forward_selective :
  draw_crossbar:Variation.draw ->
  draw_filter:Variation.draw ->
  draw_act:Variation.draw ->
  t ->
  Pnc_tensor.Tensor.t ->
  Pnc_autodiff.Var.t
(** Forward with independent variation draws per component family —
    lets {!Sensitivity} attribute robustness loss to crossbar
    conductances, filter RC values or activation parameters
    separately. *)

(** {1 Pure-tensor forward (no-grad evaluation path)}

    Same sampling order and floating-point operation sequence as the
    Var-based forwards above — logits are bit-identical under the same
    draw — but no autodiff nodes are allocated and the per-step kernels
    run in preallocated buffers. *)

val forward_t : draw:Variation.draw -> t -> Pnc_tensor.Tensor.t -> Pnc_tensor.Tensor.t

val forward_multi_t :
  draw:Variation.draw -> t -> Pnc_tensor.Tensor.t array -> Pnc_tensor.Tensor.t

val forward_readout_t :
  readout:readout -> draw:Variation.draw -> t -> Pnc_tensor.Tensor.t -> Pnc_tensor.Tensor.t

val forward_multi_selective_t :
  draw_crossbar:Variation.draw ->
  draw_filter:Variation.draw ->
  draw_act:Variation.draw ->
  t ->
  Pnc_tensor.Tensor.t array ->
  Pnc_tensor.Tensor.t

val forward_selective_t :
  draw_crossbar:Variation.draw ->
  draw_filter:Variation.draw ->
  draw_act:Variation.draw ->
  t ->
  Pnc_tensor.Tensor.t ->
  Pnc_tensor.Tensor.t
(** Tensor-path twin of {!forward_selective} — bit-identical logits
    under the same draws, no autodiff nodes; safe inside a
    {!Pnc_util.Pool} task. *)

(** {1 Batched forwards}

    Twins of the tensor forwards above with a [?batch_size] knob
    (resolved by {!Batch.resolve}: explicit argument, else
    [ADAPT_PNC_BATCH], else the whole batch as one block). The
    variation draw is realized once per call and shared across all row
    blocks, so the block size is a pure performance knob — logits are
    bit-identical to the unbatched twin (and hence to the Var path) for
    every batch size.

    [?precision] selects the activation tier for the fused kernels:
    [`Exact] (the default) keeps every result bit-identical to the Var
    path; [`Fast] substitutes {!Pnc_tensor.Fast_math.tanh} (≤1e-7
    absolute tanh error) for the per-element transcendental. The knob
    affects arithmetic only — realization order, batching and shapes are
    unchanged.

    [?state_init] selects the filter initial-voltage semantics
    ({!Filter_layer.state_init}; default [`V0], the historical
    behaviour). Under [`Gaussian] the full-batch states are pre-drawn
    before chunking, so the result stays bit-identical for every batch
    size — like the draw, the initial state describes the physical
    situation, not the evaluation schedule. *)

val forward_batch_t :
  ?batch_size:int ->
  ?precision:[ `Exact | `Fast ] ->
  ?state_init:Filter_layer.state_init ->
  draw:Variation.draw ->
  t ->
  Pnc_tensor.Tensor.t ->
  Pnc_tensor.Tensor.t

val forward_multi_batch_t :
  ?batch_size:int ->
  ?precision:[ `Exact | `Fast ] ->
  ?state_init:Filter_layer.state_init ->
  draw:Variation.draw ->
  t ->
  Pnc_tensor.Tensor.t array ->
  Pnc_tensor.Tensor.t

val forward_selective_batch_t :
  ?batch_size:int ->
  ?precision:[ `Exact | `Fast ] ->
  draw_crossbar:Variation.draw ->
  draw_filter:Variation.draw ->
  draw_act:Variation.draw ->
  t ->
  Pnc_tensor.Tensor.t ->
  Pnc_tensor.Tensor.t

val predict : ?draw:Variation.draw -> t -> Pnc_tensor.Tensor.t -> int array
(** Argmax class per sample; deterministic unless a draw is given.
    Runs on the tensor fast path. *)

val predict_batch :
  ?batch_size:int ->
  ?precision:[ `Exact | `Fast ] ->
  ?state_init:Filter_layer.state_init ->
  ?draw:Variation.draw ->
  t ->
  Pnc_tensor.Tensor.t ->
  int array
(** {!predict} on the batched path. *)

val clamp : t -> unit
(** Project every component value into its printable window. *)
