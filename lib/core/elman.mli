(** Hardware-agnostic 2-layer Elman RNN — the paper's reference
    accuracy model (Table I, first column), trained with the same
    optimizer and schedule as the circuit models. *)

type t

val create : ?hidden:int -> Pnc_util.Rng.t -> inputs:int -> classes:int -> t
(** Default [hidden = 8]. *)

val hidden : t -> int
val inputs : t -> int
val classes : t -> int
val params : t -> Pnc_autodiff.Var.t list

val named_params : t -> (string * Pnc_autodiff.Var.t) list
(** Stable checkpoint path names ([l1/w] .. [b_out]); same order as
    {!params}. *)

val n_params : t -> int

val forward : t -> Pnc_tensor.Tensor.t -> Pnc_autodiff.Var.t
(** [batch x time] univariate series to [batch x classes] logits
    (linear read-out of the final hidden state). *)

val forward_multi : t -> Pnc_tensor.Tensor.t array -> Pnc_autodiff.Var.t

val forward_t : t -> Pnc_tensor.Tensor.t -> Pnc_tensor.Tensor.t
(** Pure-tensor forward (no autodiff nodes); bit-identical logits. *)

val forward_multi_t :
  ?precision:[ `Exact | `Fast ] ->
  t ->
  Pnc_tensor.Tensor.t array ->
  Pnc_tensor.Tensor.t

val forward_batch_t :
  ?batch_size:int ->
  ?precision:[ `Exact | `Fast ] ->
  t ->
  Pnc_tensor.Tensor.t ->
  Pnc_tensor.Tensor.t
(** Batched twin of {!forward_t} ([?batch_size] resolved by
    {!Batch.resolve}); bit-identical logits for any batch size under
    [`Exact] (the default). [`Fast] substitutes
    {!Pnc_tensor.Fast_math.tanh} for the cell activations. *)

val predict : t -> Pnc_tensor.Tensor.t -> int array
(** Runs on the tensor fast path. *)

val predict_batch :
  ?batch_size:int ->
  ?precision:[ `Exact | `Fast ] ->
  t ->
  Pnc_tensor.Tensor.t ->
  int array
(** {!predict} on the batched path. *)
