(** Training and evaluation harness (Sec. IV-A3).

    The paper's procedure: AdamW with default settings, full-batch
    training, initial learning rate 0.1 halved after [patience] epochs
    without validation improvement, stop when the learning rate falls
    below 1e-5, repeated over random seeds. Variation-aware models
    optimize the Monte-Carlo objective of {!Mc_loss}; the weights that
    achieved the best validation loss are restored at the end. *)

type config = {
  lr : float;
  lr_factor : float;
  patience : int;
  min_lr : float;
  max_epochs : int;  (** hard cap on top of the schedule-driven stop *)
  mc_samples : int;  (** N of Eq. 13 (ignored by the reference RNN) *)
  mc_samples_val : int;  (** draws for the validation objective *)
  variation : Variation.spec;  (** training-time variation *)
  grad_clip : float option;
  weight_decay : float;
  noise_injection : bool;
      (** train through perturbed realizations with straight-through
          gradients to the clean parameters ({!Mc_loss.expected}'s [ni]
          mode); forward/loss values are unchanged, only gradients *)
  antithetic : bool;
      (** draw the Monte-Carlo samples as mirrored pairs
          ({!Variation.antithetic_pair}) in both the training and the
          validation objective — a same-cost variance reduction that
          matters most under correlated variation, where whole regions
          of the ε field move coherently *)
}

val paper_config : config
(** The paper's exact budget (patience 100, lr 0.1 → 1e-5). Long. *)

val fast_config : config
(** Reduced budget used by the benchmark harness so the full table
    regenerates in minutes: patience 12, max 260 epochs. *)

val smoke_config : config
(** Tiny budget for unit tests. *)

type history = {
  epochs_run : int;
  final_lr : float;
  best_val_loss : float;
  train_loss_curve : float array;
  val_loss_curve : float array;
}

val to_xy : Pnc_data.Dataset.t -> Pnc_tensor.Tensor.t * int array
(** Dataset to ([batch x time] tensor, labels). *)

exception Killed of int
(** Raised by [train] right after writing the checkpoint for epoch [e]
    when called with [~die_at_epoch:e] — a deterministic crash point
    for the fault-injection tests and the resume demo. *)

val train :
  ?rng:Pnc_util.Rng.t ->
  ?checkpoint_every:int ->
  ?checkpoint_path:string ->
  ?resume_from:string ->
  ?die_at_epoch:int ->
  config ->
  Model.t ->
  Pnc_data.Dataset.split ->
  history
(** Trains in place (the model's parameter tensors are mutated);
    restores the best-validation snapshot before returning.

    With [checkpoint_path], a ["train"] checkpoint is written
    atomically every [checkpoint_every] epochs (default 1) and always
    at the final epoch. With [resume_from], the loop state — including
    the RNG stream position — is restored from that checkpoint before
    the first epoch, and the run continues bit-identically with the
    uninterrupted one: same per-epoch losses, same final parameters,
    and a [history] covering the run from epoch 1. Raises
    {!Pnc_ckpt.Ckpt.Error} if the resume checkpoint is corrupt or was
    written for a different model. [die_at_epoch] raises {!Killed}
    after that epoch's checkpoint is written. *)

val accuracy :
  ?batch_size:int ->
  ?precision:[ `Exact | `Fast ] ->
  ?draw:Variation.draw ->
  Model.t ->
  Pnc_data.Dataset.t ->
  float
(** Deterministic accuracy unless a draw is supplied. Runs on the
    batched no-grad path; [batch_size] (default: whole split, or
    [ADAPT_PNC_BATCH]) only chunks the evaluation — the result is
    identical for every value. [precision] selects the activation tier
    (default [`Exact]). *)

val accuracy_under_variation :
  ?batch_size:int ->
  ?precision:[ `Exact | `Fast ] ->
  ?pool:Pnc_util.Pool.t ->
  rng:Pnc_util.Rng.t ->
  spec:Variation.spec ->
  draws:int ->
  Model.t ->
  Pnc_data.Dataset.t ->
  float
(** Mean accuracy over [draws] independent physical instances — the
    paper's "tested under ±10 % variation" protocol. Each instance owns
    a pre-split child stream; with [pool] the instances evaluate in
    parallel with a result identical to the sequential one. Each
    instance evaluates on the batched path; like the pool size,
    [batch_size] never changes the result ([precision] can — [`Fast]
    uses the bounded fast tanh). *)

val epoch_seconds : ?rng:Pnc_util.Rng.t -> config -> Model.t -> Pnc_data.Dataset.split -> float
(** Wall-clock seconds of one training epoch (forward + backward +
    step), used for the runtime comparison (Table II). *)
