module T = Pnc_tensor.Tensor
module Var = Pnc_autodiff.Var
module Optimizer = Pnc_optim.Optimizer
module Scheduler = Pnc_optim.Scheduler
module Dataset = Pnc_data.Dataset
module Rng = Pnc_util.Rng
module Obs = Pnc_obs.Obs
module Clock = Pnc_obs.Clock

let epochs_counter = Obs.Counter.make "train.epochs"
let epoch_seconds_hist = Obs.Histogram.make "train.epoch_seconds"
let eval_draws_counter = Obs.Counter.make "eval.variation_draws"

type config = {
  lr : float;
  lr_factor : float;
  patience : int;
  min_lr : float;
  max_epochs : int;
  mc_samples : int;
  mc_samples_val : int;
  variation : Variation.spec;
  grad_clip : float option;
  weight_decay : float;
  noise_injection : bool;
  antithetic : bool;
}

let paper_config =
  {
    lr = 0.1;
    lr_factor = 0.5;
    patience = 100;
    min_lr = 1e-5;
    max_epochs = 20_000;
    mc_samples = 4;
    mc_samples_val = 2;
    variation = Variation.uniform 0.1;
    grad_clip = Some 5.;
    weight_decay = 0.01;
    noise_injection = false;
    antithetic = false;
  }

let fast_config =
  {
    paper_config with
    lr = 0.05;
    patience = 20;
    max_epochs = 500;
    mc_samples = 2;
    mc_samples_val = 1;
  }

let smoke_config =
  { fast_config with patience = 5; max_epochs = 40; mc_samples = 2 }

type history = {
  epochs_run : int;
  final_lr : float;
  best_val_loss : float;
  train_loss_curve : float array;
  val_loss_curve : float array;
}

let to_xy (d : Dataset.t) = (T.of_rows d.x, d.y)

let snapshot params = List.map (fun p -> T.copy (Var.value p)) params

let restore params snap =
  List.iter2
    (fun p s ->
      let v = Var.value p in
      for r = 0 to T.rows v - 1 do
        for c = 0 to T.cols v - 1 do
          T.set v r c (T.get s r c)
        done
      done)
    params snap

exception Killed of int

let train ?(rng = Rng.create ~seed:0) ?checkpoint_every ?checkpoint_path ?resume_from
    ?die_at_epoch cfg model split =
  Obs.Span.with_ "train" @@ fun () ->
  let x_train, y_train = to_xy split.Dataset.train in
  let x_val, y_val = to_xy split.Dataset.valid in
  let params = Model.params model in
  let opt = Optimizer.adamw ~weight_decay:cfg.weight_decay ~params () in
  let sched =
    Scheduler.plateau ~factor:cfg.lr_factor ~patience:cfg.patience ~min_lr:cfg.min_lr
      ~init_lr:cfg.lr ()
  in
  let train_curve = ref [] and val_curve = ref [] in
  let best = ref infinity and best_snap = ref (snapshot params) in
  let epoch = ref 0 and stop = ref false in
  let rng =
    match resume_from with
    | None -> rng
    | Some path ->
        (* Restores model params, optimizer and scheduler in place;
           curves are stored oldest-first, the refs hold newest-first. *)
        let r = Persist.load_train_state ~path ~model ~opt ~sched in
        let r = match r with Ok r -> r | Error e -> raise (Pnc_ckpt.Ckpt.Error e) in
        epoch := r.Persist.r_epoch;
        best := r.Persist.r_best;
        best_snap := r.Persist.r_best_snap;
        train_curve := List.rev (Array.to_list r.Persist.r_train_curve);
        val_curve := List.rev (Array.to_list r.Persist.r_val_curve);
        r.Persist.r_rng
  in
  if Obs.enabled () && cfg.noise_injection then
    Obs.emit "train.ni"
      [
        ("mc_samples", Obs.Int cfg.mc_samples);
        ("level", Obs.Float cfg.variation.Variation.level);
        ( "corr_rho",
          Obs.Float
            (match cfg.variation.Variation.corr with
            | Some c -> c.Variation.rho
            | None -> 0.) );
      ];
  let every = match checkpoint_every with Some k when k >= 1 -> k | _ -> 1 in
  let maybe_checkpoint () =
    match checkpoint_path with
    | None -> ()
    | Some path ->
        if
          !epoch mod every = 0 || !stop || !epoch = cfg.max_epochs
          || die_at_epoch = Some !epoch
        then
          Persist.save_train_state ~path ~model ~opt ~sched ~rng ~epoch:!epoch ~best:!best
            ~best_snap:!best_snap
            ~train_curve:(Array.of_list (List.rev !train_curve))
            ~val_curve:(Array.of_list (List.rev !val_curve))
  in
  while (not !stop) && !epoch < cfg.max_epochs do
    incr epoch;
    Obs.Counter.incr epochs_counter;
    let t0 = if Obs.enabled () then Clock.now () else 0. in
    Optimizer.zero_grads opt;
    let loss =
      Mc_loss.expected ~antithetic:cfg.antithetic ~ni:cfg.noise_injection ~rng
        ~spec:cfg.variation ~n:cfg.mc_samples model ~x:x_train ~labels:y_train
    in
    Var.backward loss;
    (match cfg.grad_clip with
    | Some m -> Optimizer.clip_grad_norm opt ~max_norm:m
    | None -> ());
    Optimizer.step opt ~lr:(Scheduler.lr sched);
    Model.clamp model;
    let val_loss =
      Mc_loss.expected_value ~antithetic:cfg.antithetic ~rng ~spec:cfg.variation
        ~n:cfg.mc_samples_val model ~x:x_val ~labels:y_val
    in
    train_curve := T.get_scalar (Var.value loss) :: !train_curve;
    val_curve := val_loss :: !val_curve;
    if val_loss < !best then begin
      best := val_loss;
      best_snap := snapshot params
    end;
    if Obs.enabled () then begin
      let dt = Clock.elapsed t0 in
      Obs.Histogram.observe epoch_seconds_hist dt;
      Obs.emit "train.epoch"
        [
          ("epoch", Obs.Int !epoch);
          ("train_loss", Obs.Float (T.get_scalar (Var.value loss)));
          ("val_loss", Obs.Float val_loss);
          ("lr", Obs.Float (Scheduler.lr sched));
          ("grad_norm", Obs.Float (Optimizer.grad_norm opt));
          ("seconds", Obs.Float dt);
        ]
    end;
    (match Scheduler.observe sched val_loss with `Stop -> stop := true | `Continue -> ());
    maybe_checkpoint ();
    match die_at_epoch with
    | Some e when e = !epoch -> raise (Killed !epoch)
    | _ -> ()
  done;
  restore params !best_snap;
  if Obs.enabled () then
    Obs.emit "train.done"
      [
        ("epochs_run", Obs.Int !epoch);
        ("final_lr", Obs.Float (Scheduler.lr sched));
        ("best_val_loss", Obs.Float !best);
      ];
  {
    epochs_run = !epoch;
    final_lr = Scheduler.lr sched;
    best_val_loss = !best;
    train_loss_curve = Array.of_list (List.rev !train_curve);
    val_loss_curve = Array.of_list (List.rev !val_curve);
  }

let accuracy ?batch_size ?precision ?draw model d =
  let x, y = to_xy d in
  let pred = Model.predict_batch ?batch_size ?precision ?draw model x in
  Pnc_util.Stats.accuracy ~pred ~truth:y

let accuracy_under_variation ?batch_size ?precision ?pool ~rng ~spec ~draws model d =
  assert (draws >= 1);
  let t0 = if Obs.enabled () then Clock.now () else 0. in
  let x, y = to_xy d in
  (* One pre-split child stream per sampled instance — values and
     summation order are identical for every pool worker count. *)
  let rngs = Rng.split_n rng draws in
  let instance i =
    let draw = Variation.make_draw rngs.(i) spec in
    Pnc_util.Stats.accuracy
      ~pred:(Model.predict_batch ?batch_size ?precision ~draw model x)
      ~truth:y
  in
  let accs =
    match pool with
    | None -> Array.init draws instance
    | Some p -> Pnc_util.Pool.init p ~n:draws instance
  in
  let acc = Array.fold_left ( +. ) 0. accs /. float_of_int draws in
  Obs.Counter.add eval_draws_counter draws;
  if Obs.enabled () then begin
    let dt = Clock.elapsed t0 in
    Obs.emit "eval.variation"
      [
        ("draws", Obs.Int draws);
        ("seconds", Obs.Float dt);
        ("draws_per_s", Obs.Float (float_of_int draws /. Float.max dt 1e-9));
        ("accuracy", Obs.Float acc);
      ]
  end;
  acc

let epoch_seconds ?(rng = Rng.create ~seed:0) cfg model split =
  let x_train, y_train = to_xy split.Dataset.train in
  let params = Model.params model in
  let opt = Optimizer.adamw ~weight_decay:cfg.weight_decay ~params () in
  let run () =
    Optimizer.zero_grads opt;
    let loss =
      Mc_loss.expected ~antithetic:cfg.antithetic ~ni:cfg.noise_injection ~rng
        ~spec:cfg.variation ~n:cfg.mc_samples model ~x:x_train ~labels:y_train
    in
    Var.backward loss;
    Optimizer.step opt ~lr:1e-4;
    Model.clamp model
  in
  (* One warm-up epoch, then the timed mean of three. *)
  run ();
  Pnc_util.Timer.time_mean ~repeats:3 run
