(* Batch-size resolution and telemetry for the batched no-grad
   evaluation path (see docs/BATCHING.md).

   The block size is a pure performance knob: every batched forward
   realizes the variation draw once and then chunks the batch through
   row views, so results are bit-identical for any block size. That is
   why the knob deliberately stays out of Config.fingerprint — grid
   cache entries remain valid whatever ADAPT_PNC_BATCH is set to. *)

module Obs = Pnc_obs.Obs
module Clock = Pnc_obs.Clock

let samples_counter = Obs.Counter.make "eval.batch.samples"
let blocks_counter = Obs.Counter.make "eval.batch.blocks"
let seconds_hist = Obs.Histogram.make "eval.batch_seconds"

(* A malformed ADAPT_PNC_BATCH used to be ignored silently, which made
   typos indistinguishable from the default whole-split resolution.
   Warn once per process; the knob still falls back to the default. *)
let env_warned = ref false

let env_default () =
  match Sys.getenv_opt "ADAPT_PNC_BATCH" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n > 0 -> Some n
      | _ ->
          if not !env_warned then begin
            env_warned := true;
            Printf.eprintf
              "adapt-pnc: ignoring malformed ADAPT_PNC_BATCH=%S (want a positive integer)\n%!"
              s
          end;
          None)

let resolve ?batch_size ~n () =
  match batch_size with
  | Some b when b <= 0 ->
      (* An explicit argument is a caller decision, not an environment
         default: reject it instead of silently running whole-split. *)
      invalid_arg
        (Printf.sprintf "Batch.resolve: batch_size must be positive (got %d)" b)
  | Some b -> Stdlib.min b (Stdlib.max 1 n)
  | None -> (
      match env_default () with
      | Some b -> Stdlib.min b (Stdlib.max 1 n)
      | None -> Stdlib.max 1 n)

let start () = if Obs.enabled () then Clock.now () else 0.

let record ~block ~rows ~blocks ~t0 =
  Obs.Counter.add samples_counter rows;
  Obs.Counter.add blocks_counter blocks;
  if Obs.enabled () then begin
    let dt = Clock.elapsed t0 in
    Obs.Histogram.observe seconds_hist dt;
    Obs.emit "eval.batch"
      [
        ("batch_size", Obs.Int block);
        ("rows", Obs.Int rows);
        ("blocks", Obs.Int blocks);
        ("seconds", Obs.Float dt);
        ("rows_per_s", Obs.Float (float_of_int rows /. Float.max dt 1e-9));
      ]
  end

(* Precision-tier resolution for entry points (CLI, serve, bench,
   Config.from_env). Unlike the batch-size knob, precision CAN change
   results (`Fast deviates by up to 1e-7 per tanh), so the environment
   variable is read only here at the boundary — library functions
   default to `Exact plainly, never to the environment. That keeps the
   eps-0 parity tests honest under a CI run with
   ADAPT_PNC_PRECISION=fast exported, and it forces every Fast run to
   flow through a Config/flag that records the tier in the
   fingerprint. *)

type precision = [ `Exact | `Fast ]

let precision_name = function `Exact -> "exact" | `Fast -> "fast"

let precision_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "exact" -> Some `Exact
  | "fast" -> Some `Fast
  | _ -> None

let precision_env_warned = ref false

let precision_env_default () =
  match Sys.getenv_opt "ADAPT_PNC_PRECISION" with
  | None -> None
  | Some s -> (
      match precision_of_string s with
      | Some p -> Some p
      | None ->
          if not !precision_env_warned then begin
            precision_env_warned := true;
            Printf.eprintf
              "adapt-pnc: ignoring malformed ADAPT_PNC_PRECISION=%S (want exact|fast)\n%!"
              s
          end;
          None)

let resolve_precision ?precision () =
  match precision with
  | Some p -> p
  | None -> ( match precision_env_default () with Some p -> p | None -> `Exact)

let chunked ~rows ~block f =
  let blocks = ref 0 in
  let r0 = ref 0 in
  while !r0 < rows do
    let len = Stdlib.min block (rows - !r0) in
    f ~row:!r0 ~len;
    incr blocks;
    r0 := !r0 + len
  done;
  !blocks
