(** Process-variation modeling and the reparameterization strategy of
    Sec. III-A.

    Trainable component values are treated as random variables through
    multiplicative factors: θ = θ₀ ⊙ ε, R = R₀ ⊙ ε_R, C = C₀ ⊙ ε_C.
    The default distribution is the uniform ±level model used for the
    headline ±10 % results; a two-component Gaussian mixture is
    provided to mirror the device-level study the paper cites
    (Rasheed et al.).

    Beyond the paper's i.i.d. per-device factors, a {!corr} spec models
    what real printed circuits exhibit: spatially {e correlated}
    process variation (a distance-kernel covariance over the device
    grid, sampled through a cached Cholesky factor) and
    temperature/aging drift on the learnable-filter R and C whose
    magnitudes are characterized by {!Pnc_spice.Drift} transient fits
    rather than hand-picked constants. See docs/VARIATION.md. *)

type dist =
  | Uniform  (** ε ~ U[1 − level, 1 + level] *)
  | Gaussian  (** ε ~ N(1, (level/2)²), clipped to ±3σ *)
  | Gmm of { w1 : float; m1 : float; s1 : float; m2 : float; s2 : float }
      (** two-component mixture of Gaussians around 1 (scaled by
          [level] relative spread) *)

type drift = { temp_c : float; age_hours : float }
(** Operating point whose R/C multipliers are characterized by
    {!Pnc_spice.Drift} (memoized; deterministic). *)

type corr = {
  rho : float;  (** overall correlation weight in [0, 1]; 0 = i.i.d. *)
  clen : float;  (** correlation length of the distance kernel, in device-grid units *)
  drift : drift option;  (** optional temperature/aging operating point *)
}

type spec = { level : float; dist : dist; corr : corr option }

val none : spec
(** Zero variation: every ε is exactly 1. *)

val uniform : float -> spec
(** [uniform 0.1] is the paper's ±10 % precision-printing model. *)

val gaussian : float -> spec
val default_gmm : float -> spec

val default_corr : corr
(** ρ = 0.5, clen = 2.0, no drift — the operating point of the [+NI]
    ablation column and of the [corr_var_acc] grid metric. *)

val correlated : ?drift:drift -> ?rho:float -> ?clen:float -> spec -> spec
(** Attach a correlation spec (defaults from {!default_corr}) to a base
    spec. Correlated draws have N(1, (level/2)²) marginals — the
    covariance Σ = (1−ρ)·I + ρ·K, K_ij = exp(−d_ij/clen) over device
    grid positions, has unit diagonal — and the [dist] field governs
    only the i.i.d. branch. Samples are clamped to ±4σ around 1
    (symmetric, so the antithetic mirror commutes with the clamp). *)

val corr_active : spec -> bool
(** Whether draws from this spec take the correlated path. [false] when
    [corr] is absent, ρ = 0, or level = 0 — in which case sampling is
    {e bit-identical} to the pre-correlation i.i.d. model. *)

val sample_eps : Pnc_util.Rng.t -> spec -> rows:int -> cols:int -> Pnc_tensor.Tensor.t
(** A tensor of independent ε factors (the i.i.d. model; ignores
    [corr] — use {!eps_for} for the full spec semantics). *)

val sample_scalar : Pnc_util.Rng.t -> spec -> float

val sample_mu : Pnc_util.Rng.t -> cols:int -> Pnc_tensor.Tensor.t
(** Per-filter coupling factors µ ~ U[{!Printed.mu_min},
    {!Printed.mu_max}] as a [1 x cols] row. *)

val sample_v0 : Pnc_util.Rng.t -> sigma:float -> cols:int -> Pnc_tensor.Tensor.t
(** Random initial filter voltages V₀ ~ N(0, σ²), [1 x cols]. *)

(** {1 Per-forward-pass draw}

    A [draw] bundles one joint sample of every non-trainable random
    input of a forward pass. Trainable-parameter ε tensors are sampled
    lazily per parameter via {!eps_for} so models of any shape can use
    the same draw. *)

type draw = {
  rng : Pnc_util.Rng.t;
  spec : spec;
  v0_sigma : float;
  mirror : bool;  (** reflect every sample around its mean (antithetic) *)
  ste : bool;
      (** noise-injection mode: realizations forward through the
          perturbed parameters but backpropagate through the clean ones
          (straight-through estimator; {!Pnc_autodiff.Var.ste_mul}) *)
}

val make_draw : ?v0_sigma:float -> ?ste:bool -> Pnc_util.Rng.t -> spec -> draw
(** Defaults: [v0_sigma = 0.05] V, [ste = false]. [ste] changes only
    gradients — forward values are bit-identical either way. *)

val antithetic_pair : ?v0_sigma:float -> ?ste:bool -> Pnc_util.Rng.t -> spec -> draw * draw
(** A draw and its mirror image (ε ↦ 2 − ε, µ reflected in its range,
    V₀ negated): averaging a loss over the pair cancels the linear part
    of its dependence on the variation factors — a variance-reduced
    two-sample Monte-Carlo estimate (extension; not in the paper).
    Under correlated draws the mirror is taken in the whitened space
    (z ↦ −z); since ε is affine in z this is the same ε ↦ 2 − ε
    reflection, so the pair property holds for both models. *)

val deterministic : draw
(** No variation, zero V₀, µ fixed at 1 — used for clean evaluation. *)

val is_deterministic : draw -> bool

val eps_for : draw -> rows:int -> cols:int -> Pnc_tensor.Tensor.t
(** Correlated when {!corr_active}; otherwise the i.i.d. model,
    bit-identical to the pre-correlation implementation. *)

val mu_for : draw -> cols:int -> Pnc_tensor.Tensor.t
val v0_for : draw -> cols:int -> Pnc_tensor.Tensor.t

val drift_r_mult : draw -> float
(** SPICE-characterized temperature multiplier for filter R; exactly 1
    when the spec carries no drift point (in which case realizations
    skip the multiplication entirely, keeping bit-exactness). *)

val drift_c_mult : draw -> float
(** SPICE-characterized aging multiplier for filter C; 1 when no drift
    point. *)
