module Stats = Pnc_util.Stats
module Obs = Pnc_obs.Obs
module Clock = Pnc_obs.Clock

let draws_counter = Obs.Counter.make "yield.draws"

type result = {
  draws : int;
  mean_acc : float;
  std_acc : float;
  worst : float;
  best : float;
  yield : float;
  threshold : float;
}

let of_accuracies ~threshold accs =
  let n = Array.length accs in
  assert (n > 0);
  let ok = Array.fold_left (fun acc a -> if a >= threshold then acc + 1 else acc) 0 accs in
  {
    draws = n;
    mean_acc = Stats.mean accs;
    std_acc = Stats.std accs;
    worst = Array.fold_left Float.min accs.(0) accs;
    best = Array.fold_left Float.max accs.(0) accs;
    yield = float_of_int ok /. float_of_int n;
    threshold;
  }

let estimate ?batch_size ?pool ~rng ~spec ~threshold ~draws model dataset =
  assert (draws >= 1);
  let t0 = if Obs.enabled () then Clock.now () else 0. in
  let x, y = Train.to_xy dataset in
  let accs =
    if Model.is_circuit model then begin
      (* One pre-split child stream per printed instance: instance i is
         a function of (rng state, i) alone, so the sampled accuracies
         are identical in value and order for every pool worker
         count (and with no pool at all). *)
      let rngs = Pnc_util.Rng.split_n rng draws in
      let instance i =
        let draw = Variation.make_draw rngs.(i) spec in
        Pnc_util.Stats.accuracy
          ~pred:(Model.predict_batch ?batch_size ~draw model x)
          ~truth:y
      in
      match pool with
      | None -> Array.init draws instance
      | Some p -> Pnc_util.Pool.init p ~n:draws instance
    end
    else
      [|
        Pnc_util.Stats.accuracy ~pred:(Model.predict_batch ?batch_size model x) ~truth:y;
      |]
  in
  let r = of_accuracies ~threshold accs in
  Obs.Counter.add draws_counter r.draws;
  if Obs.enabled () then begin
    let dt = Clock.elapsed t0 in
    Obs.emit "yield.estimate"
      [
        ("draws", Obs.Int r.draws);
        ("seconds", Obs.Float dt);
        ("draws_per_s", Obs.Float (float_of_int r.draws /. Float.max dt 1e-9));
        ("mean_acc", Obs.Float r.mean_acc);
        ("yield", Obs.Float r.yield);
        ("threshold", Obs.Float r.threshold);
      ]
  end;
  r

let sweep_levels ?batch_size ?pool ~rng ~levels ~threshold ~draws model dataset =
  List.map
    (fun level ->
      let spec = if level = 0. then Variation.none else Variation.uniform level in
      let draws = if level = 0. then 1 else draws in
      (level, estimate ?batch_size ?pool ~rng ~spec ~threshold ~draws model dataset))
    levels

let describe r =
  Printf.sprintf "acc %.3f ± %.3f [%.3f, %.3f], yield(acc>=%.2f) = %.0f%% over %d instances"
    r.mean_acc r.std_acc r.worst r.best r.threshold (100. *. r.yield) r.draws
