(** Learnable printed tanh-like activation (Fig. 3b).

    ptanh(V) = η₁ + η₂ · tanh((V − η₃) · η₄), with per-neuron η
    parameters determined in hardware by the component values
    [R₁, R₂, T₁, T₂] of the activation circuit. The η are trained
    directly (as in the authors' prior pNC work) and perturbed
    multiplicatively under process variation. *)

type t

val create : Pnc_util.Rng.t -> features:int -> t
val features : t -> int
val params : t -> Pnc_autodiff.Var.t list

val named_params : t -> (string * Pnc_autodiff.Var.t) list
(** Stable checkpoint path names ([eta1] .. [eta4]); same order as
    {!params}. *)

val forward_const :
  ?ste:bool -> eps:Pnc_tensor.Tensor.t array -> t -> Pnc_autodiff.Var.t -> Pnc_autodiff.Var.t
(** [eps] holds four [1 x features] factors for η₁..η₄. [ste] (default
    false) folds them with {!Pnc_autodiff.Var.ste_mul} — identical
    forward, straight-through backward. *)

val forward : draw:Variation.draw -> t -> Pnc_autodiff.Var.t -> Pnc_autodiff.Var.t

val sample_eps : draw:Variation.draw -> t -> Pnc_tensor.Tensor.t array

type realization
(** One physical instance (ε folded into the η rows), shared across the
    time steps of a sequence. *)

val realize : draw:Variation.draw -> t -> realization
val apply : realization -> Pnc_autodiff.Var.t -> Pnc_autodiff.Var.t

type realization_t
(** Pure-tensor realization for the no-grad evaluation path. *)

val realize_t : draw:Variation.draw -> t -> realization_t

val apply_t_into :
  ?precision:[ `Exact | `Fast ] ->
  dst:Pnc_tensor.Tensor.t ->
  realization_t ->
  Pnc_tensor.Tensor.t ->
  unit
(** Writes ptanh of [x] into [dst] elementwise ([dst] may alias [x]).
    [`Exact] (the default) uses [Stdlib.tanh] and is bit-identical to
    the Var path; [`Fast] substitutes {!Pnc_tensor.Fast_math.tanh}
    (≤1e-7 absolute tanh error, so ≤|η₂|·1e-7 ≤ 1e-7 per output
    element) for the single transcendental. *)

val apply_batch_t :
  ?precision:[ `Exact | `Fast ] ->
  ?block:int ->
  realization_t ->
  Pnc_tensor.Tensor.t ->
  Pnc_tensor.Tensor.t
(** Batched twin of {!apply_t_into}: applies the realized activation to
    [x] block of rows by block of rows (default: one block) through
    zero-copy row views. Bit-identical to the unblocked kernel at the
    same [precision] for any [block]. *)

val kernel_t :
  realization_t ->
  Pnc_tensor.Tensor.t * Pnc_tensor.Tensor.t * Pnc_tensor.Tensor.t * Pnc_tensor.Tensor.t
(** The realized (η₁, η₂, η₃, η₄) coefficient rows backing
    {!apply_t_into}, exposed so {!Network} can fuse the activation into
    its single-pass layer kernel. Read-only views. *)

val eta_values : t -> Pnc_tensor.Tensor.t array
(** Current η₁..η₄ rows, for inspection and hardware costing. *)

val clamp : t -> unit
(** Keep the η in circuit-realizable windows: |η₁| ≤ 1, η₂ ∈ [0.2, 1],
    |η₃| ≤ 1, η₄ ∈ [0.5, 6]. *)
