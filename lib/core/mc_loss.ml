module Var = Pnc_autodiff.Var
module Loss = Pnc_autodiff.Loss

let loss_of_draw ~draw model ~x ~labels =
  Loss.softmax_cross_entropy ~logits:(Model.logits ~draw model x) ~labels

let one_sample ~rng ~spec model ~x ~labels =
  let draw =
    if Model.is_circuit model then Variation.make_draw rng spec else Variation.deterministic
  in
  loss_of_draw ~draw model ~x ~labels

let expected ?(antithetic = false) ~rng ~spec ~n model ~x ~labels =
  assert (n >= 1);
  let n = if Model.is_circuit model then n else 1 in
  if antithetic && Model.is_circuit model && n >= 2 then begin
    (* n/2 mirrored pairs (plus one plain sample if n is odd). *)
    let pairs = n / 2 in
    let acc = ref None in
    let add l = acc := Some (match !acc with None -> l | Some a -> Var.add a l) in
    for _ = 1 to pairs do
      let d1, d2 = Variation.antithetic_pair rng spec in
      add (loss_of_draw ~draw:d1 model ~x ~labels);
      add (loss_of_draw ~draw:d2 model ~x ~labels)
    done;
    if n mod 2 = 1 then add (one_sample ~rng ~spec model ~x ~labels);
    match !acc with
    | Some sum -> Var.scale (1. /. float_of_int n) sum
    | None -> assert false
  end
  else begin
    let rec sum_losses acc k =
      if k = 0 then acc
      else sum_losses (Var.add acc (one_sample ~rng ~spec model ~x ~labels)) (k - 1)
    in
    let first = one_sample ~rng ~spec model ~x ~labels in
    Var.scale (1. /. float_of_int n) (sum_losses first (n - 1))
  end

(* Forward-only estimate on the tensor fast path: consumes the random
   stream exactly like [expected] (same draw construction, same order)
   but never allocates autodiff nodes. *)
let value_of_draw ~draw model ~x ~labels =
  Loss.cross_entropy_value ~logits:(Model.logits_t ~draw model x) ~labels

let one_sample_value ~rng ~spec model ~x ~labels =
  let draw =
    if Model.is_circuit model then Variation.make_draw rng spec else Variation.deterministic
  in
  value_of_draw ~draw model ~x ~labels

let expected_value ?(antithetic = false) ~rng ~spec ~n model ~x ~labels =
  assert (n >= 1);
  let n = if Model.is_circuit model then n else 1 in
  if antithetic && Model.is_circuit model && n >= 2 then begin
    let pairs = n / 2 in
    let acc = ref 0. in
    for _ = 1 to pairs do
      let d1, d2 = Variation.antithetic_pair rng spec in
      acc := !acc +. value_of_draw ~draw:d1 model ~x ~labels;
      acc := !acc +. value_of_draw ~draw:d2 model ~x ~labels
    done;
    if n mod 2 = 1 then acc := !acc +. one_sample_value ~rng ~spec model ~x ~labels;
    1. /. float_of_int n *. !acc
  end
  else begin
    let acc = ref (one_sample_value ~rng ~spec model ~x ~labels) in
    for _ = 2 to n do
      acc := !acc +. one_sample_value ~rng ~spec model ~x ~labels
    done;
    1. /. float_of_int n *. !acc
  end
