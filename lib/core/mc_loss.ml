module Var = Pnc_autodiff.Var
module Loss = Pnc_autodiff.Loss
module Rng = Pnc_util.Rng
module Pool = Pnc_util.Pool
module Obs = Pnc_obs.Obs
module Clock = Pnc_obs.Clock

let draws_counter = Obs.Counter.make "mc.draws"
let eval_seconds_hist = Obs.Histogram.make "mc.eval_seconds"

(* Per-call telemetry for both MC estimators. [path] distinguishes the
   autodiff ("var") and no-grad tensor ("tensor") evaluation paths;
   everything is behind the enabled-guard so the null sink reads no
   clock and allocates nothing. *)
let emit_eval ~path ~n ~t0 =
  if Obs.enabled () then begin
    let dt = Clock.elapsed t0 in
    Obs.Histogram.observe eval_seconds_hist dt;
    Obs.emit "mc.eval"
      [
        ("path", Obs.Str path);
        ("draws", Obs.Int n);
        ("seconds", Obs.Float dt);
        ("draws_per_s", Obs.Float (float_of_int n /. Float.max dt 1e-9));
      ]
  end

(* Correlated-model telemetry: one event per estimator call whose spec
   takes the correlated sampling path (not per draw — the draw count is
   already on [mc.draws]). *)
let emit_corr ~spec ~n =
  if Obs.enabled () && Variation.corr_active spec then
    match spec.Variation.corr with
    | Some c ->
        Obs.emit "mc.corr_draw"
          [
            ("rho", Obs.Float c.Variation.rho);
            ("clen", Obs.Float c.Variation.clen);
            ("draws", Obs.Int n);
          ]
    | None -> ()

let loss_of_draw ~draw model ~x ~labels =
  Loss.softmax_cross_entropy ~logits:(Model.logits ~draw model x) ~labels

let one_sample ?ste ~rng ~spec model ~x ~labels =
  let draw =
    if Model.is_circuit model then Variation.make_draw ?ste rng spec
    else Variation.deterministic
  in
  loss_of_draw ~draw model ~x ~labels

(* Per-draw stream pre-splitting (the engine's determinism contract):
   every MC draw — or antithetic pair — owns one child generator,
   derived by indexed splitting from the caller's stream. Draw i is
   then a function of (parent state, i) alone, so the per-draw values
   are identical whether the draws run sequentially or distributed
   over a domain pool of any size, and the Var and tensor paths below
   consume randomness identically. *)
let draw_rngs ~antithetic ~rng ~n =
  let tasks = if antithetic then (n / 2) + (n mod 2) else n in
  Rng.split_n rng tasks

let normalize ~antithetic ~n model =
  let n = if Model.is_circuit model then n else 1 in
  (n, antithetic && Model.is_circuit model && n >= 2)

let expected ?(antithetic = false) ?(ni = false) ~rng ~spec ~n model ~x ~labels =
  assert (n >= 1);
  let t0 = if Obs.enabled () then Clock.now () else 0. in
  let n, antithetic = normalize ~antithetic ~n model in
  let rngs = draw_rngs ~antithetic ~rng ~n in
  (* [ni] marks every draw as straight-through: forward losses (and so
     the reported objective) are bit-identical to the plain estimator;
     only the gradients change. *)
  let tasks =
    if antithetic then
      (* n/2 mirrored pairs (plus one plain sample if n is odd); each
         task contributes the pair's summed loss so the accumulation
         order matches [expected_value] exactly. *)
      Array.init (Array.length rngs) (fun j ->
          if j < n / 2 then begin
            let d1, d2 = Variation.antithetic_pair ~ste:ni rngs.(j) spec in
            Var.add (loss_of_draw ~draw:d1 model ~x ~labels) (loss_of_draw ~draw:d2 model ~x ~labels)
          end
          else one_sample ~ste:ni ~rng:rngs.(j) ~spec model ~x ~labels)
    else Array.init n (fun i -> one_sample ~ste:ni ~rng:rngs.(i) ~spec model ~x ~labels)
  in
  let sum =
    Array.fold_left
      (fun acc l -> match acc with None -> Some l | Some a -> Some (Var.add a l))
      None tasks
  in
  let result =
    match sum with Some s -> Var.scale (1. /. float_of_int n) s | None -> assert false
  in
  Obs.Counter.add draws_counter n;
  emit_eval ~path:"var" ~n ~t0;
  emit_corr ~spec ~n;
  result

(* Forward-only estimate on the tensor fast path: consumes the random
   stream exactly like [expected] (same pre-split children, same draw
   construction, same accumulation order) but never allocates autodiff
   nodes — which also makes it safe to distribute over a domain pool. *)
let value_of_draw ?batch_size ?precision ~draw model ~x ~labels =
  Loss.cross_entropy_value
    ~logits:(Model.logits_batch_t ?batch_size ?precision ~draw model x)
    ~labels

let one_sample_value ?batch_size ?precision ~rng ~spec model ~x ~labels =
  let draw =
    if Model.is_circuit model then Variation.make_draw rng spec else Variation.deterministic
  in
  value_of_draw ?batch_size ?precision ~draw model ~x ~labels

let expected_value ?(antithetic = false) ?batch_size ?precision ?pool ~rng ~spec ~n model
    ~x ~labels =
  assert (n >= 1);
  let t0 = if Obs.enabled () then Clock.now () else 0. in
  let n, antithetic = normalize ~antithetic ~n model in
  let rngs = draw_rngs ~antithetic ~rng ~n in
  let task j =
    if antithetic then
      if j < n / 2 then begin
        let d1, d2 = Variation.antithetic_pair rngs.(j) spec in
        value_of_draw ?batch_size ?precision ~draw:d1 model ~x ~labels
        +. value_of_draw ?batch_size ?precision ~draw:d2 model ~x ~labels
      end
      else one_sample_value ?batch_size ?precision ~rng:rngs.(j) ~spec model ~x ~labels
    else one_sample_value ?batch_size ?precision ~rng:rngs.(j) ~spec model ~x ~labels
  in
  let n_tasks = Array.length rngs in
  let values =
    match pool with
    | None -> Array.init n_tasks task
    | Some p -> Pool.init p ~n:n_tasks task
  in
  let result = 1. /. float_of_int n *. Array.fold_left ( +. ) 0. values in
  Obs.Counter.add draws_counter n;
  emit_eval ~path:"tensor" ~n ~t0;
  emit_corr ~spec ~n;
  result
