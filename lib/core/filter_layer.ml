module T = Pnc_tensor.Tensor
module Var = Pnc_autodiff.Var
module Rng = Pnc_util.Rng

type order = First | Second

type stage = { r_norm : Var.t; c_norm : Var.t } (* each 1 x features *)

type t = { order : order; n : int; stages : stage array }

let tau_max = Printed.filter_r_max *. Printed.filter_c_max

let create rng order ~features =
  assert (features > 0);
  let mk_stage () =
    let row () =
      Var.param (T.init ~rows:1 ~cols:features (fun _ _ -> Rng.uniform rng ~lo:0.3 ~hi:0.9))
    in
    { r_norm = row (); c_norm = row () }
  in
  let n_stages = match order with First -> 1 | Second -> 2 in
  { order; n = features; stages = Array.init n_stages (fun _ -> mk_stage ()) }

let order f = f.order
let features f = f.n

let params f =
  Array.to_list f.stages |> List.concat_map (fun s -> [ s.r_norm; s.c_norm ])

let named_params f =
  List.concat
    (List.mapi
       (fun i s ->
         [
           (Printf.sprintf "stage%d/r_norm" i, s.r_norm);
           (Printf.sprintf "stage%d/c_norm" i, s.c_norm);
         ])
       (Array.to_list f.stages))

type stage_real = { a : Var.t; b : Var.t; v0 : T.t }
type realization = { stage_reals : stage_real array }

let realize ~draw f =
  (* SPICE-characterized drift multipliers on R (temperature) and C
     (aging). Exactly 1. when the spec has no drift point, in which
     case the scaling is skipped entirely so the realization stays
     bit-identical to the drift-free model. *)
  let rm = Variation.drift_r_mult draw and cm = Variation.drift_c_mult draw in
  let drift m v = if m = 1. then v else Var.scale m v in
  let realize_stage (s : stage) =
    let eps_r = Variation.eps_for draw ~rows:1 ~cols:f.n in
    let eps_c = Variation.eps_for draw ~rows:1 ~cols:f.n in
    let mu = Variation.mu_for draw ~cols:f.n in
    let mul_eps v e =
      if draw.Variation.ste then Var.ste_mul v e else Var.mul v (Var.const e)
    in
    let r_eff = drift rm (mul_eps s.r_norm eps_r) in
    let c_eff = drift cm (mul_eps s.c_norm eps_c) in
    let tau = Var.scale tau_max (Var.mul r_eff c_eff) in
    let den = Var.add_scalar Printed.dt (Var.mul (Var.const mu) tau) in
    let a = Var.div tau den in
    let b = Var.div (Var.const (T.create ~rows:1 ~cols:f.n Printed.dt)) den in
    { a; b; v0 = Variation.v0_for draw ~cols:f.n }
  in
  { stage_reals = Array.map realize_stage f.stages }

type state = Var.t array (* one [batch x features] node per stage *)

let init_state real ~batch =
  Array.map
    (fun sr ->
      Var.const (T.init ~rows:batch ~cols:(T.cols sr.v0) (fun _ c -> T.get sr.v0 0 c)))
    real.stage_reals

let step real (st : state) x =
  let x_in = ref x in
  let st' =
    Array.mapi
      (fun i s ->
        let sr = real.stage_reals.(i) in
        let s' = Var.affine_rv s sr.a !x_in sr.b in
        x_in := s';
        s')
      st
  in
  (st', !x_in)

(* Pure-tensor realization for the no-grad evaluation path: same
   sampling order and floating-point operation sequence as [realize],
   on raw tensors. *)
type stage_real_t = { a_t : T.t; b_t : T.t; v0_t : T.t }
type realization_t = { stage_reals_t : stage_real_t array }

let realize_t ~draw f =
  let rm = Variation.drift_r_mult draw and cm = Variation.drift_c_mult draw in
  let drift m t = if m = 1. then t else T.scale m t in
  let realize_stage (s : stage) =
    let eps_r = Variation.eps_for draw ~rows:1 ~cols:f.n in
    let eps_c = Variation.eps_for draw ~rows:1 ~cols:f.n in
    let mu = Variation.mu_for draw ~cols:f.n in
    let r_eff = drift rm (T.mul (Var.value s.r_norm) eps_r) in
    let c_eff = drift cm (T.mul (Var.value s.c_norm) eps_c) in
    let tau = T.scale tau_max (T.mul r_eff c_eff) in
    let den = T.add_scalar Printed.dt (T.mul mu tau) in
    {
      a_t = T.div tau den;
      b_t = T.div (T.create ~rows:1 ~cols:f.n Printed.dt) den;
      v0_t = Variation.v0_for draw ~cols:f.n;
    }
  in
  { stage_reals_t = Array.map realize_stage f.stages }

type state_t = T.t array

type state_init = [ `V0 | `Zero | `Gaussian of Rng.t * float ]

(* Refill an existing state in place. `V0 broadcasts the draw's sampled
   initial voltages down every batch row (the historical [init_state_t]
   convention); `Zero is the fully-settled circuit; `Gaussian draws a
   fresh V[0] per (row, channel) — the sliding-window regime of the
   exemplar LearnableFilter, where each window meets the filter bank
   mid-transient. The gaussian stream is consumed stage-major then
   row-major, so a full-batch reset followed by row-sliced views is
   bit-identical to resetting the full batch directly (the batched
   forwards rely on this to keep the block size a pure performance
   knob). *)
let reset_state_t ?(init = `V0) real (st : state_t) =
  Array.iteri
    (fun i s ->
      let sr = real.stage_reals_t.(i) in
      match init with
      | `V0 ->
          for r = 0 to T.rows s - 1 do
            for c = 0 to T.cols s - 1 do
              T.set s r c (T.get sr.v0_t 0 c)
            done
          done
      | `Zero -> T.fill s 0.
      | `Gaussian (rng, sigma) ->
          for r = 0 to T.rows s - 1 do
            for c = 0 to T.cols s - 1 do
              T.set s r c (Rng.gaussian ~sigma rng)
            done
          done)
    st

let init_state_t ?(init = `V0) real ~batch =
  let st =
    Array.map (fun sr -> T.zeros ~rows:batch ~cols:(T.cols sr.v0_t)) real.stage_reals_t
  in
  reset_state_t ~init real st;
  st

let step_t real (st : state_t) x =
  let x_in = ref x in
  Array.iteri
    (fun i s ->
      let sr = real.stage_reals_t.(i) in
      T.affine_rv_into ~dst:s s sr.a_t !x_in sr.b_t;
      x_in := s)
    st;
  !x_in

(* Batched twin: the per-channel RC update touches each batch row
   independently, so advancing the state block of rows by block of rows
   through zero-copy views is bit-identical to one whole-batch
   [step_t] for any [block]. *)
let step_batch_t ?block real (st : state_t) x =
  let rows = T.rows x in
  let b =
    match block with Some b when b > 0 -> Stdlib.min b rows | _ -> rows
  in
  let r0 = ref 0 in
  while !r0 < rows do
    let len = Stdlib.min b (rows - !r0) in
    let st_block = Array.map (fun s -> T.rows_view s ~row:!r0 ~len) st in
    ignore (step_t real st_block (T.rows_view x ~row:!r0 ~len));
    r0 := !r0 + len
  done;
  st.(Array.length st - 1)

let kernel_t real = Array.map (fun sr -> (sr.a_t, sr.b_t)) real.stage_reals_t

let r_values f =
  Array.map
    (fun s -> Array.map (fun x -> x *. Printed.filter_r_max) (T.row (Var.value s.r_norm) 0))
    f.stages

let c_values f =
  Array.map
    (fun s -> Array.map (fun x -> x *. Printed.filter_c_max) (T.row (Var.value s.c_norm) 0))
    f.stages

let cutoff_hz f =
  let rs = r_values f and cs = c_values f in
  Array.init f.n (fun ch ->
      match f.order with
      | First -> Pnc_signal.Filter.cutoff_hz { Pnc_signal.Filter.r = rs.(0).(ch); c = cs.(0).(ch) }
      | Second ->
          Pnc_signal.Filter.cutoff_2nd_hz
            {
              Pnc_signal.Filter.stage1 = { Pnc_signal.Filter.r = rs.(0).(ch); c = cs.(0).(ch) };
              stage2 = { Pnc_signal.Filter.r = rs.(1).(ch); c = cs.(1).(ch) };
            })

let clamp f =
  let lo_r = Printed.filter_r_min /. Printed.filter_r_max in
  let lo_c = Printed.filter_c_min /. Printed.filter_c_max in
  let project v ~lo =
    let t = Var.value v in
    for c = 0 to T.cols t - 1 do
      T.set t 0 c (Float.max lo (Float.min 1. (T.get t 0 c)))
    done
  in
  Array.iter
    (fun s ->
      project s.r_norm ~lo:lo_r;
      project s.c_norm ~lo:lo_c)
    f.stages
