module T = Pnc_tensor.Tensor
module Var = Pnc_autodiff.Var
module Rng = Pnc_util.Rng

type cell = { w : Var.t; u : Var.t; b : Var.t }

type t = { n_in : int; n_hidden : int; n_classes : int; l1 : cell; l2 : cell; w_out : Var.t; b_out : Var.t }

let glorot rng ~rows ~cols =
  let bound = sqrt (6. /. float_of_int (rows + cols)) in
  Var.param (T.uniform rng ~rows ~cols ~lo:(-.bound) ~hi:bound)

let cell rng ~n_in ~n_hidden =
  {
    w = glorot rng ~rows:n_in ~cols:n_hidden;
    u = glorot rng ~rows:n_hidden ~cols:n_hidden;
    b = Var.param (T.zeros ~rows:1 ~cols:n_hidden);
  }

let create ?(hidden = 8) rng ~inputs ~classes =
  {
    n_in = inputs;
    n_hidden = hidden;
    n_classes = classes;
    l1 = cell rng ~n_in:inputs ~n_hidden:hidden;
    l2 = cell rng ~n_in:hidden ~n_hidden:hidden;
    w_out = glorot rng ~rows:hidden ~cols:classes;
    b_out = Var.param (T.zeros ~rows:1 ~cols:classes);
  }

let hidden m = m.n_hidden
let inputs m = m.n_in
let classes m = m.n_classes

let params m =
  [ m.l1.w; m.l1.u; m.l1.b; m.l2.w; m.l2.u; m.l2.b; m.w_out; m.b_out ]

let named_params m =
  [
    ("l1/w", m.l1.w);
    ("l1/u", m.l1.u);
    ("l1/b", m.l1.b);
    ("l2/w", m.l2.w);
    ("l2/u", m.l2.u);
    ("l2/b", m.l2.b);
    ("w_out", m.w_out);
    ("b_out", m.b_out);
  ]

let n_params m = List.fold_left (fun acc v -> acc + T.numel (Var.value v)) 0 (params m)

let cell_step c h x =
  Var.tanh (Var.add_rv (Var.add (Var.matmul x c.w) (Var.matmul h c.u)) c.b)

let forward_multi m steps =
  assert (Array.length steps > 0);
  let batch = T.rows steps.(0) in
  let h1 = ref (Var.const (T.zeros ~rows:batch ~cols:m.n_hidden)) in
  let h2 = ref (Var.const (T.zeros ~rows:batch ~cols:m.n_hidden)) in
  Array.iter
    (fun x_t ->
      h1 := cell_step m.l1 !h1 (Var.const x_t);
      h2 := cell_step m.l2 !h2 !h1)
    steps;
  Var.add_rv (Var.matmul !h2 m.w_out) m.b_out

let forward m x =
  let steps = Array.init (T.cols x) (fun k -> T.col x k) in
  forward_multi m steps

(* Pure-tensor forward for evaluation — same floating-point operation
   sequence as the Var path, no autodiff nodes. [`Fast] swaps the
   per-element transcendental only. *)
let cell_step_t ?(precision = `Exact) c h x =
  let pre =
    T.add_rv (T.add (T.matmul x (Var.value c.w)) (T.matmul h (Var.value c.u))) (Var.value c.b)
  in
  match precision with
  | `Exact -> T.map Stdlib.tanh pre
  | `Fast ->
      (* In-place over the freshly allocated pre-activation (off = 0):
         one unboxed in-module loop instead of a boxing per-element
         cross-module call. *)
      Pnc_tensor.Fast_math.apply_range pre.T.data ~off:pre.T.off ~len:(T.numel pre);
      pre

let forward_multi_t ?precision m steps =
  assert (Array.length steps > 0);
  let batch = T.rows steps.(0) in
  let h1 = ref (T.zeros ~rows:batch ~cols:m.n_hidden) in
  let h2 = ref (T.zeros ~rows:batch ~cols:m.n_hidden) in
  Array.iter
    (fun x_t ->
      h1 := cell_step_t ?precision m.l1 !h1 x_t;
      h2 := cell_step_t ?precision m.l2 !h2 !h1)
    steps;
  T.add_rv (T.matmul !h2 (Var.value m.w_out)) (Var.value m.b_out)

let forward_t m x =
  let steps = Array.init (T.cols x) (fun k -> T.col x k) in
  forward_multi_t m steps

(* Batched twin: the recurrence carries rows independently (matmuls by
   fixed weights + row-broadcast biases), so chunking the batch through
   zero-copy row views is bit-identical to one whole-batch forward for
   any batch size. *)
let forward_batch_t ?batch_size ?precision m x =
  let rows = T.rows x in
  let block = Batch.resolve ?batch_size ~n:rows () in
  let steps = Array.init (T.cols x) (fun k -> T.col x k) in
  let t0 = Batch.start () in
  let out = T.zeros ~rows ~cols:m.n_classes in
  let blocks =
    Batch.chunked ~rows ~block (fun ~row ~len ->
        let sub = Array.map (fun s -> T.rows_view s ~row ~len) steps in
        T.blit_into ~dst:(T.rows_view out ~row ~len) (forward_multi_t ?precision m sub))
  in
  Batch.record ~block ~rows ~blocks ~t0;
  out

let predict m x = T.argmax_rows (forward_t m x)

let predict_batch ?batch_size ?precision m x =
  T.argmax_rows (forward_batch_t ?batch_size ?precision m x)
