module T = Pnc_tensor.Tensor
module Var = Pnc_autodiff.Var

type t = { n_in : int; n_out : int; theta : Var.t; theta_b : Var.t }

let g_dummy = 0.05 (* in units of the max printable crossbar conductance *)

let create rng ~inputs ~outputs =
  assert (inputs > 0 && outputs > 0);
  (* Kaiming-flavoured init scaled to the normalized-conductance window:
     magnitudes well inside (threshold, 1], random signs. *)
  let scale = Float.min 0.8 (1.5 /. sqrt (float_of_int inputs)) in
  let init () =
    let mag = Pnc_util.Rng.uniform rng ~lo:0.3 ~hi:1.0 *. scale in
    if Pnc_util.Rng.bool rng then mag else -.mag
  in
  {
    n_in = inputs;
    n_out = outputs;
    theta = Var.param (T.init ~rows:inputs ~cols:outputs (fun _ _ -> init ()));
    theta_b = Var.param (T.init ~rows:1 ~cols:outputs (fun _ _ -> 0.3 *. init ()));
  }

let inputs cb = cb.n_in
let outputs cb = cb.n_out
let params cb = [ cb.theta; cb.theta_b ]
let named_params cb = [ ("theta", cb.theta); ("theta_b", cb.theta_b) ]

let sample_eps ~draw cb =
  ( Variation.eps_for draw ~rows:cb.n_in ~cols:cb.n_out,
    Variation.eps_for draw ~rows:1 ~cols:cb.n_out )

(* The crossbar is one physical device: its effective conductances are
   fixed for a whole sequence, so they are realized once and only the
   input-dependent part (matmul + bias + normalization) runs per time
   step. *)
type realization = { theta_eff : Var.t; bias_num : Var.t; denominator : Var.t }

let realize_const ?(ste = false) ~theta_eps ~bias_eps cb =
  (* [ste] swaps the variation fold for the straight-through estimator:
     forward values are bit-identical, only the backward rule changes
     (noise-injection training sees the perturbed crossbar but updates
     the clean conductances). *)
  let fold v eps = if ste then Var.ste_mul v eps else Var.mul v (Var.const eps) in
  let theta_eff = fold cb.theta theta_eps in
  let bias_eff = fold cb.theta_b bias_eps in
  {
    theta_eff;
    bias_num = Var.scale Printed.v_supply bias_eff;
    denominator =
      Var.add_scalar g_dummy (Var.add (Var.sum_rows (Var.abs theta_eff)) (Var.abs bias_eff));
  }

let realize ~draw cb =
  let theta_eps, bias_eps = sample_eps ~draw cb in
  realize_const ~ste:draw.Variation.ste ~theta_eps ~bias_eps cb

let apply real x =
  Var.div_rv (Var.add_rv (Var.matmul x real.theta_eff) real.bias_num) real.denominator

let forward_const ~theta_eps ~bias_eps cb x = apply (realize_const ~theta_eps ~bias_eps cb) x
let forward ~draw cb x = apply (realize ~draw cb) x

(* Pure-tensor realization for the no-grad evaluation path. Applies the
   exact floating-point operation sequence of [realize]/[apply] on raw
   tensors (the normalization divides by multiplying with a precomputed
   reciprocal, as [Var.div_rv] does), so logits are bit-identical to the
   Var path under the same draw. *)
type realization_t = { theta_eff_t : T.t; bias_num_t : T.t; inv_den_t : T.t }

let realize_t ~draw cb =
  let theta_eps, bias_eps = sample_eps ~draw cb in
  let theta_eff = T.mul (Var.value cb.theta) theta_eps in
  let bias_eff = T.mul (Var.value cb.theta_b) bias_eps in
  let den =
    T.add_scalar g_dummy (T.add (T.sum_rows (T.map Float.abs theta_eff)) (T.map Float.abs bias_eff))
  in
  {
    theta_eff_t = theta_eff;
    bias_num_t = T.scale Printed.v_supply bias_eff;
    inv_den_t = T.map (fun x -> 1. /. x) den;
  }

let apply_t_into ~dst real x =
  T.matmul_into ~dst x real.theta_eff_t;
  T.add_mul_rv_inplace dst ~add:real.bias_num_t ~mul:real.inv_den_t

let kernel_t real = (real.theta_eff_t, real.bias_num_t, real.inv_den_t)

(* Batched twin: the response of each input row is independent of every
   other row (one matmul row + row-broadcast bias/denominator), so
   chunking the batch through zero-copy row views is bit-identical to
   one whole-batch [apply_t_into] for any [block]. *)
let apply_batch_t ?block real x =
  let rows = T.rows x in
  let out = T.zeros ~rows ~cols:(T.cols real.theta_eff_t) in
  let b =
    match block with Some b when b > 0 -> Stdlib.min b rows | _ -> rows
  in
  let r0 = ref 0 in
  while !r0 < rows do
    let len = Stdlib.min b (rows - !r0) in
    apply_t_into
      ~dst:(T.rows_view out ~row:!r0 ~len)
      real
      (T.rows_view x ~row:!r0 ~len);
    r0 := !r0 + len
  done;
  out

let theta_values cb = T.copy (Var.value cb.theta)
let bias_values cb = T.copy (Var.value cb.theta_b)

let clamp cb =
  let project v =
    let t = Var.value v in
    for r = 0 to T.rows t - 1 do
      for c = 0 to T.cols t - 1 do
        T.set t r c (Printed.clamp_theta (T.get t r c))
      done
    done
  in
  project cb.theta;
  project cb.theta_b
