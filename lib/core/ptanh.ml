module T = Pnc_tensor.Tensor
module Var = Pnc_autodiff.Var
module Rng = Pnc_util.Rng

type t = { n : int; eta1 : Var.t; eta2 : Var.t; eta3 : Var.t; eta4 : Var.t }

let create rng ~features =
  assert (features > 0);
  let row lo hi = Var.param (T.init ~rows:1 ~cols:features (fun _ _ -> Rng.uniform rng ~lo ~hi)) in
  {
    n = features;
    eta1 = row (-0.1) 0.1;
    eta2 = row 0.7 1.0;
    eta3 = row (-0.1) 0.1;
    eta4 = row 1.5 3.0;
  }

let features a = a.n
let params a = [ a.eta1; a.eta2; a.eta3; a.eta4 ]

let named_params a =
  [ ("eta1", a.eta1); ("eta2", a.eta2); ("eta3", a.eta3); ("eta4", a.eta4) ]

let sample_eps ~draw a =
  Array.init 4 (fun _ -> Variation.eps_for draw ~rows:1 ~cols:a.n)

(* Effective (variation-folded) eta rows are constant over a sequence;
   realize them once per forward pass. *)
type realization = { e1 : Var.t; e2 : Var.t; e3 : Var.t; e4 : Var.t }

let realize_const ?(ste = false) ~eps a =
  assert (Array.length eps = 4);
  let e i v = if ste then Var.ste_mul v eps.(i) else Var.mul v (Var.const eps.(i)) in
  { e1 = e 0 a.eta1; e2 = e 1 a.eta2; e3 = e 2 a.eta3; e4 = e 3 a.eta4 }

let realize ~draw a = realize_const ~ste:draw.Variation.ste ~eps:(sample_eps ~draw a) a

let apply real x =
  let scaled = Var.mul_rv (Var.sub_rv x real.e3) real.e4 in
  Var.add_rv (Var.mul_rv (Var.tanh scaled) real.e2) real.e1

let forward_const ?ste ~eps a x = apply (realize_const ?ste ~eps a) x
let forward ~draw a x = forward_const ~ste:draw.Variation.ste ~eps:(sample_eps ~draw a) a x

(* Pure-tensor realization for the no-grad evaluation path. *)
type realization_t = { e1_t : T.t; e2_t : T.t; e3_t : T.t; e4_t : T.t }

let realize_t ~draw a =
  let eps = sample_eps ~draw a in
  let e i v = T.mul (Var.value v) eps.(i) in
  { e1_t = e 0 a.eta1; e2_t = e 1 a.eta2; e3_t = e 2 a.eta3; e4_t = e 3 a.eta4 }

let apply_t_into ?(precision = `Exact) ~dst real x =
  assert (T.same_shape dst x && T.cols x = T.cols real.e1_t);
  let fast = match precision with `Fast -> true | `Exact -> false in
  let cols = T.cols x in
  let module BA = Bigarray.Array1 in
  let xd = x.T.data and od = dst.T.data in
  let e1 = real.e1_t.T.data
  and e2 = real.e2_t.T.data
  and e3 = real.e3_t.T.data
  and e4 = real.e4_t.T.data in
  let eo1 = real.e1_t.T.off
  and eo2 = real.e2_t.T.off
  and eo3 = real.e3_t.T.off
  and eo4 = real.e4_t.T.off in
  for r = 0 to T.rows x - 1 do
    let xo = x.T.off + (r * cols) and oo = dst.T.off + (r * cols) in
    for c = 0 to cols - 1 do
      (* Fused η₁ + η₂·tanh((x − η₃)·η₄) with the exact elementwise
         operation sequence of [apply] (sub_rv is add of the negation),
         so results stay bit-identical to the Var path under [`Exact].
         [`Fast] substitutes the bounded approximation for the single
         transcendental — everything around it is unchanged, so the
         logit deviation is |η₂|·(tanh error) ≤ 1e-7 per element.
         Unchecked accesses: the shape assert above plus the view
         invariant make every index in bounds. *)
      BA.unsafe_set od (oo + c)
        ((BA.unsafe_get xd (xo + c) +. -.BA.unsafe_get e3 (eo3 + c))
        *. BA.unsafe_get e4 (eo4 + c))
    done;
    (* Activation pass over the row ([dst] holds the scaled
       pre-activations): `Fast runs one unboxed in-module loop, `Exact
       the direct unboxed extern — a per-element cross-module call
       would box both floats without flambda. The per-element
       expression tree matches the former single-pass form, so `Exact
       stays bit-identical. *)
    if fast then Pnc_tensor.Fast_math.apply_range od ~off:oo ~len:cols
    else
      for c = 0 to cols - 1 do
        BA.unsafe_set od (oo + c) (Stdlib.tanh (BA.unsafe_get od (oo + c)))
      done;
    for c = 0 to cols - 1 do
      BA.unsafe_set od (oo + c)
        ((BA.unsafe_get od (oo + c) *. BA.unsafe_get e2 (eo2 + c))
        +. BA.unsafe_get e1 (eo1 + c))
    done
  done

(* Batched twin: row-independent elementwise kernel applied block by
   block through zero-copy row views — bit-identical to a single
   [apply_t_into] over the whole batch for any [block]. *)
let apply_batch_t ?(precision = `Exact) ?block real x =
  let rows = T.rows x in
  let out = T.zeros ~rows ~cols:(T.cols x) in
  let b = match block with Some b when b > 0 -> Stdlib.min b rows | _ -> rows in
  let r0 = ref 0 in
  while !r0 < rows do
    let len = Stdlib.min b (rows - !r0) in
    apply_t_into ~precision
      ~dst:(T.rows_view out ~row:!r0 ~len)
      real
      (T.rows_view x ~row:!r0 ~len);
    r0 := !r0 + len
  done;
  out

let kernel_t real = (real.e1_t, real.e2_t, real.e3_t, real.e4_t)

let eta_values a = Array.map (fun v -> T.copy (Var.value v)) [| a.eta1; a.eta2; a.eta3; a.eta4 |]

let clamp a =
  let project v ~lo ~hi =
    let t = Var.value v in
    for c = 0 to T.cols t - 1 do
      T.set t 0 c (Float.max lo (Float.min hi (T.get t 0 c)))
    done
  in
  project a.eta1 ~lo:(-1.) ~hi:1.;
  project a.eta2 ~lo:0.2 ~hi:1.;
  project a.eta3 ~lo:(-1.) ~hi:1.;
  project a.eta4 ~lo:0.5 ~hi:6.
