module T = Pnc_tensor.Tensor
module Rng = Pnc_util.Rng
module Stats = Pnc_util.Stats

type family = Crossbar_conductances | Filter_rc | Activation_eta | All_families

let family_name = function
  | Crossbar_conductances -> "crossbar conductances (theta)"
  | Filter_rc -> "filter R and C"
  | Activation_eta -> "activation eta"
  | All_families -> "all families"

type row = { family : family; accuracy : float; drop : float }

(* Runs on the tensor fast path (bit-identical to the Var-path forward
   under the same draws): pool tasks must not touch the global gradient
   tape, and the analysis needs no gradients anyway. Draw i owns child
   stream i, so the mean is worker-count-invariant. *)
let accuracy_with ?pool ~rng ~spec ~draws ~family net x y =
  let rngs = Rng.split_n rng draws in
  let instance i =
    let varied = Variation.make_draw rngs.(i) spec in
    let nominal = Variation.deterministic in
    let draw_crossbar, draw_filter, draw_act =
      match family with
      | Crossbar_conductances -> (varied, nominal, nominal)
      | Filter_rc -> (nominal, varied, nominal)
      | Activation_eta -> (nominal, nominal, varied)
      | All_families -> (varied, varied, varied)
    in
    let logits = Network.forward_selective_t ~draw_crossbar ~draw_filter ~draw_act net x in
    Stats.accuracy ~pred:(T.argmax_rows logits) ~truth:y
  in
  let accs =
    match pool with
    | None -> Array.init draws instance
    | Some p -> Pnc_util.Pool.init p ~n:draws instance
  in
  Array.fold_left ( +. ) 0. accs /. float_of_int draws

let analyze ?pool ~rng ~level ~draws net dataset =
  assert (draws >= 1 && level >= 0.);
  let x, y = Train.to_xy dataset in
  let spec = Variation.uniform level in
  let nominal_pred = T.argmax_rows (Network.forward_t ~draw:Variation.deterministic net x) in
  let nominal = Stats.accuracy ~pred:nominal_pred ~truth:y in
  List.map
    (fun family ->
      let accuracy = accuracy_with ?pool ~rng ~spec ~draws ~family net x y in
      { family; accuracy; drop = nominal -. accuracy })
    [ Crossbar_conductances; Filter_rc; Activation_eta; All_families ]

let report rows =
  String.concat "\n"
    (List.map
       (fun r ->
         Printf.sprintf "%-32s acc %.3f (drop %+.3f)" (family_name r.family) r.accuracy
           (-.r.drop))
       rows)
