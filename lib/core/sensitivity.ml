module T = Pnc_tensor.Tensor
module Rng = Pnc_util.Rng
module Stats = Pnc_util.Stats
module Obs = Pnc_obs.Obs
module Clock = Pnc_obs.Clock

let draws_counter = Obs.Counter.make "sensitivity.draws"

type family = Crossbar_conductances | Filter_rc | Activation_eta | All_families

let family_name = function
  | Crossbar_conductances -> "crossbar conductances (theta)"
  | Filter_rc -> "filter R and C"
  | Activation_eta -> "activation eta"
  | All_families -> "all families"

type row = { family : family; accuracy : float; drop : float }

(* Runs on the tensor fast path (bit-identical to the Var-path forward
   under the same draws): pool tasks must not touch the global gradient
   tape, and the analysis needs no gradients anyway. Draw i owns child
   stream i, so the mean is worker-count-invariant. *)
let accuracy_with ?batch_size ?pool ~rng ~spec ~draws ~family net x y =
  let rngs = Rng.split_n rng draws in
  let instance i =
    let varied = Variation.make_draw rngs.(i) spec in
    let nominal = Variation.deterministic in
    let draw_crossbar, draw_filter, draw_act =
      match family with
      | Crossbar_conductances -> (varied, nominal, nominal)
      | Filter_rc -> (nominal, varied, nominal)
      | Activation_eta -> (nominal, nominal, varied)
      | All_families -> (varied, varied, varied)
    in
    let logits =
      Network.forward_selective_batch_t ?batch_size ~draw_crossbar ~draw_filter ~draw_act
        net x
    in
    Stats.accuracy ~pred:(T.argmax_rows logits) ~truth:y
  in
  let accs =
    match pool with
    | None -> Array.init draws instance
    | Some p -> Pnc_util.Pool.init p ~n:draws instance
  in
  Array.fold_left ( +. ) 0. accs /. float_of_int draws

let analyze ?batch_size ?pool ~rng ~level ~draws net dataset =
  assert (draws >= 1 && level >= 0.);
  Obs.Span.with_ ~attrs:[ ("level", Obs.Float level); ("draws", Obs.Int draws) ]
    "sensitivity.analyze"
  @@ fun () ->
  let x, y = Train.to_xy dataset in
  let spec = Variation.uniform level in
  let nominal_pred =
    T.argmax_rows (Network.forward_batch_t ?batch_size ~draw:Variation.deterministic net x)
  in
  let nominal = Stats.accuracy ~pred:nominal_pred ~truth:y in
  List.map
    (fun family ->
      let t0 = if Obs.enabled () then Clock.now () else 0. in
      let accuracy = accuracy_with ?batch_size ?pool ~rng ~spec ~draws ~family net x y in
      Obs.Counter.add draws_counter draws;
      if Obs.enabled () then begin
        let dt = Clock.elapsed t0 in
        Obs.emit "sensitivity.family"
          [
            ("family", Obs.Str (family_name family));
            ("draws", Obs.Int draws);
            ("seconds", Obs.Float dt);
            ("draws_per_s", Obs.Float (float_of_int draws /. Float.max dt 1e-9));
            ("accuracy", Obs.Float accuracy);
            ("drop", Obs.Float (nominal -. accuracy));
          ]
      end;
      { family; accuracy; drop = nominal -. accuracy })
    [ Crossbar_conductances; Filter_rc; Activation_eta; All_families ]

let report rows =
  String.concat "\n"
    (List.map
       (fun r ->
         Printf.sprintf "%-32s acc %.3f (drop %+.3f)" (family_name r.family) r.accuracy
           (-.r.drop))
       rows)
