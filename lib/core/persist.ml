module T = Pnc_tensor.Tensor
module Var = Pnc_autodiff.Var
module Rng = Pnc_util.Rng
module Optimizer = Pnc_optim.Optimizer
module Scheduler = Pnc_optim.Scheduler
module Ckpt = Pnc_ckpt.Ckpt
module Json = Pnc_obs.Obs.Json

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

(* Model metadata --------------------------------------------------------- *)

let arch_tag = function Network.Ptpnc -> "ptpnc" | Network.Adapt -> "adapt"

let model_meta (m : Model.t) =
  match m with
  | Model.Circuit net ->
      [
        ("family", Json.String "circuit");
        ("arch", Json.String (arch_tag (Network.arch net)));
        ("inputs", Json.Num (float_of_int (Network.inputs net)));
        ("hidden", Json.Num (float_of_int (Network.hidden net)));
        ("classes", Json.Num (float_of_int (Network.classes net)));
      ]
  | Model.Reference e ->
      [
        ("family", Json.String "elman");
        ("inputs", Json.Num (float_of_int (Elman.inputs e)));
        ("hidden", Json.Num (float_of_int (Elman.hidden e)));
        ("classes", Json.Num (float_of_int (Elman.classes e)));
      ]

let meta_int meta name =
  match List.assoc_opt name meta with
  | Some (Json.Num v) when Float.is_integer v && v >= 0. -> Ok (int_of_float v)
  | _ -> Error (Ckpt.Bad_header ("meta: missing or bad " ^ name))

let meta_string meta name =
  match List.assoc_opt name meta with
  | Some (Json.String s) -> Ok s
  | _ -> Error (Ckpt.Bad_header ("meta: missing or bad " ^ name))

let model_of_meta meta =
  let* family = meta_string meta "family" in
  let* inputs = meta_int meta "inputs" in
  let* hidden = meta_int meta "hidden" in
  let* classes = meta_int meta "classes" in
  (* The freshly created parameters are overwritten from the checkpoint
     immediately afterwards, so the construction seed is irrelevant. *)
  let rng = Rng.create ~seed:0 in
  match family with
  | "circuit" ->
      let* arch =
        let* tag = meta_string meta "arch" in
        match tag with
        | "ptpnc" -> Ok Network.Ptpnc
        | "adapt" -> Ok Network.Adapt
        | s -> Error (Ckpt.Bad_header ("meta: unknown arch " ^ s))
      in
      Ok (Model.Circuit (Network.create ~hidden rng arch ~inputs ~classes))
  | "elman" -> Ok (Model.Reference (Elman.create ~hidden rng ~inputs ~classes))
  | s -> Error (Ckpt.Bad_header ("meta: unknown model family " ^ s))

let check_meta_matches model meta =
  List.fold_left
    (fun acc (k, v) ->
      let* () = acc in
      if List.assoc_opt k meta = Some v then Ok ()
      else
        Error
          (Ckpt.Bad_header
             (Printf.sprintf "checkpoint was written for a different model (mismatch on %s)" k)))
    (Ok ()) (model_meta model)

(* Parameter sections ----------------------------------------------------- *)

let tensor_section v = Ckpt.F64 { rows = T.rows v; cols = T.cols v; data = T.to_row_array v }

let param_sections ?(prefix = "param/") m =
  List.map (fun (name, p) -> (prefix ^ name, tensor_section (Var.value p))) (Model.named_params m)

let blit_tensor dst src =
  for r = 0 to T.rows dst - 1 do
    for c = 0 to T.cols dst - 1 do
      T.set dst r c (T.get src r c)
    done
  done

(* Read [prefix ^ name] for every named parameter, validating each shape
   against the live parameter; nothing is written to the model. *)
let read_param_tensors ck ~prefix named =
  let* rev =
    List.fold_left
      (fun acc (name, p) ->
        let* acc = acc in
        let* rows, cols, data = Ckpt.f64_shaped ck (prefix ^ name) in
        let v = Var.value p in
        if rows <> T.rows v || cols <> T.cols v then
          Error
            (Ckpt.Bad_section
               (Printf.sprintf "%s%s: stored %dx%d, model expects %dx%d" prefix name rows cols
                  (T.rows v) (T.cols v)))
        else Ok (T.of_array ~rows ~cols data :: acc))
      (Ok []) named
  in
  Ok (List.rev rev)

let load_params_into ?(prefix = "param/") m ck =
  let named = Model.named_params m in
  let* tensors = read_param_tensors ck ~prefix named in
  List.iter2 (fun (_, p) t -> blit_tensor (Var.value p) t) named tensors;
  Ok ()

(* Model checkpoints ------------------------------------------------------- *)

let save_model ?(extra_meta = []) ~path m =
  Ckpt.save ~path ~kind:"model" ~meta:(model_meta m @ extra_meta) ~sections:(param_sections m)

let load_model ~path =
  let* ck = Ckpt.load ~path in
  let* () =
    (* A train checkpoint embeds the same model meta and param/
       sections, so it is a valid source for evaluation too. *)
    match ck.Ckpt.kind with
    | "model" | "train" -> Ok ()
    | k -> Error (Ckpt.Bad_header ("expected a model or train checkpoint, found kind " ^ k))
  in
  let* m = model_of_meta ck.Ckpt.meta in
  let* () = load_params_into m ck in
  Ok m

let load_model_exn ~path =
  match load_model ~path with Ok m -> m | Stdlib.Error e -> raise (Ckpt.Error e)

(* Training-state checkpoints ---------------------------------------------- *)

(* The "state" section packs the scalars that may legitimately be
   non-finite (best losses start at [infinity]); JSON metadata cannot
   represent those, %.17g payload text can. *)
let n_state_scalars = 5

type resume = {
  r_epoch : int;
  r_best : float;
  r_best_snap : T.t list;
  r_rng : Rng.t;
  r_train_curve : float array;
  r_val_curve : float array;
}

let curve_section data = Ckpt.F64 { rows = 1; cols = Array.length data; data }

let save_train_state ~path ~model ~opt ~sched ~rng ~epoch ~best ~best_snap ~train_curve
    ~val_curve =
  let named = Model.named_params model in
  let bests = List.map2 (fun (name, _) t -> ("best/" ^ name, tensor_section t)) named best_snap in
  let slots =
    List.concat_map
      (fun (slot, arrs) ->
        List.map2
          (fun (name, _) arr ->
            ( Printf.sprintf "opt/%s/%s" slot name,
              Ckpt.F64 { rows = 1; cols = Array.length arr; data = arr } ))
          named (Array.to_list arrs))
      (Optimizer.slots opt)
  in
  let s = Scheduler.snapshot sched in
  let scalars =
    [|
      best;
      s.Scheduler.s_lr;
      s.Scheduler.s_best;
      float_of_int s.Scheduler.s_bad_epochs;
      float_of_int (Optimizer.step_count opt);
    |]
  in
  let meta =
    model_meta model
    @ [
        ("epoch", Json.Num (float_of_int epoch));
        ("optimizer", Json.String (Optimizer.algo_name opt));
      ]
  in
  let sections =
    param_sections model @ bests @ slots
    @ [
        ("curve/train", curve_section train_curve);
        ("curve/val", curve_section val_curve);
        ("state", Ckpt.F64 { rows = 1; cols = n_state_scalars; data = scalars });
        ("rng", Ckpt.Bytes (Rng.to_bytes rng));
      ]
  in
  Ckpt.save ~path ~kind:"train" ~meta ~sections

let load_train_state ~path ~model ~opt ~sched =
  let* ck = Ckpt.load ~path in
  let* () =
    match ck.Ckpt.kind with
    | "train" -> Ok ()
    | k -> Error (Ckpt.Bad_header ("expected a train checkpoint, found kind " ^ k))
  in
  let* () = check_meta_matches model ck.Ckpt.meta in
  let* epoch = meta_int ck.Ckpt.meta "epoch" in
  let named = Model.named_params model in
  (* Parse and validate everything before mutating anything, so a
     rejected checkpoint leaves model, optimizer and scheduler
     untouched. *)
  let* params = read_param_tensors ck ~prefix:"param/" named in
  let* best_snap = read_param_tensors ck ~prefix:"best/" named in
  let* slots =
    let* rev =
      List.fold_left
        (fun acc (slot, template) ->
          let* acc = acc in
          let* rev_arrs =
            List.fold_left
              (fun arrs ((name, _), expect) ->
                let* arrs = arrs in
                let sec = Printf.sprintf "opt/%s/%s" slot name in
                let* arr = Ckpt.f64 ck sec in
                if Array.length arr <> Array.length expect then
                  Error
                    (Ckpt.Bad_section
                       (Printf.sprintf "%s: %d values, optimizer expects %d" sec
                          (Array.length arr) (Array.length expect)))
                else Ok (arr :: arrs))
              (Ok [])
              (List.combine named (Array.to_list template))
          in
          Ok ((slot, Array.of_list (List.rev rev_arrs)) :: acc))
        (Ok []) (Optimizer.slots opt)
    in
    Ok (List.rev rev)
  in
  let* scalars = Ckpt.f64 ck "state" in
  let* () =
    if Array.length scalars = n_state_scalars then Ok ()
    else
      Error
        (Ckpt.Bad_section
           (Printf.sprintf "state: %d scalars, expected %d" (Array.length scalars)
              n_state_scalars))
  in
  let* rng =
    let* bytes = Ckpt.bytes ck "rng" in
    try Ok (Rng.of_bytes bytes) with Invalid_argument msg -> Error (Ckpt.Bad_section msg)
  in
  let* train_curve = Ckpt.f64 ck "curve/train" in
  let* val_curve = Ckpt.f64 ck "curve/val" in
  let* () =
    let snap =
      {
        Scheduler.s_lr = scalars.(1);
        Scheduler.s_best = scalars.(2);
        Scheduler.s_bad_epochs = int_of_float scalars.(3);
      }
    in
    try
      Optimizer.restore opt ~step_count:(int_of_float scalars.(4)) ~slots;
      Scheduler.restore sched snap;
      Ok ()
    with Invalid_argument msg -> Error (Ckpt.Bad_section msg)
  in
  List.iter2 (fun (_, p) t -> blit_tensor (Var.value p) t) named params;
  Ok
    {
      r_epoch = epoch;
      r_best = scalars.(0);
      r_best_snap = best_snap;
      r_rng = rng;
      r_train_curve = train_curve;
      r_val_curve = val_curve;
    }
