type t = Circuit of Network.t | Reference of Elman.t

let label = function
  | Circuit net -> Network.arch_name (Network.arch net)
  | Reference _ -> "Elman RNN"

let params = function Circuit net -> Network.params net | Reference m -> Elman.params m

let named_params = function
  | Circuit net -> Network.named_params net
  | Reference m -> Elman.named_params m
let n_params = function Circuit net -> Network.n_params net | Reference m -> Elman.n_params m

let logits ?(draw = Variation.deterministic) t x =
  match t with
  | Circuit net -> Network.forward ~draw net x
  | Reference m -> Elman.forward m x

let logits_t ?(draw = Variation.deterministic) t x =
  match t with
  | Circuit net -> Network.forward_t ~draw net x
  | Reference m -> Elman.forward_t m x

let logits_batch_t ?batch_size ?precision ?state_init ?(draw = Variation.deterministic) t x =
  match t with
  | Circuit net -> Network.forward_batch_t ?batch_size ?precision ?state_init ~draw net x
  | Reference m -> Elman.forward_batch_t ?batch_size ?precision m x

let predict ?(draw = Variation.deterministic) t x =
  Pnc_tensor.Tensor.argmax_rows (logits_t ~draw t x)

let predict_batch ?batch_size ?precision ?state_init ?(draw = Variation.deterministic) t x =
  Pnc_tensor.Tensor.argmax_rows (logits_batch_t ?batch_size ?precision ?state_init ~draw t x)

let clamp = function Circuit net -> Network.clamp net | Reference _ -> ()
let is_circuit = function Circuit _ -> true | Reference _ -> false
