module T = Pnc_tensor.Tensor

type t = {
  id : int;
  value : T.t;
  mutable grad : T.t option; (* allocated lazily on first contribution *)
  parents : (t * (T.t -> T.t)) list;
  requires : bool;
}

let counter = ref 0

let next_id () =
  incr counter;
  !counter

let value v = v.value

let grad v =
  match v.grad with
  | Some g -> g
  | None -> T.zeros ~rows:(T.rows v.value) ~cols:(T.cols v.value)

let grad_opt v = v.grad
let requires_grad v = v.requires

(* Tape ------------------------------------------------------------------ *)

(* Interior nodes are recorded at creation, in creation order — which is
   a topological order of any DAG built by these combinators — so
   [backward] walks the tape in reverse instead of collecting and
   sorting the reachable set on every call. The tape holds weak
   pointers: a graph the caller has dropped is collected by the GC as
   usual, and its empty slots are compacted away the next time the tape
   fills up, so recording nodes never extends their lifetime. *)
module Tape = struct
  let arr = ref (Weak.create 4096)
  let len = ref 0
  let recorded = ref 0

  let compact () =
    let a = !arr in
    let j = ref 0 in
    for i = 0 to !len - 1 do
      match Weak.get a i with
      | Some _ as v ->
          if !j < i then Weak.set a !j v;
          incr j
      | None -> ()
    done;
    for i = !j to !len - 1 do
      Weak.set a i None
    done;
    len := !j

  let push v =
    let cap = Weak.length !arr in
    if !len = cap then begin
      compact ();
      (* Still mostly live after compaction: double the capacity. *)
      if 2 * !len >= cap then begin
        let bigger = Weak.create (2 * cap) in
        Weak.blit !arr 0 bigger 0 !len;
        arr := bigger
      end
    end;
    Weak.set !arr !len (Some v);
    incr len;
    incr recorded
end

let nodes_created () = !counter
let tape_recorded () = !Tape.recorded

(* No-grad mode ---------------------------------------------------------- *)

let no_grad = ref false

let with_no_grad f =
  let saved = !no_grad in
  no_grad := true;
  Fun.protect ~finally:(fun () -> no_grad := saved) f

let mk ?(requires = true) value parents =
  if !no_grad then
    { id = next_id (); value; grad = None; parents = []; requires = false }
  else begin
    let requires = requires && List.exists (fun (p, _) -> p.requires) parents in
    let v = { id = next_id (); value; grad = None; parents; requires } in
    Tape.push v;
    v
  end

let param value = { id = next_id (); value; grad = None; parents = []; requires = true }
let const value = { id = next_id (); value; grad = None; parents = []; requires = false }
let scalar x = const (T.scalar x)
let zero_grad v = v.grad <- None

let accumulate v g =
  match v.grad with
  | None -> v.grad <- Some (T.copy g)
  | Some acc -> T.add_inplace acc g

(* Binary elementwise -------------------------------------------------- *)

let add a b = mk (T.add a.value b.value) [ (a, Fun.id); (b, Fun.id) ]
let sub a b = mk (T.sub a.value b.value) [ (a, Fun.id); (b, T.neg) ]

let mul a b =
  mk (T.mul a.value b.value)
    [ (a, fun g -> T.mul g b.value); (b, fun g -> T.mul g a.value) ]

(* Straight-through multiplication by a fixed factor tensor: forward is
   v ⊙ eps (bit-identical to [mul v (const eps)]), backward is the
   identity — the gradient w.r.t. the clean parameters is taken to be
   the gradient w.r.t. the perturbed ones, dL/dv := dL/d(v⊙eps). This
   is the noise-injection estimator of the analog-CIM literature: the
   noise shapes the forward pass but is treated as transparent by the
   chain rule, so training descends the loss of the {e deployed}
   (perturbed) network without scaling each parameter's step by its own
   noise realization. *)
let ste_mul v eps = mk (T.mul v.value eps) [ (v, Fun.id) ]

let div a b =
  let y = T.div a.value b.value in
  mk y
    [ (a, fun g -> T.div g b.value);
      (b, fun g -> T.neg (T.div (T.mul g y) b.value)) ]

(* Row-vector broadcast ------------------------------------------------- *)

let add_rv m rv =
  mk (T.add_rv m.value rv.value) [ (m, Fun.id); (rv, T.sum_rows) ]

let sub_rv m rv =
  mk (T.add_rv m.value (T.neg rv.value))
    [ (m, Fun.id); (rv, fun g -> T.neg (T.sum_rows g)) ]

let mul_rv m rv =
  mk (T.mul_rv m.value rv.value)
    [ (m, fun g -> T.mul_rv g rv.value);
      (rv, fun g -> T.sum_rows (T.mul g m.value)) ]

let div_rv m rv =
  let inv = T.map (fun x -> 1. /. x) rv.value in
  let y = T.mul_rv m.value inv in
  mk y
    [ (m, fun g -> T.mul_rv g inv);
      (rv, fun g -> T.neg (T.sum_rows (T.mul_rv (T.mul g y) inv))) ]

(* Fused state update for the filter recurrences: out = s.a + x.b with
   s, x of shape [batch x n] and a, b row vectors. One node instead of
   three keeps the 64-step unrolled graphs small. *)
let affine_rv s a x b =
  let out = T.add (T.mul_rv s.value a.value) (T.mul_rv x.value b.value) in
  mk out
    [
      (s, fun g -> T.mul_rv g a.value);
      (a, fun g -> T.sum_rows (T.mul g s.value));
      (x, fun g -> T.mul_rv g b.value);
      (b, fun g -> T.sum_rows (T.mul g x.value));
    ]

(* Unary ---------------------------------------------------------------- *)

let unary f df v =
  let y = T.map f v.value in
  mk y [ (v, fun g -> T.mul g (df v.value y)) ]

let neg v = mk (T.neg v.value) [ (v, T.neg) ]
let scale k v = mk (T.scale k v.value) [ (v, T.scale k) ]
let add_scalar k v = mk (T.add_scalar k v.value) [ (v, Fun.id) ]

let tanh v = unary Stdlib.tanh (fun _ y -> T.map (fun t -> 1. -. (t *. t)) y) v

let sigmoid_f x = if x >= 0. then 1. /. (1. +. Stdlib.exp (-.x)) else
    let e = Stdlib.exp x in
    e /. (1. +. e)

let sigmoid v = unary sigmoid_f (fun _ y -> T.map (fun s -> s *. (1. -. s)) y) v
let relu v = unary (fun x -> Float.max 0. x) (fun x _ -> T.map (fun u -> if u > 0. then 1. else 0.) x) v
let exp v = unary Stdlib.exp (fun _ y -> y) v
let log v = unary Stdlib.log (fun x _ -> T.map (fun u -> 1. /. u) x) v
let abs v = unary Float.abs (fun x _ -> T.map (fun u -> if u > 0. then 1. else if u < 0. then -1. else 0.) x) v

let softplus_f x = if x > 30. then x else if x < -30. then Stdlib.exp x else Stdlib.log1p (Stdlib.exp x)
let softplus v = unary softplus_f (fun x _ -> T.map sigmoid_f x) v
let sqr v = unary (fun x -> x *. x) (fun x _ -> T.scale 2. x) v
let reciprocal v = unary (fun x -> 1. /. x) (fun x _ -> T.map (fun u -> -1. /. (u *. u)) x) v

(* Linear algebra and reductions ---------------------------------------- *)

let matmul a b =
  mk (T.matmul a.value b.value)
    [ (a, fun g -> T.matmul g (T.transpose b.value));
      (b, fun g -> T.matmul (T.transpose a.value) g) ]

let transpose v = mk (T.transpose v.value) [ (v, T.transpose) ]

let sum v =
  let rows = T.rows v.value and cols = T.cols v.value in
  mk (T.scalar (T.sum v.value))
    [ (v, fun g -> T.create ~rows ~cols (T.get_scalar g)) ]

let mean v =
  let n = float_of_int (Stdlib.max 1 (T.numel v.value)) in
  scale (1. /. n) (sum v)

let sum_rows v =
  let rows = T.rows v.value in
  mk (T.sum_rows v.value)
    [ (v, fun g -> T.init ~rows ~cols:(T.cols g) (fun _ c -> T.get g 0 c)) ]

let concat_cols vs =
  assert (vs <> []);
  let rows = T.rows (List.hd vs).value in
  List.iter (fun v -> assert (T.rows v.value = rows)) vs;
  let total = List.fold_left (fun acc v -> acc + T.cols v.value) 0 vs in
  let out = T.zeros ~rows ~cols:total in
  let offsets = ref [] in
  let _ =
    List.fold_left
      (fun off v ->
        let c = T.cols v.value in
        offsets := (v, off, c) :: !offsets;
        for r = 0 to rows - 1 do
          for j = 0 to c - 1 do
            T.set out r (off + j) (T.get v.value r j)
          done
        done;
        off + c)
      0 vs
  in
  let parents =
    List.map
      (fun (v, off, c) ->
        ( v,
          fun g ->
            T.init ~rows ~cols:c (fun r j -> T.get g r (off + j)) ))
      !offsets
  in
  mk out parents

(* Backward ------------------------------------------------------------- *)

let reachable root =
  let seen = Hashtbl.create 64 in
  let rec go v =
    if not (Hashtbl.mem seen v.id) then begin
      Hashtbl.add seen v.id v;
      List.iter (fun (p, _) -> go p) v.parents
    end
  in
  go root;
  seen

let backward root =
  accumulate root (T.create ~rows:(T.rows root.value) ~cols:(T.cols root.value) 1.);
  (* Walk the tape in reverse creation order. Between passes no tape
     node carries a gradient (interior gradients are released as they
     are consumed, and leaves are never on the tape), so the nodes with
     pending gradients are exactly the root plus whatever this walk
     accumulates into. Counting them lets the walk stop as soon as all
     pending gradients have drained, instead of scanning the stale
     region of long-dead graphs below the current one. *)
  let pending = ref (if root.parents = [] then 0 else 1) in
  let a = !Tape.arr in
  let i = ref (!Tape.len - 1) in
  while !pending > 0 && !i >= 0 do
    (match Weak.get a !i with
    | Some v when v.id <= root.id -> (
        match v.grad with
        | None -> ()
        | Some g ->
            decr pending;
            if v.requires then
              List.iter
                (fun (p, back) ->
                  if p.requires then begin
                    if p.grad = None && p.parents <> [] then incr pending;
                    accumulate p (back g)
                  end)
                v.parents;
            (* Interior node gradients are only needed during
               propagation; release them so repeated forward/backward
               passes do not retain the DAG. *)
            v.grad <- None)
    | _ -> ());
    decr i
  done

let n_nodes root = Hashtbl.length (reachable root)
