module T = Pnc_tensor.Tensor

let softmax_rows logits =
  let b = T.rows logits and c = T.cols logits in
  let out = T.zeros ~rows:b ~cols:c in
  for r = 0 to b - 1 do
    let m = ref neg_infinity in
    for j = 0 to c - 1 do
      m := Float.max !m (T.get logits r j)
    done;
    let z = ref 0. in
    for j = 0 to c - 1 do
      let e = exp (T.get logits r j -. !m) in
      T.set out r j e;
      z := !z +. e
    done;
    for j = 0 to c - 1 do
      T.set out r j (T.get out r j /. !z)
    done
  done;
  out

let predictions logits = T.argmax_rows logits

let softmax_cross_entropy ~logits ~labels =
  let b = T.rows (Var.value logits) in
  assert (Array.length labels = b);
  let probs = softmax_rows (Var.value logits) in
  let loss = ref 0. in
  for r = 0 to b - 1 do
    loss := !loss -. log (Float.max 1e-12 (T.get probs r labels.(r)))
  done;
  let loss = !loss /. float_of_int b in
  (* Gradient w.r.t. logits: (softmax - onehot) / batch, scaled by the
     incoming scalar gradient. *)
  let dlogits =
    T.init ~rows:b ~cols:(T.cols probs) (fun r j ->
        let y = if labels.(r) = j then 1. else 0. in
        (T.get probs r j -. y) /. float_of_int b)
  in
  (* Express the fused op through a linear form with the right value and
     gradient: loss_node = sum (logits * const dlogits) + k, where k
     fixes the forward value. The gradient of this expression w.r.t.
     logits is exactly dlogits. *)
  let linear = Var.sum (Var.mul logits (Var.const dlogits)) in
  let k = loss -. T.get_scalar (Var.value linear) in
  Var.add_scalar k linear

let cross_entropy_value ~logits ~labels =
  let b = T.rows logits in
  assert (Array.length labels = b);
  let probs = softmax_rows logits in
  let loss = ref 0. in
  for r = 0 to b - 1 do
    loss := !loss -. log (Float.max 1e-12 (T.get probs r labels.(r)))
  done;
  !loss /. float_of_int b

let mse ~pred ~target =
  let diff = Var.sub pred (Var.const target) in
  Var.mean (Var.sqr diff)
