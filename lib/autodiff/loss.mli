(** Training losses.

    The classification objective used throughout the paper is the
    softmax cross-entropy over the circuit's output voltages at the
    final time step. The op is fused (forward log-sum-exp, backward
    [softmax - onehot]) for numerical stability. *)

val softmax_cross_entropy : logits:Var.t -> labels:int array -> Var.t
(** Mean cross-entropy over the batch; [logits] is [batch x classes],
    [labels.(b)] in [0, classes). Returns a [1 x 1] node. *)

val cross_entropy_value : logits:Pnc_tensor.Tensor.t -> labels:int array -> float
(** Forward-only mean cross-entropy on raw logits — the no-grad
    counterpart of {!softmax_cross_entropy}, same clipping and
    summation order. *)

val mse : pred:Var.t -> target:Pnc_tensor.Tensor.t -> Var.t
(** Mean squared error against a constant target of the same shape. *)

val softmax_rows : Pnc_tensor.Tensor.t -> Pnc_tensor.Tensor.t
(** Row-wise softmax of raw values (used for reporting, not training). *)

val predictions : Pnc_tensor.Tensor.t -> int array
(** Row-wise argmax of logits. *)
