(** Reverse-mode automatic differentiation over {!Pnc_tensor.Tensor}.

    A {!t} is a node of a dynamically built computation DAG. Operations
    record, for each parent, a closure mapping the output gradient to
    that parent's gradient contribution. {!backward} seeds the output
    with ones and propagates in reverse creation order (node ids grow
    monotonically, so decreasing id is a valid reverse topological
    order for any DAG built by these combinators).

    The engine is the PyTorch-autograd substitute used to train every
    model in the paper: the printed crossbar surrogate, the learnable
    filters (first- and second-order), the printed tanh activation and
    the Elman RNN reference. Gradients are property-tested against
    central finite differences in [test/test_autodiff.ml]. *)

type t

val value : t -> Pnc_tensor.Tensor.t
val grad : t -> Pnc_tensor.Tensor.t
(** Accumulated gradient; a fresh zeros tensor if none has been
    accumulated. Optimizer hot paths should prefer {!grad_opt}. *)

val grad_opt : t -> Pnc_tensor.Tensor.t option
(** Accumulated gradient without allocating: [None] until {!backward}
    reaches the node (and again after {!zero_grad}). *)

val requires_grad : t -> bool

(** {1 No-grad mode}

    Under {!with_no_grad}, every operation returns a constant-like node
    — no parents recorded, nothing pushed on the tape, [requires_grad]
    false — so evaluation-only code retains no graph. The pure-tensor
    fast paths in [lib/core] avoid [Var] entirely; this mode is the
    safety net for code still routed through the combinators. *)

val no_grad : bool ref
val with_no_grad : (unit -> 'a) -> 'a

val nodes_created : unit -> int
(** Total [Var] records ever created (monotonic counter). Used by tests
    to assert that evaluation fast paths allocate zero nodes. *)

val tape_recorded : unit -> int
(** Total nodes ever recorded on the backward tape (monotonic). Stays
    flat under {!with_no_grad} and across pure-tensor evaluation. *)

(** {1 Leaves} *)

val param : Pnc_tensor.Tensor.t -> t
(** Trainable leaf: receives a gradient and is updated by optimizers. *)

val const : Pnc_tensor.Tensor.t -> t
(** Non-trainable leaf (inputs, sampled variation factors, targets). *)

val scalar : float -> t
(** Constant [1 x 1] node. *)

val zero_grad : t -> unit
(** Reset the accumulated gradient of a leaf to zeros. *)

(** {1 Elementwise binary (equal shapes)} *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t

val ste_mul : t -> Pnc_tensor.Tensor.t -> t
(** [ste_mul v eps] forwards [v ⊙ eps] (bit-identical to
    [mul v (const eps)]) but backpropagates the straight-through
    estimator: the incoming gradient passes to [v] unscaled
    (dL/dv := dL/d(v⊙eps)). Used by noise-injection training, where the
    forward pass sees the perturbed parameters but the update is
    applied to the clean ones. *)

(** {1 Row-vector broadcast: [m x n] op [1 x n]} *)

val add_rv : t -> t -> t
val sub_rv : t -> t -> t
val mul_rv : t -> t -> t
val div_rv : t -> t -> t

val affine_rv : t -> t -> t -> t -> t
(** [affine_rv s a x b] = [s ∘ a + x ∘ b] with [s], [x] matrices and
    [a], [b] row vectors — the fused filter state update
    [V(k) = a·V(k−1) + b·V_in(k)] unrolled 64 times per channel. *)

(** {1 Unary} *)

val neg : t -> t
val scale : float -> t -> t
val add_scalar : float -> t -> t
val tanh : t -> t
val sigmoid : t -> t
val relu : t -> t
val exp : t -> t
val log : t -> t
(** Requires strictly positive values. *)

val abs : t -> t
(** Subgradient 0 at 0. *)

val softplus : t -> t
(** [log (1 + exp x)], numerically stable; used to keep physical
    component values (resistances, capacitances) strictly positive. *)

val sqr : t -> t
val reciprocal : t -> t

(** {1 Linear algebra and reductions} *)

val matmul : t -> t -> t
val transpose : t -> t
val sum : t -> t
(** Sum of all elements, as a [1 x 1] node. *)

val mean : t -> t
val sum_rows : t -> t
(** [m x n -> 1 x n]. *)

val concat_cols : t list -> t
(** Horizontal concatenation of matrices with equal row counts. *)

(** {1 Backward pass} *)

val backward : t -> unit
(** Seeds the node (any shape; seeded with ones) and accumulates
    gradients into every reachable leaf with [requires_grad]. Interior
    nodes are recorded on a global tape at creation, so the pass is a
    single reverse walk of the tape — no per-call reachability
    collection or sort. Multiple calls accumulate; call {!zero_grad} on
    the leaves between steps. *)

val n_nodes : t -> int
(** Number of distinct nodes reachable from [t] (diagnostics). *)
