type value = Bool of bool | Int of int | Float of float | Str of string
type field = string * value

type sink = {
  write : t:float -> seq:int -> name:string -> field list -> unit;
  flush : unit -> unit;
}

(* The installed sink. [is_enabled] mirrors it as a plain flag so hot
   paths pay one unsynchronized bool read on the null-sink path; the
   mutex serializes writers from pool worker domains. *)
let sink : sink option ref = ref None
let is_enabled = ref false
let sink_mutex = Mutex.create ()
let seq = ref 0

let enabled () = !is_enabled

let set_sink s =
  Mutex.lock sink_mutex;
  (match !sink with Some old -> old.flush () | None -> ());
  sink := s;
  (* seq numbers each sink's stream from 1: consumers treat it as the
     record index within one telemetry file. *)
  seq := 0;
  (is_enabled := match s with Some _ -> true | None -> false);
  Mutex.unlock sink_mutex

let emit name fields =
  if !is_enabled then begin
    Mutex.lock sink_mutex;
    (match !sink with
    | None -> ()
    | Some s ->
        incr seq;
        s.write ~t:(Clock.now ()) ~seq:!seq ~name fields);
    Mutex.unlock sink_mutex
  end

(* JSONL sink ------------------------------------------------------------- *)

let json_escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let json_float b v =
  if Float.is_finite v then Buffer.add_string b (Printf.sprintf "%.17g" v)
  else Buffer.add_string b "null"

let json_value b = function
  | Bool x -> Buffer.add_string b (if x then "true" else "false")
  | Int n -> Buffer.add_string b (string_of_int n)
  | Float v -> json_float b v
  | Str s ->
      Buffer.add_char b '"';
      json_escape b s;
      Buffer.add_char b '"'

let jsonl_sink oc =
  let b = Buffer.create 256 in
  let write ~t ~seq ~name fields =
    Buffer.clear b;
    Buffer.add_string b "{\"t\":";
    json_float b t;
    Buffer.add_string b ",\"seq\":";
    Buffer.add_string b (string_of_int seq);
    Buffer.add_string b ",\"event\":\"";
    json_escape b name;
    Buffer.add_char b '"';
    List.iter
      (fun (k, v) ->
        Buffer.add_string b ",\"";
        json_escape b k;
        Buffer.add_string b "\":";
        json_value b v)
      fields;
    Buffer.add_string b "}\n";
    Buffer.output_buffer oc b
  in
  { write; flush = (fun () -> flush oc) }

let with_jsonl ~path f =
  let oc = open_out path in
  set_sink (Some (jsonl_sink oc));
  Fun.protect
    ~finally:(fun () ->
      set_sink None;
      close_out oc)
    f

let trace_stderr = ref false

(* Metrics registry --------------------------------------------------------

   Each metric registers a snapshot closure (its current value as event
   fields) and a reset closure; the registry itself never needs to know
   the metric's concrete type. *)

type registered = { name : string; snapshot : unit -> field list; reset : unit -> unit }

let registry : registered list ref = ref []
let registry_mutex = Mutex.create ()

let register r =
  Mutex.lock registry_mutex;
  registry := r :: !registry;
  Mutex.unlock registry_mutex

module Counter = struct
  type t = { name : string; v : int Atomic.t }

  let make name =
    let t = { name; v = Atomic.make 0 } in
    register
      {
        name;
        snapshot = (fun () -> [ ("kind", Str "counter"); ("value", Int (Atomic.get t.v)) ]);
        reset = (fun () -> Atomic.set t.v 0);
      };
    t

  let incr t = ignore (Atomic.fetch_and_add t.v 1)
  let add t n = ignore (Atomic.fetch_and_add t.v n)
  let value t = Atomic.get t.v
end

module Gauge = struct
  (* Set from the main domain only; float reads cannot tear in OCaml
     (the field holds a word-sized pointer or unboxed float). *)
  type t = { name : string; mutable g : float }

  let make name =
    let t = { name; g = 0. } in
    register
      {
        name;
        snapshot = (fun () -> [ ("kind", Str "gauge"); ("value", Float t.g) ]);
        reset = (fun () -> t.g <- 0.);
      };
    t

  let set t v = t.g <- v
  let value t = t.g
end

module Histogram = struct
  type t = {
    name : string;
    counts : int Atomic.t array; (* 64 fixed log-scale buckets *)
    n : int Atomic.t;
    mutable total : float; (* main-domain observers only *)
  }

  let n_buckets = 64

  (* Bucket i covers [2^(i-33), 2^(i-32)): frexp gives v = m * 2^e with
     m in [0.5, 1), i.e. v in [2^(e-1), 2^e), mapping e to i = e + 32.
     The extreme buckets absorb under- and overflow. *)
  let bucket_of v =
    if not (Float.is_finite v) || v <= 0. then 0
    else
      let _, e = Float.frexp v in
      Stdlib.max 0 (Stdlib.min (n_buckets - 1) (e + 32))

  let upper_bound i = Float.ldexp 1. (i - 32)
  let count t = Atomic.get t.n
  let sum t = t.total

  let buckets t =
    let out = ref [] in
    for i = n_buckets - 1 downto 0 do
      let c = Atomic.get t.counts.(i) in
      if c > 0 then out := (upper_bound i, c) :: !out
    done;
    Array.of_list !out

  let make name =
    let t =
      {
        name;
        counts = Array.init n_buckets (fun _ -> Atomic.make 0);
        n = Atomic.make 0;
        total = 0.;
      }
    in
    register
      {
        name;
        snapshot =
          (fun () ->
            let bucket_fields =
              Array.to_list (buckets t)
              |> List.map (fun (ub, c) -> (Printf.sprintf "le_%.3g" ub, Int c))
            in
            [ ("kind", Str "histogram"); ("count", Int (count t)); ("sum", Float t.total) ]
            @ bucket_fields);
        reset =
          (fun () ->
            Array.iter (fun c -> Atomic.set c 0) t.counts;
            Atomic.set t.n 0;
            t.total <- 0.);
      };
    t

  let observe t v =
    ignore (Atomic.fetch_and_add t.counts.(bucket_of v) 1);
    ignore (Atomic.fetch_and_add t.n 1);
    t.total <- t.total +. v
end

let metrics_snapshot () =
  List.rev_map (fun r -> (r.name, r.snapshot ())) !registry

let emit_metrics () =
  if !is_enabled then
    List.iter
      (fun r -> emit "metric" (("name", Str r.name) :: r.snapshot ()))
      (List.rev !registry)

let reset_metrics () = List.iter (fun r -> r.reset ()) !registry

(* Span tracing ------------------------------------------------------------ *)

module Span = struct
  (* Nesting depth is main-domain state: spans are opened by the
     submitting domain only (pool tasks never open spans). *)
  let current_depth = ref 0

  let depth () = !current_depth

  let with_ ?(attrs = []) name f =
    if not (!is_enabled || !trace_stderr) then f ()
    else begin
      let d = !current_depth in
      current_depth := d + 1;
      if !is_enabled then emit "span.begin" (("span", Str name) :: ("depth", Int d) :: attrs);
      let t0 = Clock.now () in
      let finish ok =
        let dt = Clock.elapsed t0 in
        current_depth := d;
        if !is_enabled then
          emit "span.end"
            (("span", Str name) :: ("depth", Int d) :: ("dur_s", Float dt)
            :: ("ok", Bool ok) :: attrs);
        if !trace_stderr then
          Printf.eprintf "[trace] %s%s %.6fs%s\n%!" (String.make (2 * d) ' ') name dt
            (if ok then "" else " (raised)")
      in
      match f () with
      | r ->
          finish true;
          r
      | exception e ->
          finish false;
          raise e
    end
end

(* Minimal JSON ------------------------------------------------------------ *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  let parse s =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = failwith (Printf.sprintf "Json.parse: %s at offset %d" msg !pos) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
          advance ();
          skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail (Printf.sprintf "expected %c" c)
    in
    let literal word v =
      let l = String.length word in
      if !pos + l <= n && String.sub s !pos l = word then begin
        pos := !pos + l;
        v
      end
      else fail ("expected " ^ word)
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        match peek () with
        | None -> fail "unterminated string"
        | Some '"' -> advance ()
        | Some '\\' -> (
            advance ();
            match peek () with
            | Some '"' -> Buffer.add_char b '"'; advance (); go ()
            | Some '\\' -> Buffer.add_char b '\\'; advance (); go ()
            | Some '/' -> Buffer.add_char b '/'; advance (); go ()
            | Some 'n' -> Buffer.add_char b '\n'; advance (); go ()
            | Some 't' -> Buffer.add_char b '\t'; advance (); go ()
            | Some 'r' -> Buffer.add_char b '\r'; advance (); go ()
            | Some 'b' -> Buffer.add_char b '\b'; advance (); go ()
            | Some 'f' -> Buffer.add_char b '\012'; advance (); go ()
            | Some 'u' ->
                advance ();
                if !pos + 4 > n then fail "truncated \\u escape";
                (* Strict 4-hex-digit validation through the parser's
                   typed [fail]: [int_of_string "0x…"] would raise an
                   untyped [Failure] on junk like \uZZZZ and silently
                   accept '_' separators inside the four digits. *)
                let hex_digit c =
                  match c with
                  | '0' .. '9' -> Char.code c - Char.code '0'
                  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
                  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
                  | _ -> fail "invalid \\u escape (want exactly 4 hex digits)"
                in
                let code = ref 0 in
                for _ = 1 to 4 do
                  code := (!code lsl 4) lor hex_digit s.[!pos];
                  advance ()
                done;
                let code = !code in
                (* Surrogate halves are not code points. The telemetry
                   contract is ASCII (docs/OBSERVABILITY.md); this
                   parser never emits them, so decide deterministically:
                   reject rather than decode garbage pairs. *)
                if code >= 0xD800 && code <= 0xDFFF then
                  fail "surrogate code point in \\u escape";
                (* Telemetry strings are ASCII; encode BMP code points
                   as UTF-8 without surrogate-pair handling. *)
                if code < 0x80 then Buffer.add_char b (Char.chr code)
                else if code < 0x800 then begin
                  Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
                  Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                end
                else begin
                  Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
                  Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                  Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                end;
                go ()
            | _ -> fail "bad escape")
        | Some c ->
            Buffer.add_char b c;
            advance ();
            go ()
      in
      go ();
      Buffer.contents b
    in
    let parse_number () =
      let start = !pos in
      let num_char c =
        match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
      in
      while (match peek () with Some c when num_char c -> true | _ -> false) do
        advance ()
      done;
      if !pos = start then fail "expected number";
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some v -> v
      | None -> fail "malformed number"
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '{' ->
          advance ();
          skip_ws ();
          if peek () = Some '}' then begin
            advance ();
            Obj []
          end
          else begin
            let rec members acc =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  members ((k, v) :: acc)
              | Some '}' ->
                  advance ();
                  List.rev ((k, v) :: acc)
              | _ -> fail "expected , or }"
            in
            Obj (members [])
          end
      | Some '[' ->
          advance ();
          skip_ws ();
          if peek () = Some ']' then begin
            advance ();
            List []
          end
          else begin
            let rec elements acc =
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  elements (v :: acc)
              | Some ']' ->
                  advance ();
                  List.rev (v :: acc)
              | _ -> fail "expected , or ]"
            in
            List (elements [])
          end
      | Some '"' -> String (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> Num (parse_number ())
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v

  let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
  let to_float = function Num v -> v | _ -> failwith "Json.to_float: not a number"

  (* Writer: the inverse of [parse] for every value this library
     produces. Numbers print with %.17g (integral floats render without
     a decimal point, so [to_int] round-trips); output is deterministic
     byte-for-byte — the checkpoint format relies on that for its
     byte-stability guarantee. *)
  let render v =
    let b = Buffer.create 256 in
    let rec go = function
      | Null -> Buffer.add_string b "null"
      | Bool x -> Buffer.add_string b (if x then "true" else "false")
      | Num x -> json_float b x
      | String s ->
          Buffer.add_char b '"';
          json_escape b s;
          Buffer.add_char b '"'
      | List xs ->
          Buffer.add_char b '[';
          List.iteri
            (fun i x ->
              if i > 0 then Buffer.add_char b ',';
              go x)
            xs;
          Buffer.add_char b ']'
      | Obj kvs ->
          Buffer.add_char b '{';
          List.iteri
            (fun i (k, x) ->
              if i > 0 then Buffer.add_char b ',';
              Buffer.add_char b '"';
              json_escape b k;
              Buffer.add_string b "\":";
              go x)
            kvs;
          Buffer.add_char b '}'
    in
    go v;
    Buffer.contents b

  let to_int = function
    | Num v when Float.is_integer v -> int_of_float v
    | _ -> failwith "Json.to_int: not an integral number"

  let to_string = function String s -> s | _ -> failwith "Json.to_string: not a string"
end
