(** Monotonic time source shared by every timer and span in the repo.

    Wall-clock time ([Unix.gettimeofday]) jumps backwards and forwards
    under NTP steps, which corrupts benchmark means and span durations.
    Everything that measures a duration must go through this module;
    the stdlib [Unix] shipped here has no [clock_gettime], so the
    implementation reads the OS monotonic clock through the
    [bechamel.monotonic_clock] C stub (CLOCK_MONOTONIC on Linux). *)

val now_ns : unit -> int64
(** Monotonic nanoseconds since an arbitrary epoch. Comparable only
    against other values from this function within the same process. *)

val now : unit -> float
(** Monotonic seconds since an arbitrary epoch, as a float. *)

val elapsed : float -> float
(** [elapsed t0] is [now () -. t0]: seconds elapsed since the earlier
    {!now} reading [t0]. Never negative. *)
