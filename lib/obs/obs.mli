(** Observability: metrics registry, span tracing and pluggable sinks.

    Training and Monte-Carlo evaluation runs emit structured telemetry
    through this module — per-epoch loss/lr/grad-norm records, draw
    throughput, pool utilization, per-grid-cell spans — so that the
    quantities the paper reports (runtime, accuracy under variation)
    are captured machine-readably on every run instead of being
    reconstructed from ad-hoc [Printf] lines.

    {b Sinks.} The compiled-in default is the null sink: {!enabled} is
    [false], {!emit} returns immediately and instrumented call sites
    skip even the construction of their field lists, so the hot paths
    allocate nothing. Installing a sink (usually the JSONL sink via
    {!with_jsonl}) turns every event into one self-describing record.

    {b Determinism contract.} Instrumentation is read-only: it never
    draws from any {!Pnc_util.Rng} stream and never feeds a measured
    value back into computation, so results are bit-identical whether
    a sink is installed or not (enforced by [test/test_obs.ml]).

    {b Threading.} {!emit} and the metric updates are safe to call
    from pool worker domains (the sink is mutex-protected, counters
    are atomic). {!Span} tracks nesting depth in the main domain only:
    open spans from the submitting domain, not from inside pool
    tasks. *)

(** {1 Events} *)

type value = Bool of bool | Int of int | Float of float | Str of string

type field = string * value
(** One key/value pair of an event record. *)

val enabled : unit -> bool
(** [true] iff a sink is installed. Instrumented call sites should
    guard field-list construction with this to keep the null-sink
    path allocation-free. *)

val emit : string -> field list -> unit
(** [emit name fields] sends one event to the installed sink, stamped
    with the monotonic time and a sequence number counting from 1 per
    installed sink (the record index within one telemetry stream). A
    no-op when no sink is installed. *)

(** {1 Sinks} *)

type sink = {
  write : t:float -> seq:int -> name:string -> field list -> unit;
  flush : unit -> unit;
}

val set_sink : sink option -> unit
(** Install ([Some]) or remove ([None], the null sink) the process
    sink. *)

val jsonl_sink : out_channel -> sink
(** A sink writing one JSON object per line:
    [{"t":<mono s>,"seq":<n>,"event":"<name>",...fields}].
    Non-finite floats are written as [null]. *)

val with_jsonl : path:string -> (unit -> 'a) -> 'a
(** [with_jsonl ~path f] runs [f] with a JSONL sink writing to [path],
    then flushes, closes and restores the null sink (also on
    exception). *)

val trace_stderr : bool ref
(** When set, every closing {!Span.with_} also prints one indented
    human-readable line to [stderr] (the [--trace] CLI flag). Works
    with or without a sink. *)

(** {1 Metrics registry}

    Named process-wide metrics, registered at creation. Updates are
    cheap (an atomic increment) and happen whether or not a sink is
    installed; {!emit_metrics} serializes the current values as
    events. *)

module Counter : sig
  type t

  val make : string -> t
  (** Create and register a monotonically increasing counter. *)

  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
end

module Gauge : sig
  type t

  val make : string -> t
  (** Create and register a last-value-wins gauge. *)

  val set : t -> float -> unit
  val value : t -> float
end

module Histogram : sig
  type t

  val make : string -> t
  (** Create and register a histogram over fixed log-scale buckets:
      bucket [i] counts observations in [[2^(i-33), 2^(i-32))] seconds
      (or any other unit), [i = 0 .. 63], with the extreme buckets
      absorbing under-/overflow. *)

  val observe : t -> float -> unit
  val count : t -> int
  val sum : t -> float

  val buckets : t -> (float * int) array
  (** Non-empty buckets only, as [(upper_bound, count)] pairs in
      increasing bound order. *)
end

val metrics_snapshot : unit -> (string * field list) list
(** Current value of every registered metric, as the field lists that
    {!emit_metrics} would send. *)

val emit_metrics : unit -> unit
(** Emit one ["metric"] event per registered metric. *)

val reset_metrics : unit -> unit
(** Zero every registered metric (test isolation). *)

(** {1 Span tracing} *)

module Span : sig
  val with_ : ?attrs:field list -> string -> (unit -> 'a) -> 'a
  (** [with_ name f] runs [f] inside a named span. With a sink
      installed it emits a ["span.begin"] event, then a ["span.end"]
      event carrying the monotonic duration ([dur_s]), the nesting
      depth and [ok:false] if [f] raised (the exception is
      re-raised). With {!trace_stderr} it prints an indented line on
      close. With neither, it is exactly [f ()]. *)

  val depth : unit -> int
  (** Current nesting depth (0 outside any span). *)
end

(** {1 Minimal JSON (for reading telemetry back)} *)

module Json : sig
  type t =
    | Null
    | Bool of bool
    | Num of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  val parse : string -> t
  (** Parse one complete JSON value. Raises [Failure] with a
      ["Json.parse: … at offset …"] message on malformed input or
      trailing garbage — every rejection goes through the parser's own
      [fail], so callers can rely on catching [Failure] alone.
      [\u] escapes must be exactly four hex digits ([0-9a-fA-F]);
      surrogate-range code points (U+D800–U+DFFF) are rejected, per the
      ASCII-telemetry contract (docs/OBSERVABILITY.md). *)

  val member : string -> t -> t option
  (** Field lookup in an [Obj]; [None] for other constructors. *)

  val to_float : t -> float
  (** [Num]; raises [Failure] otherwise. *)

  val to_int : t -> int
  (** [Num] with an integral value; raises [Failure] otherwise. *)

  val to_string : t -> string
  (** [String]; raises [Failure] otherwise. *)

  val render : t -> string
  (** Serialize a value as compact JSON, the inverse of {!parse}.
      Deterministic byte-for-byte (object order is preserved, floats
      print with [%.17g] so they round-trip exactly); non-finite
      numbers render as [null] — keep them out of values that must
      round-trip (the checkpoint headers built on this writer store
      possibly-infinite floats in payload sections instead). *)
end
