let now_ns () = Monotonic_clock.now ()
let now () = Int64.to_float (Monotonic_clock.now ()) *. 1e-9
let elapsed t0 = Float.max 0. (now () -. t0)
