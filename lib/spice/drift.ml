module Rng = Pnc_util.Rng

type point = {
  temp_c : float;
  age_hours : float;
  r_mult : float;
  c_mult : float;
  fit_rms : float;
}

let reference_temp_c = 25.
let kelvin t_c = t_c +. 273.15

(* Device laws embedded in the drifted netlists. The resistor is a
   thermally activated printed conductor (Arrhenius, Ea/k ~ 700 K); the
   capacitor is an electrolytic printed dielectric that dries out
   logarithmically and grows a series resistance as it ages. *)
let ea_over_k = 700.
let age0_hours = 500.
let cap_loss = 0.045
let cap_floor = 0.55
let esr_frac = 0.03

let r_model ~temp_c =
  exp (ea_over_k *. ((1. /. kelvin temp_c) -. (1. /. kelvin reference_temp_c)))

let c_model ~age_hours = Float.max cap_floor (1. -. (cap_loss *. log1p (age_hours /. age0_hours)))
let esr_ratio ~age_hours = esr_frac *. log1p (age_hours /. age0_hours)
let c_eff_model ~age_hours = c_model ~age_hours *. (1. +. esr_ratio ~age_hours)

(* Band-limited excitation below the data-rate Nyquist, as in
   Pnc_core.Coupling: the zero-order-hold assumption of the discrete
   first-order fit needs the input to move slowly between samples. *)
let excitation rng ~dt =
  let comps =
    Array.init 4 (fun _ ->
        ( Rng.uniform rng ~lo:0.2 ~hi:0.9,
          Rng.uniform rng ~lo:0.5 ~hi:(0.04 /. dt),
          Rng.uniform rng ~lo:0. ~hi:(2. *. Float.pi) ))
  in
  fun t ->
    Array.fold_left (fun acc (a, f, p) -> acc +. (a *. sin ((2. *. Float.pi *. f *. t) +. p))) 0. comps

(* One transient of the unloaded series-R / shunt-C stage, fitted to
   v(k) = a·v(k-1) + b·u(k) at the data rate. The stage is a true
   single pole, so τ = −dt/ln a inverts the sampled response exactly;
   drift multipliers are ratios of these fitted τ. *)
let fit_tau ~wave ~n_samples ~r ~c ~dt =
  let circ = Circuit.create () in
  let vin = Circuit.node circ "in" and out = Circuit.node circ "out" in
  Circuit.vsource circ ~waveform:wave vin Circuit.ground 0.;
  Circuit.resistor circ vin out r;
  Circuit.capacitor circ out Circuit.ground c;
  let oversample = 20 in
  let dt_sim = dt /. float_of_int oversample in
  let steps = n_samples * oversample in
  let { Transient.times; samples } =
    Transient.run ~integrator:Transient.Trapezoidal circ ~dt:dt_sim ~steps ~probes:[ out ]
  in
  let output = Array.init n_samples (fun k -> samples.(0).(((k + 1) * oversample) - 1)) in
  let input = Array.init n_samples (fun k -> wave times.((((k + 1) * oversample) - 1))) in
  let a, b = Measure.fit_first_order ~input ~output in
  let tau = -.dt /. log a in
  (tau, Measure.goodness_of_fit ~input ~output ~a ~b)

let characterize ?(seed = 0) ?(n_samples = 192) ~r ~c ~dt ~temp_c ~age_hours () =
  let rng = Rng.create ~seed in
  let wave = excitation rng ~dt in
  let tau_ref, rms_ref = fit_tau ~wave ~n_samples ~r ~c ~dt in
  (* Temperature-only netlist: the Arrhenius factor scales R. *)
  let tau_temp, rms_temp = fit_tau ~wave ~n_samples ~r:(r *. r_model ~temp_c) ~c ~dt in
  (* Age-only netlist: dried-out C in series with the aged ESR. *)
  let tau_age, rms_age =
    fit_tau ~wave ~n_samples
      ~r:(r *. (1. +. esr_ratio ~age_hours))
      ~c:(c *. c_model ~age_hours) ~dt
  in
  {
    temp_c;
    age_hours;
    r_mult = tau_temp /. tau_ref;
    c_mult = tau_age /. tau_ref;
    fit_rms = Float.max rms_ref (Float.max rms_temp rms_age);
  }

let survey ?(seed = 11) ~r ~c ~dt () =
  let temps = [ 25.; 60.; 85. ] in
  let ages = [ 0.; 1_000.; 10_000. ] in
  List.concat_map
    (fun temp_c ->
      List.map (fun age_hours -> characterize ~seed ~r ~c ~dt ~temp_c ~age_hours ()) ages)
    temps
