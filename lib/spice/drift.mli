(** Temperature / aging drift characterization of a printed RC stage.

    The correlated-variation model multiplies every filter R by a
    temperature factor and every filter C by an aging factor. Instead
    of hand-picking those constants, this module extracts them the way
    {!Measure} extracts the coupling factor µ: the drifted device is
    simulated at the transient level (thermally activated resistor,
    electrolyte dry-out capacitor with a growing equivalent series
    resistance), the sampled waveform is fitted to the first-order
    discrete update, and the multiplier is the ratio of the fitted
    effective time constants — drifted over reference. The analytic
    device laws ({!r_model}, {!c_eff_model}) exist only to sanity-check
    the extraction; the numbers that reach the variation model are the
    fitted ones. *)

type point = {
  temp_c : float;  (** device temperature, °C *)
  age_hours : float;  (** operating age, hours *)
  r_mult : float;  (** fitted R(T)/R(T₀) (T₀ = 25 °C) *)
  c_mult : float;  (** fitted effective C(age)/C₀, ESR included *)
  fit_rms : float;  (** worst first-order fit residual of the runs *)
}

val reference_temp_c : float
(** 25 °C: the temperature at which both multipliers are exactly 1. *)

val r_model : temp_c:float -> float
(** Analytic thermally-activated resistor ratio
    exp(Ea/k · (1/T − 1/T₀)) — the law embedded in the simulated
    netlist, exposed for the single-pole sanity test. *)

val c_model : age_hours:float -> float
(** Analytic electrolyte-capacitance ratio: logarithmic dry-out,
    floored well above zero. *)

val c_eff_model : age_hours:float -> float
(** {!c_model} including the aged series resistance's contribution to
    the effective time constant — what the waveform fit actually
    measures. *)

val characterize :
  ?seed:int ->
  ?n_samples:int ->
  r:float ->
  c:float ->
  dt:float ->
  temp_c:float ->
  age_hours:float ->
  unit ->
  point
(** Three transient runs (reference, temperature-only, age-only) of the
    band-limited-excited RC stage at [dt]-rate sampling, each fitted to
    v(k) = a·v(k−1) + b·u(k); multipliers are ratios of
    τ = −dt/ln a. Deterministic for fixed arguments. *)

val survey : ?seed:int -> r:float -> c:float -> dt:float -> unit -> point list
(** Characterization grid over representative temperatures and ages
    (the golden-pinned table printed by [adapt_pnc spice-char]). *)
