(** CRC-32 (IEEE 802.3 / zlib flavour: reflected polynomial 0xEDB88320,
    init and final XOR 0xFFFFFFFF). Guards the checkpoint format's
    header and payload against truncation and bit corruption: any
    single-bit error is detected, as is any burst shorter than 32
    bits. *)

val string : ?pos:int -> ?len:int -> string -> int
(** Checksum of a substring (default: the whole string), as an unsigned
    32-bit value in an [int]. Raises [Invalid_argument] on an
    out-of-bounds range. *)

val update : int -> string -> pos:int -> len:int -> int
(** Streaming form: [update crc s ~pos ~len] extends a previous
    checksum, with [update 0 s] ≡ [string s]. *)
