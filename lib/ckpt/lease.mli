(** Filesystem claim/lease files — the only coordination primitive of
    the process-sharded experiment grid (see docs/GRID.md).

    A claim is a small JSON file created {e atomically with its full
    content} next to the resource it guards: the writer materializes
    the bytes in a private temp file and [Unix.link]s it to the claim
    path, so a reader can never observe a partially written claim — a
    claim file that fails to parse is genuinely corrupt and is treated
    as stale, never trusted.

    Claims are advisory leases, not locks: holding one only means
    "some worker said it is computing this cell". Correctness never
    depends on mutual exclusion — results are published by atomic
    rename and are deterministic, so a duplicated computation is
    wasted work, not corruption. Staleness (dead owner pid, or age
    beyond a TTL) lets crashed workers' claims be reaped by their
    siblings; all workers run on one host, so pid liveness is
    checkable with [kill 0]. *)

type t = {
  pid : int;  (** owner process *)
  owner : string;  (** human label, e.g. ["worker-3"] *)
  since : float;  (** Unix time of acquisition (for the TTL check) *)
}

val acquire : path:string -> owner:string -> bool
(** One atomic creation attempt: [true] iff [path] did not exist and
    now holds this process's claim. Never blocks, never overwrites. *)

val read : path:string -> t option
(** [None] if the file is absent, unreadable or fails to parse — a
    corrupt claim reads as no (trustworthy) claim. *)

val release : path:string -> unit
(** Unlink the claim; absence is not an error (idempotent). *)

val pid_alive : int -> bool
(** Same-host liveness probe ([kill 0]): [true] if the pid exists
    (including as a not-yet-reaped zombie) or is not ours to signal. *)

val stale : ?ttl:float -> t -> bool
(** A claim is stale when its owner pid is dead, or when it is older
    than [ttl] seconds (default 3600 — a hung-worker backstop; pid
    death is the primary signal). Stale claims may be reaped. *)

val try_acquire :
  ?ttl:float -> owner:string -> string -> [ `Acquired | `Reaped_and_acquired | `Held of t ]
(** [try_acquire ~owner path] — {!acquire}, falling back on the
    stale-claim protocol: if [path]
    is held by a fresh claim, return it ([`Held]); if held by a stale
    or corrupt claim, reap it and retry the acquisition once
    ([`Reaped_and_acquired] on success). Losing the post-reap race to
    a sibling reports that sibling's claim as [`Held]. *)
