module Obs = Pnc_obs.Obs
module Json = Pnc_obs.Obs.Json

let saves_counter = Obs.Counter.make "ckpt.saves"
let loads_counter = Obs.Counter.make "ckpt.loads"

(* On-disk layout (all integers unsigned 32-bit little-endian):

     offset  0   magic   "PNCCKPT0"            (8 bytes)
     offset  8   format version                (u32, currently 1)
     offset 12   header length                 (u32)
     offset 16   CRC-32 of the header bytes    (u32)
     offset 20   payload length                (u32)
     offset 24   CRC-32 of the payload bytes   (u32)
     offset 28   header: one JSON object
     offset 28+header_length   payload

   The header object is {"kind":…,"meta":{…},"sections":[…]} with one
   descriptor {"name","kind","offset","len"[,"rows","cols"]} per
   section; offsets are relative to the payload start. Float sections
   ("f64") hold newline-separated %.17g decimals — exact for every
   finite double, and deterministic, so equal states encode to equal
   bytes. Opaque sections ("bytes") hold raw bytes. Both CRCs are
   checked before any section is parsed, so corruption is reported as a
   typed error instead of reaching a parser. *)

let magic = "PNCCKPT0"
let format_version = 1
let prefix_len = 28

type section = F64 of { rows : int; cols : int; data : float array } | Bytes of string

type t = {
  version : int;
  kind : string;
  meta : (string * Json.t) list;
  sections : (string * section) list;
}

type error =
  | Io_error of string
  | Bad_magic
  | Unsupported_version of int
  | Truncated of { what : string; expected : int; actual : int }
  | Crc_mismatch of { what : string; expected : int; got : int }
  | Bad_header of string
  | Missing_section of string
  | Bad_section of string

let error_to_string = function
  | Io_error msg -> "i/o error: " ^ msg
  | Bad_magic -> "bad magic (not a PNC checkpoint)"
  | Unsupported_version v -> Printf.sprintf "unsupported format version %d" v
  | Truncated { what; expected; actual } ->
      Printf.sprintf "truncated %s: need %d bytes, have %d" what expected actual
  | Crc_mismatch { what; expected; got } ->
      Printf.sprintf "%s CRC mismatch: stored %08x, computed %08x" what expected got
  | Bad_header msg -> "bad header: " ^ msg
  | Missing_section name -> "missing section: " ^ name
  | Bad_section msg -> "bad section: " ^ msg

(* Encoding ---------------------------------------------------------------- *)

let add_u32 b v =
  for i = 0 to 3 do
    Buffer.add_char b (Char.chr ((v lsr (8 * i)) land 0xFF))
  done

let encode ~kind ~meta ~sections =
  let payload = Buffer.create 4096 in
  let descriptors =
    List.map
      (fun (name, sec) ->
        let offset = Buffer.length payload in
        let fields =
          match sec with
          | F64 { rows; cols; data } ->
              if rows * cols <> Array.length data then
                invalid_arg
                  (Printf.sprintf "Ckpt.encode: section %s is %dx%d but holds %d values" name
                     rows cols (Array.length data));
              Array.iteri
                (fun i v ->
                  if i > 0 then Buffer.add_char payload '\n';
                  Buffer.add_string payload (Printf.sprintf "%.17g" v))
                data;
              [ ("kind", Json.String "f64"); ("rows", Json.Num (float_of_int rows));
                ("cols", Json.Num (float_of_int cols)) ]
          | Bytes s ->
              Buffer.add_string payload s;
              [ ("kind", Json.String "bytes") ]
        in
        let len = Buffer.length payload - offset in
        Json.Obj
          (("name", Json.String name)
          :: fields
          @ [ ("offset", Json.Num (float_of_int offset)); ("len", Json.Num (float_of_int len)) ]))
      sections
  in
  let header =
    Json.render
      (Json.Obj
         [ ("kind", Json.String kind); ("meta", Json.Obj meta); ("sections", Json.List descriptors) ])
  in
  let payload = Buffer.contents payload in
  let b = Buffer.create (prefix_len + String.length header + String.length payload) in
  Buffer.add_string b magic;
  add_u32 b format_version;
  add_u32 b (String.length header);
  add_u32 b (Crc32.string header);
  add_u32 b (String.length payload);
  add_u32 b (Crc32.string payload);
  Buffer.add_string b header;
  Buffer.add_string b payload;
  Buffer.contents b

(* Decoding ---------------------------------------------------------------- *)

let read_u32 s pos =
  Char.code s.[pos]
  lor (Char.code s.[pos + 1] lsl 8)
  lor (Char.code s.[pos + 2] lsl 16)
  lor (Char.code s.[pos + 3] lsl 24)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let header_int header name j =
  match Json.member name j with
  | Some (Json.Num v) when Float.is_integer v && v >= 0. -> Ok (int_of_float v)
  | _ -> Error (Bad_header (Printf.sprintf "section %s: missing or bad %s" header name))

let parse_f64 ~name ~rows ~cols raw =
  let expected = rows * cols in
  let parts = if String.length raw = 0 then [] else String.split_on_char '\n' raw in
  if List.length parts <> expected then
    Error
      (Bad_section
         (Printf.sprintf "%s: %d values, expected %dx%d = %d" name (List.length parts) rows cols
            expected))
  else
    let data = Array.make expected 0. in
    let rec fill i = function
      | [] -> Ok (F64 { rows; cols; data })
      | p :: rest -> (
          match float_of_string_opt p with
          | Some v ->
              data.(i) <- v;
              fill (i + 1) rest
          | None -> Error (Bad_section (Printf.sprintf "%s: malformed float %S" name p)))
    in
    fill 0 parts

let decode s =
  let n = String.length s in
  if n < prefix_len then Error (Truncated { what = "prefix"; expected = prefix_len; actual = n })
  else if String.sub s 0 8 <> magic then Error Bad_magic
  else
    let version = read_u32 s 8 in
    if version <> format_version then Error (Unsupported_version version)
    else
      let header_len = read_u32 s 12 in
      let header_crc = read_u32 s 16 in
      let payload_len = read_u32 s 20 in
      let payload_crc = read_u32 s 24 in
      let expected = prefix_len + header_len + payload_len in
      if n < expected then Error (Truncated { what = "file"; expected; actual = n })
      else if n > expected then
        Error (Bad_header (Printf.sprintf "%d trailing bytes after payload" (n - expected)))
      else
        let got_hcrc = Crc32.string ~pos:prefix_len ~len:header_len s in
        if got_hcrc <> header_crc then
          Error (Crc_mismatch { what = "header"; expected = header_crc; got = got_hcrc })
        else
          let got_pcrc = Crc32.string ~pos:(prefix_len + header_len) ~len:payload_len s in
          if got_pcrc <> payload_crc then
            Error (Crc_mismatch { what = "payload"; expected = payload_crc; got = got_pcrc })
          else
            let* header =
              match Json.parse (String.sub s prefix_len header_len) with
              | j -> Ok j
              | exception Failure msg -> Error (Bad_header msg)
            in
            let* kind =
              match Json.member "kind" header with
              | Some (Json.String k) -> Ok k
              | _ -> Error (Bad_header "missing kind")
            in
            let* meta =
              match Json.member "meta" header with
              | Some (Json.Obj kvs) -> Ok kvs
              | _ -> Error (Bad_header "missing meta object")
            in
            let* descriptors =
              match Json.member "sections" header with
              | Some (Json.List ds) -> Ok ds
              | _ -> Error (Bad_header "missing sections list")
            in
            let payload_off = prefix_len + header_len in
            let rec sections acc = function
              | [] -> Ok (List.rev acc)
              | d :: rest ->
                  let* name =
                    match Json.member "name" d with
                    | Some (Json.String s) -> Ok s
                    | _ -> Error (Bad_header "section without name")
                  in
                  let* offset = header_int name "offset" d in
                  let* len = header_int name "len" d in
                  let* () =
                    if offset + len <= payload_len then Ok ()
                    else
                      Error
                        (Bad_header
                           (Printf.sprintf "section %s: range %d+%d exceeds payload %d" name
                              offset len payload_len))
                  in
                  let raw = String.sub s (payload_off + offset) len in
                  let* sec =
                    match Json.member "kind" d with
                    | Some (Json.String "bytes") -> Ok (Bytes raw)
                    | Some (Json.String "f64") ->
                        let* rows = header_int name "rows" d in
                        let* cols = header_int name "cols" d in
                        parse_f64 ~name ~rows ~cols raw
                    | Some (Json.String k) ->
                        Error (Bad_header (Printf.sprintf "section %s: unknown kind %s" name k))
                    | _ -> Error (Bad_header (Printf.sprintf "section %s: missing kind" name))
                  in
                  sections ((name, sec) :: acc) rest
            in
            let* sections = sections [] descriptors in
            Ok { version; kind; meta; sections }

(* File I/O ---------------------------------------------------------------- *)

(* The temp name embeds the writer's pid: concurrent writers of the
   same checkpoint (duplicated grid workers racing after a stale-claim
   reap, see docs/GRID.md) each stage their own bytes and the renames
   serialize — last fully-written image wins, and no writer can
   truncate another's in-flight temp file. A leftover [.tmp.<pid>]
   from a killed writer is litter, never a hazard: it is reaped by
   [Pnc_grid] once its pid is dead. *)
let tmp_path path = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ())

let atomic_write ~path write =
  let tmp = tmp_path path in
  let oc = open_out_bin tmp in
  (match write oc with
  | () -> close_out oc
  | exception e ->
      (* Never leave a torn file: drop the partial temp and keep
         whatever valid checkpoint was at [path] before. *)
      close_out_noerr oc;
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e);
  Sys.rename tmp path

let save ~path ~kind ~meta ~sections =
  let image = encode ~kind ~meta ~sections in
  atomic_write ~path (fun oc -> output_string oc image);
  Obs.Counter.incr saves_counter;
  if Obs.enabled () then
    Obs.emit "ckpt.save"
      [
        ("path", Obs.Str path);
        ("kind", Obs.Str kind);
        ("bytes", Obs.Int (String.length image));
        ("sections", Obs.Int (List.length sections));
      ]

let load ~path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error msg -> Error (Io_error msg)
  | image -> (
      match decode image with
      | Error _ as e -> e
      | Ok t ->
          Obs.Counter.incr loads_counter;
          if Obs.enabled () then
            Obs.emit "ckpt.load"
              [
                ("path", Obs.Str path);
                ("kind", Obs.Str t.kind);
                ("bytes", Obs.Int (String.length image));
                ("sections", Obs.Int (List.length t.sections));
              ];
          Ok t)

(* Defined here, after [decode] and friends, so that the exception
   constructor does not shadow [result]'s [Error] in the code above. *)
exception Error of error

let () =
  Printexc.register_printer (function
    | Error e -> Some ("Pnc_ckpt.Ckpt.Error: " ^ error_to_string e)
    | _ -> None)

let load_exn ~path = match load ~path with Ok t -> t | Stdlib.Error e -> raise (Error e)

(* Accessors --------------------------------------------------------------- *)

let meta_field t name = List.assoc_opt name t.meta

let find t name =
  match List.assoc_opt name t.sections with
  | Some s -> Ok s
  | None -> Error (Missing_section name)

let f64 t name =
  let* s = find t name in
  match s with
  | F64 { data; _ } -> Ok data
  | Bytes _ -> Error (Bad_section (name ^ ": expected f64, found bytes"))

let f64_shaped t name =
  let* s = find t name in
  match s with
  | F64 { rows; cols; data } -> Ok (rows, cols, data)
  | Bytes _ -> Error (Bad_section (name ^ ": expected f64, found bytes"))

let bytes t name =
  let* s = find t name in
  match s with
  | Bytes b -> Ok b
  | F64 _ -> Error (Bad_section (name ^ ": expected bytes, found f64"))

let inspect t =
  let b = Buffer.create 512 in
  Printf.bprintf b "kind:    %s\nversion: %d\nmeta:\n" t.kind t.version;
  List.iter (fun (k, v) -> Printf.bprintf b "  %-24s %s\n" k (Json.render v)) t.meta;
  Printf.bprintf b "sections (%d):\n" (List.length t.sections);
  List.iter
    (fun (name, sec) ->
      match sec with
      | F64 { rows; cols; _ } -> Printf.bprintf b "  %-40s f64   %d x %d\n" name rows cols
      | Bytes s -> Printf.bprintf b "  %-40s bytes %d B\n" name (String.length s))
    t.sections;
  Buffer.contents b
