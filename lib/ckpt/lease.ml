module Json = Pnc_obs.Obs.Json

type t = { pid : int; owner : string; since : float }

let default_ttl = 3600.

let render l =
  Json.render
    (Json.Obj
       [
         ("pid", Json.Num (float_of_int l.pid));
         ("owner", Json.String l.owner);
         ("since", Json.Num l.since);
       ])

(* Atomic create-with-content: write a private temp file, then
   [Unix.link] it to [path]. link(2) fails with EEXIST when a claim is
   already there and never exposes partial content, unlike
   create-then-write (a reader between the two syscalls would see an
   empty claim and reap it as corrupt). The staging name carries the
   pid AND a per-process counter, so concurrent attempts — whether
   sibling processes or sibling threads of one process — can never
   clobber each other's staging bytes and link a torn claim. *)
let attempt_counter = Atomic.make 0

let acquire ~path ~owner =
  let lease = { pid = Unix.getpid (); owner; since = Unix.gettimeofday () } in
  let tmp = Printf.sprintf "%s.%d.%d.tmp" path lease.pid (Atomic.fetch_and_add attempt_counter 1) in
  Out_channel.with_open_bin tmp (fun oc -> output_string oc (render lease));
  let won =
    match Unix.link tmp path with
    | () -> true
    | exception Unix.Unix_error (Unix.EEXIST, _, _) -> false
  in
  (try Sys.remove tmp with Sys_error _ -> ());
  won

let read ~path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error _ -> None
  | image -> (
      match Json.parse image with
      | exception Failure _ -> None
      | j -> (
          match (Json.member "pid" j, Json.member "owner" j, Json.member "since" j) with
          | Some pid, Some owner, Some since -> (
              try
                Some
                  { pid = Json.to_int pid; owner = Json.to_string owner; since = Json.to_float since }
              with Failure _ -> None)
          | _ -> None))

let release ~path = try Sys.remove path with Sys_error _ -> ()

let pid_alive pid =
  match Unix.kill pid 0 with
  | () -> true
  | exception Unix.Unix_error (Unix.ESRCH, _, _) -> false
  (* Not ours to signal, but it exists. *)
  | exception Unix.Unix_error (Unix.EPERM, _, _) -> true

let stale ?(ttl = default_ttl) l =
  (not (pid_alive l.pid)) || Unix.gettimeofday () -. l.since > ttl

let try_acquire ?ttl ~owner path =
  if acquire ~path ~owner then `Acquired
  else
    match read ~path with
    | Some l when not (stale ?ttl l) -> `Held l
    | _ ->
        (* Stale or corrupt (or vanished between the failed acquire and
           the read): reap and retry exactly once. A sibling can win
           the post-reap race; report its claim then. *)
        release ~path;
        if acquire ~path ~owner then `Reaped_and_acquired
        else ( match read ~path with
          | Some l -> `Held l
          | None -> `Held { pid = -1; owner = "unknown"; since = 0. })
