(* CRC-32 (IEEE 802.3): reflected polynomial 0xEDB88320, initial value
   and final XOR 0xFFFFFFFF — the common zlib/PNG/Ethernet checksum.
   Table-driven, one lookup per byte; values fit comfortably in OCaml's
   native int. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let update crc s ~pos ~len =
  let t = Lazy.force table in
  let c = ref (crc lxor 0xFFFFFFFF) in
  for i = pos to pos + len - 1 do
    c := t.((!c lxor Char.code (String.unsafe_get s i)) land 0xFF) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

let string ?(pos = 0) ?len s =
  let len = match len with Some l -> l | None -> String.length s - pos in
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Crc32.string: range out of bounds";
  update 0 s ~pos ~len
