(** Versioned, checksummed, self-describing checkpoint container.

    One file holds a JSON header (kind + free-form metadata + section
    directory, built on {!Pnc_obs.Obs.Json}) and a payload of named
    sections: [F64] float arrays encoded as newline-separated [%.17g]
    decimals (exact and deterministic for every double, so equal states
    produce byte-identical files) and opaque [Bytes] blobs (RNG state
    images). Header and payload each carry a CRC-32 checked before any
    parsing, and every well-formedness violation is reported as a typed
    {!error} — a corrupted or truncated file can never yield a silently
    wrong model, and writes go through {!atomic_write} so a crash
    mid-save never leaves a torn file behind.

    Layout (integers are unsigned 32-bit little-endian):
    {v
    offset  0   magic "PNCCKPT0"           (8 bytes)
    offset  8   format version             (u32, currently 1)
    offset 12   header length              (u32)
    offset 16   CRC-32 of the header       (u32)
    offset 20   payload length             (u32)
    offset 24   CRC-32 of the payload      (u32)
    offset 28   header JSON, then payload
    v}

    See [docs/CHECKPOINTS.md] for the full byte-level specification and
    the compatibility policy. *)

module Json := Pnc_obs.Obs.Json

val format_version : int
(** Current writer version. Readers accept exactly this version and
    reject anything else with {!Unsupported_version}. *)

type section = F64 of { rows : int; cols : int; data : float array } | Bytes of string

type t = {
  version : int;
  kind : string;  (** checkpoint flavour: ["model"], ["train"], ["grid-cell"], … *)
  meta : (string * Json.t) list;  (** free-form header metadata *)
  sections : (string * section) list;  (** payload, in file order *)
}

(** {1 Errors} *)

type error =
  | Io_error of string
  | Bad_magic
  | Unsupported_version of int
  | Truncated of { what : string; expected : int; actual : int }
  | Crc_mismatch of { what : string; expected : int; got : int }
  | Bad_header of string
  | Missing_section of string
  | Bad_section of string

exception Error of error
(** Raised only by the [_exn] conveniences; the primary API returns
    [result]. *)

val error_to_string : error -> string

(** {1 Encoding / decoding} *)

val encode :
  kind:string -> meta:(string * Json.t) list -> sections:(string * section) list -> string
(** The complete file image. Deterministic: equal inputs produce equal
    bytes. Raises [Invalid_argument] if an [F64] section's [rows*cols]
    disagrees with its data length. *)

val decode : string -> (t, error) result
(** Inverse of {!encode}. Validates, in order: length of the fixed
    prefix, magic, version, declared lengths against the actual size
    (trailing bytes are an error too), header CRC, payload CRC, header
    JSON shape, then every section (range, kind, float syntax, count).
    Never raises on malformed input. *)

(** {1 Files} *)

val atomic_write : path:string -> (out_channel -> unit) -> unit
(** Run the writer on [path ^ ".tmp.<pid>"], then atomically rename
    over [path]. If the writer raises, the temp file is removed, the
    exception is re-raised, and a previously existing [path] is left
    untouched — interrupted saves never clobber the last good
    checkpoint. The pid suffix keeps concurrent writers of the same
    path (duplicated grid workers after a stale-claim reap) from
    truncating each other's staging bytes: renames serialize and the
    last complete image wins. *)

val save :
  path:string -> kind:string -> meta:(string * Json.t) list -> sections:(string * section) list -> unit
(** {!encode} + {!atomic_write}; emits a [ckpt.save] event when a
    telemetry sink is installed. *)

val load : path:string -> (t, error) result
(** Read + {!decode}; emits a [ckpt.load] event on success. *)

val load_exn : path:string -> t
(** Raises {!Error}. *)

(** {1 Accessors} *)

val meta_field : t -> string -> Json.t option

val find : t -> string -> (section, error) result
val f64 : t -> string -> (float array, error) result
val f64_shaped : t -> string -> (int * int * float array, error) result
val bytes : t -> string -> (string, error) result

val inspect : t -> string
(** Human-readable header dump (the [ckpt inspect] CLI output): kind,
    version, metadata, and the section directory with shapes/sizes. *)
