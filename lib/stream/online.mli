(** Sliding-window streaming evaluation with optional online test-time
    adaptation (prequential, test-then-train).

    The stream is cut into windows ({!Window.slice}); each window is
    scored on the no-grad batched path ({!Pnc_core.Model.predict_batch})
    and, when adaptation is on, the model then takes a few optimizer
    steps on that window's (x, y) buffer through the tape engine before
    the next window arrives.

    {b Determinism contract.} [rng] is split once: child 0 is the
    physical-instance stream — the variation draw is replayed from a
    {!Pnc_util.Rng.copy} of it for {e every} window (and every
    adaptation step), so the whole stream runs on one physical circuit
    instance, and an offline comparator that builds
    [Variation.make_draw] from a copy of the same child sees logits
    bit-identical to the streaming ones. Child 1 is pre-split into one
    state stream per window, so [`Randomized] initial filter states
    depend on the window index alone. Consequences, pinned by
    [test/test_stream.ml]: results are invariant to the pool size and
    to [?batch_size]/[ADAPT_PNC_BATCH], and with [adapt = Off],
    [stride = width] and [state_init = `V0] the overall streaming
    accuracy equals offline {!Pnc_core.Train.accuracy} on
    {!Scenario.to_dataset} at eps 0. *)

type adapt =
  | Off  (** frozen baseline (the ablation reference) *)
  | Filters  (** adapt only the learnable filter R/C parameters *)
  | All  (** adapt every trainable parameter *)

val adapt_tag : adapt -> string
val adapt_of_tag : string -> adapt option

type state_init = [ `V0 | `Zero | `Randomized of float ]
(** Filter initial-voltage semantics per window — [`Randomized sigma]
    draws fresh V[0] ~ N(0, sigma²) per (window, row, channel) from
    the window's own pre-split stream, the sliding-window regime of
    the exemplar LearnableFilter. *)

type protocol = {
  width : int;  (** window width, in samples *)
  stride : int;  (** window stride; [= width] partitions the stream *)
  state_init : state_init;
  adapt : adapt;
  adapt_lr : float;
  adapt_steps : int;  (** optimizer steps per window *)
  detect_baseline : int;  (** windows averaged into the reference level *)
  detect_drop : float;  (** accuracy drop that fires the detector *)
}

val default_protocol : protocol
(** width 16, stride 16, [`V0], adaptation off (lr 0.05, 2 steps when
    enabled), detector: 3 baseline windows, 0.25 drop. *)

val fingerprint : protocol -> string
(** Canonical text over every result-affecting knob (window geometry,
    state init, adaptation, detector thresholds). Chunking and pool
    knobs are result-invariant and deliberately absent. *)

type point = { w : int; start : int; len : int; correct : int; acc : float }

type result = {
  points : point array;  (** the accuracy-over-time curve *)
  overall_acc : float;  (** total correct / total scored samples *)
  pre_drift_acc : float option;  (** mean acc over fully-pre-drift windows *)
  post_drift_acc : float option;  (** mean acc over post-drift windows *)
  first_drift_window : int option;
  detected_at : int option;  (** window where the detector fired *)
  detect_latency : int option;  (** windows between drift and detection *)
}

val eval :
  ?batch_size:int ->
  ?precision:[ `Exact | `Fast ] ->
  ?pool:Pnc_util.Pool.t ->
  ?spec:Pnc_core.Variation.spec ->
  ?v0_sigma:float ->
  rng:Pnc_util.Rng.t ->
  protocol ->
  Pnc_core.Model.t ->
  Scenario.realized ->
  result
(** Runs the protocol over the realized stream. [spec] fixes one
    physical instance under component variation (absent = the
    deterministic nominal circuit). With [pool] and a frozen model the
    windows evaluate in parallel, bit-identically to the sequential
    run; with adaptation on, the loop is inherently sequential and the
    pool is unused. {b Adaptation mutates the model's parameters in
    place} — snapshot first ({!snapshot_params}) if the trained weights
    must survive. Emits [stream.window] / [stream.drift] /
    [stream.done] events and bumps the [stream.*] counters. *)

val snapshot_params : Pnc_core.Model.t -> Pnc_tensor.Tensor.t list
val restore_params : Pnc_core.Model.t -> Pnc_tensor.Tensor.t list -> unit
(** Deep-copy / restore every trainable parameter tensor — the frozen /
    adapted ablation runs the same trained model twice via these. *)
