type t = { index : int; start : int; len : int }

let slice ~n ~width ~stride =
  if n < 0 then invalid_arg "Window.slice: negative n";
  if width <= 0 then invalid_arg "Window.slice: width must be positive";
  if stride <= 0 then invalid_arg "Window.slice: stride must be positive";
  let rec go acc index start =
    if start >= n then List.rev acc
    else
      go ({ index; start; len = Stdlib.min width (n - start) } :: acc) (index + 1)
        (start + stride)
  in
  go [] 0 0
