module T = Pnc_tensor.Tensor
module Var = Pnc_autodiff.Var
module Rng = Pnc_util.Rng
module Pool = Pnc_util.Pool
module Loss = Pnc_autodiff.Loss
module Optimizer = Pnc_optim.Optimizer
module Model = Pnc_core.Model
module Network = Pnc_core.Network
module Filter_layer = Pnc_core.Filter_layer
module Variation = Pnc_core.Variation
module Obs = Pnc_obs.Obs
module Clock = Pnc_obs.Clock

type adapt = Off | Filters | All

let adapt_tag = function Off -> "off" | Filters -> "filters" | All -> "all"

let adapt_of_tag = function
  | "off" -> Some Off
  | "filters" -> Some Filters
  | "all" -> Some All
  | _ -> None

type state_init = [ `V0 | `Zero | `Randomized of float ]

let state_init_tag = function
  | `V0 -> "v0"
  | `Zero -> "zero"
  | `Randomized s -> Printf.sprintf "rand%g" s

type protocol = {
  width : int;
  stride : int;
  state_init : state_init;
  adapt : adapt;
  adapt_lr : float;
  adapt_steps : int;
  detect_baseline : int;
  detect_drop : float;
}

let default_protocol =
  {
    width = 16;
    stride = 16;
    state_init = `V0;
    adapt = Off;
    adapt_lr = 0.05;
    adapt_steps = 2;
    detect_baseline = 3;
    detect_drop = 0.25;
  }

let fingerprint p =
  Printf.sprintf "online|w=%d|s=%d|init=%s|adapt=%s|lr=%g|steps=%d|detect=%d:%g" p.width
    p.stride (state_init_tag p.state_init) (adapt_tag p.adapt) p.adapt_lr p.adapt_steps
    p.detect_baseline p.detect_drop

type point = { w : int; start : int; len : int; correct : int; acc : float }

type result = {
  points : point array;
  overall_acc : float;
  pre_drift_acc : float option;
  post_drift_acc : float option;
  first_drift_window : int option;
  detected_at : int option;
  detect_latency : int option;
}

let windows_counter = Obs.Counter.make "stream.windows"
let samples_counter = Obs.Counter.make "stream.samples"
let adapt_steps_counter = Obs.Counter.make "stream.adapt_steps"
let window_seconds_hist = Obs.Histogram.make "stream.window_seconds"

let snapshot_params model = List.map (fun p -> T.copy (Var.value p)) (Model.params model)

let restore_params model snap =
  List.iter2 (fun p s -> T.blit_into ~dst:(Var.value p) s) (Model.params model) snap

let adapt_params protocol model =
  match (protocol.adapt, model) with
  | Off, _ -> []
  | All, _ -> Model.params model
  | Filters, Model.Circuit net ->
      List.concat_map (fun (_, fl, _) -> Filter_layer.params fl) (Network.layers net)
  | Filters, Model.Reference _ -> []

(* Detection: the reference level is the mean accuracy of the first
   [detect_baseline] windows; the detector fires at the first later
   window whose accuracy falls more than [detect_drop] below it. *)
let detect protocol (points : point array) =
  let nb = protocol.detect_baseline in
  if nb < 1 || Array.length points <= nb then None
  else begin
    let baseline = ref 0. in
    for w = 0 to nb - 1 do
      baseline := !baseline +. points.(w).acc
    done;
    let baseline = !baseline /. float_of_int nb in
    let rec go w =
      if w >= Array.length points then None
      else if points.(w).acc < baseline -. protocol.detect_drop then Some w
      else go (w + 1)
    in
    go nb
  end

let mean_acc = function
  | [] -> None
  | ps ->
      let c, n =
        List.fold_left (fun (c, n) (p : point) -> (c + p.correct, n + p.len)) (0, 0) ps
      in
      Some (float_of_int c /. float_of_int n)

let eval ?batch_size ?precision ?pool ?spec ?v0_sigma ~rng protocol model
    (rz : Scenario.realized) =
  if protocol.width <= 0 || protocol.stride <= 0 then
    invalid_arg "Online.eval: width and stride must be positive";
  let n = Array.length rz.Scenario.x in
  let windows =
    Array.of_list (Window.slice ~n ~width:protocol.width ~stride:protocol.stride)
  in
  let nw = Array.length windows in
  let x_all = T.of_rows rz.Scenario.x in
  (* rng layout (part of the parity contract pinned by test_stream):
     child 0 carries the physical-instance draw — replayed per window
     via Rng.copy, so every window (and an offline comparator using a
     copy of the same child) sees the same physical circuit; child 1
     parents one pre-split state stream per window, so `Randomized
     initial states are a function of the window index alone (pool-
     and order-invariant). *)
  let top = Rng.split_n rng 2 in
  let state_rngs = Rng.split_n top.(1) nw in
  let mk_draw () =
    match spec with
    | None -> Variation.deterministic
    | Some s -> Variation.make_draw ?v0_sigma (Rng.copy top.(0)) s
  in
  let state_init_for w : Pnc_core.Filter_layer.state_init =
    match protocol.state_init with
    | `V0 -> `V0
    | `Zero -> `Zero
    | `Randomized sigma -> `Gaussian (state_rngs.(w), sigma)
  in
  let score w =
    let t0 = if Obs.enabled () then Clock.now () else 0. in
    let win = windows.(w) in
    let xw = T.rows_view x_all ~row:win.Window.start ~len:win.Window.len in
    let pred =
      Model.predict_batch ?batch_size ?precision ~state_init:(state_init_for w)
        ~draw:(mk_draw ()) model xw
    in
    let correct = ref 0 in
    Array.iteri
      (fun j p -> if p = rz.Scenario.y.(win.Window.start + j) then incr correct)
      pred;
    let dt = if Obs.enabled () then Clock.elapsed t0 else 0. in
    ( {
        w;
        start = win.Window.start;
        len = win.Window.len;
        correct = !correct;
        acc = float_of_int !correct /. float_of_int win.Window.len;
      },
      dt )
  in
  let params = adapt_params protocol model in
  let scored =
    match (params, pool) with
    | [], Some p ->
        (* Frozen model: windows are independent read-only evaluations,
           and each one's randomness is pre-split — pooling them cannot
           change a bit. *)
        Pool.init p ~n:nw score
    | [], None -> Array.init nw score
    | _ :: _, _ ->
        (* Test-then-train (prequential): score window w with the
           current parameters, then take [adapt_steps] optimizer steps
           on its (x, y) buffer through the tape engine. Inherently
           sequential — the pool is not used (the tape is main-domain
           state, and window w+1 must see the post-w parameters). *)
        let opt = Optimizer.adamw ~params () in
        Array.init nw (fun w ->
            let point = score w in
            let win = windows.(w) in
            let xw = T.rows_view x_all ~row:win.Window.start ~len:win.Window.len in
            let yw = Array.sub rz.Scenario.y win.Window.start win.Window.len in
            for _ = 1 to protocol.adapt_steps do
              Optimizer.zero_grads opt;
              let logits = Model.logits ~draw:(mk_draw ()) model xw in
              let loss = Loss.softmax_cross_entropy ~logits ~labels:yw in
              Var.backward loss;
              Optimizer.clip_grad_norm opt ~max_norm:5.;
              Optimizer.step opt ~lr:protocol.adapt_lr;
              Model.clamp model;
              Obs.Counter.incr adapt_steps_counter
            done;
            point)
  in
  let points = Array.map fst scored in
  Obs.Counter.add windows_counter nw;
  Obs.Counter.add samples_counter n;
  if Obs.enabled () then
    Array.iter
      (fun ((p : point), dt) ->
        Obs.Histogram.observe window_seconds_hist dt;
        Obs.emit "stream.window"
          [
            ("w", Obs.Int p.w);
            ("start", Obs.Int p.start);
            ("len", Obs.Int p.len);
            ("acc", Obs.Float p.acc);
            ("adapted", Obs.Bool (params <> []));
            ("dur_s", Obs.Float dt);
          ])
      scored;
  let total_correct = Array.fold_left (fun a p -> a + p.correct) 0 points in
  let total_len = Array.fold_left (fun a p -> a + p.len) 0 points in
  let overall_acc = float_of_int total_correct /. float_of_int total_len in
  let first_drift_sample = Scenario.first_drift rz in
  let first_drift_window =
    Option.bind first_drift_sample (fun i ->
        Array.fold_left
          (fun acc (p : point) ->
            if acc = None && i < p.start + p.len then Some p.w else acc)
          None points)
  in
  let pre_drift_acc =
    Option.bind first_drift_sample (fun i ->
        mean_acc (List.filter (fun p -> p.start + p.len <= i) (Array.to_list points)))
  in
  let post_drift_acc =
    Option.bind first_drift_sample (fun i ->
        mean_acc (List.filter (fun p -> p.start >= i) (Array.to_list points)))
  in
  let detected_at = detect protocol points in
  let detect_latency =
    match (detected_at, first_drift_window) with
    | Some d, Some f when d >= f -> Some (d - f)
    | _ -> None
  in
  (match detected_at with
  | Some d when Obs.enabled () ->
      Obs.emit "stream.drift"
        [
          ("detected_at", Obs.Int d);
          ( "latency_windows",
            match detect_latency with Some l -> Obs.Int l | None -> Obs.Str "n/a" );
        ]
  | _ -> ());
  if Obs.enabled () then
    Obs.emit "stream.done"
      [
        ("windows", Obs.Int nw);
        ("samples", Obs.Int n);
        ("overall_acc", Obs.Float overall_acc);
        ("adapt", Obs.Str (adapt_tag protocol.adapt));
        ( "pre_drift_acc",
          match pre_drift_acc with Some a -> Obs.Float a | None -> Obs.Str "n/a" );
        ( "post_drift_acc",
          match post_drift_acc with Some a -> Obs.Float a | None -> Obs.Str "n/a" );
        ( "detected_at",
          match detected_at with Some d -> Obs.Int d | None -> Obs.Str "none" );
      ];
  {
    points;
    overall_acc;
    pre_drift_acc;
    post_drift_acc;
    first_drift_window;
    detected_at;
    detect_latency;
  }
