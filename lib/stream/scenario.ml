module Rng = Pnc_util.Rng
module Dataset = Pnc_data.Dataset
module Registry = Pnc_data.Registry
module Obs = Pnc_obs.Obs

type drift_kind = Abrupt | Gradual of int

type drift = { drift_at : int; kind : drift_kind; shift : int }

type perturb = {
  burst_rate : float;
  burst_sigma : float;
  dropout_rate : float;
  wander_amp : float;
  wander_period : float;
}

let no_perturb =
  { burst_rate = 0.; burst_sigma = 0.; dropout_rate = 0.; wander_amp = 0.; wander_period = 8. }

type t = {
  dataset : string;
  n_samples : int;
  length : int;
  seed : int;
  drift : drift option;
  perturb : perturb;
}

let make ?(length = 64) ?drift ?(perturb = no_perturb) ~dataset ~n_samples ~seed () =
  let spec = Registry.find dataset in
  if n_samples <= 0 then invalid_arg "Scenario.make: n_samples must be positive";
  if length <= 0 then invalid_arg "Scenario.make: length must be positive";
  let rate_ok r = r >= 0. && r <= 1. in
  if not (rate_ok perturb.burst_rate && rate_ok perturb.dropout_rate) then
    invalid_arg "Scenario.make: rates must lie in [0, 1]";
  (match drift with
  | Some d ->
      if d.drift_at < 0 then invalid_arg "Scenario.make: drift_at must be >= 0";
      if d.shift <= 0 || d.shift >= spec.Registry.n_classes then
        invalid_arg "Scenario.make: shift must lie in [1, n_classes)";
      (match d.kind with
      | Gradual ramp when ramp < 0 -> invalid_arg "Scenario.make: negative ramp"
      | _ -> ())
  | None -> ());
  { dataset; n_samples; length; seed; drift; perturb }

type event = {
  sample : int;
  burst : (int * int) option;
  dropped : int list;
  drifted : bool;
}

type realized = {
  scenario : t;
  n_classes : int;
  x : float array array;
  y : int array;
  clean_y : int array;
  events : event array;
}

let dropouts_counter = Obs.Counter.make "stream.dropouts"
let bursts_counter = Obs.Counter.make "stream.bursts"

(* Raw generated length before the paper's resize; matches what
   Registry.load feeds Dataset.preprocess. *)
let raw_length = 128

(* The base sample for stream index [i]: the label cycles through the
   classes deterministically, and the series is picked out of a small
   candidate batch generated from [i]'s own child stream. The registry
   generators draw all labels before all series, so a sample cut from
   one long generator pass would depend on the total stream length;
   generating per index from a split_n child is what makes sample [i]
   a pure function of (seed, i). *)
let base_sample spec child ~length i =
  let n_classes = spec.Registry.n_classes in
  let want = i mod n_classes in
  let n_cand = 2 * n_classes in
  let cand = spec.Registry.gen child ~n:n_cand ~length:raw_length in
  let cand = Dataset.normalize (Dataset.resize cand length) in
  let idx = ref (want mod Dataset.n_samples cand) in
  (try
     for j = 0 to Dataset.n_samples cand - 1 do
       if cand.Dataset.y.(j) = want then begin
         idx := j;
         raise Exit
       end
     done
   with Exit -> ());
  (Array.copy cand.Dataset.x.(!idx), want)

let drift_decision scenario pr i =
  match scenario.drift with
  | None -> false
  | Some d -> (
      match d.kind with
      | Abrupt -> i >= d.drift_at
      | Gradual ramp ->
          if i < d.drift_at then false
          else if i >= d.drift_at + ramp then true
          else
            (* Probability ramps linearly across the transition window;
               the coin comes from sample [i]'s own stream. *)
            Rng.float pr 1. < float_of_int (i - d.drift_at + 1) /. float_of_int (ramp + 1))

(* Perturbation schedule for sample [i], applied in place. Fixed
   consumption order on [pr] — drift coin, burst coin/geometry/noise,
   per-step dropout coins — so the schedule is a pure function of the
   child stream (and hence of (seed, i)). Baseline wander is analytic
   in global time and draws nothing per sample. *)
let perturb_sample scenario ~phase pr i x =
  let p = scenario.perturb in
  let len = Array.length x in
  let drifted = drift_decision scenario pr i in
  let burst =
    if p.burst_rate > 0. && Rng.float pr 1. < p.burst_rate then begin
      let max_len = Stdlib.max 1 (len / 4) in
      let blen = 1 + Rng.int pr max_len in
      let start = Rng.int pr (len - blen + 1) in
      for t = start to start + blen - 1 do
        x.(t) <- x.(t) +. Rng.gaussian ~sigma:p.burst_sigma pr
      done;
      Some (start, blen)
    end
    else None
  in
  let dropped = ref [] in
  if p.dropout_rate > 0. then
    for t = 0 to len - 1 do
      if Rng.float pr 1. < p.dropout_rate then begin
        (* Sample-and-hold: a dropped reading repeats the previous
           (post-dropout) value; a dropout at t = 0 reads zero. *)
        x.(t) <- (if t = 0 then 0. else x.(t - 1));
        dropped := t :: !dropped
      end
    done;
  if p.wander_amp > 0. then begin
    let period = Float.max 1. p.wander_period *. float_of_int len in
    for t = 0 to len - 1 do
      let gt = float_of_int ((i * len) + t) in
      x.(t) <- x.(t) +. (p.wander_amp *. Float.sin ((2. *. Float.pi *. gt /. period) +. phase))
    done
  end;
  (burst, List.rev !dropped, drifted)

(* One stream sample from its pre-split child: the child is split once
   more into the generation stream and the perturbation stream so the
   schedule does not depend on how many draws the base generator
   consumed. *)
let sample_of_child scenario spec ~phase child i =
  let sub = Rng.split_n child 2 in
  let x, clean = base_sample spec sub.(0) ~length:scenario.length i in
  let burst, dropped, drifted = perturb_sample scenario ~phase sub.(1) i x in
  let y =
    match scenario.drift with
    | Some d when drifted -> (clean + d.shift) mod spec.Registry.n_classes
    | _ -> clean
  in
  (x, y, clean, { sample = i; burst; dropped; drifted })

(* Root split: child 0 carries the global schedule draws (the wander
   phase), child 1 parents the per-sample streams. split_n child [i]
   is a pure function of the parent state and [i], so sample [i] is
   identical whether the stream is realized whole or regenerated
   index by index (and for any stream length >= i+1). *)
let streams scenario ~n =
  let root = Rng.create ~seed:scenario.seed in
  let top = Rng.split_n root 2 in
  let phase = Rng.float top.(0) (2. *. Float.pi) in
  (phase, Rng.split_n top.(1) n)

let sample scenario i =
  if i < 0 || i >= scenario.n_samples then invalid_arg "Scenario.sample: index out of range";
  let spec = Registry.find scenario.dataset in
  let phase, children = streams scenario ~n:(i + 1) in
  sample_of_child scenario spec ~phase children.(i) i

let realize scenario =
  let spec = Registry.find scenario.dataset in
  let n = scenario.n_samples in
  let phase, children = streams scenario ~n in
  let x = Array.make n [||] in
  let y = Array.make n 0 in
  let clean_y = Array.make n 0 in
  let events =
    Array.init n (fun i ->
        let xi, yi, ci, ev = sample_of_child scenario spec ~phase children.(i) i in
        x.(i) <- xi;
        y.(i) <- yi;
        clean_y.(i) <- ci;
        ev)
  in
  let bursts = Array.fold_left (fun a e -> a + if e.burst = None then 0 else 1) 0 events in
  let drops = Array.fold_left (fun a e -> a + List.length e.dropped) 0 events in
  Obs.Counter.add bursts_counter bursts;
  Obs.Counter.add dropouts_counter drops;
  if Obs.enabled () then
    Obs.emit "stream.scenario"
      [
        ("dataset", Obs.Str scenario.dataset);
        ("n_samples", Obs.Int n);
        ("length", Obs.Int scenario.length);
        ("seed", Obs.Int scenario.seed);
        ("bursts", Obs.Int bursts);
        ("dropouts", Obs.Int drops);
        ("drifted", Obs.Int (Array.fold_left (fun a e -> a + if e.drifted then 1 else 0) 0 events));
      ];
  { scenario; n_classes = spec.Registry.n_classes; x; y; clean_y; events }

let first_drift rz =
  let n = Array.length rz.events in
  let rec go i = if i >= n then None else if rz.events.(i).drifted then Some i else go (i + 1) in
  go 0

let to_dataset rz =
  Dataset.make
    ~name:(rz.scenario.dataset ^ "-stream")
    ~n_classes:rz.n_classes ~x:rz.x ~y:rz.y

let fingerprint s =
  let drift =
    match s.drift with
    | None -> "none"
    | Some d ->
        Printf.sprintf "%s@%d+%d"
          (match d.kind with Abrupt -> "abrupt" | Gradual r -> Printf.sprintf "gradual%d" r)
          d.drift_at d.shift
  in
  Printf.sprintf "stream|ds=%s|n=%d|len=%d|seed=%d|drift=%s|burst=%g:%g|drop=%g|wander=%g:%g"
    s.dataset s.n_samples s.length s.seed drift s.perturb.burst_rate s.perturb.burst_sigma
    s.perturb.dropout_rate s.perturb.wander_amp s.perturb.wander_period
