(** Sliding-window index arithmetic, factored out so the slicing
    semantics can be property-tested in isolation. *)

type t = { index : int; start : int; len : int }

val slice : n:int -> width:int -> stride:int -> t list
(** Windows starting at [0, stride, 2·stride, …] while the start lies
    inside the stream; each is clipped to the stream end
    ([len = min width (n - start)], so trailing windows may be short
    but never empty). For [stride = width] the windows partition
    [0, n) exactly (exhaustive, non-overlapping); for
    [stride < width] they overlap and still cover every index. The
    qgen battery pins both claims. @raise Invalid_argument unless
    [n >= 0], [width > 0] and [stride > 0]. *)
