(** Continuous synthetic sensor streams layered on the registry
    generators: an endless (well, [n_samples]-long) sequence of labeled
    series subjected to the disturbances a deployed printed sensor
    front-end actually meets — concept drift, burst noise, sample
    dropouts and baseline wander.

    {b Determinism.} The scenario seed is split once into a global
    schedule stream and a parent for per-sample child streams
    ({!Pnc_util.Rng.split_n}), and each stream sample is generated from
    its own child. Child [i] is a pure function of the parent state and
    [i], so sample [i] — series, label, and its whole perturbation
    schedule — is identical whether the stream is realized in one pass
    ({!realize}) or regenerated index by index ({!sample}), and for any
    stream length that reaches it. The test battery pins both replay
    equalities. *)

(** How the class boundary moves at the change point. *)
type drift_kind =
  | Abrupt  (** every sample from [drift_at] on is relabeled *)
  | Gradual of int
      (** relabeling probability ramps linearly over the given number
          of samples after [drift_at] *)

type drift = {
  drift_at : int;  (** first affected stream index *)
  kind : drift_kind;
  shift : int;  (** labels rotate by [shift] mod n_classes *)
}

(** Perturbation knobs; rates are probabilities in [0, 1]. *)
type perturb = {
  burst_rate : float;  (** P(a sample carries one gaussian noise burst) *)
  burst_sigma : float;  (** burst noise sigma (added to the series) *)
  dropout_rate : float;  (** per-time-step sample-and-hold probability *)
  wander_amp : float;  (** baseline-wander amplitude *)
  wander_period : float;  (** wander period, in units of samples *)
}

val no_perturb : perturb

type t = private {
  dataset : string;
  n_samples : int;
  length : int;
  seed : int;
  drift : drift option;
  perturb : perturb;
}

val make :
  ?length:int ->
  ?drift:drift ->
  ?perturb:perturb ->
  dataset:string ->
  n_samples:int ->
  seed:int ->
  unit ->
  t
(** Validates every knob against the registry entry ([length] defaults
    to the paper's 64). @raise Invalid_argument on bad knobs,
    [Not_found] for unknown datasets. *)

(** What happened to one stream sample (the realized perturbation
    schedule, recorded so tests can count events exactly). *)
type event = {
  sample : int;
  burst : (int * int) option;  (** [(start, len)] of the noise burst *)
  dropped : int list;  (** time steps held by dropout, ascending *)
  drifted : bool;  (** label was rotated by the drift *)
}

type realized = {
  scenario : t;
  n_classes : int;
  x : float array array;  (** [n_samples] series of [length] points *)
  y : int array;  (** post-drift labels (what the world reports) *)
  clean_y : int array;  (** pre-drift labels *)
  events : event array;
}

val realize : t -> realized
(** Generate the whole stream. Also bumps the [stream.dropouts] /
    [stream.bursts] counters and emits one [stream.scenario] event
    when a sink is installed. *)

val sample : t -> int -> float array * int * int * event
(** [sample s i] regenerates stream sample [i] alone:
    [(series, label, clean_label, event)] — bit-identical to slot [i]
    of {!realize}. *)

val first_drift : realized -> int option
(** Index of the first drifted sample, if any. *)

val to_dataset : realized -> Pnc_data.Dataset.t
(** The stream as an offline dataset (post-drift labels) — the shared
    realization for the streaming-vs-offline parity tests. *)

val fingerprint : t -> string
(** Canonical text over every generation-affecting knob. *)
