(** Experiment scales.

    [Paper] follows Sec. IV-A3 exactly (10 seeds, patience 100,
    LR 0.1 → 1e-5) and takes hours; [Fast] reproduces every table and
    figure with a reduced budget in minutes and is the default of the
    benchmark harness; [Smoke] exists for tests. *)

type scale = Smoke | Fast | Paper

type t = {
  scale : scale;
  seeds : int list;
  top_k : int;  (** models kept per dataset (paper: top 3 of 10) *)
  train_base : Pnc_core.Train.config;  (** no-variation-aware budget *)
  train_va : Pnc_core.Train.config;  (** variation-aware budget *)
  aug_copies : int;  (** augmented copies mixed into train/valid/test *)
  eval_draws : int;  (** Monte-Carlo draws for accuracy under variation *)
  eval_level : float;  (** component variation at test time (0.1) *)
  dataset_n : int option;  (** override generated sample count *)
  datasets : string list;
  precision : Pnc_core.Batch.precision;
      (** activation tier for no-grad evaluation ([`Exact] default;
          [`Fast] is recorded in {!fingerprint}) *)
  corr : Pnc_core.Variation.corr option;
      (** correlated-variation spec for the [+NI] training variant and
          the correlated-robustness metric; [None] (the default at
          every scale) leaves all pre-existing fingerprints
          byte-identical — {!Experiments} then falls back to
          {!Pnc_core.Variation.default_corr} for the metric *)
}

val of_scale : scale -> t
val scale_of_string : string -> scale
(** Accepts "smoke" | "fast" | "paper". @raise Invalid_argument. *)

val scale_name : scale -> string

val fingerprint : t -> string
(** Canonical text over every field that affects one grid cell's
    computation (both train budgets including their variation specs,
    augmentation copies, evaluation draws/level, dataset sizing).
    Fields that only select or aggregate cells — seeds, dataset and
    variant lists, [top_k] — are excluded, so reshaping the grid reuses
    cached cells. The cell cache keys on the digest of this string.

    The precision tier appends ["|precision=fast"] only under [`Fast]:
    [`Exact] fingerprints are byte-identical to those produced before
    the tier existed, so old cached cells stay valid. The correlation
    spec and the noise-injection training flag follow the same
    append-only policy (["|corr(...)"], [";ni"]): absent, the strings
    are unchanged. *)

val corr_of_string : string -> Pnc_core.Variation.corr
(** Parses ["RHO,CLEN"] or ["RHO,CLEN,TEMP_C,AGE_HOURS"] (the
    ADAPT_PNC_CORR / --corr syntax). @raise Invalid_argument. *)

val from_env : unit -> t
(** Reads the ADAPT_PNC_SCALE environment variable (default fast), the
    ADAPT_PNC_PRECISION tier (via
    {!Pnc_core.Batch.resolve_precision}; default exact), and
    ADAPT_PNC_CORR (a {!corr_of_string} spec; default absent). *)
