(** One entry point per table / figure of the paper's evaluation
    (see DESIGN.md §3 for the experiment index).

    The heavy artifacts (Table I, Table III, Fig. 5, Fig. 7) share one
    training grid: every (dataset × variant × seed) combination is
    trained once and each artifact reads the slice it needs. *)

(** Training configuration variants of the ablation (Fig. 7), plus the
    reference RNN. [Base] is the no-variation-aware first-order pTPNC
    baseline; [Full] is VA + SO-LF + AT — the robustness-aware
    ADAPT-pNC of Table I. [Ni] is the Full configuration additionally
    trained through correlated perturbed realizations with
    straight-through gradients (noise injection; an extension beyond
    the paper). *)
type variant = Reference | Base | Va | At | So_lf | Full | Ni

val variant_name : variant -> string

val variant_tag : variant -> string
(** Stable lowercase identifier used in cache keys and checkpoint
    metadata (["reference"], ["base"], ["va"], ["at"], ["so_lf"],
    ["full"]). *)

val variant_of_tag : string -> variant option
(** Inverse of {!variant_tag}. *)

val table1_variants : variant list
(** [Reference; Base; Full]. *)

val fig7_variants : variant list
(** [Base; Va; At; So_lf; Full]. *)

val ablate_variants : variant list
(** [fig7_variants @ [Ni]] — the ladder printed by [adapt_pnc ablate];
    {!fig7_variants} itself is unchanged so the Fig. 7 artifact and its
    cached grids stay pinned. *)

val corr_of_cfg : Config.t -> Pnc_core.Variation.corr
(** The correlated operating point used by the [+NI] training spec and
    the [corr_var_acc] metric: [cfg.corr] when set, else
    {!Pnc_core.Variation.default_corr}. *)

type run = {
  dataset : string;
  variant : variant;
  seed : int;
  model : Pnc_core.Model.t;
  clean_acc : float;  (** original test set, no variation *)
  clean_var_acc : float;  (** original test set, ±10 % components *)
  aug_var_acc : float;  (** original+augmented test, ±10 % (Table I protocol) *)
  pert_var_acc : float;  (** perturbed test, ±10 % (Fig. 5/7 protocol) *)
  corr_var_acc : float;
      (** original test under spatially {e correlated} ±10 % variation
          at {!corr_of_cfg} (draw stream seed+7000, disjoint from every
          other protocol) *)
  train_seconds : float;
  epochs : int;
}

val train_run :
  ?batch_size:int ->
  ?pool:Pnc_util.Pool.t ->
  ?checkpoint_every:int ->
  ?checkpoint_path:string ->
  ?resume_from:string ->
  ?die_at_epoch:int ->
  Config.t ->
  dataset:string ->
  variant:variant ->
  seed:int ->
  run
(** Training itself stays on the (sequential) autodiff path; [pool]
    parallelizes the Monte-Carlo evaluation protocols with
    worker-count-invariant results, and [batch_size] chunks each
    evaluation on the batched no-grad path (neither changes any
    result, which is why neither enters {!Config.fingerprint}). The
    checkpoint arguments are passed through to
    {!Pnc_core.Train.train}. *)

val all_variants : variant list
(** [Reference :: fig7_variants] — the six-variant grid that feeds
    every artifact (Table I, Table III, Fig. 5, Fig. 7). *)

val grid_keys : Config.t -> variants:variant list -> (string * variant * int) list
(** The (dataset, variant, seed) cells of the grid in canonical order
    (dataset-major, then variant, then seed). {!run_grid} and the
    process-sharded {!Pnc_grid} orchestrator share this enumeration,
    which is why merged tables are independent of completion order and
    worker count. *)

val cell_path :
  dir:string -> Config.t -> dataset:string -> variant:variant -> seed:int -> string
(** Cache file for one grid cell: [dir/cell-<md5hex>.ckpt], where the
    digest covers {!Config.fingerprint} plus (dataset, variant, seed). *)

val save_cell : path:string -> Config.t -> run -> unit
(** Write one computed cell as a ["grid-cell"] checkpoint (model
    parameters + metrics + identity metadata), atomically. *)

val load_cell :
  path:string -> Config.t -> dataset:string -> variant:variant -> seed:int -> run option
(** [None] on any failure — missing file, corrupt or truncated bytes,
    kind/fingerprint/identity mismatch. A cell that does not load
    cleanly is recomputed, never trusted. When the file {e exists} but
    fails to load, a [grid.cell.stale] event is emitted and the
    [grid.stale_cells] counter is bumped, so interrupted cell writes
    are observable (surfaced as [stale] by [grid status]) instead of
    silently recomputed on the next full run. *)

val run_grid :
  ?progress:(string -> unit) ->
  ?batch_size:int ->
  ?pool:Pnc_util.Pool.t ->
  ?cache_dir:string ->
  Config.t ->
  variants:variant list ->
  run list
(** All datasets × variants × seeds of the config.

    With [cache_dir] (created if missing), every computed cell is
    written to {!cell_path} as a ["grid-cell"] checkpoint (model
    parameters + metrics) and subsequent runs load it back bit-identical
    instead of retraining — emitting a [grid.cell.cached] event. A
    missing, corrupt or stale entry (any decode error, or a fingerprint
    / dataset / variant / seed mismatch) is silently recomputed and
    rewritten, never trusted. *)

(** {1 Streaming protocol}

    The online workload family: a synthetic sensor stream
    ({!Pnc_stream.Scenario}) evaluated through sliding windows
    ({!Pnc_stream.Online}), with the frozen trained model as the
    ablation baseline and optional test-time adaptation. *)

type stream_run = {
  sr_run : run;  (** the trained cell the stream ran over *)
  sr_frozen : Pnc_stream.Online.result;  (** adaptation-off baseline *)
  sr_adapted : Pnc_stream.Online.result option;
      (** present iff the protocol asked for adaptation; computed on
          the {e same} trained weights (restored afterwards) and the
          same eval rng as the frozen run *)
}

val stream_fingerprint :
  Config.t -> scenario:Pnc_stream.Scenario.t -> protocol:Pnc_stream.Online.protocol -> string
(** Provenance key for one streaming result:
    {!Config.fingerprint} + scenario + protocol. Adaptation knobs are
    result-affecting and included; batch chunking and pool size are
    result-invariant and excluded (same policy as the grid cache). *)

val stream_run :
  ?batch_size:int ->
  ?pool:Pnc_util.Pool.t ->
  ?cache_dir:string ->
  Config.t ->
  scenario:Pnc_stream.Scenario.t ->
  protocol:Pnc_stream.Online.protocol ->
  variant:variant ->
  seed:int ->
  stream_run
(** Trains (or loads from the grid cell cache — same files, same keys
    as {!run_grid}) the (scenario dataset, variant, seed) cell, then
    streams the realized scenario over it: always the frozen baseline,
    plus the adapted pass when the protocol enables adaptation. The
    model keeps its trained weights on return. Circuits stream under
    ±[eval_level] component variation on one replayed physical
    instance; evaluation randomness comes from seed+6000, disjoint
    from every training/eval stream of {!train_run}. *)

val print_stream :
  scenario:Pnc_stream.Scenario.t ->
  protocol:Pnc_stream.Online.protocol ->
  stream_run ->
  unit
(** Accuracy-over-time table plus summary lines. Deliberately free of
    wall-clock columns: two runs of the same protocol print
    byte-identical output for any pool size / batch chunking, which the
    CI stream job checks with [cmp]. *)

(** {1 Artifacts} *)

type cell = { mean : float; std : float }

type table1_row = {
  t1_dataset : string;
  elman : cell;
  ptpnc : cell;
  adapt : cell;
}

val table1_of_grid : Config.t -> run list -> table1_row list
(** Per dataset: top-k seeds by clean accuracy, mean ± std of the
    augmented-test-under-variation accuracy — the paper's Table I
    protocol. The last row is the average across datasets. *)

val print_table1 : table1_row list -> unit

val table2 : ?progress:(string -> unit) -> Config.t -> (string * float) list
(** Mean seconds of one training epoch per model family, averaged over
    a sample of datasets (Table II). *)

val print_table2 : (string * float) list -> unit

type table3_row = {
  t3_dataset : string;
  base_counts : Pnc_core.Hardware.counts;
  base_power_mw : float;
  adapt_counts : Pnc_core.Hardware.counts;
  adapt_power_mw : float;
}

val table3_of_grid : Config.t -> run list -> table3_row list
(** Device counts and power of the trained Base and Full circuit models
    (best seed per dataset); last row holds the per-dataset average. *)

val print_table3 : table3_row list -> unit

type fig5 = {
  f5_clean : cell;  (** baseline accuracy, clean inputs, no variation *)
  f5_var : cell;  (** baseline under ±10 % variation *)
  f5_pert_var : cell;  (** baseline under variation + perturbed inputs *)
}

val fig5_of_grid : Config.t -> run list -> fig5
val print_fig5 : fig5 -> unit

type fig7_bar = { config_name : string; clean : cell; perturbed : cell }

val fig7_of_grid : Config.t -> run list -> fig7_bar list
(** Mean accuracy across datasets for each ablation configuration,
    clean and perturbed, both under ±10 % variation (Fig. 7). *)

val print_fig7 : fig7_bar list -> unit

(** {1 Extension: variation sweep / manufacturing yield}

    Beyond the paper's fixed ±10 % operating point: mean accuracy and
    manufacturing yield (fraction of printed instances meeting an
    accuracy spec) of the trained baseline and ADAPT-pNC circuits as
    the process-variation level grows. *)

type sweep_row = {
  level : float;
  base_acc : cell;
  adapt_acc : cell;
  base_yield : float;
  adapt_yield : float;
}

val variation_sweep_of_grid :
  ?levels:float list ->
  ?threshold:float ->
  ?batch_size:int ->
  ?pool:Pnc_util.Pool.t ->
  Config.t ->
  run list ->
  sweep_row list
(** Defaults: levels 0/5/10/20/30 %, yield threshold 0.6. [pool]
    parallelizes the per-level yield estimation. *)

val print_variation_sweep : threshold:float -> sweep_row list -> unit

val fig6 : ?seed:int -> unit -> (string * float array) list
(** The augmentation showcase on a PowerCons series: original plus each
    transform (Fig. 6). *)

val print_fig6 : (string * float array) list -> unit

val mu_survey : unit -> Pnc_core.Coupling.extraction list
val print_mu_survey : Pnc_core.Coupling.extraction list -> unit

val filter_characterization : unit -> unit
(** Fig. 4 side panels: SPICE-lite cutoffs of printable first- and
    second-order stages against filter theory. *)

(** {1 Paper-reported values} (for side-by-side comparison) *)

val paper_table1 : (string * float * float * float) list
(** dataset, Elman, pTPNC, ADAPT-pNC mean accuracies; last row is the
    average. *)

val paper_table3_avg : int * int * float * float
(** (pTPNC avg total devices, ADAPT avg total devices, pTPNC avg power
    mW, ADAPT avg power mW). *)
