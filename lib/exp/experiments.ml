module Rng = Pnc_util.Rng
module Stats = Pnc_util.Stats
module Table = Pnc_util.Table
module Dataset = Pnc_data.Dataset
module Registry = Pnc_data.Registry
module Augment = Pnc_augment.Augment
module Model = Pnc_core.Model
module Network = Pnc_core.Network
module Elman = Pnc_core.Elman
module Train = Pnc_core.Train
module Variation = Pnc_core.Variation
module Hardware = Pnc_core.Hardware
module Coupling = Pnc_core.Coupling
module Obs = Pnc_obs.Obs
module Json = Pnc_obs.Obs.Json
module Ckpt = Pnc_ckpt.Ckpt
module Persist = Pnc_core.Persist

type variant = Reference | Base | Va | At | So_lf | Full | Ni

let variant_name = function
  | Reference -> "Elman RNN"
  | Base -> "pTPNC (baseline)"
  | Va -> "VA"
  | At -> "AT"
  | So_lf -> "SO-LF"
  | Full -> "VA+SO-LF+AT"
  | Ni -> "+NI"

(* Stable lowercase tags for cache keys and checkpoint metadata (the
   display names above carry spaces and parentheses). *)
let variant_tag = function
  | Reference -> "reference"
  | Base -> "base"
  | Va -> "va"
  | At -> "at"
  | So_lf -> "so_lf"
  | Full -> "full"
  | Ni -> "ni"

let variant_of_tag = function
  | "reference" -> Some Reference
  | "base" -> Some Base
  | "va" -> Some Va
  | "at" -> Some At
  | "so_lf" -> Some So_lf
  | "full" -> Some Full
  | "ni" -> Some Ni
  | _ -> None

let table1_variants = [ Reference; Base; Full ]
let fig7_variants = [ Base; Va; At; So_lf; Full ]

(* The ablation CLI's variant set: the paper's Fig. 7 ladder plus the
   noise-injection-trained column. [fig7_variants] itself stays
   unchanged — the Fig. 7 artifact and its cached grids are pinned by
   tests. *)
let ablate_variants = fig7_variants @ [ Ni ]

(* The correlated operating point used by the [+NI] training spec and
   by the [corr_var_acc] metric: the config's spec when given, else the
   library default. *)
let corr_of_cfg cfg = Option.value cfg.Config.corr ~default:Variation.default_corr

type run = {
  dataset : string;
  variant : variant;
  seed : int;
  model : Model.t;
  clean_acc : float;
  clean_var_acc : float;
  aug_var_acc : float;
  pert_var_acc : float;
  corr_var_acc : float;
  train_seconds : float;
  epochs : int;
}

(* Architecture sizing: the baseline circuits of Table III carry roughly
   one filter channel per class in the hidden layer; the proposed design
   doubles the hidden width (the paper reports ~1.9x devices). *)
let base_hidden ~classes = Stdlib.max 2 classes
let adapt_hidden ~classes = Stdlib.min 8 (Stdlib.max 4 (2 * classes))

let uses_variation_aware = function Va | Full | Ni -> true | _ -> false
let uses_augmented_training = function At | Full | Ni -> true | _ -> false

let load_split cfg ~dataset ~seed =
  let raw = Registry.load ?n:cfg.Config.dataset_n ~seed dataset in
  (Dataset.preprocess (Rng.create ~seed:(seed + 1000)) raw, raw.Dataset.n_classes)

let build_model cfg ~variant ~classes ~seed =
  ignore cfg;
  let rng = Rng.create ~seed:(seed + 77) in
  match variant with
  | Reference -> Model.Reference (Elman.create rng ~inputs:1 ~classes)
  | Base | Va | At ->
      Model.Circuit
        (Network.create ~hidden:(base_hidden ~classes) rng Network.Ptpnc ~inputs:1 ~classes)
  | So_lf | Full | Ni ->
      Model.Circuit
        (Network.create ~hidden:(adapt_hidden ~classes) rng Network.Adapt ~inputs:1 ~classes)

let train_run ?batch_size ?pool ?checkpoint_every ?checkpoint_path ?resume_from ?die_at_epoch
    cfg ~dataset ~variant ~seed =
  let split, classes = load_split cfg ~dataset ~seed in
  let model = build_model cfg ~variant ~classes ~seed in
  let train_cfg =
    if uses_variation_aware variant then cfg.Config.train_va else cfg.Config.train_base
  in
  (* [Ni] is the Full architecture + training budget, trained through
     correlated perturbed realizations with straight-through gradients
     to the clean parameters (the noise-injection robust-training
     variant). Everything else about the run - splits, streams,
     evaluation - is identical to [Full]. *)
  let train_cfg =
    if variant = Ni then
      {
        train_cfg with
        Train.variation =
          { train_cfg.Train.variation with Variation.corr = Some (corr_of_cfg cfg) };
        noise_injection = true;
        antithetic = true;
      }
    else train_cfg
  in
  let split_for_training =
    if uses_augmented_training variant then begin
      let arng = Rng.create ~seed:(seed + 2000) in
      let aug d = Augment.augment_dataset arng Augment.default_policy ~copies:cfg.Config.aug_copies d in
      (* Augment the training split only: model selection must see the
         clean validation data, or the augmentation policy leaks into
         the eval protocol. *)
      { split with Dataset.train = aug split.Dataset.train }
    end
    else split
  in
  let rng = Rng.create ~seed:(seed + 3000) in
  let (history, dt) =
    Pnc_util.Timer.time (fun () ->
        Train.train ~rng ?checkpoint_every ?checkpoint_path ?resume_from ?die_at_epoch
          train_cfg model split_for_training)
  in
  (* Evaluation protocols. The circuit models are evaluated under +-10%
     component variation; the reference RNN has no physical components. *)
  let spec = Variation.uniform cfg.Config.eval_level in
  let erng = Rng.create ~seed:(seed + 4000) in
  let prng = Rng.create ~seed:(seed + 5000) in
  let test = split.Dataset.test in
  let aug_test =
    Dataset.concat test (Augment.perturb_dataset prng Augment.default_policy test)
  in
  let pert_test = Augment.perturb_dataset prng Augment.default_policy test in
  (* The configured tier flows into every no-grad evaluation below; a
     `Fast run keys its cells separately via the fingerprint. *)
  let precision = cfg.Config.precision in
  let under_variation d =
    if Model.is_circuit model then
      Train.accuracy_under_variation ?batch_size ~precision ?pool ~rng:erng ~spec
        ~draws:cfg.Config.eval_draws model d
    else Train.accuracy ?batch_size ~precision model d
  in
  (* Accuracy under spatially correlated variation (every variant gets
     the column, trained with NI or not). The draw stream comes from a
     fresh seed offset (+7000) so the pre-existing metrics keep
     consuming exactly the streams they always did. Correlated draws
     have higher estimator variance than i.i.d. ones (whole regions of
     the eps field move together), so this metric uses 4x the i.i.d.
     draw budget. *)
  let corr_var_acc =
    if Model.is_circuit model then
      let corr_spec =
        { (Variation.uniform cfg.Config.eval_level) with Variation.corr = Some (corr_of_cfg cfg) }
      in
      Train.accuracy_under_variation ?batch_size ~precision ?pool
        ~rng:(Rng.create ~seed:(seed + 7000))
        ~spec:corr_spec ~draws:(4 * cfg.Config.eval_draws) model test
    else Train.accuracy ?batch_size ~precision model test
  in
  {
    dataset;
    variant;
    seed;
    model;
    clean_acc = Train.accuracy ?batch_size ~precision model test;
    clean_var_acc = under_variation test;
    aug_var_acc = under_variation aug_test;
    pert_var_acc = under_variation pert_test;
    corr_var_acc;
    train_seconds = dt;
    epochs = history.Train.epochs_run;
  }

(* On-disk cell cache ---------------------------------------------------- *)

let cache_hits_counter = Obs.Counter.make "grid.cache_hits"
let stale_cells_counter = Obs.Counter.make "grid.stale_cells"

let all_variants = Reference :: fig7_variants

(* Canonical cell enumeration: dataset-major, then variant, then seed.
   run_grid and the process-sharded orchestrator (Pnc_grid) both walk
   this order, so merged tables never depend on which worker computed
   a cell or when it finished. *)
let grid_keys cfg ~variants =
  List.concat_map
    (fun dataset ->
      List.concat_map
        (fun variant -> List.map (fun seed -> (dataset, variant, seed)) cfg.Config.seeds)
        variants)
    cfg.Config.datasets

(* One file per (config fingerprint, dataset, variant, seed); reshaping
   the grid (seeds, datasets, variants) reuses cells, any change to a
   cell-affecting knob changes the digest. *)
let cell_digest cfg ~dataset ~variant ~seed =
  Digest.to_hex
    (Digest.string
       (String.concat "|"
          [ Config.fingerprint cfg; dataset; variant_tag variant; string_of_int seed ]))

let cell_path ~dir cfg ~dataset ~variant ~seed =
  Filename.concat dir ("cell-" ^ cell_digest cfg ~dataset ~variant ~seed ^ ".ckpt")

(* Adding a metric changes the F64 section length, which the decode
   length check below treats as stale: pre-existing cached cells are
   recomputed (never misread) the first time they are loaded. *)
let metric_names =
  [
    "clean_acc";
    "clean_var_acc";
    "aug_var_acc";
    "pert_var_acc";
    "corr_var_acc";
    "train_seconds";
    "epochs";
  ]

let save_cell ~path cfg (r : run) =
  let meta =
    Persist.model_meta r.model
    @ [
        ("dataset", Json.String r.dataset);
        ("variant", Json.String (variant_tag r.variant));
        ("seed", Json.Num (float_of_int r.seed));
        ("fingerprint", Json.String (Config.fingerprint cfg));
      ]
  in
  let metrics =
    [|
      r.clean_acc; r.clean_var_acc; r.aug_var_acc; r.pert_var_acc; r.corr_var_acc;
      r.train_seconds; float_of_int r.epochs;
    |]
  in
  Ckpt.save ~path ~kind:"grid-cell" ~meta
    ~sections:
      (Persist.param_sections r.model
      @ [ ("metrics", Ckpt.F64 { rows = 1; cols = List.length metric_names; data = metrics }) ])

(* [None] on any failure — a missing, corrupt or stale cache entry means
   the cell is recomputed (and rewritten), never trusted. *)
let decode_cell ~path cfg ~dataset ~variant ~seed =
  let ( let* ) o f = match o with Some v -> f v | None -> None in
  let* ck = match Ckpt.load ~path with Ok ck -> Some ck | Error _ -> None in
  let* () = if ck.Ckpt.kind = "grid-cell" then Some () else None in
  let check field expect =
    if Ckpt.meta_field ck field = Some (Json.String expect) then Some () else None
  in
  let* () = check "fingerprint" (Config.fingerprint cfg) in
  let* () = check "dataset" dataset in
  let* () = check "variant" (variant_tag variant) in
  let* () =
    if Ckpt.meta_field ck "seed" = Some (Json.Num (float_of_int seed)) then Some () else None
  in
  let* model = match Persist.model_of_meta ck.Ckpt.meta with Ok m -> Some m | Error _ -> None in
  let* () =
    match Persist.load_params_into model ck with Ok () -> Some () | Error _ -> None
  in
  let* m =
    match Ckpt.f64 ck "metrics" with
    | Ok m when Array.length m = List.length metric_names -> Some m
    | _ -> None
  in
  Some
    {
      dataset;
      variant;
      seed;
      model;
      clean_acc = m.(0);
      clean_var_acc = m.(1);
      aug_var_acc = m.(2);
      pert_var_acc = m.(3);
      corr_var_acc = m.(4);
      train_seconds = m.(5);
      epochs = int_of_float m.(6);
    }

(* A cell file that exists but does not decode — interrupted write,
   corruption, or a key mismatch — is surfaced (event + counter) so
   `grid status` can report it as stale instead of it hiding as
   "pending until the next full run". The decision is unchanged:
   recompute, never trust. *)
let load_cell ~path cfg ~dataset ~variant ~seed =
  let r = decode_cell ~path cfg ~dataset ~variant ~seed in
  if r = None && Sys.file_exists path then begin
    Obs.Counter.incr stale_cells_counter;
    if Obs.enabled () then
      Obs.emit "grid.cell.stale"
        [
          ("path", Obs.Str path);
          ("dataset", Obs.Str dataset);
          ("variant", Obs.Str (variant_tag variant));
          ("seed", Obs.Int seed);
        ]
  end;
  r

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ when Sys.is_directory dir -> ()
  end

let run_grid ?(progress = fun _ -> ()) ?batch_size ?pool ?cache_dir cfg ~variants =
  Obs.Span.with_ "grid" @@ fun () ->
  Option.iter mkdir_p cache_dir;
  List.map
    (fun (dataset, variant, seed) ->
      progress (Printf.sprintf "%s / %s / seed %d" dataset (variant_name variant) seed);
      let attrs =
        if Obs.enabled () then
          [
            ("dataset", Obs.Str dataset);
            ("variant", Obs.Str (variant_name variant));
            ("seed", Obs.Int seed);
          ]
        else []
      in
      Obs.Span.with_ ~attrs "grid.cell" @@ fun () ->
      let cached =
        match cache_dir with
        | None -> None
        | Some dir ->
            let path = cell_path ~dir cfg ~dataset ~variant ~seed in
            let r = load_cell ~path cfg ~dataset ~variant ~seed in
            if r <> None then begin
              Obs.Counter.incr cache_hits_counter;
              if Obs.enabled () then
                Obs.emit "grid.cell.cached"
                  [
                    ("path", Obs.Str path);
                    ("dataset", Obs.Str dataset);
                    ("variant", Obs.Str (variant_tag variant));
                    ("seed", Obs.Int seed);
                  ]
            end;
            r
      in
      match cached with
      | Some r -> r
      | None ->
          let r = train_run ?batch_size ?pool cfg ~dataset ~variant ~seed in
          (match cache_dir with
          | Some dir -> save_cell ~path:(cell_path ~dir cfg ~dataset ~variant ~seed) cfg r
          | None -> ());
          if Obs.enabled () then
            Obs.emit "grid.result"
              [
                ("dataset", Obs.Str dataset);
                ("variant", Obs.Str (variant_name variant));
                ("seed", Obs.Int seed);
                ("clean_acc", Obs.Float r.clean_acc);
                ("clean_var_acc", Obs.Float r.clean_var_acc);
                ("aug_var_acc", Obs.Float r.aug_var_acc);
                ("pert_var_acc", Obs.Float r.pert_var_acc);
                ("corr_var_acc", Obs.Float r.corr_var_acc);
                ("train_seconds", Obs.Float r.train_seconds);
                ("epochs", Obs.Int r.epochs);
              ];
          r)
    (grid_keys cfg ~variants)

(* Streaming protocol ----------------------------------------------------- *)

module Scenario = Pnc_stream.Scenario
module Online = Pnc_stream.Online

type stream_run = {
  sr_run : run;
  sr_frozen : Online.result;
  sr_adapted : Online.result option;
}

(* Adaptation knobs change the reported numbers, so they are part of the
   cache/provenance key; chunking (batch size) and pool size are
   result-invariant and deliberately absent — same policy as
   Config.fingerprint. *)
let stream_fingerprint cfg ~scenario ~protocol =
  String.concat "|"
    [ Config.fingerprint cfg; Scenario.fingerprint scenario; Online.fingerprint protocol ]

(* Train one grid cell, or reuse it from the same on-disk cell cache the
   grid harness keys by Config.fingerprint — a streaming run over an
   already-computed grid pays only the evaluation. *)
let trained_cell ?batch_size ?pool ?cache_dir cfg ~dataset ~variant ~seed =
  let path = Option.map (fun dir -> cell_path ~dir cfg ~dataset ~variant ~seed) cache_dir in
  let cached =
    match path with
    | None -> None
    | Some path -> load_cell ~path cfg ~dataset ~variant ~seed
  in
  match cached with
  | Some r -> r
  | None ->
      let r = train_run ?batch_size ?pool cfg ~dataset ~variant ~seed in
      Option.iter
        (fun path ->
          Option.iter mkdir_p cache_dir;
          save_cell ~path cfg r)
        path;
      r

let stream_run ?batch_size ?pool ?cache_dir cfg ~scenario ~protocol ~variant ~seed =
  Obs.Span.with_ "stream" @@ fun () ->
  let dataset = scenario.Scenario.dataset in
  let r = trained_cell ?batch_size ?pool ?cache_dir cfg ~dataset ~variant ~seed in
  let rz = Scenario.realize scenario in
  (* Same physical-instance policy as the offline protocols: circuits
     stream under ±eval_level component variation, the reference RNN
     has no components. seed+6000 keeps the streaming eval stream
     disjoint from the train/eval/perturb streams of train_run. *)
  let spec =
    if Model.is_circuit r.model && cfg.Config.eval_level > 0. then
      Some (Variation.uniform cfg.Config.eval_level)
    else None
  in
  let precision = cfg.Config.precision in
  let eval_rng () = Rng.create ~seed:(seed + 6000) in
  let snap = Online.snapshot_params r.model in
  let frozen =
    Online.eval ?batch_size ~precision ?pool ?spec ~rng:(eval_rng ())
      { protocol with Online.adapt = Online.Off }
      r.model rz
  in
  let adapted =
    if protocol.Online.adapt = Online.Off then None
    else begin
      let a =
        Online.eval ?batch_size ~precision ?spec ~rng:(eval_rng ()) protocol r.model rz
      in
      (* Leave the cell's trained weights untouched for any later
         consumer (the cache holds the un-adapted model). *)
      Online.restore_params r.model snap;
      Some a
    end
  in
  { sr_run = r; sr_frozen = frozen; sr_adapted = adapted }

(* Deterministic accuracy-over-time table: no wall-clock columns, so two
   runs of the same protocol print byte-identical tables whatever the
   pool size or batch chunking (the CI stream job cmp's them). *)
let print_stream ~scenario ~protocol sr =
  Printf.printf "Streaming: %s\n" (Scenario.fingerprint scenario);
  Printf.printf "Protocol:  %s\n" (Online.fingerprint protocol);
  Printf.printf "Model:     %s (seed %d, clean acc %.4f)\n"
    (variant_name sr.sr_run.variant) sr.sr_run.seed sr.sr_run.clean_acc;
  let adapted = sr.sr_adapted <> None in
  let t =
    Table.create
      ~header:
        ([ "Window"; "Samples"; "Frozen acc" ] @ if adapted then [ "Adapted acc" ] else [])
  in
  Array.iteri
    (fun i (p : Online.point) ->
      let mark =
        match sr.sr_frozen.Online.first_drift_window with
        | Some w when w = i -> " *drift"
        | _ -> ""
      in
      Table.add_row t
        ([
           Printf.sprintf "%d%s" p.Online.w mark;
           Printf.sprintf "%d..%d" p.Online.start (p.Online.start + p.Online.len - 1);
           Printf.sprintf "%.4f" p.Online.acc;
         ]
        @
        match sr.sr_adapted with
        | Some a -> [ Printf.sprintf "%.4f" a.Online.points.(i).Online.acc ]
        | None -> []))
    sr.sr_frozen.Online.points;
  Table.print t;
  let pp_opt_f = function Some a -> Printf.sprintf "%.4f" a | None -> "n/a" in
  let pp_opt_i = function Some i -> string_of_int i | None -> "none" in
  let line tag (r : Online.result) =
    Printf.printf
      "%s: overall %.4f | pre-drift %s | post-drift %s | detected at %s | latency %s\n" tag
      r.Online.overall_acc (pp_opt_f r.Online.pre_drift_acc) (pp_opt_f r.Online.post_drift_acc)
      (pp_opt_i r.Online.detected_at)
      (pp_opt_i r.Online.detect_latency)
  in
  line "frozen " sr.sr_frozen;
  Option.iter (line "adapted") sr.sr_adapted;
  print_newline ()

(* ---------------------------------------------------------------------- *)

type cell = { mean : float; std : float }

let cell_of xs = { mean = Stats.mean xs; std = Stats.std xs }

(* Paper protocol: keep the top-k seeds by clean test accuracy, report
   the evaluation metric across them. *)
let top_k_by_clean cfg runs =
  let sorted = List.sort (fun a b -> compare b.clean_acc a.clean_acc) runs in
  List.filteri (fun i _ -> i < cfg.Config.top_k) sorted

let slice runs ~dataset ~variant =
  List.filter (fun r -> r.dataset = dataset && r.variant = variant) runs

let metric_cell cfg runs ~dataset ~variant ~metric =
  let rs = top_k_by_clean cfg (slice runs ~dataset ~variant) in
  cell_of (Array.of_list (List.map metric rs))

type table1_row = { t1_dataset : string; elman : cell; ptpnc : cell; adapt : cell }

let table1_of_grid cfg runs =
  let metric r = r.aug_var_acc in
  let rows =
    List.map
      (fun dataset ->
        {
          t1_dataset = dataset;
          elman = metric_cell cfg runs ~dataset ~variant:Reference ~metric;
          ptpnc = metric_cell cfg runs ~dataset ~variant:Base ~metric;
          adapt = metric_cell cfg runs ~dataset ~variant:Full ~metric;
        })
      cfg.Config.datasets
  in
  let avg sel =
    {
      mean = Stats.mean (Array.of_list (List.map (fun r -> (sel r).mean) rows));
      std = Stats.mean (Array.of_list (List.map (fun r -> (sel r).std) rows));
    }
  in
  rows
  @ [
      {
        t1_dataset = "Average";
        elman = avg (fun r -> r.elman);
        ptpnc = avg (fun r -> r.ptpnc);
        adapt = avg (fun r -> r.adapt);
      };
    ]

let paper_table1 =
  [
    ("CBF", 0.683, 0.615, 0.877);
    ("DPTW", 0.507, 0.462, 0.700);
    ("FRT", 0.597, 0.514, 0.677);
    ("FST", 0.509, 0.540, 0.591);
    ("GPAS", 0.452, 0.564, 0.568);
    ("GPMVF", 0.637, 0.760, 0.900);
    ("GPOVY", 0.540, 0.881, 1.000);
    ("MPOAG", 0.560, 0.483, 0.654);
    ("MSRT", 0.261, 0.317, 0.531);
    ("PowerCons", 0.651, 0.797, 0.880);
    ("PPOC", 0.711, 0.664, 0.660);
    ("SRSCP2", 0.489, 0.519, 0.525);
    ("Slope", 0.559, 0.587, 0.765);
    ("SmoothS", 0.447, 0.653, 0.864);
    ("Symbols", 0.141, 0.369, 0.697);
    ("Average", 0.501, 0.582, 0.726);
  ]

let paper_row name =
  List.find_opt (fun (n, _, _, _) -> n = name) paper_table1

let print_table1 rows =
  print_endline "Table I - accuracy under +-10% variation on the augmented test set";
  print_endline "(paper-reported means in parentheses)";
  let t =
    Table.create
      ~header:[ "Dataset"; "Elman RNN (ref)"; "pTPNC (baseline)"; "ADAPT-pNC (ours)" ]
  in
  List.iter
    (fun r ->
      let paper = paper_row r.t1_dataset in
      let fmt cell paper_v =
        Printf.sprintf "%s%s"
          (Table.fmt_mean_std (cell.mean, cell.std))
          (match paper_v with Some v -> Printf.sprintf " (%.3f)" v | None -> "")
      in
      let p1, p2, p3 =
        match paper with
        | Some (_, a, b, c) -> (Some a, Some b, Some c)
        | None -> (None, None, None)
      in
      if r.t1_dataset = "Average" then Table.add_rule t;
      Table.add_row t
        [ r.t1_dataset; fmt r.elman p1; fmt r.ptpnc p2; fmt r.adapt p3 ])
    rows;
  Table.print t;
  print_newline ()

(* Table II ---------------------------------------------------------------- *)

let table2 ?(progress = fun _ -> ()) cfg =
  let sample_datasets =
    match cfg.Config.datasets with a :: b :: c :: _ -> [ a; b; c ] | l -> l
  in
  let time_variant variant =
    let times =
      List.map
        (fun dataset ->
          progress (Printf.sprintf "timing %s on %s" (variant_name variant) dataset);
          let split, classes = load_split cfg ~dataset ~seed:0 in
          let model = build_model cfg ~variant ~classes ~seed:0 in
          let train_cfg =
            if uses_variation_aware variant then cfg.Config.train_va else cfg.Config.train_base
          in
          Train.epoch_seconds train_cfg model split)
        sample_datasets
    in
    Stats.mean (Array.of_list times)
  in
  List.map (fun v -> (variant_name v, time_variant v)) table1_variants

let print_table2 rows =
  print_endline "Table II - runtime of one full-batch training epoch (mean)";
  print_endline
    "(paper reports total avg runtime: Elman 2.345 ms, pTPNC 0.230 s, ADAPT-pNC 2.537 s;";
  print_endline
    " the ordering Elman << pTPNC < ADAPT-pNC is the reproduced quantity)";
  let t = Table.create ~header:[ "Model"; "Epoch runtime" ] in
  List.iter (fun (name, s) -> Table.add_row t [ name; Pnc_util.Timer.fmt_seconds s ]) rows;
  Table.print t;
  print_newline ()

(* Table III ----------------------------------------------------------------- *)

type table3_row = {
  t3_dataset : string;
  base_counts : Hardware.counts;
  base_power_mw : float;
  adapt_counts : Hardware.counts;
  adapt_power_mw : float;
}

let best_circuit cfg runs ~dataset ~variant =
  match top_k_by_clean cfg (slice runs ~dataset ~variant) with
  | { model = Model.Circuit net; _ } :: _ -> net
  | _ -> failwith ("no circuit run for " ^ dataset)

let table3_of_grid cfg runs =
  let rows =
    List.map
      (fun dataset ->
        let base = best_circuit cfg runs ~dataset ~variant:Base in
        let adapt = best_circuit cfg runs ~dataset ~variant:Full in
        {
          t3_dataset = dataset;
          base_counts = Hardware.of_network base;
          base_power_mw = Hardware.power_mw base;
          adapt_counts = Hardware.of_network adapt;
          adapt_power_mw = Hardware.power_mw adapt;
        })
      cfg.Config.datasets
  in
  let n = float_of_int (List.length rows) in
  let avg_count sel =
    let s = List.fold_left (fun acc r -> acc + sel r) 0 rows in
    int_of_float (Float.round (float_of_int s /. n))
  in
  let avg_f sel = List.fold_left (fun acc r -> acc +. sel r) 0. rows /. n in
  rows
  @ [
      {
        t3_dataset = "Average";
        base_counts =
          {
            Hardware.transistors = avg_count (fun r -> r.base_counts.Hardware.transistors);
            resistors = avg_count (fun r -> r.base_counts.Hardware.resistors);
            capacitors = avg_count (fun r -> r.base_counts.Hardware.capacitors);
          };
        base_power_mw = avg_f (fun r -> r.base_power_mw);
        adapt_counts =
          {
            Hardware.transistors = avg_count (fun r -> r.adapt_counts.Hardware.transistors);
            resistors = avg_count (fun r -> r.adapt_counts.Hardware.resistors);
            capacitors = avg_count (fun r -> r.adapt_counts.Hardware.capacitors);
          };
        adapt_power_mw = avg_f (fun r -> r.adapt_power_mw);
      };
    ]

let paper_table3_avg = (118, 228, 0.634, 0.058)

let print_table3 rows =
  print_endline "Table III - hardware cost: baseline pTPNC vs ADAPT-pNC";
  let t =
    Table.create
      ~header:
        [ "Dataset"; "#T b/p"; "#R b/p"; "#C b/p"; "#Total b/p"; "Power mW b/p" ]
  in
  List.iter
    (fun r ->
      if r.t3_dataset = "Average" then Table.add_rule t;
      Table.add_row t
        [
          r.t3_dataset;
          Printf.sprintf "%d/%d" r.base_counts.Hardware.transistors
            r.adapt_counts.Hardware.transistors;
          Printf.sprintf "%d/%d" r.base_counts.Hardware.resistors
            r.adapt_counts.Hardware.resistors;
          Printf.sprintf "%d/%d" r.base_counts.Hardware.capacitors
            r.adapt_counts.Hardware.capacitors;
          Printf.sprintf "%d/%d"
            (Hardware.total r.base_counts)
            (Hardware.total r.adapt_counts);
          Printf.sprintf "%.3f/%.3f" r.base_power_mw r.adapt_power_mw;
        ])
    rows;
  Table.print t;
  (match List.rev rows with
  | avg :: _ ->
      let pb, pp, wb, wp = paper_table3_avg in
      Printf.printf
        "ours: devices x%.2f, power %.0f%% saving | paper: devices x%.2f (%d->%d), power %.0f%% saving (%.3f->%.3f mW)\n\n"
        (float_of_int (Hardware.total avg.adapt_counts)
        /. float_of_int (Hardware.total avg.base_counts))
        (100. *. (1. -. (avg.adapt_power_mw /. avg.base_power_mw)))
        (float_of_int pp /. float_of_int pb)
        pb pp
        (100. *. (1. -. (wp /. wb)))
        wb wp
  | [] -> ())

(* Fig 5 ----------------------------------------------------------------------- *)

type fig5 = { f5_clean : cell; f5_var : cell; f5_pert_var : cell }

let fig5_of_grid cfg runs =
  let base = List.filter (fun r -> r.variant = Base) runs in
  let selected =
    List.concat_map (fun d -> top_k_by_clean cfg (slice base ~dataset:d ~variant:Base))
      cfg.Config.datasets
  in
  let arr metric = Array.of_list (List.map metric selected) in
  {
    f5_clean = cell_of (arr (fun r -> r.clean_acc));
    f5_var = cell_of (arr (fun r -> r.clean_var_acc));
    f5_pert_var = cell_of (arr (fun r -> r.pert_var_acc));
  }

let print_fig5 f =
  print_endline "Fig. 5 - no-variation-aware baseline degrades under variation";
  let t = Table.create ~header:[ "Condition"; "Accuracy (mean ± std)" ] in
  Table.add_row t [ "clean inputs, nominal components"; Table.fmt_mean_std (f.f5_clean.mean, f.f5_clean.std) ];
  Table.add_row t [ "clean inputs, ±10% components"; Table.fmt_mean_std (f.f5_var.mean, f.f5_var.std) ];
  Table.add_row t [ "perturbed inputs, ±10% components"; Table.fmt_mean_std (f.f5_pert_var.mean, f.f5_pert_var.std) ];
  Table.print t;
  print_newline ()

(* Fig 7 ----------------------------------------------------------------------- *)

type fig7_bar = { config_name : string; clean : cell; perturbed : cell }

let fig7_of_grid cfg runs =
  List.map
    (fun variant ->
      let selected =
        List.concat_map
          (fun d -> top_k_by_clean cfg (slice runs ~dataset:d ~variant))
          cfg.Config.datasets
      in
      let arr metric = Array.of_list (List.map metric selected) in
      {
        config_name = variant_name variant;
        clean = cell_of (arr (fun r -> r.clean_var_acc));
        perturbed = cell_of (arr (fun r -> r.pert_var_acc));
      })
    fig7_variants

let print_fig7 bars =
  print_endline "Fig. 7 - ablation under ±10% variation (mean across datasets)";
  let t = Table.create ~header:[ "Configuration"; "Clean data"; "Perturbed data" ] in
  List.iter
    (fun b ->
      Table.add_row t
        [
          b.config_name;
          Table.fmt_mean_std (b.clean.mean, b.clean.std);
          Table.fmt_mean_std (b.perturbed.mean, b.perturbed.std);
        ])
    bars;
  Table.print t;
  (match (bars, List.rev bars) with
  | base :: _, full :: _ ->
      Printf.printf
        "improvement over baseline: clean %+.1f%%, perturbed %+.1f%% (paper: +23.7%% / +24.4%%)\n\n"
        (100. *. (full.clean.mean -. base.clean.mean))
        (100. *. (full.perturbed.mean -. base.perturbed.mean))
  | _ -> ())

(* Variation sweep / yield (ablation beyond the paper's fixed 10%) ------------- *)

type sweep_row = {
  level : float;
  base_acc : cell;
  adapt_acc : cell;
  base_yield : float;
  adapt_yield : float;
}

let variation_sweep_of_grid ?(levels = [ 0.; 0.05; 0.1; 0.2; 0.3 ]) ?(threshold = 0.6)
    ?batch_size ?pool cfg runs =
  let module Yield = Pnc_core.Yield in
  let eval_variant variant level =
    let accs, yields =
      List.split
        (List.map
           (fun dataset ->
             match top_k_by_clean cfg (slice runs ~dataset ~variant) with
             | best :: _ ->
                 let split, _ = load_split cfg ~dataset ~seed:best.seed in
                 let r =
                   Yield.estimate ?batch_size ?pool
                     ~rng:(Rng.create ~seed:4242)
                     ~spec:(if level = 0. then Variation.none else Variation.uniform level)
                     ~threshold
                     ~draws:(if level = 0. then 1 else cfg.Config.eval_draws)
                     best.model split.Dataset.test
                 in
                 (r.Yield.mean_acc, r.Yield.yield)
             | [] -> (0., 0.))
           cfg.Config.datasets)
    in
    (cell_of (Array.of_list accs), Stats.mean (Array.of_list yields))
  in
  List.map
    (fun level ->
      let base_acc, base_yield = eval_variant Base level in
      let adapt_acc, adapt_yield = eval_variant Full level in
      { level; base_acc; adapt_acc; base_yield; adapt_yield })
    levels

let print_variation_sweep ~threshold rows =
  Printf.printf
    "Variation sweep (ablation): accuracy and yield (acc >= %.2f) vs process variation\n"
    threshold;
  let t =
    Table.create
      ~header:
        [ "Level"; "pTPNC acc"; "ADAPT acc"; "pTPNC yield"; "ADAPT yield" ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          Printf.sprintf "±%.0f%%" (100. *. r.level);
          Table.fmt_mean_std (r.base_acc.mean, r.base_acc.std);
          Table.fmt_mean_std (r.adapt_acc.mean, r.adapt_acc.std);
          Printf.sprintf "%.0f%%" (100. *. r.base_yield);
          Printf.sprintf "%.0f%%" (100. *. r.adapt_yield);
        ])
    rows;
  Table.print t;
  print_newline ()

(* Fig 6 ----------------------------------------------------------------------- *)

let fig6 ?(seed = 0) () =
  let raw = Registry.load ~seed "PowerCons" in
  let split = Dataset.preprocess (Rng.create ~seed:(seed + 1)) raw in
  let series = split.Dataset.train.Dataset.x.(0) in
  let rng = Rng.create ~seed:(seed + 2) in
  ("original", series)
  :: List.map
       (fun tr -> (Augment.describe tr, Augment.apply_transform rng tr series))
       Augment.default_policy.Augment.transforms

let sparkline series =
  let blocks = [| "_"; "."; ":"; "-"; "="; "+"; "*"; "#" |] in
  let lo = Pnc_util.Vec.min series and hi = Pnc_util.Vec.max series in
  let span = Float.max 1e-9 (hi -. lo) in
  String.concat ""
    (Array.to_list
       (Array.map
          (fun v ->
            let i = int_of_float ((v -. lo) /. span *. 7.99) in
            blocks.(Stdlib.max 0 (Stdlib.min 7 i)))
          series))

let print_fig6 entries =
  print_endline "Fig. 6 - augmentation techniques on a PowerCons series";
  List.iter
    (fun (name, series) -> Printf.printf "%-24s %s\n" name (sparkline series))
    entries;
  print_newline ()

(* mu survey and filter characterization --------------------------------------- *)

let mu_survey () = Coupling.survey ()

let print_mu_survey xs =
  print_endline "Coupling factor extraction (SPICE-lite, Sec. III-2)";
  let t = Table.create ~header:[ "R (ohm)"; "C (F)"; "R_load (ohm)"; "mu (fit)"; "mu (theory)"; "fit rms" ] in
  List.iter
    (fun e ->
      Table.add_row t
        [
          Printf.sprintf "%.0f" e.Coupling.r;
          Printf.sprintf "%.0e" e.Coupling.c;
          Printf.sprintf "%.0f" e.Coupling.r_load;
          Printf.sprintf "%.3f" e.Coupling.mu;
          Printf.sprintf "%.3f" (Coupling.mu_theory ~c:e.Coupling.c ~r_load:e.Coupling.r_load);
          Printf.sprintf "%.4f" e.Coupling.fit_rms;
        ])
    xs;
  Table.print t;
  let lo, hi = Coupling.mu_range xs in
  Printf.printf "mu range: [%.3f, %.3f] (paper: [1.0, 1.3])\n\n" lo hi

let filter_characterization () =
  print_endline "Fig. 4 side panels - printed filter characterization (SPICE-lite vs theory)";
  let module Circuit = Pnc_spice.Circuit in
  let module Ac = Pnc_spice.Ac in
  let module Filter = Pnc_signal.Filter in
  let t =
    Table.create
      ~header:[ "Stage"; "R (ohm)"; "C (F)"; "fc SPICE (Hz)"; "fc theory (Hz)" ]
  in
  List.iter
    (fun (r, c) ->
      (* first-order *)
      let circ = Circuit.create () in
      let vin = Circuit.node circ "in" and out = Circuit.node circ "out" in
      Circuit.vsource circ ~ac:1. vin Circuit.ground 0.;
      Circuit.resistor circ vin out r;
      Circuit.capacitor circ out Circuit.ground c;
      let fc = Ac.cutoff_hz circ ~probe:out in
      Table.add_row t
        [
          "1st order";
          Printf.sprintf "%.0f" r;
          Printf.sprintf "%.0e" c;
          Printf.sprintf "%.2f" fc;
          Printf.sprintf "%.2f" (Filter.cutoff_hz { Filter.r; c });
        ];
      (* second-order cascade (loaded) *)
      let circ2 = Circuit.create () in
      let vin = Circuit.node circ2 "in" in
      let m = Circuit.node circ2 "m" and out2 = Circuit.node circ2 "out" in
      Circuit.vsource circ2 ~ac:1. vin Circuit.ground 0.;
      Circuit.resistor circ2 vin m r;
      Circuit.capacitor circ2 m Circuit.ground c;
      Circuit.resistor circ2 m out2 r;
      Circuit.capacitor circ2 out2 Circuit.ground c;
      let fc2 = Ac.cutoff_hz circ2 ~probe:out2 in
      let ideal =
        Filter.cutoff_2nd_hz { Filter.stage1 = { Filter.r; c }; stage2 = { Filter.r; c } }
      in
      Table.add_row t
        [
          "2nd order";
          Printf.sprintf "%.0f" r;
          Printf.sprintf "%.0e" c;
          Printf.sprintf "%.2f" fc2;
          Printf.sprintf "%.2f (ideal)" ideal;
        ])
    [ (330., 1e-5); (1000., 1e-5); (1000., 1e-4) ];
  Table.print t;
  print_newline ()
