module Train = Pnc_core.Train
module Variation = Pnc_core.Variation

type scale = Smoke | Fast | Paper

type t = {
  scale : scale;
  seeds : int list;
  top_k : int;
  train_base : Train.config;
  train_va : Train.config;
  aug_copies : int;
  eval_draws : int;
  eval_level : float;
  dataset_n : int option;
  datasets : string list;
  precision : Pnc_core.Batch.precision;
  corr : Variation.corr option;
}

let all_datasets = Pnc_data.Registry.names

let of_scale scale =
  match scale with
  | Smoke ->
      {
        scale;
        seeds = [ 0 ];
        top_k = 1;
        train_base = { Train.smoke_config with variation = Variation.none; mc_samples = 1 };
        train_va = Train.smoke_config;
        aug_copies = 1;
        eval_draws = 3;
        eval_level = 0.1;
        dataset_n = Some 60;
        datasets = [ "GPOVY"; "PowerCons" ];
        precision = `Exact;
        corr = None;
      }
  | Fast ->
      {
        scale;
        seeds = [ 0; 1; 2 ];
        top_k = 2;
        train_base =
          {
            Train.fast_config with
            variation = Variation.none;
            mc_samples = 1;
            max_epochs = 350;
            patience = 15;
          };
        train_va = { Train.fast_config with max_epochs = 450; patience = 18 };
        aug_copies = 1;
        eval_draws = 5;
        eval_level = 0.1;
        dataset_n = Some 200;
        datasets = all_datasets;
        precision = `Exact;
        corr = None;
      }
  | Paper ->
      {
        scale;
        seeds = List.init 10 Fun.id;
        top_k = 3;
        train_base = { Train.paper_config with variation = Variation.none; mc_samples = 1 };
        train_va = Train.paper_config;
        aug_copies = 1;
        eval_draws = 10;
        eval_level = 0.1;
        dataset_n = None;
        datasets = all_datasets;
        precision = `Exact;
        corr = None;
      }

(* Canonical text over every field that affects the computation of one
   grid cell (a dataset x variant x seed training run). Seeds, dataset
   and variant lists, and [top_k] are deliberately excluded: they select
   which cells run and how results aggregate, so changing them must not
   invalidate cached cells. Floats are rendered %.17g (exact). *)

let corr_fingerprint (c : Variation.corr) =
  Printf.sprintf "corr(%.17g,%.17g%s)" c.Variation.rho c.Variation.clen
    (match c.Variation.drift with
    | None -> ""
    | Some d -> Printf.sprintf ",drift(%.17g,%.17g)" d.Variation.temp_c d.Variation.age_hours)

let variation_fingerprint (v : Variation.spec) =
  let dist =
    match v.Variation.dist with
    | Variation.Uniform -> "uniform"
    | Variation.Gaussian -> "gaussian"
    | Variation.Gmm { w1; m1; s1; m2; s2 } ->
        Printf.sprintf "gmm(%.17g,%.17g,%.17g,%.17g,%.17g)" w1 m1 s1 m2 s2
  in
  let base = Printf.sprintf "%s@%.17g" dist v.Variation.level in
  (* Appended only when a correlation spec is attached, so every spec
     ever fingerprinted before the correlated model existed — all
     [corr = None] by construction — keeps its exact byte string
     (the same policy as the precision suffix below). *)
  match v.Variation.corr with None -> base | Some c -> base ^ ";" ^ corr_fingerprint c

let train_fingerprint (c : Train.config) =
  let base =
    Printf.sprintf
      "lr=%.17g;lr_factor=%.17g;patience=%d;min_lr=%.17g;max_epochs=%d;mc=%d;mc_val=%d;var=%s;clip=%s;wd=%.17g"
      c.Train.lr c.Train.lr_factor c.Train.patience c.Train.min_lr c.Train.max_epochs
      c.Train.mc_samples c.Train.mc_samples_val
      (variation_fingerprint c.Train.variation)
      (match c.Train.grad_clip with None -> "none" | Some g -> Printf.sprintf "%.17g" g)
      c.Train.weight_decay
  in
  (* Same append-only policy: noise injection and antithetic pairing
     change the gradients, so they must key separately, but the flags'
     absence must not disturb pre-existing fingerprints. *)
  let base = if c.Train.noise_injection then base ^ ";ni" else base in
  if c.Train.antithetic then base ^ ";anti" else base

let fingerprint t =
  let base =
    Printf.sprintf
      "cell-v1|base{%s}|va{%s}|aug_copies=%d;eval_draws=%d;eval_level=%.17g;dataset_n=%s"
      (train_fingerprint t.train_base) (train_fingerprint t.train_va) t.aug_copies
      t.eval_draws t.eval_level
      (match t.dataset_n with None -> "default" | Some n -> string_of_int n)
  in
  (* Appended only under `Fast so every fingerprint ever produced before
     the precision tier existed — all `Exact by construction — keeps its
     exact byte string, and cached grid cells stay valid. `Fast results
     can differ (≤1e-7 per tanh), so they must key separately. *)
  let base =
    match t.precision with `Exact -> base | `Fast -> base ^ "|precision=fast"
  in
  (* Grid-level correlation spec (the +NI training spec and the
     corr_var_acc operating point), append-only like the precision
     suffix. *)
  match t.corr with None -> base | Some c -> base ^ "|" ^ corr_fingerprint c

let scale_of_string = function
  | "smoke" -> Smoke
  | "fast" -> Fast
  | "paper" -> Paper
  | s -> invalid_arg ("unknown scale: " ^ s ^ " (expected smoke|fast|paper)")

let scale_name = function Smoke -> "smoke" | Fast -> "fast" | Paper -> "paper"

let corr_of_string s =
  match String.split_on_char ',' s |> List.map String.trim with
  | [ rho; clen ] ->
      { Variation.rho = float_of_string rho; clen = float_of_string clen; drift = None }
  | [ rho; clen; temp_c; age_hours ] ->
      {
        Variation.rho = float_of_string rho;
        clen = float_of_string clen;
        drift =
          Some
            {
              Variation.temp_c = float_of_string temp_c;
              age_hours = float_of_string age_hours;
            };
      }
  | _ ->
      invalid_arg
        ("bad corr spec: " ^ s ^ " (expected RHO,CLEN or RHO,CLEN,TEMP_C,AGE_HOURS)")

let from_env () =
  let cfg =
    match Sys.getenv_opt "ADAPT_PNC_SCALE" with
    | Some s -> of_scale (scale_of_string s)
    | None -> of_scale Fast
  in
  (* Entry-point resolution of the precision tier (see Batch): the
     environment is consulted here, never inside library defaults, so a
     Fast run always flows through a Config that fingerprints it. The
     correlation spec follows the same rule (ADAPT_PNC_CORR; absent by
     default so all pre-existing fingerprints are untouched). *)
  let corr =
    match Sys.getenv_opt "ADAPT_PNC_CORR" with
    | None -> cfg.corr
    | Some s -> Some (corr_of_string s)
  in
  { cfg with precision = Pnc_core.Batch.resolve_precision (); corr }
