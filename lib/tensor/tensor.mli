(** Dense row-major 2-D tensors.

    Everything in the library is expressed over matrices: a batch of
    time-series samples at one time step is [batch x features], a
    parameter vector is [1 x n], a scalar is [1 x 1]. Keeping a single
    rank makes the reverse-mode engine ({!Pnc_autodiff.Var}) small and
    easy to verify. *)

type buffer = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t
(** Flat element storage: a C-layout float64 Bigarray. Same IEEE-754
    doubles as the previous [float array] backing (results are
    bit-identical), but addressable from C stubs without copying and
    outside the OCaml heap (no GC scanning of element data). *)

type t = private { rows : int; cols : int; off : int; data : buffer }
(** [data.{off + r * cols + c}] stores element [(r, c)]. The type is
    private: construct through the functions below so the view invariant
    [off + rows * cols <= Bigarray.Array1.dim data] always holds.
    Allocating constructors produce [off = 0] tensors whose buffer is
    exactly [rows * cols]; {!rows_view} produces contiguous views
    ([off > 0] possible) that share the buffer {e value} of the viewed
    tensor — never an [Array1.sub] proxy — so physical equality on
    [data] remains a sound aliasing test for the kernels. *)

val create : rows:int -> cols:int -> float -> t
val zeros : rows:int -> cols:int -> t
val scalar : float -> t
(** A [1 x 1] tensor. *)

val of_array : rows:int -> cols:int -> float array -> t
(** Copies the array (the result never aliases the caller's buffer);
    length must be [rows*cols]. *)

val of_row : float array -> t
(** [1 x n] row vector (copies). *)

val of_rows : float array array -> t
(** Matrix from equal-length rows (copies). *)

val init : rows:int -> cols:int -> (int -> int -> float) -> t

val rows : t -> int
val cols : t -> int
val numel : t -> int
val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit
val copy : t -> t
val to_row_array : t -> float array
(** Flat copy of the data (row-major). *)

val row : t -> int -> float array
(** Copy of one row. *)

val col : t -> int -> t
(** Column [c] as an [rows x 1] tensor (copies). *)

val rows_view : t -> row:int -> len:int -> t
(** [rows_view t ~row ~len] is the [len x cols t] block of consecutive
    rows starting at [row], sharing [t]'s buffer — no copy; writes
    through the view are visible in [t] and vice versa. Raises
    [Invalid_argument] when the row range falls outside [t]. This is
    the batch-chunking primitive of the no-grad evaluation path (see
    docs/BATCHING.md). *)

val blit_into : dst:t -> t -> unit
(** [blit_into ~dst src] copies the elements of [src] into [dst];
    equal shapes. Views allowed on both sides. *)

val get_scalar : t -> float
(** The single element of a [1 x 1] tensor. *)

val same_shape : t -> t -> bool

(** {1 Elementwise} *)

val map : (float -> float) -> t -> t
val map2 : (float -> float -> float) -> t -> t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val neg : t -> t
val scale : float -> t -> t
val add_scalar : float -> t -> t
val fill : t -> float -> unit
val add_inplace : t -> t -> unit
(** [add_inplace acc x] accumulates [x] into [acc]; equal shapes. *)

(** {1 Broadcast over rows}

    The second operand is a [1 x n] row vector combined with every row
    of an [m x n] matrix — used for biases and per-feature
    coefficients. *)

val add_rv : t -> t -> t
val mul_rv : t -> t -> t

val add_rv_inplace : t -> t -> unit
val mul_rv_inplace : t -> t -> unit
(** In-place variants mutating the matrix operand — allocation-free
    kernels for the no-grad evaluation path. *)

val add_mul_rv_inplace : t -> add:t -> mul:t -> unit
(** [add_mul_rv_inplace m ~add ~mul] replaces each element [m.(r).(c)]
    with [(m.(r).(c) +. add.(0).(c)) *. mul.(0).(c)] — the same
    per-element expression as {!add_rv_inplace} followed by
    {!mul_rv_inplace}, fused into one memory pass (the crossbar's
    bias-plus-normalization step). *)

val affine_rv_into : dst:t -> t -> t -> t -> t -> unit
(** [affine_rv_into ~dst s a x b] writes [s ∘ a + x ∘ b] into [dst]
    ([s], [x], [dst] matrices of one shape; [a], [b] row vectors).
    [dst] may alias [s] — the filter state update runs in place. *)

(** {1 Linear algebra} *)

val matmul : t -> t -> t

val matmul_into : dst:t -> t -> t -> unit
(** [matmul_into ~dst a b] overwrites [dst] with [a × b] (zero-fills
    first). The kernel is cache-blocked over rows and the inner
    dimension, with k-tiles visited in ascending order so each output
    element accumulates in the same order as the naive triple loop —
    bit-identical results at any shape. Raises [Invalid_argument] when
    [dst] shares a buffer with [a] or [b] (the kernel zero-fills [dst]
    before reading the inputs, so aliasing would silently corrupt
    them). *)

val transpose : t -> t

(** {1 Reductions} *)

val sum : t -> float
val mean : t -> float
val sum_rows : t -> t
(** [m x n -> 1 x n]: column sums. *)

val sum_cols : t -> t
(** [m x n -> m x 1]: row sums. *)

val max_abs : t -> float

(** {1 Construction helpers} *)

val uniform : Pnc_util.Rng.t -> rows:int -> cols:int -> lo:float -> hi:float -> t
val gaussian : Pnc_util.Rng.t -> rows:int -> cols:int -> mu:float -> sigma:float -> t
val one_hot : n_classes:int -> int array -> t
(** [batch x n_classes] indicator matrix. *)

val argmax_rows : t -> int array

val equal_eps : eps:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit
