(** Bounded fast math for the opt-in [`Fast] precision tier.

    {!tanh} is a vectorizable rational approximation with a proven
    absolute error bound, used by the batched no-grad kernels when the
    caller explicitly selects [~precision:`Fast] (see docs/BATCHING.md).
    The default everywhere remains [Stdlib.tanh] — results under
    [`Exact] are bit-identical to the autodiff path. *)

val tanh : float -> float
(** [tanh x] with [|tanh x - Stdlib.tanh x| <= 1e-7] for every finite
    [x] (fuzzed by test/test_fasttanh.ml). Structural guarantees beyond
    the bound: odd bit-for-bit ([tanh (-x) = -. tanh x]), monotone
    non-decreasing, signed zeros preserved, exactly [+-1.0] for
    [|x| >= cutoff] (including infinities), NaN propagates.

    Construction: [s = x * P(x*x)] with [P] the degree-7 truncated
    Taylor series of [sinh (sqrt u) / sqrt u] (all coefficients
    positive, hence monotone by construction), then the exact identity
    [tanh = sinh / sqrt (1 + sinh^2)]; the tail is clamped where
    [1 - tanh x] drops below the bound. Marked [@inline always] so
    same-unit callers get an unboxed body; cross-module scalar calls
    box their floats — hot loops should use {!apply_range}. *)

val cutoff : float
(** Saturation threshold (8.5): [|x| >= cutoff] returns exactly
    [copysign 1. x]. At the cutoff [1 - Stdlib.tanh cutoff ~ 8.28e-8],
    which is the binding term of the error bound. *)

val max_abs_error : float
(** The proven bound, [1e-7]. *)

type buffer = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t
(** Same flat storage type as {!Tensor.buffer}. *)

val apply_range : buffer -> off:int -> len:int -> unit
(** [apply_range d ~off ~len] replaces [d.{i}] with [tanh d.{i}] for
    [i] in [off .. off+len-1], bit-identical to the scalar {!tanh}
    (fuzzed by the battery). The loop lives inside this module, so the
    elements stay unboxed whatever the caller's compilation mode — this
    is the entry point the fused no-grad kernels use, one call per row
    block. *)
