(* Storage is a flat Bigarray (float64, C layout) rather than an OCaml
   [float array]: kernels address elements through unsafe flat access
   exactly as before (IEEE doubles either way, so results are
   bit-identical), and the buffer is shareable with C stubs later
   without copying. Views ([rows_view]) keep sharing the *same* buffer
   value — never an [Array1.sub] proxy — so physical equality on
   [data] remains a sound aliasing test. *)

module A = Bigarray.Array1

type buffer = (float, Bigarray.float64_elt, Bigarray.c_layout) A.t

type t = { rows : int; cols : int; off : int; data : buffer }

let alloc n : buffer = A.create Bigarray.float64 Bigarray.c_layout n

(* Partial fill of a flat range. [A.fill] only covers whole arrays, and
   an [A.sub] proxy per call would allocate on the hot path. *)
let fill_range (d : buffer) off len v =
  for i = off to off + len - 1 do
    A.unsafe_set d i v
  done

let idx t r c = t.off + (r * t.cols) + c

let create ~rows ~cols v =
  assert (rows >= 0 && cols >= 0);
  let data = alloc (rows * cols) in
  fill_range data 0 (rows * cols) v;
  { rows; cols; off = 0; data }

let zeros ~rows ~cols = create ~rows ~cols 0.

let scalar v =
  let data = alloc 1 in
  A.unsafe_set data 0 v;
  { rows = 1; cols = 1; off = 0; data }

let of_array ~rows ~cols src =
  assert (Array.length src = rows * cols);
  let data = alloc (rows * cols) in
  Array.iteri (fun i x -> A.unsafe_set data i x) src;
  { rows; cols; off = 0; data }

let of_row a = of_array ~rows:1 ~cols:(Array.length a) a

let of_rows rs =
  let rows = Array.length rs in
  assert (rows > 0);
  let cols = Array.length rs.(0) in
  let data = alloc (rows * cols) in
  Array.iteri
    (fun r row ->
      assert (Array.length row = cols);
      for c = 0 to cols - 1 do
        A.unsafe_set data ((r * cols) + c) (Array.unsafe_get row c)
      done)
    rs;
  { rows; cols; off = 0; data }

let init ~rows ~cols f =
  let data = alloc (rows * cols) in
  let k = ref 0 in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      A.unsafe_set data !k (f r c);
      incr k
    done
  done;
  { rows; cols; off = 0; data }

let rows t = t.rows
let cols t = t.cols
let numel t = t.rows * t.cols
let get t r c = A.get t.data (idx t r c)
let set t r c v = A.set t.data (idx t r c) v

let copy t =
  let n = numel t in
  let data = alloc n in
  for i = 0 to n - 1 do
    A.unsafe_set data i (A.unsafe_get t.data (t.off + i))
  done;
  { t with off = 0; data }

let to_row_array t = Array.init (numel t) (fun i -> A.unsafe_get t.data (t.off + i))
let row t r = Array.init t.cols (fun c -> A.unsafe_get t.data (t.off + (r * t.cols) + c))

let rows_view t ~row ~len =
  if row < 0 || len < 0 || row + len > t.rows then
    invalid_arg "Tensor.rows_view: row range out of bounds";
  { t with rows = len; off = t.off + (row * t.cols) }

let col t c =
  init ~rows:t.rows ~cols:1 (fun r _ -> get t r c)

let get_scalar t =
  assert (t.rows = 1 && t.cols = 1);
  A.get t.data t.off

let same_shape a b = a.rows = b.rows && a.cols = b.cols

let map f t =
  let n = numel t in
  let data = alloc n in
  for i = 0 to n - 1 do
    A.unsafe_set data i (f (A.unsafe_get t.data (t.off + i)))
  done;
  { t with off = 0; data }

let map2 f a b =
  assert (same_shape a b);
  let n = numel a in
  let data = alloc n in
  for i = 0 to n - 1 do
    A.unsafe_set data i
      (f (A.unsafe_get a.data (a.off + i)) (A.unsafe_get b.data (b.off + i)))
  done;
  { a with off = 0; data }

let add a b = map2 ( +. ) a b
let sub a b = map2 ( -. ) a b
let mul a b = map2 ( *. ) a b
let div a b = map2 ( /. ) a b
let neg t = map (fun x -> -.x) t
let scale k t = map (fun x -> k *. x) t
let add_scalar k t = map (fun x -> k +. x) t
let fill t v = fill_range t.data t.off (numel t) v

let blit_into ~dst src =
  assert (same_shape dst src);
  let n = numel src in
  (* [src] and [dst] may be views of one buffer; the batched engine only
     ever blits between disjoint row ranges, and for the identical-range
     case the element copy below is trivially correct too. *)
  if dst.data == src.data && dst.off > src.off then
    for i = n - 1 downto 0 do
      A.unsafe_set dst.data (dst.off + i) (A.unsafe_get src.data (src.off + i))
    done
  else
    for i = 0 to n - 1 do
      A.unsafe_set dst.data (dst.off + i) (A.unsafe_get src.data (src.off + i))
    done

let add_inplace acc x =
  assert (same_shape acc x);
  let ad = acc.data and xd = x.data and ao = acc.off and xo = x.off in
  for i = 0 to numel acc - 1 do
    A.unsafe_set ad (ao + i) (A.unsafe_get ad (ao + i) +. A.unsafe_get xd (xo + i))
  done

let broadcast_rv f m rv =
  assert (rv.rows = 1 && rv.cols = m.cols);
  let cols = m.cols in
  let data = alloc (m.rows * cols) in
  let k = ref 0 in
  for r = 0 to m.rows - 1 do
    let moff = m.off + (r * cols) in
    for c = 0 to cols - 1 do
      A.unsafe_set data !k
        (f (A.unsafe_get m.data (moff + c)) (A.unsafe_get rv.data (rv.off + c)));
      incr k
    done
  done;
  { rows = m.rows; cols; off = 0; data }

let add_rv m rv = broadcast_rv ( +. ) m rv
let mul_rv m rv = broadcast_rv ( *. ) m rv

(* The per-row broadcast kernels below run inside the per-time-step
   loop of the no-grad forward, so they are hand-specialized (no
   closure dispatch) and use unchecked accesses: the shape asserts plus
   the view invariant [off + rows * cols <= A.dim data] make every
   index provably in bounds. *)

let add_rv_inplace m rv =
  assert (rv.rows = 1 && rv.cols = m.cols);
  let cols = m.cols in
  let md = m.data and rd = rv.data and ro = rv.off in
  for r = 0 to m.rows - 1 do
    let moff = m.off + (r * cols) in
    for c = 0 to cols - 1 do
      A.unsafe_set md (moff + c)
        (A.unsafe_get md (moff + c) +. A.unsafe_get rd (ro + c))
    done
  done

let mul_rv_inplace m rv =
  assert (rv.rows = 1 && rv.cols = m.cols);
  let cols = m.cols in
  let md = m.data and rd = rv.data and ro = rv.off in
  for r = 0 to m.rows - 1 do
    let moff = m.off + (r * cols) in
    for c = 0 to cols - 1 do
      A.unsafe_set md (moff + c)
        (A.unsafe_get md (moff + c) *. A.unsafe_get rd (ro + c))
    done
  done

let add_mul_rv_inplace m ~add ~mul =
  (* Fused (m + add) * mul: element-for-element the same expression as
     add_rv_inplace followed by mul_rv_inplace, in one memory pass. *)
  assert (add.rows = 1 && add.cols = m.cols);
  assert (mul.rows = 1 && mul.cols = m.cols);
  let cols = m.cols in
  let md = m.data and ad = add.data and ud = mul.data in
  let ao = add.off and uo = mul.off in
  for r = 0 to m.rows - 1 do
    let moff = m.off + (r * cols) in
    for c = 0 to cols - 1 do
      A.unsafe_set md (moff + c)
        ((A.unsafe_get md (moff + c) +. A.unsafe_get ad (ao + c))
        *. A.unsafe_get ud (uo + c))
    done
  done

let affine_rv_into ~dst s a x b =
  assert (same_shape s x && same_shape dst s);
  assert (a.rows = 1 && a.cols = s.cols && b.rows = 1 && b.cols = s.cols);
  let cols = s.cols in
  let dd = dst.data and sd = s.data and xd = x.data in
  let ad = a.data and bd = b.data in
  let ao = a.off and bo = b.off in
  for r = 0 to s.rows - 1 do
    let doff = dst.off + (r * cols)
    and soff = s.off + (r * cols)
    and xoff = x.off + (r * cols) in
    for c = 0 to cols - 1 do
      (* dst may alias s (the filter state update overwrites in place);
         each element is read before it is written. *)
      A.unsafe_set dd (doff + c)
        ((A.unsafe_get sd (soff + c) *. A.unsafe_get ad (ao + c))
        +. (A.unsafe_get xd (xoff + c) *. A.unsafe_get bd (bo + c)))
    done
  done

(* Cache-blocking tile sizes for [matmul_into]. The k-tiles are visited
   in ascending order, so every output element still accumulates its
   products in the same k-ascending order as the naive triple loop —
   blocking changes memory locality, never the floating-point result. *)
let block_rows = 32
let block_inner = 32

let matmul_into ~dst a b =
  if dst.data == a.data || dst.data == b.data then
    invalid_arg "Tensor.matmul_into: dst must not alias an input";
  assert (a.cols = b.rows);
  assert (dst.rows = a.rows && dst.cols = b.cols);
  let m = a.rows and kk = a.cols and n = b.cols in
  let ad = a.data and bd = b.data and dd = dst.data in
  if kk = 1 then begin
    (* Single-inner-dimension fast path (the first layer of every
       circuit: [batch x 1] inputs). Writing [0. +. av *. b] directly
       reproduces the zero-fill-then-accumulate result bit for bit
       while skipping the separate fill pass. *)
    let bo = b.off in
    for r = 0 to m - 1 do
      let av = A.unsafe_get ad (a.off + r) in
      let ooff = dst.off + (r * n) in
      if av <> 0. then
        for c = 0 to n - 1 do
          A.unsafe_set dd (ooff + c) (0. +. (av *. A.unsafe_get bd (bo + c)))
        done
      else fill_range dd ooff n 0.
    done
  end
  else begin
    fill_range dd dst.off (m * n) 0.;
    let r0 = ref 0 in
    while !r0 < m do
      let r1 = Stdlib.min m (!r0 + block_rows) in
      let k0 = ref 0 in
      while !k0 < kk do
        let k1 = Stdlib.min kk (!k0 + block_inner) in
        for r = !r0 to r1 - 1 do
          let aoff = a.off + (r * kk) and ooff = dst.off + (r * n) in
          for k = !k0 to k1 - 1 do
            let av = A.unsafe_get ad (aoff + k) in
            if av <> 0. then begin
              let boff = b.off + (k * n) in
              for c = 0 to n - 1 do
                A.unsafe_set dd (ooff + c)
                  (A.unsafe_get dd (ooff + c) +. (av *. A.unsafe_get bd (boff + c)))
              done
            end
          done
        done;
        k0 := k1
      done;
      r0 := r1
    done
  end

let matmul a b =
  assert (a.cols = b.rows);
  let out = zeros ~rows:a.rows ~cols:b.cols in
  matmul_into ~dst:out a b;
  out

let transpose t = init ~rows:t.cols ~cols:t.rows (fun r c -> get t c r)

let sum t =
  let acc = ref 0. in
  for i = 0 to numel t - 1 do
    acc := !acc +. A.unsafe_get t.data (t.off + i)
  done;
  !acc

let mean t = sum t /. float_of_int (Stdlib.max 1 (numel t))

let sum_rows t =
  let out = zeros ~rows:1 ~cols:t.cols in
  for r = 0 to t.rows - 1 do
    for c = 0 to t.cols - 1 do
      A.unsafe_set out.data c (A.unsafe_get out.data c +. get t r c)
    done
  done;
  out

let sum_cols t =
  let out = zeros ~rows:t.rows ~cols:1 in
  for r = 0 to t.rows - 1 do
    let acc = ref 0. in
    for c = 0 to t.cols - 1 do
      acc := !acc +. get t r c
    done;
    A.unsafe_set out.data r !acc
  done;
  out

let max_abs t =
  let m = ref 0. in
  for i = 0 to numel t - 1 do
    m := Float.max !m (Float.abs (A.unsafe_get t.data (t.off + i)))
  done;
  !m

let uniform rng ~rows ~cols ~lo ~hi =
  init ~rows ~cols (fun _ _ -> Pnc_util.Rng.uniform rng ~lo ~hi)

let gaussian rng ~rows ~cols ~mu ~sigma =
  init ~rows ~cols (fun _ _ -> Pnc_util.Rng.gaussian ~mu ~sigma rng)

let one_hot ~n_classes labels =
  let t = zeros ~rows:(Array.length labels) ~cols:n_classes in
  Array.iteri
    (fun r y ->
      assert (y >= 0 && y < n_classes);
      set t r y 1.)
    labels;
  t

let argmax_rows t = Array.init t.rows (fun r -> Pnc_util.Vec.argmax (row t r))

let equal_eps ~eps a b =
  same_shape a b
  &&
  let ok = ref true in
  let n = numel a in
  let i = ref 0 in
  while !ok && !i < n do
    if
      not
        (Float.abs (A.unsafe_get a.data (a.off + !i) -. A.unsafe_get b.data (b.off + !i))
        <= eps)
    then ok := false;
    incr i
  done;
  !ok

let pp ppf t =
  Format.fprintf ppf "@[<v>[%dx%d]" t.rows t.cols;
  for r = 0 to Stdlib.min (t.rows - 1) 7 do
    Format.fprintf ppf "@,";
    for c = 0 to Stdlib.min (t.cols - 1) 7 do
      Format.fprintf ppf "% .4f " (get t r c)
    done;
    if t.cols > 8 then Format.fprintf ppf "..."
  done;
  if t.rows > 8 then Format.fprintf ppf "@,...";
  Format.fprintf ppf "@]"
