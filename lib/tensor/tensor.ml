type t = { rows : int; cols : int; data : float array }

let create ~rows ~cols v =
  assert (rows >= 0 && cols >= 0);
  { rows; cols; data = Array.make (rows * cols) v }

let zeros ~rows ~cols = create ~rows ~cols 0.
let scalar v = { rows = 1; cols = 1; data = [| v |] }

let of_array ~rows ~cols data =
  assert (Array.length data = rows * cols);
  { rows; cols; data = Array.copy data }

let of_row a = { rows = 1; cols = Array.length a; data = Array.copy a }

let of_rows rs =
  let rows = Array.length rs in
  assert (rows > 0);
  let cols = Array.length rs.(0) in
  let data = Array.make (rows * cols) 0. in
  Array.iteri
    (fun r row ->
      assert (Array.length row = cols);
      Array.blit row 0 data (r * cols) cols)
    rs;
  { rows; cols; data }

let init ~rows ~cols f =
  let data = Array.make (rows * cols) 0. in
  let k = ref 0 in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      data.(!k) <- f r c;
      incr k
    done
  done;
  { rows; cols; data }

let rows t = t.rows
let cols t = t.cols
let numel t = t.rows * t.cols
let get t r c = t.data.((r * t.cols) + c)
let set t r c v = t.data.((r * t.cols) + c) <- v
let copy t = { t with data = Array.copy t.data }
let to_row_array t = Array.copy t.data
let row t r = Array.sub t.data (r * t.cols) t.cols

let col t c =
  { rows = t.rows; cols = 1; data = Array.init t.rows (fun r -> get t r c) }

let get_scalar t =
  assert (t.rows = 1 && t.cols = 1);
  t.data.(0)

let same_shape a b = a.rows = b.rows && a.cols = b.cols
let map f t = { t with data = Array.map f t.data }

let map2 f a b =
  assert (same_shape a b);
  { a with data = Array.init (Array.length a.data) (fun i -> f a.data.(i) b.data.(i)) }

let add a b = map2 ( +. ) a b
let sub a b = map2 ( -. ) a b
let mul a b = map2 ( *. ) a b
let div a b = map2 ( /. ) a b
let neg t = map (fun x -> -.x) t
let scale k t = map (fun x -> k *. x) t
let add_scalar k t = map (fun x -> k +. x) t
let fill t v = Array.fill t.data 0 (Array.length t.data) v

let add_inplace acc x =
  assert (same_shape acc x);
  for i = 0 to Array.length acc.data - 1 do
    acc.data.(i) <- acc.data.(i) +. x.data.(i)
  done

let broadcast_rv f m rv =
  assert (rv.rows = 1 && rv.cols = m.cols);
  let cols = m.cols in
  let data = Array.make (m.rows * cols) 0. in
  let k = ref 0 in
  for _r = 0 to m.rows - 1 do
    for c = 0 to cols - 1 do
      data.(!k) <- f m.data.(!k) rv.data.(c);
      incr k
    done
  done;
  { rows = m.rows; cols; data }

let add_rv m rv = broadcast_rv ( +. ) m rv
let mul_rv m rv = broadcast_rv ( *. ) m rv

let broadcast_rv_inplace f m rv =
  assert (rv.rows = 1 && rv.cols = m.cols);
  let cols = m.cols in
  let k = ref 0 in
  for _r = 0 to m.rows - 1 do
    for c = 0 to cols - 1 do
      m.data.(!k) <- f m.data.(!k) rv.data.(c);
      incr k
    done
  done

let add_rv_inplace m rv = broadcast_rv_inplace ( +. ) m rv
let mul_rv_inplace m rv = broadcast_rv_inplace ( *. ) m rv

let affine_rv_into ~dst s a x b =
  assert (same_shape s x && same_shape dst s);
  assert (a.rows = 1 && a.cols = s.cols && b.rows = 1 && b.cols = s.cols);
  let cols = s.cols in
  let k = ref 0 in
  for _r = 0 to s.rows - 1 do
    for c = 0 to cols - 1 do
      (* dst may alias s (the filter state update overwrites in place);
         each element is read before it is written. *)
      dst.data.(!k) <- (s.data.(!k) *. a.data.(c)) +. (x.data.(!k) *. b.data.(c));
      incr k
    done
  done

let matmul_into ~dst a b =
  assert (a.cols = b.rows);
  assert (dst.rows = a.rows && dst.cols = b.cols);
  Array.fill dst.data 0 (Array.length dst.data) 0.;
  for r = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let av = a.data.((r * a.cols) + k) in
      if av <> 0. then begin
        let boff = k * b.cols and ooff = r * b.cols in
        for c = 0 to b.cols - 1 do
          dst.data.(ooff + c) <- dst.data.(ooff + c) +. (av *. b.data.(boff + c))
        done
      end
    done
  done

let matmul a b =
  assert (a.cols = b.rows);
  let out = zeros ~rows:a.rows ~cols:b.cols in
  matmul_into ~dst:out a b;
  out

let transpose t = init ~rows:t.cols ~cols:t.rows (fun r c -> get t c r)
let sum t = Array.fold_left ( +. ) 0. t.data
let mean t = sum t /. float_of_int (Stdlib.max 1 (numel t))

let sum_rows t =
  let out = zeros ~rows:1 ~cols:t.cols in
  for r = 0 to t.rows - 1 do
    for c = 0 to t.cols - 1 do
      out.data.(c) <- out.data.(c) +. get t r c
    done
  done;
  out

let sum_cols t =
  let out = zeros ~rows:t.rows ~cols:1 in
  for r = 0 to t.rows - 1 do
    let acc = ref 0. in
    for c = 0 to t.cols - 1 do
      acc := !acc +. get t r c
    done;
    out.data.(r) <- !acc
  done;
  out

let max_abs t = Array.fold_left (fun m x -> Float.max m (Float.abs x)) 0. t.data

let uniform rng ~rows ~cols ~lo ~hi =
  init ~rows ~cols (fun _ _ -> Pnc_util.Rng.uniform rng ~lo ~hi)

let gaussian rng ~rows ~cols ~mu ~sigma =
  init ~rows ~cols (fun _ _ -> Pnc_util.Rng.gaussian ~mu ~sigma rng)

let one_hot ~n_classes labels =
  let t = zeros ~rows:(Array.length labels) ~cols:n_classes in
  Array.iteri
    (fun r y ->
      assert (y >= 0 && y < n_classes);
      set t r y 1.)
    labels;
  t

let argmax_rows t = Array.init t.rows (fun r -> Pnc_util.Vec.argmax (row t r))

let equal_eps ~eps a b =
  same_shape a b && Pnc_util.Vec.equal_eps ~eps a.data b.data

let pp ppf t =
  Format.fprintf ppf "@[<v>[%dx%d]" t.rows t.cols;
  for r = 0 to Stdlib.min (t.rows - 1) 7 do
    Format.fprintf ppf "@,";
    for c = 0 to Stdlib.min (t.cols - 1) 7 do
      Format.fprintf ppf "% .4f " (get t r c)
    done;
    if t.cols > 8 then Format.fprintf ppf "..."
  done;
  if t.rows > 8 then Format.fprintf ppf "@,...";
  Format.fprintf ppf "@]"
