(* Bounded fast tanh for the opt-in `Fast precision tier.

   Construction (chosen so every property the test battery asserts is
   structural, not a numerical accident of a minimax fit):

     s(x) = x * P(x^2)        P(u) = sum_{k=0}^{7} u^k / (2k+1)!
     f(x) = s / sqrt(1 + s^2)          for |x| < cutoff
     f(x) = copysign(1, x)             for |x| >= cutoff

   P is the truncated Taylor series of sinh(sqrt u)/sqrt u, so s is a
   degree-15 odd polynomial in x approximating sinh(x), and s/sqrt(1+s^2) is
   the exact identity tanh = sinh / sqrt(1 + sinh^2).

   Error bound (<= 1e-7 absolute, fuzzed in test/test_fasttanh.ml):
   - Taylor truncation: the absolute sinh error is ~x^17/17!, which is
     LARGE near the cutoff (~18 at x = 8.5) — but the map
     s -> s/sqrt(1+s^2) has derivative (1+s^2)^{-3/2}, so the tanh
     error it induces is ~x^17/(17! cosh^3 x). That expression peaks
     near x = 17/3 at ~6e-9 and collapses like e^{-3x} beyond; at the
     cutoff it is ~1.2e-9. (This contraction is why eight Horner steps
     suffice: the polynomial only has to be *relatively* accurate where
     cosh^3 has not yet taken over.)
   - Tail clamp: for x >= cutoff, 1 - tanh(x) = 2/(e^{2x}+1)
     <= 2/(e^17+1) ~ 8.28e-8 at cutoff = 8.5 — the binding term.
   - Rounding: every summand of P is positive, so Horner is
     well-conditioned; total rounding is a few ulp (~1e-15).

   Structural properties:
   - odd, bit-exact: s is odd in x, u = x*x is even, sqrt(1+s^2) even;
   - signed zeros preserved: s(+-0) = +-0 * 1 = +-0, f = +-0/1;
   - monotone: P has positive coefficients so s is strictly increasing,
     and t -> t/sqrt(1+t^2) is strictly increasing;
   - exact +-1 saturation for |x| >= cutoff (including +-infinity);
   - NaN propagates (NaN >= cutoff is false; the polynomial path then
     returns NaN).

   The expression is branch-light: eight Horner steps, one sqrt and
   one division per element. That is cheaper than glibc's exp-based
   tanh, but only when the call does not box its floats — without
   flambda a cross-module [float -> float] call allocates both the
   argument and the result, which costs more than the polynomial
   saves. Hence two entry points: the scalar [tanh] is marked
   [@inline always] (honored by the non-flambda compiler, so local
   callers get an unboxed body), and [apply_range] runs the loop
   INSIDE this module over a Bigarray slice, which is what the fused
   kernels call (one call per row block, unboxed elements). *)

let cutoff = 8.5

let max_abs_error = 1e-7
(* The proven bound; the measured worst case is the tail-clamp value
   2/(e^17+1) ~ 8.28e-8, pinned by the fuzz battery. *)

(* 1/(2k+1)! for k = 0..7, exact in double precision. *)
let c1 = 1. /. 6.
let c2 = 1. /. 120.
let c3 = 1. /. 5040.
let c4 = 1. /. 362880.
let c5 = 1. /. 39916800.
let c6 = 1. /. 6227020800.
let c7 = 1. /. 1307674368000.

let[@inline always] tanh x =
  if Float.abs x >= cutoff then Float.copy_sign 1. x
  else begin
    let u = x *. x in
    let p = c7 in
    let p = c6 +. (u *. p) in
    let p = c5 +. (u *. p) in
    let p = c4 +. (u *. p) in
    let p = c3 +. (u *. p) in
    let p = c2 +. (u *. p) in
    let p = c1 +. (u *. p) in
    let p = 1. +. (u *. p) in
    let s = x *. p in
    s /. Stdlib.sqrt (1. +. (s *. s))
  end

module A = Bigarray.Array1

type buffer = (float, Bigarray.float64_elt, Bigarray.c_layout) A.t

let apply_range (d : buffer) ~off ~len =
  for i = off to off + len - 1 do
    A.unsafe_set d i (tanh (A.unsafe_get d i))
  done
