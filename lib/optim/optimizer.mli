(** First-order optimizers over {!Pnc_autodiff.Var} parameter lists.

    The paper trains with AdamW (default settings) under full-batch
    gradient descent; SGD and Adam are provided for the ablation and
    test harnesses. Optimizers mutate the parameter tensors in place
    and never touch gradients (call {!zero_grads} between steps). *)

type t

val sgd : ?momentum:float -> params:Pnc_autodiff.Var.t list -> unit -> t
val adam : ?beta1:float -> ?beta2:float -> ?eps:float -> params:Pnc_autodiff.Var.t list -> unit -> t

val adamw :
  ?beta1:float ->
  ?beta2:float ->
  ?eps:float ->
  ?weight_decay:float ->
  params:Pnc_autodiff.Var.t list ->
  unit ->
  t
(** Decoupled weight decay (Loshchilov & Hutter), default
    [weight_decay = 0.01] as in the PyTorch defaults used by the
    paper. *)

val step : t -> lr:float -> unit
(** One update using the gradients currently accumulated on the
    parameters. *)

val zero_grads : t -> unit
val params : t -> Pnc_autodiff.Var.t list

(** {1 State persistence}

    Everything the update rule accumulates across steps — exposed so a
    checkpoint can capture an optimizer mid-run and {!restore} can make
    a fresh optimizer continue bit-identically. *)

val algo_name : t -> string
(** ["sgd"] or ["adam"] (AdamW is Adam with nonzero decay; the decay
    itself is configuration, not accumulated state). *)

val step_count : t -> int
(** Adam's bias-correction step counter; [0] for SGD. *)

val slots : t -> (string * float array array) list
(** Copies of the per-parameter accumulator arrays, in parameter order:
    [["velocity"]] for SGD, [["m"; "v"]] for Adam/AdamW. *)

val restore : t -> step_count:int -> slots:(string * float array array) list -> unit
(** Overwrite the accumulators in place. Raises [Invalid_argument] on a
    missing slot or any shape mismatch with the optimizer's parameters
    (nothing is partially written before validation of each slot). *)

val grad_norm : t -> float
(** Global L2 norm of all parameter gradients. *)

val clip_grad_norm : t -> max_norm:float -> unit
(** Rescale all gradients when the global norm exceeds [max_norm]. *)
