module T = Pnc_tensor.Tensor
module Var = Pnc_autodiff.Var

type algo =
  | Sgd of { momentum : float; velocity : float array array }
  | Adam of {
      beta1 : float;
      beta2 : float;
      eps : float;
      weight_decay : float; (* 0. for plain Adam *)
      m : float array array;
      v : float array array;
      mutable step_count : int;
    }

type t = { params : Var.t array; algo : algo }

let state_like params = Array.map (fun p -> Array.make (T.numel (Var.value p)) 0.) params

let sgd ?(momentum = 0.) ~params () =
  let params = Array.of_list params in
  { params; algo = Sgd { momentum; velocity = state_like params } }

let make_adam ~beta1 ~beta2 ~eps ~weight_decay params =
  let params = Array.of_list params in
  {
    params;
    algo =
      Adam
        {
          beta1;
          beta2;
          eps;
          weight_decay;
          m = state_like params;
          v = state_like params;
          step_count = 0;
        };
  }

let adam ?(beta1 = 0.9) ?(beta2 = 0.999) ?(eps = 1e-8) ~params () =
  make_adam ~beta1 ~beta2 ~eps ~weight_decay:0. params

let adamw ?(beta1 = 0.9) ?(beta2 = 0.999) ?(eps = 1e-8) ?(weight_decay = 0.01) ~params () =
  make_adam ~beta1 ~beta2 ~eps ~weight_decay params

module BA = Bigarray.Array1

(* Parameter and gradient tensors are always full-buffer (off = 0):
   params are created by the constructors and grads by the autodiff
   tape, never through a view. The update loops index the flat Bigarray
   buffer directly over [0, numel). *)
let data p = (Var.value p : T.t).data

(* Non-allocating gradient access: [Var.grad] manufactures a fresh
   zeros tensor for untouched params, so the hot loops below read the
   option directly and treat [None] as an all-zero gradient (identical
   arithmetic — momentum still decays, AdamW still applies decoupled
   weight decay — without the throwaway buffer). *)
let grad_data p =
  match Var.grad_opt p with Some (g : T.t) -> Some g.data | None -> None

let step t ~lr =
  match t.algo with
  | Sgd { momentum; velocity } ->
      Array.iteri
        (fun i p ->
          let x = data p and g = grad_data p and v = velocity.(i) in
          for j = 0 to BA.dim x - 1 do
            let gj = match g with Some ga -> BA.unsafe_get ga j | None -> 0. in
            v.(j) <- (momentum *. v.(j)) -. (lr *. gj);
            BA.unsafe_set x j (BA.unsafe_get x j +. v.(j))
          done)
        t.params
  | Adam a ->
      a.step_count <- a.step_count + 1;
      let bc1 = 1. -. (a.beta1 ** float_of_int a.step_count) in
      let bc2 = 1. -. (a.beta2 ** float_of_int a.step_count) in
      Array.iteri
        (fun i p ->
          let x = data p and g = grad_data p in
          let m = a.m.(i) and v = a.v.(i) in
          for j = 0 to BA.dim x - 1 do
            let gj = match g with Some ga -> BA.unsafe_get ga j | None -> 0. in
            m.(j) <- (a.beta1 *. m.(j)) +. ((1. -. a.beta1) *. gj);
            v.(j) <- (a.beta2 *. v.(j)) +. ((1. -. a.beta2) *. gj *. gj);
            let mh = m.(j) /. bc1 and vh = v.(j) /. bc2 in
            (* Decoupled weight decay: applied directly to the weights,
               not folded into the gradient. *)
            let xj = BA.unsafe_get x j in
            BA.unsafe_set x j
              (xj -. (lr *. ((mh /. (sqrt vh +. a.eps)) +. (a.weight_decay *. xj))))
          done)
        t.params

let zero_grads t = Array.iter Var.zero_grad t.params
let params t = Array.to_list t.params

(* State persistence: everything the update rule accumulates across
   steps, exposed as named per-parameter slot arrays so checkpoints can
   store them next to the parameters they belong to. *)

let algo_name t = match t.algo with Sgd _ -> "sgd" | Adam _ -> "adam"
let step_count t = match t.algo with Sgd _ -> 0 | Adam a -> a.step_count

let slots t =
  match t.algo with
  | Sgd { velocity; _ } -> [ ("velocity", Array.map Array.copy velocity) ]
  | Adam a -> [ ("m", Array.map Array.copy a.m); ("v", Array.map Array.copy a.v) ]

let restore_slot ~what dst src =
  if Array.length dst <> Array.length src then
    invalid_arg (Printf.sprintf "Optimizer.restore: %s has %d parameter slots, expected %d"
                   what (Array.length src) (Array.length dst));
  Array.iteri
    (fun i d ->
      if Array.length d <> Array.length src.(i) then
        invalid_arg (Printf.sprintf "Optimizer.restore: %s slot %d has %d entries, expected %d"
                       what i (Array.length src.(i)) (Array.length d)))
    dst;
  Array.iteri (fun i d -> Array.blit src.(i) 0 d 0 (Array.length d)) dst

let restore t ~step_count:n ~slots:sl =
  let slot what = match List.assoc_opt what sl with
    | Some a -> a
    | None -> invalid_arg ("Optimizer.restore: missing slot " ^ what)
  in
  match t.algo with
  | Sgd { velocity; _ } ->
      if n <> 0 then invalid_arg "Optimizer.restore: sgd carries no step count";
      restore_slot ~what:"velocity" velocity (slot "velocity")
  | Adam a ->
      if n < 0 then invalid_arg "Optimizer.restore: negative step count";
      restore_slot ~what:"m" a.m (slot "m");
      restore_slot ~what:"v" a.v (slot "v");
      a.step_count <- n

let grad_norm t =
  let acc = ref 0. in
  Array.iter
    (fun p ->
      match grad_data p with
      | None -> ()
      | Some g ->
          for j = 0 to BA.dim g - 1 do
            let x = BA.unsafe_get g j in
            acc := !acc +. (x *. x)
          done)
    t.params;
  sqrt !acc

let clip_grad_norm t ~max_norm =
  let n = grad_norm t in
  if n > max_norm && n > 0. then begin
    let k = max_norm /. n in
    Array.iter
      (fun p ->
        match grad_data p with
        | None -> ()
        | Some g ->
            for j = 0 to BA.dim g - 1 do
              BA.unsafe_set g j (BA.unsafe_get g j *. k)
            done)
      t.params
  end
