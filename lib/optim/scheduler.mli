(** Learning-rate schedules.

    The paper's schedule: start at 0.1, halve after [patience] epochs
    without validation improvement, clamped at [min_lr]; training
    continues at the floor and stops only after a further full
    [patience] window without improvement there. *)

type t

val plateau :
  ?factor:float -> ?patience:int -> ?min_lr:float -> ?threshold:float -> init_lr:float -> unit -> t
(** Defaults: [factor = 0.5], [patience = 100], [min_lr = 1e-5],
    [threshold = 1e-6] (required improvement to reset patience). *)

val lr : t -> float

val observe : t -> float -> [ `Continue | `Stop ]
(** Feed the epoch's validation loss. Returns [`Stop] only after the
    learning rate has been pinned at [min_lr] for a full [patience]
    window without improvement. *)

val best : t -> float
(** Best validation loss seen so far ([infinity] before the first
    observation). *)

(** {1 State persistence} *)

type snapshot = { s_lr : float; s_best : float; s_bad_epochs : int }
(** The schedule's mutable state (the static knobs — factor, patience,
    min_lr, threshold — are configuration and travel with the training
    config, not the snapshot). *)

val snapshot : t -> snapshot

val restore : t -> snapshot -> unit
(** Overwrite the mutable state so a fresh scheduler continues exactly
    where the captured one stopped. Raises [Invalid_argument] on a
    non-positive learning rate or negative patience counter. *)
