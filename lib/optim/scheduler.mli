(** Learning-rate schedules.

    The paper's schedule: start at 0.1, halve after [patience] epochs
    without validation improvement, clamped at [min_lr]; training
    continues at the floor and stops only after a further full
    [patience] window without improvement there. *)

type t

val plateau :
  ?factor:float -> ?patience:int -> ?min_lr:float -> ?threshold:float -> init_lr:float -> unit -> t
(** Defaults: [factor = 0.5], [patience = 100], [min_lr = 1e-5],
    [threshold = 1e-6] (required improvement to reset patience). *)

val lr : t -> float

val observe : t -> float -> [ `Continue | `Stop ]
(** Feed the epoch's validation loss. Returns [`Stop] only after the
    learning rate has been pinned at [min_lr] for a full [patience]
    window without improvement. *)

val best : t -> float
(** Best validation loss seen so far ([infinity] before the first
    observation). *)
