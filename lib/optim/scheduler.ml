type t = {
  factor : float;
  patience : int;
  min_lr : float;
  threshold : float;
  mutable lr : float;
  mutable best : float;
  mutable bad_epochs : int;
}

let plateau ?(factor = 0.5) ?(patience = 100) ?(min_lr = 1e-5) ?(threshold = 1e-6) ~init_lr () =
  assert (factor > 0. && factor < 1. && patience >= 0 && init_lr > 0.);
  { factor; patience; min_lr; threshold; lr = init_lr; best = infinity; bad_epochs = 0 }

let lr t = t.lr
let best t = t.best

type snapshot = { s_lr : float; s_best : float; s_bad_epochs : int }

let snapshot t = { s_lr = t.lr; s_best = t.best; s_bad_epochs = t.bad_epochs }

let restore t s =
  if not (s.s_lr > 0.) || s.s_bad_epochs < 0 then
    invalid_arg "Scheduler.restore: invalid snapshot";
  t.lr <- s.s_lr;
  t.best <- s.s_best;
  t.bad_epochs <- s.s_bad_epochs

let observe t loss =
  if loss < t.best -. t.threshold then begin
    t.best <- loss;
    t.bad_epochs <- 0;
    `Continue
  end
  else begin
    t.bad_epochs <- t.bad_epochs + 1;
    if t.bad_epochs > t.patience then
      (* The schedule reduces the LR *down to* min_lr and keeps
         training there; only a further full patience window without
         improvement at the floor stops the run. *)
      if t.lr <= t.min_lr then `Stop
      else begin
        t.lr <- Float.max (t.lr *. t.factor) t.min_lr;
        t.bad_epochs <- 0;
        `Continue
      end
    else `Continue
  end
