(** Seeded pseudo-random number generation.

    Every stochastic component of the library (dataset generators,
    augmentation, variation sampling, parameter initialization) draws
    from an explicit [Rng.t] so that experiments are reproducible from
    a single integer seed. *)

type t

val create : seed:int -> t
(** Fresh generator deterministically derived from [seed]. *)

val split : t -> t
(** Child generator whose stream is independent of further draws from
    the parent. Used to give each dataset / model / MC sample its own
    stream without coupling their consumption. *)

val split_n : t -> int -> t array
(** [split_n t n] is [n] child generators derived by {e indexed}
    splitting: the parent stream is consumed exactly twice regardless
    of [n], and child [i] is a pure function of the consumed words and
    its index. Children are mutually independent and unaffected by any
    further consumption of the parent — the construction behind the
    deterministic per-draw streams of the Monte-Carlo engine (each MC
    draw owns child [i], so the per-draw values are identical whether
    the draws run sequentially or on a {!Pool} of any size). *)

val copy : t -> t
(** Snapshot of the generator state. *)

val to_bytes : t -> string
(** Opaque byte image of the full generator state. Deterministic: equal
    states produce equal strings (so state equality can be tested by
    string comparison), and {!of_bytes} restores a generator whose
    future stream is bit-identical to the captured one's. Used by the
    checkpoint layer to make interrupted training resumable with exact
    stream continuity. *)

val of_bytes : string -> t
(** Inverse of {!to_bytes}. Raises [Invalid_argument] when the bytes
    are not a serialized state. Intended for data whose integrity is
    already guaranteed (checkpoint sections are CRC-checked before this
    is called); the validation here is a backstop, not a parser. *)

val int : t -> int -> int
(** [int t n] is uniform on [0, n). Requires [n > 0]. *)

val float : t -> float -> float
(** [float t x] is uniform on [0, x). *)

val uniform : t -> lo:float -> hi:float -> float
(** Uniform on [lo, hi). *)

val bool : t -> bool

val gaussian : ?mu:float -> ?sigma:float -> t -> float
(** Box–Muller normal draw. Defaults: [mu = 0.], [sigma = 1.]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val permutation : t -> int -> int array
(** Random permutation of [0 .. n-1]. *)

val choice : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val sample_indices : t -> n:int -> k:int -> int array
(** [k] distinct indices drawn uniformly from [0, n); sorted. *)
