(** Fixed-size domain pool for embarrassingly-parallel evaluation work.

    A pool owns [size] worker domains fed from one shared work queue
    (mutex + condition variable). It exists to parallelize the
    read-only Monte-Carlo hot loops — independent forward passes on the
    pure-tensor no-grad path — across cores of the OCaml 5 runtime.

    {b Determinism contract.} The pool never changes results, only
    wall-clock time: {!init} and {!map} write each task's result into
    its own slot, so the output order is the submission order no matter
    which worker ran which task or in which order tasks finished.
    Callers pair this with {!Rng.split_n} (one pre-split child stream
    per task) so that a task's random draws are a function of its index
    alone — the pooled result is then bit-identical to the sequential
    one for every worker count.

    {b Safety.} Pool tasks must not build autodiff graphs: the [Var]
    gradient tape is global state owned by the main domain. Only the
    pure-tensor [*_t] evaluation paths may run inside a pool. *)

type t

val default_size : unit -> int
(** [Domain.recommended_domain_count () - 1] (never negative): one
    worker per available core, leaving a core for the submitting
    domain. *)

val create : ?size:int -> unit -> t
(** Spawn a pool of [size] workers (default {!default_size}). Sizes 0
    and 1 spawn {e no} domains: every task then runs sequentially in
    the caller, making single-core behaviour identical to not having a
    pool at all. Raises [Invalid_argument] on negative sizes. *)

val size : t -> int

val stats : t -> int array * float array
(** [(tasks, busy_s)]: per-worker completed-task counts and (when an
    observability sink is installed — see {!Pnc_obs.Obs.enabled}) busy
    seconds, both of length [max 1 size]. On the sequential fallback
    everything lands in slot 0. Which worker ran which task is
    scheduler-dependent, so the per-slot split is {e not}
    deterministic — only the results of {!init}/{!map} are. Read after
    {!shutdown} (or between submissions) for consistent values.
    {!shutdown} additionally emits one [pool.worker] telemetry event
    per slot when a sink is installed. *)

val init : t -> n:int -> (int -> 'a) -> 'a array
(** [init pool ~n f] is [Array.init n f] computed on the pool: tasks
    [f 0 .. f (n-1)] are distributed across the workers and the result
    array preserves index order. Blocks until all tasks finish. If one
    or more tasks raise, the exception of the lowest-indexed failing
    task is re-raised after all tasks have completed — the pool itself
    stays usable. Raises [Invalid_argument] when called from inside a
    pool task (nested submission) or after {!shutdown}. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map pool f xs] is [List.map f xs] computed on the pool; same
    ordering, exception and nesting guarantees as {!init}. *)

val run : t -> (unit -> unit) list -> unit
(** Run side-effecting tasks to completion on the pool; same
    guarantees as {!init}. *)

val shutdown : t -> unit
(** Drain outstanding work, stop the workers and join every domain.
    Idempotent. Subsequent submissions raise [Invalid_argument]. *)

val with_pool : ?size:int -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] on a fresh pool and shuts it down afterwards
    (also on exception). *)
