(* All durations come from the shared monotonic clock: wall-clock time
   (Unix.gettimeofday) jumps under NTP steps and would corrupt the
   runtime comparisons of Table II. *)

let time f =
  let t0 = Pnc_obs.Clock.now () in
  let r = f () in
  (r, Pnc_obs.Clock.elapsed t0)

let time_mean ~repeats f =
  assert (repeats > 0);
  let acc = ref 0. in
  for _ = 1 to repeats do
    (* Finish collecting garbage left over by whatever ran before the
       measurement (e.g. an allocation-heavy autodiff section): without
       this, the incremental major-GC slices triggered inside [f] are
       billed to [f] even though the garbage is not its own. *)
    Gc.full_major ();
    let _, dt = time f in
    acc := !acc +. dt
  done;
  !acc /. float_of_int repeats

let fmt_seconds s =
  if s < 1e-6 then Printf.sprintf "%.1f ns" (s *. 1e9)
  else if s < 1e-3 then Printf.sprintf "%.1f µs" (s *. 1e6)
  else if s < 1. then Printf.sprintf "%.3f ms" (s *. 1e3)
  else Printf.sprintf "%.3f s" s
