(* Dense Cholesky with a jitter fallback, sized for covariance matrices
   over the devices of one tensor (n = rows·cols of an eps draw). *)

let cholesky a =
  let n = Array.length a in
  let l = Array.make_matrix n n 0. in
  let ok = ref true in
  (try
     for j = 0 to n - 1 do
       (* Diagonal pivot: a_jj − Σ_k l_jk². *)
       let s = ref a.(j).(j) in
       for k = 0 to j - 1 do
         s := !s -. (l.(j).(k) *. l.(j).(k))
       done;
       if !s <= 0. || not (Float.is_finite !s) then begin
         ok := false;
         raise Exit
       end;
       l.(j).(j) <- sqrt !s;
       for i = j + 1 to n - 1 do
         let s = ref a.(i).(j) in
         for k = 0 to j - 1 do
           s := !s -. (l.(i).(k) *. l.(j).(k))
         done;
         l.(i).(j) <- !s /. l.(j).(j)
       done
     done
   with Exit -> ());
  if !ok then Some l else None

let cholesky_psd ?(max_tries = 8) a =
  let n = Array.length a in
  match cholesky a with
  | Some l -> (l, 0.)
  | None ->
      let mean_diag =
        if n = 0 then 1.
        else
          Float.max 1e-300
            (Array.fold_left (fun acc i -> acc +. Float.abs a.(i).(i) /. float_of_int n)
               0. (Array.init n Fun.id))
      in
      let rec attempt k jitter =
        if k >= max_tries then
          failwith
            (Printf.sprintf "Linalg.cholesky_psd: matrix not positive definite (n=%d)" n)
        else begin
          let aj = Array.init n (fun i -> Array.copy a.(i)) in
          for i = 0 to n - 1 do
            aj.(i).(i) <- aj.(i).(i) +. jitter
          done;
          match cholesky aj with
          | Some l -> (l, jitter)
          | None -> attempt (k + 1) (jitter *. 10.)
        end
      in
      attempt 0 (1e-12 *. mean_diag)

let mat_vec_lower l z =
  let n = Array.length l in
  Array.init n (fun i ->
      let s = ref 0. in
      for k = 0 to i do
        s := !s +. (l.(i).(k) *. z.(k))
      done;
      !s)
