type t = Random.State.t

let create ~seed = Random.State.make [| seed; 0x9e3779b9; seed lxor 0x5deece66d |]

let split t =
  let a = Random.State.bits t and b = Random.State.bits t in
  Random.State.make [| a; b; a lxor (b lsl 7) |]

let split_n t n =
  assert (n >= 0);
  (* Indexed splitting: the parent stream is consumed exactly twice
     regardless of [n], and child [i] is a pure function of those two
     words and its index. Children are therefore insensitive to how the
     parent is consumed afterwards, and child [i] never depends on how
     many siblings were requested before it. *)
  let a = Random.State.bits t and b = Random.State.bits t in
  Array.init n (fun i ->
      Random.State.make [| a; b; i; (i * 0x9e3779b9) lxor a lxor (b lsl 5) |])

let copy = Random.State.copy

(* State persistence. [Random.State.t] is opaque, so the byte image is
   produced by [Marshal] (stable and deterministic for a given state:
   the LXM state is a flat block of integers). The image is only ever
   read back from checksummed checkpoint sections, so [of_bytes] never
   sees corrupted input in normal operation; it still re-validates the
   round-trip so garbage fed to it directly fails loudly instead of
   yielding a silently wrong stream. *)
let to_bytes t = Marshal.to_string (t : Random.State.t) []

let of_bytes s =
  let t =
    try (Marshal.from_string s 0 : Random.State.t)
    with _ -> invalid_arg "Rng.of_bytes: not a serialized generator state"
  in
  if not (String.equal (to_bytes t) s) then
    invalid_arg "Rng.of_bytes: not a serialized generator state";
  t
let int t n = Random.State.int t n
let float t x = Random.State.float t x
let uniform t ~lo ~hi = lo +. Random.State.float t (hi -. lo)
let bool t = Random.State.bool t

let gaussian ?(mu = 0.) ?(sigma = 1.) t =
  (* Box–Muller; discard the second variate to keep the stream simple. *)
  let rec draw () =
    let u1 = Random.State.float t 1.0 in
    if u1 <= 1e-12 then draw () else u1
  in
  let u1 = draw () in
  let u2 = Random.State.float t 1.0 in
  let r = sqrt (-2.0 *. log u1) in
  mu +. (sigma *. r *. cos (2.0 *. Float.pi *. u2))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let permutation t n =
  let p = Array.init n (fun i -> i) in
  shuffle t p;
  p

let choice t a =
  assert (Array.length a > 0);
  a.(Random.State.int t (Array.length a))

let sample_indices t ~n ~k =
  assert (k <= n);
  let p = permutation t n in
  let sel = Array.sub p 0 k in
  Array.sort Int.compare sel;
  sel
