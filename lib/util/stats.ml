let mean = Vec.mean

let variance a =
  let n = Array.length a in
  if n <= 1 then 0.
  else
    let m = mean a in
    let acc = Array.fold_left (fun s x -> s +. ((x -. m) ** 2.)) 0. a in
    acc /. float_of_int (n - 1)

let std a = sqrt (variance a)

let percentile a p =
  assert (Array.length a > 0 && p >= 0. && p <= 100.);
  let s = Array.copy a in
  Array.sort Float.compare s;
  let n = Array.length s in
  if n = 1 then s.(0)
  else
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    s.(lo) +. (frac *. (s.(hi) -. s.(lo)))

let median a = percentile a 50.
let mean_std a = (mean a, std a)

let accuracy ~pred ~truth =
  assert (Array.length pred = Array.length truth);
  let n = Array.length pred in
  if n = 0 then 0.
  else
    let ok = ref 0 in
    Array.iteri (fun i p -> if p = truth.(i) then incr ok) pred;
    float_of_int !ok /. float_of_int n

let confusion ~n_classes ~pred ~truth =
  assert (Array.length pred = Array.length truth);
  let m = Array.make_matrix n_classes n_classes 0 in
  Array.iteri (fun i p -> m.(truth.(i)).(p) <- m.(truth.(i)).(p) + 1) pred;
  m

let summarize name a =
  let m, s = mean_std a in
  Printf.sprintf "%s: %.3f ± %.3f (n=%d)" name m s (Array.length a)
