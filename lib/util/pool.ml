type t = {
  size : int;
  queue : (unit -> unit) Queue.t;
  mutex : Mutex.t;
  has_work : Condition.t;
  mutable stop : bool;
  mutable workers : unit Domain.t array;
  mutable alive : bool;
}

let default_size () = Stdlib.max 0 (Domain.recommended_domain_count () - 1)

(* Set in each worker domain so that nested submission — a pool task
   submitting to a pool, which would deadlock a full pool — is rejected
   eagerly instead of wedging. *)
let in_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let worker_loop pool () =
  Domain.DLS.set in_worker true;
  let rec next () =
    Mutex.lock pool.mutex;
    let rec take () =
      if not (Queue.is_empty pool.queue) then Some (Queue.pop pool.queue)
      else if pool.stop then None
      else begin
        Condition.wait pool.has_work pool.mutex;
        take ()
      end
    in
    let job = take () in
    Mutex.unlock pool.mutex;
    match job with
    | None -> ()
    | Some job ->
        (* Tasks wrap their own exceptions (see [init]); a raise here
           would kill the worker and wedge the pool. *)
        job ();
        next ()
  in
  next ()

let create ?size () =
  let size = match size with Some s -> s | None -> default_size () in
  if size < 0 then invalid_arg "Pool.create: negative size";
  let pool =
    {
      size;
      queue = Queue.create ();
      mutex = Mutex.create ();
      has_work = Condition.create ();
      stop = false;
      workers = [||];
      alive = true;
    }
  in
  if size > 1 then pool.workers <- Array.init size (fun _ -> Domain.spawn (worker_loop pool));
  pool

let size pool = pool.size

let check_submittable pool who =
  if Domain.DLS.get in_worker then
    invalid_arg (who ^ ": nested submission from inside a pool task");
  if not pool.alive then invalid_arg (who ^ ": pool is shut down")

let init pool ~n f =
  if n < 0 then invalid_arg "Pool.init: negative n";
  check_submittable pool "Pool.init";
  if pool.size <= 1 || n <= 1 then Array.init n f
  else begin
    (* Each task writes its own slot; the join mutex publishes the
       writes to the caller, so index order is preserved regardless of
       scheduling. *)
    let results = Array.make n None in
    let remaining = ref n in
    let join_mutex = Mutex.create () in
    let all_done = Condition.create () in
    Mutex.lock pool.mutex;
    for i = 0 to n - 1 do
      Queue.push
        (fun () ->
          let r = try Ok (f i) with e -> Error e in
          results.(i) <- Some r;
          Mutex.lock join_mutex;
          decr remaining;
          if !remaining = 0 then Condition.signal all_done;
          Mutex.unlock join_mutex)
        pool.queue
    done;
    Condition.broadcast pool.has_work;
    Mutex.unlock pool.mutex;
    Mutex.lock join_mutex;
    while !remaining > 0 do
      Condition.wait all_done join_mutex
    done;
    Mutex.unlock join_mutex;
    (* Re-raise the lowest-indexed failure, deterministically. *)
    Array.map
      (function Some (Ok v) -> v | Some (Error e) -> raise e | None -> assert false)
      results
  end

let map pool f xs =
  let arr = Array.of_list xs in
  Array.to_list (init pool ~n:(Array.length arr) (fun i -> f arr.(i)))

let run pool tasks = ignore (map pool (fun task -> task ()) tasks)

let shutdown pool =
  if pool.alive then begin
    pool.alive <- false;
    Mutex.lock pool.mutex;
    pool.stop <- true;
    Condition.broadcast pool.has_work;
    Mutex.unlock pool.mutex;
    Array.iter Domain.join pool.workers;
    pool.workers <- [||]
  end

let with_pool ?size f =
  let pool = create ?size () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)
