module Obs = Pnc_obs.Obs
module Clock = Pnc_obs.Clock

type t = {
  size : int;
  queue : (unit -> unit) Queue.t;
  mutex : Mutex.t;
  has_work : Condition.t;
  mutable stop : bool;
  mutable workers : unit Domain.t array;
  mutable alive : bool;
  created : float; (* Clock.now at creation, for utilization *)
  (* Per-worker telemetry. Slot w is written only by worker w (slot 0
     by the caller on the sequential fallback), so no synchronization
     is needed beyond the joins that already order reads. *)
  tasks_done : int array;
  busy_s : float array;
}

let default_size () = Stdlib.max 0 (Domain.recommended_domain_count () - 1)

(* Set in each worker domain so that nested submission — a pool task
   submitting to a pool, which would deadlock a full pool — is rejected
   eagerly instead of wedging. *)
let in_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let worker_loop pool w () =
  Domain.DLS.set in_worker true;
  let rec next () =
    Mutex.lock pool.mutex;
    let rec take () =
      if not (Queue.is_empty pool.queue) then Some (Queue.pop pool.queue)
      else if pool.stop then None
      else begin
        Condition.wait pool.has_work pool.mutex;
        take ()
      end
    in
    let job = take () in
    Mutex.unlock pool.mutex;
    match job with
    | None -> ()
    | Some job ->
        (* Tasks wrap their own exceptions (see [init]); a raise here
           would kill the worker and wedge the pool. *)
        if Obs.enabled () then begin
          let t0 = Clock.now () in
          job ();
          pool.busy_s.(w) <- pool.busy_s.(w) +. Clock.elapsed t0
        end
        else job ();
        pool.tasks_done.(w) <- pool.tasks_done.(w) + 1;
        next ()
  in
  next ()

let create ?size () =
  let size = match size with Some s -> s | None -> default_size () in
  if size < 0 then invalid_arg "Pool.create: negative size";
  let slots = Stdlib.max 1 size in
  let pool =
    {
      size;
      queue = Queue.create ();
      mutex = Mutex.create ();
      has_work = Condition.create ();
      stop = false;
      workers = [||];
      alive = true;
      created = Clock.now ();
      tasks_done = Array.make slots 0;
      busy_s = Array.make slots 0.;
    }
  in
  if size > 1 then pool.workers <- Array.init size (fun w -> Domain.spawn (worker_loop pool w));
  pool

let size pool = pool.size
let stats pool = (Array.copy pool.tasks_done, Array.copy pool.busy_s)

let check_submittable pool who =
  if Domain.DLS.get in_worker then
    invalid_arg (who ^ ": nested submission from inside a pool task");
  if not pool.alive then invalid_arg (who ^ ": pool is shut down")

let init pool ~n f =
  if n < 0 then invalid_arg "Pool.init: negative n";
  check_submittable pool "Pool.init";
  if pool.size <= 1 || n <= 1 then begin
    let t0 = if Obs.enabled () then Clock.now () else 0. in
    let r = Array.init n f in
    if Obs.enabled () then pool.busy_s.(0) <- pool.busy_s.(0) +. Clock.elapsed t0;
    pool.tasks_done.(0) <- pool.tasks_done.(0) + n;
    r
  end
  else begin
    (* Each task writes its own slot; the join mutex publishes the
       writes to the caller, so index order is preserved regardless of
       scheduling. *)
    let results = Array.make n None in
    let remaining = ref n in
    let join_mutex = Mutex.create () in
    let all_done = Condition.create () in
    Mutex.lock pool.mutex;
    for i = 0 to n - 1 do
      Queue.push
        (fun () ->
          let r = try Ok (f i) with e -> Error e in
          results.(i) <- Some r;
          Mutex.lock join_mutex;
          decr remaining;
          if !remaining = 0 then Condition.signal all_done;
          Mutex.unlock join_mutex)
        pool.queue
    done;
    Condition.broadcast pool.has_work;
    Mutex.unlock pool.mutex;
    Mutex.lock join_mutex;
    while !remaining > 0 do
      Condition.wait all_done join_mutex
    done;
    Mutex.unlock join_mutex;
    (* Re-raise the lowest-indexed failure, deterministically. *)
    Array.map
      (function Some (Ok v) -> v | Some (Error e) -> raise e | None -> assert false)
      results
  end

let map pool f xs =
  let arr = Array.of_list xs in
  Array.to_list (init pool ~n:(Array.length arr) (fun i -> f arr.(i)))

let run pool tasks = ignore (map pool (fun task -> task ()) tasks)

let shutdown pool =
  if pool.alive then begin
    pool.alive <- false;
    Mutex.lock pool.mutex;
    pool.stop <- true;
    Condition.broadcast pool.has_work;
    Mutex.unlock pool.mutex;
    Array.iter Domain.join pool.workers;
    pool.workers <- [||];
    if Obs.enabled () then begin
      (* The joins above ordered every worker's slot writes before
         these reads. *)
      let lifetime = Clock.elapsed pool.created in
      let total = Array.fold_left ( + ) 0 pool.tasks_done in
      Array.iteri
        (fun w tasks ->
          Obs.emit "pool.worker"
            [
              ("worker", Obs.Int w);
              ("tasks", Obs.Int tasks);
              ("busy_s", Obs.Float pool.busy_s.(w));
              ( "utilization",
                Obs.Float (if lifetime > 0. then pool.busy_s.(w) /. lifetime else 0.) );
            ])
        pool.tasks_done;
      Obs.emit "pool.shutdown"
        [
          ("size", Obs.Int pool.size);
          ("tasks_total", Obs.Int total);
          ("lifetime_s", Obs.Float lifetime);
        ]
    end
  end

let with_pool ?size f =
  let pool = create ?size () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)
