(** Small dense linear algebra for the correlated-variation sampler.

    The matrices here are covariance matrices over device positions —
    at most a few hundred rows (one per device of a single crossbar or
    filter bank) — so plain [float array array] storage and O(n³/6)
    factorization are comfortably below every hot path. *)

val cholesky : float array array -> float array array option
(** Lower-triangular [L] with [L Lᵀ = A] for a symmetric
    positive-definite [A] (only the lower triangle of [A] is read).
    [None] when a pivot is not strictly positive, i.e. [A] is not
    numerically positive definite. *)

val cholesky_psd : ?max_tries:int -> float array array -> float array array * float
(** [cholesky_psd a] factors [a], falling back to [a + jitter·I] with
    a jitter that starts at [1e-12 · mean diagonal] and grows tenfold
    per retry — the standard rescue for covariance matrices that are
    PSD in exact arithmetic but lose definiteness to rounding (e.g. a
    distance kernel with near-duplicate positions). Returns the factor
    and the jitter that succeeded (0. when none was needed).
    @raise Failure when [max_tries] (default 8) jitter levels fail —
    the matrix is genuinely indefinite, not merely ill-conditioned. *)

val mat_vec_lower : float array array -> float array -> float array
(** [mat_vec_lower l z] = [L·z] for lower-triangular [L] (entries above
    the diagonal are never read). *)
