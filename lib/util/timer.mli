(** Timing helpers used by the runtime comparison (Table II).

    All elapsed times are read from the monotonic clock
    ({!Pnc_obs.Clock}); they measure real elapsed time but are immune
    to wall-clock steps (NTP adjustments, manual clock changes). *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns its result and the elapsed
    (monotonic) seconds. *)

val time_mean : repeats:int -> (unit -> 'a) -> float
(** Mean elapsed seconds of [repeats] runs (result discarded). *)

val fmt_seconds : float -> string
(** Human formatting: ns/µs/ms/s depending on magnitude. *)
