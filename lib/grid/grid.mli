(** Process-sharded experiment grid over the checkpoint cache.

    The (dataset × variant × seed) training grid behind every paper
    artifact is sharded across N worker {e processes} that coordinate
    solely through the filesystem of one cache directory — no pipes,
    sockets or shared memory (domains add overhead on small
    containers, see ROADMAP item 4; processes also make crash faults
    honest). The protocol (docs/GRID.md):

    - a {e cell} is one (dataset, variant, seed) training run, cached
      as a CRC-checked ["grid-cell"] checkpoint at
      {!Pnc_exp.Experiments.cell_path} and published by atomic rename;
    - a worker wanting to compute a cell first takes the cell's
      {!Pnc_ckpt.Lease} claim file; claims of dead or hung workers are
      reaped by siblings, so a SIGKILL-ed worker delays its cell, never
      loses it;
    - cells are idempotent and deterministic, so a duplicated
      computation (possible after a reap race) republishes byte-wise
      compatible results — exactly-once {e effect} without any lock
      being load-bearing;
    - {!merge} assembles tables by walking the canonical enumeration
      {!Pnc_exp.Experiments.grid_keys} and is therefore byte-identical
      for every shard count and completion order.

    Workers keep polling until {e every} cell of their grid is valid,
    so any single surviving worker completes the whole grid. *)

module Config := Pnc_exp.Config
module Experiments := Pnc_exp.Experiments

(** {1 The claim/compute/publish protocol, generically}

    [Proto] is deliberately ignorant of models and datasets: a cell is
    just a target path plus [is_valid]/[compute] callbacks. The
    fault-injection battery ([test/test_grid.ml]) drives it with cheap
    synthetic cells; the experiment grid instantiates it via
    {!cells_of_config}. *)

module Proto : sig
  type cell = {
    cell_id : string;  (** human-readable label for progress/telemetry *)
    path : string;  (** final artifact location (published atomically) *)
    is_valid : unit -> bool;
        (** [true] iff a trustworthy result is present at [path] —
            must fully validate (decode + checksums), never trust
            existence. *)
    compute : unit -> unit;
        (** Produce the result and publish it at [path] by atomic
            rename (e.g. {!Pnc_ckpt.Ckpt.save}). Must be idempotent
            and deterministic. *)
  }

  val claim_path : string -> string
  (** [path ^ ".claim"]. *)

  val reap_tmp : path:string -> int
  (** Remove leftover [path ^ ".tmp.<pid>"] staging files whose writer
      pid is dead (a SIGKILL mid-publish leaves one), returning how
      many were removed. Live writers' temp files are left alone. Call
      only while holding the cell's claim. *)

  val work :
    ?lease_ttl:float ->
    ?poll_s:float ->
    ?progress:(string -> unit) ->
    owner:string ->
    cell list ->
    int
  (** Run the worker loop until every cell in the list is valid;
      returns the number of cells this worker computed. Each pass:
      skip valid cells; try to claim an invalid one (reaping stale
      claims per {!Pnc_ckpt.Lease.try_acquire}); recheck validity
      under the claim (a sibling may have published first), reap dead
      writers' temp litter, compute, publish, release. When every
      remaining cell is claimed by a live sibling, sleep [poll_s]
      (default 0.25 s) and rescan. If [compute] raises, the claim is
      released and the exception propagates (the cell returns to the
      pool). *)
end

(** {1 The experiment grid instance} *)

val cells_of_config :
  ?batch_size:int ->
  dir:string ->
  Config.t ->
  variants:Experiments.variant list ->
  Proto.cell list
(** One {!Proto.cell} per {!Pnc_exp.Experiments.grid_keys} entry:
    [is_valid] is a full {!Pnc_exp.Experiments.load_cell} (CRC +
    fingerprint + identity), [compute] is
    {!Pnc_exp.Experiments.train_run} + {!Pnc_exp.Experiments.save_cell}. *)

val variants_of_string : string -> Experiments.variant list
(** ["all"] (the six-variant grid), ["table1"] or ["fig7"].
    @raise Invalid_argument otherwise. *)

val variants_name : Experiments.variant list -> string

(** {1 Status} *)

type state = Done | Claimed | Stale | Pending
(** [Done]: a valid cell checkpoint exists. [Claimed]: a live worker
    holds the claim. [Stale]: something exists but cannot be trusted —
    a corrupt or truncated cell file, an interrupted-write [.tmp.<pid>]
    leftover, or a dead/hung worker's claim; stale cells are reaped
    and recomputed, never trusted. [Pending]: nothing there yet. *)

val state_name : state -> string

type cell_status = {
  dataset : string;
  variant : Experiments.variant;
  seed : int;
  state : state;
  train_seconds : float option;  (** from the cached cell, when [Done] *)
}

type status = {
  total : int;
  done_ : int;
  claimed : int;
  stale : int;
  pending : int;
  mean_cell_s : float option;  (** mean train seconds over done cells *)
  eta_s : float option;
      (** sequential time to finish the remainder at the observed mean
          cell cost; divide by the shard count you will run *)
  cells : cell_status list;  (** in canonical {!Experiments.grid_keys} order *)
}

val classify :
  ?lease_ttl:float ->
  dir:string ->
  Config.t ->
  dataset:string ->
  variant:Experiments.variant ->
  seed:int ->
  state

val status :
  ?lease_ttl:float -> dir:string -> Config.t -> variants:Experiments.variant list -> status

val status_json_lines : status -> string list
(** JSONL rendering (one [grid.cell.status] object per cell plus one
    final [grid.status] summary object) — the machine-readable
    artifact CI uploads. Deterministic given the classification. *)

val print_status : status -> unit

(** {1 Orchestration} *)

val mkdir_p : string -> unit
(** Recursive, race-tolerant directory creation (the cache dir is
    created by whichever of `grid run` / `grid worker` gets there
    first). *)

val spawn_workers :
  shards:int -> argv:(worker_id:int -> string array) -> (int * Unix.process_status) list
(** Spawn one worker subprocess per shard (argv.(0) must be the
    executable path; stdio is inherited), wait for all of them, and
    return [(worker_id, status)] pairs in worker order. *)

(** {1 Merge} *)

val merge :
  dir:string ->
  Config.t ->
  variants:Experiments.variant list ->
  (Experiments.run list, string list) result
(** Deterministic table assembly: load every cell of the canonical
    enumeration from the cache ({e no} training); [Error ids] lists
    the cells that are missing or fail validation. The returned list
    is in {!Experiments.grid_keys} order whatever the completion
    order was. *)

val print_merged : Config.t -> variants:Experiments.variant list -> Experiments.run list -> unit
(** Render every artifact the selected variants can support (Table I
    needs Reference+Base+Full, Fig. 5 Base, Fig. 7 the five ablation
    variants, Table III Base+Full). Output contains no timings or
    timestamps, so it is byte-identical across shard counts,
    completion orders and crash/resume histories — enforced by
    [test/test_grid.ml] and the CI grid job. *)
