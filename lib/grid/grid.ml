module Config = Pnc_exp.Config
module E = Pnc_exp.Experiments
module Obs = Pnc_obs.Obs
module Json = Pnc_obs.Obs.Json
module Lease = Pnc_ckpt.Lease
module Table = Pnc_util.Table

(* Telemetry: claim-contention and fault-recovery counters (see
   docs/OBSERVABILITY.md). Bumped whether or not a sink is installed;
   the events around them are gated on [Obs.enabled]. *)
let computed_counter = Obs.Counter.make "grid.worker.computed"
let claim_conflicts_counter = Obs.Counter.make "grid.claim_conflicts"
let claims_reaped_counter = Obs.Counter.make "grid.claims_reaped"
let tmp_reaped_counter = Obs.Counter.make "grid.tmp_reaped"

module Proto = struct
  type cell = {
    cell_id : string;
    path : string;
    is_valid : unit -> bool;
    compute : unit -> unit;
  }

  let claim_path path = path ^ ".claim"

  (* [path ^ ".tmp.<pid>"] staging files (Ckpt.atomic_write) whose
     writer is dead are litter from an interrupted publish. Only the
     claim holder calls this, and live pids are left alone, so a
     healthy writer can never lose its staging bytes. *)
  let reap_tmp ~path =
    let dir = Filename.dirname path in
    let prefix = Filename.basename path ^ ".tmp." in
    let reaped = ref 0 in
    Array.iter
      (fun entry ->
        if String.length entry > String.length prefix
           && String.sub entry 0 (String.length prefix) = prefix
        then
          let suffix =
            String.sub entry (String.length prefix) (String.length entry - String.length prefix)
          in
          let dead =
            match int_of_string_opt suffix with
            | Some pid -> not (Lease.pid_alive pid)
            | None -> true (* unparsable writer: nothing to wait for *)
          in
          if dead then begin
            (try Sys.remove (Filename.concat dir entry) with Sys_error _ -> ());
            incr reaped;
            Obs.Counter.incr tmp_reaped_counter
          end)
      (try Sys.readdir dir with Sys_error _ -> [||]);
    !reaped

  (* One pass over the cell list; returns (all_valid, advanced). *)
  let pass ?lease_ttl ~progress ~owner ~computed cells =
    let advanced = ref false in
    List.iter
      (fun c ->
        if not (c.is_valid ()) then begin
          let claim = claim_path c.path in
          match Lease.try_acquire ?ttl:lease_ttl ~owner claim with
          | (`Acquired | `Reaped_and_acquired) as got ->
              if got = `Reaped_and_acquired then begin
                Obs.Counter.incr claims_reaped_counter;
                if Obs.enabled () then
                  Obs.emit "grid.claim.reaped" [ ("cell", Obs.Str c.cell_id); ("owner", Obs.Str owner) ]
              end;
              Fun.protect
                ~finally:(fun () -> Lease.release ~path:claim)
                (fun () ->
                  (* Recheck under the claim: a sibling may have
                     published between our validity probe and the
                     acquisition. *)
                  if not (c.is_valid ()) then begin
                    ignore (reap_tmp ~path:c.path);
                    progress (Printf.sprintf "[%s] computing %s" owner c.cell_id);
                    let attrs =
                      if Obs.enabled () then
                        [ ("cell", Obs.Str c.cell_id); ("owner", Obs.Str owner) ]
                      else []
                    in
                    Obs.Span.with_ ~attrs "grid.worker.cell" c.compute;
                    incr computed;
                    Obs.Counter.incr computed_counter
                  end);
              advanced := true
          | `Held l ->
              Obs.Counter.incr claim_conflicts_counter;
              if Obs.enabled () then
                Obs.emit "grid.claim.conflict"
                  [
                    ("cell", Obs.Str c.cell_id);
                    ("owner", Obs.Str owner);
                    ("holder", Obs.Str l.Lease.owner);
                    ("holder_pid", Obs.Int l.Lease.pid);
                  ]
        end)
      cells;
    (List.for_all (fun c -> c.is_valid ()) cells, !advanced)

  let work ?lease_ttl ?(poll_s = 0.25) ?(progress = fun _ -> ()) ~owner cells =
    let computed = ref 0 in
    let attrs =
      if Obs.enabled () then
        [ ("owner", Obs.Str owner); ("cells", Obs.Int (List.length cells)) ]
      else []
    in
    Obs.Span.with_ ~attrs "grid.worker" (fun () ->
        let rec loop () =
          let all_valid, advanced = pass ?lease_ttl ~progress ~owner ~computed cells in
          if not all_valid then begin
            (* Everything left is claimed by live siblings: poll until
               they publish — or die, at which point their claims go
               stale and the next pass reaps them. *)
            if not advanced then Unix.sleepf poll_s;
            loop ()
          end
        in
        loop ());
    !computed
end

(* The experiment-grid instance ------------------------------------------- *)

let cells_of_config ?batch_size ~dir cfg ~variants =
  List.map
    (fun (dataset, variant, seed) ->
      let path = E.cell_path ~dir cfg ~dataset ~variant ~seed in
      {
        Proto.cell_id = Printf.sprintf "%s/%s/seed%d" dataset (E.variant_tag variant) seed;
        path;
        is_valid = (fun () -> E.load_cell ~path cfg ~dataset ~variant ~seed <> None);
        compute =
          (fun () ->
            let r = E.train_run ?batch_size cfg ~dataset ~variant ~seed in
            E.save_cell ~path cfg r);
      })
    (E.grid_keys cfg ~variants)

let variants_of_string = function
  | "all" -> E.all_variants
  | "table1" -> E.table1_variants
  | "fig7" -> E.fig7_variants
  | s -> invalid_arg ("unknown variant set: " ^ s ^ " (expected all|table1|fig7)")

let variants_name variants =
  if variants = E.all_variants then "all"
  else if variants = E.table1_variants then "table1"
  else if variants = E.fig7_variants then "fig7"
  else String.concat "," (List.map E.variant_tag variants)

(* Status ------------------------------------------------------------------ *)

type state = Done | Claimed | Stale | Pending

let state_name = function
  | Done -> "done"
  | Claimed -> "claimed"
  | Stale -> "stale"
  | Pending -> "pending"

type cell_status = {
  dataset : string;
  variant : E.variant;
  seed : int;
  state : state;
  train_seconds : float option;
}

type status = {
  total : int;
  done_ : int;
  claimed : int;
  stale : int;
  pending : int;
  mean_cell_s : float option;
  eta_s : float option;
  cells : cell_status list;
}

let has_tmp_litter path =
  let dir = Filename.dirname path in
  let prefix = Filename.basename path ^ ".tmp." in
  Array.exists
    (fun entry ->
      String.length entry > String.length prefix
      && String.sub entry 0 (String.length prefix) = prefix)
    (try Sys.readdir dir with Sys_error _ -> [||])

let classify_cell ?lease_ttl ~dir cfg ~dataset ~variant ~seed =
  let path = E.cell_path ~dir cfg ~dataset ~variant ~seed in
  match E.load_cell ~path cfg ~dataset ~variant ~seed with
  | Some r -> (Done, Some r.E.train_seconds)
  | None -> (
      let claim = Proto.claim_path path in
      match Lease.read ~path:claim with
      | Some l when not (Lease.stale ?ttl:lease_ttl l) -> (Claimed, None)
      | Some _ -> (Stale, None) (* dead or hung worker's claim *)
      | None ->
          if Sys.file_exists claim then (Stale, None) (* corrupt claim *)
          else if Sys.file_exists path then (Stale, None) (* corrupt/truncated cell *)
          else if has_tmp_litter path then (Stale, None) (* interrupted publish *)
          else (Pending, None))

let classify ?lease_ttl ~dir cfg ~dataset ~variant ~seed =
  fst (classify_cell ?lease_ttl ~dir cfg ~dataset ~variant ~seed)

let status ?lease_ttl ~dir cfg ~variants =
  let cells =
    List.map
      (fun (dataset, variant, seed) ->
        let state, train_seconds = classify_cell ?lease_ttl ~dir cfg ~dataset ~variant ~seed in
        { dataset; variant; seed; state; train_seconds })
      (E.grid_keys cfg ~variants)
  in
  let count st = List.length (List.filter (fun c -> c.state = st) cells) in
  let done_ = count Done in
  let times = List.filter_map (fun c -> c.train_seconds) cells in
  let mean_cell_s =
    if times = [] then None
    else Some (List.fold_left ( +. ) 0. times /. float_of_int (List.length times))
  in
  let total = List.length cells in
  let eta_s = Option.map (fun m -> m *. float_of_int (total - done_)) mean_cell_s in
  {
    total;
    done_;
    claimed = count Claimed;
    stale = count Stale;
    pending = count Pending;
    mean_cell_s;
    eta_s;
    cells;
  }

let cell_id c = Printf.sprintf "%s/%s/seed%d" c.dataset (E.variant_tag c.variant) c.seed

let status_json_lines st =
  List.map
    (fun c ->
      let base =
        [
          ("event", Json.String "grid.cell.status");
          ("dataset", Json.String c.dataset);
          ("variant", Json.String (E.variant_tag c.variant));
          ("seed", Json.Num (float_of_int c.seed));
          ("state", Json.String (state_name c.state));
        ]
      in
      let timing =
        match c.train_seconds with Some s -> [ ("train_seconds", Json.Num s) ] | None -> []
      in
      Json.render (Json.Obj (base @ timing)))
    st.cells
  @ [
      Json.render
        (Json.Obj
           ([
              ("event", Json.String "grid.status");
              ("total", Json.Num (float_of_int st.total));
              ("done", Json.Num (float_of_int st.done_));
              ("claimed", Json.Num (float_of_int st.claimed));
              ("stale", Json.Num (float_of_int st.stale));
              ("pending", Json.Num (float_of_int st.pending));
            ]
           @ (match st.mean_cell_s with
             | Some m -> [ ("mean_cell_seconds", Json.Num m) ]
             | None -> [])
           @ match st.eta_s with Some e -> [ ("eta_seconds", Json.Num e) ] | None -> []));
    ]

let print_status st =
  Printf.printf "grid: %d cells — done %d, claimed %d, stale %d, pending %d\n" st.total st.done_
    st.claimed st.stale st.pending;
  (match (st.mean_cell_s, st.eta_s) with
  | Some m, Some eta when st.done_ < st.total ->
      Printf.printf "mean cell: %s; remaining work: ~%s sequential (divide by your shard count)\n"
        (Pnc_util.Timer.fmt_seconds m)
        (Pnc_util.Timer.fmt_seconds eta)
  | Some m, _ -> Printf.printf "mean cell: %s; grid complete\n" (Pnc_util.Timer.fmt_seconds m)
  | None, _ -> ());
  let interesting = List.filter (fun c -> c.state <> Done && c.state <> Pending) st.cells in
  if interesting <> [] then begin
    let t = Table.create ~header:[ "Cell"; "State" ] in
    List.iter (fun c -> Table.add_row t [ cell_id c; state_name c.state ]) interesting;
    Table.print t
  end

(* Orchestration ------------------------------------------------------------ *)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ when Sys.is_directory dir -> ()
  end

let spawn_workers ~shards ~argv =
  let pids =
    List.init shards (fun i ->
        let worker_id = i + 1 in
        let args = argv ~worker_id in
        (worker_id, Unix.create_process args.(0) args Unix.stdin Unix.stdout Unix.stderr))
  in
  List.map
    (fun (worker_id, pid) ->
      let _, st = Unix.waitpid [] pid in
      (worker_id, st))
    pids

(* Merge -------------------------------------------------------------------- *)

let merge ~dir cfg ~variants =
  let missing = ref [] in
  let runs =
    List.filter_map
      (fun (dataset, variant, seed) ->
        let path = E.cell_path ~dir cfg ~dataset ~variant ~seed in
        match E.load_cell ~path cfg ~dataset ~variant ~seed with
        | Some r -> Some r
        | None ->
            missing :=
              Printf.sprintf "%s/%s/seed%d" dataset (E.variant_tag variant) seed :: !missing;
            None)
      (E.grid_keys cfg ~variants)
  in
  if !missing = [] then Ok runs else Error (List.rev !missing)

let print_merged cfg ~variants runs =
  let has v = List.mem v variants in
  if has E.Reference && has E.Base && has E.Full then E.print_table1 (E.table1_of_grid cfg runs);
  if has E.Base then E.print_fig5 (E.fig5_of_grid cfg runs);
  if List.for_all has E.fig7_variants then E.print_fig7 (E.fig7_of_grid cfg runs);
  if has E.Base && has E.Full then E.print_table3 (E.table3_of_grid cfg runs)
