(** Long-lived model-serving daemon with dynamic micro-batching.

    This is the "millions of users" front-end over the batched no-grad
    inference engine: a TCP (HTTP/1.1 over [Unix]) daemon that admits
    concurrent JSON requests into a shared queue, coalesces them into
    blocks for {!Pnc_core.Model.logits_batch_t} (flushing when the
    queued row count reaches [max_batch] {e or} when the oldest queued
    request has waited [max_delay_s]), and fans the compute out over
    {!Pnc_util.Pool} worker domains.

    {b Parity contract.} Serving never changes a number: the logits
    returned over the wire are bit-identical (eps 0) to an offline
    [Model.logits_batch_t] call on the same checkpoint, whatever the
    flush size, micro-batch grouping, worker count or kernel block
    size. Micro-batching only groups rows, and every row's computation
    is independent of its neighbours (the blocked kernels guarantee
    this; see docs/BATCHING.md); floats travel as [%.17g] decimal,
    which round-trips every finite double exactly. Enforced by
    [test/test_serve.ml] and the load generator's parity check.

    {b Hot reload.} When [reload_every_s > 0], a background thread
    polls the checkpoint file (inode/mtime/size) and atomically swaps
    in a freshly loaded model on change ({!Pnc_core.Persist.load_model}
    — the checkpoint writer's temp+rename discipline means a reader
    never sees a partial file). Every response echoes the
    [model_version] (1 for the initial load, +1 per successful reload)
    that produced it; a failed reload keeps the old model serving.

    {b Shutdown.} SIGINT/SIGTERM (or {!stop}) stop admission, drain
    every in-flight request, answer it, then close connections and
    join all threads. SIGPIPE is ignored so a client hanging up
    mid-response never kills the daemon.

    {b Protocol} (see docs/SERVING.md for the full spec):
    - [POST /v1/logits]  body [{"series":[…]}] or [{"batch":[[…],…]}]
      → [{"model_version":v,"logits":…}] (a row per input row)
    - [POST /v1/predict] same bodies → [{"model_version":v,"classes":…}]
    - [GET /healthz]     → [{"status":"ok","model":…,"model_version":v}]
    - [GET /metrics]     → current {!Pnc_obs.Obs} metrics as one JSON
      object.

    Malformed input — bad HTTP framing, bad JSON (including invalid
    [\u] escapes), wrong shapes, non-finite numbers, oversized bodies —
    is answered with a 4xx JSON error and never crashes the daemon. *)

type config = {
  host : string;  (** bind address (default ["127.0.0.1"]) *)
  port : int;  (** TCP port; [0] picks an ephemeral port (see {!port}) *)
  max_batch : int;  (** flush the queue at this many coalesced rows *)
  max_delay_s : float;
      (** flush when the oldest queued request has waited this long,
          even if the batch is not full — the latency bound under light
          load *)
  batch_size : int option;
      (** kernel block size forwarded to [Model.logits_batch_t]
          ([None] = whole coalesced block; a pure throughput knob) *)
  precision : Pnc_core.Batch.precision;
      (** activation tier for batch compute (default [`Exact]); the
          tier is echoed as a ["precision"] field in every /v1 response
          and in /healthz so clients can tell a [`Fast] deployment's
          logits carry the ≤1e-7 approximation *)
  pool_size : int;
      (** worker domains for batch compute ([<= 1] computes inline on
          the batcher thread) *)
  reload_every_s : float;
      (** checkpoint poll period for hot reload ([<= 0] disables it) *)
  max_body : int;  (** request body size cap, bytes *)
  max_rows : int;  (** rows accepted per single request *)
}

val default_config : config
(** [127.0.0.1:8080], [max_batch = 64], [max_delay_s = 2e-3],
    [batch_size = None], [precision = `Exact], [pool_size = 0],
    [reload_every_s = 0.5], [max_body = 4 MiB], [max_rows = 1024]. *)

type t

val create : ?config:config -> checkpoint:string -> unit -> (t, string) result
(** Load the model from [checkpoint] ({!Pnc_core.Persist.load_model};
    kind ["model"] or ["train"]), bind and listen. No thread is started
    until {!run}. [Error] carries a printable reason (unreadable
    checkpoint, bind failure). *)

val port : t -> int
(** The bound port — the kernel-assigned one when [config.port = 0]. *)

val model_version : t -> int
(** Version of the currently served model (1 after {!create}). *)

val model_label : t -> string

val run : ?handle_signals:bool -> t -> unit
(** Serve until {!stop} is called (or, with [handle_signals], until
    SIGINT/SIGTERM). Blocks the calling thread: it becomes the accept
    loop, with one handler thread per connection, one batcher thread
    and (if enabled) one reload thread. Returns after the graceful
    drain completes; every thread is joined and every socket closed.
    [handle_signals] (default [true]) also ignores SIGPIPE and maps
    SIGINT/SIGTERM to {!stop}; pass [false] when embedding the server
    in a test harness (SIGPIPE is still ignored). *)

val stop : t -> unit
(** Request a graceful shutdown: stop accepting, answer everything
    in flight, then return from {!run}. Safe to call from any thread
    and idempotent. *)

(** {1 Client}

    A minimal blocking HTTP/1.1 client for the protocol above — the
    load generator, the differential tests and the CI smoke job all
    speak to the daemon through this, so wire-level behaviour is
    exercised by every consumer. *)

module Client : sig
  type conn

  val connect : ?host:string -> port:int -> unit -> conn
  (** Open one keep-alive connection. Raises [Unix.Unix_error] when the
      daemon is unreachable. *)

  val close : conn -> unit

  type response = { status : int; body : string }

  val request : conn -> meth:string -> path:string -> ?body:string -> unit -> response
  (** One request/response exchange on the connection. Raises
      [Failure] on a malformed response and [Unix.Unix_error] /
      [End_of_file] on transport errors. *)

  val logits : conn -> float array -> (int * float array, string) result
  (** [logits c series] posts [{"series":…}] and returns
      [(model_version, logits)]. [Error] carries the HTTP error body
      for non-200 answers. *)

  val logits_batch : conn -> float array array -> (int * float array array, string) result
  (** Multi-row twin of {!logits} ([{"batch":…}]; one logits row per
      input row, all computed under one model version). *)

  val predict : conn -> float array -> (int * int, string) result
  (** [(model_version, argmax class)]. *)

  val health : conn -> (int * string, string) result
  (** [(model_version, model label)] from [GET /healthz]. *)
end
