(* Model-serving daemon: HTTP/1.1 over Unix sockets, an admission
   queue that coalesces concurrent requests into micro-batches for
   Model.logits_batch_t, worker domains from Pnc_util.Pool, checkpoint
   hot reload, graceful drain on shutdown. See serve.mli and
   docs/SERVING.md for the contracts.

   Threading model: the caller of [run] is the accept loop; each
   connection gets one systhread (they spend their life blocked in
   socket I/O or waiting on a reply mailbox, so hundreds are fine);
   one batcher thread owns the admission queue's consumer side; one
   optional reload thread polls the checkpoint. Batch compute happens
   on the batcher thread, or fanned out across Pool worker domains
   when [pool_size > 1] — row-chunking a batch is bit-identical to
   computing it whole (the batched-kernel parity contract), so the
   fan-out never changes a served number. *)

module Model = Pnc_core.Model
module Persist = Pnc_core.Persist
module Tensor = Pnc_tensor.Tensor
module Pool = Pnc_util.Pool
module Obs = Pnc_obs.Obs
module Clock = Pnc_obs.Clock
module Json = Pnc_obs.Obs.Json

(* Metrics (registered once per process at module init). *)
let requests_c = Obs.Counter.make "serve.requests"
let rows_c = Obs.Counter.make "serve.rows"
let http_errors_c = Obs.Counter.make "serve.http_errors"
let batches_c = Obs.Counter.make "serve.batches"
let reloads_c = Obs.Counter.make "serve.reloads"
let reload_failures_c = Obs.Counter.make "serve.reload_failures"
let connections_c = Obs.Counter.make "serve.connections"
let latency_h = Obs.Histogram.make "serve.latency_seconds"
let queue_wait_h = Obs.Histogram.make "serve.queue_wait_seconds"
let batch_fill_h = Obs.Histogram.make "serve.batch_fill"

type config = {
  host : string;
  port : int;
  max_batch : int;
  max_delay_s : float;
  batch_size : int option;
  precision : Pnc_core.Batch.precision;
  pool_size : int;
  reload_every_s : float;
  max_body : int;
  max_rows : int;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 8080;
    max_batch = 64;
    max_delay_s = 2e-3;
    batch_size = None;
    precision = `Exact;
    pool_size = 0;
    reload_every_s = 0.5;
    max_body = 4 * 1024 * 1024;
    max_rows = 1024;
  }

(* Admission queue entries. A request is one or more equal-length rows
   plus a mailbox the batcher fulfills; the handler thread blocks on
   the mailbox condition until its reply arrives. *)

type reply =
  | R_ok of { version : int; logits : float array array }
  | R_shutdown

type mailbox = {
  mb_mu : Mutex.t;
  mb_cv : Condition.t;
  mutable mb_reply : reply option;
}

type pending = {
  p_rows : float array array;
  p_cols : int;
  p_enq_t : float;
  p_mb : mailbox;
}

type ckpt_sig = { cs_ino : int; cs_mtime : float; cs_size : int }

type t = {
  cfg : config;
  ckpt_path : string;
  listen_fd : Unix.file_descr;
  actual_port : int;
  started : float;
  (* current model; the mutex orders reload swaps against batcher
     snapshots (a snapshot is two field reads, kept atomic w.r.t. the
     swap so a batch never pairs new params with an old version). *)
  model_mu : Mutex.t;
  mutable model : Model.t;
  mutable version : int;
  mutable ckpt_sig : ckpt_sig option;
  (* admission queue *)
  q_mu : Mutex.t;
  q_cv : Condition.t;
  q : pending Queue.t;
  mutable q_rows : int;
  inflight : int Atomic.t; (* rows admitted, response not yet written *)
  pool : Pool.t option;
  stop_flag : bool Atomic.t;
  (* connection registry, for kicking idle keep-alive readers at stop *)
  conn_mu : Mutex.t;
  mutable conns : Unix.file_descr list;
  mutable handler_threads : Thread.t list;
}

let port t = t.actual_port
let model_label t = Model.label t.model

let model_version t =
  Mutex.lock t.model_mu;
  let v = t.version in
  Mutex.unlock t.model_mu;
  v

let stat_sig path =
  match Unix.stat path with
  | st -> Some { cs_ino = st.Unix.st_ino; cs_mtime = st.Unix.st_mtime; cs_size = st.Unix.st_size }
  | exception Unix.Unix_error _ -> None

let create ?(config = default_config) ~checkpoint () =
  match Persist.load_model ~path:checkpoint with
  | Error e ->
      Error
        (Printf.sprintf "cannot load model from %s: %s" checkpoint
           (Pnc_ckpt.Ckpt.error_to_string e))
  | Ok model -> (
      match
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        (try
           Unix.setsockopt fd Unix.SO_REUSEADDR true;
           Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string config.host, config.port));
           Unix.listen fd 512
         with e ->
           (try Unix.close fd with _ -> ());
           raise e);
        fd
      with
      | exception Unix.Unix_error (err, _, _) ->
          Error
            (Printf.sprintf "cannot bind %s:%d: %s" config.host config.port
               (Unix.error_message err))
      | exception Failure msg -> Error (Printf.sprintf "cannot bind %s: %s" config.host msg)
      | fd ->
          let actual_port =
            match Unix.getsockname fd with Unix.ADDR_INET (_, p) -> p | _ -> config.port
          in
          let pool =
            if config.pool_size > 1 then Some (Pool.create ~size:config.pool_size ()) else None
          in
          Ok
            {
              cfg = config;
              ckpt_path = checkpoint;
              listen_fd = fd;
              actual_port;
              started = Clock.now ();
              model_mu = Mutex.create ();
              model;
              version = 1;
              ckpt_sig = stat_sig checkpoint;
              q_mu = Mutex.create ();
              q_cv = Condition.create ();
              q = Queue.create ();
              q_rows = 0;
              inflight = Atomic.make 0;
              pool;
              stop_flag = Atomic.make false;
              conn_mu = Mutex.create ();
              conns = [];
              handler_threads = [];
            })

(* HTTP plumbing ---------------------------------------------------------- *)

(* Shared by the server side and [Client]: buffered reads off a socket
   with a residue string, so pipelined requests and keep-alive reuse
   just work. *)
module Http = struct
  type bufconn = { fd : Unix.file_descr; mutable residue : string }

  let max_head = 16 * 1024

  exception Closed
  exception Bad of string

  let find_sub s sub from =
    let n = String.length s and m = String.length sub in
    let rec go i = if i + m > n then None else if String.sub s i m = sub then Some i else go (i + 1) in
    go from

  let read_more c =
    let buf = Bytes.create 8192 in
    let k = Unix.read c.fd buf 0 8192 in
    if k = 0 then raise Closed;
    c.residue <- c.residue ^ Bytes.sub_string buf 0 k

  (* Read up to and including the blank line; returns the head (without
     the terminating CRLFCRLF), leaving the rest in the residue. *)
  let read_head c =
    let rec go scanned =
      match find_sub c.residue "\r\n\r\n" (max 0 (scanned - 3)) with
      | Some i ->
          let head = String.sub c.residue 0 i in
          c.residue <- String.sub c.residue (i + 4) (String.length c.residue - i - 4);
          head
      | None ->
          if String.length c.residue > max_head then raise (Bad "headers too large");
          let len = String.length c.residue in
          read_more c;
          go len
    in
    go 0

  let read_n c n =
    while String.length c.residue < n do
      read_more c
    done;
    let body = String.sub c.residue 0 n in
    c.residue <- String.sub c.residue n (String.length c.residue - n);
    body

  let split_lines head = String.split_on_char '\n' head |> List.map (fun l ->
      let l = if String.length l > 0 && l.[String.length l - 1] = '\r' then
          String.sub l 0 (String.length l - 1) else l in
      l)

  let parse_headers lines =
    List.filter_map
      (fun line ->
        match String.index_opt line ':' with
        | None -> None
        | Some i ->
            let k = String.lowercase_ascii (String.trim (String.sub line 0 i)) in
            let v = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
            Some (k, v))
      lines

  let header hs k = List.assoc_opt k hs

  let write_all fd s =
    let b = Bytes.of_string s in
    let n = Bytes.length b in
    let off = ref 0 in
    while !off < n do
      off := !off + Unix.write fd b !off (n - !off)
    done

  let status_text = function
    | 200 -> "OK"
    | 400 -> "Bad Request"
    | 404 -> "Not Found"
    | 405 -> "Method Not Allowed"
    | 413 -> "Payload Too Large"
    | 503 -> "Service Unavailable"
    | _ -> "Error"

  let response ~status ~keep_alive body =
    Printf.sprintf
      "HTTP/1.1 %d %s\r\nContent-Type: application/json\r\nContent-Length: %d\r\nConnection: \
       %s\r\n\r\n%s"
      status (status_text status) (String.length body)
      (if keep_alive then "keep-alive" else "close")
      body
end

type request = {
  meth : string;
  path : string;
  http11 : bool;
  headers : (string * string) list;
  body : string;
}

(* Read one request off the connection. [Http.Closed] propagates (end
   of keep-alive); framing errors raise [Http.Bad]. *)
let read_request cfg (c : Http.bufconn) =
  let head = Http.read_head c in
  match Http.split_lines head with
  | [] -> raise (Http.Bad "empty request")
  | request_line :: header_lines -> (
      match String.split_on_char ' ' request_line with
      | [ meth; path; version ]
        when version = "HTTP/1.1" || version = "HTTP/1.0" ->
          let headers = Http.parse_headers header_lines in
          let body =
            match Http.header headers "content-length" with
            | None -> ""
            | Some v -> (
                match int_of_string_opt (String.trim v) with
                | Some n when n >= 0 ->
                    if n > cfg.max_body then raise (Http.Bad "body too large")
                    else Http.read_n c n
                | _ -> raise (Http.Bad "malformed Content-Length"))
          in
          let path = match String.index_opt path '?' with
            | Some i -> String.sub path 0 i
            | None -> path
          in
          { meth; path; http11 = version = "HTTP/1.1"; headers; body }
      | _ -> raise (Http.Bad "malformed request line"))

(* JSON bodies ------------------------------------------------------------ *)

let json_num = function
  | Json.Num v when Float.is_finite v -> v
  | Json.Num _ -> raise (Http.Bad "non-finite number in input")
  | _ -> raise (Http.Bad "expected a number")

let row_of_json = function
  | Json.List [] -> raise (Http.Bad "empty series")
  | Json.List xs -> Array.of_list (List.map json_num xs)
  | _ -> raise (Http.Bad "expected an array of numbers")

(* Decode {"series":[…]} or {"batch":[[…],…]} into rows. Raises
   [Http.Bad] on every malformed shape — a served body must never crash
   the daemon, so everything funnels into a 400. *)
let rows_of_body cfg j =
  match (Json.member "series" j, Json.member "batch" j) with
  | Some s, None -> [| row_of_json s |]
  | None, Some (Json.List []) -> raise (Http.Bad "empty batch")
  | None, Some (Json.List rows) ->
      if List.length rows > cfg.max_rows then raise (Http.Bad "too many rows in one request");
      let rows = Array.of_list (List.map row_of_json rows) in
      let cols = Array.length rows.(0) in
      Array.iter
        (fun r -> if Array.length r <> cols then raise (Http.Bad "ragged batch rows"))
        rows;
      rows
  | None, Some _ -> raise (Http.Bad "batch must be an array of rows")
  | _ -> raise (Http.Bad "body must have exactly one of \"series\" or \"batch\"")

let json_of_row r = Json.List (Array.to_list (Array.map (fun v -> Json.Num v) r))

let error_body msg = Json.render (Json.Obj [ ("error", Json.String msg) ])

(* Admission -------------------------------------------------------------- *)

(* Enqueue rows and block until the batcher replies. The stop check and
   the push share the queue mutex, and the batcher exits only after a
   final is-empty check under the same mutex with the stop flag set, so
   a request is either admitted and answered, or rejected — never
   admitted and dropped. *)
let submit t rows =
  let mb = { mb_mu = Mutex.create (); mb_cv = Condition.create (); mb_reply = None } in
  let p = { p_rows = rows; p_cols = Array.length rows.(0); p_enq_t = Clock.now (); p_mb = mb } in
  Mutex.lock t.q_mu;
  if Atomic.get t.stop_flag then begin
    Mutex.unlock t.q_mu;
    R_shutdown
  end
  else begin
    Queue.push p t.q;
    t.q_rows <- t.q_rows + Array.length rows;
    Atomic.fetch_and_add t.inflight (Array.length rows) |> ignore;
    Condition.signal t.q_cv;
    Mutex.unlock t.q_mu;
    Mutex.lock mb.mb_mu;
    while mb.mb_reply = None do
      Condition.wait mb.mb_cv mb.mb_mu
    done;
    let r = Option.get mb.mb_reply in
    Mutex.unlock mb.mb_mu;
    r
  end

let fulfill (p : pending) reply =
  Mutex.lock p.p_mb.mb_mu;
  p.p_mb.mb_reply <- Some reply;
  Condition.signal p.p_mb.mb_cv;
  Mutex.unlock p.p_mb.mb_mu

(* Batcher ---------------------------------------------------------------- *)

(* Pop a maximal run of equal-width requests from the queue head, up to
   [max_batch] coalesced rows (the first request is always taken whole,
   even if it alone exceeds the threshold — logits_batch_t chunks
   internally). Caller holds [q_mu]. *)
let take_group t =
  match Queue.peek_opt t.q with
  | None -> []
  | Some head ->
      let cols = head.p_cols in
      let acc = ref [] in
      let rows = ref 0 in
      let stop = ref false in
      while not !stop do
        match Queue.peek_opt t.q with
        | Some p
          when p.p_cols = cols
               && (!rows = 0 || !rows + Array.length p.p_rows <= t.cfg.max_batch) ->
            ignore (Queue.pop t.q);
            t.q_rows <- t.q_rows - Array.length p.p_rows;
            rows := !rows + Array.length p.p_rows;
            acc := p :: !acc
        | _ -> stop := true
      done;
      List.rev !acc

(* Chunk bounds for fanning one coalesced batch across pool workers:
   contiguous row ranges, as even as possible. *)
let chunk_bounds ~rows ~workers =
  let w = min workers rows in
  let base = rows / w and extra = rows mod w in
  Array.init w (fun i ->
      let len = base + if i < extra then 1 else 0 in
      let start = (i * base) + min i extra in
      (start, len))

let compute_logits t model x =
  let rows = Tensor.rows x in
  match t.pool with
  | Some pool when rows >= 2 ->
      (* Row-chunking is bit-identical to the whole-batch call: each
         output row depends only on its own input row and the model
         (kernel parity contract, docs/BATCHING.md). *)
      let bounds = chunk_bounds ~rows ~workers:(Pool.size pool) in
      let parts =
        Pool.init pool ~n:(Array.length bounds) (fun i ->
            let start, len = bounds.(i) in
            Model.logits_batch_t ?batch_size:t.cfg.batch_size
              ~precision:t.cfg.precision model
              (Tensor.rows_view x ~row:start ~len))
      in
      Array.concat
        (Array.to_list
           (Array.map
              (fun part -> Array.init (Tensor.rows part) (fun i -> Tensor.row part i))
              parts))
  | _ ->
      let l =
        Model.logits_batch_t ?batch_size:t.cfg.batch_size ~precision:t.cfg.precision
          model x
      in
      Array.init (Tensor.rows l) (fun i -> Tensor.row l i)

let flush t group =
  let t0 = Clock.now () in
  Mutex.lock t.model_mu;
  let model = t.model and version = t.version in
  Mutex.unlock t.model_mu;
  let all_rows = Array.concat (List.map (fun p -> p.p_rows) group) in
  let n = Array.length all_rows in
  let x = Tensor.of_rows all_rows in
  let logit_rows = compute_logits t model x in
  let idx = ref 0 in
  List.iter
    (fun p ->
      let k = Array.length p.p_rows in
      let out = Array.sub logit_rows !idx k in
      idx := !idx + k;
      Obs.Histogram.observe queue_wait_h (t0 -. p.p_enq_t);
      fulfill p (R_ok { version; logits = out }))
    group;
  Obs.Counter.incr batches_c;
  Obs.Counter.add rows_c n;
  Obs.Histogram.observe batch_fill_h (float_of_int n);
  if Obs.enabled () then
    Obs.emit "serve.batch"
      [
        ("rows", Obs.Int n);
        ("requests", Obs.Int (List.length group));
        ("cols", Obs.Int (Tensor.cols x));
        ("model_version", Obs.Int version);
        ("compute_s", Obs.Float (Clock.elapsed t0));
      ]

let batcher t =
  let rec main () =
    Mutex.lock t.q_mu;
    while Queue.is_empty t.q && not (Atomic.get t.stop_flag) do
      Condition.wait t.q_cv t.q_mu
    done;
    if Queue.is_empty t.q then Mutex.unlock t.q_mu (* stopping, drained *)
    else begin
      let head = Queue.peek t.q in
      let deadline = head.p_enq_t +. t.cfg.max_delay_s in
      (* Fill window: flush at the row threshold or the deadline,
         whichever first. Polled in sub-ms slices — Condition has no
         timed wait; the slice bounds added latency at ~0.3 ms. *)
      let rec wait_fill () =
        if t.q_rows < t.cfg.max_batch && not (Atomic.get t.stop_flag) then begin
          let now = Clock.now () in
          if now < deadline then begin
            Mutex.unlock t.q_mu;
            Thread.delay (Float.min (deadline -. now) 3e-4);
            Mutex.lock t.q_mu;
            wait_fill ()
          end
        end
      in
      wait_fill ();
      let group = take_group t in
      Mutex.unlock t.q_mu;
      (match group with [] -> () | g -> flush t g);
      main ()
    end
  in
  main ()

(* Hot reload ------------------------------------------------------------- *)

let try_reload t =
  match stat_sig t.ckpt_path with
  | None -> () (* transiently missing (mid-rename): keep serving *)
  | Some sg when Some sg = t.ckpt_sig -> ()
  | Some sg -> (
      match Persist.load_model ~path:t.ckpt_path with
      | Ok m ->
          Mutex.lock t.model_mu;
          t.model <- m;
          t.version <- t.version + 1;
          t.ckpt_sig <- Some sg;
          let v = t.version in
          Mutex.unlock t.model_mu;
          Obs.Counter.incr reloads_c;
          if Obs.enabled () then
            Obs.emit "serve.reload"
              [ ("ok", Obs.Bool true); ("model_version", Obs.Int v) ];
          Printf.eprintf "[serve] reloaded %s (model version %d)\n%!" t.ckpt_path v
      | Error e ->
          (* Remember the rejected signature so one bad file logs once,
             and keep the old model serving. *)
          t.ckpt_sig <- Some sg;
          Obs.Counter.incr reload_failures_c;
          if Obs.enabled () then
            Obs.emit "serve.reload" [ ("ok", Obs.Bool false) ];
          Printf.eprintf "[serve] reload of %s failed (%s); keeping model version %d\n%!"
            t.ckpt_path
            (Pnc_ckpt.Ckpt.error_to_string e)
            (model_version t))

let reloader t =
  let slice = 0.05 in
  while not (Atomic.get t.stop_flag) do
    (* Sleep [reload_every_s] in small slices so stop is prompt. *)
    let until = Clock.now () +. t.cfg.reload_every_s in
    while (not (Atomic.get t.stop_flag)) && Clock.now () < until do
      Thread.delay slice
    done;
    if not (Atomic.get t.stop_flag) then try_reload t
  done

(* Request routing -------------------------------------------------------- *)

let healthz_body t =
  Mutex.lock t.model_mu;
  let v = t.version and label = Model.label t.model in
  Mutex.unlock t.model_mu;
  Json.render
    (Json.Obj
       [
         ("status", Json.String "ok");
         ("model", Json.String label);
         ("model_version", Json.Num (float_of_int v));
         ("precision", Json.String (Pnc_core.Batch.precision_name t.cfg.precision));
         ("uptime_s", Json.Num (Clock.now () -. t.started));
       ])

let metrics_body t =
  let field_to_json = function
    | Obs.Bool b -> Json.Bool b
    | Obs.Int n -> Json.Num (float_of_int n)
    | Obs.Float v -> if Float.is_finite v then Json.Num v else Json.Null
    | Obs.Str s -> Json.String s
  in
  let metrics =
    List.map
      (fun (name, fields) ->
        (name, Json.Obj (List.map (fun (k, v) -> (k, field_to_json v)) fields)))
      (Obs.metrics_snapshot ())
  in
  Json.render
    (Json.Obj
       (("model_version", Json.Num (float_of_int (model_version t))) :: metrics))

(* Handle one parsed request; returns (status, body, admitted) where
   [admitted] is the number of in-flight rows the handler must release
   after the response bytes are written (the graceful-drain barrier in
   [run] waits for that release). *)
let route t req =
  match (req.meth, req.path) with
  | "GET", "/healthz" -> (200, healthz_body t, 0)
  | "GET", "/metrics" -> (200, metrics_body t, 0)
  | "POST", ("/v1/logits" | "/v1/predict") -> (
      let body_json =
        match Json.parse req.body with
        | j -> j
        | exception Failure msg -> raise (Http.Bad msg)
      in
      let single = Json.member "series" body_json <> None in
      let rows = rows_of_body t.cfg body_json in
      match submit t rows with
      | R_shutdown -> (503, error_body "shutting down", 0)
      | R_ok { version; logits } ->
          let version_field = ("model_version", Json.Num (float_of_int version)) in
          (* Echo the tier so clients of a `Fast deployment can tell
             their logits carry the ≤1e-7 approximation. *)
          let precision_field =
            ("precision", Json.String (Pnc_core.Batch.precision_name t.cfg.precision))
          in
          let body =
            if req.path = "/v1/logits" then
              let payload =
                if single then json_of_row logits.(0)
                else Json.List (Array.to_list (Array.map json_of_row logits))
              in
              Json.render (Json.Obj [ version_field; precision_field; ("logits", payload) ])
            else
              let classes =
                Array.map
                  (fun row ->
                    let best = ref 0 in
                    Array.iteri (fun i v -> if v > row.(!best) then best := i) row;
                    Json.Num (float_of_int !best))
                  logits
              in
              let payload =
                if single then classes.(0) else Json.List (Array.to_list classes)
              in
              Json.render (Json.Obj [ version_field; precision_field; ("classes", payload) ])
          in
          (200, body, Array.length rows))
  | _, ("/healthz" | "/metrics" | "/v1/logits" | "/v1/predict") ->
      (405, error_body "method not allowed", 0)
  | _ -> (404, error_body "not found", 0)

let deregister_conn t fd =
  Mutex.lock t.conn_mu;
  t.conns <- List.filter (fun f -> f <> fd) t.conns;
  Mutex.unlock t.conn_mu

let handle_conn t fd =
  let c = { Http.fd; residue = "" } in
  Obs.Counter.incr connections_c;
  let rec loop () =
    match read_request t.cfg c with
    | exception Http.Closed -> ()
    | exception Http.Bad msg ->
        (* Framing is broken: answer and drop the connection (we cannot
           trust the stream position any more). *)
        Obs.Counter.incr http_errors_c;
        Http.write_all fd (Http.response ~status:400 ~keep_alive:false (error_body msg))
    | req ->
        Obs.Counter.incr requests_c;
        let t0 = Clock.now () in
        let status, body, admitted =
          match route t req with
          | sb -> sb
          | exception Http.Bad msg ->
              Obs.Counter.incr http_errors_c;
              (400, error_body msg, 0)
        in
        let keep_alive =
          req.http11
          && Http.header req.headers "connection" <> Some "close"
          && status <> 503
          && not (Atomic.get t.stop_flag)
        in
        let write_result =
          match Http.write_all fd (Http.response ~status ~keep_alive body) with
          | () -> Ok ()
          | exception e -> Error e
        in
        (* Release admitted-row accounting only after the response
           write attempt: [run]'s graceful-drain barrier waits for
           in-flight rows to reach zero before it starts closing
           sockets, so a computed reply always gets its write. *)
        if admitted > 0 then ignore (Atomic.fetch_and_add t.inflight (-admitted));
        (match write_result with Error e -> raise e | Ok () -> ());
        Obs.Histogram.observe latency_h (Clock.elapsed t0);
        if keep_alive then loop ()
  in
  (try loop () with
  | Unix.Unix_error _ | End_of_file | Sys_error _ -> ());
  deregister_conn t fd;
  (try Unix.close fd with Unix.Unix_error _ -> ())

let stop t =
  Atomic.set t.stop_flag true;
  Mutex.lock t.q_mu;
  Condition.broadcast t.q_cv;
  Mutex.unlock t.q_mu

let run ?(handle_signals = true) t =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  if handle_signals then begin
    (* The handler only flips the atomic flag: the accept loop below
       polls it and performs the actual shutdown from a normal thread
       context (no locking inside a signal handler). *)
    let h = Sys.Signal_handle (fun _ -> Atomic.set t.stop_flag true) in
    Sys.set_signal Sys.sigint h;
    Sys.set_signal Sys.sigterm h
  end;
  let batcher_thread = Thread.create batcher t in
  let reload_thread =
    if t.cfg.reload_every_s > 0. then Some (Thread.create reloader t) else None
  in
  if Obs.enabled () then
    Obs.emit "serve.start"
      [
        ("port", Obs.Int t.actual_port);
        ("max_batch", Obs.Int t.cfg.max_batch);
        ("max_delay_s", Obs.Float t.cfg.max_delay_s);
        ("pool_size", Obs.Int t.cfg.pool_size);
      ];
  (* Accept loop: select with a short timeout so a signal-flipped stop
     flag is noticed promptly. *)
  while not (Atomic.get t.stop_flag) do
    match Unix.select [ t.listen_fd ] [] [] 0.05 with
    | [ _ ], _, _ -> (
        match Unix.accept t.listen_fd with
        | fd, _ ->
            Unix.setsockopt fd Unix.TCP_NODELAY true;
            Mutex.lock t.conn_mu;
            t.conns <- fd :: t.conns;
            t.handler_threads <- Thread.create (handle_conn t) fd :: t.handler_threads;
            Mutex.unlock t.conn_mu
        | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN), _, _) -> ())
    | _ -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  (* Graceful drain: stop admission (submit rejects once the flag is
     up), answer everything already admitted, then close. *)
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  let deadline = Clock.now () +. 10. in
  while Atomic.get t.inflight > 0 && Clock.now () < deadline do
    Thread.delay 5e-3
  done;
  Mutex.lock t.q_mu;
  Condition.broadcast t.q_cv;
  Mutex.unlock t.q_mu;
  Thread.join batcher_thread;
  Option.iter Thread.join reload_thread;
  (* Kick idle keep-alive readers off their blocking reads, then join
     every handler. *)
  Mutex.lock t.conn_mu;
  let fds = t.conns and threads = t.handler_threads in
  Mutex.unlock t.conn_mu;
  List.iter (fun fd -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()) fds;
  List.iter Thread.join threads;
  Option.iter Pool.shutdown t.pool;
  if Obs.enabled () then
    Obs.emit "serve.stop"
      [
        ("requests", Obs.Int (Obs.Counter.value requests_c));
        ("uptime_s", Obs.Float (Clock.now () -. t.started));
      ]

(* Client ----------------------------------------------------------------- *)

module Client = struct
  type conn = Http.bufconn

  let connect ?(host = "127.0.0.1") ~port () =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try
       Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
       Unix.setsockopt fd Unix.TCP_NODELAY true
     with e ->
       (try Unix.close fd with _ -> ());
       raise e);
    { Http.fd; residue = "" }

  let close (c : conn) = try Unix.close c.Http.fd with Unix.Unix_error _ -> ()

  type response = { status : int; body : string }

  let request (c : conn) ~meth ~path ?(body = "") () =
    let has_body = body <> "" || meth = "POST" in
    Http.write_all c.Http.fd
      (Printf.sprintf "%s %s HTTP/1.1\r\nHost: localhost%s\r\n\r\n%s" meth path
         (if has_body then Printf.sprintf "\r\nContent-Length: %d" (String.length body) else "")
         body);
    let head = try Http.read_head c with Http.Closed -> raise End_of_file in
    match Http.split_lines head with
    | status_line :: header_lines -> (
        match String.split_on_char ' ' status_line with
        | _http :: code :: _ -> (
            match int_of_string_opt code with
            | None -> failwith ("Client: malformed status line: " ^ status_line)
            | Some status ->
                let headers = Http.parse_headers header_lines in
                let body =
                  match Http.header headers "content-length" with
                  | Some v -> Http.read_n c (int_of_string (String.trim v))
                  | None -> ""
                in
                { status; body })
        | _ -> failwith ("Client: malformed status line: " ^ status_line))
    | [] -> failwith "Client: empty response"

  let post_json c ~path j =
    let { status; body } = request c ~meth:"POST" ~path ~body:(Json.render j) () in
    if status <> 200 then Error (Printf.sprintf "HTTP %d: %s" status body)
    else
      match Json.parse body with
      | j -> Ok j
      | exception Failure msg -> Error ("malformed response body: " ^ msg)

  let version_of j =
    match Json.member "model_version" j with
    | Some v -> Json.to_int v
    | None -> failwith "response without model_version"

  let floats_of = function
    | Json.List xs -> Array.of_list (List.map Json.to_float xs)
    | _ -> failwith "expected an array of numbers"

  let logits c series =
    let j = Json.Obj [ ("series", Json.List (Array.to_list (Array.map (fun v -> Json.Num v) series))) ] in
    match post_json c ~path:"/v1/logits" j with
    | Error _ as e -> e
    | Ok r -> (
        match Json.member "logits" r with
        | Some l -> Ok (version_of r, floats_of l)
        | None -> Error "response without logits")

  let logits_batch c rows =
    let j =
      Json.Obj
        [
          ( "batch",
            Json.List
              (Array.to_list
                 (Array.map
                    (fun r -> Json.List (Array.to_list (Array.map (fun v -> Json.Num v) r)))
                    rows)) );
        ]
    in
    match post_json c ~path:"/v1/logits" j with
    | Error _ as e -> e
    | Ok r -> (
        match Json.member "logits" r with
        | Some (Json.List ls) ->
            Ok (version_of r, Array.of_list (List.map floats_of ls))
        | _ -> Error "response without batch logits")

  let predict c series =
    let j = Json.Obj [ ("series", Json.List (Array.to_list (Array.map (fun v -> Json.Num v) series))) ] in
    match post_json c ~path:"/v1/predict" j with
    | Error _ as e -> e
    | Ok r -> (
        match Json.member "classes" r with
        | Some cls -> Ok (version_of r, Json.to_int cls)
        | None -> Error "response without classes")

  let health c =
    let { status; body } = request c ~meth:"GET" ~path:"/healthz" () in
    if status <> 200 then Error (Printf.sprintf "HTTP %d: %s" status body)
    else
      match Json.parse body with
      | j -> (
          match (Json.member "model_version" j, Json.member "model" j) with
          | Some v, Some m -> Ok (Json.to_int v, Json.to_string m)
          | _ -> Error "malformed healthz body")
      | exception Failure msg -> Error msg
end
