(* Tiny property-based testing framework over the repo's own
   deterministic [Pnc_util.Rng].

   Why not QCheck alone: the existing ad-hoc loops ("run 50 random
   models") and the QCheck-backed gradient properties both funnel a
   single random integer into a seed and rebuild the case from it,
   which makes generators second-class (no sized shapes, no shrinking
   of the actual structure) and scatters the replay story across
   hand-rolled [Printf]s. Qgen keeps the repo's explicit-seed
   discipline — every case draws from an indexed child stream
   ([Rng.split_n]) of one root seed — and adds the two things the
   ad-hoc loops lacked:

   - failures report the root seed and case index, and setting
     [QGEN_SEED=<seed>] replays the exact failing run;
   - optional shrinking (integer halving, list bisection) minimizes
     the counterexample before it is printed.

   The module lives in the test directory and is linked into every
   test executable of the [(tests ...)] stanza. *)

module Rng = Pnc_util.Rng

type 'a gen = Rng.t -> 'a

(* {1 Generators} *)

let return x : 'a gen = fun _ -> x
let map f (g : 'a gen) : 'b gen = fun rng -> f (g rng)
let bind (g : 'a gen) (f : 'a -> 'b gen) : 'b gen = fun rng -> f (g rng) rng

let int_range lo hi : int gen =
 fun rng ->
  assert (hi >= lo);
  lo + Rng.int rng (hi - lo + 1)

let float_range lo hi : float gen = fun rng -> Rng.uniform rng ~lo ~hi
let bool : bool gen = fun rng -> Rng.bool rng
let oneof (xs : 'a list) : 'a gen = fun rng -> List.nth xs (Rng.int rng (List.length xs))

let pair (ga : 'a gen) (gb : 'b gen) : ('a * 'b) gen =
 fun rng ->
  (* Force left-to-right stream consumption: OCaml tuple component
     evaluation order is right-to-left and would flip the streams. *)
  let a = ga rng in
  let b = gb rng in
  (a, b)

let triple ga gb gc : ('a * 'b * 'c) gen =
 fun rng ->
  let a = ga rng in
  let b = gb rng in
  let c = gc rng in
  (a, b, c)

let list_of ~(len : int gen) (g : 'a gen) : 'a list gen =
 fun rng ->
  let n = len rng in
  let acc = ref [] in
  for _ = 1 to n do
    acc := g rng :: !acc
  done;
  List.rev !acc

let array_of ~(len : int gen) (g : 'a gen) : 'a array gen =
 fun rng ->
  let n = len rng in
  let a = Array.make n None in
  for i = 0 to n - 1 do
    a.(i) <- Some (g rng)
  done;
  Array.map Option.get a

(* {1 Shrinking}

   A shrinker maps a failing value to strictly-smaller candidates; the
   runner greedily re-tests them and recurses on the first candidate
   that still fails, so the reported counterexample is locally minimal. *)

let shrink_int n =
  if n = 0 then []
  else
    let cands = [ 0; n / 2; n - (if n > 0 then 1 else -1) ] in
    List.sort_uniq compare (List.filter (fun c -> abs c < abs n) cands)

let shrink_list xs =
  match xs with
  | [] -> []
  | [ _ ] -> [ [] ]
  | _ ->
      let n = List.length xs in
      let half = List.filteri (fun i _ -> i < n / 2) xs in
      let other = List.filteri (fun i _ -> i >= n / 2) xs in
      let drop_one = List.init n (fun i -> List.filteri (fun j _ -> j <> i) xs) in
      (half :: other :: drop_one) |> List.filter (fun c -> List.length c < n)

(* {1 Runner} *)

let default_seed = 20260807

let root_seed () =
  match Sys.getenv_opt "QGEN_SEED" with
  | Some s -> ( match int_of_string_opt (String.trim s) with Some n -> n | None -> default_seed)
  | None -> default_seed

(* Bounded greedy minimization: recursing on the first still-failing
   candidate terminates because every candidate is strictly smaller,
   but the fuel caps pathological custom shrinkers. *)
let minimize ~holds ~shrink x0 =
  let rec go fuel x =
    if fuel = 0 then x
    else
      match List.find_opt (fun c -> not (holds c)) (shrink x) with
      | Some c -> go (fuel - 1) c
      | None -> x
  in
  go 1000 x0

let check ?(count = 100) ?(pp : ('a -> string) option) ?(shrink : ('a -> 'a list) option)
    ~name (gen : 'a gen) (prop : 'a -> bool) =
  let seed = root_seed () in
  (* One indexed child stream per case: case [i] is a pure function of
     (seed, i), so a failure replays without re-running earlier cases. *)
  let streams = Rng.split_n (Rng.create ~seed) count in
  (* An exception inside the property (e.g. a ported Alcotest check)
     counts as falsification, so its counterexample still gets seed
     reporting and shrinking. *)
  let run x = match prop x with b -> (b, None) | exception e -> (false, Some e) in
  let holds x = fst (run x) in
  for i = 0 to count - 1 do
    let x = gen streams.(i) in
    let ok, exn = run x in
    if not ok then begin
      let x_min = match shrink with Some s -> minimize ~holds ~shrink:s x | None -> x in
      let show v = match pp with Some f -> f v | None -> "<no printer>" in
      let exn_note =
        match (if x_min == x then exn else snd (run x_min)) with
        | Some e -> Printf.sprintf " raising %s" (Printexc.to_string e)
        | None -> ""
      in
      let shrunk_note = if x_min == x then "" else Printf.sprintf " (shrunk from %s)" (show x) in
      Alcotest.failf "%s: case %d/%d falsified with %s%s%s [replay: QGEN_SEED=%d]" name i count
        (show x_min) shrunk_note exn_note seed
    end
  done

(* Alcotest adapter: a qgen property as a quick test case. *)
let test_case ?count ?pp ?shrink name gen prop =
  Alcotest.test_case name `Quick (fun () -> check ?count ?pp ?shrink ~name gen prop)
