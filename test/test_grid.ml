(* Fault-injection and shard-invariance battery for the process-sharded
   experiment grid (lib/grid, docs/GRID.md).

   Three layers, increasingly end-to-end:

   - [Lease]: the claim-file primitive — atomicity, corrupt-claim
     reaping, dead-pid and TTL staleness.
   - [Proto] with cheap synthetic cells: the claim/compute/publish loop
     in-process, including a qgen property that the merged result is
     invariant to shard count ({1,2,3,5}), completion order and
     interleaved duplicate workers, with every cell computed exactly
     once (atomic rename = exactly-once effect).
   - The real binary: SIGKILL a worker mid-cell at randomized points,
     resume, and require the merged tables byte-identical (eps 0) to a
     1-shard run; corrupt and truncate cached cells and plant stale
     claims, and require them reaped and recomputed, never trusted. *)

module Grid = Pnc_grid.Grid
module Proto = Grid.Proto
module Lease = Pnc_ckpt.Lease
module Config = Pnc_exp.Config
module E = Pnc_exp.Experiments
module Rng = Pnc_util.Rng

(* Helpers ------------------------------------------------------------------ *)

let exe = Filename.concat (Filename.dirname Sys.executable_name) "../bin/adapt_pnc.exe"

let fresh_dir () =
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "pnc_grid_%d_%d" (Unix.getpid ()) (Random.bits ()))
  in
  Sys.mkdir d 0o755;
  d

let read_file p = In_channel.with_open_bin p In_channel.input_all
let write_file p s = Out_channel.with_open_bin p (fun oc -> Out_channel.output_string oc s)

let contains ~needle hay =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

type outcome = { code : int; stdout : string; stderr : string }

let slurp_and_remove p =
  let s = read_file p in
  Sys.remove p;
  s

let run_cli (args : string list) : outcome =
  let out = Filename.temp_file "grid_out" ".txt" in
  let err = Filename.temp_file "grid_err" ".txt" in
  let argv = Array.of_list (exe :: args) in
  let fd_out = Unix.openfile out [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  let fd_err = Unix.openfile err [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  let pid = Unix.create_process exe argv Unix.stdin fd_out fd_err in
  Unix.close fd_out;
  Unix.close fd_err;
  let _, status = Unix.waitpid [] pid in
  let code =
    match status with
    | Unix.WEXITED c -> c
    | Unix.WSIGNALED s -> 128 + s
    | Unix.WSTOPPED s -> 128 + s
  in
  { code; stdout = slurp_and_remove out; stderr = slurp_and_remove err }

(* A pid that is genuinely dead: a reaped child's. (Recycling before
   the test reads it is astronomically unlikely.) *)
let dead_pid () =
  let pid = Unix.create_process "/bin/true" [| "/bin/true" |] Unix.stdin Unix.stdout Unix.stderr in
  ignore (Unix.waitpid [] pid);
  pid

let plant_claim ~path ~pid ~owner ~since =
  write_file path
    (Printf.sprintf {|{"pid":%d,"owner":"%s","since":%.6f}|} pid owner since)

(* Lease -------------------------------------------------------------------- *)

let test_lease_roundtrip () =
  let dir = fresh_dir () in
  let p = Filename.concat dir "cell.ckpt.claim" in
  Alcotest.(check bool) "first acquire wins" true (Lease.acquire ~path:p ~owner:"w0");
  (match Lease.read ~path:p with
  | Some l ->
      Alcotest.(check int) "own pid" (Unix.getpid ()) l.Lease.pid;
      Alcotest.(check string) "owner" "w0" l.Lease.owner;
      Alcotest.(check bool) "fresh claim not stale" false (Lease.stale l)
  | None -> Alcotest.fail "claim unreadable after acquire");
  Alcotest.(check bool) "second acquire loses" false (Lease.acquire ~path:p ~owner:"w1");
  (match Lease.try_acquire ~owner:"w1" p with
  | `Held l -> Alcotest.(check string) "held by first owner" "w0" l.Lease.owner
  | `Acquired | `Reaped_and_acquired -> Alcotest.fail "stole a live claim");
  Lease.release ~path:p;
  Alcotest.(check bool) "acquire after release" true (Lease.acquire ~path:p ~owner:"w1")

let test_lease_corrupt_claim_reaped () =
  let dir = fresh_dir () in
  let p = Filename.concat dir "cell.ckpt.claim" in
  List.iter
    (fun garbage ->
      write_file p garbage;
      Alcotest.(check bool) "corrupt claim reads as None" true (Lease.read ~path:p = None);
      (match Lease.try_acquire ~owner:"w0" p with
      | `Reaped_and_acquired -> ()
      | `Acquired -> Alcotest.fail "corrupt claim was not even seen"
      | `Held _ -> Alcotest.fail "trusted a corrupt claim");
      Lease.release ~path:p)
    [ ""; "not json"; {|{"pid":"x","owner":1}|}; {|{"owner":"w9","since":1.0}|} ]

let test_lease_dead_pid_is_stale () =
  let dir = fresh_dir () in
  let p = Filename.concat dir "cell.ckpt.claim" in
  plant_claim ~path:p ~pid:(dead_pid ()) ~owner:"ghost" ~since:(Unix.gettimeofday ());
  (match Lease.read ~path:p with
  | Some l -> Alcotest.(check bool) "dead pid is stale" true (Lease.stale l)
  | None -> Alcotest.fail "planted claim unreadable");
  match Lease.try_acquire ~owner:"w0" p with
  | `Reaped_and_acquired -> (
      match Lease.read ~path:p with
      | Some l -> Alcotest.(check string) "reaper owns the claim now" "w0" l.Lease.owner
      | None -> Alcotest.fail "claim vanished after reap")
  | `Acquired -> Alcotest.fail "dead claim was not even seen"
  | `Held _ -> Alcotest.fail "trusted a dead worker's claim"

let test_lease_ttl () =
  let now = Unix.gettimeofday () in
  let hung = { Lease.pid = Unix.getpid (); owner = "hung"; since = now -. 100. } in
  Alcotest.(check bool) "live pid within ttl" false (Lease.stale ~ttl:1000. hung);
  Alcotest.(check bool) "live pid past ttl is hung" true (Lease.stale ~ttl:10. hung)

(* Proto with synthetic cells ----------------------------------------------- *)

(* A synthetic cell publishes a deterministic payload by write-temp +
   atomic rename, exactly like the real cell checkpoints; validity is a
   full content check, so truncation or garbage is never trusted. *)
let payload name = Printf.sprintf "cell(%s) deterministic payload\n" name

let synth_cell ?(delay = 0.) ~dir name =
  let path = Filename.concat dir (name ^ ".cell") in
  {
    Proto.cell_id = name;
    path;
    is_valid =
      (fun () ->
        Sys.file_exists path
        && match read_file path with s -> s = payload name | exception Sys_error _ -> false);
    compute =
      (fun () ->
        if delay > 0. then Thread.delay delay;
        let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
        write_file tmp (payload name);
        Sys.rename tmp path);
  }

let test_proto_computes_all () =
  let dir = fresh_dir () in
  let cells = List.init 4 (fun i -> synth_cell ~dir (Printf.sprintf "c%d" i)) in
  Alcotest.(check int) "computes every cell" 4 (Proto.work ~owner:"w0" cells);
  Alcotest.(check bool) "all valid" true (List.for_all (fun c -> c.Proto.is_valid ()) cells);
  Alcotest.(check int) "second pass is pure cache" 0 (Proto.work ~owner:"w0" cells)

let test_proto_corrupt_cell_recomputed () =
  let dir = fresh_dir () in
  let cells = List.init 3 (fun i -> synth_cell ~dir (Printf.sprintf "c%d" i)) in
  ignore (Proto.work ~owner:"w0" cells);
  let victim = List.nth cells 1 in
  (* truncation and garbage both fail the content check *)
  write_file victim.Proto.path "torn";
  Alcotest.(check int) "only the corrupt cell recomputes" 1 (Proto.work ~owner:"w0" cells);
  Alcotest.(check string) "content restored" (payload "c1") (read_file victim.Proto.path)

let test_proto_stale_claims_reaped () =
  let dir = fresh_dir () in
  let cells = List.init 3 (fun i -> synth_cell ~dir (Printf.sprintf "c%d" i)) in
  (* plant a dead worker's claim on one cell and a corrupt claim on
     another: both must be reaped, not waited on *)
  plant_claim
    ~path:(Proto.claim_path (List.nth cells 0).Proto.path)
    ~pid:(dead_pid ()) ~owner:"ghost" ~since:(Unix.gettimeofday ());
  write_file (Proto.claim_path (List.nth cells 1).Proto.path) "garbage claim";
  Alcotest.(check int) "all cells computed despite stale claims" 3 (Proto.work ~owner:"w0" cells);
  List.iter
    (fun c ->
      Alcotest.(check bool) "claim released" false (Sys.file_exists (Proto.claim_path c.Proto.path)))
    cells

let test_proto_reap_tmp () =
  let dir = fresh_dir () in
  let c = synth_cell ~dir "c0" in
  let dead = Printf.sprintf "%s.tmp.%d" c.Proto.path (dead_pid ()) in
  let junk = c.Proto.path ^ ".tmp.notapid" in
  let live = Printf.sprintf "%s.tmp.%d" c.Proto.path (Unix.getpid ()) in
  write_file dead "interrupted publish";
  write_file junk "unparsable writer";
  write_file live "in-flight publish";
  Alcotest.(check int) "dead and unparsable reaped" 2 (Proto.reap_tmp ~path:c.Proto.path);
  Alcotest.(check bool) "dead writer's litter gone" false (Sys.file_exists dead);
  Alcotest.(check bool) "unparsable litter gone" false (Sys.file_exists junk);
  Alcotest.(check bool) "live writer untouched" true (Sys.file_exists live)

(* qgen: merged state is invariant to shard count, completion order and
   duplicate workers; atomic rename gives exactly-once computation. *)

let shuffle rng l =
  let a = Array.of_list l in
  for i = Array.length a - 1 downto 1 do
    let j = Rng.int rng (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done;
  Array.to_list a

let canonical_image cells =
  String.concat "|" (List.map (fun c -> read_file c.Proto.path) cells)

type shard_case = { n_cells : int; shards : int; duplicates : bool; case_seed : int }

let pp_case c =
  Printf.sprintf "{n_cells=%d; shards=%d; duplicates=%b; case_seed=%d}" c.n_cells c.shards
    c.duplicates c.case_seed

let gen_case : shard_case Qgen.gen =
 fun rng ->
  let n_cells = Qgen.int_range 1 8 rng in
  let shards = Qgen.oneof [ 1; 2; 3; 5 ] rng in
  let duplicates = Qgen.bool rng in
  let case_seed = Qgen.int_range 0 1_000_000 rng in
  { n_cells; shards; duplicates; case_seed }

let shard_invariance case =
  let rng = Rng.create ~seed:case.case_seed in
  let mk dir = List.init case.n_cells (fun i -> synth_cell ~delay:0.002 ~dir (Printf.sprintf "c%d" i)) in
  (* reference: one worker, canonical order *)
  let ref_dir = fresh_dir () in
  let ref_cells = mk ref_dir in
  ignore (Proto.work ~owner:"ref" ref_cells);
  let expected = canonical_image ref_cells in
  (* sharded: [shards] workers (doubled when [duplicates]), each
     walking its own shuffled copy of the cell list, racing in
     threads over one directory *)
  let dir = fresh_dir () in
  let cells = mk dir in
  let n_workers = if case.duplicates then 2 * case.shards else case.shards in
  let computed = Array.make n_workers 0 in
  let workers =
    List.init n_workers (fun w ->
        let order = shuffle rng cells in
        let owner = Printf.sprintf "worker-%d" (w mod case.shards) in
        Thread.create
          (fun () -> computed.(w) <- Proto.work ~poll_s:0.001 ~owner order)
          ())
  in
  List.iter Thread.join workers;
  List.for_all (fun c -> c.Proto.is_valid ()) cells
  && Array.fold_left ( + ) 0 computed = case.n_cells (* exactly once *)
  && canonical_image cells = expected

(* Stale surfacing on the real cell format (no training) -------------------- *)

let smoke_cfg () =
  let cfg = Config.of_scale Config.Smoke in
  { cfg with Config.datasets = [ "GPOVY" ]; dataset_n = Some 50 }

(* Regression: an interrupted cell-checkpoint write (torn file, or a
   dead writer's [.tmp.<pid>] staging litter) must surface as [stale]
   in `grid status`, not read as silently absent. *)
let test_interrupted_cell_write_is_stale () =
  let cfg = smoke_cfg () in
  let dir = fresh_dir () in
  let dataset = "GPOVY" and variant = E.Base and seed = 0 in
  let path = E.cell_path ~dir cfg ~dataset ~variant ~seed in
  let classify () = Grid.classify ~dir cfg ~dataset ~variant ~seed in
  Alcotest.(check string) "empty dir is pending" "pending" (Grid.state_name (classify ()));
  (* torn write: bytes exist but fail decode *)
  write_file path "grid-cell checkpoint torn mid-write";
  Alcotest.(check string) "torn cell file is stale" "stale" (Grid.state_name (classify ()));
  Alcotest.(check bool) "torn cell never loads" true
    (E.load_cell ~path cfg ~dataset ~variant ~seed = None);
  Sys.remove path;
  (* interrupted publish: no cell, but a dead writer's staging litter *)
  write_file (Printf.sprintf "%s.tmp.%d" path (dead_pid ())) "staged bytes";
  Alcotest.(check string) "tmp litter is stale" "stale" (Grid.state_name (classify ()));
  (* dead worker's claim *)
  Array.iter (fun e -> Sys.remove (Filename.concat dir e)) (Sys.readdir dir);
  plant_claim ~path:(Proto.claim_path path) ~pid:(dead_pid ()) ~owner:"ghost"
    ~since:(Unix.gettimeofday ());
  Alcotest.(check string) "dead worker's claim is stale" "stale" (Grid.state_name (classify ()));
  (* live claim *)
  Lease.release ~path:(Proto.claim_path path);
  Alcotest.(check bool) "reclaim" true (Lease.acquire ~path:(Proto.claim_path path) ~owner:"me");
  Alcotest.(check string) "live claim is claimed" "claimed" (Grid.state_name (classify ()))

(* Real binary: SIGKILL, corrupt, resume, byte-identical merge -------------- *)

let grid_args dir = [ "--cache-dir"; dir; "--scale"; "smoke"; "-d"; "GPOVY"; "--variants"; "table1" ]

let devnull_worker dir =
  let null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let argv = Array.of_list (exe :: "grid" :: "worker" :: grid_args dir) in
  let pid = Unix.create_process exe argv Unix.stdin null null in
  Unix.close null;
  pid

let must_merge dir =
  let r = run_cli ([ "grid"; "merge" ] @ grid_args dir) in
  Alcotest.(check int) "merge exits 0" 0 r.code;
  r.stdout

(* One complete 1-shard reference run, shared by the fault tests below;
   its merge output is the byte-identity oracle. *)
let reference =
  lazy
    (let dir = fresh_dir () in
     let r = run_cli ([ "grid"; "run"; "--shards"; "1" ] @ grid_args dir) in
     Alcotest.(check int) "reference run exits 0" 0 r.code;
     (dir, must_merge dir))

let test_sigkill_resume_bit_identical () =
  let _, expected = Lazy.force reference in
  let rng = Rng.create ~seed:20260808 in
  (* SIGKILL a lone worker at randomized points mid-grid (a smoke cell
     takes a few hundred ms, so these delays land mid-cell), then
     resume with 2 shards: the merged table must be byte-identical. *)
  for trial = 1 to 2 do
    let dir = fresh_dir () in
    let victim = devnull_worker dir in
    Unix.sleepf (0.05 +. Rng.uniform rng ~lo:0. ~hi:0.6);
    Unix.kill victim Sys.sigkill;
    ignore (Unix.waitpid [] victim);
    let r = run_cli ([ "grid"; "run"; "--shards"; "2" ] @ grid_args dir) in
    Alcotest.(check int) (Printf.sprintf "trial %d: resume exits 0" trial) 0 r.code;
    Alcotest.(check string)
      (Printf.sprintf "trial %d: merge byte-identical after SIGKILL+resume" trial)
      expected (must_merge dir)
  done

let cell_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun e -> Filename.check_suffix e ".ckpt")
  |> List.sort compare
  |> List.map (Filename.concat dir)

let test_corrupt_cells_recomputed () =
  let _, expected = Lazy.force reference in
  (* fresh complete grid, then corrupt one cell and truncate another *)
  let dir = fresh_dir () in
  let r = run_cli ([ "grid"; "run"; "--shards"; "1" ] @ grid_args dir) in
  Alcotest.(check int) "setup run exits 0" 0 r.code;
  (match cell_files dir with
  | a :: b :: _ ->
      write_file a "garbage where a grid-cell checkpoint should be";
      let img = read_file b in
      write_file b (String.sub img 0 (String.length img / 2))
  | _ -> Alcotest.fail "expected at least two cached cells");
  let st = run_cli ([ "grid"; "status" ] @ grid_args dir) in
  Alcotest.(check bool) "status surfaces the corruption as stale" true
    (contains ~needle:"stale 2" st.stdout);
  let m = run_cli ([ "grid"; "merge" ] @ grid_args dir) in
  Alcotest.(check int) "merge refuses a corrupt grid (exit 3)" 3 m.code;
  let r = run_cli ([ "grid"; "run"; "--shards"; "1" ] @ grid_args dir) in
  Alcotest.(check int) "recompute exits 0" 0 r.code;
  Alcotest.(check string) "merge byte-identical after corruption+recompute" expected
    (must_merge dir)

let test_stale_claim_reaped_by_run () =
  let _, expected = Lazy.force reference in
  let dir = fresh_dir () in
  let r = run_cli ([ "grid"; "run"; "--shards"; "1" ] @ grid_args dir) in
  Alcotest.(check int) "setup run exits 0" 0 r.code;
  (* lose one cell and leave a dead worker's claim on it *)
  (match cell_files dir with
  | a :: _ ->
      Sys.remove a;
      plant_claim ~path:(a ^ ".claim") ~pid:(dead_pid ()) ~owner:"ghost"
        ~since:(Unix.gettimeofday ())
  | [] -> Alcotest.fail "expected cached cells");
  let st = run_cli ([ "grid"; "status" ] @ grid_args dir) in
  Alcotest.(check bool) "status surfaces the dead claim as stale" true
    (contains ~needle:"stale 1" st.stdout);
  let r = run_cli ([ "grid"; "run"; "--shards"; "1" ] @ grid_args dir) in
  Alcotest.(check int) "reap+recompute exits 0" 0 r.code;
  Alcotest.(check string) "merge byte-identical after reap" expected (must_merge dir)

let () =
  Random.self_init ();
  Alcotest.run "grid"
    [
      ( "lease",
        [
          Alcotest.test_case "acquire/read/release roundtrip" `Quick test_lease_roundtrip;
          Alcotest.test_case "corrupt claims reaped, never trusted" `Quick
            test_lease_corrupt_claim_reaped;
          Alcotest.test_case "dead pid is stale" `Quick test_lease_dead_pid_is_stale;
          Alcotest.test_case "ttl marks hung workers" `Quick test_lease_ttl;
        ] );
      ( "proto",
        [
          Alcotest.test_case "computes all, idempotent" `Quick test_proto_computes_all;
          Alcotest.test_case "corrupt cell recomputed" `Quick test_proto_corrupt_cell_recomputed;
          Alcotest.test_case "stale claims reaped" `Quick test_proto_stale_claims_reaped;
          Alcotest.test_case "dead writers' tmp litter reaped" `Quick test_proto_reap_tmp;
          Qgen.test_case ~count:25 ~pp:pp_case "merge invariant to shards/order/duplicates"
            gen_case shard_invariance;
        ] );
      ( "status",
        [
          Alcotest.test_case "interrupted cell writes surface as stale" `Quick
            test_interrupted_cell_write_is_stale;
        ] );
      ( "faults",
        [
          Alcotest.test_case "SIGKILL mid-cell + resume is bit-identical" `Quick
            test_sigkill_resume_bit_identical;
          Alcotest.test_case "corrupt/truncated cells recomputed" `Quick
            test_corrupt_cells_recomputed;
          Alcotest.test_case "stale claim reaped by run" `Quick test_stale_claim_reaped_by_run;
        ] );
    ]
