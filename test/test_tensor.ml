(* Unit and property tests for the dense tensor substrate. *)

module T = Pnc_tensor.Tensor
module Rng = Pnc_util.Rng

let approx ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps
let check_f ?eps name expected got =
  Alcotest.(check bool) (Printf.sprintf "%s (exp %.6g, got %.6g)" name expected got) true
    (approx ?eps expected got)

let t22 a b c d = T.of_rows [| [| a; b |]; [| c; d |] |]

let test_create_get_set () =
  let t = T.create ~rows:2 ~cols:3 1.5 in
  Alcotest.(check int) "rows" 2 (T.rows t);
  Alcotest.(check int) "cols" 3 (T.cols t);
  check_f "init value" 1.5 (T.get t 1 2);
  T.set t 1 2 7.;
  check_f "after set" 7. (T.get t 1 2);
  check_f "other untouched" 1.5 (T.get t 0 0)

let test_of_rows_row_major () =
  let t = t22 1. 2. 3. 4. in
  check_f "0,0" 1. (T.get t 0 0);
  check_f "0,1" 2. (T.get t 0 1);
  check_f "1,0" 3. (T.get t 1 0);
  Alcotest.(check (array (float 1e-12))) "row copy" [| 3.; 4. |] (T.row t 1)

let test_elementwise () =
  let a = t22 1. 2. 3. 4. and b = t22 5. 6. 7. 8. in
  Alcotest.(check bool) "add" true (T.equal_eps ~eps:1e-12 (t22 6. 8. 10. 12.) (T.add a b));
  Alcotest.(check bool) "sub" true (T.equal_eps ~eps:1e-12 (t22 (-4.) (-4.) (-4.) (-4.)) (T.sub a b));
  Alcotest.(check bool) "mul" true (T.equal_eps ~eps:1e-12 (t22 5. 12. 21. 32.) (T.mul a b));
  Alcotest.(check bool) "scale" true (T.equal_eps ~eps:1e-12 (t22 2. 4. 6. 8.) (T.scale 2. a));
  Alcotest.(check bool) "neg" true (T.equal_eps ~eps:1e-12 (t22 (-1.) (-2.) (-3.) (-4.)) (T.neg a))

let test_matmul () =
  let a = t22 1. 2. 3. 4. and b = t22 5. 6. 7. 8. in
  let c = T.matmul a b in
  Alcotest.(check bool) "2x2 matmul" true (T.equal_eps ~eps:1e-12 (t22 19. 22. 43. 50.) c);
  (* Non-square: (1x3) @ (3x2) *)
  let x = T.of_row [| 1.; 2.; 3. |] in
  let w = T.of_rows [| [| 1.; 0. |]; [| 0.; 1. |]; [| 1.; 1. |] |] in
  let y = T.matmul x w in
  check_f "y0" 4. (T.get y 0 0);
  check_f "y1" 5. (T.get y 0 1)

let test_matmul_identity () =
  let rng = Rng.create ~seed:1 in
  let a = T.uniform rng ~rows:4 ~cols:4 ~lo:(-1.) ~hi:1. in
  let id = T.init ~rows:4 ~cols:4 (fun r c -> if r = c then 1. else 0.) in
  Alcotest.(check bool) "a @ I = a" true (T.equal_eps ~eps:1e-12 a (T.matmul a id));
  Alcotest.(check bool) "I @ a = a" true (T.equal_eps ~eps:1e-12 a (T.matmul id a))

let test_transpose () =
  let a = T.of_rows [| [| 1.; 2.; 3. |]; [| 4.; 5.; 6. |] |] in
  let at = T.transpose a in
  Alcotest.(check int) "rows" 3 (T.rows at);
  check_f "element" 6. (T.get at 2 1);
  Alcotest.(check bool) "double transpose" true (T.equal_eps ~eps:0. a (T.transpose at))

let test_broadcast () =
  let m = t22 1. 2. 3. 4. in
  let rv = T.of_row [| 10.; 20. |] in
  Alcotest.(check bool) "add_rv" true (T.equal_eps ~eps:1e-12 (t22 11. 22. 13. 24.) (T.add_rv m rv));
  Alcotest.(check bool) "mul_rv" true (T.equal_eps ~eps:1e-12 (t22 10. 40. 30. 80.) (T.mul_rv m rv))

let test_reductions () =
  let m = t22 1. 2. 3. 4. in
  check_f "sum" 10. (T.sum m);
  check_f "mean" 2.5 (T.mean m);
  Alcotest.(check bool) "sum_rows" true
    (T.equal_eps ~eps:1e-12 (T.of_row [| 4.; 6. |]) (T.sum_rows m));
  let sc = T.sum_cols m in
  check_f "sum_cols 0" 3. (T.get sc 0 0);
  check_f "sum_cols 1" 7. (T.get sc 1 0);
  check_f "max_abs" 4. (T.max_abs m)

let test_one_hot_argmax () =
  let oh = T.one_hot ~n_classes:3 [| 0; 2; 1 |] in
  Alcotest.(check (array int)) "argmax recovers labels" [| 0; 2; 1 |] (T.argmax_rows oh);
  check_f "row sums to 1" 3. (T.sum oh)

let test_col () =
  let m = T.of_rows [| [| 1.; 2.; 3. |]; [| 4.; 5.; 6. |] |] in
  let c = T.col m 1 in
  Alcotest.(check int) "rows" 2 (T.rows c);
  Alcotest.(check int) "cols" 1 (T.cols c);
  check_f "values" 5. (T.get c 1 0)

let test_add_inplace () =
  let a = t22 1. 1. 1. 1. in
  T.add_inplace a (t22 1. 2. 3. 4.);
  Alcotest.(check bool) "accumulated" true (T.equal_eps ~eps:0. (t22 2. 3. 4. 5.) a)

let expect_assert name f =
  match f () with
  | exception Assert_failure _ -> ()
  | _ -> Alcotest.fail ("expected assertion failure: " ^ name)

let test_shape_violations_assert () =
  expect_assert "of_array length" (fun () -> T.of_array ~rows:2 ~cols:2 [| 1.; 2.; 3. |]);
  expect_assert "matmul shapes" (fun () ->
      T.matmul (T.zeros ~rows:2 ~cols:3) (T.zeros ~rows:2 ~cols:2));
  expect_assert "map2 shapes" (fun () ->
      T.map2 ( +. ) (T.zeros ~rows:1 ~cols:2) (T.zeros ~rows:2 ~cols:1));
  expect_assert "add_inplace shapes" (fun () ->
      T.add_inplace (T.zeros ~rows:1 ~cols:2) (T.zeros ~rows:2 ~cols:2));
  expect_assert "one_hot label range" (fun () -> T.one_hot ~n_classes:2 [| 0; 2 |]);
  expect_assert "get_scalar non-scalar" (fun () -> T.get_scalar (T.zeros ~rows:2 ~cols:1))

let test_init_row_major_order () =
  (* init must visit row-major so closures with side effects behave
     predictably (the tensor fast path depends on it). *)
  let calls = ref [] in
  let _ =
    T.init ~rows:2 ~cols:2 (fun r c ->
        calls := (r, c) :: !calls;
        0.)
  in
  Alcotest.(check (list (pair int int))) "row-major order" [ (0, 0); (0, 1); (1, 0); (1, 1) ]
    (List.rev !calls)

let test_scalar_and_of_row () =
  let s = T.scalar 3.5 in
  check_f "scalar value" 3.5 (T.get_scalar s);
  let input = [| 1.; 2. |] in
  let r = T.of_row input in
  input.(0) <- 99.;
  check_f "of_row copies" 1. (T.get r 0 0)

let test_of_array_copies () =
  (* Regression: of_array used to alias the caller's buffer. *)
  let input = [| 1.; 2.; 3.; 4. |] in
  let t = T.of_array ~rows:2 ~cols:2 input in
  input.(0) <- 99.;
  check_f "of_array copies" 1. (T.get t 0 0);
  T.set t 1 1 (-7.);
  check_f "writes stay inside the tensor" 4. input.(3)

let test_inplace_kernels_match_allocating () =
  let m = T.of_rows [| [| 1.; -2.; 3. |]; [| 0.5; 4.; -1. |] |] in
  let rv = T.of_row [| 2.; -0.5; 3. |] in
  let a = T.copy m in
  T.add_rv_inplace a rv;
  Alcotest.(check bool) "add_rv_inplace" true (T.equal_eps ~eps:0. (T.add_rv m rv) a);
  let b = T.copy m in
  T.mul_rv_inplace b rv;
  Alcotest.(check bool) "mul_rv_inplace" true (T.equal_eps ~eps:0. (T.mul_rv m rv) b)

let test_matmul_into_matches_matmul () =
  let a = T.of_rows [| [| 1.; 0.; -2. |]; [| 3.; 4.; 0. |] |] in
  let b = T.of_rows [| [| 1.; 2. |]; [| -1.; 0.5 |]; [| 0.; 3. |] |] in
  let dst = T.create ~rows:2 ~cols:2 42. in
  T.matmul_into ~dst a b;
  Alcotest.(check bool) "matmul_into overwrites" true (T.equal_eps ~eps:0. (T.matmul a b) dst)

let test_affine_rv_into () =
  let s = T.of_rows [| [| 1.; 2. |]; [| -3.; 0.5 |] |] in
  let x = T.of_rows [| [| 0.5; -1. |]; [| 2.; 4. |] |] in
  let a = T.of_row [| 0.9; 0.8 |] and b = T.of_row [| 0.1; 0.2 |] in
  let expected = T.add (T.mul_rv s a) (T.mul_rv x b) in
  let dst = T.zeros ~rows:2 ~cols:2 in
  T.affine_rv_into ~dst s a x b;
  Alcotest.(check bool) "into fresh dst" true (T.equal_eps ~eps:0. expected dst);
  (* dst aliasing s is the filter-state in-place update *)
  let s' = T.copy s in
  T.affine_rv_into ~dst:s' s' a x b;
  Alcotest.(check bool) "dst may alias s" true (T.equal_eps ~eps:0. expected s')

let test_add_mul_rv_inplace () =
  let m = T.of_rows [| [| 1.; -2.; 3. |]; [| 0.5; 4.; -1. |] |] in
  let add = T.of_row [| 0.25; -1.5; 2. |] in
  let mul = T.of_row [| 2.; -0.5; 3. |] in
  let expected = T.copy m in
  T.add_rv_inplace expected add;
  T.mul_rv_inplace expected mul;
  let fused = T.copy m in
  T.add_mul_rv_inplace fused ~add ~mul;
  Alcotest.(check bool) "fused = add;mul" true (T.equal_eps ~eps:0. expected fused)

let test_matmul_into_rejects_aliasing () =
  (* Regression: matmul_into reads its operands while writing dst, so a
     dst that shares the operand buffer (even through a row view) must
     be rejected instead of silently corrupting the product. *)
  let a = T.of_rows [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  let b = T.of_rows [| [| 1.; 0. |]; [| 0.; 1. |] |] in
  let raises f =
    match f () with () -> false | exception Invalid_argument _ -> true
  in
  Alcotest.(check bool) "dst == a" true (raises (fun () -> T.matmul_into ~dst:a a b));
  Alcotest.(check bool) "dst == b" true (raises (fun () -> T.matmul_into ~dst:b a b));
  Alcotest.(check bool) "dst shares a's buffer via a view" true
    (raises (fun () -> T.matmul_into ~dst:(T.rows_view a ~row:0 ~len:2) a b))

let test_rows_view_semantics () =
  let m = T.of_rows [| [| 1.; 2. |]; [| 3.; 4. |]; [| 5.; 6. |] |] in
  let v = T.rows_view m ~row:1 ~len:2 in
  Alcotest.(check bool) "view contents" true
    (T.equal_eps ~eps:0. (T.of_rows [| [| 3.; 4. |]; [| 5.; 6. |] |]) v);
  (* The view shares the parent's buffer in both directions. *)
  T.set v 0 0 30.;
  Alcotest.(check (float 0.)) "write-through to parent" 30. (T.get m 1 0);
  T.set m 2 1 60.;
  Alcotest.(check (float 0.)) "parent write visible in view" 60. (T.get v 1 1);
  let oob f = match f () with _ -> false | exception _ -> true in
  Alcotest.(check bool) "len past end rejected" true
    (oob (fun () -> T.rows_view m ~row:2 ~len:2));
  Alcotest.(check bool) "negative row rejected" true
    (oob (fun () -> T.rows_view m ~row:(-1) ~len:1))

(* Differential oracle --------------------------------------------------- *)

(* The pre-Bigarray [float array] kernels, retained verbatim as an
   oracle: naive row-major loops, matmul zero-fill then k-ascending
   accumulation. The Bigarray kernels — including the 32x32 blocked
   matmul, its kk=1 fast path, and the unsafe flat-offset addressing
   used under views — must match them at eps 0: blocking and storage
   change locality, never the floating-point result. *)
module Oracle = struct
  type m = { rows : int; cols : int; d : float array }

  let of_tensor t = { rows = T.rows t; cols = T.cols t; d = T.to_row_array t }
  let to_tensor m = T.of_array ~rows:m.rows ~cols:m.cols m.d
  let get m r c = m.d.((r * m.cols) + c)

  let matmul a b =
    assert (a.cols = b.rows);
    let out = Array.make (a.rows * b.cols) 0. in
    for r = 0 to a.rows - 1 do
      for k = 0 to a.cols - 1 do
        let av = get a r k in
        for c = 0 to b.cols - 1 do
          out.((r * b.cols) + c) <- out.((r * b.cols) + c) +. (av *. get b k c)
        done
      done
    done;
    { rows = a.rows; cols = b.cols; d = out }

  let broadcast f m rv =
    assert (rv.rows = 1 && rv.cols = m.cols);
    {
      m with
      d = Array.init (m.rows * m.cols) (fun i -> f m.d.(i) rv.d.(i mod m.cols));
    }

  let add_rv m rv = broadcast ( +. ) m rv
  let mul_rv m rv = broadcast ( *. ) m rv

  let add_mul_rv m ~add ~mul =
    broadcast ( *. ) (broadcast ( +. ) m add) mul

  let affine_rv s a x b =
    assert (s.rows = x.rows && s.cols = x.cols);
    assert (a.rows = 1 && a.cols = s.cols && b.rows = 1 && b.cols = s.cols);
    {
      s with
      d =
        Array.init (s.rows * s.cols) (fun i ->
            (s.d.(i) *. a.d.(i mod s.cols)) +. (x.d.(i) *. b.d.(i mod s.cols)));
    }
end

(* Element values: mostly moderate uniforms, salted with exact and
   extreme doubles (signed zeros, huge/tiny magnitudes) that would
   expose any kernel taking a different rounding path than the oracle. *)
let gen_val =
  Qgen.bind (Qgen.int_range 0 7) (fun k ->
      if k = 0 then
        Qgen.oneof [ 0.; -0.; 1.; -1.; 0.5; 1e-160; -1e-160; 1e150; -1e150 ]
      else Qgen.float_range (-3.) 3.)

(* Dimensions straddle the 32x32 blocking tiles: below, at, and past
   the boundary, including ragged sizes that leave partial tiles. *)
let gen_dim = Qgen.oneof [ 1; 2; 3; 5; 7; 16; 31; 32; 33; 37; 41; 45; 64; 65 ]

let gen_mat rows cols =
  Qgen.map (fun d -> T.of_array ~rows ~cols d)
    (Qgen.array_of ~len:(Qgen.return (rows * cols)) gen_val)

(* A tensor with off <> 0: embed the payload mid-buffer in a larger
   parent (padding rows filled with a sentinel) and view it out. *)
let gen_viewed rows cols =
  Qgen.map
    (fun d ->
      let parent = T.create ~rows:(rows + 2) ~cols 42.25 in
      Array.iteri (fun i v -> T.set parent (1 + (i / cols)) (i mod cols) v) d;
      T.rows_view parent ~row:1 ~len:rows)
    (Qgen.array_of ~len:(Qgen.return (rows * cols)) gen_val)

let pp_t t = Format.asprintf "%a" T.pp t
let pp_pair (a, b) = Printf.sprintf "(%s, %s)" (pp_t a) (pp_t b)

let test_diff_matmul () =
  let gen =
    Qgen.bind (Qgen.triple gen_dim gen_dim gen_dim) (fun (m, k, n) ->
        Qgen.pair (gen_mat m k) (gen_mat k n))
  in
  Qgen.check ~count:60 ~pp:pp_pair ~name:"matmul = oracle" gen (fun (a, b) ->
      let expect = Oracle.(to_tensor (matmul (of_tensor a) (of_tensor b))) in
      (* Allocating entry point, and matmul_into over a dirty dst (the
         zero-fill must erase previous contents, not accumulate). *)
      T.equal_eps ~eps:0. expect (T.matmul a b)
      &&
      let dst = T.create ~rows:(T.rows a) ~cols:(T.cols b) nan in
      T.matmul_into ~dst a b;
      T.equal_eps ~eps:0. expect dst)

let test_diff_matmul_viewed () =
  (* Same parity with every operand and the destination at off <> 0:
     the flat-offset addressing of the blocked kernel under views. *)
  let gen =
    Qgen.bind (Qgen.triple gen_dim gen_dim gen_dim) (fun (m, k, n) ->
        Qgen.pair (gen_viewed m k) (gen_viewed k n))
  in
  Qgen.check ~count:40 ~pp:pp_pair ~name:"matmul (views) = oracle" gen (fun (a, b) ->
      let expect = Oracle.(to_tensor (matmul (of_tensor a) (of_tensor b))) in
      let parent = T.create ~rows:(T.rows a + 2) ~cols:(T.cols b) nan in
      let dst = T.rows_view parent ~row:1 ~len:(T.rows a) in
      T.matmul_into ~dst a b;
      T.equal_eps ~eps:0. expect dst
      (* The kernel must write inside the view only. *)
      && T.get parent 0 0 <> T.get parent 0 0
      && T.get parent (T.rows parent - 1) 0 <> T.get parent (T.rows parent - 1) 0)

let test_diff_kk1_fast_path () =
  (* The [batch x 1] @ [1 x n] fast path (first layer of every circuit)
     skips the fill pass; it must still be bit-equal to the oracle's
     fill-then-accumulate — including rows where the single [a] element
     is an exact (possibly negative) zero. *)
  let gen =
    Qgen.bind (Qgen.pair gen_dim gen_dim) (fun (m, n) ->
        Qgen.pair (gen_mat m 1) (gen_mat 1 n))
  in
  Qgen.check ~count:60 ~pp:pp_pair ~name:"kk=1 matmul = oracle" gen (fun (a, b) ->
      let expect = Oracle.(to_tensor (matmul (of_tensor a) (of_tensor b))) in
      let got = T.matmul a b in
      T.equal_eps ~eps:0. expect got
      &&
      (* eps-0 comparison cannot distinguish -0. from +0.; pin the fill
         semantics bit-for-bit. *)
      let ok = ref true in
      for r = 0 to T.rows got - 1 do
        for c = 0 to T.cols got - 1 do
          if
            Int64.bits_of_float (T.get got r c)
            <> Int64.bits_of_float (Oracle.get (Oracle.of_tensor expect) r c)
          then ok := false
        done
      done;
      !ok)

let test_diff_broadcast_kernels () =
  let gen =
    Qgen.bind (Qgen.pair gen_dim gen_dim) (fun (m, n) ->
        Qgen.triple (gen_viewed m n) (gen_mat 1 n) (gen_mat 1 n))
  in
  Qgen.check ~count:60
    ~pp:(fun (m, a, b) ->
      Printf.sprintf "(%s, %s, %s)" (pp_t m) (pp_t a) (pp_t b))
    ~name:"broadcast kernels = oracle" gen
    (fun (m, rva, rvb) ->
      let om = Oracle.of_tensor m in
      let oa = Oracle.of_tensor rva and ob = Oracle.of_tensor rvb in
      let check_inplace expect kernel =
        let w = T.copy m in
        kernel w;
        T.equal_eps ~eps:0. (Oracle.to_tensor expect) w
      in
      T.equal_eps ~eps:0. (Oracle.to_tensor (Oracle.add_rv om oa)) (T.add_rv m rva)
      && T.equal_eps ~eps:0. (Oracle.to_tensor (Oracle.mul_rv om oa)) (T.mul_rv m rva)
      && check_inplace (Oracle.add_rv om oa) (fun w -> T.add_rv_inplace w rva)
      && check_inplace (Oracle.mul_rv om oa) (fun w -> T.mul_rv_inplace w rva)
      && check_inplace
           (Oracle.add_mul_rv om ~add:oa ~mul:ob)
           (fun w -> T.add_mul_rv_inplace w ~add:rva ~mul:rvb))

let test_diff_affine_rv_into () =
  let gen =
    Qgen.bind (Qgen.pair gen_dim gen_dim) (fun (m, n) ->
        Qgen.pair
          (Qgen.pair (gen_viewed m n) (gen_viewed m n))
          (Qgen.pair (gen_mat 1 n) (gen_mat 1 n)))
  in
  Qgen.check ~count:60
    ~pp:(fun ((s, x), (a, b)) ->
      Printf.sprintf "(%s, %s, %s, %s)" (pp_t s) (pp_t x) (pp_t a) (pp_t b))
    ~name:"affine_rv_into = oracle" gen
    (fun ((s, x), (a, b)) ->
      let expect =
        Oracle.(
          to_tensor
            (affine_rv (of_tensor s) (of_tensor a) (of_tensor x) (of_tensor b)))
      in
      let dst = T.zeros ~rows:(T.rows s) ~cols:(T.cols s) in
      T.affine_rv_into ~dst s a x b;
      T.equal_eps ~eps:0. expect dst
      &&
      (* In-place form: dst aliasing s (the filter state update). *)
      let s' = T.copy s in
      T.affine_rv_into ~dst:s' s' a x b;
      T.equal_eps ~eps:0. expect s')

let test_diff_view_ops () =
  (* Every allocating op reading through off <> 0 must agree with the
     same op on the materialized (off = 0) copy. *)
  let gen = Qgen.bind (Qgen.pair gen_dim gen_dim) (fun (m, n) -> gen_viewed m n) in
  Qgen.check ~count:60 ~pp:pp_t ~name:"ops on views = ops on copies" gen (fun v ->
      let c = T.copy v in
      T.equal_eps ~eps:0. (T.map (fun x -> (2. *. x) -. 1.) c)
        (T.map (fun x -> (2. *. x) -. 1.) v)
      && T.equal_eps ~eps:0. (T.transpose c) (T.transpose v)
      && T.equal_eps ~eps:0. (T.sum_rows c) (T.sum_rows v)
      && T.equal_eps ~eps:0. (T.sum_cols c) (T.sum_cols v)
      && Int64.bits_of_float (T.sum c) = Int64.bits_of_float (T.sum v)
      && T.max_abs c = T.max_abs v
      && T.to_row_array c = T.to_row_array v)

let test_diff_rows_view_bounds () =
  (* Fuzzed bounds: every (row, len) pair either yields a view whose
     contents match the oracle slice, or raises Invalid_argument —
     exactly when the range leaves the parent. *)
  let gen =
    Qgen.bind (Qgen.pair gen_dim gen_dim) (fun (m, n) ->
        Qgen.pair (gen_mat m n)
          (Qgen.pair (Qgen.int_range (-2) (m + 2)) (Qgen.int_range (-2) (m + 2))))
  in
  Qgen.check ~count:100
    ~pp:(fun (t, (row, len)) ->
      Printf.sprintf "(%s, row=%d, len=%d)" (pp_t t) row len)
    ~name:"rows_view bounds" gen
    (fun (t, (row, len)) ->
      let legal = row >= 0 && len >= 0 && row + len <= T.rows t in
      match T.rows_view t ~row ~len with
      | exception Invalid_argument _ -> not legal
      | v ->
          legal
          && T.rows v = len
          && T.to_row_array v
             = Array.init (len * T.cols t) (fun i ->
                   T.get t (row + (i / T.cols t)) (i mod T.cols t)))

let test_diff_blit_overlap () =
  (* blit_into between overlapping row ranges of one buffer, both
     directions; the oracle snapshots the source before any write. *)
  let gen =
    Qgen.bind (Qgen.pair (Qgen.oneof [ 3; 5; 8; 33; 40 ]) gen_dim) (fun (m, n) ->
        Qgen.pair (gen_mat m n) Qgen.bool)
  in
  Qgen.check ~count:60
    ~pp:(fun (t, fwd) -> Printf.sprintf "(%s, fwd=%b)" (pp_t t) fwd)
    ~name:"blit_into overlap" gen
    (fun (t, fwd) ->
      let m = T.rows t and n = T.cols t in
      let len = m - 1 in
      let src_row = if fwd then 0 else 1 in
      let dst_row = if fwd then 1 else 0 in
      let snapshot = T.to_row_array (T.rows_view t ~row:src_row ~len) in
      T.blit_into ~dst:(T.rows_view t ~row:dst_row ~len) (T.rows_view t ~row:src_row ~len);
      T.to_row_array (T.rows_view t ~row:dst_row ~len) = snapshot
      &&
      (* The row outside the destination range is untouched. *)
      let outside = if fwd then 0 else m - 1 in
      let src_outside = if fwd then 0 else len - 1 in
      T.row t outside
      = Array.init n (fun c -> snapshot.((src_outside * n) + c)))

let test_diff_alias_guard_fuzzed () =
  (* The aliasing guard must fire for any dst sharing an operand
     buffer, whatever the view offset. *)
  let gen =
    Qgen.bind gen_dim (fun n ->
        Qgen.pair (gen_mat (n + 1) n) (Qgen.pair (gen_mat n n) (Qgen.int_range 0 1)))
  in
  Qgen.check ~count:40
    ~pp:(fun (a, (b, w)) -> Printf.sprintf "(%s, %s, which=%d)" (pp_t a) (pp_t b) w)
    ~name:"alias guard" gen
    (fun (a, (b, which)) ->
      let a_view = T.rows_view a ~row:1 ~len:(T.rows a - 1) in
      let dst = if which = 0 then a_view else b in
      match T.matmul_into ~dst a_view b with
      | exception Invalid_argument _ -> true
      | () -> false)

let test_signed_zero_semantics () =
  (* fill / create preserve the sign bit of a negative-zero fill value,
     and the matmul zero-fill (skipped accumulation for an all-zero
     row) produces +0 exactly like the oracle's 0 + 0*b. *)
  let bits = Int64.bits_of_float in
  let t = T.create ~rows:2 ~cols:3 (-0.0) in
  for r = 0 to 1 do
    for c = 0 to 2 do
      Alcotest.(check int64)
        (Printf.sprintf "create -0. at (%d,%d)" r c)
        (bits (-0.0)) (bits (T.get t r c))
    done
  done;
  T.fill t 0.0;
  Alcotest.(check int64) "fill +0. overwrites" (bits 0.0) (bits (T.get t 1 2));
  (* An all-zero row of [a]: both the blocked path (kk > 1, every av
     skipped) and the kk=1 fast path (fill branch) leave +0. *)
  let a = T.of_rows [| [| 0.; -0. |]; [| 1.; 2. |] |] in
  let b = T.of_rows [| [| -1.; 3. |]; [| 2.; -5. |] |] in
  let p = T.matmul a b in
  Alcotest.(check int64) "zero row gives +0" (bits 0.0) (bits (T.get p 0 0));
  Alcotest.(check int64) "zero row gives +0 (col 1)" (bits 0.0) (bits (T.get p 0 1));
  let a1 = T.of_array ~rows:2 ~cols:1 [| -0.; 3. |] in
  let b1 = T.of_row [| -2.; 7. |] in
  let p1 = T.matmul a1 b1 in
  Alcotest.(check int64) "kk=1 zero row gives +0" (bits 0.0) (bits (T.get p1 0 0));
  Alcotest.(check int64) "kk=1 zero row gives +0 (col 1)" (bits 0.0) (bits (T.get p1 0 1))

(* Properties ------------------------------------------------------------ *)

let tensor_gen =
  QCheck.Gen.(
    int_range 1 6 >>= fun rows ->
    int_range 1 6 >>= fun cols ->
    list_repeat (rows * cols) (float_range (-10.) 10.) >|= fun l ->
    T.of_array ~rows ~cols (Array.of_list l))

let tensor_arb = QCheck.make ~print:(fun t -> Format.asprintf "%a" T.pp t) tensor_gen

let prop_transpose_involution =
  QCheck.Test.make ~count:200 ~name:"transpose involution" tensor_arb (fun t ->
      T.equal_eps ~eps:0. t (T.transpose (T.transpose t)))

let prop_sum_linear =
  QCheck.Test.make ~count:200 ~name:"sum (a+a) = 2 sum a" tensor_arb (fun t ->
      approx ~eps:1e-6 (T.sum (T.add t t)) (2. *. T.sum t))

let prop_matmul_transpose =
  QCheck.Test.make ~count:100 ~name:"(A B)^T = B^T A^T"
    (QCheck.make
       QCheck.Gen.(
         int_range 1 5 >>= fun m ->
         int_range 1 5 >>= fun k ->
         int_range 1 5 >>= fun n ->
         list_repeat (m * k) (float_range (-3.) 3.) >>= fun la ->
         list_repeat (k * n) (float_range (-3.) 3.) >|= fun lb ->
         ( T.of_array ~rows:m ~cols:k (Array.of_list la),
           T.of_array ~rows:k ~cols:n (Array.of_list lb) )))
    (fun (a, b) ->
      T.equal_eps ~eps:1e-9
        (T.transpose (T.matmul a b))
        (T.matmul (T.transpose b) (T.transpose a)))

let prop_sum_rows_consistent =
  QCheck.Test.make ~count:200 ~name:"sum of sum_rows = sum" tensor_arb (fun t ->
      approx ~eps:1e-6 (T.sum (T.sum_rows t)) (T.sum t))

let () =
  let qc =
    List.map QCheck_alcotest.to_alcotest
      [ prop_transpose_involution; prop_sum_linear; prop_matmul_transpose; prop_sum_rows_consistent ]
  in
  Alcotest.run "pnc_tensor"
    [
      ( "tensor",
        [
          Alcotest.test_case "create/get/set" `Quick test_create_get_set;
          Alcotest.test_case "of_rows layout" `Quick test_of_rows_row_major;
          Alcotest.test_case "elementwise" `Quick test_elementwise;
          Alcotest.test_case "matmul" `Quick test_matmul;
          Alcotest.test_case "matmul identity" `Quick test_matmul_identity;
          Alcotest.test_case "transpose" `Quick test_transpose;
          Alcotest.test_case "broadcast" `Quick test_broadcast;
          Alcotest.test_case "reductions" `Quick test_reductions;
          Alcotest.test_case "one_hot/argmax" `Quick test_one_hot_argmax;
          Alcotest.test_case "col" `Quick test_col;
          Alcotest.test_case "add_inplace" `Quick test_add_inplace;
          Alcotest.test_case "shape violations assert" `Quick test_shape_violations_assert;
          Alcotest.test_case "init row-major" `Quick test_init_row_major_order;
          Alcotest.test_case "scalar / of_row copy" `Quick test_scalar_and_of_row;
          Alcotest.test_case "of_array copies" `Quick test_of_array_copies;
          Alcotest.test_case "in-place rv kernels" `Quick test_inplace_kernels_match_allocating;
          Alcotest.test_case "matmul_into" `Quick test_matmul_into_matches_matmul;
          Alcotest.test_case "affine_rv_into" `Quick test_affine_rv_into;
          Alcotest.test_case "add_mul_rv_inplace" `Quick test_add_mul_rv_inplace;
          Alcotest.test_case "matmul_into rejects aliasing" `Quick
            test_matmul_into_rejects_aliasing;
          Alcotest.test_case "rows_view semantics" `Quick test_rows_view_semantics;
        ] );
      ( "differential",
        [
          Alcotest.test_case "matmul = oracle" `Quick test_diff_matmul;
          Alcotest.test_case "matmul (views) = oracle" `Quick test_diff_matmul_viewed;
          Alcotest.test_case "kk=1 fast path = oracle" `Quick test_diff_kk1_fast_path;
          Alcotest.test_case "broadcast kernels = oracle" `Quick
            test_diff_broadcast_kernels;
          Alcotest.test_case "affine_rv_into = oracle" `Quick test_diff_affine_rv_into;
          Alcotest.test_case "ops on views = ops on copies" `Quick test_diff_view_ops;
          Alcotest.test_case "rows_view bounds (fuzzed)" `Quick test_diff_rows_view_bounds;
          Alcotest.test_case "blit_into overlap" `Quick test_diff_blit_overlap;
          Alcotest.test_case "alias guard (fuzzed)" `Quick test_diff_alias_guard_fuzzed;
          Alcotest.test_case "signed zeros" `Quick test_signed_zero_semantics;
        ] );
      ("properties", qc);
    ]
