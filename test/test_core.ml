(* Component-level tests for the pnc_core circuit models: printable
   ranges, variation sampling, crossbar, ptanh, learnable filters,
   networks, hardware costing and the mu extraction. *)

module T = Pnc_tensor.Tensor
module Var = Pnc_autodiff.Var
module Rng = Pnc_util.Rng
module Printed = Pnc_core.Printed
module Variation = Pnc_core.Variation
module Crossbar = Pnc_core.Crossbar
module Ptanh = Pnc_core.Ptanh
module Filter_layer = Pnc_core.Filter_layer
module Network = Pnc_core.Network
module Elman = Pnc_core.Elman
module Model = Pnc_core.Model
module Mc_loss = Pnc_core.Mc_loss
module Hardware = Pnc_core.Hardware
module Coupling = Pnc_core.Coupling
module Filter = Pnc_signal.Filter

let approx ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

let check_f ?eps name expected got =
  Alcotest.(check bool) (Printf.sprintf "%s (exp %.6g, got %.6g)" name expected got) true
    (approx ?eps expected got)

let rng () = Rng.create ~seed:7

(* Printed ------------------------------------------------------------------ *)

let test_printed_ranges () =
  Alcotest.(check bool) "g bounds consistent" true
    (approx (1. /. Printed.crossbar_r_max) Printed.crossbar_g_min);
  check_f "threshold" 0.01 Printed.theta_print_threshold;
  check_f "clamp theta high" 1.0 (Printed.clamp_theta 3.);
  check_f "clamp theta neg" (-1.0) (Printed.clamp_theta (-3.));
  check_f "sub-threshold untouched" 0.001 (Printed.clamp_theta 0.001);
  check_f "filter r clamp" Printed.filter_r_max (Printed.clamp_filter_r 5000.);
  check_f "filter c clamp" Printed.filter_c_min (Printed.clamp_filter_c 1e-9)

(* Variation ----------------------------------------------------------------- *)

let test_variation_none () =
  let eps = Variation.sample_eps (rng ()) Variation.none ~rows:3 ~cols:4 in
  Alcotest.(check bool) "all ones" true (T.equal_eps ~eps:0. (T.create ~rows:3 ~cols:4 1.) eps)

let test_variation_uniform_bounds () =
  let r = rng () in
  let spec = Variation.uniform 0.1 in
  for _ = 1 to 1000 do
    let x = Variation.sample_scalar r spec in
    if x < 0.9 || x > 1.1 then Alcotest.failf "out of +-10%%: %f" x
  done

let test_variation_mean_one () =
  let r = rng () in
  List.iter
    (fun spec ->
      let xs = Array.init 20000 (fun _ -> Variation.sample_scalar r spec) in
      let m = Pnc_util.Stats.mean xs in
      Alcotest.(check bool) "mean near 1" true (Float.abs (m -. 1.) < 0.05))
    [ Variation.uniform 0.1; Variation.gaussian 0.1 ]

let test_variation_mu_v0 () =
  let r = rng () in
  let mu = Variation.sample_mu r ~cols:16 in
  for c = 0 to 15 do
    let m = T.get mu 0 c in
    if m < Printed.mu_min || m > Printed.mu_max then Alcotest.failf "mu out of range: %f" m
  done;
  let v0 = Variation.sample_v0 r ~sigma:0.05 ~cols:1000 in
  Alcotest.(check bool) "v0 centered" true (Float.abs (T.mean v0) < 0.01)

let test_draw_deterministic () =
  let d = Variation.deterministic in
  Alcotest.(check bool) "flagged" true (Variation.is_deterministic d);
  Alcotest.(check bool) "eps all 1" true
    (T.equal_eps ~eps:0. (T.create ~rows:2 ~cols:2 1.) (Variation.eps_for d ~rows:2 ~cols:2));
  Alcotest.(check bool) "mu all 1" true
    (T.equal_eps ~eps:0. (T.create ~rows:1 ~cols:3 1.) (Variation.mu_for d ~cols:3));
  Alcotest.(check bool) "v0 zero" true
    (T.equal_eps ~eps:0. (T.zeros ~rows:1 ~cols:3) (Variation.v0_for d ~cols:3))

(* Crossbar ------------------------------------------------------------------ *)

let test_crossbar_closed_form () =
  (* Hand-check Eq. (1) on a 2-input, 1-output crossbar. *)
  let cb = Crossbar.create (rng ()) ~inputs:2 ~outputs:1 in
  (* overwrite parameters with known values *)
  let theta = Crossbar.theta_values cb in
  ignore theta;
  let ps = Crossbar.params cb in
  (match ps with
  | [ th; thb ] ->
      let tv = Var.value th in
      T.set tv 0 0 0.6;
      T.set tv 1 0 (-0.4);
      T.set (Var.value thb) 0 0 0.2
  | _ -> Alcotest.fail "param structure");
  let x = Var.const (T.of_rows [| [| 0.5; -1. |] |]) in
  let out = Crossbar.forward ~draw:Variation.deterministic cb x in
  let expected = ((0.6 *. 0.5) +. (-0.4 *. -1.) +. 0.2) /. (0.6 +. 0.4 +. 0.2 +. Crossbar.g_dummy) in
  check_f ~eps:1e-9 "Eq. 1" expected (T.get (Var.value out) 0 0)

let test_crossbar_output_bounded () =
  (* Outputs are conductance-weighted averages: bounded by the largest
     input magnitude (and the 1 V bias). *)
  let r = rng () in
  for _ = 1 to 20 do
    let cb = Crossbar.create r ~inputs:5 ~outputs:3 in
    let x = Var.const (T.uniform r ~rows:4 ~cols:5 ~lo:(-1.) ~hi:1.) in
    let out = Var.value (Crossbar.forward ~draw:Variation.deterministic cb x) in
    Alcotest.(check bool) "bounded" true (T.max_abs out <= 1. +. 1e-9)
  done

let test_crossbar_variation_changes_output () =
  let cb = Crossbar.create (rng ()) ~inputs:3 ~outputs:2 in
  let x = Var.const (T.of_rows [| [| 0.3; -0.7; 0.5 |] |]) in
  let clean = Var.value (Crossbar.forward ~draw:Variation.deterministic cb x) in
  let draw = Variation.make_draw (rng ()) (Variation.uniform 0.1) in
  let noisy = Var.value (Crossbar.forward ~draw cb x) in
  Alcotest.(check bool) "different" false (T.equal_eps ~eps:1e-12 clean noisy);
  (* 10% component variation must not produce wild output swings here *)
  Alcotest.(check bool) "but close" true (T.equal_eps ~eps:0.2 clean noisy)

let test_crossbar_gradients () =
  (* Finite differences through the full crossbar expression. *)
  let cb = Crossbar.create (rng ()) ~inputs:3 ~outputs:2 in
  let x = T.of_rows [| [| 0.4; -0.2; 0.9 |]; [| -0.5; 0.1; 0.3 |] |] in
  let params = Crossbar.params cb in
  let f () = Var.sum (Var.sqr (Crossbar.forward ~draw:Variation.deterministic cb (Var.const x))) in
  List.iter Var.zero_grad params;
  Var.backward (f ());
  let analytic = List.map (fun p -> T.copy (Var.grad p)) params in
  List.iteri
    (fun pi p ->
      let v = Var.value p in
      let g = List.nth analytic pi in
      for r = 0 to T.rows v - 1 do
        for c = 0 to T.cols v - 1 do
          let orig = T.get v r c in
          let h = 1e-5 in
          T.set v r c (orig +. h);
          let fp = T.get_scalar (Var.value (f ())) in
          T.set v r c (orig -. h);
          let fm = T.get_scalar (Var.value (f ())) in
          T.set v r c orig;
          let fd = (fp -. fm) /. (2. *. h) in
          if Float.abs (fd -. T.get g r c) > 1e-4 *. Float.max 1. (Float.abs fd) then
            Alcotest.failf "crossbar grad mismatch p%d (%d,%d): fd %f vs %f" pi r c fd (T.get g r c)
        done
      done)
    params

let test_crossbar_clamp () =
  let cb = Crossbar.create (rng ()) ~inputs:2 ~outputs:2 in
  (match Crossbar.params cb with
  | [ th; _ ] ->
      T.set (Var.value th) 0 0 5.;
      T.set (Var.value th) 0 1 (-7.)
  | _ -> Alcotest.fail "params");
  Crossbar.clamp cb;
  let t = Crossbar.theta_values cb in
  check_f "clamped +" 1. (T.get t 0 0);
  check_f "clamped -" (-1.) (T.get t 0 1)

(* Ptanh ---------------------------------------------------------------------- *)

let test_ptanh_shape_and_formula () =
  let act = Ptanh.create (rng ()) ~features:2 in
  let etas = Ptanh.eta_values act in
  let x = Var.const (T.of_rows [| [| 0.3; -0.6 |] |]) in
  let out = Var.value (Ptanh.forward ~draw:Variation.deterministic act x) in
  for c = 0 to 1 do
    let e i = T.get etas.(i) 0 c in
    let expected = e 0 +. (e 1 *. tanh ((T.get (Var.value x) 0 c -. e 2) *. e 3)) in
    check_f ~eps:1e-9 (Printf.sprintf "ptanh ch%d" c) expected (T.get out 0 c)
  done

let test_ptanh_monotone () =
  let act = Ptanh.create (rng ()) ~features:1 in
  let prev = ref neg_infinity in
  for i = 0 to 40 do
    let v = -1. +. (0.05 *. float_of_int i) in
    let out =
      T.get
        (Var.value
           (Ptanh.forward ~draw:Variation.deterministic act (Var.const (T.of_rows [| [| v |] |]))))
        0 0
    in
    if out < !prev -. 1e-12 then Alcotest.fail "ptanh not monotone (eta2, eta4 > 0)";
    prev := out
  done

let test_ptanh_clamp () =
  let act = Ptanh.create (rng ()) ~features:1 in
  (match Ptanh.params act with
  | [ _; e2; _; e4 ] ->
      T.set (Var.value e2) 0 0 9.;
      T.set (Var.value e4) 0 0 100.
  | _ -> Alcotest.fail "params");
  Ptanh.clamp act;
  let etas = Ptanh.eta_values act in
  check_f "eta2 top" 1. (T.get etas.(1) 0 0);
  check_f "eta4 top" 6. (T.get etas.(3) 0 0)

(* Filter layer ---------------------------------------------------------------- *)

let filter_coeff_of_layer fl ~stage ~ch ~mu =
  let r = (Filter_layer.r_values fl).(stage).(ch) in
  let c = (Filter_layer.c_values fl).(stage).(ch) in
  Filter.discrete_coeffs ~mu ~dt:Printed.dt { Filter.r; c }

let run_filter_layer fl ~draw input =
  (* input: float array (single channel, batch 1) *)
  let real = Filter_layer.realize ~draw fl in
  let state = ref (Filter_layer.init_state real ~batch:1) in
  Array.map
    (fun x ->
      let st, out = Filter_layer.step real !state (Var.const (T.of_rows [| [| x |] |])) in
      state := st;
      T.get (Var.value out) 0 0)
    input

let test_filter_first_order_matches_theory () =
  let fl = Filter_layer.create (rng ()) Filter_layer.First ~features:1 in
  let input = Array.init 40 (fun i -> sin (0.3 *. float_of_int i)) in
  let got = run_filter_layer fl ~draw:Variation.deterministic input in
  let co = filter_coeff_of_layer fl ~stage:0 ~ch:0 ~mu:1. in
  let expected = Filter.apply co input in
  Alcotest.(check bool) "matches discrete model" true
    (Pnc_util.Vec.equal_eps ~eps:1e-9 expected got)

let test_filter_second_order_matches_theory () =
  let fl = Filter_layer.create (rng ()) Filter_layer.Second ~features:1 in
  let input = Array.init 40 (fun i -> cos (0.2 *. float_of_int i)) in
  let got = run_filter_layer fl ~draw:Variation.deterministic input in
  let c1 = filter_coeff_of_layer fl ~stage:0 ~ch:0 ~mu:1. in
  let c2 = filter_coeff_of_layer fl ~stage:1 ~ch:0 ~mu:1. in
  let expected = Filter.apply_second_order ~c1 ~c2 input in
  Alcotest.(check bool) "matches cascade" true (Pnc_util.Vec.equal_eps ~eps:1e-9 expected got)

let test_filter_gradients () =
  (* FD check through the unrolled second-order filter. *)
  let fl = Filter_layer.create (rng ()) Filter_layer.Second ~features:2 in
  let params = Filter_layer.params fl in
  let xs = Array.init 6 (fun i -> T.of_rows [| [| sin (0.4 *. float_of_int i); 0.3 |] |]) in
  let f () =
    let real = Filter_layer.realize ~draw:Variation.deterministic fl in
    let state = ref (Filter_layer.init_state real ~batch:1) in
    let last = ref (Var.const (T.zeros ~rows:1 ~cols:2)) in
    Array.iter
      (fun x ->
        let st, out = Filter_layer.step real !state (Var.const x) in
        state := st;
        last := out)
      xs;
    Var.sum (Var.sqr !last)
  in
  List.iter Var.zero_grad params;
  Var.backward (f ());
  let analytic = List.map (fun p -> T.copy (Var.grad p)) params in
  List.iteri
    (fun pi p ->
      let v = Var.value p in
      let g = List.nth analytic pi in
      for c = 0 to T.cols v - 1 do
        let orig = T.get v 0 c in
        let h = 1e-6 in
        T.set v 0 c (orig +. h);
        let fp = T.get_scalar (Var.value (f ())) in
        T.set v 0 c (orig -. h);
        let fm = T.get_scalar (Var.value (f ())) in
        T.set v 0 c orig;
        let fd = (fp -. fm) /. (2. *. h) in
        if Float.abs (fd -. T.get g 0 c) > 1e-3 *. Float.max 1. (Float.abs fd) then
          Alcotest.failf "filter grad mismatch p%d ch%d: fd %g vs %g" pi c fd (T.get g 0 c)
      done)
    params

let test_filter_mu_reduces_gain () =
  (* mu > 1 shunts current: the DC gain of the realized filter drops. *)
  let fl = Filter_layer.create (rng ()) Filter_layer.First ~features:1 in
  let step_input = Array.make 600 1. in
  let clean = run_filter_layer fl ~draw:Variation.deterministic step_input in
  let coupled_draw = Variation.make_draw (Rng.create ~seed:3) Variation.none in
  (* Variation.none keeps eps at 1 but non-deterministic draw samples mu in [1,1.3] *)
  let coupled = run_filter_layer fl ~draw:coupled_draw step_input in
  check_f ~eps:1e-6 "clean settles to 1" 1. clean.(599);
  Alcotest.(check bool)
    (Printf.sprintf "coupled settles below 1 (%.4f)" coupled.(599))
    true
    (coupled.(599) < 1. -. 1e-4)

(* Initial-state semantics (PR 9 fix): the explicit reset/init entry
   point distinguishes the settled circuit (`Zero), the historical
   drawn-V0 broadcast (`V0, the default — unchanged behaviour) and the
   sliding-window randomized start (`Gaussian), which must be
   seeded-reproducible and distinguishable from both. *)
let test_filter_state_init_semantics () =
  let fl = Filter_layer.create (rng ()) Filter_layer.Second ~features:3 in
  let draw = Variation.make_draw (Rng.create ~seed:5) (Variation.uniform 0.1) in
  let real = Filter_layer.realize_t ~draw fl in
  let batch = 4 in
  let eq0 = Array.for_all2 (T.equal_eps ~eps:0.) in
  let v0 = Filter_layer.init_state_t real ~batch in
  let zero = Filter_layer.init_state_t ~init:`Zero real ~batch in
  Array.iter
    (fun s ->
      Alcotest.(check bool) "`Zero is the settled circuit" true
        (T.equal_eps ~eps:0. s (T.zeros ~rows:batch ~cols:(T.cols s))))
    zero;
  Alcotest.(check bool) "drawn V0 differs from the settled state" false (eq0 v0 zero);
  let gauss seed = Filter_layer.init_state_t ~init:(`Gaussian (Rng.create ~seed, 0.2)) real ~batch in
  Alcotest.(check bool) "randomized init is seeded-reproducible" true (eq0 (gauss 9) (gauss 9));
  Alcotest.(check bool) "randomized init follows the seed" false (eq0 (gauss 9) (gauss 10));
  Alcotest.(check bool) "randomized init differs from zero init" false (eq0 (gauss 9) zero);
  (* reset_state_t re-initializes in place: resetting a randomized
     state back to `V0 reproduces a fresh `V0 state bit-for-bit. *)
  let st = gauss 9 in
  Filter_layer.reset_state_t real st;
  Alcotest.(check bool) "reset to `V0 = fresh `V0" true (eq0 st v0)

let test_filter_params_count () =
  let f1 = Filter_layer.create (rng ()) Filter_layer.First ~features:4 in
  let f2 = Filter_layer.create (rng ()) Filter_layer.Second ~features:4 in
  Alcotest.(check int) "first order params" 2 (List.length (Filter_layer.params f1));
  Alcotest.(check int) "second order params" 4 (List.length (Filter_layer.params f2))

let test_filter_clamp_and_ranges () =
  let fl = Filter_layer.create (rng ()) Filter_layer.Second ~features:3 in
  List.iter (fun p -> T.set (Var.value p) 0 0 99.) (Filter_layer.params fl);
  Filter_layer.clamp fl;
  Array.iter
    (fun stage ->
      Array.iter
        (fun r ->
          if r < Printed.filter_r_min -. 1e-9 || r > Printed.filter_r_max +. 1e-9 then
            Alcotest.failf "R out of printable range: %g" r)
        stage)
    (Filter_layer.r_values fl);
  Array.iter
    (fun stage ->
      Array.iter
        (fun c ->
          if c < Printed.filter_c_min -. 1e-15 || c > Printed.filter_c_max +. 1e-9 then
            Alcotest.failf "C out of printable range: %g" c)
        stage)
    (Filter_layer.c_values fl)

let test_filter_cutoffs_positive () =
  let fl = Filter_layer.create (rng ()) Filter_layer.Second ~features:3 in
  Array.iter
    (fun fc -> Alcotest.(check bool) "cutoff positive finite" true (fc > 0. && Float.is_finite fc))
    (Filter_layer.cutoff_hz fl)

(* Network ---------------------------------------------------------------------- *)

let test_network_shapes () =
  let net = Network.create (rng ()) Network.Adapt ~inputs:1 ~classes:4 in
  let x = T.uniform (rng ()) ~rows:5 ~cols:16 ~lo:(-1.) ~hi:1. in
  let out = Var.value (Network.forward ~draw:Variation.deterministic net x) in
  Alcotest.(check int) "batch" 5 (T.rows out);
  Alcotest.(check int) "classes" 4 (T.cols out);
  Alcotest.(check int) "hidden default" 6 (Network.hidden net);
  Alcotest.(check int) "layers" 2 (List.length (Network.layers net))

let test_network_deterministic_repeatable () =
  let net = Network.create (rng ()) Network.Ptpnc ~inputs:1 ~classes:2 in
  let x = T.uniform (rng ()) ~rows:3 ~cols:10 ~lo:(-1.) ~hi:1. in
  let a = Var.value (Network.forward ~draw:Variation.deterministic net x) in
  let b = Var.value (Network.forward ~draw:Variation.deterministic net x) in
  Alcotest.(check bool) "same output" true (T.equal_eps ~eps:0. a b)

let test_network_variation_perturbs () =
  let net = Network.create (rng ()) Network.Adapt ~inputs:1 ~classes:2 in
  let x = T.uniform (rng ()) ~rows:3 ~cols:10 ~lo:(-1.) ~hi:1. in
  let clean = Var.value (Network.forward ~draw:Variation.deterministic net x) in
  let draw = Variation.make_draw (rng ()) (Variation.uniform 0.1) in
  let noisy = Var.value (Network.forward ~draw net x) in
  Alcotest.(check bool) "outputs differ" false (T.equal_eps ~eps:1e-12 clean noisy)

let test_network_param_counts () =
  (* inputs=1, hidden=h, classes=c:
     layer1: theta 1*h + bias h + filter (stages*2*h) + ptanh 4h
     layer2: theta h*c + bias c + filter stages*2*c + ptanh 4c *)
  let net = Network.create ~hidden:3 (rng ()) Network.Ptpnc ~inputs:1 ~classes:2 in
  let expected = (3 + 3 + 6 + 12) + (6 + 2 + 4 + 8) in
  Alcotest.(check int) "ptpnc params" expected (Network.n_params net);
  let net2 = Network.create ~hidden:3 (rng ()) Network.Adapt ~inputs:1 ~classes:2 in
  let expected2 = (3 + 3 + 12 + 12) + (6 + 2 + 8 + 8) in
  Alcotest.(check int) "adapt params" expected2 (Network.n_params net2)

let test_network_outputs_bounded () =
  (* ptanh output is eta1 + eta2*tanh(...) with |eta1| <= 1, eta2 <= 1. *)
  let net = Network.create (rng ()) Network.Adapt ~inputs:1 ~classes:3 in
  let x = T.uniform (rng ()) ~rows:8 ~cols:64 ~lo:(-1.) ~hi:1. in
  let out = Var.value (Network.forward ~draw:Variation.deterministic net x) in
  Alcotest.(check bool) "bounded by 2" true (T.max_abs out <= 2.)

let test_network_multivariate () =
  (* Fig. 4's block has multiple sensory inputs: drive a 2-input network
     through forward_multi. *)
  let net = Network.create ~hidden:3 (rng ()) Network.Adapt ~inputs:2 ~classes:2 in
  let steps =
    Array.init 12 (fun k ->
        T.of_rows
          [|
            [| sin (0.3 *. float_of_int k); cos (0.3 *. float_of_int k) |];
            [| 0.1; -0.2 |];
          |])
  in
  let out = Var.value (Network.forward_multi ~draw:Variation.deterministic net steps) in
  Alcotest.(check int) "batch 2" 2 (T.rows out);
  Alcotest.(check int) "classes 2" 2 (T.cols out);
  Alcotest.(check bool) "finite" true (Float.is_finite (T.sum out))

let test_readout_variants () =
  let net = Network.create ~hidden:3 (rng ()) Network.Adapt ~inputs:1 ~classes:2 in
  let x = T.uniform (rng ()) ~rows:3 ~cols:16 ~lo:(-1.) ~hi:1. in
  let integrated =
    Var.value (Network.forward_readout ~readout:Network.Integrated ~draw:Variation.deterministic net x)
  in
  let last =
    Var.value (Network.forward_readout ~readout:Network.Last_step ~draw:Variation.deterministic net x)
  in
  Alcotest.(check bool) "variants differ" false (T.equal_eps ~eps:1e-12 integrated last);
  let default = Var.value (Network.forward ~draw:Variation.deterministic net x) in
  Alcotest.(check bool) "forward = integrated" true (T.equal_eps ~eps:0. integrated default)

let test_model_dispatch () =
  let net = Network.create (rng ()) Network.Adapt ~inputs:1 ~classes:2 in
  let e = Elman.create (rng ()) ~inputs:1 ~classes:2 in
  Alcotest.(check string) "circuit label" "ADAPT-pNC" (Model.label (Model.Circuit net));
  Alcotest.(check string) "rnn label" "Elman RNN" (Model.label (Model.Reference e));
  Alcotest.(check bool) "is_circuit" true (Model.is_circuit (Model.Circuit net));
  let x = T.uniform (rng ()) ~rows:2 ~cols:8 ~lo:(-1.) ~hi:1. in
  Alcotest.(check int) "predict length" 2 (Array.length (Model.predict (Model.Circuit net) x))

(* Elman -------------------------------------------------------------------------- *)

let test_elman_shapes () =
  let e = Elman.create ~hidden:5 (rng ()) ~inputs:1 ~classes:3 in
  let x = T.uniform (rng ()) ~rows:4 ~cols:12 ~lo:(-1.) ~hi:1. in
  let out = Var.value (Elman.forward e x) in
  Alcotest.(check int) "batch" 4 (T.rows out);
  Alcotest.(check int) "classes" 3 (T.cols out);
  Alcotest.(check int) "param tensors" 8 (List.length (Elman.params e));
  Alcotest.(check int) "n_params" ((1 * 5) + 25 + 5 + 25 + 25 + 5 + 15 + 3) (Elman.n_params e)

let test_elman_multivariate () =
  let e = Elman.create ~hidden:4 (rng ()) ~inputs:2 ~classes:3 in
  let steps =
    Array.init 8 (fun k -> T.of_rows [| [| sin (0.5 *. float_of_int k); 0.3 |] |])
  in
  let out = Var.value (Elman.forward_multi e steps) in
  Alcotest.(check int) "classes" 3 (T.cols out);
  Alcotest.(check bool) "finite" true (Float.is_finite (T.sum out))

let test_elman_depends_on_sequence () =
  let e = Elman.create (rng ()) ~inputs:1 ~classes:2 in
  let x1 = T.of_rows [| Array.init 10 (fun i -> float_of_int i /. 10.) |] in
  let x2 = T.of_rows [| Array.init 10 (fun i -> float_of_int (9 - i) /. 10.) |] in
  let o1 = Var.value (Elman.forward e x1) and o2 = Var.value (Elman.forward e x2) in
  Alcotest.(check bool) "order matters" false (T.equal_eps ~eps:1e-12 o1 o2)

let test_elman_gradients () =
  (* BPTT through a short unrolled Elman layer vs finite differences. *)
  let e = Elman.create ~hidden:3 (rng ()) ~inputs:1 ~classes:2 in
  let x = T.uniform (rng ()) ~rows:2 ~cols:5 ~lo:(-1.) ~hi:1. in
  let f () = Var.sum (Var.sqr (Elman.forward e x)) in
  let params = Elman.params e in
  List.iter Var.zero_grad params;
  Var.backward (f ());
  let analytic = List.map (fun p -> T.copy (Var.grad p)) params in
  List.iteri
    (fun pi p ->
      let v = Var.value p in
      let g = List.nth analytic pi in
      for r = 0 to T.rows v - 1 do
        for c = 0 to T.cols v - 1 do
          let orig = T.get v r c in
          let h = 1e-5 in
          T.set v r c (orig +. h);
          let fp = T.get_scalar (Var.value (f ())) in
          T.set v r c (orig -. h);
          let fm = T.get_scalar (Var.value (f ())) in
          T.set v r c orig;
          let fd = (fp -. fm) /. (2. *. h) in
          if Float.abs (fd -. T.get g r c) > 1e-3 *. Float.max 1. (Float.abs fd) then
            Alcotest.failf "elman grad mismatch p%d (%d,%d): %g vs %g" pi r c fd (T.get g r c)
        done
      done)
    params

let test_variation_gmm_spread () =
  let r = rng () in
  let spec = Variation.default_gmm 0.1 in
  let xs = Array.init 20_000 (fun _ -> Variation.sample_scalar r spec) in
  let m = Pnc_util.Stats.mean xs and s = Pnc_util.Stats.std xs in
  Alcotest.(check bool) (Printf.sprintf "mean near 1 (%.4f)" m) true (Float.abs (m -. 1.) < 0.02);
  Alcotest.(check bool) "has spread" true (s > 0.02 && s < 0.2);
  (* heavier tails than the uniform model at the same level *)
  let extreme = Array.fold_left (fun acc x -> if Float.abs (x -. 1.) > 0.1 then acc + 1 else acc) 0 xs in
  Alcotest.(check bool) "mixture exceeds uniform bounds sometimes" true (extreme > 100)

let test_hardware_g_scale () =
  let ratio = Hardware.g_scale Network.Ptpnc /. Hardware.g_scale Network.Adapt in
  Alcotest.(check bool) "adapt printed at 10x higher resistance" true
    (Float.abs (ratio -. 10.) < 1e-9)

let test_predict_with_draw_varies () =
  let net = Network.create (rng ()) Network.Adapt ~inputs:1 ~classes:2 in
  let x = T.uniform (rng ()) ~rows:20 ~cols:16 ~lo:(-1.) ~hi:1. in
  let p1 = Network.predict net x in
  let p2 = Network.predict net x in
  Alcotest.(check (array int)) "deterministic predict repeatable" p1 p2

(* MC loss ------------------------------------------------------------------------- *)

let test_mc_loss_reduces_without_variation () =
  let net = Network.create (rng ()) Network.Adapt ~inputs:1 ~classes:2 in
  let model = Model.Circuit net in
  let x = T.uniform (rng ()) ~rows:6 ~cols:10 ~lo:(-1.) ~hi:1. in
  let labels = [| 0; 1; 0; 1; 0; 1 |] in
  let r = Rng.create ~seed:5 in
  let l1 = Mc_loss.expected_value ~rng:r ~spec:Variation.none ~n:1 model ~x ~labels in
  let l4 = Mc_loss.expected_value ~rng:r ~spec:Variation.none ~n:4 model ~x ~labels in
  (* without variation the MC average over identical draws changes only
     through V0 sampling; with v0_sigma forced by make_draw the draws
     still match because spec.level = 0 keeps eps at 1 but v0 varies --
     so compare within a loose tolerance. *)
  Alcotest.(check bool) "close" true (Float.abs (l1 -. l4) < 0.2)

let test_mc_loss_positive () =
  let net = Network.create (rng ()) Network.Ptpnc ~inputs:1 ~classes:3 in
  let model = Model.Circuit net in
  let x = T.uniform (rng ()) ~rows:9 ~cols:10 ~lo:(-1.) ~hi:1. in
  let labels = Array.init 9 (fun i -> i mod 3) in
  let l =
    Mc_loss.expected_value ~rng:(Rng.create ~seed:1) ~spec:(Variation.uniform 0.1) ~n:3 model ~x
      ~labels
  in
  Alcotest.(check bool) "positive finite" true (l > 0. && Float.is_finite l)

let test_antithetic_mirror_mirrors () =
  let rng1 = Rng.create ~seed:5 in
  let d1, d2 = Variation.antithetic_pair rng1 (Variation.uniform 0.1) in
  let e1 = Variation.eps_for d1 ~rows:2 ~cols:3 in
  let e2 = Variation.eps_for d2 ~rows:2 ~cols:3 in
  (* elementwise e1 + e2 = 2 (reflection around the mean 1) *)
  Alcotest.(check bool) "reflected" true
    (T.equal_eps ~eps:1e-12 (T.create ~rows:2 ~cols:3 2.) (T.add e1 e2));
  let m1 = Variation.mu_for d1 ~cols:4 and m2 = Variation.mu_for d2 ~cols:4 in
  Alcotest.(check bool) "mu reflected" true
    (T.equal_eps ~eps:1e-12
       (T.create ~rows:1 ~cols:4 (Printed.mu_min +. Printed.mu_max))
       (T.add m1 m2));
  let v1 = Variation.v0_for d1 ~cols:4 and v2 = Variation.v0_for d2 ~cols:4 in
  Alcotest.(check bool) "v0 negated" true
    (T.equal_eps ~eps:1e-12 (T.zeros ~rows:1 ~cols:4) (T.add v1 v2))

let test_antithetic_reduces_variance () =
  (* Estimate the MC loss of a fixed circuit with n=2 many times, with
     and without antithetic pairing: the pairing must shrink the
     spread of the estimates. *)
  let net = Network.create ~hidden:3 (rng ()) Network.Adapt ~inputs:1 ~classes:2 in
  let model = Pnc_core.Model.Circuit net in
  let x = T.uniform (rng ()) ~rows:10 ~cols:12 ~lo:(-1.) ~hi:1. in
  let labels = Array.init 10 (fun i -> i mod 2) in
  let estimates antithetic =
    Array.init 40 (fun seed ->
        Mc_loss.expected_value ~antithetic ~rng:(Rng.create ~seed:(seed * 13))
          ~spec:(Variation.uniform 0.2) ~n:2 model ~x ~labels)
  in
  let s_plain = Pnc_util.Stats.std (estimates false) in
  let s_anti = Pnc_util.Stats.std (estimates true) in
  Alcotest.(check bool)
    (Printf.sprintf "antithetic std %.5f < plain %.5f" s_anti s_plain)
    true (s_anti < s_plain)

let test_antithetic_same_mean () =
  let net = Network.create ~hidden:3 (rng ()) Network.Adapt ~inputs:1 ~classes:2 in
  let model = Pnc_core.Model.Circuit net in
  let x = T.uniform (rng ()) ~rows:10 ~cols:12 ~lo:(-1.) ~hi:1. in
  let labels = Array.init 10 (fun i -> i mod 2) in
  let mean antithetic =
    Pnc_util.Stats.mean
      (Array.init 60 (fun seed ->
           Mc_loss.expected_value ~antithetic ~rng:(Rng.create ~seed:(seed * 7))
             ~spec:(Variation.uniform 0.2) ~n:2 model ~x ~labels))
  in
  Alcotest.(check bool) "estimators agree in mean" true
    (Float.abs (mean true -. mean false) < 0.02)

(* Tensor fast path ------------------------------------------------------------------ *)

let test_fast_path_parity_circuit () =
  (* No-grad logits must be bit-identical to the Var-path logits under
     the same variation draw, for both circuit architectures. *)
  List.iter
    (fun arch ->
      let net = Network.create (rng ()) arch ~inputs:1 ~classes:3 in
      let x = T.uniform (rng ()) ~rows:5 ~cols:24 ~lo:(-1.) ~hi:1. in
      let spec = Variation.uniform 0.1 in
      let d_var = Variation.make_draw (Rng.create ~seed:42) spec in
      let d_fast = Variation.make_draw (Rng.create ~seed:42) spec in
      let var_logits = Var.value (Network.forward ~draw:d_var net x) in
      let fast_logits = Network.forward_t ~draw:d_fast net x in
      Alcotest.(check bool)
        (Network.arch_name arch ^ " bit-identical logits")
        true
        (T.equal_eps ~eps:0. var_logits fast_logits);
      (* Deterministic draw too (exercises the eps = 1 branches). *)
      let model = Model.Circuit net in
      Alcotest.(check bool)
        (Network.arch_name arch ^ " deterministic parity")
        true
        (T.equal_eps ~eps:0.
           (Var.value (Model.logits model x))
           (Model.logits_t model x)))
    [ Network.Ptpnc; Network.Adapt ]

let test_fast_path_parity_reference () =
  let m = Elman.create (rng ()) ~inputs:1 ~classes:3 in
  let x = T.uniform (rng ()) ~rows:5 ~cols:24 ~lo:(-1.) ~hi:1. in
  Alcotest.(check bool) "elman bit-identical logits" true
    (T.equal_eps ~eps:0. (Var.value (Elman.forward m x)) (Elman.forward_t m x));
  let model = Model.Reference m in
  Alcotest.(check bool) "model dispatch parity" true
    (T.equal_eps ~eps:0. (Var.value (Model.logits model x)) (Model.logits_t model x))

let test_fast_path_readouts_parity () =
  let net = Network.create (rng ()) Network.Adapt ~inputs:1 ~classes:2 in
  let x = T.uniform (rng ()) ~rows:4 ~cols:16 ~lo:(-1.) ~hi:1. in
  List.iter
    (fun readout ->
      let d1 = Variation.make_draw (Rng.create ~seed:9) (Variation.uniform 0.1) in
      let d2 = Variation.make_draw (Rng.create ~seed:9) (Variation.uniform 0.1) in
      Alcotest.(check bool) "readout parity" true
        (T.equal_eps ~eps:0.
           (Var.value (Network.forward_readout ~readout ~draw:d1 net x))
           (Network.forward_readout_t ~readout ~draw:d2 net x)))
    [ Network.Integrated; Network.Last_step ]

let test_expected_value_matches_var_path () =
  (* The pure-tensor MC estimate consumes the same random stream and
     computes (up to the fused-loss value trick, an ulp) the same
     number as the Var-graph estimate. *)
  let net = Network.create (rng ()) Network.Adapt ~inputs:1 ~classes:2 in
  let model = Model.Circuit net in
  let x = T.uniform (rng ()) ~rows:6 ~cols:12 ~lo:(-1.) ~hi:1. in
  let labels = [| 0; 1; 0; 1; 0; 1 |] in
  List.iter
    (fun antithetic ->
      let v_var =
        T.get_scalar
          (Var.value
             (Mc_loss.expected ~antithetic ~rng:(Rng.create ~seed:11)
                ~spec:(Variation.uniform 0.1) ~n:3 model ~x ~labels))
      in
      let v_fast =
        Mc_loss.expected_value ~antithetic ~rng:(Rng.create ~seed:11)
          ~spec:(Variation.uniform 0.1) ~n:3 model ~x ~labels
      in
      Alcotest.(check bool)
        (Printf.sprintf "mc estimate agrees (antithetic=%b)" antithetic)
        true
        (Float.abs (v_var -. v_fast) <= 1e-12))
    [ false; true ]

let test_expected_value_reseed_regression () =
  (* Re-seeding reproduces the whole sequential draw sequence exactly:
     the per-draw child streams come from indexed splitting, so the MC
     estimate is a pure function of the seed — repeated runs, and runs
     interleaved with unrelated rng activity, give the identical bits.
     Guards the reproducibility contract the pool parity tests build on. *)
  let net = Network.create (rng ()) Network.Adapt ~inputs:1 ~classes:2 in
  let model = Model.Circuit net in
  let x = T.uniform (rng ()) ~rows:5 ~cols:10 ~lo:(-1.) ~hi:1. in
  let labels = [| 0; 1; 0; 1; 1 |] in
  let eval () =
    Mc_loss.expected_value ~rng:(Rng.create ~seed:23) ~spec:(Variation.uniform 0.15) ~n:6 model
      ~x ~labels
  in
  let v1 = eval () in
  (* Unrelated global-ish rng noise between runs must not leak in. *)
  let noise = Rng.create ~seed:999 in
  for _ = 1 to 100 do
    ignore (Rng.gaussian noise)
  done;
  let v2 = eval () in
  Alcotest.(check bool)
    (Printf.sprintf "re-seeded run identical (%.17g vs %.17g)" v1 v2)
    true (v1 = v2);
  (* And the Var-graph objective is equally a pure function of the seed. *)
  let tr seed =
    T.get_scalar
      (Var.value
         (Mc_loss.expected ~rng:(Rng.create ~seed) ~spec:(Variation.uniform 0.15) ~n:4 model ~x
            ~labels))
  in
  Alcotest.(check bool) "Var path re-seeded run identical" true (tr 29 = tr 29)

let test_fast_path_allocates_no_var_nodes () =
  let net = Network.create (rng ()) Network.Adapt ~inputs:1 ~classes:2 in
  let model = Model.Circuit net in
  let x = T.uniform (rng ()) ~rows:4 ~cols:12 ~lo:(-1.) ~hi:1. in
  let labels = [| 0; 1; 0; 1 |] in
  let before = Var.nodes_created () in
  let _ = Model.predict model x in
  let _ =
    Mc_loss.expected_value ~rng:(Rng.create ~seed:3) ~spec:(Variation.uniform 0.1) ~n:4 model
      ~x ~labels
  in
  let d = Variation.make_draw (Rng.create ~seed:4) (Variation.uniform 0.1) in
  let _ = Model.predict ~draw:d model x in
  Alcotest.(check int) "zero Var nodes allocated" before (Var.nodes_created ())

(* Hardware -------------------------------------------------------------------------- *)

let test_hardware_counts_shape () =
  let rng_ = rng () in
  let base = Network.create rng_ Network.Ptpnc ~inputs:1 ~classes:2 in
  let adapt = Network.create rng_ Network.Adapt ~inputs:1 ~classes:2 in
  let cb = Hardware.of_network base and ca = Hardware.of_network adapt in
  Alcotest.(check bool) "adapt needs more devices" true (Hardware.total ca > Hardware.total cb);
  Alcotest.(check bool) "adapt has >= 2x caps" true (ca.Hardware.capacitors >= 2 * cb.Hardware.capacitors);
  (* first-order: one cap per filter channel (hidden + classes), plus
     one output integrator per class *)
  Alcotest.(check int) "baseline caps" (Network.hidden base + 2 + 2) cb.Hardware.capacitors;
  Alcotest.(check int) "adapt caps" ((2 * (Network.hidden adapt + 2)) + 2) ca.Hardware.capacitors

let test_hardware_power_ordering () =
  let rng_ = rng () in
  let base = Network.create rng_ Network.Ptpnc ~inputs:1 ~classes:2 in
  let adapt = Network.create rng_ Network.Adapt ~inputs:1 ~classes:2 in
  let pb = Hardware.power_mw base and pa = Hardware.power_mw adapt in
  Alcotest.(check bool) "both positive" true (pb > 0. && pa > 0.);
  Alcotest.(check bool)
    (Printf.sprintf "adapt uses less power (%.4f vs %.4f mW)" pa pb)
    true (pa < pb);
  (* the paper reports ~91%% saving; require at least 2x here *)
  Alcotest.(check bool) "substantial saving" true (pa < pb /. 2.)

let test_hardware_unprinted_weights_cost_nothing () =
  let net = Network.create ~hidden:2 (rng ()) Network.Ptpnc ~inputs:1 ~classes:2 in
  let before = Hardware.of_network net in
  (* zero out one crossbar weight: one resistor disappears *)
  (match Network.layers net with
  | (cb, _, _) :: _ -> (
      match Crossbar.params cb with
      | [ th; _ ] -> T.set (Var.value th) 0 0 0.
      | _ -> Alcotest.fail "params")
  | [] -> Alcotest.fail "layers");
  let after = Hardware.of_network net in
  Alcotest.(check bool) "fewer resistors" true (after.Hardware.resistors < before.Hardware.resistors)

let test_hardware_counts_monotone_in_width () =
  let small = Network.create ~hidden:2 (rng ()) Network.Adapt ~inputs:1 ~classes:2 in
  let large = Network.create ~hidden:8 (rng ()) Network.Adapt ~inputs:1 ~classes:2 in
  Alcotest.(check bool) "wider nets cost more" true
    (Hardware.total (Hardware.of_network large) > Hardware.total (Hardware.of_network small))

(* Sensitivity -------------------------------------------------------------------------- *)

let small_test_set () =
  let raw = Pnc_data.Registry.load ~seed:9 ~n:40 "GPOVY" in
  let split = Pnc_data.Dataset.preprocess (Rng.create ~seed:10) raw in
  split.Pnc_data.Dataset.test

let test_sensitivity_rows () =
  let net = Network.create ~hidden:3 (rng ()) Network.Adapt ~inputs:1 ~classes:2 in
  let rows =
    Pnc_core.Sensitivity.analyze ~rng:(rng ()) ~level:0.1 ~draws:3 net (small_test_set ())
  in
  Alcotest.(check int) "four rows" 4 (List.length rows);
  List.iter
    (fun r ->
      Alcotest.(check bool) "accuracy in range" true
        (r.Pnc_core.Sensitivity.accuracy >= 0. && r.Pnc_core.Sensitivity.accuracy <= 1.))
    rows

let test_sensitivity_zero_level_no_drop () =
  let net = Network.create ~hidden:3 (rng ()) Network.Adapt ~inputs:1 ~classes:2 in
  let rows =
    Pnc_core.Sensitivity.analyze ~rng:(rng ()) ~level:0. ~draws:2 net (small_test_set ())
  in
  (* With zero variation only V0/mu sampling remains; crossbar and eta
     rows must show no drop at all (their draws are exactly nominal
     except v0/mu which only affect the filter path). *)
  let row f = List.find (fun r -> r.Pnc_core.Sensitivity.family = f) rows in
  Alcotest.(check bool) "theta-only no large drop" true
    (Float.abs (row Pnc_core.Sensitivity.Crossbar_conductances).Pnc_core.Sensitivity.drop < 0.2)

(* Discretize ---------------------------------------------------------------------------- *)

let test_quantize_value () =
  let q = Pnc_core.Discretize.quantize_value ~levels:2 in
  check_f "below threshold -> 0" 0. (q 0.001);
  check_f "snaps low" Printed.theta_print_threshold (q 0.02);
  check_f "snaps high" 1. (q 0.8);
  check_f "sign preserved" (-1.) (q (-0.9));
  (* many levels approximate identity *)
  let q64 = Pnc_core.Discretize.quantize_value ~levels:64 in
  Alcotest.(check bool) "fine grid close" true (Float.abs (q64 0.5 -. 0.5) < 0.01)

let test_quantize_idempotent () =
  let q = Pnc_core.Discretize.quantize_value ~levels:5 in
  let xs = [ 0.03; 0.2; 0.55; 0.99; -0.4 ] in
  List.iter (fun x -> check_f ~eps:1e-12 "idempotent" (q x) (q (q x))) xs

let test_with_quantized_restores () =
  let net = Network.create ~hidden:2 (rng ()) Network.Ptpnc ~inputs:1 ~classes:2 in
  let before =
    List.map (fun (cb, _, _) -> Crossbar.theta_values cb) (Network.layers net)
  in
  let inside =
    Pnc_core.Discretize.with_quantized ~levels:2 net (fun () ->
        List.map (fun (cb, _, _) -> Crossbar.theta_values cb) (Network.layers net))
  in
  let after = List.map (fun (cb, _, _) -> Crossbar.theta_values cb) (Network.layers net) in
  Alcotest.(check bool) "changed inside" false
    (List.for_all2 (T.equal_eps ~eps:0.) before inside);
  Alcotest.(check bool) "restored after" true (List.for_all2 (T.equal_eps ~eps:0.) before after)

let test_accuracy_ladder_shape () =
  let net = Network.create ~hidden:2 (rng ()) Network.Ptpnc ~inputs:1 ~classes:2 in
  let ladder =
    Pnc_core.Discretize.accuracy_ladder ~levels_list:[ 2; 8; 32 ] net (small_test_set ())
  in
  Alcotest.(check int) "three entries" 3 (List.length ladder);
  List.iter (fun (_, acc) -> Alcotest.(check bool) "acc range" true (acc >= 0. && acc <= 1.)) ladder

(* Coupling ---------------------------------------------------------------------------- *)

let test_mu_extraction_matches_theory () =
  List.iter
    (fun (r, c, r_load) ->
      let e = Coupling.extract ~r ~c ~r_load () in
      let theory = Coupling.mu_theory ~c ~r_load in
      if Float.abs (e.Coupling.mu -. theory) > 0.05 then
        Alcotest.failf "r=%g c=%g rl=%g: extracted %f vs theory %f" r c r_load e.Coupling.mu
          theory)
    [ (1000., 1e-6, 6_800.); (330., 1e-5, 33_000.); (1000., 1e-5, 100_000.) ]

let test_mu_survey_range () =
  let xs = Coupling.survey () in
  let lo, hi = Coupling.mu_range xs in
  (* The effective mu is an empirical fit (the paper also determines it
     empirically); weak-coupling configurations can dip a hair below 1
     from discretization bias of the first-order fit. *)
  Alcotest.(check bool) (Printf.sprintf "mu range [%.3f, %.3f] in paper band" lo hi) true
    (lo >= 0.95 && hi <= 1.35);
  Alcotest.(check bool) "non-trivial coupling observed" true (hi > 1.2)

let test_mu_fit_quality () =
  let e = Coupling.extract ~r:500. ~c:5e-5 ~r_load:10_000. () in
  Alcotest.(check bool) "first-order fit is good" true (e.Coupling.fit_rms < 0.02)

(* Ptanh circuit ----------------------------------------------------------------------- *)

let test_ptanh_circuit_transfer_shape () =
  let v_in = Pnc_util.Vec.linspace (-1.) 1. 41 in
  let v_out = Pnc_core.Ptanh_circuit.transfer ~v_in () in
  (* monotone decreasing (common-source stage inverts) with a real swing *)
  for i = 1 to 40 do
    if v_out.(i) > v_out.(i - 1) +. 1e-9 then Alcotest.failf "not monotone at %d" i
  done;
  Alcotest.(check bool) "swings" true (v_out.(0) -. v_out.(40) > 0.5);
  Alcotest.(check bool) "within rails" true
    (Array.for_all (fun v -> v >= -0.01 && v <= Printed.v_supply +. 0.01) v_out)

let test_fit_eta_recovers_exact () =
  let truth = { Pnc_core.Ptanh_circuit.eta1 = 0.2; eta2 = 0.7; eta3 = -0.1; eta4 = 2.5 } in
  let v_in = Pnc_util.Vec.linspace (-1.) 1. 60 in
  let v_out = Array.map (Pnc_core.Ptanh_circuit.eval_eta truth) v_in in
  let e, rms = Pnc_core.Ptanh_circuit.fit_eta ~v_in ~v_out in
  Alcotest.(check bool) (Printf.sprintf "rms tiny (%.5f)" rms) true (rms < 1e-3);
  List.iter2
    (fun name (got, expected) ->
      if Float.abs (got -. expected) > 0.05 then
        Alcotest.failf "%s: %.3f vs %.3f" name got expected)
    [ "eta1"; "eta2"; "eta3"; "eta4" ]
    [
      (e.Pnc_core.Ptanh_circuit.eta1, truth.Pnc_core.Ptanh_circuit.eta1);
      (e.Pnc_core.Ptanh_circuit.eta2, truth.Pnc_core.Ptanh_circuit.eta2);
      (e.Pnc_core.Ptanh_circuit.eta3, truth.Pnc_core.Ptanh_circuit.eta3);
      (e.Pnc_core.Ptanh_circuit.eta4, truth.Pnc_core.Ptanh_circuit.eta4);
    ]

let test_characterize_fits_circuit () =
  let e, rms = Pnc_core.Ptanh_circuit.characterize () in
  Alcotest.(check bool) (Printf.sprintf "good fit (rms %.4f)" rms) true (rms < 0.02);
  Alcotest.(check bool) "positive gain after inverter" true (e.Pnc_core.Ptanh_circuit.eta2 > 0.);
  (* the fitted steepness must land inside the training window of Ptanh *)
  Alcotest.(check bool) "eta4 in [0.5, 6]" true
    (Float.abs e.Pnc_core.Ptanh_circuit.eta4 >= 0.5 && Float.abs e.Pnc_core.Ptanh_circuit.eta4 <= 6.01)

(* Calibrate ------------------------------------------------------------------------- *)

let test_chip_replays_same_instance () =
  let chip = Pnc_core.Calibrate.chip ~seed:5 (Variation.uniform 0.2) in
  let e1 = Variation.eps_for (chip ()) ~rows:2 ~cols:3 in
  let e2 = Variation.eps_for (chip ()) ~rows:2 ~cols:3 in
  Alcotest.(check bool) "same chip, same epsilons" true (T.equal_eps ~eps:0. e1 e2);
  let other = Pnc_core.Calibrate.chip ~seed:6 (Variation.uniform 0.2) in
  Alcotest.(check bool) "different chip differs" false
    (T.equal_eps ~eps:0. e1 (Variation.eps_for (other ()) ~rows:2 ~cols:3))

let test_bias_params_subset () =
  let net = Network.create ~hidden:3 (rng ()) Network.Adapt ~inputs:1 ~classes:2 in
  let biases = Pnc_core.Calibrate.bias_params net in
  Alcotest.(check int) "one bias row per layer" 2 (List.length biases);
  List.iter (fun p -> Alcotest.(check int) "row vector" 1 (T.rows (Var.value p))) biases

let test_trim_moves_only_biases () =
  let net = Network.create ~hidden:3 (rng ()) Network.Adapt ~inputs:1 ~classes:2 in
  let split = Pnc_data.Dataset.preprocess (Rng.create ~seed:4)
      (Pnc_data.Registry.load ~seed:3 ~n:40 "GPOVY") in
  let theta_before =
    List.map (fun (cb, _, _) -> Crossbar.theta_values cb) (Network.layers net)
  in
  let bias_before =
    List.map (fun p -> T.copy (Var.value p)) (Pnc_core.Calibrate.bias_params net)
  in
  let chip = Pnc_core.Calibrate.chip ~seed:9 (Variation.uniform 0.2) in
  Pnc_core.Calibrate.trim ~epochs:10 ~chip net split.Pnc_data.Dataset.valid;
  let theta_after =
    List.map (fun (cb, _, _) -> Crossbar.theta_values cb) (Network.layers net)
  in
  Alcotest.(check bool) "weights untouched" true
    (List.for_all2 (T.equal_eps ~eps:0.) theta_before theta_after);
  let bias_after = List.map (fun p -> T.copy (Var.value p)) (Pnc_core.Calibrate.bias_params net) in
  Alcotest.(check bool) "biases moved" false (List.for_all2 (T.equal_eps ~eps:0.) bias_before bias_after)

let test_evaluate_restores_design () =
  let net = Network.create ~hidden:3 (rng ()) Network.Adapt ~inputs:1 ~classes:2 in
  let split = Pnc_data.Dataset.preprocess (Rng.create ~seed:4)
      (Pnc_data.Registry.load ~seed:3 ~n:40 "GPOVY") in
  let bias_before = List.map (fun p -> T.copy (Var.value p)) (Pnc_core.Calibrate.bias_params net) in
  let chip = Pnc_core.Calibrate.chip ~seed:9 (Variation.uniform 0.2) in
  let outcome =
    Pnc_core.Calibrate.evaluate ~epochs:10 ~chip net
      ~calibration:split.Pnc_data.Dataset.valid ~test:split.Pnc_data.Dataset.test
  in
  Alcotest.(check bool) "accuracies in range" true
    (outcome.Pnc_core.Calibrate.before >= 0. && outcome.Pnc_core.Calibrate.after <= 1.);
  let bias_after = List.map (fun p -> T.copy (Var.value p)) (Pnc_core.Calibrate.bias_params net) in
  Alcotest.(check bool) "design restored" true
    (List.for_all2 (T.equal_eps ~eps:0.) bias_before bias_after)

(* Properties ----------------------------------------------------------------------- *)

let prop_crossbar_bounded_under_variation =
  QCheck.Test.make ~count:50 ~name:"crossbar output stays bounded under any 30% draw"
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let r = Rng.create ~seed in
      let cb = Crossbar.create r ~inputs:(1 + Rng.int r 5) ~outputs:(1 + Rng.int r 4) in
      let x = T.uniform r ~rows:3 ~cols:(Crossbar.inputs cb) ~lo:(-1.) ~hi:1. in
      let draw = Variation.make_draw r (Variation.uniform 0.3) in
      let out = Var.value (Crossbar.forward ~draw cb (Var.const x)) in
      T.max_abs out <= 1.5 && Float.is_finite (T.sum out))

let prop_filter_realization_stable =
  QCheck.Test.make ~count:50 ~name:"realized filter coefficients stable for any draw"
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let r = Rng.create ~seed in
      let fl = Filter_layer.create r Filter_layer.Second ~features:1 in
      let draw = Variation.make_draw r (Variation.uniform 0.3) in
      (* Run a long constant input; divergence would blow past any bound. *)
      let out = run_filter_layer fl ~draw (Array.make 300 1.) in
      Array.for_all (fun v -> Float.is_finite v && Float.abs v <= 2.) out)

let prop_network_deterministic_forward =
  QCheck.Test.make ~count:20 ~name:"deterministic forward is a pure function"
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let r = Rng.create ~seed in
      let net = Network.create ~hidden:3 r Network.Adapt ~inputs:1 ~classes:2 in
      let x = T.uniform r ~rows:2 ~cols:12 ~lo:(-1.) ~hi:1. in
      let a = Var.value (Network.forward ~draw:Variation.deterministic net x) in
      let b = Var.value (Network.forward ~draw:Variation.deterministic net x) in
      T.equal_eps ~eps:0. a b)

let () =
  Alcotest.run "pnc_core"
    [
      ("printed", [ Alcotest.test_case "ranges+clamps" `Quick test_printed_ranges ]);
      ( "variation",
        [
          Alcotest.test_case "none is ones" `Quick test_variation_none;
          Alcotest.test_case "uniform bounds" `Quick test_variation_uniform_bounds;
          Alcotest.test_case "mean one" `Quick test_variation_mean_one;
          Alcotest.test_case "mu and v0" `Quick test_variation_mu_v0;
          Alcotest.test_case "deterministic draw" `Quick test_draw_deterministic;
          Alcotest.test_case "gmm spread" `Quick test_variation_gmm_spread;
        ] );
      ( "crossbar",
        [
          Alcotest.test_case "Eq. 1 closed form" `Quick test_crossbar_closed_form;
          Alcotest.test_case "output bounded" `Quick test_crossbar_output_bounded;
          Alcotest.test_case "variation perturbs" `Quick test_crossbar_variation_changes_output;
          Alcotest.test_case "gradients (FD)" `Quick test_crossbar_gradients;
          Alcotest.test_case "clamp" `Quick test_crossbar_clamp;
        ] );
      ( "ptanh",
        [
          Alcotest.test_case "formula" `Quick test_ptanh_shape_and_formula;
          Alcotest.test_case "monotone" `Quick test_ptanh_monotone;
          Alcotest.test_case "clamp" `Quick test_ptanh_clamp;
        ] );
      ( "filter-layer",
        [
          Alcotest.test_case "first order = theory" `Quick test_filter_first_order_matches_theory;
          Alcotest.test_case "second order = cascade" `Quick test_filter_second_order_matches_theory;
          Alcotest.test_case "gradients (FD)" `Quick test_filter_gradients;
          Alcotest.test_case "mu reduces gain" `Quick test_filter_mu_reduces_gain;
          Alcotest.test_case "param counts" `Quick test_filter_params_count;
          Alcotest.test_case "state-init semantics" `Quick test_filter_state_init_semantics;
          Alcotest.test_case "clamp to printable" `Quick test_filter_clamp_and_ranges;
          Alcotest.test_case "cutoffs sane" `Quick test_filter_cutoffs_positive;
        ] );
      ( "network",
        [
          Alcotest.test_case "shapes" `Quick test_network_shapes;
          Alcotest.test_case "deterministic repeatable" `Quick test_network_deterministic_repeatable;
          Alcotest.test_case "variation perturbs" `Quick test_network_variation_perturbs;
          Alcotest.test_case "param counts" `Quick test_network_param_counts;
          Alcotest.test_case "outputs bounded" `Quick test_network_outputs_bounded;
          Alcotest.test_case "multivariate inputs" `Quick test_network_multivariate;
          Alcotest.test_case "readout variants" `Quick test_readout_variants;
          Alcotest.test_case "model dispatch" `Quick test_model_dispatch;
        ] );
      ( "elman",
        [
          Alcotest.test_case "shapes" `Quick test_elman_shapes;
          Alcotest.test_case "sequence dependence" `Quick test_elman_depends_on_sequence;
          Alcotest.test_case "multivariate" `Quick test_elman_multivariate;
          Alcotest.test_case "BPTT gradients (FD)" `Quick test_elman_gradients;
        ] );
      ( "mc-loss",
        [
          Alcotest.test_case "no-variation consistency" `Quick test_mc_loss_reduces_without_variation;
          Alcotest.test_case "positive finite" `Quick test_mc_loss_positive;
          Alcotest.test_case "antithetic mirrors" `Quick test_antithetic_mirror_mirrors;
          Alcotest.test_case "antithetic variance" `Quick test_antithetic_reduces_variance;
          Alcotest.test_case "antithetic mean" `Quick test_antithetic_same_mean;
        ] );
      ( "fast-path",
        [
          Alcotest.test_case "circuit parity" `Quick test_fast_path_parity_circuit;
          Alcotest.test_case "reference parity" `Quick test_fast_path_parity_reference;
          Alcotest.test_case "readout parity" `Quick test_fast_path_readouts_parity;
          Alcotest.test_case "mc value agrees" `Quick test_expected_value_matches_var_path;
          Alcotest.test_case "re-seeded run identical" `Quick test_expected_value_reseed_regression;
          Alcotest.test_case "zero Var allocation" `Quick test_fast_path_allocates_no_var_nodes;
        ] );
      ( "hardware",
        [
          Alcotest.test_case "counts shape" `Quick test_hardware_counts_shape;
          Alcotest.test_case "power ordering" `Quick test_hardware_power_ordering;
          Alcotest.test_case "unprinted weights free" `Quick test_hardware_unprinted_weights_cost_nothing;
          Alcotest.test_case "monotone in width" `Quick test_hardware_counts_monotone_in_width;
          Alcotest.test_case "g_scale ratio" `Quick test_hardware_g_scale;
          Alcotest.test_case "deterministic predict" `Quick test_predict_with_draw_varies;
        ] );
      ( "sensitivity",
        [
          Alcotest.test_case "rows" `Quick test_sensitivity_rows;
          Alcotest.test_case "zero level" `Quick test_sensitivity_zero_level_no_drop;
        ] );
      ( "discretize",
        [
          Alcotest.test_case "quantize value" `Quick test_quantize_value;
          Alcotest.test_case "idempotent" `Quick test_quantize_idempotent;
          Alcotest.test_case "with_quantized restores" `Quick test_with_quantized_restores;
          Alcotest.test_case "accuracy ladder" `Quick test_accuracy_ladder_shape;
        ] );
      ( "coupling",
        [
          Alcotest.test_case "mu matches theory" `Quick test_mu_extraction_matches_theory;
          Alcotest.test_case "survey in paper band" `Quick test_mu_survey_range;
          Alcotest.test_case "fit quality" `Quick test_mu_fit_quality;
        ] );
      ( "ptanh-circuit",
        [
          Alcotest.test_case "transfer shape" `Quick test_ptanh_circuit_transfer_shape;
          Alcotest.test_case "fit recovers exact" `Quick test_fit_eta_recovers_exact;
          Alcotest.test_case "characterize" `Quick test_characterize_fits_circuit;
        ] );
      ( "calibrate",
        [
          Alcotest.test_case "chip replays" `Quick test_chip_replays_same_instance;
          Alcotest.test_case "bias subset" `Quick test_bias_params_subset;
          Alcotest.test_case "trim scope" `Quick test_trim_moves_only_biases;
          Alcotest.test_case "evaluate restores" `Quick test_evaluate_restores_design;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_crossbar_bounded_under_variation;
            prop_filter_realization_stable;
            prop_network_deterministic_forward;
          ] );
    ]
