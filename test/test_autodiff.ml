(* Tests for the reverse-mode autodiff engine, centred on comparing
   analytic gradients against central finite differences. *)

module T = Pnc_tensor.Tensor
module Var = Pnc_autodiff.Var
module Loss = Pnc_autodiff.Loss
module Rng = Pnc_util.Rng

let approx ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

(* Numerically check d(f)/d(params) against backward on a fresh graph per
   evaluation. [f] must rebuild the graph from the given leaf tensors. *)
let gradient_check ?(h = 1e-5) ?(tol = 1e-4) ~params ~f () =
  let leaves = List.map Var.param params in
  let out = f leaves in
  List.iter Var.zero_grad leaves;
  Var.backward out;
  let analytic = List.map (fun v -> T.copy (Var.grad v)) leaves in
  List.iteri
    (fun pi p ->
      let g = List.nth analytic pi in
      for r = 0 to T.rows p - 1 do
        for c = 0 to T.cols p - 1 do
          let orig = T.get p r c in
          T.set p r c (orig +. h);
          let f_plus = T.get_scalar (Var.value (f (List.map Var.param params))) in
          T.set p r c (orig -. h);
          let f_minus = T.get_scalar (Var.value (f (List.map Var.param params))) in
          T.set p r c orig;
          let fd = (f_plus -. f_minus) /. (2. *. h) in
          let an = T.get g r c in
          let scale = Float.max 1. (Float.max (Float.abs fd) (Float.abs an)) in
          if Float.abs (fd -. an) /. scale > tol then
            Alcotest.failf "grad mismatch param %d (%d,%d): fd=%.8f analytic=%.8f" pi r c fd an
        done
      done)
    params

let rand_t rng ~rows ~cols = T.uniform rng ~rows ~cols ~lo:(-1.5) ~hi:1.5
let rand_pos rng ~rows ~cols = T.uniform rng ~rows ~cols ~lo:0.2 ~hi:2.

let scalarize v = Var.sum v

(* Basic op values -------------------------------------------------------- *)

let test_values () =
  let a = Var.const (T.of_row [| 1.; -2. |]) in
  let b = Var.const (T.of_row [| 3.; 4. |]) in
  let check name expected v =
    Alcotest.(check bool) name true (T.equal_eps ~eps:1e-9 (T.of_row expected) (Var.value v))
  in
  check "add" [| 4.; 2. |] (Var.add a b);
  check "sub" [| -2.; -6. |] (Var.sub a b);
  check "mul" [| 3.; -8. |] (Var.mul a b);
  check "div" [| 1. /. 3.; -0.5 |] (Var.div a b);
  check "abs" [| 1.; 2. |] (Var.abs a);
  check "neg" [| -1.; 2. |] (Var.neg a);
  check "relu" [| 1.; 0. |] (Var.relu a);
  Alcotest.(check bool) "tanh value" true
    (approx ~eps:1e-12 (tanh 1.) (T.get (Var.value (Var.tanh a)) 0 0))

let test_backward_simple () =
  (* d/dx sum (x * x) = 2x *)
  let x = Var.param (T.of_row [| 1.; 2.; 3. |]) in
  let out = Var.sum (Var.mul x x) in
  Var.backward out;
  Alcotest.(check bool) "2x" true
    (T.equal_eps ~eps:1e-12 (T.of_row [| 2.; 4.; 6. |]) (Var.grad x))

let test_backward_accumulates_reuse () =
  (* y = sum(x + x): the same node used twice must receive both
     contributions. *)
  let x = Var.param (T.of_row [| 1.; 1. |]) in
  let out = Var.sum (Var.add x x) in
  Var.backward out;
  Alcotest.(check bool) "grad = 2" true
    (T.equal_eps ~eps:1e-12 (T.of_row [| 2.; 2. |]) (Var.grad x))

let test_zero_grad () =
  let x = Var.param (T.of_row [| 3. |]) in
  let run () = Var.backward (Var.sum (Var.mul x x)) in
  run ();
  run ();
  Alcotest.(check bool) "two backwards accumulate" true
    (approx ~eps:1e-12 12. (T.get (Var.grad x) 0 0));
  Var.zero_grad x;
  run ();
  Alcotest.(check bool) "after zero_grad" true (approx ~eps:1e-12 6. (T.get (Var.grad x) 0 0))

let test_const_gets_no_grad () =
  let x = Var.param (T.of_row [| 2. |]) in
  let c = Var.const (T.of_row [| 5. |]) in
  Var.backward (Var.sum (Var.mul x c));
  Alcotest.(check bool) "const requires no grad" false (Var.requires_grad c);
  Alcotest.(check bool) "param grad = c" true (approx ~eps:1e-12 5. (T.get (Var.grad x) 0 0))

(* Finite-difference checks on each op ------------------------------------ *)

let fd_case name build =
  Alcotest.test_case name `Quick (fun () -> build ())

let rng = Rng.create ~seed:2024

let test_fd_elementwise () =
  let a = rand_t rng ~rows:3 ~cols:2 and b = rand_pos rng ~rows:3 ~cols:2 in
  gradient_check ~params:[ a; b ]
    ~f:(fun vs ->
      match vs with
      | [ x; y ] -> scalarize (Var.mul (Var.add x y) (Var.div x y))
      | _ -> assert false)
    ()

let test_fd_matmul () =
  let a = rand_t rng ~rows:3 ~cols:4 and b = rand_t rng ~rows:4 ~cols:2 in
  gradient_check ~params:[ a; b ]
    ~f:(fun vs ->
      match vs with
      | [ x; y ] -> scalarize (Var.matmul x y)
      | _ -> assert false)
    ()

let test_fd_tanh_chain () =
  let a = rand_t rng ~rows:2 ~cols:3 in
  gradient_check ~params:[ a ]
    ~f:(fun vs ->
      match vs with
      | [ x ] -> scalarize (Var.tanh (Var.scale 0.7 (Var.add_scalar 0.1 x)))
      | _ -> assert false)
    ()

let test_fd_sigmoid_softplus () =
  let a = rand_t rng ~rows:2 ~cols:2 in
  gradient_check ~params:[ a ]
    ~f:(fun vs ->
      match vs with
      | [ x ] -> scalarize (Var.mul (Var.sigmoid x) (Var.softplus x))
      | _ -> assert false)
    ()

let test_fd_exp_log () =
  let a = rand_pos rng ~rows:2 ~cols:2 in
  gradient_check ~params:[ a ]
    ~f:(fun vs ->
      match vs with
      | [ x ] -> scalarize (Var.log (Var.add_scalar 0.5 (Var.exp (Var.scale 0.3 x))))
      | _ -> assert false)
    ()

let test_fd_abs () =
  (* keep away from the kink at 0 *)
  let a = T.of_rows [| [| 0.7; -1.3 |]; [| 2.1; -0.4 |] |] in
  gradient_check ~params:[ a ]
    ~f:(fun vs -> match vs with [ x ] -> scalarize (Var.abs x) | _ -> assert false)
    ()

let test_fd_broadcast () =
  let m = rand_t rng ~rows:4 ~cols:3 in
  let rv = rand_pos rng ~rows:1 ~cols:3 in
  gradient_check ~params:[ m; rv ]
    ~f:(fun vs ->
      match vs with
      | [ x; r ] -> scalarize (Var.tanh (Var.div_rv (Var.mul_rv (Var.add_rv x r) r) (Var.add_scalar 1. (Var.abs r))))
      | _ -> assert false)
    ()

let test_fd_sub_rv () =
  let m = rand_t rng ~rows:3 ~cols:2 in
  let rv = rand_t rng ~rows:1 ~cols:2 in
  gradient_check ~params:[ m; rv ]
    ~f:(fun vs ->
      match vs with
      | [ x; r ] -> scalarize (Var.sqr (Var.sub_rv x r))
      | _ -> assert false)
    ()

let test_fd_sum_rows () =
  let m = rand_t rng ~rows:4 ~cols:3 in
  gradient_check ~params:[ m ]
    ~f:(fun vs ->
      match vs with
      | [ x ] -> scalarize (Var.sqr (Var.sum_rows x))
      | _ -> assert false)
    ()

let test_fd_concat_cols () =
  let a = rand_t rng ~rows:3 ~cols:2 and b = rand_t rng ~rows:3 ~cols:1 in
  gradient_check ~params:[ a; b ]
    ~f:(fun vs ->
      match vs with
      | [ x; y ] -> scalarize (Var.sqr (Var.concat_cols [ x; y ]))
      | _ -> assert false)
    ()

let test_fd_reciprocal_transpose () =
  let a = rand_pos rng ~rows:2 ~cols:3 in
  gradient_check ~params:[ a ]
    ~f:(fun vs ->
      match vs with
      | [ x ] -> scalarize (Var.reciprocal (Var.transpose x))
      | _ -> assert false)
    ()

let test_fd_mean () =
  let a = rand_t rng ~rows:3 ~cols:3 in
  gradient_check ~params:[ a ]
    ~f:(fun vs -> match vs with [ x ] -> Var.mean (Var.sqr x) | _ -> assert false)
    ()

let test_fd_recurrence () =
  (* Mimics the filter unrolling: s_{k+1} = a ∘ s_k + b ∘ x_k over 5 steps. *)
  let coeff_a = T.uniform rng ~rows:1 ~cols:3 ~lo:0.1 ~hi:0.9 in
  let coeff_b = T.uniform rng ~rows:1 ~cols:3 ~lo:0.1 ~hi:0.9 in
  let xs = Array.init 5 (fun _ -> rand_t rng ~rows:2 ~cols:3) in
  gradient_check ~params:[ coeff_a; coeff_b ]
    ~f:(fun vs ->
      match vs with
      | [ a; b ] ->
          let state = ref (Var.const (T.zeros ~rows:2 ~cols:3)) in
          Array.iter
            (fun x -> state := Var.add (Var.mul_rv !state a) (Var.mul_rv (Var.const x) b))
            xs;
          scalarize (Var.sqr !state)
      | _ -> assert false)
    ()

let test_fd_affine_rv () =
  (* The fused filter-update op against finite differences. *)
  let s = rand_t rng ~rows:3 ~cols:4 in
  let a = rand_pos rng ~rows:1 ~cols:4 in
  let x = rand_t rng ~rows:3 ~cols:4 in
  let b = rand_pos rng ~rows:1 ~cols:4 in
  gradient_check ~params:[ s; a; x; b ]
    ~f:(fun vs ->
      match vs with
      | [ s; a; x; b ] -> scalarize (Var.sqr (Var.affine_rv s a x b))
      | _ -> assert false)
    ()

let test_affine_rv_value () =
  let s = Var.const (T.of_rows [| [| 1.; 2. |] |]) in
  let a = Var.const (T.of_row [| 0.5; 0.5 |]) in
  let x = Var.const (T.of_rows [| [| 4.; 8. |] |]) in
  let b = Var.const (T.of_row [| 0.25; 0.125 |]) in
  let out = Var.value (Var.affine_rv s a x b) in
  Alcotest.(check bool) "fused = s.a + x.b" true
    (T.equal_eps ~eps:1e-12 (T.of_rows [| [| 1.5; 2. |] |]) out)

let test_affine_rv_equals_unfused () =
  let mk () = rand_t rng ~rows:4 ~cols:3 in
  let s = Var.param (mk ()) and x = Var.param (mk ()) in
  let a = Var.param (rand_pos rng ~rows:1 ~cols:3) in
  let b = Var.param (rand_pos rng ~rows:1 ~cols:3) in
  let fused = Var.affine_rv s a x b in
  let unfused = Var.add (Var.mul_rv s a) (Var.mul_rv x b) in
  Alcotest.(check bool) "same forward" true
    (T.equal_eps ~eps:1e-12 (Var.value fused) (Var.value unfused));
  (* same gradients *)
  List.iter Var.zero_grad [ s; a; x; b ];
  Var.backward (Var.sum (Var.sqr fused));
  let g_fused = List.map (fun v -> T.copy (Var.grad v)) [ s; a; x; b ] in
  List.iter Var.zero_grad [ s; a; x; b ];
  Var.backward (Var.sum (Var.sqr unfused));
  let g_unfused = List.map (fun v -> T.copy (Var.grad v)) [ s; a; x; b ] in
  List.iter2
    (fun gf gu -> Alcotest.(check bool) "same gradient" true (T.equal_eps ~eps:1e-10 gf gu))
    g_fused g_unfused

let test_deep_chain_no_stack_overflow () =
  (* 10k-node chains must not blow the stack in backward. *)
  let x = Var.param (T.of_row [| 0.5 |]) in
  let y = ref x in
  for _ = 1 to 10_000 do
    y := Var.scale 0.9999 !y
  done;
  Var.backward (Var.sum !y);
  Alcotest.(check bool) "grad finite" true (Float.is_finite (T.get (Var.grad x) 0 0))

(* Tape and no-grad mode --------------------------------------------------- *)

let test_no_grad_records_nothing () =
  let x = Var.param (T.of_row [| 1.; 2. |]) in
  let before = Var.tape_recorded () in
  let y = Var.with_no_grad (fun () -> Var.tanh (Var.scale 2. (Var.add x x))) in
  Alcotest.(check int) "nothing on the tape" before (Var.tape_recorded ());
  Alcotest.(check bool) "result does not require grad" false (Var.requires_grad y);
  Alcotest.(check bool) "value still computed" true
    (approx ~eps:1e-12 (tanh 4.) (T.get (Var.value y) 0 0));
  (* backward through a no-grad node is a no-op on the leaves *)
  List.iter Var.zero_grad [ x ];
  Var.backward (Var.sum y);
  Alcotest.(check bool) "leaf grad untouched" true
    (T.equal_eps ~eps:0. (T.zeros ~rows:1 ~cols:2) (Var.grad x))

let test_no_grad_restores_mode () =
  Alcotest.(check bool) "off before" false !Var.no_grad;
  (try Var.with_no_grad (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check bool) "off after exception" false !Var.no_grad;
  let nested = Var.with_no_grad (fun () -> Var.with_no_grad (fun () -> !Var.no_grad)) in
  Alcotest.(check bool) "nested stays on" true nested;
  Alcotest.(check bool) "off after nesting" false !Var.no_grad

let test_grad_opt_non_allocating () =
  let x = Var.param (T.of_row [| 1.; 2. |]) in
  Alcotest.(check bool) "no grad yet" true (Var.grad_opt x = None);
  Var.backward (Var.sum (Var.scale 3. x));
  (match Var.grad_opt x with
  | None -> Alcotest.fail "grad expected after backward"
  | Some g -> Alcotest.(check bool) "grad value" true (T.equal_eps ~eps:1e-12 (T.of_row [| 3.; 3. |]) g));
  Var.zero_grad x;
  Alcotest.(check bool) "cleared" true (Var.grad_opt x = None)

let test_tape_backward_known_graph () =
  (* z = sum (a*b + tanh a): dz/da = b + 1 - tanh(a)^2, dz/db = a. *)
  let a_t = T.of_row [| 0.3; -0.7 |] and b_t = T.of_row [| 1.2; 0.4 |] in
  let a = Var.param a_t and b = Var.param b_t in
  Var.backward (Var.sum (Var.add (Var.mul a b) (Var.tanh a)));
  let exp_da =
    T.of_row (Array.map2 (fun bv av -> bv +. 1. -. (tanh av *. tanh av)) (T.row b_t 0) (T.row a_t 0))
  in
  Alcotest.(check bool) "dz/da" true (T.equal_eps ~eps:1e-12 exp_da (Var.grad a));
  Alcotest.(check bool) "dz/db" true (T.equal_eps ~eps:1e-12 a_t (Var.grad b));
  gradient_check ~params:[ T.copy a_t; T.copy b_t ]
    ~f:(fun l ->
      match l with
      | [ a; b ] -> Var.sum (Var.add (Var.mul a b) (Var.tanh a))
      | _ -> assert false)
    ()

let test_backward_twice_accumulates () =
  let x = Var.param (T.of_row [| 2. |]) in
  let y = Var.sum (Var.sqr x) in
  Var.backward y;
  Var.backward y;
  (* two passes over the same root accumulate on the leaf: 2 * 2x = 8 *)
  Alcotest.(check bool) "accumulated" true (approx ~eps:1e-12 8. (T.get (Var.grad x) 0 0))

let test_backward_cross_graph_after_backward () =
  (* A graph built before an earlier backward must still propagate when
     its own root is differentiated later (the tape is not truncated). *)
  let x = Var.param (T.of_row [| 1.5 |]) in
  let shared = Var.scale 2. x in
  let first = Var.sum (Var.sqr shared) in
  let second = Var.sum (Var.scale 3. shared) in
  Var.backward first;
  Var.zero_grad x;
  Var.backward second;
  Alcotest.(check bool) "second graph grad" true (approx ~eps:1e-12 6. (T.get (Var.grad x) 0 0))

(* Softmax cross-entropy --------------------------------------------------- *)

let test_ce_value () =
  (* Uniform logits over C classes -> loss = log C. *)
  let logits = Var.param (T.zeros ~rows:4 ~cols:3) in
  let labels = [| 0; 1; 2; 0 |] in
  let l = Loss.softmax_cross_entropy ~logits ~labels in
  Alcotest.(check bool) "log C" true (approx ~eps:1e-9 (log 3.) (T.get_scalar (Var.value l)))

let test_ce_gradient () =
  let logits = rand_t rng ~rows:5 ~cols:4 in
  let labels = [| 0; 3; 1; 2; 2 |] in
  gradient_check ~tol:1e-3
    ~params:[ logits ]
    ~f:(fun vs ->
      match vs with
      | [ x ] -> Loss.softmax_cross_entropy ~logits:x ~labels
      | _ -> assert false)
    ()

let test_ce_perfect_prediction () =
  let logits = Var.param (T.of_rows [| [| 30.; 0.; 0. |]; [| 0.; 30.; 0. |] |]) in
  let l = Loss.softmax_cross_entropy ~logits ~labels:[| 0; 1 |] in
  Alcotest.(check bool) "near zero" true (T.get_scalar (Var.value l) < 1e-9)

let test_softmax_rows () =
  let p = Loss.softmax_rows (T.of_rows [| [| 1.; 1.; 1. |]; [| 100.; 0.; 0. |] |]) in
  Alcotest.(check bool) "uniform row" true (approx ~eps:1e-9 (1. /. 3.) (T.get p 0 0));
  Alcotest.(check bool) "saturated row" true (approx ~eps:1e-9 1. (T.get p 1 0));
  Alcotest.(check bool) "rows sum to one" true (approx ~eps:1e-9 2. (T.sum p))

let test_mse () =
  let pred = Var.param (T.of_row [| 1.; 2. |]) in
  let l = Loss.mse ~pred ~target:(T.of_row [| 0.; 0. |]) in
  Alcotest.(check bool) "mse value" true (approx ~eps:1e-12 2.5 (T.get_scalar (Var.value l)))

let test_requires_grad_propagation () =
  let p = Var.param (T.of_row [| 1. |]) in
  let c = Var.const (T.of_row [| 2. |]) in
  Alcotest.(check bool) "param requires" true (Var.requires_grad p);
  Alcotest.(check bool) "const does not" false (Var.requires_grad c);
  Alcotest.(check bool) "mix requires" true (Var.requires_grad (Var.mul p c));
  Alcotest.(check bool) "const-only does not" false (Var.requires_grad (Var.mul c c))

let test_predictions () =
  let logits = T.of_rows [| [| 0.1; 0.9 |]; [| 2.0; -1.0 |] |] in
  Alcotest.(check (array int)) "argmax rows" [| 1; 0 |] (Loss.predictions logits)

let test_n_nodes () =
  let x = Var.param (T.of_row [| 1. |]) in
  let y = Var.sum (Var.mul x x) in
  Alcotest.(check int) "node count" 3 (Var.n_nodes y)

(* End-to-end gradient checks on the circuit models (satellite: PR 3) ------

   These drive the real network modules: a central-difference oracle
   over the *existing* parameter Vars of a randomly-configured SO-LF
   network (and each layer type in isolation), perturbing the leaf
   tensors in place. The FD side of the end-to-end check runs on the
   pure-tensor forward path, which is bit-identical to the Var path
   under the same draw — so any discrepancy is a backward bug, not a
   forward mismatch. *)

module Network = Pnc_core.Network
module Crossbar = Pnc_core.Crossbar
module Filter_layer = Pnc_core.Filter_layer
module Ptanh = Pnc_core.Ptanh
module Variation = Pnc_core.Variation

(* Central-difference check against [Var.backward] for parameters that
   already live inside a model. [loss_var] rebuilds the autodiff graph;
   [loss_val] recomputes the scalar loss from the current leaf tensors
   (it may use the no-grad tensor path). *)
let check_model_grads ?(h = 1e-5) ?(tol = 1e-5) ~what ~params ~loss_var ~loss_val () =
  List.iter Var.zero_grad params;
  Var.backward (loss_var ());
  let analytic = List.map (fun p -> T.copy (Var.grad p)) params in
  List.iteri
    (fun pi p ->
      let v = Var.value p in
      let g = List.nth analytic pi in
      for r = 0 to T.rows v - 1 do
        for c = 0 to T.cols v - 1 do
          let orig = T.get v r c in
          T.set v r c (orig +. h);
          let f_plus = loss_val () in
          T.set v r c (orig -. h);
          let f_minus = loss_val () in
          T.set v r c orig;
          let fd = (f_plus -. f_minus) /. (2. *. h) in
          let an = T.get g r c in
          let scale = Float.max 1. (Float.max (Float.abs fd) (Float.abs an)) in
          if Float.abs (fd -. an) /. scale > tol then
            Alcotest.failf "%s: grad mismatch param %d (%d,%d): fd=%.10f analytic=%.10f" what pi
              r c fd an
        done
      done)
    params

let random_labels rng ~batch ~classes = Array.init batch (fun _ -> Rng.int rng classes)

let check_network_end_to_end seed =
  let rng = Rng.create ~seed in
  let arch = if Rng.int rng 2 = 0 then Network.Ptpnc else Network.Adapt in
  let hidden = 2 + Rng.int rng 3 in
  let classes = 2 + Rng.int rng 2 in
  let batch = 2 + Rng.int rng 3 in
  let time = 4 + Rng.int rng 5 in
  let net = Network.create ~hidden rng arch ~inputs:1 ~classes in
  let x = T.uniform rng ~rows:batch ~cols:time ~lo:(-1.) ~hi:1. in
  let labels = random_labels rng ~batch ~classes in
  let draw = Variation.deterministic in
  check_model_grads
    ~what:
      (Printf.sprintf "net seed=%d %s h=%d c=%d b=%d t=%d" seed (Network.arch_name arch) hidden
         classes batch time)
    ~params:(Network.params net)
    ~loss_var:(fun () ->
      Loss.softmax_cross_entropy ~logits:(Network.forward ~draw net x) ~labels)
    ~loss_val:(fun () -> Loss.cross_entropy_value ~logits:(Network.forward_t ~draw net x) ~labels)
    ()

let prop_network_gradients =
  Qgen.test_case ~count:50 ~pp:string_of_int ~shrink:Qgen.shrink_int
    "SO-LF network gradients match central differences"
    (Qgen.int_range 0 100_000)
    (fun seed ->
      check_network_end_to_end seed;
      true)

let layer_loss_val loss_var () = T.get_scalar (Var.value (loss_var ()))

let check_crossbar_grads seed =
  let rng = Rng.create ~seed in
  let inputs = 1 + Rng.int rng 4 and outputs = 1 + Rng.int rng 4 in
  let batch = 2 + Rng.int rng 3 in
  let cb = Crossbar.create rng ~inputs ~outputs in
  let x = Var.const (T.uniform rng ~rows:batch ~cols:inputs ~lo:(-1.) ~hi:1.) in
  let loss_var () = Var.sum (Var.sqr (Crossbar.forward ~draw:Variation.deterministic cb x)) in
  check_model_grads
    ~what:(Printf.sprintf "crossbar seed=%d" seed)
    ~params:(Crossbar.params cb) ~loss_var ~loss_val:(layer_loss_val loss_var) ()

let check_filter_grads seed =
  let rng = Rng.create ~seed in
  let order = if Rng.int rng 2 = 0 then Filter_layer.First else Filter_layer.Second in
  let features = 1 + Rng.int rng 4 in
  let batch = 2 + Rng.int rng 3 in
  let time = 3 + Rng.int rng 4 in
  let fl = Filter_layer.create rng order ~features in
  let xs =
    Array.init time (fun _ -> T.uniform rng ~rows:batch ~cols:features ~lo:(-1.) ~hi:1.)
  in
  let loss_var () =
    let realization = Filter_layer.realize ~draw:Variation.deterministic fl in
    let state = ref (Filter_layer.init_state realization ~batch) in
    let acc = ref None in
    Array.iter
      (fun x ->
        let state', out = Filter_layer.step realization !state (Var.const x) in
        state := state';
        let term = Var.sum (Var.sqr out) in
        acc := Some (match !acc with None -> term | Some a -> Var.add a term))
      xs;
    match !acc with Some a -> a | None -> assert false
  in
  check_model_grads
    ~what:(Printf.sprintf "filter seed=%d" seed)
    ~params:(Filter_layer.params fl) ~loss_var ~loss_val:(layer_loss_val loss_var) ()

let check_ptanh_grads seed =
  let rng = Rng.create ~seed in
  let features = 1 + Rng.int rng 5 in
  let batch = 2 + Rng.int rng 3 in
  let pt = Ptanh.create rng ~features in
  let x = Var.const (T.uniform rng ~rows:batch ~cols:features ~lo:(-1.5) ~hi:1.5) in
  let loss_var () = Var.sum (Var.sqr (Ptanh.forward ~draw:Variation.deterministic pt x)) in
  check_model_grads
    ~what:(Printf.sprintf "ptanh seed=%d" seed)
    ~params:(Ptanh.params pt) ~loss_var ~loss_val:(layer_loss_val loss_var) ()

let prop_layer name check =
  Qgen.test_case ~count:20 ~pp:string_of_int ~shrink:Qgen.shrink_int name
    (Qgen.int_range 0 100_000)
    (fun seed ->
      check seed;
      true)

let prop_crossbar_gradients = prop_layer "crossbar gradients match FD" check_crossbar_grads
let prop_filter_gradients = prop_layer "filter-layer gradients match FD" check_filter_grads
let prop_ptanh_gradients = prop_layer "ptanh gradients match FD" check_ptanh_grads

(* Property: gradient of random polynomial DAGs matches FD ---------------- *)

let prop_random_dag =
  Qgen.test_case ~count:30 ~pp:string_of_int ~shrink:Qgen.shrink_int
    "random DAG gradients match finite differences"
    (Qgen.int_range 0 10_000)
    (fun seed ->
      let rng = Rng.create ~seed in
      let a = rand_t rng ~rows:2 ~cols:2 and b = rand_pos rng ~rows:2 ~cols:2 in
      gradient_check ~tol:3e-3 ~params:[ a; b ]
        ~f:(fun vs ->
          match vs with
          | [ x; y ] ->
              let z = Var.add (Var.tanh (Var.matmul x y)) (Var.sigmoid (Var.sub x y)) in
              Var.mean (Var.mul z z)
          | _ -> assert false)
        ();
      true)

(* Noise injection (straight-through estimator) --------------------------- *)

module Mc_loss = Pnc_core.Mc_loss
module Model = Pnc_core.Model
module Train = Pnc_core.Train
module Pool = Pnc_util.Pool

let tensors_bit_equal a b =
  T.rows a = T.rows b && T.cols a = T.cols b
  &&
  let ok = ref true in
  for r = 0 to T.rows a - 1 do
    for c = 0 to T.cols a - 1 do
      if not (T.get a r c = T.get b r c) then ok := false
    done
  done;
  !ok

let test_ste_mul_forward_and_backward () =
  let rng = Rng.create ~seed:90 in
  let v_t = T.uniform rng ~rows:3 ~cols:4 ~lo:(-1.5) ~hi:1.5 in
  let eps = T.uniform rng ~rows:3 ~cols:4 ~lo:0.8 ~hi:1.2 in
  let p_ste = Var.param (T.copy v_t) and p_mul = Var.param (T.copy v_t) in
  let y_ste = Var.ste_mul p_ste eps and y_mul = Var.mul p_mul (Var.const eps) in
  (* Forward: the STE fold is the same multiplication, bit for bit. *)
  Alcotest.(check bool) "forward bit-identical" true
    (tensors_bit_equal (Var.value y_ste) (Var.value y_mul));
  Var.backward (Var.sum y_ste);
  Var.backward (Var.sum y_mul);
  (* Backward: straight-through passes the upstream gradient unchanged
     (here: ones), where the plain fold multiplies by eps. *)
  Alcotest.(check bool) "ste grad = identity" true
    (tensors_bit_equal (Var.grad p_ste) (T.create ~rows:3 ~cols:4 1.));
  Alcotest.(check bool) "mul grad = eps" true (tensors_bit_equal (Var.grad p_mul) eps)

let test_ste_mul_chain_rule () =
  (* Through a nonlinearity the STE gradient is dL/dy evaluated at the
     perturbed point y = v*eps: for L = sum(y^2) that is 2*(v*eps). *)
  let rng = Rng.create ~seed:91 in
  let v_t = T.uniform rng ~rows:2 ~cols:3 ~lo:(-1.) ~hi:1. in
  let eps = T.uniform rng ~rows:2 ~cols:3 ~lo:0.9 ~hi:1.1 in
  let p = Var.param (T.copy v_t) in
  Var.backward (Var.sum (Var.sqr (Var.ste_mul p eps)));
  let expect = T.scale 2. (T.mul v_t eps) in
  Alcotest.(check bool) "grad = 2*(v*eps)" true
    (T.equal_eps ~eps:1e-12 expect (Var.grad p))

(* The correlated operating point used by the NI and invariance tests. *)
let ni_spec = Variation.correlated ~rho:0.6 ~clen:1.5 (Variation.uniform 0.2)

let test_ni_crossbar_fd_oracle () =
  (* Central-difference oracle for the straight-through gradient on one
     crossbar under a fixed correlated draw. The STE gradient is
     dL/dtheta_eff at theta_eff = theta*eps; stepping theta by h/eps_ij
     moves theta_eff by exactly h (the h/eps trick), so the central
     difference converges to the STE gradient — a plain h-step would
     measure eps_ij * dL/dtheta_eff instead. The draw is replayed from
     one saved stream state (Rng.copy); eps replay follows the
     documented realization order of Crossbar.realize (theta_eps then
     bias_eps from the same draw). *)
  let rng = Rng.create ~seed:77 in
  let inputs = 3 and outputs = 4 in
  let cb = Crossbar.create rng ~inputs ~outputs in
  let x = Var.const (T.uniform rng ~rows:5 ~cols:inputs ~lo:(-1.) ~hi:1.) in
  let rng0 = Rng.create ~seed:78 in
  let mk_draw ~ste () = Variation.make_draw ~ste (Rng.copy rng0) ni_spec in
  let theta_eps, bias_eps =
    let d = mk_draw ~ste:false () in
    ( Variation.eps_for d ~rows:inputs ~cols:outputs,
      Variation.eps_for d ~rows:1 ~cols:outputs )
  in
  let loss_var ~ste () = Var.sum (Var.sqr (Crossbar.forward ~draw:(mk_draw ~ste ()) cb x)) in
  (* ni changes gradients only: the loss value itself is bit-identical. *)
  Alcotest.(check bool) "ste forward value unchanged" true
    (T.get_scalar (Var.value (loss_var ~ste:true ()))
    = T.get_scalar (Var.value (loss_var ~ste:false ())));
  let params = Crossbar.params cb in
  List.iter Var.zero_grad params;
  Var.backward (loss_var ~ste:true ());
  let analytic = List.map (fun p -> T.copy (Var.grad p)) params in
  let h = 1e-5 in
  let checked = ref 0 in
  List.iteri
    (fun pi p ->
      let v = Var.value p in
      let g = List.nth analytic pi in
      let eps = if pi = 0 then theta_eps else bias_eps in
      for r = 0 to T.rows v - 1 do
        for c = 0 to T.cols v - 1 do
          let orig = T.get v r c in
          (* Stay clear of the |theta_eff| kink in the normalization. *)
          if Float.abs orig > 0.05 then begin
            incr checked;
            let step = h /. T.get eps r c in
            T.set v r c (orig +. step);
            let f_plus = T.get_scalar (Var.value (loss_var ~ste:true ())) in
            T.set v r c (orig -. step);
            let f_minus = T.get_scalar (Var.value (loss_var ~ste:true ())) in
            T.set v r c orig;
            let fd = (f_plus -. f_minus) /. (2. *. h) in
            let an = T.get g r c in
            let scale = Float.max 1. (Float.max (Float.abs fd) (Float.abs an)) in
            if Float.abs (fd -. an) /. scale > 1e-5 then
              Alcotest.failf "NI grad mismatch param %d (%d,%d): fd=%.10f ste=%.10f" pi r c fd
                an
          end
        done
      done)
    params;
  Alcotest.(check bool) (Printf.sprintf "%d entries checked" !checked) true (!checked >= 8)

let test_ni_times_eps_equals_plain_gradient () =
  (* Semantic identity behind the h/eps trick, pinned directly on the
     analytic side: g_plain = eps . g_ste elementwise under one fixed
     draw. *)
  let rng = Rng.create ~seed:81 in
  let cb = Crossbar.create rng ~inputs:2 ~outputs:3 in
  let x = Var.const (T.uniform rng ~rows:4 ~cols:2 ~lo:(-1.) ~hi:1.) in
  let rng0 = Rng.create ~seed:82 in
  let mk_draw ~ste () = Variation.make_draw ~ste (Rng.copy rng0) ni_spec in
  let theta_eps, bias_eps =
    let d = mk_draw ~ste:false () in
    (Variation.eps_for d ~rows:2 ~cols:3, Variation.eps_for d ~rows:1 ~cols:3)
  in
  let grads ~ste =
    let params = Crossbar.params cb in
    List.iter Var.zero_grad params;
    Var.backward (Var.sum (Var.sqr (Crossbar.forward ~draw:(mk_draw ~ste ()) cb x)));
    List.map (fun p -> T.copy (Var.grad p)) params
  in
  let g_ste = grads ~ste:true and g_plain = grads ~ste:false in
  List.iteri
    (fun pi eps ->
      let gs = List.nth g_ste pi and gp = List.nth g_plain pi in
      Alcotest.(check bool)
        (Printf.sprintf "param %d: plain = eps*ste" pi)
        true
        (T.equal_eps ~eps:1e-12 gp (T.mul eps gs)))
    [ theta_eps; bias_eps ]

let test_ni_mc_loss_value_unchanged () =
  (* End-to-end over the MC estimator: ni (and ni+antithetic) leave the
     reported objective bit-identical; they only reroute gradients. *)
  let model =
    Model.Circuit (Network.create ~hidden:3 (Rng.create ~seed:83) Network.Adapt ~inputs:1 ~classes:2)
  in
  let rngx = Rng.create ~seed:84 in
  let x = T.uniform rngx ~rows:6 ~cols:8 ~lo:(-1.) ~hi:1. in
  let labels = Array.init 6 (fun i -> i mod 2) in
  let value ~antithetic ~ni =
    T.get_scalar
      (Var.value
         (Mc_loss.expected ~antithetic ~ni ~rng:(Rng.create ~seed:85) ~spec:ni_spec ~n:4 model
            ~x ~labels))
  in
  Alcotest.(check bool) "ni value bit-identical" true
    (value ~antithetic:false ~ni:true = value ~antithetic:false ~ni:false);
  Alcotest.(check bool) "ni+antithetic value bit-identical" true
    (value ~antithetic:true ~ni:true = value ~antithetic:true ~ni:false)

(* Correlated-draw estimator invariance ----------------------------------- *)

let test_corr_expected_value_pool_batch_invariant () =
  let model =
    Model.Circuit (Network.create ~hidden:3 (Rng.create ~seed:60) Network.Adapt ~inputs:1 ~classes:2)
  in
  let rngx = Rng.create ~seed:61 in
  let x = T.uniform rngx ~rows:7 ~cols:9 ~lo:(-1.) ~hi:1. in
  let labels = Array.init 7 (fun i -> i mod 2) in
  let value ?batch_size ?pool ~antithetic () =
    Mc_loss.expected_value ~antithetic ?batch_size ?pool ~rng:(Rng.create ~seed:62)
      ~spec:ni_spec ~n:5 model ~x ~labels
  in
  let reference = value ~antithetic:false () in
  List.iter
    (fun bs ->
      Alcotest.(check bool)
        (Printf.sprintf "batch %d bit-identical" bs)
        true
        (value ~batch_size:bs ~antithetic:false () = reference))
    [ 1; 3; 100 ];
  Pool.with_pool ~size:3 (fun pool ->
      Alcotest.(check bool) "pool 3 bit-identical" true
        (value ~pool ~antithetic:false () = reference);
      Alcotest.(check bool) "antithetic pool = antithetic sequential" true
        (value ~pool ~antithetic:true () = value ~antithetic:true ()))

let test_corr_accuracy_pool_batch_invariant () =
  let model =
    Model.Circuit (Network.create ~hidden:3 (Rng.create ~seed:63) Network.Adapt ~inputs:1 ~classes:2)
  in
  let rngx = Rng.create ~seed:64 in
  let rows = Array.init 8 (fun _ -> Array.init 9 (fun _ -> Rng.uniform rngx ~lo:(-1.) ~hi:1.)) in
  let d =
    { Pnc_data.Dataset.name = "tiny"; x = rows; y = Array.init 8 (fun i -> i mod 2); n_classes = 2 }
  in
  let acc ?batch_size ?pool () =
    Train.accuracy_under_variation ?batch_size ?pool ~rng:(Rng.create ~seed:65) ~spec:ni_spec
      ~draws:4 model d
  in
  let reference = acc () in
  List.iter
    (fun bs ->
      Alcotest.(check bool)
        (Printf.sprintf "batch %d bit-identical" bs)
        true
        (acc ~batch_size:bs () = reference))
    [ 1; 3 ];
  Pool.with_pool ~size:3 (fun pool ->
      Alcotest.(check bool) "pool 3 bit-identical" true (acc ~pool () = reference))

let () =
  Alcotest.run "pnc_autodiff"
    [
      ( "engine",
        [
          Alcotest.test_case "op values" `Quick test_values;
          Alcotest.test_case "backward x*x" `Quick test_backward_simple;
          Alcotest.test_case "reuse accumulates" `Quick test_backward_accumulates_reuse;
          Alcotest.test_case "zero_grad" `Quick test_zero_grad;
          Alcotest.test_case "const gets no grad" `Quick test_const_gets_no_grad;
          Alcotest.test_case "requires_grad propagation" `Quick test_requires_grad_propagation;
          Alcotest.test_case "predictions" `Quick test_predictions;
          Alcotest.test_case "node count" `Quick test_n_nodes;
        ] );
      ( "finite-differences",
        [
          fd_case "elementwise mix" test_fd_elementwise;
          fd_case "matmul" test_fd_matmul;
          fd_case "tanh chain" test_fd_tanh_chain;
          fd_case "sigmoid*softplus" test_fd_sigmoid_softplus;
          fd_case "exp/log" test_fd_exp_log;
          fd_case "abs" test_fd_abs;
          fd_case "broadcast rv ops" test_fd_broadcast;
          fd_case "sub_rv" test_fd_sub_rv;
          fd_case "sum_rows" test_fd_sum_rows;
          fd_case "concat_cols" test_fd_concat_cols;
          fd_case "reciprocal+transpose" test_fd_reciprocal_transpose;
          fd_case "mean" test_fd_mean;
          fd_case "unrolled recurrence" test_fd_recurrence;
          fd_case "affine_rv (fused)" test_fd_affine_rv;
          Alcotest.test_case "affine_rv value" `Quick test_affine_rv_value;
          Alcotest.test_case "affine_rv = unfused" `Quick test_affine_rv_equals_unfused;
          Alcotest.test_case "deep chain" `Quick test_deep_chain_no_stack_overflow;
        ] );
      ( "tape",
        [
          Alcotest.test_case "no-grad records nothing" `Quick test_no_grad_records_nothing;
          Alcotest.test_case "no-grad restores mode" `Quick test_no_grad_restores_mode;
          Alcotest.test_case "grad_opt" `Quick test_grad_opt_non_allocating;
          Alcotest.test_case "known graph gradients" `Quick test_tape_backward_known_graph;
          Alcotest.test_case "backward twice accumulates" `Quick test_backward_twice_accumulates;
          Alcotest.test_case "cross-graph backward" `Quick test_backward_cross_graph_after_backward;
        ] );
      ( "loss",
        [
          Alcotest.test_case "CE uniform value" `Quick test_ce_value;
          Alcotest.test_case "CE gradient" `Quick test_ce_gradient;
          Alcotest.test_case "CE perfect prediction" `Quick test_ce_perfect_prediction;
          Alcotest.test_case "softmax rows" `Quick test_softmax_rows;
          Alcotest.test_case "mse" `Quick test_mse;
        ] );
      ("properties", [ prop_random_dag ]);
      ( "model gradients",
        [
          prop_network_gradients;
          prop_crossbar_gradients;
          prop_filter_gradients;
          prop_ptanh_gradients;
        ] );
      ( "noise injection",
        [
          Alcotest.test_case "ste_mul forward/backward" `Quick test_ste_mul_forward_and_backward;
          Alcotest.test_case "ste_mul chain rule" `Quick test_ste_mul_chain_rule;
          Alcotest.test_case "crossbar STE FD oracle" `Quick test_ni_crossbar_fd_oracle;
          Alcotest.test_case "plain grad = eps*ste grad" `Quick
            test_ni_times_eps_equals_plain_gradient;
          Alcotest.test_case "MC loss value unchanged" `Quick test_ni_mc_loss_value_unchanged;
        ] );
      ( "correlated invariance",
        [
          Alcotest.test_case "expected_value pool/batch" `Quick
            test_corr_expected_value_pool_batch_invariant;
          Alcotest.test_case "accuracy pool/batch" `Quick test_corr_accuracy_pool_batch_invariant;
        ] );
    ]
