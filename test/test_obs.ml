(* Observability layer tests (tentpole + satellite: PR 3).

   Three layers of coverage:
   - units: counters, gauges, histograms, span nesting, the JSON
     parser and the JSONL encoder (via an in-memory sink);
   - schema: a smoke-scale instrumented training + Monte-Carlo
     evaluation streamed to a real JSONL file, parsed back, with the
     record invariants asserted (monotone epochs, positive throughput,
     well-formed span nesting, consistent pool worker accounting);
   - determinism: the same pipeline run under the null sink and the
     JSONL sink produces bit-identical losses, parameters and MC
     estimates (eps 0) — instrumentation must never touch an Rng
     stream. *)

module T = Pnc_tensor.Tensor
module Var = Pnc_autodiff.Var
module Rng = Pnc_util.Rng
module Pool = Pnc_util.Pool
module Obs = Pnc_obs.Obs
module Json = Pnc_obs.Obs.Json
module Registry = Pnc_data.Registry
module Dataset = Pnc_data.Dataset
module Network = Pnc_core.Network
module Model = Pnc_core.Model
module Train = Pnc_core.Train
module Mc_loss = Pnc_core.Mc_loss
module Variation = Pnc_core.Variation

(* In-memory sink for unit tests: records (name, fields) in order. *)
let with_memory_sink f =
  let events = ref [] in
  let sink =
    {
      Obs.write = (fun ~t:_ ~seq:_ ~name fields -> events := (name, fields) :: !events);
      flush = ignore;
    }
  in
  Obs.set_sink (Some sink);
  Fun.protect ~finally:(fun () -> Obs.set_sink None) f;
  List.rev !events

(* Units -------------------------------------------------------------------- *)

let test_counter () =
  let c = Obs.Counter.make "test.counter" in
  Alcotest.(check int) "starts at zero" 0 (Obs.Counter.value c);
  Obs.Counter.incr c;
  Obs.Counter.add c 41;
  Alcotest.(check int) "incr + add" 42 (Obs.Counter.value c)

let test_gauge () =
  let g = Obs.Gauge.make "test.gauge" in
  Obs.Gauge.set g 2.5;
  Alcotest.(check (float 0.)) "set/get" 2.5 (Obs.Gauge.value g)

let test_histogram () =
  let h = Obs.Histogram.make "test.histogram" in
  Obs.Histogram.observe h 0.75;
  Obs.Histogram.observe h 3.0;
  Obs.Histogram.observe h 3.9;
  Alcotest.(check int) "count" 3 (Obs.Histogram.count h);
  Alcotest.(check (float 1e-12)) "sum" 7.65 (Obs.Histogram.sum h);
  (* 0.75 lands in the bucket with upper bound 2^0; 3.0 and 3.9 in the
     one with upper bound 2^2. *)
  let buckets = Obs.Histogram.buckets h in
  Alcotest.(check int) "two non-empty buckets" 2 (Array.length buckets);
  let ub0, c0 = buckets.(0) and ub1, c1 = buckets.(1) in
  Alcotest.(check (float 0.)) "first bucket ub" 1. ub0;
  Alcotest.(check int) "first bucket count" 1 c0;
  Alcotest.(check (float 0.)) "second bucket ub" 4. ub1;
  Alcotest.(check int) "second bucket count" 2 c1

let test_enabled_flag () =
  Alcotest.(check bool) "disabled by default" false (Obs.enabled ());
  let events = with_memory_sink (fun () -> Alcotest.(check bool) "enabled inside" true (Obs.enabled ())) in
  Alcotest.(check bool) "disabled after" false (Obs.enabled ());
  Alcotest.(check int) "no spurious events" 0 (List.length events)

let test_emit_routing () =
  let events =
    with_memory_sink (fun () -> Obs.emit "hello" [ ("x", Obs.Int 1); ("y", Obs.Str "z") ])
  in
  match events with
  | [ ("hello", [ ("x", Obs.Int 1); ("y", Obs.Str "z") ]) ] -> ()
  | _ -> Alcotest.fail "unexpected event stream"

let test_span_nesting_and_exceptions () =
  let events =
    with_memory_sink (fun () ->
        Obs.Span.with_ "outer" (fun () ->
            Alcotest.(check int) "depth inside outer" 1 (Obs.Span.depth ());
            Obs.Span.with_ "inner" (fun () ->
                Alcotest.(check int) "depth inside inner" 2 (Obs.Span.depth ()));
            (try Obs.Span.with_ "boom" (fun () -> failwith "expected") with Failure _ -> ());
            Alcotest.(check int) "depth restored after raise" 1 (Obs.Span.depth ())))
  in
  Alcotest.(check int) "depth zero outside" 0 (Obs.Span.depth ());
  let names = List.map fst events in
  Alcotest.(check (list string)) "event order"
    [ "span.begin"; "span.begin"; "span.end"; "span.begin"; "span.end"; "span.end" ]
    names;
  (* The failed span reports ok=false; the others ok=true. *)
  let oks =
    List.filter_map
      (fun (name, fields) ->
        if name = "span.end" then
          match List.assoc_opt "ok" fields with Some (Obs.Bool b) -> Some b | _ -> None
        else None)
      events
  in
  Alcotest.(check (list bool)) "ok flags" [ true; false; true ] oks

let test_metrics_snapshot () =
  let c = Obs.Counter.make "test.snapshot_counter" in
  Obs.Counter.add c 7;
  let snap = Obs.metrics_snapshot () in
  match List.assoc_opt "test.snapshot_counter" snap with
  | Some fields ->
      (match List.assoc_opt "value" fields with
      | Some (Obs.Int 7) -> ()
      | _ -> Alcotest.fail "snapshot value wrong")
  | None -> Alcotest.fail "metric not registered"

(* JSON parser -------------------------------------------------------------- *)

let test_json_parse () =
  let j = Json.parse {|{"a":[1,2.5,-3e2],"b":"x\n\"","c":true,"d":null,"e":{}}|} in
  (match Json.member "a" j with
  | Some (Json.List [ x; y; z ]) ->
      Alcotest.(check (float 0.)) "int" 1. (Json.to_float x);
      Alcotest.(check (float 0.)) "float" 2.5 (Json.to_float y);
      Alcotest.(check (float 0.)) "exp" (-300.) (Json.to_float z)
  | _ -> Alcotest.fail "array member");
  (match Json.member "b" j with
  | Some s -> Alcotest.(check string) "escapes" "x\n\"" (Json.to_string s)
  | None -> Alcotest.fail "string member");
  (match Json.member "c" j with
  | Some (Json.Bool true) -> ()
  | _ -> Alcotest.fail "bool member");
  (match Json.member "d" j with Some Json.Null -> () | _ -> Alcotest.fail "null member");
  (match Json.member "e" j with Some (Json.Obj []) -> () | _ -> Alcotest.fail "empty object")

let test_json_rejects_garbage () =
  let bad s = match Json.parse s with exception Failure _ -> true | _ -> false in
  Alcotest.(check bool) "trailing garbage" true (bad {|{"a":1} x|});
  Alcotest.(check bool) "unterminated" true (bad {|{"a|});
  Alcotest.(check bool) "bare word" true (bad "frob")

(* \u escape decoding, fuzzed against a reference decoder ------------------

   The parser used to feed the four escape characters to
   [int_of_string ("0x" ^ hex)], which (a) raised an untyped [Failure
   "int_of_string"] without the parser's offset context on any non-hex
   input like \uZZZZ, and (b) silently accepted OCaml integer-literal
   underscores inside the digits (\u00_9 decoded as \u0009). The
   reference decoder below defines the contract: exactly four hex
   digits, surrogate range rejected, everything else decoded as
   minimal UTF-8. *)

let reference_decode_u (quad : string) : string option =
  let hex c =
    match c with
    | '0' .. '9' -> Some (Char.code c - Char.code '0')
    | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
    | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
    | _ -> None
  in
  let rec code i acc =
    if i = 4 then Some acc
    else match hex quad.[i] with None -> None | Some d -> code (i + 1) ((acc * 16) + d)
  in
  match code 0 0 with
  | None -> None
  | Some c when c >= 0xD800 && c <= 0xDFFF -> None
  | Some c when c < 0x80 -> Some (String.make 1 (Char.chr c))
  | Some c when c < 0x800 ->
      Some
        (Printf.sprintf "%c%c"
           (Char.chr (0xC0 lor (c lsr 6)))
           (Char.chr (0x80 lor (c land 0x3F))))
  | Some c ->
      Some
        (Printf.sprintf "%c%c%c"
           (Char.chr (0xE0 lor (c lsr 12)))
           (Char.chr (0x80 lor ((c lsr 6) land 0x3F)))
           (Char.chr (0x80 lor (c land 0x3F))))

let escape_quad_gen : string Qgen.gen =
  (* Mix of clean hex quads (most draws) and quads salted with the
     characters that historically slipped through or crashed the
     parser: '_' separators, letters past 'f', punctuation. *)
  let open Qgen in
  let hex_char = oneof [ '0'; '5'; '9'; 'a'; 'c'; 'f'; 'A'; 'D'; 'F' ] in
  let salt_char = oneof [ '_'; 'g'; 'z'; 'Z'; 'x'; '+'; '-'; ' '; 'o' ] in
  let ch = bind bool (fun clean -> if clean then hex_char else salt_char) in
  bind (int_range 0 3) (fun salted ->
      map
        (fun cs -> String.init 4 (fun i -> List.nth cs i))
        (list_of ~len:(return 4) (if salted = 0 then ch else hex_char)))

let test_json_u_escape_fuzz () =
  Qgen.check ~count:300 ~name:"\\u escapes vs reference decoder"
    ~pp:(fun q -> Printf.sprintf "\\u%s" q)
    escape_quad_gen
    (fun quad ->
      let input = Printf.sprintf "\"\\u%s\"" quad in
      match (Json.parse input, reference_decode_u quad) with
      | Json.String s, Some expect -> s = expect
      | _, Some _ -> false (* decoded to a non-string?! *)
      | exception Failure msg ->
          (* Rejection must be the parser's typed fail (offset-stamped
             message), never a bare int_of_string Failure. *)
          reference_decode_u quad = None
          && String.length msg >= 11
          && String.sub msg 0 11 = "Json.parse:"
      | _, None -> false)

let test_json_u_escape_cases () =
  let decodes input expect =
    match Json.parse input with
    | Json.String s -> Alcotest.(check string) input expect s
    | _ -> Alcotest.failf "%s: not a string" input
  in
  let rejected input =
    match Json.parse input with
    | exception Failure msg ->
        Alcotest.(check bool)
          (input ^ " rejected via parser fail")
          true
          (String.length msg >= 11 && String.sub msg 0 11 = "Json.parse:")
    | _ -> Alcotest.failf "%s: accepted" input
  in
  decodes {|"\u0041"|} "A";
  decodes {|"\u007f"|} "\x7f";
  decodes {|"\u0080"|} "\xc2\x80";
  decodes {|"\u07ff"|} "\xdf\xbf";
  decodes {|"\u0800"|} "\xe0\xa0\x80";
  decodes {|"\uFFFF"|} "\xef\xbf\xbf";
  decodes {|"\ud7FF"|} "\xed\x9f\xbf";
  decodes {|"\ue000"|} "\xee\x80\x80";
  rejected {|"\uZZZZ"|};
  rejected {|"\u00_9"|};
  (* '_' was silently accepted by int_of_string *)
  rejected {|"\u 041"|};
  rejected {|"\u0x41"|};
  rejected {|"\ud800"|};
  (* surrogate range: deterministic rejection *)
  rejected {|"\udfff"|};
  rejected {|"\u00"|}
  (* truncated *)

(* JSONL round-trip --------------------------------------------------------- *)

let read_jsonl path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (Json.parse line :: acc)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  go []

let test_jsonl_roundtrip () =
  let path = Filename.temp_file "pnc_obs" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Obs.with_jsonl ~path (fun () ->
          Obs.emit "alpha"
            [
              ("i", Obs.Int (-3));
              ("f", Obs.Float 1.5);
              ("nan", Obs.Float Float.nan);
              ("inf", Obs.Float Float.infinity);
              ("s", Obs.Str "quote\" newline\n tab\t");
              ("b", Obs.Bool false);
            ];
          Obs.emit "beta" []);
      match read_jsonl path with
      | [ a; b ] ->
          (match Json.member "event" a with
          | Some e -> Alcotest.(check string) "event name" "alpha" (Json.to_string e)
          | None -> Alcotest.fail "missing event");
          (match Json.member "seq" a with
          | Some s -> Alcotest.(check int) "first seq" 1 (Json.to_int s)
          | None -> Alcotest.fail "missing seq");
          (match Json.member "i" a with
          | Some v -> Alcotest.(check int) "int field" (-3) (Json.to_int v)
          | None -> Alcotest.fail "missing i");
          (match Json.member "f" a with
          | Some v -> Alcotest.(check (float 0.)) "float field" 1.5 (Json.to_float v)
          | None -> Alcotest.fail "missing f");
          (* Non-finite floats are encoded as null (JSON has no nan). *)
          (match (Json.member "nan" a, Json.member "inf" a) with
          | Some Json.Null, Some Json.Null -> ()
          | _ -> Alcotest.fail "non-finite floats must encode as null");
          (match Json.member "s" a with
          | Some v -> Alcotest.(check string) "string escapes" "quote\" newline\n tab\t" (Json.to_string v)
          | None -> Alcotest.fail "missing s");
          (match Json.member "b" a with
          | Some (Json.Bool false) -> ()
          | _ -> Alcotest.fail "bool field");
          (match Json.member "seq" b with
          | Some s -> Alcotest.(check int) "second seq" 2 (Json.to_int s)
          | None -> Alcotest.fail "missing seq on beta")
      | l -> Alcotest.failf "expected 2 records, got %d" (List.length l))

(* Instrumented pipeline: bit-parity and schema ----------------------------- *)

type pipeline_result = {
  history : Train.history;
  params : T.t list;
  mc : float;
  var_acc : float;
}

(* One deterministic smoke pipeline: train a small ADAPT net, then a
   pooled MC loss estimate and a pooled accuracy-under-variation pass.
   Everything is freshly seeded, so two invocations must agree bit for
   bit no matter which sink is installed. *)
let run_pipeline () =
  let raw = Registry.load ~seed:5 ~n:40 "GPOVY" in
  let split = Dataset.preprocess (Rng.create ~seed:6) raw in
  let net =
    Network.create ~hidden:3 (Rng.create ~seed:7) Network.Adapt ~inputs:1
      ~classes:raw.Dataset.n_classes
  in
  let model = Model.Circuit net in
  let cfg = { Train.smoke_config with Train.max_epochs = 6; patience = 3 } in
  let history = Train.train ~rng:(Rng.create ~seed:8) cfg model split in
  let spec = Variation.uniform 0.1 in
  Pool.with_pool ~size:2 (fun pool ->
      let x, labels = Train.to_xy split.Dataset.test in
      let mc =
        Mc_loss.expected_value ~pool ~rng:(Rng.create ~seed:9) ~spec ~n:8 model ~x ~labels
      in
      let var_acc =
        Train.accuracy_under_variation ~pool ~rng:(Rng.create ~seed:10) ~spec ~draws:6 model
          split.Dataset.test
      in
      {
        history;
        params = List.map (fun p -> T.copy (Var.value p)) (Model.params model);
        mc;
        var_acc;
      })

let check_parity a b =
  Alcotest.(check int) "epochs_run" a.history.Train.epochs_run b.history.Train.epochs_run;
  Alcotest.(check bool) "train curve bit-identical" true
    (a.history.Train.train_loss_curve = b.history.Train.train_loss_curve);
  Alcotest.(check bool) "val curve bit-identical" true
    (a.history.Train.val_loss_curve = b.history.Train.val_loss_curve);
  List.iter2
    (fun p q -> Alcotest.(check bool) "params bit-identical" true (T.equal_eps ~eps:0. p q))
    a.params b.params;
  Alcotest.(check bool) "mc estimate bit-identical" true (a.mc = b.mc);
  Alcotest.(check bool) "variation accuracy bit-identical" true (a.var_acc = b.var_acc)

let num_field record key =
  match Json.member key record with
  | Some v -> Json.to_float v
  | None -> Alcotest.failf "record missing field %s" key

let str_field record key =
  match Json.member key record with
  | Some v -> Json.to_string v
  | None -> Alcotest.failf "record missing field %s" key

let events_named records name =
  List.filter (fun r -> str_field r "event" = name) records

let check_schema records =
  Alcotest.(check bool) "stream non-empty" true (records <> []);
  (* Every record is self-describing: t, strictly increasing seq, event. *)
  let last_seq = ref 0 in
  List.iter
    (fun r ->
      let seq = int_of_float (num_field r "seq") in
      Alcotest.(check bool) "seq strictly increasing" true (seq > !last_seq);
      last_seq := seq;
      Alcotest.(check bool) "t finite" true (Float.is_finite (num_field r "t"));
      ignore (str_field r "event"))
    records;
  (* Epoch records: epoch strictly increasing from 1, fields sane. *)
  let epochs = events_named records "train.epoch" in
  Alcotest.(check bool) "has epoch records" true (epochs <> []);
  List.iteri
    (fun i r ->
      Alcotest.(check int) "epoch numbering" (i + 1) (int_of_float (num_field r "epoch"));
      Alcotest.(check bool) "epoch seconds >= 0" true (num_field r "seconds" >= 0.);
      Alcotest.(check bool) "lr positive" true (num_field r "lr" > 0.);
      Alcotest.(check bool) "grad norm finite" true (Float.is_finite (num_field r "grad_norm")))
    epochs;
  (match events_named records "train.done" with
  | [ d ] ->
      Alcotest.(check int) "train.done epochs = #epoch records" (List.length epochs)
        (int_of_float (num_field d "epochs_run"))
  | l -> Alcotest.failf "expected exactly one train.done, got %d" (List.length l));
  (* Throughput records are positive wherever emitted. *)
  let throughputs =
    events_named records "mc.eval" @ events_named records "eval.variation"
  in
  Alcotest.(check bool) "has throughput records" true (throughputs <> []);
  List.iter
    (fun r ->
      Alcotest.(check bool) "draws positive" true (num_field r "draws" > 0.);
      Alcotest.(check bool) "draws/s positive" true (num_field r "draws_per_s" > 0.))
    throughputs;
  (* Span discipline: begin/end alternate like a well-formed bracket
     sequence, names and depths matching. *)
  let stack = ref [] in
  List.iter
    (fun r ->
      match str_field r "event" with
      | "span.begin" ->
          let name = str_field r "span" and d = int_of_float (num_field r "depth") in
          Alcotest.(check int) "begin depth = stack size" (List.length !stack) d;
          stack := name :: !stack
      | "span.end" -> (
          let name = str_field r "span" and d = int_of_float (num_field r "depth") in
          Alcotest.(check bool) "end dur >= 0" true (num_field r "dur_s" >= 0.);
          match !stack with
          | top :: rest ->
              Alcotest.(check string) "end matches innermost begin" top name;
              Alcotest.(check int) "end depth" (List.length rest) d;
              stack := rest
          | [] -> Alcotest.fail "span.end without begin")
      | _ -> ())
    records;
  Alcotest.(check int) "all spans closed" 0 (List.length !stack);
  (* Pool accounting: worker task counts sum to the shutdown total. *)
  (match events_named records "pool.shutdown" with
  | [] -> Alcotest.fail "expected a pool.shutdown record"
  | shutdowns ->
      let workers = events_named records "pool.worker" in
      let worker_sum =
        List.fold_left (fun acc r -> acc + int_of_float (num_field r "tasks")) 0 workers
      in
      let totals =
        List.fold_left (fun acc r -> acc + int_of_float (num_field r "tasks_total")) 0 shutdowns
      in
      Alcotest.(check int) "worker tasks sum to pool total" totals worker_sum);
  (* The final metrics snapshot is present and self-consistent. *)
  let metrics = events_named records "metric" in
  Alcotest.(check bool) "has metrics snapshot" true (metrics <> []);
  match List.find_opt (fun r -> str_field r "name" = "train.epochs") metrics with
  | Some m ->
      Alcotest.(check bool) "train.epochs counter >= epoch records" true
        (int_of_float (num_field m "value") >= List.length epochs)
  | None -> Alcotest.fail "train.epochs metric missing from snapshot"

let test_pipeline_parity_and_schema () =
  let baseline = run_pipeline () in
  let path = Filename.temp_file "pnc_obs_schema" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let instrumented =
        Obs.with_jsonl ~path (fun () ->
            let r = run_pipeline () in
            Obs.emit_metrics ();
            r)
      in
      (* Determinism: the sink must not perturb a single bit. *)
      check_parity baseline instrumented;
      (* And once more under the null sink, after the instrumented run. *)
      check_parity baseline (run_pipeline ());
      check_schema (read_jsonl path))

let () =
  Alcotest.run "pnc_obs"
    [
      ( "units",
        [
          Alcotest.test_case "counter" `Quick test_counter;
          Alcotest.test_case "gauge" `Quick test_gauge;
          Alcotest.test_case "histogram buckets" `Quick test_histogram;
          Alcotest.test_case "enabled flag" `Quick test_enabled_flag;
          Alcotest.test_case "emit routing" `Quick test_emit_routing;
          Alcotest.test_case "span nesting + exceptions" `Quick test_span_nesting_and_exceptions;
          Alcotest.test_case "metrics snapshot" `Quick test_metrics_snapshot;
        ] );
      ( "json",
        [
          Alcotest.test_case "parse" `Quick test_json_parse;
          Alcotest.test_case "rejects garbage" `Quick test_json_rejects_garbage;
          Alcotest.test_case "\\u escape fuzz" `Quick test_json_u_escape_fuzz;
          Alcotest.test_case "\\u escape cases" `Quick test_json_u_escape_cases;
          Alcotest.test_case "jsonl round-trip" `Quick test_jsonl_roundtrip;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "bit-parity + schema" `Quick test_pipeline_parity_and_schema;
        ] );
    ]
