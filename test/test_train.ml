(* Integration tests: end-to-end training of the three model families
   on small synthetic workloads, snapshot restoration, printable-window
   invariants after optimization, and evaluation protocols. *)

module T = Pnc_tensor.Tensor
module Var = Pnc_autodiff.Var
module Rng = Pnc_util.Rng
module Dataset = Pnc_data.Dataset
module Registry = Pnc_data.Registry
module Network = Pnc_core.Network
module Elman = Pnc_core.Elman
module Model = Pnc_core.Model
module Train = Pnc_core.Train
module Variation = Pnc_core.Variation
module Printed = Pnc_core.Printed
module Filter_layer = Pnc_core.Filter_layer

let gpovy_split () =
  let raw = Registry.load ~seed:3 ~n:80 "GPOVY" in
  Dataset.preprocess (Rng.create ~seed:4) raw

let smoke = Train.smoke_config

let test_adapt_learns_separable () =
  let split = gpovy_split () in
  let rng = Rng.create ~seed:5 in
  let net = Network.create ~hidden:4 rng Network.Adapt ~inputs:1 ~classes:2 in
  let model = Model.Circuit net in
  let cfg = { smoke with Train.max_epochs = 120; patience = 15; mc_samples = 2 } in
  let _ = Train.train ~rng cfg model split in
  (* A ragged explicit batch size: the accuracy must be identical to
     the whole-split evaluation (batch parity), so this end-to-end
     assert also exercises the chunked path. *)
  let acc = Train.accuracy ~batch_size:7 model split.Dataset.test in
  Alcotest.(check bool) (Printf.sprintf "adapt beats chance strongly (%.3f)" acc) true (acc >= 0.8)

let test_baseline_learns_separable () =
  let split = gpovy_split () in
  let rng = Rng.create ~seed:6 in
  let net = Network.create ~hidden:2 rng Network.Ptpnc ~inputs:1 ~classes:2 in
  let model = Model.Circuit net in
  let cfg =
    { smoke with Train.max_epochs = 120; patience = 15; mc_samples = 1; variation = Variation.none }
  in
  let _ = Train.train ~rng cfg model split in
  let acc = Train.accuracy ~batch_size:7 model split.Dataset.test in
  Alcotest.(check bool) (Printf.sprintf "baseline beats chance (%.3f)" acc) true (acc >= 0.7)

let test_elman_learns_separable () =
  let split = gpovy_split () in
  let rng = Rng.create ~seed:7 in
  let model = Model.Reference (Elman.create rng ~inputs:1 ~classes:2) in
  let cfg =
    { smoke with Train.max_epochs = 150; patience = 20; mc_samples = 1; variation = Variation.none }
  in
  let _ = Train.train ~rng cfg model split in
  let acc = Train.accuracy model split.Dataset.test in
  Alcotest.(check bool) (Printf.sprintf "elman beats chance (%.3f)" acc) true (acc >= 0.7)

let test_loss_decreases () =
  let split = gpovy_split () in
  let rng = Rng.create ~seed:8 in
  let net = Network.create ~hidden:4 rng Network.Adapt ~inputs:1 ~classes:2 in
  let cfg = { smoke with Train.max_epochs = 80; mc_samples = 1; variation = Variation.none } in
  let h = Train.train ~rng cfg (Model.Circuit net) split in
  let curve = h.Train.train_loss_curve in
  let first = curve.(0) in
  let best = Array.fold_left Float.min infinity curve in
  Alcotest.(check bool)
    (Printf.sprintf "loss decreased (%.4f -> %.4f)" first best)
    true
    (best < first -. 0.05)

let test_history_shapes () =
  let split = gpovy_split () in
  let rng = Rng.create ~seed:9 in
  let net = Network.create ~hidden:2 rng Network.Ptpnc ~inputs:1 ~classes:2 in
  let cfg = { smoke with Train.max_epochs = 10 } in
  let h = Train.train ~rng cfg (Model.Circuit net) split in
  Alcotest.(check int) "curves match epochs" h.Train.epochs_run
    (Array.length h.Train.train_loss_curve);
  Alcotest.(check int) "val curve too" h.Train.epochs_run (Array.length h.Train.val_loss_curve);
  Alcotest.(check bool) "epochs bounded" true (h.Train.epochs_run <= 10)

let test_best_snapshot_restored () =
  (* With deterministic validation (no variation, v0 = 0 via
     deterministic evaluation) the restored model's validation loss must
     equal the recorded best. *)
  let split = gpovy_split () in
  let rng = Rng.create ~seed:10 in
  let model = Model.Reference (Elman.create rng ~inputs:1 ~classes:2) in
  let cfg = { smoke with Train.max_epochs = 60; mc_samples = 1; variation = Variation.none } in
  let h = Train.train ~rng cfg model split in
  let x, y = Train.to_xy split.Dataset.valid in
  let loss =
    Pnc_core.Mc_loss.expected_value ~rng ~spec:Variation.none ~n:1 model ~x ~labels:y
  in
  Alcotest.(check bool)
    (Printf.sprintf "restored val loss %.6f = best %.6f" loss h.Train.best_val_loss)
    true
    (Float.abs (loss -. h.Train.best_val_loss) < 1e-9)

let test_printable_invariants_after_training () =
  let split = gpovy_split () in
  let rng = Rng.create ~seed:11 in
  let net = Network.create ~hidden:4 rng Network.Adapt ~inputs:1 ~classes:2 in
  let cfg = { smoke with Train.max_epochs = 50 } in
  let _ = Train.train ~rng cfg (Model.Circuit net) split in
  List.iter
    (fun (cb, fl, _) ->
      let theta = Pnc_core.Crossbar.theta_values cb in
      Alcotest.(check bool) "theta clamped" true (T.max_abs theta <= 1. +. 1e-9);
      Array.iter
        (fun stage ->
          Array.iter
            (fun r ->
              Alcotest.(check bool) "R printable" true
                (r >= Printed.filter_r_min -. 1e-6 && r <= Printed.filter_r_max +. 1e-6))
            stage)
        (Filter_layer.r_values fl))
    (Network.layers net)

let test_accuracy_under_variation_bounds () =
  let split = gpovy_split () in
  let rng = Rng.create ~seed:12 in
  let net = Network.create ~hidden:2 rng Network.Ptpnc ~inputs:1 ~classes:2 in
  let model = Model.Circuit net in
  let acc =
    Train.accuracy_under_variation ~rng ~spec:(Variation.uniform 0.1) ~draws:3 model
      split.Dataset.test
  in
  Alcotest.(check bool) "in [0,1]" true (acc >= 0. && acc <= 1.)

let test_epoch_seconds_positive () =
  let split = gpovy_split () in
  let rng = Rng.create ~seed:13 in
  let net = Network.create ~hidden:2 rng Network.Ptpnc ~inputs:1 ~classes:2 in
  let s = Train.epoch_seconds smoke (Model.Circuit net) split in
  Alcotest.(check bool) "positive" true (s > 0.)

let test_variation_aware_helps_under_variation () =
  (* Train the same architecture with and without the MC objective and
     compare accuracy under strong (25%) component variation. The VA
     model must not be (much) worse; in the typical case it is better.
     This is the paper's central claim at smoke scale. *)
  let raw = Registry.load ~seed:31 ~n:120 "GPOVY" in
  let split = Dataset.preprocess (Rng.create ~seed:32) raw in
  let train_once ~va seed =
    let rng = Rng.create ~seed in
    let net = Network.create ~hidden:4 rng Network.Adapt ~inputs:1 ~classes:2 in
    let model = Model.Circuit net in
    let cfg =
      if va then { smoke with Train.max_epochs = 150; mc_samples = 4; variation = Variation.uniform 0.35 }
      else { smoke with Train.max_epochs = 150; mc_samples = 1; variation = Variation.none }
    in
    let _ = Train.train ~rng cfg model split in
    Train.accuracy_under_variation ~rng:(Rng.create ~seed:99) ~spec:(Variation.uniform 0.35)
      ~draws:10 model split.Dataset.test
  in
  let seeds = [ 41; 42; 43 ] in
  (* Median, not mean: at smoke scale the 35% VA optimization
     occasionally collapses outright for an unlucky seed (it does so
     for some seeds on every historical draw construction); the claim
     under test is about the typical trained model, so one collapsed
     run must not dominate the statistic. *)
  let med f =
    let xs = List.sort Float.compare (List.map f seeds) in
    List.nth xs (List.length xs / 2)
  in
  let va = med (train_once ~va:true) and base = med (train_once ~va:false) in
  Alcotest.(check bool)
    (Printf.sprintf "VA non-inferior under 35%% variation (median %.3f vs %.3f)" va base)
    true (va >= base -. 0.05)

let () =
  Alcotest.run "pnc_train"
    [
      ( "end-to-end",
        [
          Alcotest.test_case "ADAPT learns" `Slow test_adapt_learns_separable;
          Alcotest.test_case "baseline learns" `Slow test_baseline_learns_separable;
          Alcotest.test_case "Elman learns" `Slow test_elman_learns_separable;
          Alcotest.test_case "loss decreases" `Slow test_loss_decreases;
          Alcotest.test_case "VA robustness" `Slow test_variation_aware_helps_under_variation;
        ] );
      ( "mechanics",
        [
          Alcotest.test_case "history shapes" `Quick test_history_shapes;
          Alcotest.test_case "best snapshot restored" `Quick test_best_snapshot_restored;
          Alcotest.test_case "printable invariants" `Quick test_printable_invariants_after_training;
          Alcotest.test_case "variation accuracy bounds" `Quick test_accuracy_under_variation_bounds;
          Alcotest.test_case "epoch seconds" `Quick test_epoch_seconds_positive;
        ] );
    ]
