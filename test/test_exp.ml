(* Tests for the experiment harness: configs, the training grid, and
   each artifact builder at smoke scale. *)

module Config = Pnc_exp.Config
module E = Pnc_exp.Experiments

let smoke_cfg () =
  let cfg = Config.of_scale Config.Smoke in
  { cfg with Config.datasets = [ "GPOVY" ]; dataset_n = Some 50 }

let test_scales () =
  List.iter
    (fun (name, scale) ->
      Alcotest.(check string) "roundtrip" name (Config.scale_name (Config.scale_of_string name));
      let cfg = Config.of_scale scale in
      Alcotest.(check bool) "has seeds" true (cfg.Config.seeds <> []);
      Alcotest.(check bool) "top_k <= seeds" true
        (cfg.Config.top_k <= List.length cfg.Config.seeds))
    [ ("smoke", Config.Smoke); ("fast", Config.Fast); ("paper", Config.Paper) ]

let test_scale_of_string_invalid () =
  match Config.scale_of_string "huge" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_paper_config_matches_paper () =
  let cfg = Config.of_scale Config.Paper in
  Alcotest.(check int) "10 seeds" 10 (List.length cfg.Config.seeds);
  Alcotest.(check int) "top 3" 3 cfg.Config.top_k;
  Alcotest.(check (float 0.)) "lr 0.1" 0.1 cfg.Config.train_va.Pnc_core.Train.lr;
  Alcotest.(check int) "patience 100" 100 cfg.Config.train_va.Pnc_core.Train.patience;
  Alcotest.(check (float 0.)) "min lr 1e-5" 1e-5 cfg.Config.train_va.Pnc_core.Train.min_lr;
  Alcotest.(check int) "15 datasets" 15 (List.length cfg.Config.datasets)

let test_variant_names () =
  Alcotest.(check int) "fig7 variants" 5 (List.length E.fig7_variants);
  Alcotest.(check int) "table1 variants" 3 (List.length E.table1_variants);
  Alcotest.(check string) "full name" "VA+SO-LF+AT" (E.variant_name E.Full)

let test_train_run_record () =
  let cfg = smoke_cfg () in
  let r = E.train_run cfg ~dataset:"GPOVY" ~variant:E.Base ~seed:0 in
  Alcotest.(check string) "dataset" "GPOVY" r.E.dataset;
  Alcotest.(check bool) "epochs > 0" true (r.E.epochs > 0);
  List.iter
    (fun (name, v) ->
      if v < 0. || v > 1. then Alcotest.failf "%s out of [0,1]: %f" name v)
    [
      ("clean", r.E.clean_acc);
      ("clean_var", r.E.clean_var_acc);
      ("aug_var", r.E.aug_var_acc);
      ("pert_var", r.E.pert_var_acc);
    ]

let test_grid_and_artifacts () =
  let cfg = smoke_cfg () in
  let variants = E.Reference :: E.fig7_variants in
  let grid = E.run_grid cfg ~variants in
  Alcotest.(check int) "grid size = datasets*variants*seeds"
    (List.length cfg.Config.datasets * List.length variants * List.length cfg.Config.seeds)
    (List.length grid);
  (* Table I *)
  let t1 = E.table1_of_grid cfg grid in
  Alcotest.(check int) "t1 rows = datasets + avg" (List.length cfg.Config.datasets + 1)
    (List.length t1);
  let last = List.nth t1 (List.length t1 - 1) in
  Alcotest.(check string) "avg row" "Average" last.E.t1_dataset;
  (* Table III *)
  let t3 = E.table3_of_grid cfg grid in
  List.iter
    (fun row ->
      Alcotest.(check bool)
        (row.E.t3_dataset ^ ": adapt has more devices")
        true
        (Pnc_core.Hardware.total row.E.adapt_counts > Pnc_core.Hardware.total row.E.base_counts);
      Alcotest.(check bool)
        (row.E.t3_dataset ^ ": adapt uses less power")
        true (row.E.adapt_power_mw < row.E.base_power_mw))
    t3;
  (* Fig 5 and Fig 7 *)
  let f5 = E.fig5_of_grid cfg grid in
  Alcotest.(check bool) "fig5 cells in range" true
    (f5.E.f5_clean.E.mean >= 0. && f5.E.f5_pert_var.E.mean <= 1.);
  let f7 = E.fig7_of_grid cfg grid in
  Alcotest.(check int) "fig7 bars" 5 (List.length f7)

(* Printing paths: fabricate a grid (no training) and render every
   artifact; formatting must not raise on any input shape. *)
let fake_grid cfg =
  let rng = Pnc_util.Rng.create ~seed:1 in
  List.concat_map
    (fun dataset ->
      List.concat_map
        (fun variant ->
          List.map
            (fun seed ->
              let model =
                match variant with
                | E.Reference ->
                    Pnc_core.Model.Reference (Pnc_core.Elman.create rng ~inputs:1 ~classes:2)
                | E.Base | E.Va | E.At ->
                    Pnc_core.Model.Circuit
                      (Pnc_core.Network.create ~hidden:2 rng Pnc_core.Network.Ptpnc ~inputs:1
                         ~classes:2)
                | E.So_lf | E.Full | E.Ni ->
                    Pnc_core.Model.Circuit
                      (Pnc_core.Network.create ~hidden:4 rng Pnc_core.Network.Adapt ~inputs:1
                         ~classes:2)
              in
              {
                E.dataset;
                variant;
                seed;
                model;
                clean_acc = 0.5 +. (0.01 *. float_of_int seed);
                clean_var_acc = 0.5;
                aug_var_acc = 0.45;
                pert_var_acc = 0.4;
                corr_var_acc = 0.42;
                train_seconds = 0.1;
                epochs = 10;
              })
            cfg.Config.seeds)
        (E.Reference :: E.fig7_variants))
    cfg.Config.datasets

let test_print_paths_do_not_raise () =
  let cfg = smoke_cfg () in
  let grid = fake_grid cfg in
  E.print_table1 (E.table1_of_grid cfg grid);
  E.print_fig5 (E.fig5_of_grid cfg grid);
  E.print_fig7 (E.fig7_of_grid cfg grid);
  E.print_table3 (E.table3_of_grid cfg grid);
  E.print_fig6 (E.fig6 ());
  E.print_table2 [ ("model", 0.001) ]

let test_variation_sweep_on_fake_grid () =
  let cfg = smoke_cfg () in
  let grid = fake_grid cfg in
  let rows = E.variation_sweep_of_grid ~levels:[ 0.; 0.1 ] ~threshold:0.5 cfg grid in
  Alcotest.(check int) "two levels" 2 (List.length rows);
  List.iter
    (fun r ->
      Alcotest.(check bool) "yields in [0,1]" true
        (r.E.base_yield >= 0. && r.E.base_yield <= 1. && r.E.adapt_yield >= 0.
       && r.E.adapt_yield <= 1.))
    rows;
  E.print_variation_sweep ~threshold:0.5 rows

let test_fig6_entries () =
  let entries = E.fig6 () in
  Alcotest.(check int) "original + 5 transforms" 6 (List.length entries);
  let _, original = List.hd entries in
  List.iter
    (fun (_, s) -> Alcotest.(check int) "same length" (Array.length original) (Array.length s))
    entries

let test_paper_table1_embedded () =
  Alcotest.(check int) "16 rows" 16 (List.length E.paper_table1);
  let _, e, b, a = List.nth E.paper_table1 15 in
  Alcotest.(check (float 1e-9)) "avg elman" 0.501 e;
  Alcotest.(check (float 1e-9)) "avg ptpnc" 0.582 b;
  Alcotest.(check (float 1e-9)) "avg adapt" 0.726 a

let test_mu_survey_shape () =
  let xs = E.mu_survey () in
  Alcotest.(check bool) "non-empty" true (xs <> []);
  let lo, hi = Pnc_core.Coupling.mu_range xs in
  Alcotest.(check bool) "band" true (lo >= 0.9 && hi <= 1.4)

let () =
  Alcotest.run "pnc_exp"
    [
      ( "config",
        [
          Alcotest.test_case "scales" `Quick test_scales;
          Alcotest.test_case "invalid scale" `Quick test_scale_of_string_invalid;
          Alcotest.test_case "paper protocol" `Quick test_paper_config_matches_paper;
        ] );
      ( "grid",
        [
          Alcotest.test_case "variant names" `Quick test_variant_names;
          Alcotest.test_case "train_run record" `Slow test_train_run_record;
          Alcotest.test_case "grid + artifacts" `Slow test_grid_and_artifacts;
        ] );
      ( "artifacts",
        [
          Alcotest.test_case "print paths" `Quick test_print_paths_do_not_raise;
          Alcotest.test_case "variation sweep (fake grid)" `Quick test_variation_sweep_on_fake_grid;
          Alcotest.test_case "fig6 entries" `Quick test_fig6_entries;
          Alcotest.test_case "paper table embedded" `Quick test_paper_table1_embedded;
          Alcotest.test_case "mu survey" `Quick test_mu_survey_shape;
        ] );
    ]
