(* Fuzzed approximation battery for Fast_math.tanh (the `Fast tier).

   The battery checks the proven contract of lib/tensor/fast_math.mli
   against Stdlib.tanh as the oracle:

   - |Fast_math.tanh x - Stdlib.tanh x| <= 1e-7 for every finite x,
     fuzzed on uniform AND log-scale inputs (magnitudes 1e-320..1e308)
     plus a hand-picked adversarial list (signed zeros, denormals,
     overflow-scale values, infinities, NaN, the saturation knee);
   - odd symmetry, bit-for-bit: tanh (-x) = -. tanh x;
   - monotone non-decreasing (on pairs separated by >= 1e-6 — below
     that the true tanh difference can be under one ulp of the output
     and double rounding may legally invert adjacent values);
   - exactly +-1.0 for |x| >= cutoff, including infinities;
   - signed zeros preserved and NaN propagated.

   Teeth check: the battery must actually be able to fail. A local
   bit-faithful copy of the polynomial (verified bit-identical against
   the library on fuzzed inputs) is re-run with one coefficient
   perturbed by 1e-6, and the suite asserts the 1e-7 bound check
   REJECTS the perturbed kernel — i.e. the tolerance has no slack to
   absorb a real coefficient bug. *)

module FM = Pnc_tensor.Fast_math

let bound = FM.max_abs_error
let err x = Float.abs (FM.tanh x -. Stdlib.tanh x)

(* Generators ----------------------------------------------------------- *)

(* Uniform over the active region (everything past ~+-9 is tail). *)
let gen_uniform = Qgen.float_range (-20.) 20.

(* Log-scale magnitudes: sign * 10^e with e uniform in [-320, 308]
   covers denormals through overflow-scale doubles. *)
let gen_log =
  Qgen.map
    (fun (neg, e) ->
      let m = Float.exp (e *. Float.log 10.) in
      if neg then -.m else m)
    (Qgen.pair Qgen.bool (Qgen.float_range (-320.) 308.))

let gen_any = Qgen.bind Qgen.bool (fun b -> if b then gen_uniform else gen_log)
let pp_float = Printf.sprintf "%.17g"

(* Properties ------------------------------------------------------------ *)

let test_bound_uniform () =
  Qgen.check ~count:2000 ~pp:pp_float ~name:"bound (uniform)" gen_uniform (fun x ->
      err x <= bound)

let test_bound_log () =
  Qgen.check ~count:2000 ~pp:pp_float ~name:"bound (log-scale)" gen_log (fun x ->
      err x <= bound)

let adversarial =
  [
    0.0;
    -0.0;
    4.94e-324 (* smallest denormal *);
    -4.94e-324;
    1e-308 (* denormal boundary *);
    -1e-308;
    1e308;
    -1e308;
    Float.max_float;
    -.Float.max_float;
    infinity;
    neg_infinity;
    FM.cutoff;
    -.FM.cutoff;
    Float.pred FM.cutoff (* last polynomial-path input *);
    -.Float.pred FM.cutoff;
    Float.succ FM.cutoff;
    8.4;
    8.49999;
    8.5000001;
    8.6;
    1.0;
    -1.0;
    0.5;
    1e-9;
  ]

let test_adversarial () =
  List.iter
    (fun x ->
      Alcotest.(check bool)
        (Printf.sprintf "bound at %s" (pp_float x))
        true (err x <= bound))
    adversarial

let test_nan_and_zeros () =
  Alcotest.(check bool) "nan propagates" true (Float.is_nan (FM.tanh Float.nan));
  let bits = Int64.bits_of_float in
  Alcotest.(check int64) "+0 preserved" (bits 0.0) (bits (FM.tanh 0.0));
  Alcotest.(check int64) "-0 preserved" (bits (-0.0)) (bits (FM.tanh (-0.0)))

let test_exact_tails () =
  (* |x| >= cutoff is exactly copysign 1 x — including infinities. *)
  let gen =
    Qgen.map
      (fun (neg, e) ->
        let m = FM.cutoff *. Float.exp (e *. Float.log 10.) in
        if neg then -.m else m)
      (Qgen.pair Qgen.bool (Qgen.float_range 0. 300.))
  in
  Qgen.check ~count:500 ~pp:pp_float ~name:"exact +-1 tails" gen (fun x ->
      FM.tanh x = Float.copy_sign 1. x);
  Alcotest.(check (float 0.)) "tanh inf" 1. (FM.tanh infinity);
  Alcotest.(check (float 0.)) "tanh -inf" (-1.) (FM.tanh neg_infinity)

let test_odd_bit_exact () =
  Qgen.check ~count:2000 ~pp:pp_float ~name:"odd symmetry (bit exact)" gen_any (fun x ->
      Int64.bits_of_float (FM.tanh (-.x)) = Int64.bits_of_float (-.FM.tanh x))

let test_monotone () =
  (* Pairs separated by >= 1e-6: below that, the true tanh difference
     can be smaller than one output ulp and rounding may legally invert
     adjacent values near the knee. *)
  let gen =
    Qgen.map
      (fun (x, d) -> (x, x +. 1e-6 +. d))
      (Qgen.pair (Qgen.float_range (-12.) 12.) (Qgen.float_range 0. 3.))
  in
  Qgen.check ~count:2000
    ~pp:(fun (x, y) -> Printf.sprintf "(%s, %s)" (pp_float x) (pp_float y))
    ~name:"monotone" gen
    (fun (x, y) -> FM.tanh x <= FM.tanh y)

let test_knee_scan () =
  (* Dense deterministic sweep across the polynomial/clamp boundary:
     the bound must hold and the curve must stay monotone as the
     implementation switches formulas. *)
  let n = 4000 in
  let xs = Array.init (n + 1) (fun i -> 8.3 +. (0.4 *. float_of_int i /. float_of_int n)) in
  Array.iter
    (fun x ->
      if err x > bound then
        Alcotest.failf "knee bound violated at %s: err %.3g" (pp_float x) (err x))
    xs;
  for i = 0 to n - 1 do
    (* Grid spacing 1e-4 >= the 1e-6 monotonicity guard. *)
    if FM.tanh xs.(i) > FM.tanh xs.(i + 1) then
      Alcotest.failf "knee monotonicity violated at %s" (pp_float xs.(i))
  done

(* Teeth: a perturbed kernel must be rejected ---------------------------- *)

(* Bit-faithful copy of the library kernel with an injectable bump on
   the leading Taylor coefficient 1/3!. [bump = 0.] must be
   bit-identical to [FM.tanh] (verified below), so a failure of the
   perturbed variant is evidence about the real kernel's tolerance, not
   about a drifted copy. *)
let local_tanh ~bump x =
  if Float.abs x >= FM.cutoff then Float.copy_sign 1. x
  else begin
    let u = x *. x in
    let p = 1. /. 1307674368000. in
    let p = (1. /. 6227020800.) +. (u *. p) in
    let p = (1. /. 39916800.) +. (u *. p) in
    let p = (1. /. 362880.) +. (u *. p) in
    let p = (1. /. 5040.) +. (u *. p) in
    let p = (1. /. 120.) +. (u *. p) in
    let p = (1. /. 6.) +. bump +. (u *. p) in
    let p = 1. +. (u *. p) in
    let s = x *. p in
    s /. Stdlib.sqrt (1. +. (s *. s))
  end

let test_copy_faithful () =
  Qgen.check ~count:2000 ~pp:pp_float ~name:"local copy bit-identical" gen_any (fun x ->
      Int64.bits_of_float (local_tanh ~bump:0. x) = Int64.bits_of_float (FM.tanh x))

let test_perturbed_coefficient_caught () =
  (* A 1e-6 bump on the 1/3! coefficient shifts s by ~1e-6*x^3, i.e.
     ~1e-6 absolute tanh error near x = 1 — ten times the bound. If the
     sweep below finds no violation, the battery has no teeth and this
     test fails. *)
  let violated = ref false in
  for i = 0 to 400 do
    let x = 0.25 +. (2.0 *. float_of_int i /. 400.) in
    if Float.abs (local_tanh ~bump:1e-6 x -. Stdlib.tanh x) > bound then violated := true
  done;
  Alcotest.(check bool) "perturbed kernel violates the 1e-7 bound" true !violated;
  (* And the unperturbed kernel passes the same sweep — the rejection
     above is caused by the bump alone. *)
  let clean_ok = ref true in
  for i = 0 to 400 do
    let x = 0.25 +. (2.0 *. float_of_int i /. 400.) in
    if Float.abs (local_tanh ~bump:0. x -. Stdlib.tanh x) > bound then clean_ok := false
  done;
  Alcotest.(check bool) "clean kernel passes the same sweep" true !clean_ok

let test_apply_range_parity () =
  (* The in-module loop entry point (what the fused kernels call) must
     be bit-identical to the scalar function, over an arbitrary
     sub-range with untouched elements outside it. *)
  let gen =
    Qgen.pair
      (Qgen.array_of ~len:(Qgen.int_range 1 64) gen_any)
      (Qgen.pair (Qgen.int_range 0 8) (Qgen.int_range 0 8))
  in
  Qgen.check ~count:300
    ~pp:(fun (a, (lo, hi)) -> Printf.sprintf "(%d elems, margins %d+%d)" (Array.length a) lo hi)
    ~name:"apply_range = scalar" gen
    (fun (a, (lo, hi)) ->
      let n = Array.length a in
      let lo = min lo (n - 1) in
      let hi = min hi (n - 1 - lo) in
      let d = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n in
      Array.iteri (fun i v -> d.{i} <- v) a;
      FM.apply_range d ~off:lo ~len:(n - lo - hi);
      let ok = ref true in
      for i = 0 to n - 1 do
        let expect = if i >= lo && i < n - hi then FM.tanh a.(i) else a.(i) in
        if Int64.bits_of_float d.{i} <> Int64.bits_of_float expect then ok := false
      done;
      !ok)

let test_published_constants () =
  Alcotest.(check (float 0.)) "cutoff" 8.5 FM.cutoff;
  Alcotest.(check (float 0.)) "max_abs_error" 1e-7 FM.max_abs_error;
  (* The binding term of the proof: the tail clamp at the cutoff. *)
  let knee_err = 1. -. Stdlib.tanh FM.cutoff in
  Alcotest.(check bool) "tail clamp below bound" true (knee_err < FM.max_abs_error)

let () =
  Alcotest.run "pnc_fasttanh"
    [
      ( "bound",
        [
          Alcotest.test_case "uniform fuzz" `Quick test_bound_uniform;
          Alcotest.test_case "log-scale fuzz" `Quick test_bound_log;
          Alcotest.test_case "adversarial list" `Quick test_adversarial;
          Alcotest.test_case "knee scan" `Quick test_knee_scan;
          Alcotest.test_case "published constants" `Quick test_published_constants;
        ] );
      ( "structure",
        [
          Alcotest.test_case "nan and signed zeros" `Quick test_nan_and_zeros;
          Alcotest.test_case "exact tails" `Quick test_exact_tails;
          Alcotest.test_case "odd bit-exact" `Quick test_odd_bit_exact;
          Alcotest.test_case "monotone" `Quick test_monotone;
          Alcotest.test_case "apply_range parity" `Quick test_apply_range_parity;
        ] );
      ( "teeth",
        [
          Alcotest.test_case "local copy faithful" `Quick test_copy_faithful;
          Alcotest.test_case "perturbed coefficient caught" `Quick
            test_perturbed_coefficient_caught;
        ] );
    ]
