(* Multicore Monte-Carlo engine tests: the Pool work-queue itself, and
   the parallel-parity properties that pin down the determinism
   contract — a pooled evaluation at any worker count is bit-identical
   to the sequential path, because every MC draw owns a pre-split child
   RNG stream and results are accumulated in index order.

   The POOL_SIZE environment variable (default 4) selects the worker
   count for the env-driven parity group; test/dune re-runs this binary
   under POOL_SIZE=1 and POOL_SIZE=4 so both the sequential fallback
   and the multi-domain path are exercised on every `dune runtest`. *)

module T = Pnc_tensor.Tensor
module Rng = Pnc_util.Rng
module Pool = Pnc_util.Pool
module Network = Pnc_core.Network
module Model = Pnc_core.Model
module Variation = Pnc_core.Variation
module Mc_loss = Pnc_core.Mc_loss
module Train = Pnc_core.Train
module Yield = Pnc_core.Yield
module Sensitivity = Pnc_core.Sensitivity

let env_pool_size =
  match Sys.getenv_opt "POOL_SIZE" with
  | Some s -> (try int_of_string (String.trim s) with _ -> 4)
  | None -> 4

(* Pool unit tests ------------------------------------------------------- *)

let test_map_preserves_order () =
  Pool.with_pool ~size:4 (fun pool ->
      let xs = List.init 100 Fun.id in
      Alcotest.(check (list int)) "map = List.map" (List.map (fun x -> (3 * x) + 1) xs)
        (Pool.map pool (fun x -> (3 * x) + 1) xs);
      let arr = Pool.init pool ~n:257 (fun i -> i * i) in
      Alcotest.(check (array int)) "init = Array.init" (Array.init 257 (fun i -> i * i)) arr)

let test_small_pool_is_plain_map () =
  List.iter
    (fun size ->
      Pool.with_pool ~size (fun pool ->
          Alcotest.(check int) "size recorded" size (Pool.size pool);
          let xs = List.init 50 Fun.id in
          Alcotest.(check (list int))
            (Printf.sprintf "size-%d pool = List.map" size)
            (List.map succ xs) (Pool.map pool succ xs)))
    [ 0; 1 ]

exception Boom of int

let test_exception_propagates_and_pool_survives () =
  Pool.with_pool ~size:3 (fun pool ->
      (* The lowest-indexed failure is the one re-raised, deterministically. *)
      (match Pool.init pool ~n:20 (fun i -> if i mod 7 = 3 then raise (Boom i) else i) with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom i -> Alcotest.(check int) "lowest-indexed failure" 3 i);
      (* The worker that ran the raising task kept going: the pool is
         not wedged and later submissions complete. *)
      Alcotest.(check (array int)) "pool survives" (Array.init 64 Fun.id)
        (Pool.init pool ~n:64 Fun.id))

let test_shutdown_joins_and_rejects () =
  let pool = Pool.create ~size:3 () in
  let hits = Atomic.make 0 in
  Pool.run pool (List.init 30 (fun _ () -> Atomic.incr hits));
  Alcotest.(check int) "all tasks ran" 30 (Atomic.get hits);
  Pool.shutdown pool;
  Pool.shutdown pool (* idempotent *);
  (match Pool.init pool ~n:4 Fun.id with
  | _ -> Alcotest.fail "expected Invalid_argument after shutdown"
  | exception Invalid_argument _ -> ());
  (* A 0/1-size pool shuts down trivially (no domains were spawned). *)
  let seq = Pool.create ~size:1 () in
  Pool.shutdown seq

let test_stress_many_tiny_tasks () =
  Pool.with_pool ~size:4 (fun pool ->
      let arr = Pool.init pool ~n:1000 (fun i -> i lxor 0x55) in
      Alcotest.(check (array int)) "1000 tiny tasks" (Array.init 1000 (fun i -> i lxor 0x55)) arr)

let test_nested_submit_rejected () =
  Pool.with_pool ~size:2 (fun pool ->
      let results =
        Pool.init pool ~n:4 (fun i ->
            (* Submitting from inside a task must fail cleanly (a full
               pool would otherwise deadlock on itself). *)
            match Pool.init pool ~n:2 Fun.id with
            | _ -> `Accepted
            | exception Invalid_argument _ -> `Rejected i)
      in
      Array.iteri
        (fun i r -> Alcotest.(check bool) "nested rejected" true (r = `Rejected i))
        results;
      (* ... and the rejection left the pool fully operational. *)
      Alcotest.(check (array int)) "pool usable after" (Array.init 32 Fun.id)
        (Pool.init pool ~n:32 Fun.id))

(* Parallel parity properties ------------------------------------------- *)

(* Random small eval configurations — a qgen generator: each case
   draws its model, input and Monte-Carlo settings from its own indexed
   child stream (the MC seed is drawn too, so a failing case replays
   its exact estimator run from the reported QGEN_SEED). *)
let config_gen rng =
  let arch = if Rng.bool rng then Network.Adapt else Network.Ptpnc in
  let classes = 2 + Rng.int rng 2 in
  let hidden = 2 + Rng.int rng 3 in
  let batch = 3 + Rng.int rng 5 in
  let time = 8 + Rng.int rng 9 in
  let n_draws = 1 + Rng.int rng 6 in
  let level = [| 0.05; 0.1; 0.2 |].(Rng.int rng 3) in
  let antithetic = Rng.bool rng in
  let mc_seed = Rng.int rng 10_000 in
  let net = Network.create ~hidden rng arch ~inputs:1 ~classes in
  let x = T.uniform rng ~rows:batch ~cols:time ~lo:(-1.) ~hi:1. in
  let labels = Array.init batch (fun i -> i mod classes) in
  (Model.Circuit net, x, labels, n_draws, Variation.uniform level, antithetic, mc_seed)

let pp_config (model, x, _, n, _, antithetic, mc_seed) =
  let arch =
    match model with
    | Model.Circuit net -> Network.arch_name (Network.arch net)
    | Model.Reference _ -> "Reference"
  in
  Printf.sprintf "%s batch=%d time=%d draws=%d antithetic=%b mc_seed=%d" arch (T.rows x)
    (T.cols x) n antithetic mc_seed

let test_mc_parity_across_worker_counts () =
  Qgen.check ~count:8 ~name:"mc parity across worker counts" ~pp:pp_config config_gen
    (fun (model, x, labels, n, spec, antithetic, mc_seed) ->
      let seq =
        Mc_loss.expected_value ~antithetic ~rng:(Rng.create ~seed:mc_seed) ~spec ~n model ~x
          ~labels
      in
      List.for_all
        (fun size ->
          Pool.with_pool ~size (fun pool ->
              let par =
                Mc_loss.expected_value ~antithetic ~pool ~rng:(Rng.create ~seed:mc_seed) ~spec
                  ~n model ~x ~labels
              in
              seq = par))
        [ 1; 2; 4 ])

let test_mc_parity_at_env_pool_size () =
  (* The POOL_SIZE-driven run: dune executes this binary under both
     POOL_SIZE=1 and POOL_SIZE=4. *)
  Pool.with_pool ~size:env_pool_size (fun pool ->
      Qgen.check ~count:4
        ~name:(Printf.sprintf "mc parity at POOL_SIZE=%d" env_pool_size)
        ~pp:pp_config config_gen
        (fun (model, x, labels, n, spec, antithetic, mc_seed) ->
          let seq =
            Mc_loss.expected_value ~antithetic ~rng:(Rng.create ~seed:mc_seed) ~spec ~n model
              ~x ~labels
          in
          let par =
            Mc_loss.expected_value ~antithetic ~pool ~rng:(Rng.create ~seed:mc_seed) ~spec ~n
              model ~x ~labels
          in
          seq = par))

let small_dataset ~classes ~batch ~time k =
  let rng = Rng.create ~seed:(3000 + k) in
  {
    Pnc_data.Dataset.name = "synthetic";
    x = Array.init batch (fun _ -> Array.init time (fun _ -> Rng.uniform rng ~lo:(-1.) ~hi:1.));
    y = Array.init batch (fun i -> i mod classes);
    n_classes = classes;
  }

let test_sweep_worker_count_invariance () =
  let rng = Rng.create ~seed:77 in
  let net = Network.create ~hidden:3 rng Network.Adapt ~inputs:1 ~classes:2 in
  let model = Model.Circuit net in
  let d = small_dataset ~classes:2 ~batch:8 ~time:12 0 in
  let spec = Variation.uniform 0.15 in
  let acc_seq =
    Train.accuracy_under_variation ~rng:(Rng.create ~seed:5) ~spec ~draws:6 model d
  in
  let yield_seq =
    Yield.estimate ~rng:(Rng.create ~seed:6) ~spec ~threshold:0.5 ~draws:6 model d
  in
  let sens_seq = Sensitivity.analyze ~rng:(Rng.create ~seed:7) ~level:0.15 ~draws:5 net d in
  List.iter
    (fun size ->
      Pool.with_pool ~size (fun pool ->
          let acc =
            Train.accuracy_under_variation ~pool ~rng:(Rng.create ~seed:5) ~spec ~draws:6 model d
          in
          Alcotest.(check bool)
            (Printf.sprintf "accuracy_under_variation invariant at %d workers" size)
            true (acc = acc_seq);
          let yld =
            Yield.estimate ~pool ~rng:(Rng.create ~seed:6) ~spec ~threshold:0.5 ~draws:6 model d
          in
          Alcotest.(check bool)
            (Printf.sprintf "yield invariant at %d workers" size)
            true
            (yld.Yield.mean_acc = yield_seq.Yield.mean_acc
            && yld.Yield.std_acc = yield_seq.Yield.std_acc
            && yld.Yield.worst = yield_seq.Yield.worst
            && yld.Yield.best = yield_seq.Yield.best
            && yld.Yield.yield = yield_seq.Yield.yield);
          let sens =
            Sensitivity.analyze ~pool ~rng:(Rng.create ~seed:7) ~level:0.15 ~draws:5 net d
          in
          List.iter2
            (fun (a : Sensitivity.row) (b : Sensitivity.row) ->
              Alcotest.(check bool)
                (Printf.sprintf "sensitivity invariant at %d workers" size)
                true
                (a.Sensitivity.accuracy = b.Sensitivity.accuracy))
            sens_seq sens))
    [ 2; 4 ]

(* RNG stream independence ----------------------------------------------- *)

let test_split_n_reproducible_and_distinct () =
  let mk () = Rng.split_n (Rng.create ~seed:21) 8 in
  let a = mk () and b = mk () in
  Array.iteri
    (fun i ra ->
      let xs = Array.init 32 (fun _ -> Rng.int ra 1_000_000) in
      let ys = Array.init 32 (fun _ -> Rng.int b.(i) 1_000_000) in
      Alcotest.(check (array int)) (Printf.sprintf "child %d reproducible" i) xs ys)
    a;
  (* Distinct children produce distinct streams. *)
  let c = mk () in
  let streams = Array.map (fun r -> Array.init 16 (fun _ -> Rng.int r 1_000_000)) c in
  Array.iteri
    (fun i si ->
      Array.iteri
        (fun j sj -> if i < j then Alcotest.(check bool) "children differ" false (si = sj))
        streams)
    streams

let test_split_n_insensitive_to_parent_consumption () =
  (* Children are a function of the parent state at the split point:
     consuming the parent afterwards must not perturb them, and the
     number of siblings requested must not change child i. *)
  let p1 = Rng.create ~seed:33 in
  let c1 = Rng.split_n p1 6 in
  for _ = 1 to 1000 do
    ignore (Rng.int p1 1000)
  done;
  let p2 = Rng.create ~seed:33 in
  let c2 = Rng.split_n p2 12 in
  for i = 0 to 5 do
    let xs = Array.init 32 (fun _ -> Rng.int c1.(i) 1_000_000) in
    let ys = Array.init 32 (fun _ -> Rng.int c2.(i) 1_000_000) in
    Alcotest.(check (array int)) (Printf.sprintf "child %d stable" i) xs ys
  done;
  (* The split itself consumes a fixed amount of the parent stream,
     independent of n: both parents continue identically. *)
  let tail r = Array.init 16 (fun _ -> Rng.int r 1_000_000) in
  let p3 = Rng.create ~seed:34 and p4 = Rng.create ~seed:34 in
  ignore (Rng.split_n p3 1);
  ignore (Rng.split_n p4 64);
  Alcotest.(check (array int)) "parent consumption independent of n" (tail p3) (tail p4)

let chi_square_uniform xs ~bins =
  let n = Array.length xs in
  let counts = Array.make bins 0 in
  Array.iter (fun x -> counts.(x) <- counts.(x) + 1) xs;
  let expect = float_of_int n /. float_of_int bins in
  Array.fold_left (fun acc c -> acc +. (((float_of_int c -. expect) ** 2.) /. expect)) 0. counts

let test_split_children_uncorrelated () =
  (* Joint-occupancy chi-square over pairs (x from child i, y from
     child j) binned 4x4: if the streams were correlated the joint
     distribution would deviate from uniform. df = 15; 50 is far in
     the tail (p < 1e-5), so a pass is a strong sanity bound while the
     deterministic seeds keep the test stable. *)
  let children = Rng.split_n (Rng.create ~seed:55) 4 in
  let pairs = [ (0, 1); (0, 2); (1, 3); (2, 3) ] in
  List.iter
    (fun (i, j) ->
      let n = 2000 in
      let joint =
        Array.init n (fun _ ->
            let x = Rng.int children.(i) 4 and y = Rng.int children.(j) 4 in
            (4 * x) + y)
      in
      let stat = chi_square_uniform joint ~bins:16 in
      Alcotest.(check bool)
        (Printf.sprintf "children %d,%d chi2 %.1f < 50" i j stat)
        true (stat < 50.))
    pairs;
  (* Same bound for legacy sequential split children. *)
  let p = Rng.create ~seed:56 in
  let a = Rng.split p in
  let b = Rng.split p in
  let n = 2000 in
  let joint =
    Array.init n (fun _ ->
        let x = Rng.int a 4 and y = Rng.int b 4 in
        (4 * x) + y)
  in
  let stat = chi_square_uniform joint ~bins:16 in
  Alcotest.(check bool) (Printf.sprintf "split chi2 %.1f < 50" stat) true (stat < 50.)

(* Re-seeded reproducibility regression ---------------------------------- *)

let test_reseeded_run_reproduces_draw_sequence () =
  (* The sequential engine is a deterministic function of the seed:
     re-seeding reproduces the per-draw eps/mu/v0 samples and the MC
     estimate exactly — the reproducibility guarantee the no-grad fast
     path shipped with, now routed through per-draw pre-splitting. *)
  let spec = Variation.uniform 0.1 in
  let sample_sequence seed =
    let rngs = Rng.split_n (Rng.create ~seed) 5 in
    Array.map
      (fun r ->
        let d = Variation.make_draw r spec in
        ( Variation.eps_for d ~rows:2 ~cols:3,
          Variation.mu_for d ~cols:3,
          Variation.v0_for d ~cols:3 ))
      rngs
  in
  let s1 = sample_sequence 9 and s2 = sample_sequence 9 in
  Array.iteri
    (fun i (e1, m1, v1) ->
      let e2, m2, v2 = s2.(i) in
      Alcotest.(check bool)
        (Printf.sprintf "draw %d reproduced" i)
        true
        (T.equal_eps ~eps:0. e1 e2 && T.equal_eps ~eps:0. m1 m2 && T.equal_eps ~eps:0. v1 v2))
    s1;
  let model, x, labels, n, spec, _, _ = config_gen (Rng.create ~seed:1714) in
  let v1 = Mc_loss.expected_value ~rng:(Rng.create ~seed:13) ~spec ~n model ~x ~labels in
  let v2 = Mc_loss.expected_value ~rng:(Rng.create ~seed:13) ~spec ~n model ~x ~labels in
  Alcotest.(check bool) "re-seeded MC estimate identical" true (v1 = v2)

let () =
  Alcotest.run "pnc_pool"
    [
      ( "pool",
        [
          Alcotest.test_case "map preserves order" `Quick test_map_preserves_order;
          Alcotest.test_case "size 0/1 = plain map" `Quick test_small_pool_is_plain_map;
          Alcotest.test_case "exception propagates" `Quick test_exception_propagates_and_pool_survives;
          Alcotest.test_case "shutdown joins + rejects" `Quick test_shutdown_joins_and_rejects;
          Alcotest.test_case "1000 tiny tasks" `Quick test_stress_many_tiny_tasks;
          Alcotest.test_case "nested submit rejected" `Quick test_nested_submit_rejected;
        ] );
      ( "parity",
        [
          Alcotest.test_case "mc 1/2/4 workers bit-identical" `Quick
            test_mc_parity_across_worker_counts;
          Alcotest.test_case "mc POOL_SIZE parity" `Quick test_mc_parity_at_env_pool_size;
          Alcotest.test_case "sweeps worker-count-invariant" `Quick
            test_sweep_worker_count_invariance;
        ] );
      ( "rng-streams",
        [
          Alcotest.test_case "split_n reproducible" `Quick test_split_n_reproducible_and_distinct;
          Alcotest.test_case "split_n parent-consumption-insensitive" `Quick
            test_split_n_insensitive_to_parent_consumption;
          Alcotest.test_case "children uncorrelated (chi2)" `Quick test_split_children_uncorrelated;
          Alcotest.test_case "re-seeded draw sequence" `Quick
            test_reseeded_run_reproduces_draw_sequence;
        ] );
    ]
