(* Tests for optimizers and the plateau learning-rate scheduler. *)

module T = Pnc_tensor.Tensor
module Var = Pnc_autodiff.Var
module Optimizer = Pnc_optim.Optimizer
module Scheduler = Pnc_optim.Scheduler

let approx ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

(* Minimize f(x) = sum (x - target)^2 and verify convergence. *)
let quadratic_target = T.of_row [| 3.; -2.; 0.5 |]

let quadratic_loss x =
  let d = Var.sub x (Var.const quadratic_target) in
  Var.sum (Var.mul d d)

let run_opt make_opt ~lr ~steps =
  let x = Var.param (T.of_row [| 0.; 0.; 0. |]) in
  let opt = make_opt [ x ] in
  for _ = 1 to steps do
    Optimizer.zero_grads opt;
    Var.backward (quadratic_loss x);
    Optimizer.step opt ~lr
  done;
  Var.value x

let test_sgd_converges () =
  let x = run_opt (fun params -> Optimizer.sgd ~params ()) ~lr:0.1 ~steps:200 in
  Alcotest.(check bool) "reaches target" true (T.equal_eps ~eps:1e-4 quadratic_target x)

let test_sgd_momentum_converges () =
  let x = run_opt (fun params -> Optimizer.sgd ~momentum:0.9 ~params ()) ~lr:0.02 ~steps:300 in
  Alcotest.(check bool) "reaches target" true (T.equal_eps ~eps:1e-3 quadratic_target x)

let test_adam_converges () =
  let x = run_opt (fun params -> Optimizer.adam ~params ()) ~lr:0.1 ~steps:600 in
  Alcotest.(check bool) "reaches target" true (T.equal_eps ~eps:1e-3 quadratic_target x)

let test_adamw_decay_shrinks_weights () =
  (* With zero gradient, AdamW should decay weights toward zero while
     plain Adam leaves them untouched. *)
  let run ~wd =
    let x = Var.param (T.of_row [| 1.; 1. |]) in
    let opt =
      if wd then Optimizer.adamw ~weight_decay:0.1 ~params:[ x ] ()
      else Optimizer.adam ~params:[ x ] ()
    in
    for _ = 1 to 10 do
      Optimizer.zero_grads opt;
      (* No backward: gradient stays zero. *)
      Optimizer.step opt ~lr:0.1
    done;
    T.get (Var.value x) 0 0
  in
  Alcotest.(check bool) "adam keeps weights" true (approx ~eps:1e-12 1. (run ~wd:false));
  Alcotest.(check bool) "adamw decays weights" true (run ~wd:true < 1.)

let test_adamw_converges_near_target () =
  (* Small decay pulls the optimum slightly toward zero but must stay
     close to the unregularized solution. *)
  let x = run_opt (fun params -> Optimizer.adamw ~weight_decay:0.01 ~params ()) ~lr:0.05 ~steps:1500 in
  Alcotest.(check bool) "within decay-shifted tolerance" true
    (T.equal_eps ~eps:0.05 quadratic_target x)

let test_grad_norm_and_clip () =
  let x = Var.param (T.of_row [| 3.; 4. |]) in
  let opt = Optimizer.sgd ~params:[ x ] () in
  (* loss = sum x -> grad = ones. *)
  Var.backward (Var.sum x);
  Alcotest.(check bool) "norm sqrt 2" true (approx ~eps:1e-9 (sqrt 2.) (Optimizer.grad_norm opt));
  Optimizer.clip_grad_norm opt ~max_norm:0.5;
  Alcotest.(check bool) "clipped norm" true (approx ~eps:1e-9 0.5 (Optimizer.grad_norm opt));
  (* Clipping below the threshold is a no-op. *)
  Optimizer.clip_grad_norm opt ~max_norm:10.;
  Alcotest.(check bool) "no-op clip" true (approx ~eps:1e-9 0.5 (Optimizer.grad_norm opt))

let test_zero_grads () =
  let x = Var.param (T.of_row [| 1. |]) in
  let opt = Optimizer.sgd ~params:[ x ] () in
  Var.backward (Var.sum x);
  Optimizer.zero_grads opt;
  Alcotest.(check bool) "grad cleared" true (approx ~eps:0. 0. (T.get (Var.grad x) 0 0))

(* Scheduler -------------------------------------------------------------- *)

let test_plateau_halving () =
  let s = Scheduler.plateau ~patience:2 ~init_lr:0.1 () in
  Alcotest.(check bool) "initial lr" true (approx ~eps:0. 0.1 (Scheduler.lr s));
  ignore (Scheduler.observe s 1.0);
  (* no improvement for patience+1 epochs -> halve *)
  ignore (Scheduler.observe s 1.0);
  ignore (Scheduler.observe s 1.0);
  ignore (Scheduler.observe s 1.0);
  Alcotest.(check bool) "halved" true (approx ~eps:1e-12 0.05 (Scheduler.lr s))

let test_plateau_improvement_resets () =
  let s = Scheduler.plateau ~patience:2 ~init_lr:0.1 () in
  ignore (Scheduler.observe s 1.0);
  ignore (Scheduler.observe s 1.0);
  ignore (Scheduler.observe s 0.5);
  (* improvement resets patience *)
  ignore (Scheduler.observe s 0.5);
  ignore (Scheduler.observe s 0.5);
  Alcotest.(check bool) "not yet halved" true (approx ~eps:0. 0.1 (Scheduler.lr s))

let test_plateau_stop () =
  let s = Scheduler.plateau ~patience:0 ~init_lr:1e-4 ~min_lr:1e-5 () in
  ignore (Scheduler.observe s 1.0);
  let rec drive n =
    if n = 0 then `Continue
    else
      match Scheduler.observe s 1.0 with `Stop -> `Stop | `Continue -> drive (n - 1)
  in
  Alcotest.(check bool) "stops once lr < min_lr" true (drive 10 = `Stop)

let test_plateau_min_lr_floor () =
  (* Regression: the lr is clamped at min_lr and training continues
     there; `Stop comes only after a further full patience window
     without improvement at the floor. *)
  let s = Scheduler.plateau ~patience:1 ~factor:0.5 ~init_lr:4e-5 ~min_lr:1e-5 () in
  ignore (Scheduler.observe s 1.0);
  let obs () = Scheduler.observe s 1.0 in
  Alcotest.(check bool) "patience not yet exceeded" true (obs () = `Continue);
  Alcotest.(check bool) "halved to 2e-5, continue" true (obs () = `Continue);
  Alcotest.(check bool) "patience again" true (obs () = `Continue);
  Alcotest.(check bool) "clamped at floor, continue" true (obs () = `Continue);
  Alcotest.(check bool) "lr pinned at exactly min_lr" true
    (approx ~eps:0. 1e-5 (Scheduler.lr s));
  Alcotest.(check bool) "still training at min_lr" true (obs () = `Continue);
  Alcotest.(check bool) "stops after full window at floor" true (obs () = `Stop);
  (* An improvement at the floor keeps training alive. *)
  let s2 = Scheduler.plateau ~patience:0 ~factor:0.5 ~init_lr:2e-5 ~min_lr:1e-5 () in
  ignore (Scheduler.observe s2 1.0);
  Alcotest.(check bool) "drop to floor" true (Scheduler.observe s2 1.0 = `Continue);
  Alcotest.(check bool) "improvement at floor continues" true
    (Scheduler.observe s2 0.5 = `Continue);
  Alcotest.(check bool) "at floor lr" true (approx ~eps:0. 1e-5 (Scheduler.lr s2))

let test_plateau_best () =
  let s = Scheduler.plateau ~init_lr:0.1 () in
  ignore (Scheduler.observe s 2.0);
  ignore (Scheduler.observe s 0.7);
  ignore (Scheduler.observe s 1.5);
  Alcotest.(check bool) "best tracked" true (approx ~eps:0. 0.7 (Scheduler.best s))

let test_sgd_exact_step () =
  (* One plain SGD step is exactly x - lr*g. *)
  let x = Var.param (T.of_row [| 1.; -2. |]) in
  let opt = Optimizer.sgd ~params:[ x ] () in
  Var.backward (Var.sum (Var.mul x (Var.const (T.of_row [| 3.; 4. |]))));
  Optimizer.step opt ~lr:0.1;
  Alcotest.(check bool) "exact update" true
    (T.equal_eps ~eps:1e-12 (T.of_row [| 0.7; -2.4 |]) (Var.value x))

let test_params_accessor () =
  let a = Var.param (T.of_row [| 1. |]) and b = Var.param (T.of_row [| 2. |]) in
  let opt = Optimizer.adam ~params:[ a; b ] () in
  Alcotest.(check int) "two params" 2 (List.length (Optimizer.params opt))

let test_scheduler_threshold () =
  (* An improvement below the threshold must not reset patience. *)
  let s = Scheduler.plateau ~patience:1 ~threshold:0.1 ~init_lr:0.1 () in
  ignore (Scheduler.observe s 1.0);
  ignore (Scheduler.observe s 0.99);
  (* within threshold: counts as bad epoch *)
  ignore (Scheduler.observe s 0.99);
  Alcotest.(check bool) "halved despite tiny improvements" true
    (approx ~eps:1e-12 0.05 (Scheduler.lr s))

(* AdamW single step against the closed form (satellite: PR 3) ------------ *)

let test_adamw_first_step_closed_form () =
  (* After one step from zero state: m = (1-b1)g, v = (1-b2)g^2,
     mh = m/(1-b1) = g, vh = v/(1-b2) = g^2, so the update is exactly
       x1 = x0 - lr*(g/(|g| + eps) + wd*x0)
     with the weight decay decoupled (applied to x0, not the grad). *)
  let x0 = [| 1.5; -0.75; 2.0 |] and g = [| 0.3; -1.2; 0.04 |] in
  let lr = 0.1 and wd = 0.25 and eps = 1e-8 in
  let x = Var.param (T.of_row x0) in
  let opt = Optimizer.adamw ~eps ~weight_decay:wd ~params:[ x ] () in
  Var.backward (Var.sum (Var.mul x (Var.const (T.of_row g))));
  Optimizer.step opt ~lr;
  Array.iteri
    (fun j x0j ->
      let expect = x0j -. (lr *. ((g.(j) /. (Float.abs g.(j) +. eps)) +. (wd *. x0j))) in
      Alcotest.(check bool)
        (Printf.sprintf "component %d" j)
        true
        (approx ~eps:1e-12 expect (T.get (Var.value x) 0 j)))
    x0

let test_adamw_multi_step_reference () =
  (* Several steps with a fresh gradient each step, mirrored by a
     hand-rolled scalar AdamW carrying explicit bias correction. *)
  let beta1 = 0.9 and beta2 = 0.999 and eps = 1e-8 and wd = 0.1 and lr = 0.05 in
  let grads = [| 0.7; -0.3; 1.9; 0.0; -2.4 |] in
  let x = Var.param (T.of_row [| 1.0 |]) in
  let opt = Optimizer.adamw ~beta1 ~beta2 ~eps ~weight_decay:wd ~params:[ x ] () in
  let rx = ref 1.0 and m = ref 0. and v = ref 0. in
  Array.iteri
    (fun k g ->
      Optimizer.zero_grads opt;
      Var.backward (Var.scale g (Var.sum x));
      Optimizer.step opt ~lr;
      let t = float_of_int (k + 1) in
      m := (beta1 *. !m) +. ((1. -. beta1) *. g);
      v := (beta2 *. !v) +. ((1. -. beta2) *. g *. g);
      let mh = !m /. (1. -. (beta1 ** t)) and vh = !v /. (1. -. (beta2 ** t)) in
      rx := !rx -. (lr *. ((mh /. (sqrt vh +. eps)) +. (wd *. !rx)));
      Alcotest.(check bool)
        (Printf.sprintf "step %d matches reference" (k + 1))
        true
        (approx ~eps:1e-12 !rx (T.get (Var.value x) 0 0)))
    grads

let test_adam_is_adamw_with_zero_decay () =
  let run make =
    let x = Var.param (T.of_row [| 0.4; -1.1; 0.9 |]) in
    let opt = make [ x ] in
    for _ = 1 to 5 do
      Optimizer.zero_grads opt;
      Var.backward (quadratic_loss x);
      Optimizer.step opt ~lr:0.05
    done;
    Var.value x
  in
  let a = run (fun params -> Optimizer.adam ~params ()) in
  let b = run (fun params -> Optimizer.adamw ~weight_decay:0. ~params ()) in
  Alcotest.(check bool) "identical trajectories" true (T.equal_eps ~eps:0. a b)

(* Property: Adam converges on random convex quadratics. ------------------ *)

let prop_adam_quadratics =
  QCheck.Test.make ~count:20 ~name:"adam solves random diagonal quadratics"
    QCheck.(int_range 0 1_000)
    (fun seed ->
      let rng = Pnc_util.Rng.create ~seed in
      let n = 1 + Pnc_util.Rng.int rng 5 in
      let target = T.uniform rng ~rows:1 ~cols:n ~lo:(-2.) ~hi:2. in
      let scale = T.uniform rng ~rows:1 ~cols:n ~lo:0.5 ~hi:3. in
      let x = Var.param (T.zeros ~rows:1 ~cols:n) in
      let opt = Optimizer.adam ~params:[ x ] () in
      for _ = 1 to 800 do
        Optimizer.zero_grads opt;
        let d = Var.sub x (Var.const target) in
        Var.backward (Var.sum (Var.mul (Var.const scale) (Var.mul d d)));
        Optimizer.step opt ~lr:0.05
      done;
      T.equal_eps ~eps:0.02 target (Var.value x))

(* Property: plateau schedule is monotone and floored (satellite: PR 3). -- *)

let prop_scheduler_monotone =
  QCheck.Test.make ~count:200 ~name:"plateau lr is non-increasing and floored at min_lr"
    QCheck.(
      triple (int_range 0 1_000) (int_range 0 4) (float_range 0.1 0.9))
    (fun (seed, patience, factor) ->
      let rng = Pnc_util.Rng.create ~seed in
      let min_lr = 1e-5 in
      let init_lr = min_lr *. (1. +. (100. *. Pnc_util.Rng.float rng 1.)) in
      let s = Scheduler.plateau ~factor ~patience ~min_lr ~init_lr () in
      let n = 5 + Pnc_util.Rng.int rng 60 in
      let prev = ref (Scheduler.lr s) in
      let stopped = ref false in
      let ok = ref (!prev >= min_lr) in
      for _ = 1 to n do
        if not !stopped then begin
          (* Mostly-flat loss stream with occasional improvements. *)
          let loss =
            if Pnc_util.Rng.float rng 1. < 0.2 then -.Pnc_util.Rng.float rng 10.
            else 1.0
          in
          let lr_before = Scheduler.lr s in
          let verdict = Scheduler.observe s loss in
          let lr = Scheduler.lr s in
          if lr > !prev +. 1e-18 then ok := false; (* never increases *)
          if lr < min_lr -. 1e-18 then ok := false; (* never below the floor *)
          (* `Stop is only legal once the lr has already hit the floor. *)
          (match verdict with
          | `Stop ->
              stopped := true;
              if lr_before > min_lr then ok := false
          | `Continue -> ());
          prev := lr
        end
      done;
      !ok)

let () =
  Alcotest.run "pnc_optim"
    [
      ( "optimizers",
        [
          Alcotest.test_case "sgd converges" `Quick test_sgd_converges;
          Alcotest.test_case "sgd+momentum converges" `Quick test_sgd_momentum_converges;
          Alcotest.test_case "adam converges" `Quick test_adam_converges;
          Alcotest.test_case "adamw decays weights" `Quick test_adamw_decay_shrinks_weights;
          Alcotest.test_case "adamw converges near target" `Quick test_adamw_converges_near_target;
          Alcotest.test_case "grad norm / clip" `Quick test_grad_norm_and_clip;
          Alcotest.test_case "zero_grads" `Quick test_zero_grads;
          Alcotest.test_case "sgd exact step" `Quick test_sgd_exact_step;
          Alcotest.test_case "params accessor" `Quick test_params_accessor;
          Alcotest.test_case "adamw first step closed form" `Quick
            test_adamw_first_step_closed_form;
          Alcotest.test_case "adamw multi-step reference" `Quick test_adamw_multi_step_reference;
          Alcotest.test_case "adam = adamw at wd 0" `Quick test_adam_is_adamw_with_zero_decay;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "halving after patience" `Quick test_plateau_halving;
          Alcotest.test_case "improvement resets patience" `Quick test_plateau_improvement_resets;
          Alcotest.test_case "stop below min_lr" `Quick test_plateau_stop;
          Alcotest.test_case "min_lr floor regression" `Quick test_plateau_min_lr_floor;
          Alcotest.test_case "best tracked" `Quick test_plateau_best;
          Alcotest.test_case "threshold semantics" `Quick test_scheduler_threshold;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_adam_quadratics;
          QCheck_alcotest.to_alcotest prop_scheduler_monotone;
        ] );
    ]
