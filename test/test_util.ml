(* Unit and property tests for the pnc_util substrate. *)

module Rng = Pnc_util.Rng
module Vec = Pnc_util.Vec
module Stats = Pnc_util.Stats
module Table = Pnc_util.Table

let approx ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

let check_f ?(eps = 1e-9) name expected got =
  Alcotest.(check bool) (Printf.sprintf "%s (exp %.6g, got %.6g)" name expected got) true
    (approx ~eps expected got)

(* Rng ------------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  let xs = Array.init 32 (fun _ -> Rng.int a 1_000_000) in
  let ys = Array.init 32 (fun _ -> Rng.int b 1_000_000) in
  Alcotest.(check bool) "different seeds differ" true (xs <> ys)

let test_rng_split_independent () =
  let parent = Rng.create ~seed:7 in
  let child = Rng.split parent in
  let c1 = Array.init 16 (fun _ -> Rng.int child 1000) in
  (* Re-derive: same parent seed, same split point -> same child stream. *)
  let parent' = Rng.create ~seed:7 in
  let child' = Rng.split parent' in
  let c2 = Array.init 16 (fun _ -> Rng.int child' 1000) in
  Alcotest.(check (array int)) "split reproducible" c1 c2

let test_rng_split_n_indexed () =
  (* Indexed splitting: child [i] depends only on the parent state at
     the split point and on [i] — not on how many siblings were
     requested, and not on anything drawn from the parent afterwards. *)
  let stream r = Array.init 16 (fun _ -> Rng.int r 1_000_000) in
  let p1 = Rng.create ~seed:7 and p2 = Rng.create ~seed:7 in
  let small = Rng.split_n p1 2 and large = Rng.split_n p2 9 in
  for _ = 1 to 100 do
    ignore (Rng.int p2 1000)
  done;
  for i = 0 to 1 do
    Alcotest.(check (array int))
      (Printf.sprintf "child %d independent of n and of parent use" i)
      (stream small.(i)) (stream large.(i))
  done;
  (* The parent is consumed by a fixed amount regardless of n, so code
     after a split stays reproducible when the draw count changes. *)
  let p3 = Rng.create ~seed:8 and p4 = Rng.create ~seed:8 in
  ignore (Rng.split_n p3 1);
  ignore (Rng.split_n p4 32);
  let tail3 = stream p3 in
  Alcotest.(check (array int)) "parent tail independent of n" tail3 (stream p4);
  (* Empty split is legal and still advances the parent identically. *)
  let p5 = Rng.create ~seed:8 in
  Alcotest.(check int) "n = 0 gives no children" 0 (Array.length (Rng.split_n p5 0));
  Alcotest.(check (array int)) "n = 0 consumes like n > 0" tail3 (stream p5)

let test_gaussian_moments () =
  let rng = Rng.create ~seed:3 in
  let n = 20_000 in
  let xs = Array.init n (fun _ -> Rng.gaussian ~mu:2. ~sigma:0.5 rng) in
  let m = Stats.mean xs and s = Stats.std xs in
  Alcotest.(check bool) "mean near 2" true (Float.abs (m -. 2.) < 0.02);
  Alcotest.(check bool) "std near 0.5" true (Float.abs (s -. 0.5) < 0.02)

let test_uniform_bounds () =
  let rng = Rng.create ~seed:5 in
  for _ = 1 to 1000 do
    let x = Rng.uniform rng ~lo:(-3.) ~hi:(-1.) in
    Alcotest.(check bool) "in range" true (x >= -3. && x < -1.)
  done

let test_permutation () =
  let rng = Rng.create ~seed:11 in
  let p = Rng.permutation rng 50 in
  let sorted = Array.copy p in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

let test_sample_indices () =
  let rng = Rng.create ~seed:13 in
  let s = Rng.sample_indices rng ~n:20 ~k:5 in
  Alcotest.(check int) "k elements" 5 (Array.length s);
  let module S = Set.Make (Int) in
  Alcotest.(check int) "distinct" 5 (S.cardinal (S.of_list (Array.to_list s)));
  Array.iter (fun i -> Alcotest.(check bool) "bounds" true (i >= 0 && i < 20)) s

(* Vec ------------------------------------------------------------------ *)

let test_linspace () =
  let a = Vec.linspace 0. 1. 5 in
  Alcotest.(check int) "length" 5 (Array.length a);
  check_f "first" 0. a.(0);
  check_f "last" 1. a.(4);
  check_f "mid" 0.5 a.(2)

let test_dot_norm () =
  check_f "dot" 32. (Vec.dot [| 1.; 2.; 3. |] [| 4.; 5.; 6. |]);
  check_f "norm" 5. (Vec.norm2 [| 3.; 4. |])

let test_normalize_range () =
  let a = Vec.normalize_range [| 2.; 4.; 6. |] in
  check_f "lo" (-1.) a.(0);
  check_f "mid" 0. a.(1);
  check_f "hi" 1. a.(2);
  let c = Vec.normalize_range [| 5.; 5.; 5. |] in
  Array.iter (fun x -> check_f "constant maps to midpoint" 0. x) c

let test_interp1 () =
  let xs = [| 0.; 1.; 2. |] and ys = [| 0.; 10.; 0. |] in
  check_f "interior" 5. (Vec.interp1 ~xs ~ys 0.5);
  check_f "node" 10. (Vec.interp1 ~xs ~ys 1.);
  check_f "clamp low" 0. (Vec.interp1 ~xs ~ys (-1.));
  check_f "clamp high" 0. (Vec.interp1 ~xs ~ys 5.)

let test_resample_identity () =
  let a = [| 1.; 3.; 2.; 5. |] in
  Alcotest.(check bool) "same length is copy" true (Vec.equal_eps ~eps:0. (Vec.resample a 4) a)

let test_resample_endpoints () =
  let a = [| 1.; 3.; 2.; 5.; 4. |] in
  let b = Vec.resample a 11 in
  check_f "start preserved" a.(0) b.(0);
  check_f "end preserved" a.(4) b.(10)

let test_cumsum () =
  let c = Vec.cumsum [| 1.; 2.; 3. |] in
  Alcotest.(check bool) "cumsum" true (Vec.equal_eps ~eps:1e-12 [| 1.; 3.; 6. |] c)

let test_clip () =
  let c = Vec.clip ~lo:0. ~hi:1. [| -2.; 0.5; 3. |] in
  Alcotest.(check bool) "clip" true (Vec.equal_eps ~eps:0. [| 0.; 0.5; 1. |] c)

(* Stats ---------------------------------------------------------------- *)

let test_stats_basic () =
  let a = [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |] in
  check_f "mean" 5. (Stats.mean a);
  check_f ~eps:1e-6 "std" (sqrt (32. /. 7.)) (Stats.std a);
  check_f "median" 4.5 (Stats.median a)

let test_percentile () =
  let a = [| 1.; 2.; 3.; 4.; 5. |] in
  check_f "p0" 1. (Stats.percentile a 0.);
  check_f "p50" 3. (Stats.percentile a 50.);
  check_f "p100" 5. (Stats.percentile a 100.);
  check_f "p25" 2. (Stats.percentile a 25.)

let test_accuracy_confusion () =
  let pred = [| 0; 1; 1; 2 |] and truth = [| 0; 1; 2; 2 |] in
  check_f "accuracy" 0.75 (Stats.accuracy ~pred ~truth);
  let m = Stats.confusion ~n_classes:3 ~pred ~truth in
  Alcotest.(check int) "diag 0" 1 m.(0).(0);
  Alcotest.(check int) "off diag" 1 m.(2).(1);
  Alcotest.(check int) "diag 2" 1 m.(2).(2)

(* Table ---------------------------------------------------------------- *)

let test_table_render () =
  let t = Table.create ~header:[ "a"; "bb" ] in
  Table.add_row t [ "1"; "2" ];
  Table.add_rule t;
  Table.add_row t [ "333"; "4" ];
  let s = Table.render t in
  Alcotest.(check bool) "has header" true (String.length s > 0);
  let lines = String.split_on_char '\n' s in
  Alcotest.(check int) "line count" 6 (List.length lines)
(* header, rule, row, rule, row, trailing "" *)

let test_fmt () =
  Alcotest.(check string) "fmt_f" "1.500" (Table.fmt_f 1.5);
  Alcotest.(check string) "fmt_mean_std" "0.726 ± 0.014" (Table.fmt_mean_std (0.726, 0.014))

(* Timer ------------------------------------------------------------------ *)

let test_timer_fmt () =
  let module Timer = Pnc_util.Timer in
  Alcotest.(check string) "ns" "5.0 ns" (Timer.fmt_seconds 5e-9);
  Alcotest.(check string) "µs" "12.0 µs" (Timer.fmt_seconds 1.2e-5);
  Alcotest.(check string) "ms" "3.400 ms" (Timer.fmt_seconds 3.4e-3);
  Alcotest.(check string) "s" "2.500 s" (Timer.fmt_seconds 2.5)

let test_timer_time () =
  let module Timer = Pnc_util.Timer in
  let r, dt = Timer.time (fun () -> 41 + 1) in
  Alcotest.(check int) "result returned" 42 r;
  Alcotest.(check bool) "time non-negative" true (dt >= 0.);
  let mean = Timer.time_mean ~repeats:3 (fun () -> ()) in
  Alcotest.(check bool) "mean non-negative" true (mean >= 0.)

let test_rng_copy_forks_stream () =
  let a = Rng.create ~seed:21 in
  ignore (Rng.int a 100);
  let b = Rng.copy a in
  let xa = Array.init 8 (fun _ -> Rng.int a 1000) in
  let xb = Array.init 8 (fun _ -> Rng.int b 1000) in
  Alcotest.(check (array int)) "copies replay the same stream" xa xb

let test_arange () =
  Alcotest.(check bool) "arange" true
    (Vec.equal_eps ~eps:0. [| 0.; 1.; 2.; 3. |] (Vec.arange 4))

let test_summarize () =
  let s = Stats.summarize "acc" [| 0.5; 0.7 |] in
  Alcotest.(check bool) "mentions n" true (String.length s > 0 && s.[0] = 'a')

(* Property tests --------------------------------------------------------- *)

let prop_resample_bounds =
  QCheck.Test.make ~count:200 ~name:"resample stays within input range"
    QCheck.(pair (list_of_size Gen.(int_range 2 50) (float_range (-10.) 10.)) (int_range 2 100))
    (fun (l, n) ->
      let a = Array.of_list l in
      let b = Pnc_util.Vec.resample a n in
      let lo = Vec.min a -. 1e-9 and hi = Vec.max a +. 1e-9 in
      Array.for_all (fun x -> x >= lo && x <= hi) b)

let prop_normalize_range =
  QCheck.Test.make ~count:200 ~name:"normalize_range lands in [-1,1]"
    QCheck.(list_of_size Gen.(int_range 1 60) (float_range (-100.) 100.))
    (fun l ->
      let a = Vec.normalize_range (Array.of_list l) in
      Array.for_all (fun x -> x >= -1. -. 1e-9 && x <= 1. +. 1e-9) a)

let prop_percentile_monotone =
  QCheck.Test.make ~count:200 ~name:"percentile is monotone in p"
    QCheck.(pair (list_of_size Gen.(int_range 1 40) (float_range (-50.) 50.)) (pair (float_range 0. 100.) (float_range 0. 100.)))
    (fun (l, (p, q)) ->
      let a = Array.of_list l in
      let p, q = if p <= q then (p, q) else (q, p) in
      Stats.percentile a p <= Stats.percentile a q +. 1e-9)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest [ prop_resample_bounds; prop_normalize_range; prop_percentile_monotone ] in
  Alcotest.run "pnc_util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic per seed" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "split reproducible" `Quick test_rng_split_independent;
          Alcotest.test_case "split_n indexed" `Quick test_rng_split_n_indexed;
          Alcotest.test_case "gaussian moments" `Quick test_gaussian_moments;
          Alcotest.test_case "uniform bounds" `Quick test_uniform_bounds;
          Alcotest.test_case "permutation" `Quick test_permutation;
          Alcotest.test_case "sample_indices" `Quick test_sample_indices;
        ] );
      ( "vec",
        [
          Alcotest.test_case "linspace" `Quick test_linspace;
          Alcotest.test_case "dot/norm" `Quick test_dot_norm;
          Alcotest.test_case "normalize_range" `Quick test_normalize_range;
          Alcotest.test_case "interp1" `Quick test_interp1;
          Alcotest.test_case "resample identity" `Quick test_resample_identity;
          Alcotest.test_case "resample endpoints" `Quick test_resample_endpoints;
          Alcotest.test_case "cumsum" `Quick test_cumsum;
          Alcotest.test_case "clip" `Quick test_clip;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean/std/median" `Quick test_stats_basic;
          Alcotest.test_case "percentile" `Quick test_percentile;
          Alcotest.test_case "accuracy/confusion" `Quick test_accuracy_confusion;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "formatting" `Quick test_fmt;
        ] );
      ( "timer",
        [
          Alcotest.test_case "fmt_seconds" `Quick test_timer_fmt;
          Alcotest.test_case "time/time_mean" `Quick test_timer_time;
        ] );
      ( "misc",
        [
          Alcotest.test_case "rng copy" `Quick test_rng_copy_forks_stream;
          Alcotest.test_case "arange" `Quick test_arange;
          Alcotest.test_case "summarize" `Quick test_summarize;
        ] );
      ("properties", qc);
    ]
