(* Differential-test battery for the streaming subsystem (PR 9).

   Three claim families, all pinned at eps 0:

   - Scenario generation is a pure function of (seed, index): realize
     vs per-index regeneration, prefix invariance across stream
     lengths, and exact (seeded) event accounting for the dropout /
     burst / drift schedules.

   - The sliding-window evaluator is a deterministic re-chunking of
     the offline batched path: with adaptation off, stride = width and
     `V0 states, the streaming overall accuracy equals offline
     Train.accuracy on the same realizations bit-for-bit, results are
     invariant to POOL_SIZE and ADAPT_PNC_BATCH (the dune rules re-run
     this binary under both knobs), and an adaptation-off pass never
     mutates a single parameter byte (checkpoint-image comparison).

   - Online adaptation actually helps: on an injected label-rotation
     drift the frozen model craters and the detector fires within a
     bounded latency, while the test-then-train pass beats the frozen
     baseline on post-drift and overall accuracy — on the same
     realizations and the same physical instance.

   The battery's own sensitivity is verified at the end: a locally
   reimplemented window slicer with a classic off-by-one (ragged final
   window dropped) must diverge from Window.slice — if these
   comparisons could not see that bug, the parity checks above would
   mean nothing. *)

module T = Pnc_tensor.Tensor
module Rng = Pnc_util.Rng
module Pool = Pnc_util.Pool
module Variation = Pnc_core.Variation
module Model = Pnc_core.Model
module Train = Pnc_core.Train
module Persist = Pnc_core.Persist
module Ckpt = Pnc_ckpt.Ckpt
module Dataset = Pnc_data.Dataset
module Scenario = Pnc_stream.Scenario
module Window = Pnc_stream.Window
module Online = Pnc_stream.Online
module Config = Pnc_exp.Config
module E = Pnc_exp.Experiments

let env_pool_size =
  match Sys.getenv_opt "POOL_SIZE" with
  | Some s -> ( try int_of_string (String.trim s) with _ -> 4)
  | None -> 4

let check_f = Alcotest.(check (float 0.))
let check_i = Alcotest.(check int)
let check_b = Alcotest.(check bool)

(* Scenario helpers ------------------------------------------------------- *)

let perturbed =
  {
    Scenario.burst_rate = 0.2;
    burst_sigma = 0.5;
    dropout_rate = 0.05;
    wander_amp = 0.3;
    wander_period = 8.;
  }

let scenario ?drift ?(perturb = perturbed) ?(n = 32) ?(seed = 11) () =
  Scenario.make ~dataset:"GPOVY" ~n_samples:n ~seed ?drift ~perturb ()

let events_equal (a : Scenario.event) (b : Scenario.event) =
  a.Scenario.sample = b.Scenario.sample
  && a.Scenario.burst = b.Scenario.burst
  && a.Scenario.dropped = b.Scenario.dropped
  && a.Scenario.drifted = b.Scenario.drifted

(* Generation is a pure function of (seed, index) ------------------------- *)

(* realize and per-index regeneration agree bit-for-bit, for random
   knob settings including drift and every perturbation. *)
let test_replay_equality () =
  Qgen.check ~count:12 ~name:"realize = sample, per index"
    ~pp:(fun (n, seed, da) -> Printf.sprintf "n=%d seed=%d drift_at=%d" n seed da)
    (fun rng ->
      let n = 4 + Rng.int rng 12 in
      let seed = Rng.int rng 10_000 in
      let da = Rng.int rng n in
      (n, seed, da))
    (fun (n, seed, da) ->
      let s =
        scenario ~n ~seed
          ~drift:{ Scenario.drift_at = da; kind = Scenario.Gradual 4; shift = 1 }
          ()
      in
      let rz = Scenario.realize s in
      let ok = ref true in
      for i = 0 to n - 1 do
        let x, y, clean, ev = Scenario.sample s i in
        if
          x <> rz.Scenario.x.(i)
          || y <> rz.Scenario.y.(i)
          || clean <> rz.Scenario.clean_y.(i)
          || not (events_equal ev rz.Scenario.events.(i))
        then ok := false
      done;
      !ok)

(* Sample [i] does not depend on the stream length: a short stream is a
   bit-exact prefix of a longer one with the same knobs. *)
let test_prefix_invariance () =
  Qgen.check ~count:12 ~name:"short stream = prefix of long stream"
    ~pp:(fun (n, extra, seed) -> Printf.sprintf "n=%d extra=%d seed=%d" n extra seed)
    (fun rng ->
      let n = 4 + Rng.int rng 10 in
      let extra = 1 + Rng.int rng 10 in
      let seed = Rng.int rng 10_000 in
      (n, extra, seed))
    (fun (n, extra, seed) ->
      let short = Scenario.realize (scenario ~n ~seed ()) in
      let long = Scenario.realize (scenario ~n:(n + extra) ~seed ()) in
      let ok = ref true in
      for i = 0 to n - 1 do
        if
          short.Scenario.x.(i) <> long.Scenario.x.(i)
          || short.Scenario.y.(i) <> long.Scenario.y.(i)
          || not (events_equal short.Scenario.events.(i) long.Scenario.events.(i))
        then ok := false
      done;
      !ok)

(* Event accounting ------------------------------------------------------- *)

(* Rate 0 produces no events; rate 1 produces the maximum: a burst in
   every sample, every time step held by dropout. *)
let test_rate_extremes () =
  let off = Scenario.realize (scenario ~perturb:Scenario.no_perturb ()) in
  Array.iter
    (fun (e : Scenario.event) ->
      check_b "no bursts at rate 0" true (e.Scenario.burst = None);
      check_b "no dropouts at rate 0" true (e.Scenario.dropped = []);
      check_b "no drift without drift" false e.Scenario.drifted)
    off.Scenario.events;
  let all =
    Scenario.realize
      (scenario ~perturb:{ perturbed with Scenario.burst_rate = 1.; dropout_rate = 1. } ())
  in
  let len = (all.Scenario.scenario).Scenario.length in
  Array.iter
    (fun (e : Scenario.event) ->
      check_b "burst in every sample at rate 1" true (e.Scenario.burst <> None);
      check_i "every step dropped at rate 1" len (List.length e.Scenario.dropped))
    all.Scenario.events

(* Moderate rates: the realized schedule is deterministic for the seed
   (counted exactly against an independent per-index regeneration) and
   the empirical frequencies honor the configured rates. *)
let test_rates_honored () =
  let n = 64 in
  let s = scenario ~n ~perturb:{ perturbed with Scenario.dropout_rate = 0.2 } () in
  let rz = Scenario.realize s in
  let len = s.Scenario.length in
  let drops rz =
    Array.fold_left (fun a e -> a + List.length e.Scenario.dropped) 0 rz.Scenario.events
  in
  let bursts rz =
    Array.fold_left (fun a e -> a + if e.Scenario.burst = None then 0 else 1) 0
      rz.Scenario.events
  in
  (* Exact seeded counts: a second realization and a per-index
     regeneration both reproduce them to the event. *)
  let rz2 = Scenario.realize s in
  check_i "dropout count is seeded" (drops rz) (drops rz2);
  check_i "burst count is seeded" (bursts rz) (bursts rz2);
  let indexed =
    Array.init n (fun i ->
        let _, _, _, ev = Scenario.sample s i in
        ev)
  in
  check_i "dropout count matches per-index schedule"
    (drops rz)
    (Array.fold_left (fun a e -> a + List.length e.Scenario.dropped) 0 indexed);
  (* Empirical frequencies: 64 x 64 dropout coins at p = 0.2 and 64
     burst coins at p = 0.2 land well inside these loose bands. *)
  let drop_rate = float_of_int (drops rz) /. float_of_int (n * len) in
  let burst_rate = float_of_int (bursts rz) /. float_of_int n in
  check_b "dropout rate near 0.2" true (drop_rate > 0.12 && drop_rate < 0.28);
  check_b "burst rate near 0.2" true (burst_rate > 0.05 && burst_rate < 0.40);
  (* Structural consistency of the recorded schedules. *)
  Array.iter
    (fun (e : Scenario.event) ->
      (match e.Scenario.burst with
      | Some (start, blen) ->
          check_b "burst inside the series" true
            (start >= 0 && blen >= 1 && start + blen <= len)
      | None -> ());
      check_b "dropout steps ascending and in range" true
        (List.for_all (fun t -> t >= 0 && t < len) e.Scenario.dropped
        && List.sort_uniq compare e.Scenario.dropped = e.Scenario.dropped))
    rz.Scenario.events

(* Abrupt drift relabels exactly the tail, by exactly the shift. *)
let test_abrupt_drift_labels () =
  let da = 10 in
  let s = scenario ~n:24 ~drift:{ Scenario.drift_at = da; kind = Scenario.Abrupt; shift = 1 } () in
  let rz = Scenario.realize s in
  check_i "first drifted sample" da
    (match Scenario.first_drift rz with Some i -> i | None -> -1);
  Array.iteri
    (fun i (e : Scenario.event) ->
      check_b "drifted iff past the change point" (i >= da) e.Scenario.drifted;
      let expect =
        if i >= da then (rz.Scenario.clean_y.(i) + 1) mod rz.Scenario.n_classes
        else rz.Scenario.clean_y.(i)
      in
      check_i "label rotation" expect rz.Scenario.y.(i))
    rz.Scenario.events

(* Window slicing --------------------------------------------------------- *)

(* stride = width: exhaustive, non-overlapping, exactly reconstructs
   [0, n). *)
let test_window_partition () =
  Qgen.check ~count:60 ~name:"stride = width partitions the stream"
    ~pp:(fun (n, w) -> Printf.sprintf "n=%d width=%d" n w)
    (fun rng ->
      let n = 1 + Rng.int rng 200 in
      let w = 1 + Rng.int rng (n + 4) in
      (n, w))
    (fun (n, w) ->
      let ws = Window.slice ~n ~width:w ~stride:w in
      let covered =
        List.concat_map
          (fun win -> List.init win.Window.len (fun j -> win.Window.start + j))
          ws
      in
      covered = List.init n Fun.id
      && List.for_all (fun win -> win.Window.len = min w (n - win.Window.start)) ws)

(* stride < width: starts advance by exactly the stride, every window
   is as wide as the data allows, and every index is covered (possibly
   more than once). *)
let test_window_overlap () =
  Qgen.check ~count:60 ~name:"stride < width overlaps and covers"
    ~pp:(fun (n, w, s) -> Printf.sprintf "n=%d width=%d stride=%d" n w s)
    (fun rng ->
      let n = 2 + Rng.int rng 200 in
      let w = 2 + Rng.int rng 20 in
      let s = 1 + Rng.int rng (w - 1) in
      (n, w, s))
    (fun (n, w, s) ->
      let ws = Window.slice ~n ~width:w ~stride:s in
      let starts = List.map (fun win -> win.Window.start) ws in
      let covered = Array.make n false in
      List.iter
        (fun win ->
          for j = win.Window.start to win.Window.start + win.Window.len - 1 do
            covered.(j) <- true
          done)
        ws;
      starts = List.init (List.length ws) (fun i -> i * s)
      && Array.for_all Fun.id covered
      && List.for_all (fun win -> win.Window.len = min w (n - win.Window.start)) ws)

(* Trained model shared by the evaluator tests ---------------------------- *)

let smoke_cfg = Config.of_scale Config.Smoke

let trained =
  lazy (E.train_run smoke_cfg ~dataset:"GPOVY" ~variant:E.Full ~seed:0)

let spec = Variation.uniform smoke_cfg.Config.eval_level

(* The whole parameter state as one deterministic checkpoint image:
   byte equality here is bit equality of every trainable tensor. *)
let param_image model =
  Ckpt.encode ~kind:"params" ~meta:(Persist.model_meta model)
    ~sections:(Persist.param_sections model)

let eval_seed = 6011

let eval ?batch_size ?pool ?(protocol = Online.default_protocol) ?(with_spec = true) model rz =
  Online.eval ?batch_size ?pool
    ?spec:(if with_spec then Some spec else None)
    ~rng:(Rng.create ~seed:eval_seed) protocol model rz

(* Streaming = offline, at eps 0 ------------------------------------------ *)

(* With adaptation off, stride = width and `V0 states, windowed
   streaming is a re-chunking of the offline batched path: overall
   accuracy equals Train.accuracy on the same realizations, clean and
   under variation (one replayed physical instance, built offline from
   a copy of the evaluator's own instance stream, as online.mli
   documents). *)
let test_offline_parity () =
  let r = Lazy.force trained in
  let rz = Scenario.realize (scenario ()) in
  let ds = Scenario.to_dataset rz in
  (* width 12 over 32 samples: the ragged final window (8 samples) is
     part of the parity claim — a slicer that drops or shortens the
     tail shifts the overall accuracy and fails the eps-0 check. *)
  let protocol = { Online.default_protocol with Online.width = 12; stride = 12 } in
  let offline_draw () =
    (* Child 0 of the evaluator's root rng carries the physical
       instance; replaying a copy of it is the documented offline
       comparator. *)
    let top = Rng.split_n (Rng.create ~seed:eval_seed) 2 in
    Variation.make_draw (Rng.copy top.(0)) spec
  in
  let streamed = eval ~protocol r.E.model rz in
  check_f "streamed = offline accuracy under variation"
    (Train.accuracy ~draw:(offline_draw ()) r.E.model ds)
    streamed.Online.overall_acc;
  let clean = eval ~protocol ~with_spec:false r.E.model rz in
  check_f "streamed = offline accuracy, clean" (Train.accuracy r.E.model ds)
    clean.Online.overall_acc;
  (* Weighted window accuracies recompose to the overall number. *)
  let correct = Array.fold_left (fun a p -> a + p.Online.correct) 0 streamed.Online.points in
  check_f "points recompose the overall accuracy"
    (float_of_int correct /. float_of_int (Array.length rz.Scenario.x))
    streamed.Online.overall_acc

(* Results are invariant to the pool size and to batch chunking, for
   both `V0 and `Randomized window states (the dune rules re-run this
   under POOL_SIZE=1/4 crossed with ADAPT_PNC_BATCH=1/5, exercising
   the env-default resolution path end to end). *)
let test_pool_and_batch_invariance () =
  let r = Lazy.force trained in
  let rz = Scenario.realize (scenario ()) in
  List.iter
    (fun state_init ->
      let protocol = { Online.default_protocol with Online.state_init; stride = 8 } in
      let reference = eval ~protocol r.E.model rz in
      let pooled =
        Pool.with_pool ~size:env_pool_size (fun pool -> eval ~pool ~protocol r.E.model rz)
      in
      check_b "pooled points identical" true
        (pooled.Online.points = reference.Online.points);
      List.iter
        (fun batch_size ->
          let chunked = eval ~batch_size ~protocol r.E.model rz in
          check_b "chunked points identical" true
            (chunked.Online.points = reference.Online.points))
        [ 1; 3; 64 ])
    [ `V0; `Randomized 0.1 ]

(* An adaptation-off evaluation never touches a parameter: the full
   checkpoint image is byte-identical before and after, pool or not. *)
let test_frozen_never_mutates () =
  let r = Lazy.force trained in
  let rz = Scenario.realize (scenario ()) in
  let before = param_image r.E.model in
  ignore (eval r.E.model rz);
  ignore
    (Pool.with_pool ~size:env_pool_size (fun pool -> eval ~pool r.E.model rz));
  check_b "adaptation-off leaves every parameter byte" true
    (String.equal before (param_image r.E.model))

(* Drift response --------------------------------------------------------- *)

let drift_scenario =
  scenario ~n:96
    ~drift:{ Scenario.drift_at = 32; kind = Scenario.Abrupt; shift = 1 }
    ()

let drift_protocol = { Online.default_protocol with Online.width = 8; stride = 8 }

(* The frozen model craters at the change point and the detector fires
   within one window of it. *)
let test_drift_detected () =
  let r = Lazy.force trained in
  let rz = Scenario.realize drift_scenario in
  let res = eval ~protocol:drift_protocol r.E.model rz in
  check_i "drift lands in window 4" 4
    (match res.Online.first_drift_window with Some w -> w | None -> -1);
  (match (res.Online.pre_drift_acc, res.Online.post_drift_acc) with
  | Some pre, Some post -> check_b "accuracy craters after the drift" true (post < pre -. 0.2)
  | _ -> Alcotest.fail "pre/post drift accuracies missing");
  (match res.Online.detected_at with
  | Some d -> check_b "detector fires at or after the drift window" true (d >= 4)
  | None -> Alcotest.fail "drift not detected");
  match res.Online.detect_latency with
  | Some l -> check_b "detection latency bounded (<= 1 window)" true (l <= 1)
  | None -> Alcotest.fail "no detection latency"

(* Test-time adaptation beats the frozen baseline after the drift, on
   the same realizations and the same physical instance — and
   Experiments.stream_run restores the trained weights afterwards. *)
let test_adaptation_beats_frozen () =
  let r = Lazy.force trained in
  let before = param_image r.E.model in
  let protocol =
    {
      drift_protocol with
      Online.adapt = Online.All;
      adapt_lr = 0.2;
      adapt_steps = 4;
    }
  in
  let sr =
    E.stream_run smoke_cfg ~scenario:drift_scenario ~protocol ~variant:E.Full ~seed:0
  in
  let adapted = match sr.E.sr_adapted with Some a -> a | None -> Alcotest.fail "no adapted pass" in
  let frozen = sr.E.sr_frozen in
  check_b "adapted beats frozen overall" true
    (adapted.Online.overall_acc > frozen.Online.overall_acc);
  (match (adapted.Online.post_drift_acc, frozen.Online.post_drift_acc) with
  | Some a, Some f -> check_b "adapted beats frozen post-drift" true (a > f)
  | _ -> Alcotest.fail "post-drift accuracies missing");
  check_b "stream_run restores the trained weights" true
    (String.equal before (param_image r.E.model))

(* Fingerprints ----------------------------------------------------------- *)

let test_fingerprints () =
  let p = Online.default_protocol in
  check_b "adapt knob enters the protocol fingerprint" false
    (String.equal (Online.fingerprint p)
       (Online.fingerprint { p with Online.adapt = Online.All }));
  let s1 = scenario () and s2 = scenario ~seed:12 () in
  check_b "seed enters the scenario fingerprint" false
    (String.equal (Scenario.fingerprint s1) (Scenario.fingerprint s2));
  check_b "scenario and protocol both enter the stream fingerprint" true
    (let fp = E.stream_fingerprint smoke_cfg ~scenario:s1 ~protocol:p in
     fp <> E.stream_fingerprint smoke_cfg ~scenario:s2 ~protocol:p
     && fp
        <> E.stream_fingerprint smoke_cfg ~scenario:s1
             ~protocol:{ p with Online.width = 8 })

(* Battery sensitivity ---------------------------------------------------- *)

(* A window slicer with the classic off-by-one — the ragged final
   window silently dropped — must diverge from Window.slice whenever
   the width does not divide the stream; an accuracy sum over its
   windows would skip the tail samples. If this comparison passed, the
   partition/coverage properties above would be meaningless. *)
let test_battery_catches_dropped_tail () =
  let buggy_slice ~n ~width ~stride =
    let rec go i start acc =
      (* BUG under test: stops as soon as a full window no longer fits,
         dropping the ragged tail. *)
      if start + width > n then List.rev acc
      else go (i + 1) (start + stride) ({ Window.index = i; start; len = width } :: acc)
    in
    go 0 0 []
  in
  Qgen.check ~count:40 ~name:"injected dropped-tail slicer diverges"
    ~pp:(fun (n, w) -> Printf.sprintf "n=%d width=%d" n w)
    (fun rng ->
      let w = 2 + Rng.int rng 10 in
      (* Force a ragged tail: n = k*w + r with 0 < r < w. *)
      let k = 1 + Rng.int rng 10 in
      let r = 1 + Rng.int rng (w - 1) in
      ((k * w) + r, w))
    (fun (n, w) ->
      let good = Window.slice ~n ~width:w ~stride:w in
      let bad = buggy_slice ~n ~width:w ~stride:w in
      let count ws = List.fold_left (fun a win -> a + win.Window.len) 0 ws in
      good <> bad && count bad < count good)

let () =
  Alcotest.run "pnc_stream"
    [
      ( "scenario",
        [
          Alcotest.test_case "realize = per-index sample" `Quick test_replay_equality;
          Alcotest.test_case "prefix invariance" `Quick test_prefix_invariance;
          Alcotest.test_case "rate extremes" `Quick test_rate_extremes;
          Alcotest.test_case "rates honored, counted exactly" `Quick test_rates_honored;
          Alcotest.test_case "abrupt drift labels" `Quick test_abrupt_drift_labels;
        ] );
      ( "windows",
        [
          Alcotest.test_case "stride = width partitions" `Quick test_window_partition;
          Alcotest.test_case "stride < width overlaps" `Quick test_window_overlap;
        ] );
      ( "evaluator",
        [
          Alcotest.test_case "streaming = offline, eps 0" `Slow test_offline_parity;
          Alcotest.test_case "pool and batch invariance" `Slow
            test_pool_and_batch_invariance;
          Alcotest.test_case "frozen pass never mutates params" `Slow
            test_frozen_never_mutates;
        ] );
      ( "adaptation",
        [
          Alcotest.test_case "drift detected with bounded latency" `Slow test_drift_detected;
          Alcotest.test_case "adaptation beats frozen after drift" `Slow
            test_adaptation_beats_frozen;
          Alcotest.test_case "fingerprints" `Quick test_fingerprints;
        ] );
      ( "sensitivity",
        [
          Alcotest.test_case "injected dropped-tail slicer diverges" `Quick
            test_battery_catches_dropped_tail;
        ] );
    ]
