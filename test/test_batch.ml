(* Differential-oracle battery for the batched no-grad inference
   engine: every [*_batch_t] twin must be bit-identical (eps 0) to its
   unblocked oracle for every block size — 1, primes, a ragged final
   block, the whole split, past the split — because the variation draw
   is realized once per forward and every kernel is row-independent.
   The dune rules re-run this binary under POOL_SIZE=1/4 crossed with
   ADAPT_PNC_BATCH settings, so the parity claims hold under the
   multicore pool and the env knob alike.

   The battery's own sensitivity is verified at the end: a locally
   reimplemented tiled matmul with a classic off-by-one (the ragged
   final tile dropped) must diverge from the library kernel at eps 0 —
   if an eps-0 comparison could not see that bug, none of the parity
   checks above would mean anything. *)

module T = Pnc_tensor.Tensor
module Rng = Pnc_util.Rng
module Pool = Pnc_util.Pool
module Batch = Pnc_core.Batch
module Variation = Pnc_core.Variation
module Crossbar = Pnc_core.Crossbar
module Filter_layer = Pnc_core.Filter_layer
module Ptanh = Pnc_core.Ptanh
module Network = Pnc_core.Network
module Elman = Pnc_core.Elman
module Model = Pnc_core.Model
module Train = Pnc_core.Train
module Mc_loss = Pnc_core.Mc_loss

let env_pool_size =
  match Sys.getenv_opt "POOL_SIZE" with
  | Some s -> ( try int_of_string (String.trim s) with _ -> 4)
  | None -> 4

let eq0 = T.equal_eps ~eps:0.
let draw_of ~seed ~level = Variation.make_draw (Rng.create ~seed) (Variation.uniform level)

(* Block sizes to exercise for a batch of [rows]: 1, small primes (a
   ragged final block whenever they don't divide [rows]), an
   almost-whole block, the whole batch, and past the end. *)
let block_sizes rows =
  List.sort_uniq compare
    (List.filter (fun b -> b >= 1) [ 1; 2; 3; 5; 7; rows - 1; rows; rows + 3 ])

(* Layer twins ----------------------------------------------------------- *)

let crossbar_case rng =
  let inputs = 1 + Rng.int rng 5 in
  let outputs = 1 + Rng.int rng 5 in
  let rows = 1 + Rng.int rng 40 in
  let seed = Rng.int rng 10_000 in
  let cb = Crossbar.create rng ~inputs ~outputs in
  let x = T.uniform rng ~rows ~cols:inputs ~lo:(-1.) ~hi:1. in
  (cb, x, outputs, seed)

let test_crossbar_twin () =
  Qgen.check ~count:30 ~name:"crossbar batch twin"
    ~pp:(fun (cb, x, _, seed) ->
      Printf.sprintf "crossbar %dx%d rows=%d seed=%d" (Crossbar.inputs cb)
        (Crossbar.outputs cb) (T.rows x) seed)
    crossbar_case
    (fun (cb, x, outputs, seed) ->
      let real = Crossbar.realize_t ~draw:(draw_of ~seed ~level:0.1) cb in
      let oracle = T.zeros ~rows:(T.rows x) ~cols:outputs in
      Crossbar.apply_t_into ~dst:oracle real x;
      List.for_all
        (fun block -> eq0 oracle (Crossbar.apply_batch_t ~block real x))
        (block_sizes (T.rows x)))

let ptanh_case rng =
  let features = 1 + Rng.int rng 6 in
  let rows = 1 + Rng.int rng 40 in
  let seed = Rng.int rng 10_000 in
  let pt = Ptanh.create rng ~features in
  let x = T.uniform rng ~rows ~cols:features ~lo:(-1.5) ~hi:1.5 in
  (pt, x, seed)

let test_ptanh_twin () =
  Qgen.check ~count:30 ~name:"ptanh batch twin"
    ~pp:(fun (_, x, seed) -> Printf.sprintf "ptanh rows=%d cols=%d seed=%d" (T.rows x) (T.cols x) seed)
    ptanh_case
    (fun (pt, x, seed) ->
      let real = Ptanh.realize_t ~draw:(draw_of ~seed ~level:0.1) pt in
      let oracle = T.zeros ~rows:(T.rows x) ~cols:(T.cols x) in
      Ptanh.apply_t_into ~dst:oracle real x;
      List.for_all (fun block -> eq0 oracle (Ptanh.apply_batch_t ~block real x)) (block_sizes (T.rows x)))

let filter_case rng =
  let features = 1 + Rng.int rng 5 in
  let rows = 1 + Rng.int rng 24 in
  let time = 2 + Rng.int rng 6 in
  let seed = Rng.int rng 10_000 in
  let order = if Rng.bool rng then Filter_layer.First else Filter_layer.Second in
  let fl = Filter_layer.create rng order ~features in
  let xs =
    Array.init time (fun _ -> T.uniform rng ~rows ~cols:features ~lo:(-1.) ~hi:1.)
  in
  (fl, xs, seed)

let test_filter_twin () =
  Qgen.check ~count:30 ~name:"filter batch twin"
    ~pp:(fun (fl, xs, seed) ->
      Printf.sprintf "filter %s f=%d rows=%d time=%d seed=%d"
        (match Filter_layer.order fl with First -> "1st" | Second -> "2nd")
        (Filter_layer.features fl) (T.rows xs.(0)) (Array.length xs) seed)
    filter_case
    (fun (fl, xs, seed) ->
      let rows = T.rows xs.(0) in
      let real = Filter_layer.realize_t ~draw:(draw_of ~seed ~level:0.1) fl in
      List.for_all
        (fun block ->
          (* Fresh state per block size: the update mutates it. *)
          let st_o = Filter_layer.init_state_t real ~batch:rows in
          let st_b = Filter_layer.init_state_t real ~batch:rows in
          Array.for_all
            (fun x ->
              let a = T.copy (Filter_layer.step_t real st_o x) in
              let b = Filter_layer.step_batch_t ~block real st_b x in
              eq0 a b)
            xs
          && Array.for_all2 eq0 st_o st_b)
        (block_sizes rows))

(* End-to-end twins ------------------------------------------------------ *)

let model_case rng =
  let classes = 2 + Rng.int rng 3 in
  let rows = 2 + Rng.int rng 22 in
  let time = 4 + Rng.int rng 9 in
  let seed = Rng.int rng 10_000 in
  let model =
    match Rng.int rng 3 with
    | 0 -> Model.Reference (Elman.create ~hidden:(2 + Rng.int rng 5) rng ~inputs:1 ~classes)
    | 1 ->
        Model.Circuit (Network.create ~hidden:(2 + Rng.int rng 4) rng Network.Ptpnc ~inputs:1 ~classes)
    | _ ->
        Model.Circuit (Network.create ~hidden:(2 + Rng.int rng 4) rng Network.Adapt ~inputs:1 ~classes)
  in
  let x = T.uniform rng ~rows ~cols:time ~lo:(-1.) ~hi:1. in
  (model, x, seed)

let pp_model_case (model, x, seed) =
  Printf.sprintf "%s rows=%d time=%d seed=%d" (Model.label model) (T.rows x) (T.cols x) seed

let test_logits_batch_twin () =
  Qgen.check ~count:30 ~name:"logits_batch_t = logits_t" ~pp:pp_model_case model_case
    (fun (model, x, seed) ->
      (* Two draws from the same seed consume identical streams: one
         for the oracle, one per batched evaluation. *)
      let oracle = Model.logits_t ~draw:(draw_of ~seed ~level:0.1) model x in
      List.for_all
        (fun bs ->
          eq0 oracle (Model.logits_batch_t ~batch_size:bs ~draw:(draw_of ~seed ~level:0.1) model x))
        (block_sizes (T.rows x)))

let test_predict_batch_twin () =
  Qgen.check ~count:20 ~name:"predict_batch = predict" ~pp:pp_model_case model_case
    (fun (model, x, seed) ->
      let oracle = Model.predict ~draw:(draw_of ~seed ~level:0.1) model x in
      List.for_all
        (fun bs ->
          Model.predict_batch ~batch_size:bs ~draw:(draw_of ~seed ~level:0.1) model x = oracle)
        (block_sizes (T.rows x)))

(* The env knob: under ADAPT_PNC_BATCH (set by the dune rules) the
   default-resolved path must still match the oracle, and explicit
   arguments must win over the environment. *)
let test_env_knob_parity () =
  Qgen.check ~count:10 ~name:"ADAPT_PNC_BATCH parity" ~pp:pp_model_case model_case
    (fun (model, x, seed) ->
      let oracle = Model.logits_t ~draw:(draw_of ~seed ~level:0.1) model x in
      eq0 oracle (Model.logits_batch_t ~draw:(draw_of ~seed ~level:0.1) model x))

let test_resolve_precedence () =
  (* Explicit argument beats the environment, which beats whole-split;
     everything is clamped to [1, n]. *)
  let env = Batch.env_default () in
  Alcotest.(check int) "explicit wins" 4 (Batch.resolve ~batch_size:4 ~n:10 ());
  Alcotest.(check int) "clamped to n" 10 (Batch.resolve ~batch_size:64 ~n:10 ());
  (* An explicit non-positive block size is a caller bug, not a request
     for the default: it must be rejected, not silently whole-split. *)
  Alcotest.check_raises "non-positive arg rejected"
    (Invalid_argument "Batch.resolve: batch_size must be positive (got -3)") (fun () ->
      ignore (Batch.resolve ~batch_size:(-3) ~n:10 ()));
  Alcotest.check_raises "zero arg rejected"
    (Invalid_argument "Batch.resolve: batch_size must be positive (got 0)") (fun () ->
      ignore (Batch.resolve ~batch_size:0 ~n:10 ()));
  (match env with
  | Some b -> Alcotest.(check int) "env wins over default" (min b 10) (Batch.resolve ~n:10 ())
  | None -> Alcotest.(check int) "default = whole split" 10 (Batch.resolve ~n:10 ()));
  Alcotest.(check int) "n floor" 1 (Batch.resolve ~n:0 ())

(* Consumers ------------------------------------------------------------- *)

let small_dataset ~classes ~batch ~time rng =
  {
    Pnc_data.Dataset.name = "synthetic";
    x = Array.init batch (fun _ -> Array.init time (fun _ -> Rng.uniform rng ~lo:(-1.) ~hi:1.));
    y = Array.init batch (fun i -> i mod classes);
    n_classes = classes;
  }

let test_accuracy_batch_invariance () =
  Qgen.check ~count:8 ~name:"accuracy invariant in batch size" ~pp:pp_model_case model_case
    (fun (model, x, seed) ->
      ignore x;
      let rng = Rng.create ~seed in
      let classes =
        match model with
        | Model.Circuit net -> Network.classes net
        | Model.Reference e -> Elman.classes e
      in
      let ds = small_dataset ~classes ~batch:(5 + Rng.int rng 15) ~time:8 rng in
      let oracle = Train.accuracy model ds in
      List.for_all (fun bs -> Train.accuracy ~batch_size:bs model ds = oracle)
        (block_sizes (Array.length ds.Pnc_data.Dataset.x)))

let test_accuracy_under_variation_pool_batch_invariance () =
  Qgen.check ~count:6 ~name:"accuracy under variation: pool x batch invariant"
    ~pp:pp_model_case model_case
    (fun (model, x, seed) ->
      ignore x;
      let rng = Rng.create ~seed in
      let classes =
        match model with
        | Model.Circuit net -> Network.classes net
        | Model.Reference e -> Elman.classes e
      in
      let ds = small_dataset ~classes ~batch:(5 + Rng.int rng 10) ~time:8 rng in
      let spec = Variation.uniform 0.1 in
      let oracle =
        Train.accuracy_under_variation ~rng:(Rng.create ~seed) ~spec ~draws:4 model ds
      in
      Pool.with_pool ~size:env_pool_size (fun pool ->
          List.for_all
            (fun bs ->
              Train.accuracy_under_variation ~batch_size:bs ~pool ~rng:(Rng.create ~seed) ~spec
                ~draws:4 model ds
              = oracle)
            [ 1; 3; Array.length ds.Pnc_data.Dataset.x ]))

let test_mc_loss_batch_invariance () =
  Qgen.check ~count:8 ~name:"expected_value invariant in batch size" ~pp:pp_model_case
    model_case
    (fun (model, x, seed) ->
      let classes =
        match model with
        | Model.Circuit net -> Network.classes net
        | Model.Reference e -> Elman.classes e
      in
      let labels = Array.init (T.rows x) (fun i -> i mod classes) in
      let spec = Variation.uniform 0.1 in
      let value ?batch_size ?pool () =
        Mc_loss.expected_value ?batch_size ?pool ~rng:(Rng.create ~seed) ~spec ~n:3 model ~x
          ~labels
      in
      let oracle = value () in
      List.for_all (fun bs -> value ~batch_size:bs () = oracle) (block_sizes (T.rows x))
      && Pool.with_pool ~size:env_pool_size (fun pool ->
             value ~pool ~batch_size:2 () = oracle))

(* Kernel oracle --------------------------------------------------------- *)

(* The parity tests above compare two paths that share the blocked
   matmul, so a tiling bug inside the kernel itself would cancel out of
   them. This check pins the kernel to an independent naive triple loop
   at shapes past the 32x32 block size with ragged row- and k-tails.
   Bit-equality is exact because the blocked kernel accumulates k in
   ascending order, the same order as the naive loop. *)
let naive_matmul a b =
  let m = T.rows a and kk = T.cols a and n = T.cols b in
  T.init ~rows:m ~cols:n (fun r c ->
      let acc = ref 0. in
      for k = 0 to kk - 1 do
        acc := !acc +. (T.get a r k *. T.get b k c)
      done;
      !acc)

let test_blocked_matmul_vs_naive () =
  Qgen.check ~count:25 ~name:"blocked matmul = naive oracle"
    ~pp:(fun (m, k, n, seed) -> Printf.sprintf "m=%d k=%d n=%d seed=%d" m k n seed)
    (fun rng ->
      (* Straddle the 32-wide blocks: full tiles, ragged tails, and the
         degenerate kk=1 fast path all come up. *)
      let m = 1 + Rng.int rng 70 in
      let k = 1 + Rng.int rng 70 in
      let n = 1 + Rng.int rng 10 in
      (m, k, n, Rng.int rng 10_000))
    (fun (m, k, n, seed) ->
      let rng = Rng.create ~seed in
      let a = T.uniform rng ~rows:m ~cols:k ~lo:(-1.) ~hi:1. in
      let b = T.uniform rng ~rows:k ~cols:n ~lo:(-1.) ~hi:1. in
      eq0 (T.matmul a b) (naive_matmul a b))

(* Battery sensitivity --------------------------------------------------- *)

(* A tiled matmul with the canonical blocking bug: the loop walks only
   FULL k-tiles, silently dropping the ragged final tile. The tile size
   is deliberately small so ordinary test shapes exercise the bug. *)
let buggy_tile = 4

let buggy_tiled_matmul a b =
  let m = T.rows a and kk = T.cols a and n = T.cols b in
  let out = T.zeros ~rows:m ~cols:n in
  let k0 = ref 0 in
  while !k0 + buggy_tile <= kk do
    (* off-by-one: `<=` should be a ragged-tail `<` + clamp *)
    for r = 0 to m - 1 do
      for k = !k0 to !k0 + buggy_tile - 1 do
        let av = T.get a r k in
        for c = 0 to n - 1 do
          T.set out r c (T.get out r c +. (av *. T.get b k c))
        done
      done
    done;
    k0 := !k0 + buggy_tile
  done;
  out

let test_battery_catches_tiling_bug () =
  Qgen.check ~count:20 ~name:"eps-0 diff catches dropped ragged tile"
    ~pp:(fun (m, k, n, seed) -> Printf.sprintf "m=%d k=%d n=%d seed=%d" m k n seed)
    (fun rng ->
      let m = 1 + Rng.int rng 8 in
      (* inner dimension NOT a multiple of the tile: a ragged tail exists *)
      let k = (buggy_tile * (1 + Rng.int rng 3)) + 1 + Rng.int rng (buggy_tile - 1) in
      let n = 1 + Rng.int rng 8 in
      (m, k, n, Rng.int rng 10_000))
    (fun (m, k, n, seed) ->
      let rng = Rng.create ~seed in
      let a = T.uniform rng ~rows:m ~cols:k ~lo:0.5 ~hi:1.5 in
      let b = T.uniform rng ~rows:k ~cols:n ~lo:0.5 ~hi:1.5 in
      (* Strictly positive entries: the dropped tail contribution cannot
         cancel, so the eps-0 comparison MUST see the divergence. *)
      not (eq0 (T.matmul a b) (buggy_tiled_matmul a b)))

let () =
  Alcotest.run "pnc_batch"
    [
      ( "layer twins",
        [
          Alcotest.test_case "crossbar" `Quick test_crossbar_twin;
          Alcotest.test_case "ptanh" `Quick test_ptanh_twin;
          Alcotest.test_case "filter" `Quick test_filter_twin;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "logits_batch_t = logits_t" `Quick test_logits_batch_twin;
          Alcotest.test_case "predict_batch = predict" `Quick test_predict_batch_twin;
          Alcotest.test_case "ADAPT_PNC_BATCH parity" `Quick test_env_knob_parity;
          Alcotest.test_case "resolve precedence" `Quick test_resolve_precedence;
        ] );
      ( "consumers",
        [
          Alcotest.test_case "Train.accuracy" `Quick test_accuracy_batch_invariance;
          Alcotest.test_case "accuracy under variation, pool x batch" `Quick
            test_accuracy_under_variation_pool_batch_invariance;
          Alcotest.test_case "Mc_loss.expected_value" `Quick test_mc_loss_batch_invariance;
        ] );
      ( "sensitivity",
        [
          Alcotest.test_case "blocked matmul = naive oracle" `Quick
            test_blocked_matmul_vs_naive;
          Alcotest.test_case "injected tiling off-by-one diverges" `Quick
            test_battery_catches_tiling_bug;
        ] );
    ]
