(* Correlated-variation battery (docs/VARIATION.md).

   Three layers of pinning:

   - unit: the Cholesky factorization (exact small cases, reconstruction,
     the PSD jitter fallback and its indefinite failure mode);
   - differential: degenerate correlation specs (corr absent, rho = 0,
     level = 0) must be *bit-identical* to the pre-correlation i.i.d.
     sampler — same RNG consumption, same float operations — all the way
     up through the Monte-Carlo estimators;
   - statistical: sampled eps fields must actually exhibit the kernel
     covariance and the N(1, (level/2)^2) marginals the model promises,
     and the whitened antithetic mirror must cancel linear structure.

   Battery sensitivity: with an intentionally transposed read of the
   whitened field in [sample_eps_corr] (w.((c * rows) + r) instead of
   w.((r * cols) + c)), the "sample covariance matches kernel" and
   "mirror pair" statistical tests below fail while everything i.i.d.
   stays green — i.e. the suite localizes covariance-indexing bugs. The
   bug was injected, observed to fail, and reverted.

   VARIATION=corr (the CI axis; declared in test/dune) re-runs the
   statistical suite at a second, high-correlation operating point. *)

module T = Pnc_tensor.Tensor
module Rng = Pnc_util.Rng
module Linalg = Pnc_util.Linalg
module Variation = Pnc_core.Variation
module Network = Pnc_core.Network
module Model = Pnc_core.Model
module Mc_loss = Pnc_core.Mc_loss
module Train = Pnc_core.Train
module Config = Pnc_exp.Config

let high_corr_axis = Sys.getenv_opt "VARIATION" = Some "corr"

(* The statistical operating point: the default mirrors the library
   default; the CI axis pushes correlation close to its admissible
   ceiling where Cholesky conditioning and clamping are most stressed. *)
let stat_rho = if high_corr_axis then 0.85 else 0.6
let stat_clen = if high_corr_axis then 3.0 else 1.5

(* Cholesky ------------------------------------------------------------- *)

let check_close ~eps msg a b =
  Alcotest.(check bool) (Printf.sprintf "%s (%.12g vs %.12g)" msg a b) true
    (Float.abs (a -. b) <= eps)

let test_cholesky_identity () =
  let n = 5 in
  let id = Array.init n (fun i -> Array.init n (fun j -> if i = j then 1. else 0.)) in
  match Linalg.cholesky id with
  | None -> Alcotest.fail "identity must factor"
  | Some l ->
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          check_close ~eps:0. (Printf.sprintf "L[%d][%d]" i j) l.(i).(j)
            (if i = j then 1. else 0.)
        done
      done

let test_cholesky_known () =
  (* [[4,2],[2,3]] = LL^T with L = [[2,0],[1,sqrt 2]]. *)
  match Linalg.cholesky [| [| 4.; 2. |]; [| 2.; 3. |] |] with
  | None -> Alcotest.fail "SPD 2x2 must factor"
  | Some l ->
      check_close ~eps:1e-15 "L00" l.(0).(0) 2.;
      check_close ~eps:1e-15 "L01" l.(0).(1) 0.;
      check_close ~eps:1e-15 "L10" l.(1).(0) 1.;
      check_close ~eps:1e-15 "L11" l.(1).(1) (sqrt 2.)

let test_cholesky_indefinite_none () =
  (* Eigenvalues 3 and -1: not PSD, the plain factorization must refuse
     rather than produce NaNs. *)
  match Linalg.cholesky [| [| 1.; 2. |]; [| 2.; 1. |] |] with
  | None -> ()
  | Some _ -> Alcotest.fail "indefinite matrix must not factor"

(* The kernel covariance of the sampler, built exactly as
   [Variation.chol_factor] builds it. *)
let kernel_sigma ~rho ~clen ~rows ~cols =
  let n = rows * cols in
  Array.init n (fun i ->
      Array.init n (fun j ->
          if i = j then 1.
          else
            let dr = float_of_int ((i / cols) - (j / cols))
            and dc = float_of_int ((i mod cols) - (j mod cols)) in
            rho *. exp (-.sqrt ((dr *. dr) +. (dc *. dc)) /. clen)))

let test_cholesky_reconstructs_kernel () =
  Qgen.check ~count:40 ~name:"LL^T = Sigma for kernel covariances"
    ~pp:(fun (rho, clen, (rows, cols)) ->
      Printf.sprintf "rho=%.3f clen=%.3f shape=%dx%d" rho clen rows cols)
    (Qgen.triple
       (Qgen.float_range 0. 0.95)
       (Qgen.float_range 0.5 4.)
       (Qgen.pair (Qgen.int_range 1 4) (Qgen.int_range 1 5)))
    (fun (rho, clen, (rows, cols)) ->
      let sigma = kernel_sigma ~rho ~clen ~rows ~cols in
      let n = rows * cols in
      match Linalg.cholesky sigma with
      | None -> false
      | Some l ->
          let ok = ref true in
          for i = 0 to n - 1 do
            for j = 0 to n - 1 do
              let s = ref 0. in
              for k = 0 to n - 1 do
                s := !s +. (l.(i).(k) *. l.(j).(k))
              done;
              if Float.abs (!s -. sigma.(i).(j)) > 1e-10 then ok := false
            done
          done;
          !ok)

let test_cholesky_psd_jitter_fallback () =
  (* The all-ones matrix is PSD but singular (rank 1): the strict
     factorization hits a zero pivot, the PSD wrapper must recover with
     a small recorded diagonal jitter. *)
  let ones = Array.make_matrix 3 3 1. in
  (match Linalg.cholesky ones with
  | Some _ -> Alcotest.fail "singular PSD must fail the strict factorization"
  | None -> ());
  let l, jitter = Linalg.cholesky_psd ones in
  Alcotest.(check bool) "jitter recorded" true (jitter > 0.);
  Alcotest.(check bool) "jitter small" true (jitter < 1e-6);
  Array.iter
    (Array.iter (fun x -> Alcotest.(check bool) "finite factor" true (Float.is_finite x)))
    l;
  (* Reconstruction within the jitter's own magnitude. *)
  for i = 0 to 2 do
    for j = 0 to 2 do
      let s = ref 0. in
      for k = 0 to 2 do
        s := !s +. (l.(i).(k) *. l.(j).(k))
      done;
      check_close ~eps:(2. *. jitter) (Printf.sprintf "Sigma[%d][%d]" i j) !s 1.
    done
  done

let test_cholesky_psd_indefinite_raises () =
  (* Jitter is bounded; a genuinely indefinite matrix must raise, not
     silently return a wrong factor. *)
  match Linalg.cholesky_psd [| [| 1.; 2. |]; [| 2.; 1. |] |] with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "indefinite matrix must raise through the PSD wrapper"

let test_mat_vec_lower () =
  Qgen.check ~count:50 ~name:"mat_vec_lower = dense lower-triangular product"
    ~pp:(fun (n, seed) -> Printf.sprintf "n=%d seed=%d" n seed)
    (Qgen.pair (Qgen.int_range 1 8) (Qgen.int_range 0 10_000))
    (fun (n, seed) ->
      let rng = Rng.create ~seed in
      let l =
        Array.init n (fun i ->
            Array.init n (fun j -> if j > i then 0. else Rng.uniform rng ~lo:(-1.) ~hi:1.))
      in
      let z = Array.init n (fun _ -> Rng.gaussian rng) in
      let got = Linalg.mat_vec_lower l z in
      let ok = ref true in
      for i = 0 to n - 1 do
        let s = ref 0. in
        for j = 0 to n - 1 do
          s := !s +. (l.(i).(j) *. z.(j))
        done;
        if Float.abs (got.(i) -. !s) > 1e-12 then ok := false
      done;
      !ok)

(* Degeneracy: corr = 0 is bit-identical to the i.i.d. path ------------- *)

let tensors_bit_equal a b =
  T.rows a = T.rows b && T.cols a = T.cols b
  &&
  let ok = ref true in
  for r = 0 to T.rows a - 1 do
    for c = 0 to T.cols a - 1 do
      (* Structural float equality: bit-identity is the contract. *)
      if not (T.get a r c = T.get b r c) then ok := false
    done
  done;
  !ok

let zero_rho spec = { spec with Variation.corr = Some { Variation.default_corr with rho = 0. } }

let test_eps0_draw_degeneracy () =
  Qgen.check ~count:60 ~name:"rho=0 draws bit-identical to i.i.d. draws"
    ~pp:(fun ((seed, dist), (rows, cols)) ->
      Printf.sprintf "seed=%d dist=%d shape=%dx%d" seed dist rows cols)
    (Qgen.pair
       (Qgen.pair (Qgen.int_range 0 100_000) (Qgen.int_range 0 2))
       (Qgen.pair (Qgen.int_range 1 4) (Qgen.int_range 1 6)))
    (fun ((seed, dist), (rows, cols)) ->
      let base =
        match dist with
        | 0 -> Variation.uniform 0.1
        | 1 -> Variation.gaussian 0.1
        | _ -> Variation.default_gmm 0.1
      in
      let d_iid = Variation.make_draw (Rng.create ~seed) base in
      let d_corr0 = Variation.make_draw (Rng.create ~seed) (zero_rho base) in
      tensors_bit_equal
        (Variation.eps_for d_iid ~rows ~cols)
        (Variation.eps_for d_corr0 ~rows ~cols)
      && tensors_bit_equal (Variation.mu_for d_iid ~cols) (Variation.mu_for d_corr0 ~cols)
      && tensors_bit_equal (Variation.v0_for d_iid ~cols) (Variation.v0_for d_corr0 ~cols))

let test_eps0_level0_degeneracy () =
  (* level = 0 with a live correlation spec: still all-ones, still no
     stream consumption difference. *)
  let spec =
    Variation.correlated ~rho:0.7 ~clen:1.0 { Variation.none with Variation.level = 0. }
  in
  Alcotest.(check bool) "corr inactive at level 0" false (Variation.corr_active spec);
  let d = Variation.make_draw (Rng.create ~seed:5) spec in
  let e = Variation.eps_for d ~rows:3 ~cols:4 in
  for r = 0 to 2 do
    for c = 0 to 3 do
      check_close ~eps:0. "eps = 1" (T.get e r c) 1.
    done
  done

let test_corr_active () =
  let base = Variation.uniform 0.1 in
  Alcotest.(check bool) "plain spec inactive" false (Variation.corr_active base);
  Alcotest.(check bool) "rho=0 inactive" false (Variation.corr_active (zero_rho base));
  Alcotest.(check bool) "default corr active" true
    (Variation.corr_active (Variation.correlated base));
  Alcotest.(check bool) "level 0 inactive" false
    (Variation.corr_active (Variation.correlated Variation.none))

let tiny_model ~seed =
  Model.Circuit (Network.create ~hidden:3 (Rng.create ~seed) Network.Adapt ~inputs:1 ~classes:2)

let tiny_xy ~seed =
  let rng = Rng.create ~seed in
  let rows = Array.init 6 (fun _ -> Array.init 10 (fun _ -> Rng.uniform rng ~lo:(-1.) ~hi:1.)) in
  let labels = Array.init 6 (fun i -> i mod 2) in
  (rows, labels)

let test_eps0_estimator_degeneracy () =
  (* The whole estimator stack: expected_value and
     accuracy_under_variation over a rho=0 spec must equal — float
     structural equality, not approximate — the plain i.i.d. runs. *)
  let model = tiny_model ~seed:21 in
  let rows, labels = tiny_xy ~seed:22 in
  let x = T.of_rows rows in
  let spec = Variation.uniform 0.1 in
  let v_iid =
    Mc_loss.expected_value ~rng:(Rng.create ~seed:23) ~spec ~n:4 model ~x ~labels
  in
  let v_corr0 =
    Mc_loss.expected_value ~rng:(Rng.create ~seed:23) ~spec:(zero_rho spec) ~n:4 model ~x
      ~labels
  in
  Alcotest.(check bool)
    (Printf.sprintf "expected_value bit-equal (%.17g vs %.17g)" v_iid v_corr0)
    true (v_iid = v_corr0);
  let d = { Pnc_data.Dataset.name = "tiny"; x = rows; y = labels; n_classes = 2 } in
  let a_iid =
    Train.accuracy_under_variation ~rng:(Rng.create ~seed:24) ~spec ~draws:3 model d
  in
  let a_corr0 =
    Train.accuracy_under_variation ~rng:(Rng.create ~seed:24) ~spec:(zero_rho spec) ~draws:3
      model d
  in
  Alcotest.(check bool)
    (Printf.sprintf "accuracy bit-equal (%.17g vs %.17g)" a_iid a_corr0)
    true (a_iid = a_corr0)

let test_fingerprint_append_only () =
  let cfg = Config.of_scale Config.Smoke in
  let fp = Config.fingerprint cfg in
  let has_sub sub s =
    let n = String.length sub and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "no corr marker by default" false (has_sub "corr(" fp);
  Alcotest.(check bool) "no ni marker by default" false (has_sub ";ni" fp);
  Alcotest.(check bool) "no anti marker by default" false (has_sub ";anti" fp);
  let with_corr = { cfg with Config.corr = Some (Config.corr_of_string "0.5,2.0") } in
  Alcotest.(check bool) "corr marker appended" true
    (has_sub "|corr(" (Config.fingerprint with_corr));
  let with_ni =
    {
      cfg with
      Config.train_va = { cfg.Config.train_va with Train.noise_injection = true; antithetic = true };
    }
  in
  let fp_ni = Config.fingerprint with_ni in
  Alcotest.(check bool) "ni marker appended" true (has_sub ";ni" fp_ni);
  Alcotest.(check bool) "anti marker appended" true (has_sub ";anti" fp_ni);
  (* Append-only: the degenerate fingerprint is a prefix-preserving
     substring relation, not a reshuffle. *)
  Alcotest.(check bool) "corr fingerprint extends the plain one" true
    (String.length (Config.fingerprint with_corr) > String.length fp
    && String.sub (Config.fingerprint with_corr) 0 (String.length fp) = fp)

let test_corr_of_string () =
  let c = Config.corr_of_string "0.6,1.5" in
  check_close ~eps:0. "rho" c.Variation.rho 0.6;
  check_close ~eps:0. "clen" c.Variation.clen 1.5;
  Alcotest.(check bool) "no drift" true (c.Variation.drift = None);
  let c = Config.corr_of_string "0.4, 2.0, 60, 1000" in
  (match c.Variation.drift with
  | Some d ->
      check_close ~eps:0. "temp" d.Variation.temp_c 60.;
      check_close ~eps:0. "age" d.Variation.age_hours 1000.
  | None -> Alcotest.fail "drift point expected");
  match Config.corr_of_string "0.5" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "1-element spec must be rejected"

(* Statistics ----------------------------------------------------------- *)

let corr_spec ~level = Variation.correlated ~rho:stat_rho ~clen:stat_clen (Variation.uniform level)

(* m draws of a [rows x cols] correlated eps field, flattened row-major
   into an [m x rows*cols] matrix. A genuinely 2-D shape matters: on a
   row vector a transposed read of the whitened field is invisible
   ((c*rows)+r = (r*cols)+c when rows = 1), so only a 2-D covariance
   check localizes indexing bugs — the injected-bug validation above
   was exactly this lesson. *)
let draw_matrix ~seed ~m ~rows ~cols ~spec =
  let rng = Rng.create ~seed in
  Array.init m (fun _ ->
      let d = Variation.make_draw rng spec in
      let e = Variation.eps_for d ~rows ~cols in
      Array.init (rows * cols) (fun j -> T.get e (j / cols) (j mod cols)))

let test_sample_covariance_matches_kernel () =
  let level = 0.2 in
  let s = level /. 2. in
  let rows = 2 and cols = 4 in
  let n = rows * cols and m = 4000 in
  let spec = corr_spec ~level in
  let data = draw_matrix ~seed:31 ~m ~rows ~cols ~spec in
  let mean = Array.init n (fun j -> Array.fold_left (fun a row -> a +. row.(j)) 0. data /. float_of_int m) in
  let cov i j =
    Array.fold_left (fun a row -> a +. ((row.(i) -. mean.(i)) *. (row.(j) -. mean.(j)))) 0. data
    /. float_of_int (m - 1)
  in
  let sigma = kernel_sigma ~rho:stat_rho ~clen:stat_clen ~rows ~cols in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      (* Compare correlations (unit-free): the clamp at 4 sigma removes
         a negligible tail, so 0.08 absolute covers sampling noise at
         m = 4000. *)
      let r = cov i j /. sqrt (cov i i *. cov j j) in
      check_close ~eps:0.08 (Printf.sprintf "corr[%d][%d]" i j) r sigma.(i).(j);
      (* And the absolute scale: diagonal variance = s^2. *)
      if i = j then check_close ~eps:(0.1 *. s *. s) "marginal variance" (cov i i) (s *. s)
    done
  done

let test_chi_square_marginals () =
  (* Pool draws of one fixed entry; under the model z = (eps-1)/s is
     standard normal (the 4-sigma clamp moves ~6e-5 of the mass). Eight
     equal-probability bins, chi^2 against df = 7: the 99.9% critical
     value is 24.3, and the run is seeded, so 30 is a stable bound that
     an indexing or scaling bug blows through immediately. *)
  let level = 0.2 in
  let s = level /. 2. in
  let m = 4000 in
  let data = draw_matrix ~seed:37 ~m ~rows:2 ~cols:4 ~spec:(corr_spec ~level) in
  (* Quantiles of N(0,1) at k/8: symmetric pairs. *)
  let q = [| -1.1503493803760083; -0.6744897501960817; -0.3186393639643751; 0. |] in
  let edges = Array.append q (Array.init 4 (fun i -> -.q.(3 - i))) in
  (* edges has 8 entries: 7 interior cut points + the duplicated 0 —
     build the 8 bins from the 7 distinct interior edges. *)
  let cuts = [| edges.(0); edges.(1); edges.(2); edges.(3); edges.(5); edges.(6); edges.(7) |] in
  let entry = 4 in
  let counts = Array.make 8 0 in
  Array.iter
    (fun row ->
      let z = (row.(entry) -. 1.) /. s in
      let b = ref 0 in
      while !b < 7 && z > cuts.(!b) do incr b done;
      counts.(!b) <- counts.(!b) + 1)
    data;
  let e = float_of_int m /. 8. in
  let chi2 = Array.fold_left (fun a o -> a +. (((float_of_int o -. e) ** 2.) /. e)) 0. counts in
  Alcotest.(check bool) (Printf.sprintf "chi2 = %.2f < 30 (df 7)" chi2) true (chi2 < 30.)

let test_antithetic_mirror_exact () =
  Qgen.check ~count:40 ~name:"correlated antithetic pair mirrors exactly"
    ~pp:(fun (seed, (rows, cols)) -> Printf.sprintf "seed=%d shape=%dx%d" seed rows cols)
    (Qgen.pair (Qgen.int_range 0 100_000) (Qgen.pair (Qgen.int_range 1 3) (Qgen.int_range 1 5)))
    (fun (seed, (rows, cols)) ->
      let spec = corr_spec ~level:0.2 in
      let d1, d2 = Variation.antithetic_pair (Rng.create ~seed) spec in
      let e1 = Variation.eps_for d1 ~rows ~cols and e2 = Variation.eps_for d2 ~rows ~cols in
      let m1 = Variation.mu_for d1 ~cols and m2 = Variation.mu_for d2 ~cols in
      let v1 = Variation.v0_for d1 ~cols and v2 = Variation.v0_for d2 ~cols in
      let ok = ref true in
      for r = 0 to rows - 1 do
        for c = 0 to cols - 1 do
          if Float.abs (T.get e1 r c +. T.get e2 r c -. 2.) > 1e-12 then ok := false
        done
      done;
      for c = 0 to cols - 1 do
        if
          Float.abs
            (T.get m1 0 c +. T.get m2 0 c
            -. (Pnc_core.Printed.mu_min +. Pnc_core.Printed.mu_max))
          > 1e-12
          || Float.abs (T.get v1 0 c +. T.get v2 0 c) > 1e-12
        then ok := false
      done;
      !ok)

let test_antithetic_variance_reduction () =
  (* Regression for the variance-reduction property that motivates the
     +NI training estimator: for a statistic with a dominant linear
     component (the field mean), two antithetic draws estimate the
     expectation with far lower variance than two independent draws at
     identical cost. *)
  let spec = corr_spec ~level:0.2 in
  let rows = 2 and cols = 6 in
  let field_mean d =
    let e = Variation.eps_for d ~rows ~cols in
    let s = ref 0. in
    for r = 0 to rows - 1 do
      for c = 0 to cols - 1 do
        s := !s +. T.get e r c
      done
    done;
    !s /. float_of_int (rows * cols)
  in
  let k = 300 in
  let plain_rng = Rng.create ~seed:41 and anti_rng = Rng.create ~seed:41 in
  let estimates mk = Array.init k (fun _ -> mk ()) in
  let plain =
    estimates (fun () ->
        let d1 = Variation.make_draw plain_rng spec in
        let m1 = field_mean d1 in
        let d2 = Variation.make_draw plain_rng spec in
        (m1 +. field_mean d2) /. 2.)
  in
  let anti =
    estimates (fun () ->
        let d1, d2 = Variation.antithetic_pair anti_rng spec in
        let m1 = field_mean d1 in
        (m1 +. field_mean d2) /. 2.)
  in
  let variance xs =
    let m = Array.fold_left ( +. ) 0. xs /. float_of_int k in
    Array.fold_left (fun a x -> a +. ((x -. m) ** 2.)) 0. xs /. float_of_int (k - 1)
  in
  let vp = variance plain and va = variance anti in
  Alcotest.(check bool)
    (Printf.sprintf "antithetic variance %.3g < 0.1 x plain %.3g" va vp)
    true
    (va < 0.1 *. vp)

(* Drift ---------------------------------------------------------------- *)

let test_drift_defaults_to_unity () =
  let d = Variation.make_draw (Rng.create ~seed:51) (corr_spec ~level:0.2) in
  check_close ~eps:0. "r_mult = 1 without drift" (Variation.drift_r_mult d) 1.;
  check_close ~eps:0. "c_mult = 1 without drift" (Variation.drift_c_mult d) 1.

let test_drift_point_sane_and_memoized () =
  let spec =
    Variation.correlated ~drift:{ Variation.temp_c = 60.; age_hours = 1000. } ~rho:0.5
      ~clen:2.0 (Variation.uniform 0.1)
  in
  let d = Variation.make_draw (Rng.create ~seed:52) spec in
  let r1 = Variation.drift_r_mult d and c1 = Variation.drift_c_mult d in
  Alcotest.(check bool) (Printf.sprintf "hot R drops (%.4f)" r1) true (r1 > 0.5 && r1 < 1.);
  Alcotest.(check bool) (Printf.sprintf "aged C drops (%.4f)" c1) true (c1 > 0.5 && c1 < 1.);
  (* Memoized characterization: the second read must be the same float. *)
  check_close ~eps:0. "r memo" (Variation.drift_r_mult d) r1;
  check_close ~eps:0. "c memo" (Variation.drift_c_mult d) c1

let test_drift_reference_point_exact_unity () =
  let spec =
    Variation.correlated ~drift:{ Variation.temp_c = 25.; age_hours = 0. } ~rho:0.5 ~clen:2.0
      (Variation.uniform 0.1)
  in
  let d = Variation.make_draw (Rng.create ~seed:53) spec in
  (* The reference operating point fits the same circuit three times, so
     the tau ratios are exactly 1.0 — bit-exact, not approximately. *)
  check_close ~eps:0. "r_mult at 25C/0h" (Variation.drift_r_mult d) 1.;
  check_close ~eps:0. "c_mult at 25C/0h" (Variation.drift_c_mult d) 1.

let () =
  Alcotest.run "pnc_variation"
    [
      ( "cholesky",
        [
          Alcotest.test_case "identity" `Quick test_cholesky_identity;
          Alcotest.test_case "known 2x2" `Quick test_cholesky_known;
          Alcotest.test_case "indefinite -> None" `Quick test_cholesky_indefinite_none;
          Alcotest.test_case "kernel reconstruction" `Quick test_cholesky_reconstructs_kernel;
          Alcotest.test_case "PSD jitter fallback" `Quick test_cholesky_psd_jitter_fallback;
          Alcotest.test_case "indefinite raises" `Quick test_cholesky_psd_indefinite_raises;
          Alcotest.test_case "mat_vec_lower" `Quick test_mat_vec_lower;
        ] );
      ( "degeneracy",
        [
          Alcotest.test_case "rho=0 draws bit-identical" `Quick test_eps0_draw_degeneracy;
          Alcotest.test_case "level=0 stays ones" `Quick test_eps0_level0_degeneracy;
          Alcotest.test_case "corr_active" `Quick test_corr_active;
          Alcotest.test_case "estimators bit-identical" `Quick test_eps0_estimator_degeneracy;
          Alcotest.test_case "fingerprints append-only" `Quick test_fingerprint_append_only;
          Alcotest.test_case "corr_of_string" `Quick test_corr_of_string;
        ] );
      ( "statistics",
        [
          Alcotest.test_case "sample covariance matches kernel" `Quick
            test_sample_covariance_matches_kernel;
          Alcotest.test_case "chi-square marginals" `Quick test_chi_square_marginals;
          Alcotest.test_case "antithetic mirror exact" `Quick test_antithetic_mirror_exact;
          Alcotest.test_case "antithetic variance reduction" `Quick
            test_antithetic_variance_reduction;
        ] );
      ( "drift",
        [
          Alcotest.test_case "unity without drift" `Quick test_drift_defaults_to_unity;
          Alcotest.test_case "drift point sane, memoized" `Quick
            test_drift_point_sane_and_memoized;
          Alcotest.test_case "reference point exactly 1" `Quick
            test_drift_reference_point_exact_unity;
        ] );
    ]
