(* Precision-tier battery: the `Exact/`Fast knob introduced with the
   Bigarray kernels.

   Contracts under test:
   - `Exact (the default) is bit-identical (eps 0) to the unbatched
     tensor path — the seed parity contract is untouched by the tier
     machinery, and library defaults NEVER read ADAPT_PNC_PRECISION
     (this suite re-runs under exact/fast env settings via test/dune);
   - `Fast logits drift from `Exact by at most a small analytic bound
     (per-element tanh error <= 1e-7, amplified through one readout
     layer), and end-to-end accuracy sits inside the seed noise floor;
   - Config.fingerprint records `Fast and ONLY `Fast — the `Exact
     fingerprint is byte-identical to the pre-tier format, so existing
     grid caches stay valid;
   - entry-point resolution: explicit argument beats the environment,
     environment beats the `Exact default. *)

module T = Pnc_tensor.Tensor
module Rng = Pnc_util.Rng
module Dataset = Pnc_data.Dataset
module Registry = Pnc_data.Registry
module Network = Pnc_core.Network
module Elman = Pnc_core.Elman
module Model = Pnc_core.Model
module Train = Pnc_core.Train
module Batch = Pnc_core.Batch
module Variation = Pnc_core.Variation
module Config = Pnc_exp.Config

let gpovy_split () =
  let raw = Registry.load ~seed:3 ~n:80 "GPOVY" in
  Dataset.preprocess (Rng.create ~seed:4) raw

let make_circuit seed =
  let rng = Rng.create ~seed in
  Model.Circuit (Network.create ~hidden:4 rng Network.Adapt ~inputs:1 ~classes:2)

(* Logit-level drift bound: each of the two layers applies one tanh per
   element with error <= 1e-7 scaled by eta2 <= 1; layer-2 inputs pass
   through a crossbar (|theta| <= 1, <= 6 inputs) and two filter stages
   before their own tanh (Lipschitz 1), and the readout averages. A
   very loose envelope on that error propagation is 1e-5. *)
let drift_bound = 1e-5

let max_logit_delta a b =
  assert (T.same_shape a b);
  let m = ref 0. in
  for r = 0 to T.rows a - 1 do
    for c = 0 to T.cols a - 1 do
      m := Float.max !m (Float.abs (T.get a r c -. T.get b r c))
    done
  done;
  !m

let test_exact_is_bit_identical () =
  (* The default and the explicit `Exact must both reproduce the
     unbatched path at eps 0 — even when ADAPT_PNC_PRECISION=fast is
     exported (the env-matrix rerun in test/dune): library defaults
     never consult the environment. *)
  let split = gpovy_split () in
  let x, _ = Train.to_xy split.Dataset.test in
  let model = make_circuit 5 in
  let draw_of seed = Variation.make_draw (Rng.create ~seed) (Variation.uniform 0.1) in
  let reference = Model.logits_t ~draw:(draw_of 11) model x in
  let default_logits = Model.logits_batch_t ~batch_size:7 ~draw:(draw_of 11) model x in
  let exact_logits =
    Model.logits_batch_t ~batch_size:7 ~precision:`Exact ~draw:(draw_of 11) model x
  in
  Alcotest.(check bool) "default = unbatched at eps 0" true
    (T.equal_eps ~eps:0. reference default_logits);
  Alcotest.(check bool) "`Exact = unbatched at eps 0" true
    (T.equal_eps ~eps:0. reference exact_logits)

let test_fast_drift_bounded_circuit () =
  let split = gpovy_split () in
  let x, _ = Train.to_xy split.Dataset.test in
  let model = make_circuit 5 in
  let draw_of seed = Variation.make_draw (Rng.create ~seed) (Variation.uniform 0.1) in
  let exact = Model.logits_batch_t ~precision:`Exact ~draw:(draw_of 11) model x in
  let fast = Model.logits_batch_t ~precision:`Fast ~draw:(draw_of 11) model x in
  let d = max_logit_delta exact fast in
  Alcotest.(check bool) (Printf.sprintf "circuit drift %.3g <= %.0e" d drift_bound) true
    (d <= drift_bound);
  Alcotest.(check bool) "tiers actually differ somewhere" true (d > 0.)

let test_fast_drift_bounded_elman () =
  let split = gpovy_split () in
  let x, _ = Train.to_xy split.Dataset.test in
  let model = Model.Reference (Elman.create (Rng.create ~seed:7) ~inputs:1 ~classes:2) in
  let exact = Model.logits_batch_t ~precision:`Exact model x in
  let fast = Model.logits_batch_t ~precision:`Fast model x in
  let d = max_logit_delta exact fast in
  Alcotest.(check bool) (Printf.sprintf "elman drift %.3g <= %.0e" d drift_bound) true
    (d <= drift_bound)

let test_end_to_end_drift () =
  (* Smoke-scale end-to-end: train once, evaluate under both tiers.
     Logits differ by <= 1e-5, so a prediction flips only for a sample
     whose top-2 logit margin is below that — accuracy must sit well
     inside the seed noise floor (we allow one flipped sample). *)
  let split = gpovy_split () in
  let rng = Rng.create ~seed:5 in
  let model = make_circuit 5 in
  let cfg =
    { Train.smoke_config with Train.max_epochs = 40; patience = 8; mc_samples = 2 }
  in
  let _ = Train.train ~rng cfg model split in
  let test = split.Dataset.test in
  let acc_exact = Train.accuracy ~precision:`Exact model test in
  let acc_fast = Train.accuracy ~precision:`Fast model test in
  let n = Array.length test.Dataset.y in
  let floor = 1. /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "fast acc %.3f within %.3f of exact %.3f" acc_fast floor acc_exact)
    true
    (Float.abs (acc_fast -. acc_exact) <= floor +. 1e-12);
  let x, _ = Train.to_xy test in
  let pred_exact = Model.predict_batch ~precision:`Exact model x in
  let pred_fast = Model.predict_batch ~precision:`Fast model x in
  let agree = ref 0 in
  Array.iteri (fun i p -> if p = pred_fast.(i) then incr agree) pred_exact;
  Alcotest.(check bool)
    (Printf.sprintf "predictions agree on %d/%d samples" !agree n)
    true
    (n - !agree <= 1)

let test_fingerprint_records_fast_only () =
  let cfg = Config.of_scale Config.Smoke in
  let fp_exact = Config.fingerprint cfg in
  let fp_fast = Config.fingerprint { cfg with Config.precision = `Fast } in
  (* Byte-compat pin: the `Exact fingerprint must not mention the tier
     at all — it is the exact pre-tier string, keeping old cached grid
     cells valid. *)
  let contains ~needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "exact fingerprint has no precision field" false
    (contains ~needle:"precision" fp_exact);
  Alcotest.(check string) "fast fingerprint appends the tier"
    (fp_exact ^ "|precision=fast") fp_fast

let test_resolution_precedence () =
  (* Explicit argument always wins. *)
  Alcotest.(check string) "explicit fast" "fast"
    (Batch.precision_name (Batch.resolve_precision ~precision:`Fast ()));
  Alcotest.(check string) "explicit exact" "exact"
    (Batch.precision_name (Batch.resolve_precision ~precision:`Exact ()));
  (* Without an argument, resolution follows the current environment —
     whatever the env-matrix rerun set it to. *)
  let expected =
    match Sys.getenv_opt "ADAPT_PNC_PRECISION" with
    | Some s -> ( match Batch.precision_of_string s with Some p -> p | None -> `Exact)
    | None -> `Exact
  in
  Alcotest.(check string) "env default"
    (Batch.precision_name expected)
    (Batch.precision_name (Batch.resolve_precision ()));
  Alcotest.(check bool) "Config.from_env agrees" true
    ((Config.from_env ()).Config.precision = expected)

let test_precision_of_string () =
  Alcotest.(check bool) "exact" true (Batch.precision_of_string "exact" = Some `Exact);
  Alcotest.(check bool) "FAST (case)" true (Batch.precision_of_string "FAST" = Some `Fast);
  Alcotest.(check bool) " fast (trim)" true
    (Batch.precision_of_string " fast " = Some `Fast);
  Alcotest.(check bool) "garbage" true (Batch.precision_of_string "quick" = None)

let () =
  Alcotest.run "pnc_precision"
    [
      ( "parity",
        [
          Alcotest.test_case "exact bit-identical" `Quick test_exact_is_bit_identical;
          Alcotest.test_case "fast drift bounded (circuit)" `Quick
            test_fast_drift_bounded_circuit;
          Alcotest.test_case "fast drift bounded (elman)" `Quick
            test_fast_drift_bounded_elman;
          Alcotest.test_case "end-to-end drift" `Slow test_end_to_end_drift;
        ] );
      ( "config",
        [
          Alcotest.test_case "fingerprint records fast only" `Quick
            test_fingerprint_records_fast_only;
          Alcotest.test_case "resolution precedence" `Quick test_resolution_precedence;
          Alcotest.test_case "precision_of_string" `Quick test_precision_of_string;
        ] );
    ]
