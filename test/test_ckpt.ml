(* Persistence & fault-injection battery for the checkpoint stack:

   - container format: randomized save -> load round trips are
     bit-identical (eps 0) and files are byte-stable across saves;
   - fault injection: truncation at every 1/8 boundary and random bit
     flips in header and payload are rejected with a typed error (never
     an exception, never a silently wrong model), and an interrupted
     atomic write leaves the previous valid checkpoint intact;
   - resume parity: kill-at-any-epoch + fresh-process-style reload
     reproduces the uninterrupted run exactly — per-epoch losses,
     best_val_loss and final parameters at eps 0;
   - the grid cell cache: a warm run is bit-identical to a cold one,
     and a corrupted cache entry is recomputed, never trusted.

   The binary is re-run by test/dune under POOL_SIZE=1 and POOL_SIZE=4
   so the cache-parity suite exercises both the sequential fallback and
   the multi-domain evaluation pool. *)

module T = Pnc_tensor.Tensor
module Var = Pnc_autodiff.Var
module Rng = Pnc_util.Rng
module Pool = Pnc_util.Pool
module Dataset = Pnc_data.Dataset
module Registry = Pnc_data.Registry
module Network = Pnc_core.Network
module Elman = Pnc_core.Elman
module Model = Pnc_core.Model
module Train = Pnc_core.Train
module Persist = Pnc_core.Persist
module Variation = Pnc_core.Variation
module Optimizer = Pnc_optim.Optimizer
module Scheduler = Pnc_optim.Scheduler
module Obs = Pnc_obs.Obs
module Json = Pnc_obs.Obs.Json
module Ckpt = Pnc_ckpt.Ckpt
module Config = Pnc_exp.Config
module E = Pnc_exp.Experiments

let env_pool_size =
  match Sys.getenv_opt "POOL_SIZE" with
  | Some s -> ( try int_of_string (String.trim s) with _ -> 4)
  | None -> 4

(* Helpers ---------------------------------------------------------------- *)

let temp_dir =
  let d = Filename.temp_file "pnc_ckpt_test" "" in
  Sys.remove d;
  Sys.mkdir d 0o700;
  d

let path name = Filename.concat temp_dir name
let read_file p = In_channel.with_open_bin p In_channel.input_all
let write_file p s = Out_channel.with_open_bin p (fun oc -> Out_channel.output_string oc s)

(* Exact (eps 0) comparison; [compare] instead of [=] so an accidental
   NaN still compares equal to itself. *)
let check_exact_float msg a b =
  if compare (a : float) b <> 0 then Alcotest.failf "%s: %.17g <> %.17g" msg a b

let check_same_tensor msg a b =
  if T.rows a <> T.rows b || T.cols a <> T.cols b then
    Alcotest.failf "%s: shape %dx%d <> %dx%d" msg (T.rows a) (T.cols a) (T.rows b) (T.cols b);
  for r = 0 to T.rows a - 1 do
    for c = 0 to T.cols a - 1 do
      if compare (T.get a r c) (T.get b r c) <> 0 then
        Alcotest.failf "%s: [%d,%d] %.17g <> %.17g" msg r c (T.get a r c) (T.get b r c)
    done
  done

let check_same_params msg a b =
  let pa = Model.named_params a and pb = Model.named_params b in
  Alcotest.(check int) (msg ^ ": same param count") (List.length pa) (List.length pb);
  List.iter2
    (fun (na, va) (nb, vb) ->
      Alcotest.(check string) (msg ^ ": param name") na nb;
      check_same_tensor (msg ^ ": " ^ na) (Var.value va) (Var.value vb))
    pa pb

let counter_value name =
  List.fold_left
    (fun acc (n, fields) ->
      if n = name then
        match List.assoc_opt "value" fields with Some (Obs.Int v) -> acc + v | _ -> acc
      else acc)
    0
    (Obs.metrics_snapshot ())

let random_model rng =
  let classes = 2 + Rng.int rng 4 in
  match Rng.int rng 3 with
  | 0 -> Model.Reference (Elman.create ~hidden:(2 + Rng.int rng 6) rng ~inputs:1 ~classes)
  | 1 ->
      Model.Circuit
        (Network.create ~hidden:(2 + Rng.int rng 4) rng Network.Ptpnc ~inputs:1 ~classes)
  | _ ->
      Model.Circuit
        (Network.create ~hidden:(2 + Rng.int rng 4) rng Network.Adapt ~inputs:1 ~classes)

(* Container format -------------------------------------------------------- *)

let test_encode_decode_roundtrip () =
  let sections =
    [
      ("a", Ckpt.F64 { rows = 2; cols = 3; data = [| 1.; -0.; Float.pi; infinity; neg_infinity; 1e-308 |] });
      ("blob", Ckpt.Bytes "\x00\xff raw \n bytes");
      ("empty", Ckpt.F64 { rows = 0; cols = 0; data = [||] });
    ]
  in
  let meta = [ ("note", Json.String "hi"); ("n", Json.Num 3.) ] in
  let img = Ckpt.encode ~kind:"test" ~meta ~sections in
  match Ckpt.decode img with
  | Error e -> Alcotest.failf "decode failed: %s" (Ckpt.error_to_string e)
  | Ok ck ->
      Alcotest.(check string) "kind" "test" ck.Ckpt.kind;
      Alcotest.(check int) "version" 1 ck.Ckpt.version;
      Alcotest.(check bool) "meta" true (ck.Ckpt.meta = meta);
      Alcotest.(check bool) "sections survive exactly" true (ck.Ckpt.sections = sections);
      Alcotest.(check string) "deterministic bytes" img
        (Ckpt.encode ~kind:"test" ~meta ~sections)

let test_nonfinite_floats_roundtrip () =
  let data = [| infinity; neg_infinity; nan; -0.; Float.min_float |] in
  let img =
    Ckpt.encode ~kind:"t" ~meta:[] ~sections:[ ("x", Ckpt.F64 { rows = 1; cols = 5; data }) ]
  in
  match Ckpt.decode img with
  | Error e -> Alcotest.failf "decode failed: %s" (Ckpt.error_to_string e)
  | Ok ck -> (
      match Ckpt.f64 ck "x" with
      | Ok got -> Array.iteri (fun i v -> check_exact_float (Printf.sprintf "x[%d]" i) data.(i) v) got
      | Error e -> Alcotest.failf "f64: %s" (Ckpt.error_to_string e))

let test_accessor_errors () =
  let img =
    Ckpt.encode ~kind:"t" ~meta:[]
      ~sections:
        [ ("f", Ckpt.F64 { rows = 1; cols = 1; data = [| 0. |] }); ("b", Ckpt.Bytes "x") ]
  in
  let ck = match Ckpt.decode img with Ok ck -> ck | Error _ -> assert false in
  (match Ckpt.find ck "nope" with
  | Error (Ckpt.Missing_section "nope") -> ()
  | _ -> Alcotest.fail "expected Missing_section");
  (match Ckpt.f64 ck "b" with
  | Error (Ckpt.Bad_section _) -> ()
  | _ -> Alcotest.fail "expected Bad_section for f64 on bytes");
  match Ckpt.bytes ck "f" with
  | Error (Ckpt.Bad_section _) -> ()
  | _ -> Alcotest.fail "expected Bad_section for bytes on f64"

(* Model round trips -------------------------------------------------------- *)

(* Property (qgen): every random model round-trips through the
   checkpoint format at eps 0, and re-saving is byte-stable. Each case
   draws its model from its own indexed child stream, so a failure
   replays from the reported QGEN_SEED without the other 49 cases. *)
let test_model_roundtrips () =
  Qgen.check ~count:50 ~name:"model round-trip"
    ~pp:(fun m ->
      match m with
      | Model.Reference _ -> "Reference Elman"
      | Model.Circuit net ->
          Printf.sprintf "%s h=%d c=%d" (Network.arch_name (Network.arch net))
            (Network.hidden net) (Network.classes net))
    random_model
    (fun m ->
      let p = path "model-prop.ckpt" in
      Persist.save_model ~path:p m;
      (match Persist.load_model ~path:p with
      | Error e -> Alcotest.failf "load: %s" (Ckpt.error_to_string e)
      | Ok m' -> check_same_params "model" m m');
      (* byte stability: saving the same state twice writes the same file *)
      let b1 = read_file p in
      Persist.save_model ~path:p m;
      b1 = read_file p)

let test_model_meta_survives () =
  let m = random_model (Rng.create ~seed:7) in
  let p = path "meta.ckpt" in
  Persist.save_model ~extra_meta:[ ("note", Json.String "hello") ] ~path:p m;
  let ck = Ckpt.load_exn ~path:p in
  Alcotest.(check string) "kind" "model" ck.Ckpt.kind;
  Alcotest.(check bool) "extra meta survives" true
    (Ckpt.meta_field ck "note" = Some (Json.String "hello"));
  Alcotest.(check bool) "model meta survives" true
    (List.for_all
       (fun (k, v) -> Ckpt.meta_field ck k = Some v)
       (Persist.model_meta m))

let test_named_params_order_invariant () =
  let rng = Rng.create ~seed:99 in
  for _ = 0 to 9 do
    let m = random_model rng in
    let named = List.map snd (Model.named_params m) in
    let plain = Model.params m in
    Alcotest.(check int) "same length" (List.length plain) (List.length named);
    List.iter2
      (fun a b ->
        if not (a == b) then Alcotest.fail "named_params order differs from params")
      named plain
  done

let test_load_into_wrong_model () =
  (* A checkpoint for one architecture must be rejected for another,
     with the target model left untouched. *)
  let a = Model.Circuit (Network.create ~hidden:3 (Rng.create ~seed:1) Network.Adapt ~inputs:1 ~classes:2) in
  let b = Model.Circuit (Network.create ~hidden:4 (Rng.create ~seed:2) Network.Adapt ~inputs:1 ~classes:3) in
  let p = path "wrong.ckpt" in
  Persist.save_model ~path:p a;
  let before = List.map (fun (_, v) -> T.copy (Var.value v)) (Model.named_params b) in
  let ck = Ckpt.load_exn ~path:p in
  (match Persist.load_params_into b ck with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "shape mismatch accepted");
  List.iter2
    (fun (n, v) t -> check_same_tensor ("untouched " ^ n) (Var.value v) t)
    (Model.named_params b) before

(* Fault injection ---------------------------------------------------------- *)

let make_reference_image () =
  let m = random_model (Rng.create ~seed:55) in
  let p = path "ref.ckpt" in
  Persist.save_model ~path:p m;
  read_file p

let expect_typed_error what s =
  let p = path "fault.ckpt" in
  write_file p s;
  match Ckpt.load ~path:p with
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "%s: accepted" what
  | exception e -> Alcotest.failf "%s: raised %s instead of typed error" what (Printexc.to_string e)

let test_truncation_rejected () =
  let img = make_reference_image () in
  let n = String.length img in
  for k = 0 to 7 do
    let len = n * k / 8 in
    expect_typed_error (Printf.sprintf "truncated to %d/%d bytes" len n) (String.sub img 0 len)
  done;
  expect_typed_error "one byte short" (String.sub img 0 (n - 1));
  (* trailing garbage is corruption too *)
  expect_typed_error "trailing bytes" (img ^ "x")

let read_u32 s pos =
  Char.code s.[pos]
  lor (Char.code s.[pos + 1] lsl 8)
  lor (Char.code s.[pos + 2] lsl 16)
  lor (Char.code s.[pos + 3] lsl 24)

let flip img pos x =
  let b = Bytes.of_string img in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor x));
  Bytes.to_string b

let test_bit_flips_rejected () =
  let img = make_reference_image () in
  let n = String.length img in
  let header_len = read_u32 img 12 in
  let rng = Rng.create ~seed:77 in
  let flip_at what pos =
    expect_typed_error
      (Printf.sprintf "%s flip at byte %d" what pos)
      (flip img pos (1 + Rng.int rng 255))
  in
  (* the fixed prefix: magic, version, lengths, both CRC fields *)
  for pos = 0 to 27 do
    flip_at "prefix" pos
  done;
  (* random positions in the JSON header and in the payload *)
  for _ = 1 to 32 do
    flip_at "header" (28 + Rng.int rng header_len);
    flip_at "payload" (28 + header_len + Rng.int rng (n - 28 - header_len))
  done;
  (* single-bit flips specifically (CRC-32 detects all of them) *)
  for _ = 1 to 32 do
    expect_typed_error "single-bit flip" (flip img (Rng.int rng n) (1 lsl Rng.int rng 8))
  done

let test_atomic_write_interrupt () =
  let p = path "atomic.ckpt" in
  let m = random_model (Rng.create ~seed:66) in
  Persist.save_model ~path:p m;
  let before = read_file p in
  (match Ckpt.atomic_write ~path:p (fun oc ->
       output_string oc "partial garbage";
       failwith "simulated crash mid-write")
   with
  | () -> Alcotest.fail "writer exception swallowed"
  | exception Failure _ -> ());
  Alcotest.(check bool) "previous checkpoint intact" true (before = read_file p);
  (* temp files are pid-unique ([path ^ ".tmp.<pid>"]) so concurrent
     duplicate publishers cannot truncate each other's staging bytes;
     scan by prefix rather than probing one fixed name. *)
  let tmp_litter =
    let prefix = Filename.basename p ^ ".tmp." in
    Array.exists
      (fun e -> String.length e >= String.length prefix && String.sub e 0 (String.length prefix) = prefix)
      (Sys.readdir (Filename.dirname p))
  in
  Alcotest.(check bool) "no temp file left behind" false tmp_litter;
  match Persist.load_model ~path:p with
  | Ok m' -> check_same_params "still loads" m m'
  | Error e -> Alcotest.failf "previous checkpoint unreadable: %s" (Ckpt.error_to_string e)

let test_missing_file_is_io_error () =
  match Ckpt.load ~path:(path "does-not-exist.ckpt") with
  | Error (Ckpt.Io_error _) -> ()
  | Error e -> Alcotest.failf "expected Io_error, got %s" (Ckpt.error_to_string e)
  | Ok _ -> Alcotest.fail "loaded a missing file"

(* Training state ----------------------------------------------------------- *)

let gpovy_split () =
  let raw = Registry.load ~seed:3 ~n:60 "GPOVY" in
  Dataset.preprocess (Rng.create ~seed:4) raw

(* Patience high enough that the plateau scheduler never stops these
   short runs early: all [max_epochs] epochs run. *)
let resume_cfg =
  { Train.smoke_config with Train.max_epochs = 12; patience = 50; mc_samples = 2 }

let make_model seed =
  Model.Circuit (Network.create ~hidden:3 (Rng.create ~seed) Network.Adapt ~inputs:1 ~classes:2)

let fresh_opt_sched model =
  let opt =
    Optimizer.adamw ~weight_decay:resume_cfg.Train.weight_decay ~params:(Model.params model) ()
  in
  let sched =
    Scheduler.plateau ~factor:resume_cfg.Train.lr_factor ~patience:resume_cfg.Train.patience
      ~min_lr:resume_cfg.Train.min_lr ~init_lr:resume_cfg.Train.lr ()
  in
  (opt, sched)

let test_train_state_save_load_save_identical () =
  (* save -> fresh-process-style load -> save must reproduce the file
     byte for byte: nothing in the state is lost or perturbed. *)
  let split = gpovy_split () in
  let model = make_model 11 in
  let p1 = path "state1.ckpt" in
  (match
     Train.train ~rng:(Rng.create ~seed:42) ~checkpoint_path:p1 ~die_at_epoch:4 resume_cfg
       model split
   with
  | _ -> Alcotest.fail "expected Killed"
  | exception Train.Killed e -> Alcotest.(check int) "killed at 4" 4 e);
  let model' = make_model 0 (* constructor seed irrelevant: params overwritten *) in
  let opt, sched = fresh_opt_sched model' in
  match Persist.load_train_state ~path:p1 ~model:model' ~opt ~sched with
  | Error e -> Alcotest.failf "load_train_state: %s" (Ckpt.error_to_string e)
  | Ok r ->
      Alcotest.(check int) "epoch" 4 r.Persist.r_epoch;
      Alcotest.(check int) "curve length" 4 (Array.length r.Persist.r_train_curve);
      let p2 = path "state2.ckpt" in
      Persist.save_train_state ~path:p2 ~model:model' ~opt ~sched ~rng:r.Persist.r_rng
        ~epoch:r.Persist.r_epoch ~best:r.Persist.r_best ~best_snap:r.Persist.r_best_snap
        ~train_curve:r.Persist.r_train_curve ~val_curve:r.Persist.r_val_curve;
      Alcotest.(check bool) "save-load-save byte-identical" true
        (read_file p1 = read_file p2)

let test_train_state_wrong_model_rejected () =
  let p = path "state1.ckpt" in
  let other = Model.Reference (Elman.create (Rng.create ~seed:5) ~inputs:1 ~classes:2) in
  let opt, sched = fresh_opt_sched other in
  match Persist.load_train_state ~path:p ~model:other ~opt ~sched with
  | Error (Ckpt.Bad_header _) -> ()
  | Error e -> Alcotest.failf "expected Bad_header, got %s" (Ckpt.error_to_string e)
  | Ok _ -> Alcotest.fail "elman accepted a circuit checkpoint"

(* Resume parity ------------------------------------------------------------ *)

let run_straight () =
  let model = make_model 11 in
  let h = Train.train ~rng:(Rng.create ~seed:42) resume_cfg model (gpovy_split ()) in
  (model, h)

let check_same_history msg (a : Train.history) (b : Train.history) =
  Alcotest.(check int) (msg ^ ": epochs_run") a.Train.epochs_run b.Train.epochs_run;
  check_exact_float (msg ^ ": final_lr") a.Train.final_lr b.Train.final_lr;
  check_exact_float (msg ^ ": best_val_loss") a.Train.best_val_loss b.Train.best_val_loss;
  let curve name ca cb =
    Alcotest.(check int) (msg ^ ": " ^ name ^ " length") (Array.length ca) (Array.length cb);
    Array.iteri (fun i v -> check_exact_float (Printf.sprintf "%s: %s[%d]" msg name i) v cb.(i)) ca
  in
  curve "train_loss_curve" a.Train.train_loss_curve b.Train.train_loss_curve;
  curve "val_loss_curve" a.Train.val_loss_curve b.Train.val_loss_curve

let test_kill_and_resume_parity () =
  let split = gpovy_split () in
  let m1, h1 = run_straight () in
  List.iter
    (fun k ->
      let ckpt = path (Printf.sprintf "resume-at-%d.ckpt" k) in
      let m2 = make_model 11 in
      (match
         Train.train ~rng:(Rng.create ~seed:42) ~checkpoint_path:ckpt ~die_at_epoch:k
           resume_cfg m2 split
       with
      | _ -> Alcotest.fail "expected Killed"
      | exception Train.Killed e -> Alcotest.(check int) "killed where asked" k e);
      (* fresh-process-style reload: a brand-new model object, and an
         rng whose seed proves the checkpointed stream is what's used *)
      let m3 = make_model 11 in
      let h2 =
        Train.train ~rng:(Rng.create ~seed:999) ~resume_from:ckpt resume_cfg m3 split
      in
      let msg = Printf.sprintf "kill@%d" k in
      check_same_history msg h1 h2;
      check_same_params msg m1 m3)
    [ 1; 5; 11; 12 ]

let test_resume_from_corrupt_rejected () =
  let ckpt = path "resume-at-5.ckpt" in
  let img = read_file ckpt in
  let bad = path "corrupt-resume.ckpt" in
  write_file bad (flip img (String.length img / 2) 0x40);
  let m = make_model 11 in
  match Train.train ~rng:(Rng.create ~seed:1) ~resume_from:bad resume_cfg m (gpovy_split ()) with
  | _ -> Alcotest.fail "resumed from a corrupt checkpoint"
  | exception Ckpt.Error _ -> ()

let test_returned_model_is_best_epoch () =
  (* Regression: [train] must return the best-epoch parameters, not the
     last-epoch ones. A truncated rerun reproduces epochs 1..b exactly
     (same RNG consumption), so its final state pins down what the best
     snapshot must be. *)
  let m1, h1 = run_straight () in
  let curve = h1.Train.val_loss_curve in
  let b = ref 0 in
  Array.iteri (fun i v -> if v < curve.(!b) then b := i) curve;
  let best_epoch = !b + 1 in
  Alcotest.(check bool) "run ends on a worse epoch than its best" true
    (best_epoch < h1.Train.epochs_run);
  check_exact_float "best_val_loss = min of val curve" curve.(!b) h1.Train.best_val_loss;
  let m2 = make_model 11 in
  let h2 =
    Train.train ~rng:(Rng.create ~seed:42)
      { resume_cfg with Train.max_epochs = best_epoch }
      m2 (gpovy_split ())
  in
  check_exact_float "truncated run agrees on best" h1.Train.best_val_loss
    h2.Train.best_val_loss;
  check_same_params "returned params are the best-epoch params" m1 m2

(* Grid cell cache ---------------------------------------------------------- *)

let grid_cfg () =
  let cfg = Config.of_scale Config.Smoke in
  { cfg with Config.datasets = [ "GPOVY" ]; dataset_n = Some 50 }

let check_same_run msg (a : E.run) (b : E.run) =
  Alcotest.(check string) (msg ^ ": dataset") a.E.dataset b.E.dataset;
  Alcotest.(check bool) (msg ^ ": variant") true (a.E.variant = b.E.variant);
  Alcotest.(check int) (msg ^ ": seed") a.E.seed b.E.seed;
  Alcotest.(check int) (msg ^ ": epochs") a.E.epochs b.E.epochs;
  List.iter
    (fun (n, x, y) -> check_exact_float (msg ^ ": " ^ n) x y)
    [
      ("clean_acc", a.E.clean_acc, b.E.clean_acc);
      ("clean_var_acc", a.E.clean_var_acc, b.E.clean_var_acc);
      ("aug_var_acc", a.E.aug_var_acc, b.E.aug_var_acc);
      ("pert_var_acc", a.E.pert_var_acc, b.E.pert_var_acc);
    ];
  check_same_params msg a.E.model b.E.model

let with_env_pool f =
  if env_pool_size <= 1 then f None else Pool.with_pool ~size:env_pool_size (fun p -> f (Some p))

let test_grid_cache_warm_equals_cold () =
  with_env_pool @@ fun pool ->
  let cfg = grid_cfg () in
  let dir = path "grid-cache" in
  let variants = [ E.Base; E.Full ] in
  let cold = E.run_grid ?pool ~cache_dir:dir cfg ~variants in
  let hits_before = counter_value "grid.cache_hits" in
  let warm = E.run_grid ?pool ~cache_dir:dir cfg ~variants in
  Alcotest.(check int) "every warm cell came from the cache"
    (List.length cold)
    (counter_value "grid.cache_hits" - hits_before);
  List.iter2 (check_same_run "warm=cold") cold warm;
  (* an uncached run must agree too (the cache changes nothing) *)
  let direct = E.run_grid ?pool cfg ~variants in
  List.iter2 (check_same_run "direct=cached") cold direct

let test_grid_cache_corrupt_recomputed () =
  with_env_pool @@ fun pool ->
  let cfg = grid_cfg () in
  let dir = path "grid-cache" in
  let cell = E.cell_path ~dir cfg ~dataset:"GPOVY" ~variant:E.Base ~seed:0 in
  Alcotest.(check bool) "cold run wrote the cell" true (Sys.file_exists cell);
  let good = read_file cell in
  write_file cell (flip good (String.length good / 3) 0x10);
  let hits_before = counter_value "grid.cache_hits" in
  let runs = E.run_grid ?pool ~cache_dir:dir cfg ~variants:[ E.Base ] in
  Alcotest.(check int) "corrupt cell not trusted" hits_before
    (counter_value "grid.cache_hits");
  Alcotest.(check int) "recomputed" 1 (List.length runs);
  (* The rewritten cell is valid again and warm-loads to the same run
     (bytes may differ: the cached wall-clock timing is not
     deterministic, everything the artifacts read is). *)
  (match Ckpt.load ~path:cell with
  | Ok ck -> Alcotest.(check string) "cell kind" "grid-cell" ck.Ckpt.kind
  | Error e -> Alcotest.failf "rewritten cell unreadable: %s" (Ckpt.error_to_string e));
  let warm = E.run_grid ?pool ~cache_dir:dir cfg ~variants:[ E.Base ] in
  Alcotest.(check int) "rewritten cell warm-loads" (hits_before + 1)
    (counter_value "grid.cache_hits");
  List.iter2 (check_same_run "recomputed=warm") runs warm;
  (* stale fingerprint: any cell-affecting knob change misses the cache *)
  let cfg' = { cfg with Config.eval_draws = cfg.Config.eval_draws + 1 } in
  Alcotest.(check bool) "fingerprint keys the path" true
    (E.cell_path ~dir cfg ~dataset:"GPOVY" ~variant:E.Base ~seed:0
    <> E.cell_path ~dir cfg' ~dataset:"GPOVY" ~variant:E.Base ~seed:0)

(* ------------------------------------------------------------------------- *)

let () =
  Alcotest.run "ckpt"
    [
      ( "format",
        [
          Alcotest.test_case "encode/decode round trip" `Quick test_encode_decode_roundtrip;
          Alcotest.test_case "non-finite floats survive" `Quick test_nonfinite_floats_roundtrip;
          Alcotest.test_case "typed accessor errors" `Quick test_accessor_errors;
        ] );
      ( "model-roundtrip",
        [
          Alcotest.test_case "50 random models, eps 0" `Quick test_model_roundtrips;
          Alcotest.test_case "metadata survives" `Quick test_model_meta_survives;
          Alcotest.test_case "named_params order = params" `Quick
            test_named_params_order_invariant;
          Alcotest.test_case "wrong model rejected, untouched" `Quick test_load_into_wrong_model;
        ] );
      ( "fault-injection",
        [
          Alcotest.test_case "truncation at every 1/8 boundary" `Quick test_truncation_rejected;
          Alcotest.test_case "bit flips in header and payload" `Quick test_bit_flips_rejected;
          Alcotest.test_case "interrupted atomic write" `Quick test_atomic_write_interrupt;
          Alcotest.test_case "missing file" `Quick test_missing_file_is_io_error;
        ] );
      ( "train-state",
        [
          Alcotest.test_case "save-load-save byte-identical" `Quick
            test_train_state_save_load_save_identical;
          Alcotest.test_case "wrong model rejected" `Quick test_train_state_wrong_model_rejected;
        ] );
      ( "resume",
        [
          Alcotest.test_case "kill at any epoch + resume = straight run" `Quick
            test_kill_and_resume_parity;
          Alcotest.test_case "corrupt resume checkpoint rejected" `Quick
            test_resume_from_corrupt_rejected;
          Alcotest.test_case "returned model is best-epoch model" `Quick
            test_returned_model_is_best_epoch;
        ] );
      ( "grid-cache",
        [
          Alcotest.test_case "warm cache bit-identical to cold" `Quick
            test_grid_cache_warm_equals_cold;
          Alcotest.test_case "corrupt cell recomputed" `Quick test_grid_cache_corrupt_recomputed;
        ] );
    ]
