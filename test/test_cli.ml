(* CLI contract tests for failure modes that must not train.

   These run the real binary ([../bin/adapt_pnc.exe] relative to the
   test's build directory) and pin the exit codes and messages of the
   --resume / --checkpoint-dir error paths. Both bugs being pinned here
   were silent: --resume with a missing train.ckpt used to fall through
   to a fresh training run (overwriting the directory the user asked to
   resume from), and a checkpoint dir with a missing parent surfaced as
   an uncaught Sys_error backtrace. *)

let exe = Filename.concat (Filename.dirname Sys.executable_name) "../bin/adapt_pnc.exe"

type outcome = { code : int; stdout : string; stderr : string }

let slurp path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let run_cli (args : string list) : outcome =
  let out = Filename.temp_file "cli_out" ".txt" in
  let err = Filename.temp_file "cli_err" ".txt" in
  let argv = Array.of_list (exe :: args) in
  let fd_out = Unix.openfile out [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  let fd_err = Unix.openfile err [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  let pid = Unix.create_process exe argv Unix.stdin fd_out fd_err in
  Unix.close fd_out;
  Unix.close fd_err;
  let _, status = Unix.waitpid [] pid in
  let code =
    match status with
    | Unix.WEXITED c -> c
    | Unix.WSIGNALED s -> 128 + s
    | Unix.WSTOPPED s -> 128 + s
  in
  let r = { code; stdout = slurp out; stderr = slurp err } in
  Sys.remove out;
  Sys.remove err;
  r

let contains ~needle hay =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let fresh_dir () =
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "adapt_pnc_cli_%d_%d" (Unix.getpid ()) (Random.bits ()))
  in
  Sys.mkdir d 0o755;
  d

(* --resume with an existing checkpoint dir but no train.ckpt must exit
   2 with a pointer at the missing file — never train from scratch. *)
let test_resume_missing_checkpoint () =
  let dir = fresh_dir () in
  let r =
    run_cli [ "train"; "-d"; "PowerCons"; "--scale"; "smoke"; "--checkpoint-dir"; dir; "--resume" ]
  in
  Alcotest.(check int) "exit code" 2 r.code;
  Alcotest.(check bool)
    "names the missing checkpoint" true
    (contains ~needle:(Filename.concat dir "train.ckpt") r.stderr);
  Alcotest.(check bool) "says nothing to resume" true (contains ~needle:"nothing to resume" r.stderr);
  Alcotest.(check bool) "did not start training" false (contains ~needle:"training" r.stdout);
  Sys.rmdir dir

(* --resume is meaningless without --checkpoint-dir: exit 2, say so. *)
let test_resume_requires_dir () =
  let r = run_cli [ "train"; "-d"; "PowerCons"; "--scale"; "smoke"; "--resume" ] in
  Alcotest.(check int) "exit code" 2 r.code;
  Alcotest.(check bool)
    "explains the pairing" true
    (contains ~needle:"--resume requires --checkpoint-dir" r.stderr)

(* A checkpoint dir whose parent does not exist must fail with a usable
   message, not an uncaught Sys_error backtrace. *)
let test_mkdir_missing_parent () =
  let missing =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "no_such_parent_%d/ckpt" (Random.bits ()))
  in
  let r =
    run_cli [ "train"; "-d"; "PowerCons"; "--scale"; "smoke"; "--checkpoint-dir"; missing ]
  in
  Alcotest.(check int) "exit code" 2 r.code;
  Alcotest.(check bool)
    "clean diagnostic" true
    (contains ~needle:"cannot create checkpoint directory" r.stderr);
  Alcotest.(check bool) "no uncaught exception" false (contains ~needle:"Fatal error" r.stderr)

let () =
  Random.self_init ();
  Alcotest.run "cli"
    [
      ( "train-errors",
        [
          Alcotest.test_case "--resume w/o train.ckpt exits 2" `Quick test_resume_missing_checkpoint;
          Alcotest.test_case "--resume w/o --checkpoint-dir exits 2" `Quick test_resume_requires_dir;
          Alcotest.test_case "mkdir missing parent is clean" `Quick test_mkdir_missing_parent;
        ] );
    ]
