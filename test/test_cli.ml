(* CLI contract tests for failure modes that must not train.

   These run the real binary ([../bin/adapt_pnc.exe] relative to the
   test's build directory) and pin the exit codes and messages of the
   --resume / --checkpoint-dir error paths. Both bugs being pinned here
   were silent: --resume with a missing train.ckpt used to fall through
   to a fresh training run (overwriting the directory the user asked to
   resume from), and a checkpoint dir with a missing parent surfaced as
   an uncaught Sys_error backtrace. *)

let exe = Filename.concat (Filename.dirname Sys.executable_name) "../bin/adapt_pnc.exe"

type outcome = { code : int; stdout : string; stderr : string }

let slurp path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let run_cli (args : string list) : outcome =
  let out = Filename.temp_file "cli_out" ".txt" in
  let err = Filename.temp_file "cli_err" ".txt" in
  let argv = Array.of_list (exe :: args) in
  let fd_out = Unix.openfile out [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  let fd_err = Unix.openfile err [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  let pid = Unix.create_process exe argv Unix.stdin fd_out fd_err in
  Unix.close fd_out;
  Unix.close fd_err;
  let _, status = Unix.waitpid [] pid in
  let code =
    match status with
    | Unix.WEXITED c -> c
    | Unix.WSIGNALED s -> 128 + s
    | Unix.WSTOPPED s -> 128 + s
  in
  let r = { code; stdout = slurp out; stderr = slurp err } in
  Sys.remove out;
  Sys.remove err;
  r

let contains ~needle hay =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let fresh_dir () =
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "adapt_pnc_cli_%d_%d" (Unix.getpid ()) (Random.bits ()))
  in
  Sys.mkdir d 0o755;
  d

(* --resume with an existing checkpoint dir but no train.ckpt must exit
   2 with a pointer at the missing file — never train from scratch. *)
let test_resume_missing_checkpoint () =
  let dir = fresh_dir () in
  let r =
    run_cli [ "train"; "-d"; "PowerCons"; "--scale"; "smoke"; "--checkpoint-dir"; dir; "--resume" ]
  in
  Alcotest.(check int) "exit code" 2 r.code;
  Alcotest.(check bool)
    "names the missing checkpoint" true
    (contains ~needle:(Filename.concat dir "train.ckpt") r.stderr);
  Alcotest.(check bool) "says nothing to resume" true (contains ~needle:"nothing to resume" r.stderr);
  Alcotest.(check bool) "did not start training" false (contains ~needle:"training" r.stdout);
  Sys.rmdir dir

(* --resume is meaningless without --checkpoint-dir: exit 2, say so. *)
let test_resume_requires_dir () =
  let r = run_cli [ "train"; "-d"; "PowerCons"; "--scale"; "smoke"; "--resume" ] in
  Alcotest.(check int) "exit code" 2 r.code;
  Alcotest.(check bool)
    "explains the pairing" true
    (contains ~needle:"--resume requires --checkpoint-dir" r.stderr)

(* A checkpoint dir whose parent does not exist must fail with a usable
   message, not an uncaught Sys_error backtrace. *)
let test_mkdir_missing_parent () =
  let missing =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "no_such_parent_%d/ckpt" (Random.bits ()))
  in
  let r =
    run_cli [ "train"; "-d"; "PowerCons"; "--scale"; "smoke"; "--checkpoint-dir"; missing ]
  in
  Alcotest.(check int) "exit code" 2 r.code;
  Alcotest.(check bool)
    "clean diagnostic" true
    (contains ~needle:"cannot create checkpoint directory" r.stderr);
  Alcotest.(check bool) "no uncaught exception" false (contains ~needle:"Fatal error" r.stderr)

(* grid subcommands: exit-code contract against the real binary. The
   crash/corruption fault battery lives in test_grid.ml; here we pin
   the user-error paths and the status arithmetic. *)

let missing_dir () =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "no_such_grid_cache_%d" (Random.bits ()))

(* status/merge must not invent an empty grid when the cache dir does
   not exist: exit 2 and name the directory. *)
let test_grid_status_missing_dir () =
  let dir = missing_dir () in
  let r = run_cli [ "grid"; "status"; "--cache-dir"; dir; "--scale"; "smoke" ] in
  Alcotest.(check int) "exit code" 2 r.code;
  Alcotest.(check bool) "names the directory" true (contains ~needle:dir r.stderr)

let test_grid_merge_missing_dir () =
  let dir = missing_dir () in
  let r = run_cli [ "grid"; "merge"; "--cache-dir"; dir; "--scale"; "smoke" ] in
  Alcotest.(check int) "exit code" 2 r.code;
  Alcotest.(check bool) "names the directory" true (contains ~needle:dir r.stderr)

let test_grid_run_bad_shards () =
  let dir = fresh_dir () in
  let r = run_cli [ "grid"; "run"; "--cache-dir"; dir; "--shards"; "0"; "--scale"; "smoke" ] in
  Alcotest.(check int) "exit code" 2 r.code;
  Alcotest.(check bool) "explains the bound" true (contains ~needle:"--shards" r.stderr);
  Sys.rmdir dir

let test_grid_bad_variant_set () =
  let dir = fresh_dir () in
  let r =
    run_cli [ "grid"; "run"; "--cache-dir"; dir; "--scale"; "smoke"; "--variants"; "table9" ]
  in
  Alcotest.(check int) "exit code" 2 r.code;
  Alcotest.(check bool) "lists the valid sets" true (contains ~needle:"all|table1|fig7" r.stderr);
  Sys.rmdir dir

(* A half-done grid must report the exact done/pending split, in both
   the table and the JSONL renderings, and merge must refuse it with
   exit 3 listing the missing cells. *)
let test_grid_status_half_done () =
  let dir = fresh_dir () in
  let args = [ "--cache-dir"; dir; "--scale"; "smoke"; "-d"; "GPOVY"; "--variants"; "table1" ] in
  let r = run_cli ([ "grid"; "run"; "--shards"; "1" ] @ args) in
  Alcotest.(check int) "grid run exits 0" 0 r.code;
  (* drop two of the three cells *)
  let cells =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun e -> Filename.check_suffix e ".ckpt")
    |> List.sort compare
  in
  Alcotest.(check int) "table1 x GPOVY is three cells" 3 (List.length cells);
  List.iteri (fun i e -> if i < 2 then Sys.remove (Filename.concat dir e)) cells;
  let st = run_cli ([ "grid"; "status" ] @ args) in
  Alcotest.(check int) "status exits 0" 0 st.code;
  Alcotest.(check bool) "reports done 1 / pending 2" true
    (contains ~needle:"done 1, claimed 0, stale 0, pending 2" st.stdout);
  let js = run_cli ([ "grid"; "status"; "--json" ] @ args) in
  Alcotest.(check int) "status --json exits 0" 0 js.code;
  Alcotest.(check bool) "summary line agrees" true
    (contains ~needle:{|"total":3,"done":1,"claimed":0,"stale":0,"pending":2|} js.stdout);
  let m = run_cli ([ "grid"; "merge" ] @ args) in
  Alcotest.(check int) "merge on a half-done grid exits 3" 3 m.code;
  Alcotest.(check bool) "lists missing cells" true (contains ~needle:"2 cells missing" m.stderr)

let () =
  Random.self_init ();
  Alcotest.run "cli"
    [
      ( "train-errors",
        [
          Alcotest.test_case "--resume w/o train.ckpt exits 2" `Quick test_resume_missing_checkpoint;
          Alcotest.test_case "--resume w/o --checkpoint-dir exits 2" `Quick test_resume_requires_dir;
          Alcotest.test_case "mkdir missing parent is clean" `Quick test_mkdir_missing_parent;
        ] );
      ( "grid",
        [
          Alcotest.test_case "status w/o cache dir exits 2" `Quick test_grid_status_missing_dir;
          Alcotest.test_case "merge w/o cache dir exits 2" `Quick test_grid_merge_missing_dir;
          Alcotest.test_case "--shards 0 exits 2" `Quick test_grid_run_bad_shards;
          Alcotest.test_case "bad --variants exits 2" `Quick test_grid_bad_variant_set;
          Alcotest.test_case "half-done grid: status counts, merge exits 3" `Quick
            test_grid_status_half_done;
        ] );
    ]
