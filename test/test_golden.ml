(* Golden-file regression tests (satellite: PR 3).

   Byte-for-byte comparison of deterministic textual artifacts against
   checked-in references under test/golden/:

   - the Table III hardware device-count/power table for fixed-seed
     baseline and ADAPT networks;
   - the exported SPICE deck of a fixed-seed ADAPT network.

   Both artifacts are pure functions of the seed (no training, no
   variation draws), so any diff is a real behaviour change in the
   hardware cost model or the netlist exporter. Refresh intentionally
   changed files with:

     UPDATE_GOLDEN=1 dune runtest test *)

module Rng = Pnc_util.Rng
module Network = Pnc_core.Network
module Hardware = Pnc_core.Hardware

let golden_seed = 42

let is_dir d = Sys.file_exists d && Sys.is_directory d
let first_dir candidates fallback = match List.find_opt is_dir candidates with Some d -> d | None -> fallback

(* Under `dune runtest` the cwd is _build/default/test (the golden
   files are staged into ./golden by the dune deps); under a bare
   `dune exec` from the repo root it is the root itself. UPDATE_GOLDEN
   writes through to the source tree when it is reachable, so
   refreshed files land in version control. *)
let golden_dir_for_update () =
  first_dir
    [ Filename.concat "../../../test" "golden"; Filename.concat "test" "golden" ]
    "golden"

let golden_dir_for_read () =
  first_dir [ "golden"; Filename.concat "test" "golden" ] "golden"

let updating () =
  match Sys.getenv_opt "UPDATE_GOLDEN" with
  | Some ("" | "0") | None -> false
  | Some _ -> true

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc s)

let first_diff a b =
  let n = Stdlib.min (String.length a) (String.length b) in
  let rec go i = if i < n && a.[i] = b.[i] then go (i + 1) else i in
  go 0

let check_golden ~file actual =
  if updating () then begin
    write_file (Filename.concat (golden_dir_for_update ()) file) actual;
    Printf.printf "refreshed golden file %s\n" file
  end
  else begin
    let path = Filename.concat (golden_dir_for_read ()) file in
    if not (Sys.file_exists path) then
      Alcotest.failf "missing golden file %s (run UPDATE_GOLDEN=1 dune runtest test)" file;
    let expected = read_file path in
    if not (String.equal expected actual) then begin
      let i = first_diff expected actual in
      let ctx s =
        let lo = Stdlib.max 0 (i - 30) in
        let len = Stdlib.min 60 (String.length s - lo) in
        String.escaped (String.sub s lo len)
      in
      Alcotest.failf
        "golden mismatch %s at byte %d (expected %d bytes, got %d)\n  expected ...%s...\n  actual   ...%s...\n(refresh with UPDATE_GOLDEN=1 dune runtest test if intentional)"
        file i (String.length expected) (String.length actual) (ctx expected) (ctx actual)
    end
  end

(* Artifacts ---------------------------------------------------------------- *)

let make_net arch =
  (* Fresh-seeded network: never trained, so the artifact depends only
     on Rng.create and the init path. *)
  Network.create (Rng.create ~seed:golden_seed) arch ~inputs:1 ~classes:2

let hardware_table () =
  let b = Buffer.create 512 in
  List.iter
    (fun arch ->
      let net = make_net arch in
      let c = Hardware.of_network net in
      Buffer.add_string b
        (Printf.sprintf "%s seed=%d inputs=1 classes=2 hidden=%d\n" (Network.arch_name arch)
           golden_seed (Network.hidden net));
      Buffer.add_string b
        (Printf.sprintf "  transistors=%d resistors=%d capacitors=%d total=%d\n" c.Hardware.transistors
           c.Hardware.resistors c.Hardware.capacitors (Hardware.total c));
      Buffer.add_string b (Printf.sprintf "  describe: %s\n" (Hardware.describe c));
      Buffer.add_string b (Printf.sprintf "  power_mw=%.9f\n" (Hardware.power_mw net)))
    [ Network.Ptpnc; Network.Adapt ];
  Buffer.contents b

let netlist_deck () = Pnc_core.Netlist_export.deck (make_net Network.Adapt)

let test_hardware_table () = check_golden ~file:"hardware_table.txt" (hardware_table ())
let test_netlist_deck () = check_golden ~file:"netlist_adapt.txt" (netlist_deck ())

let test_artifacts_are_deterministic () =
  (* The golden comparison is only sound if regeneration is
     reproducible within one binary. *)
  Alcotest.(check string) "hardware table stable" (hardware_table ()) (hardware_table ());
  Alcotest.(check string) "netlist deck stable" (netlist_deck ()) (netlist_deck ())

let () =
  Alcotest.run "pnc_golden"
    [
      ( "golden",
        [
          Alcotest.test_case "hardware table" `Quick test_hardware_table;
          Alcotest.test_case "netlist deck (adapt)" `Quick test_netlist_deck;
          Alcotest.test_case "artifacts deterministic" `Quick test_artifacts_are_deterministic;
        ] );
    ]
