(* Differential tests for the model-serving daemon.

   The load-bearing property is the parity contract from
   lib/serve/serve.mli: logits served over the wire are bit-identical
   (eps 0) to an offline [Model.logits_batch_t] call on the same
   checkpoint, whatever flush mode produced the micro-batch. Each
   parity test below pins one flush trigger — per-request batches
   (max_batch = 1), the size threshold under concurrent load, and the
   deadline under a single in-flight request — plus hot reload,
   malformed-body survival, kill-and-restart and a drain check. *)

module T = Pnc_tensor.Tensor
module Rng = Pnc_util.Rng
module Model = Pnc_core.Model
module Network = Pnc_core.Network
module Persist = Pnc_core.Persist
module Serve = Pnc_serve.Serve

let cols = 8
let classes = 3

let make_model seed =
  Model.Circuit (Network.create ~hidden:3 (Rng.create ~seed) Network.Adapt ~inputs:1 ~classes)

let save_model path m = Persist.save_model ~path m

let fresh_ckpt () =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "serve_test_%d_%d.ckpt" (Unix.getpid ()) (Random.bits ()))

(* Offline truth: one logits row per input row, straight from the
   batched engine with its defaults (exactly what the daemon calls). *)
let offline model (rows : float array array) : float array array =
  let x = T.of_rows rows in
  let y = Model.logits_batch_t model x in
  Array.init (T.rows y) (fun i -> T.row y i)

let random_row rng = Array.init cols (fun _ -> Rng.uniform rng ~lo:(-1.5) ~hi:1.5)

(* Run [f server] against a daemon serving [ckpt]; always stops and
   joins the server thread, even when [f] raises. *)
let with_server ?(config = Serve.default_config) ckpt f =
  let config = { config with Serve.port = 0; host = "127.0.0.1" } in
  match Serve.create ~config ~checkpoint:ckpt () with
  | Error msg -> Alcotest.failf "Serve.create: %s" msg
  | Ok srv ->
      let th = Thread.create (fun () -> Serve.run ~handle_signals:false srv) () in
      let r = try Ok (f srv) with e -> Error e in
      Serve.stop srv;
      Thread.join th;
      (match r with Ok v -> v | Error e -> raise e)

let with_conn srv f =
  let c = Serve.Client.connect ~port:(Serve.port srv) () in
  let r = try Ok (f c) with e -> Error e in
  Serve.Client.close c;
  match r with Ok v -> v | Error e -> raise e

let check_bits what (expect : float array) (got : float array) =
  Alcotest.(check int) (what ^ ": width") (Array.length expect) (Array.length got);
  Array.iteri
    (fun i e ->
      if Int64.bits_of_float e <> Int64.bits_of_float got.(i) then
        Alcotest.failf "%s: bit mismatch at col %d: %h vs %h" what i e got.(i))
    expect

let ok what = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "%s: unexpected HTTP error: %s" what msg

(* Flush mode 1: max_batch = 1, so every request is its own batch. *)
let test_parity_per_request () =
  let ckpt = fresh_ckpt () in
  let model = make_model 42 in
  save_model ckpt model;
  let config = { Serve.default_config with max_batch = 1; max_delay_s = 1.0; reload_every_s = 0. } in
  with_server ~config ckpt (fun srv ->
      with_conn srv (fun c ->
          let rng = Rng.create ~seed:7 in
          for i = 1 to 10 do
            let row = random_row rng in
            let v, got = ok "logits" (Serve.Client.logits c row) in
            Alcotest.(check int) "version" 1 v;
            check_bits (Printf.sprintf "series %d" i) (offline model [| row |]).(0) got
          done;
          (* Multi-row body: still parity, one logits row per input. *)
          let batch = Array.init 5 (fun _ -> random_row rng) in
          let v, got = ok "batch" (Serve.Client.logits_batch c batch) in
          Alcotest.(check int) "version" 1 v;
          let expect = offline model batch in
          Array.iteri (fun i e -> check_bits (Printf.sprintf "batch row %d" i) e got.(i)) expect));
  Sys.remove ckpt

(* Flush mode 2: the size threshold. Eight single-row requests from
   eight concurrent connections against max_batch = 4 coalesce into
   cross-request micro-batches; every answer must still be the row the
   offline engine computes for that client's input. max_delay_s is the
   safety valve so the test cannot wedge if the scheduler staggers the
   admissions. *)
let test_parity_threshold_flush () =
  let ckpt = fresh_ckpt () in
  let model = make_model 43 in
  save_model ckpt model;
  let config =
    { Serve.default_config with max_batch = 4; max_delay_s = 0.25; reload_every_s = 0.; pool_size = 2 }
  in
  with_server ~config ckpt (fun srv ->
      let rng = Rng.create ~seed:11 in
      let rows = Array.init 8 (fun _ -> random_row rng) in
      let results = Array.make 8 None in
      let worker i =
        with_conn srv (fun c -> results.(i) <- Some (Serve.Client.logits c rows.(i)))
      in
      let ths = Array.init 8 (fun i -> Thread.create worker i) in
      Array.iter Thread.join ths;
      Array.iteri
        (fun i r ->
          match r with
          | None -> Alcotest.failf "client %d got no response" i
          | Some res ->
              let v, got = ok "logits" res in
              Alcotest.(check int) "version" 1 v;
              check_bits (Printf.sprintf "client %d" i) (offline model [| rows.(i) |]).(0) got)
        results);
  Sys.remove ckpt

(* Flush mode 3: the deadline. With max_batch far above what one
   request supplies, only the max_delay_s timer can flush — the request
   must still be answered promptly and bit-identically. *)
let test_parity_deadline_flush () =
  let ckpt = fresh_ckpt () in
  let model = make_model 44 in
  save_model ckpt model;
  let config =
    { Serve.default_config with max_batch = 1024; max_delay_s = 0.005; reload_every_s = 0. }
  in
  with_server ~config ckpt (fun srv ->
      with_conn srv (fun c ->
          let rng = Rng.create ~seed:13 in
          for i = 1 to 5 do
            let row = random_row rng in
            let t0 = Unix.gettimeofday () in
            let _, got = ok "logits" (Serve.Client.logits c row) in
            let dt = Unix.gettimeofday () -. t0 in
            check_bits (Printf.sprintf "deadline %d" i) (offline model [| row |]).(0) got;
            if dt > 2.0 then Alcotest.failf "deadline flush took %.3fs (timer not firing?)" dt
          done));
  Sys.remove ckpt

(* Malformed bodies must get a 4xx and leave the daemon (and, for
   body-level errors, even the connection) healthy. *)
let test_malformed_bodies () =
  let ckpt = fresh_ckpt () in
  let model = make_model 45 in
  save_model ckpt model;
  let config = { Serve.default_config with max_batch = 1; reload_every_s = 0. } in
  with_server ~config ckpt (fun srv ->
      with_conn srv (fun c ->
          let post body =
            (Serve.Client.request c ~meth:"POST" ~path:"/v1/logits" ~body ()).Serve.Client.status
          in
          Alcotest.(check int) "broken json" 400 (post {|{"series":[1,|});
          Alcotest.(check int) "bad \\u escape" 400 (post {|{"series":[1],"t":"\uZZZZ"}|});
          Alcotest.(check int) "underscore \\u escape" 400 (post {|{"series":[1],"t":"\u00_9"}|});
          Alcotest.(check int) "surrogate \\u escape" 400 (post {|{"series":[1],"t":"\ud800"}|});
          Alcotest.(check int) "ragged batch" 400 (post {|{"batch":[[1,2],[1]]}|});
          Alcotest.(check int) "empty series" 400 (post {|{"series":[]}|});
          Alcotest.(check int) "non-finite" 400 (post {|{"series":[1e999]}|});
          Alcotest.(check int) "neither key" 400 (post {|{"rows":[[1]]}|});
          Alcotest.(check int) "not found" 404
            (Serve.Client.request c ~meth:"GET" ~path:"/nope" ()).Serve.Client.status;
          Alcotest.(check int) "method not allowed" 405
            (Serve.Client.request c ~meth:"GET" ~path:"/v1/logits" ()).Serve.Client.status;
          (* The same connection still serves good requests afterwards. *)
          let row = random_row (Rng.create ~seed:3) in
          let _, got = ok "after errors" (Serve.Client.logits c row) in
          check_bits "after errors" (offline model [| row |]).(0) got));
  Sys.remove ckpt

(* Hot reload under load: requests racing a checkpoint swap must each
   match the offline logits of the model version they were answered
   with — never a torn or mixed result. *)
let test_hot_reload_mid_load () =
  let ckpt = fresh_ckpt () in
  let model_a = make_model 46 in
  let model_b = make_model 47 in
  save_model ckpt model_a;
  let config =
    { Serve.default_config with max_batch = 4; max_delay_s = 0.002; reload_every_s = 0.02 }
  in
  with_server ~config ckpt (fun srv ->
      (* Sanity before the swap. *)
      with_conn srv (fun c ->
          let row = random_row (Rng.create ~seed:5) in
          let v, got = ok "pre-reload" (Serve.Client.logits c row) in
          Alcotest.(check int) "initial version" 1 v;
          check_bits "pre-reload" (offline model_a [| row |]).(0) got);
      let errors = ref [] in
      let err_mu = Mutex.create () in
      let saw_v2 = Atomic.make false in
      let worker wi =
        let rng = Rng.create ~seed:(100 + wi) in
        with_conn srv (fun c ->
            for i = 1 to 40 do
              let row = random_row rng in
              match Serve.Client.logits c row with
              | Error msg ->
                  Mutex.lock err_mu;
                  errors := Printf.sprintf "worker %d req %d: %s" wi i msg :: !errors;
                  Mutex.unlock err_mu
              | Ok (v, got) ->
                  if v >= 2 then Atomic.set saw_v2 true;
                  let m = if v = 1 then model_a else model_b in
                  let expect = (offline m [| row |]).(0) in
                  Array.iteri
                    (fun j e ->
                      if Int64.bits_of_float e <> Int64.bits_of_float got.(j) then begin
                        Mutex.lock err_mu;
                        errors :=
                          Printf.sprintf "worker %d req %d: version %d parity break at col %d"
                            wi i v j
                          :: !errors;
                        Mutex.unlock err_mu
                      end)
                    expect
            done)
      in
      let ths = Array.init 4 (fun wi -> Thread.create worker wi) in
      (* Swap the checkpoint while the workers hammer the daemon. *)
      Thread.delay 0.05;
      save_model ckpt model_b;
      Array.iter Thread.join ths;
      (match !errors with [] -> () | e :: _ -> Alcotest.fail e);
      (* The reload must land eventually; wait for it if the workers
         finished before the poller noticed the swap. *)
      let deadline = Unix.gettimeofday () +. 5.0 in
      let rec wait () =
        if Atomic.get saw_v2 then ()
        else if Serve.model_version srv >= 2 then ()
        else if Unix.gettimeofday () > deadline then
          Alcotest.fail "checkpoint swap never picked up"
        else begin
          Thread.delay 0.02;
          wait ()
        end
      in
      wait ();
      with_conn srv (fun c ->
          let row = random_row (Rng.create ~seed:6) in
          let v, got = ok "post-reload" (Serve.Client.logits c row) in
          Alcotest.(check int) "reloaded version" 2 v;
          check_bits "post-reload" (offline model_b [| row |]).(0) got));
  Sys.remove ckpt

(* Kill and restart: a second daemon over the same checkpoint starts
   clean (version resets to 1), serves identical logits, and the dead
   daemon's port actually stopped listening. *)
let test_kill_and_restart () =
  let ckpt = fresh_ckpt () in
  let model = make_model 48 in
  save_model ckpt model;
  let config = { Serve.default_config with max_batch = 2; max_delay_s = 0.002; reload_every_s = 0. } in
  let row = random_row (Rng.create ~seed:9) in
  let expect = (offline model [| row |]).(0) in
  let first_port = ref 0 in
  let first =
    with_server ~config ckpt (fun srv ->
        first_port := Serve.port srv;
        with_conn srv (fun c -> ok "first run" (Serve.Client.logits c row)))
  in
  check_bits "first run" expect (snd first);
  (* The first daemon is gone: connecting to its port must fail. *)
  (match Serve.Client.connect ~port:!first_port () with
  | exception Unix.Unix_error _ -> ()
  | c ->
      Serve.Client.close c;
      Alcotest.fail "old port still accepting after shutdown");
  let second =
    with_server ~config ckpt (fun srv ->
        with_conn srv (fun c -> ok "second run" (Serve.Client.logits c row)))
  in
  Alcotest.(check int) "restart resets version" 1 (fst second);
  check_bits "restart parity" expect (snd second);
  Sys.remove ckpt

(* Graceful drain under concurrency: many keep-alive clients, every
   response answered and bit-exact, and [run] returns after [stop]. *)
let test_concurrent_drain () =
  let ckpt = fresh_ckpt () in
  let model = make_model 49 in
  save_model ckpt model;
  let config =
    { Serve.default_config with max_batch = 8; max_delay_s = 0.002; reload_every_s = 0.; pool_size = 2 }
  in
  with_server ~config ckpt (fun srv ->
      let failures = Atomic.make 0 in
      let worker wi =
        let rng = Rng.create ~seed:(200 + wi) in
        with_conn srv (fun c ->
            for _ = 1 to 10 do
              let n = 1 + Rng.int rng 3 in
              let batch = Array.init n (fun _ -> random_row rng) in
              match Serve.Client.logits_batch c batch with
              | Error _ -> Atomic.incr failures
              | Ok (_, got) ->
                  let expect = offline model batch in
                  Array.iteri
                    (fun i e ->
                      Array.iteri
                        (fun j v ->
                          if Int64.bits_of_float v <> Int64.bits_of_float got.(i).(j) then
                            Atomic.incr failures)
                        e)
                    expect
            done)
      in
      let ths = Array.init 16 (fun wi -> Thread.create worker wi) in
      Array.iter Thread.join ths;
      Alcotest.(check int) "no failures under concurrency" 0 (Atomic.get failures));
  (* with_server joining [run] without a hang IS the drain check. *)
  Sys.remove ckpt

let () =
  Random.self_init ();
  Alcotest.run "serve"
    [
      ( "parity",
        [
          Alcotest.test_case "per-request flush (max_batch=1)" `Quick test_parity_per_request;
          Alcotest.test_case "threshold flush, concurrent clients" `Quick
            test_parity_threshold_flush;
          Alcotest.test_case "deadline flush" `Quick test_parity_deadline_flush;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "malformed bodies survive" `Quick test_malformed_bodies;
          Alcotest.test_case "hot reload mid-load" `Quick test_hot_reload_mid_load;
          Alcotest.test_case "kill and restart" `Quick test_kill_and_restart;
          Alcotest.test_case "concurrent drain" `Quick test_concurrent_drain;
        ] );
    ]
