(* Tests for the SPICE-lite circuit simulator: MNA solver, DC, AC and
   transient analyses, against hand-computed and analytic solutions. *)

module Circuit = Pnc_spice.Circuit
module Mna = Pnc_spice.Mna
module Dc = Pnc_spice.Dc
module Ac = Pnc_spice.Ac
module Transient = Pnc_spice.Transient
module Measure = Pnc_spice.Measure
module Filter = Pnc_signal.Filter
module Rng = Pnc_util.Rng

let approx ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

let check_f ?eps name expected got =
  Alcotest.(check bool) (Printf.sprintf "%s (exp %.6g, got %.6g)" name expected got) true
    (approx ?eps expected got)

(* Mna ---------------------------------------------------------------------- *)

let test_mna_solve () =
  let a = [| [| 2.; 1. |]; [| 1.; 3. |] |] in
  let b = [| 3.; 5. |] in
  let x = Mna.solve_real a b in
  check_f ~eps:1e-12 "x0" 0.8 x.(0);
  check_f ~eps:1e-12 "x1" 1.4 x.(1)

let test_mna_random_residual () =
  let rng = Rng.create ~seed:9 in
  for _ = 1 to 20 do
    let n = 2 + Rng.int rng 8 in
    let a =
      Array.init n (fun i ->
          Array.init n (fun j ->
              (if i = j then float_of_int n else 0.) +. Rng.uniform rng ~lo:(-1.) ~hi:1.))
    in
    let b = Array.init n (fun _ -> Rng.uniform rng ~lo:(-2.) ~hi:2.) in
    let x = Mna.solve_real a b in
    let r = Mna.mat_vec a x in
    Array.iteri (fun i v -> check_f ~eps:1e-8 (Printf.sprintf "residual %d" i) b.(i) v) r
  done

let test_mna_singular () =
  let a = [| [| 1.; 1. |]; [| 1.; 1. |] |] in
  Alcotest.check_raises "singular" Mna.Singular (fun () -> ignore (Mna.solve_real a [| 1.; 2. |]))

let test_mna_complex () =
  (* (1 + j) x = 2 -> x = 1 - j *)
  let a = [| [| { Complex.re = 1.; im = 1. } |] |] in
  let b = [| { Complex.re = 2.; im = 0. } |] in
  let x = Mna.solve_complex a b in
  check_f ~eps:1e-12 "re" 1. x.(0).Complex.re;
  check_f ~eps:1e-12 "im" (-1.) x.(0).Complex.im

(* DC ------------------------------------------------------------------------ *)

let test_voltage_divider () =
  let c = Circuit.create () in
  let vin = Circuit.node c "in" and mid = Circuit.node c "mid" in
  Circuit.vsource c vin Circuit.ground 1.;
  Circuit.resistor c vin mid 1000.;
  Circuit.resistor c mid Circuit.ground 3000.;
  let sol = Dc.solve c in
  check_f ~eps:1e-9 "divider" 0.75 (Dc.voltage sol mid);
  (* Source current: 1 V over 4 kOhm. *)
  check_f ~eps:1e-9 "source current" (-2.5e-4) (Dc.vsource_current sol ~ordinal:0)

let test_current_source () =
  let c = Circuit.create () in
  let n = Circuit.node c "n" in
  Circuit.isource c Circuit.ground n 1e-3;
  Circuit.resistor c n Circuit.ground 2000.;
  let sol = Dc.solve c in
  check_f ~eps:1e-9 "IR drop" 2. (Dc.voltage sol n)

let test_crossbar_weighted_sum () =
  (* Eq. (1): a 2-input resistor crossbar computes a conductance-weighted
     average of its input voltages. *)
  let c = Circuit.create () in
  let v1 = Circuit.node c "v1" and v2 = Circuit.node c "v2" and out = Circuit.node c "out" in
  Circuit.vsource c v1 Circuit.ground 0.8;
  Circuit.vsource c v2 Circuit.ground (-0.4);
  let g1 = 1e-5 and g2 = 2e-5 and gd = 1e-5 in
  Circuit.resistor c v1 out (1. /. g1);
  Circuit.resistor c v2 out (1. /. g2);
  Circuit.resistor c out Circuit.ground (1. /. gd);
  let sol = Dc.solve c in
  let expected = ((g1 *. 0.8) +. (g2 *. -0.4)) /. (g1 +. g2 +. gd) in
  check_f ~eps:1e-9 "weighted sum" expected (Dc.voltage sol out)

let test_vccs () =
  let c = Circuit.create () in
  let inp = Circuit.node c "in" and out = Circuit.node c "out" in
  Circuit.vsource c inp Circuit.ground 0.5;
  Circuit.vccs c ~out_p:Circuit.ground ~out_n:out ~in_p:inp ~in_n:Circuit.ground ~gm:1e-3 ();
  Circuit.resistor c out Circuit.ground 1000.;
  let sol = Dc.solve c in
  (* i = gm*vin pushed into out through 1k: v_out = gm*vin*R = 0.5 *)
  check_f ~eps:1e-9 "vccs gain" 0.5 (Dc.voltage sol out)

let test_capacitor_open_at_dc () =
  let c = Circuit.create () in
  let vin = Circuit.node c "in" and out = Circuit.node c "out" in
  Circuit.vsource c vin Circuit.ground 1.;
  Circuit.resistor c vin out 1e4;
  Circuit.capacitor c out Circuit.ground 1e-6;
  let sol = Dc.solve c in
  (* No DC path to ground: the output floats up to the source. *)
  check_f ~eps:1e-6 "cap open" 1. (Dc.voltage sol out)

let test_diode_like_newton () =
  (* Exponential diode fed by 1 V through 1 kOhm; check KCL at the node. *)
  let c = Circuit.create () in
  let vin = Circuit.node c "in" and a = Circuit.node c "a" in
  Circuit.vsource c vin Circuit.ground 1.;
  Circuit.resistor c vin a 1000.;
  let is = 1e-9 and vt = 0.025 in
  Circuit.diode_like c a Circuit.ground
    ~i_of_v:(fun v -> is *. (exp (Float.min 40. (v /. vt)) -. 1.))
    ~g_of_v:(fun v -> is /. vt *. exp (Float.min 40. (v /. vt)));
  let sol = Dc.solve c in
  let va = Dc.voltage sol a in
  let i_r = (1. -. va) /. 1000. in
  let i_d = is *. (exp (va /. vt) -. 1.) in
  Alcotest.(check bool) "diode forward drop plausible" true (va > 0.3 && va < 0.8);
  check_f ~eps:1e-9 "KCL at node" i_r i_d

let test_egt_common_source_transfer () =
  (* Common-source EGT with resistive load: the DC sweep must be a
     monotonically decreasing sigmoid (this is the ptanh building
     block). *)
  let c = Circuit.create () in
  let vdd = Circuit.node c "vdd" and g = Circuit.node c "g" and d = Circuit.node c "d" in
  Circuit.vsource c vdd Circuit.ground 1.;
  Circuit.vsource c ~name:"Vg" g Circuit.ground 0.;
  Circuit.resistor c vdd d 50_000.;
  Circuit.egt c ~drain:d ~gate:g ~source:Circuit.ground ();
  let values = Pnc_util.Vec.linspace (-1.) 1. 41 in
  let out = Dc.sweep c ~source:"Vg" ~values ~probe:d in
  (* decreasing *)
  for i = 1 to Array.length out - 1 do
    if out.(i) > out.(i - 1) +. 1e-9 then Alcotest.failf "not monotone at %d" i
  done;
  Alcotest.(check bool) "swings low" true (out.(40) < 0.5);
  Alcotest.(check bool) "starts high" true (out.(0) > 0.9)

let test_dc_power () =
  let c = Circuit.create () in
  let vin = Circuit.node c "in" in
  Circuit.vsource c vin Circuit.ground 2.;
  Circuit.resistor c vin Circuit.ground 100.;
  let sol = Dc.solve c in
  check_f ~eps:1e-9 "P = V^2/R" 0.04 (Dc.power sol c)

(* AC ------------------------------------------------------------------------ *)

let rc_lowpass ?(r = 1000.) ?(cap = 1e-6) () =
  let c = Circuit.create () in
  let vin = Circuit.node c "in" and out = Circuit.node c "out" in
  Circuit.vsource c ~ac:1. vin Circuit.ground 0.;
  Circuit.resistor c vin out r;
  Circuit.capacitor c out Circuit.ground cap;
  (c, out)

let test_ac_rc_cutoff () =
  let c, out = rc_lowpass () in
  let fc = Ac.cutoff_hz c ~probe:out in
  check_f ~eps:0.5 "fc = 1/(2 pi RC)" 159.1549 fc

let test_ac_magnitude_profile () =
  let c, out = rc_lowpass () in
  let freqs = [| 1.; 159.1549; 100_000. |] in
  let mags = Ac.magnitude c ~probe:out ~freqs_hz:freqs in
  Alcotest.(check bool) "passband ~1" true (mags.(0) > 0.99);
  check_f ~eps:1e-3 "half-power at fc" (1. /. sqrt 2.) mags.(1);
  Alcotest.(check bool) "stopband attenuated" true (mags.(2) < 0.01)

let test_ac_matches_theory () =
  let r = 800. and cap = 4.7e-7 in
  let c, out = rc_lowpass ~r ~cap () in
  let fo = { Filter.r; c = cap } in
  let freqs = [| 10.; 100.; 1000.; 10_000. |] in
  let mags = Ac.magnitude c ~probe:out ~freqs_hz:freqs in
  Array.iteri
    (fun i f -> check_f ~eps:1e-6 (Printf.sprintf "f=%g" f) (Filter.magnitude_1st fo f) mags.(i))
    freqs

let test_ac_second_order_loading () =
  (* A second RC stage loads the first: the cascade cutoff must sit
     below the ideal (buffered) cascade prediction. *)
  let c = Circuit.create () in
  let vin = Circuit.node c "in" in
  let m = Circuit.node c "m" and out = Circuit.node c "out" in
  Circuit.vsource c ~ac:1. vin Circuit.ground 0.;
  Circuit.resistor c vin m 1000.;
  Circuit.capacitor c m Circuit.ground 1e-6;
  Circuit.resistor c m out 1000.;
  Circuit.capacitor c out Circuit.ground 1e-6;
  let fc_loaded = Ac.cutoff_hz c ~probe:out in
  let ideal =
    Filter.cutoff_2nd_hz
      { Filter.stage1 = { Filter.r = 1000.; c = 1e-6 }; stage2 = { Filter.r = 1000.; c = 1e-6 } }
  in
  Alcotest.(check bool)
    (Printf.sprintf "loading lowers cutoff (loaded %.1f vs ideal %.1f)" fc_loaded ideal)
    true (fc_loaded < ideal)

(* Transient ------------------------------------------------------------------ *)

let test_transient_rc_charge () =
  let c = Circuit.create () in
  let vin = Circuit.node c "in" and out = Circuit.node c "out" in
  Circuit.vsource c ~waveform:(fun _ -> 1.) vin Circuit.ground 1.;
  Circuit.resistor c vin out 1000.;
  Circuit.capacitor c out Circuit.ground 1e-6;
  (* tau = 1 ms; simulate 5 tau with dt = tau/100 *)
  let { Transient.times; samples } =
    Transient.run c ~dt:1e-5 ~steps:500 ~probes:[ out ]
  in
  let v = samples.(0) in
  Array.iteri
    (fun k t ->
      let expected = 1. -. exp (-.t /. 1e-3) in
      if Float.abs (v.(k) -. expected) > 0.01 then
        Alcotest.failf "t=%g: got %f expected %f" t v.(k) expected)
    times

let test_transient_trapezoidal_more_accurate () =
  let build () =
    let c = Circuit.create () in
    let vin = Circuit.node c "in" and out = Circuit.node c "out" in
    Circuit.vsource c ~waveform:(fun _ -> 1.) vin Circuit.ground 1.;
    Circuit.resistor c vin out 1000.;
    Circuit.capacitor c out Circuit.ground 1e-6;
    (c, out)
  in
  let err integrator =
    let c, out = build () in
    let { Transient.times; samples } = Transient.run ~integrator c ~dt:1e-4 ~steps:50 ~probes:[ out ] in
    let acc = ref 0. in
    Array.iteri
      (fun k t -> acc := !acc +. Float.abs (samples.(0).(k) -. (1. -. exp (-.t /. 1e-3))))
      times;
    !acc
  in
  Alcotest.(check bool) "trap beats BE" true
    (err Transient.Trapezoidal < err Transient.Backward_euler)

let test_transient_initial_condition () =
  let c = Circuit.create () in
  let out = Circuit.node c "out" in
  Circuit.resistor c out Circuit.ground 1000.;
  Circuit.capacitor c ~ic:1. out Circuit.ground 1e-6;
  let { Transient.times; samples } = Transient.run c ~dt:1e-5 ~steps:300 ~probes:[ out ] in
  Array.iteri
    (fun k t ->
      let expected = exp (-.t /. 1e-3) in
      if Float.abs (samples.(0).(k) -. expected) > 0.01 then
        Alcotest.failf "discharge t=%g: got %f expected %f" t samples.(0).(k) expected)
    times

let test_transient_sine_attenuation () =
  (* Drive the RC low-pass well above cutoff: output amplitude must be
     attenuated accordingly. *)
  let f_sig = 1600. in
  let c = Circuit.create () in
  let vin = Circuit.node c "in" and out = Circuit.node c "out" in
  Circuit.vsource c ~waveform:(fun t -> sin (2. *. Float.pi *. f_sig *. t)) vin Circuit.ground 0.;
  Circuit.resistor c vin out 1000.;
  Circuit.capacitor c out Circuit.ground 1e-6;
  let { Transient.samples; _ } =
    Transient.run ~integrator:Transient.Trapezoidal c ~dt:2e-6 ~steps:4000 ~probes:[ out ]
  in
  let v = samples.(0) in
  (* steady-state: look at the last half *)
  let tail = Array.sub v 2000 2000 in
  let amp = Array.fold_left (fun m x -> Float.max m (Float.abs x)) 0. tail in
  let expected = Filter.magnitude_1st { Filter.r = 1000.; c = 1e-6 } f_sig in
  check_f ~eps:0.02 "attenuated amplitude" expected amp

(* Measure --------------------------------------------------------------------- *)

let test_fit_first_order_exact () =
  let rng = Rng.create ~seed:21 in
  let a = 0.83 and b = 0.13 in
  let input = Array.init 200 (fun _ -> Rng.uniform rng ~lo:(-1.) ~hi:1.) in
  let state = ref 0. in
  let output =
    Array.map
      (fun u ->
        state := (a *. !state) +. (b *. u);
        !state)
      input
  in
  let a_fit, b_fit = Measure.fit_first_order ~input ~output in
  check_f ~eps:1e-9 "a" a a_fit;
  check_f ~eps:1e-9 "b" b b_fit;
  check_f ~eps:1e-9 "fit residual" 0. (Measure.goodness_of_fit ~input ~output ~a:a_fit ~b:b_fit)

let test_mu_roundtrip () =
  let r = 500. and c = 1e-5 and dt = 1e-3 in
  List.iter
    (fun mu ->
      let { Filter.a; _ } = Filter.discrete_coeffs ~mu ~dt { Filter.r; c } in
      check_f ~eps:1e-9 (Printf.sprintf "mu=%g" mu) mu (Measure.mu_from_coeff ~a ~r ~c ~dt))
    [ 1.; 1.1; 1.2; 1.3 ]

let test_rise_time () =
  (* 10-90% rise of a first-order step response = ln(9) * tau. *)
  let tau = 1e-3 in
  let times = Array.init 10_000 (fun k -> float_of_int (k + 1) *. 1e-6) in
  let samples = Array.map (fun t -> 1. -. exp (-.t /. tau)) times in
  check_f ~eps:1e-5 "rise time" (log 9. *. tau) (Measure.rise_time ~times ~samples)

let test_cutoff_from_response () =
  let fo = { Filter.r = 1000.; c = 1e-6 } in
  let freqs = Pnc_util.Vec.linspace 1. 1000. 2000 in
  let mags = Array.map (Filter.magnitude_1st fo) freqs in
  check_f ~eps:0.5 "interpolated cutoff" (Filter.cutoff_hz fo)
    (Measure.cutoff_from_response ~freqs_hz:freqs ~mags)

let test_transient_current_source_waveform () =
  (* i(t) charging a capacitor: v(t) = (1/C) ∫ i dt for a constant step. *)
  let c = Circuit.create () in
  let out = Circuit.node c "out" in
  Circuit.isource c ~waveform:(fun _ -> 1e-6) Circuit.ground out 0.;
  Circuit.capacitor c out Circuit.ground 1e-6;
  let { Transient.times; samples } = Transient.run c ~dt:1e-4 ~steps:100 ~probes:[ out ] in
  Array.iteri
    (fun k t ->
      let expected = 1e-6 *. t /. 1e-6 in
      if Float.abs (samples.(0).(k) -. expected) > 1e-6 then
        Alcotest.failf "integrator t=%g: %g vs %g" t samples.(0).(k) expected)
    times

let test_floating_node_singular () =
  let c = Circuit.create () in
  let a = Circuit.node c "a" and b = Circuit.node c "b" in
  Circuit.vsource c a Circuit.ground 1.;
  Circuit.resistor c a Circuit.ground 100.;
  (* node b floats: only reachable through nothing *)
  Circuit.resistor c b (Circuit.node c "c") 100.;
  Alcotest.check_raises "floating island is singular" Mna.Singular (fun () ->
      ignore (Dc.solve c))

let test_rc_ladder_transient_vs_ac () =
  (* Three-stage RC ladder: the transient steady-state amplitude under a
     sine matches the AC magnitude at that frequency. *)
  let build () =
    let c = Circuit.create () in
    let vin = Circuit.node c "in" in
    let n1 = Circuit.node c "n1" and n2 = Circuit.node c "n2" and n3 = Circuit.node c "n3" in
    let f_sig = 30. in
    Circuit.vsource c ~ac:1. ~waveform:(fun t -> sin (2. *. Float.pi *. f_sig *. t)) vin
      Circuit.ground 0.;
    List.iter2
      (fun (a, b) _ -> Circuit.resistor c a b 1000.)
      [ (vin, n1); (n1, n2); (n2, n3) ]
      [ (); (); () ];
    List.iter (fun n -> Circuit.capacitor c n Circuit.ground 2e-6) [ n1; n2; n3 ];
    (c, n3, f_sig)
  in
  let c, out, f_sig = build () in
  let mag = (Ac.magnitude c ~probe:out ~freqs_hz:[| f_sig |]).(0) in
  let c2, out2, _ = build () in
  let { Transient.samples; _ } =
    Transient.run ~integrator:Transient.Trapezoidal c2 ~dt:1e-4 ~steps:3000 ~probes:[ out2 ]
  in
  let tail = Array.sub samples.(0) 1500 1500 in
  let amp = Array.fold_left (fun m x -> Float.max m (Float.abs x)) 0. tail in
  check_f ~eps:0.02 "AC matches transient steady state" mag amp

let test_egt_power_positive () =
  let c = Circuit.create () in
  let vdd = Circuit.node c "vdd" and g = Circuit.node c "g" and d = Circuit.node c "d" in
  Circuit.vsource c vdd Circuit.ground 1.;
  Circuit.vsource c g Circuit.ground 0.8;
  Circuit.resistor c vdd d 50_000.;
  Circuit.egt c ~drain:d ~gate:g ~source:Circuit.ground ();
  let sol = Dc.solve c in
  let p = Dc.power sol c in
  Alcotest.(check bool) (Printf.sprintf "power positive (%.2e W)" p) true (p > 0. && p < 1e-3)

(* Drift characterization ------------------------------------------------------ *)

module Drift = Pnc_spice.Drift

(* Golden-file helpers, same protocol as test_golden.ml: byte-exact
   comparison against a checked-in reference; UPDATE_GOLDEN=1 writes
   through to the source tree so the refreshed file lands in version
   control. *)
let is_dir d = Sys.file_exists d && Sys.is_directory d

let first_dir candidates fallback =
  match List.find_opt is_dir candidates with Some d -> d | None -> fallback

let golden_dir_for_update () =
  first_dir [ Filename.concat "../../../test" "golden"; Filename.concat "test" "golden" ] "golden"

let golden_dir_for_read () = first_dir [ "golden"; Filename.concat "test" "golden" ] "golden"

let updating () =
  match Sys.getenv_opt "UPDATE_GOLDEN" with Some ("" | "0") | None -> false | Some _ -> true

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc s)

let check_golden ~file actual =
  if updating () then begin
    write_file (Filename.concat (golden_dir_for_update ()) file) actual;
    Printf.printf "refreshed golden file %s\n" file
  end
  else begin
    let path = Filename.concat (golden_dir_for_read ()) file in
    if not (Sys.file_exists path) then
      Alcotest.failf "missing golden file %s (run UPDATE_GOLDEN=1 dune runtest test)" file;
    let expected = read_file path in
    if not (String.equal expected actual) then
      Alcotest.failf
        "golden mismatch %s (expected %d bytes, got %d)\n%s(refresh with UPDATE_GOLDEN=1 dune runtest test if intentional)"
        file (String.length expected) (String.length actual) actual
  end

(* The survey point that feeds Pnc_core.Variation.drift_mults: R = 330,
   C = 10 uF, sampled at the data rate. Any diff in this table is a
   behaviour change in the transient integrator, the first-order fit,
   or the drift device laws. *)
let drift_r = 330.
let drift_c = 1e-5
let drift_dt = Pnc_core.Printed.dt

let drift_table () =
  let b = Buffer.create 512 in
  Printf.bprintf b "drift characterization r=%.0f c=%.0e dt=%.0e seed=11\n" drift_r drift_c
    drift_dt;
  List.iter
    (fun p ->
      Printf.bprintf b "temp=%5.1fC age=%7.0fh r_mult=%.6f c_mult=%.6f fit_rms=%.2e\n"
        p.Drift.temp_c p.Drift.age_hours p.Drift.r_mult p.Drift.c_mult p.Drift.fit_rms)
    (Drift.survey ~r:drift_r ~c:drift_c ~dt:drift_dt ());
  Buffer.contents b

let test_drift_golden () = check_golden ~file:"drift_char.txt" (drift_table ())

let test_drift_table_deterministic () =
  Alcotest.(check string) "drift table stable" (drift_table ()) (drift_table ())

let test_drift_reference_exact () =
  (* At the reference corner the drifted netlists are the reference
     netlist, so the tau ratios are exactly 1 — bit-exact, not approx. *)
  let p =
    Drift.characterize ~r:drift_r ~c:drift_c ~dt:drift_dt ~temp_c:Drift.reference_temp_c
      ~age_hours:0. ()
  in
  Alcotest.(check bool) "r_mult exactly 1" true (p.Drift.r_mult = 1.);
  Alcotest.(check bool) "c_mult exactly 1" true (p.Drift.c_mult = 1.)

let test_drift_matches_analytic () =
  (* Single-pole sanity: the stage is a true first-order system, so at a
     sampling rate fine relative to tau (= RC = 3.3 ms; dt = tau/22
     here) the fitted tau ratio must recover the device law embedded in
     the netlist to within 1% — r_mult the Arrhenius ratio, c_mult the
     dried-out capacitance including the aged ESR's contribution. At
     the production data rate (dt = 2 ms, tau/dt = 1.65) the discrete
     fit is biased toward 1 by the coarse sampling, so there the check
     is directional only: model <= fitted < 1. *)
  let rel a b = Float.abs (a -. b) /. Float.max 1e-9 (Float.abs a) in
  let fine_dt = 1.5e-4 in
  let check_corner ~what ~model ~fine ~coarse =
    Alcotest.(check bool)
      (Printf.sprintf "%s fine fit %.4f vs model %.4f" what fine model)
      true (rel model fine < 0.01);
    Alcotest.(check bool)
      (Printf.sprintf "%s coarse fit %.4f in [model, 1)" what coarse)
      true
      (coarse >= model -. 1e-9 && coarse < 1.)
  in
  List.iter
    (fun temp_c ->
      let p dt = Drift.characterize ~r:drift_r ~c:drift_c ~dt ~temp_c ~age_hours:0. () in
      let fine = p fine_dt and coarse = p drift_dt in
      check_corner
        ~what:(Printf.sprintf "r_mult(%gC)" temp_c)
        ~model:(Drift.r_model ~temp_c) ~fine:fine.Drift.r_mult ~coarse:coarse.Drift.r_mult;
      Alcotest.(check bool) "fit residual small" true (fine.Drift.fit_rms < 0.05))
    [ 40.; 60.; 85. ];
  List.iter
    (fun age_hours ->
      let p dt =
        Drift.characterize ~r:drift_r ~c:drift_c ~dt ~temp_c:Drift.reference_temp_c ~age_hours ()
      in
      let fine = p fine_dt and coarse = p drift_dt in
      check_corner
        ~what:(Printf.sprintf "c_mult(%gh)" age_hours)
        ~model:(Drift.c_eff_model ~age_hours) ~fine:fine.Drift.c_mult ~coarse:coarse.Drift.c_mult)
    [ 1_000.; 10_000. ]

(* Device counting --------------------------------------------------------------- *)

(* Report ------------------------------------------------------------------------ *)

let test_operating_point_report () =
  let c = Circuit.create () in
  let vin = Circuit.node c "in" and mid = Circuit.node c "mid" in
  Circuit.vsource c ~name:"V1" vin Circuit.ground 1.;
  Circuit.resistor c ~name:"R1" vin mid 1000.;
  Circuit.resistor c ~name:"R2" mid Circuit.ground 1000.;
  let ops = Pnc_spice.Report.operating_point c in
  Alcotest.(check int) "three elements" 3 (List.length ops);
  let r1 = List.find (fun o -> o.Pnc_spice.Report.name = "R1") ops in
  check_f ~eps:1e-9 "R1 voltage" 0.5 r1.Pnc_spice.Report.voltage;
  check_f ~eps:1e-9 "R1 current" 5e-4 r1.Pnc_spice.Report.current;
  check_f ~eps:1e-9 "R1 power" 2.5e-4 r1.Pnc_spice.Report.power;
  (* Conservation: source delivers what the resistors burn. *)
  let v1 = List.find (fun o -> o.Pnc_spice.Report.name = "V1") ops in
  check_f ~eps:1e-9 "source delivers" (-5e-4) (-.Float.abs v1.Pnc_spice.Report.current);
  check_f ~eps:1e-9 "dissipation = resistor power"
    (Pnc_spice.Report.total_dissipation ops)
    (Dc.power (Dc.solve c) c);
  Alcotest.(check bool) "renders" true (String.length (Pnc_spice.Report.to_string ops) > 0)

let test_device_counts () =
  let c = Circuit.create () in
  let a = Circuit.node c "a" and b = Circuit.node c "b" in
  Circuit.vsource c a Circuit.ground 1.;
  Circuit.resistor c a b 100.;
  Circuit.resistor c b Circuit.ground 100.;
  Circuit.capacitor c b Circuit.ground 1e-6;
  Circuit.egt c ~drain:a ~gate:b ~source:Circuit.ground ();
  let tr, r, cap = Circuit.device_counts c in
  Alcotest.(check (triple int int int)) "counts" (1, 2, 1) (tr, r, cap)

(* Property: superposition on random connected resistor networks. ----------- *)

let random_network seed =
  let rng = Rng.create ~seed in
  let n_nodes = 3 + Rng.int rng 5 in
  let build i1 i2 =
    (* current sources with amplitudes i1, i2 into two fixed nodes *)
    let c = Circuit.create () in
    let nodes = Array.init n_nodes (fun i -> Circuit.node c (Printf.sprintf "n%d" i)) in
    (* spanning tree to ground guarantees a connected, well-posed system *)
    let tree_rng = Rng.create ~seed:(seed + 1) in
    Array.iteri
      (fun i node ->
        let parent = if i = 0 then Circuit.ground else nodes.(Rng.int tree_rng i) in
        Circuit.resistor c node parent (Rng.uniform tree_rng ~lo:100. ~hi:10_000.))
      nodes;
    (* a few extra random edges *)
    let extra_rng = Rng.create ~seed:(seed + 2) in
    for _ = 1 to 3 do
      let a = nodes.(Rng.int extra_rng n_nodes) and b = nodes.(Rng.int extra_rng n_nodes) in
      if a <> b then Circuit.resistor c a b (Rng.uniform extra_rng ~lo:100. ~hi:10_000.)
    done;
    Circuit.isource c Circuit.ground nodes.(0) i1;
    Circuit.isource c Circuit.ground nodes.(n_nodes - 1) i2;
    (c, nodes)
  in
  build

let prop_superposition =
  QCheck.Test.make ~count:50 ~name:"MNA is linear: superposition on random networks"
    QCheck.(triple (int_range 0 10_000) (float_range (-1e-3) 1e-3) (float_range (-1e-3) 1e-3))
    (fun (seed, i1, i2) ->
      let build = random_network seed in
      let volts amps1 amps2 =
        let c, nodes = build amps1 amps2 in
        let sol = Dc.solve c in
        Array.map (fun n -> Dc.voltage sol n) nodes
      in
      let both = volts i1 i2 in
      let only1 = volts i1 0. in
      let only2 = volts 0. i2 in
      Array.for_all2
        (fun v (a, b) -> Float.abs (v -. (a +. b)) < 1e-6 *. Float.max 1. (Float.abs v))
        both
        (Array.map2 (fun a b -> (a, b)) only1 only2))

let () =
  Alcotest.run "pnc_spice"
    [
      ( "mna",
        [
          Alcotest.test_case "2x2 solve" `Quick test_mna_solve;
          Alcotest.test_case "random residuals" `Quick test_mna_random_residual;
          Alcotest.test_case "singular raises" `Quick test_mna_singular;
          Alcotest.test_case "complex solve" `Quick test_mna_complex;
        ] );
      ( "dc",
        [
          Alcotest.test_case "voltage divider" `Quick test_voltage_divider;
          Alcotest.test_case "current source" `Quick test_current_source;
          Alcotest.test_case "crossbar weighted sum (Eq. 1)" `Quick test_crossbar_weighted_sum;
          Alcotest.test_case "vccs" `Quick test_vccs;
          Alcotest.test_case "capacitor open at DC" `Quick test_capacitor_open_at_dc;
          Alcotest.test_case "diode Newton" `Quick test_diode_like_newton;
          Alcotest.test_case "EGT common-source transfer" `Quick test_egt_common_source_transfer;
          Alcotest.test_case "dc power" `Quick test_dc_power;
        ] );
      ( "ac",
        [
          Alcotest.test_case "RC cutoff" `Quick test_ac_rc_cutoff;
          Alcotest.test_case "magnitude profile" `Quick test_ac_magnitude_profile;
          Alcotest.test_case "matches filter theory" `Quick test_ac_matches_theory;
          Alcotest.test_case "second-order loading" `Quick test_ac_second_order_loading;
        ] );
      ( "transient",
        [
          Alcotest.test_case "RC charge" `Quick test_transient_rc_charge;
          Alcotest.test_case "trapezoidal accuracy" `Quick test_transient_trapezoidal_more_accurate;
          Alcotest.test_case "initial condition" `Quick test_transient_initial_condition;
          Alcotest.test_case "sine attenuation" `Quick test_transient_sine_attenuation;
          Alcotest.test_case "current source waveform" `Quick test_transient_current_source_waveform;
          Alcotest.test_case "floating node singular" `Quick test_floating_node_singular;
          Alcotest.test_case "RC ladder AC=transient" `Quick test_rc_ladder_transient_vs_ac;
          Alcotest.test_case "EGT power" `Quick test_egt_power_positive;
        ] );
      ( "measure",
        [
          Alcotest.test_case "fit first order" `Quick test_fit_first_order_exact;
          Alcotest.test_case "mu roundtrip" `Quick test_mu_roundtrip;
          Alcotest.test_case "rise time" `Quick test_rise_time;
          Alcotest.test_case "cutoff from response" `Quick test_cutoff_from_response;
        ] );
      ( "drift",
        [
          Alcotest.test_case "survey golden table" `Quick test_drift_golden;
          Alcotest.test_case "table deterministic" `Quick test_drift_table_deterministic;
          Alcotest.test_case "reference corner exact" `Quick test_drift_reference_exact;
          Alcotest.test_case "matches analytic laws" `Quick test_drift_matches_analytic;
        ] );
      ("report", [ Alcotest.test_case "operating point" `Quick test_operating_point_report ]);
      ("devices", [ Alcotest.test_case "device counts" `Quick test_device_counts ]);
      ("properties", [ QCheck_alcotest.to_alcotest prop_superposition ]);
    ]
