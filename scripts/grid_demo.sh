#!/bin/sh
# Sharded-grid crash demonstration: compute the experiment grid once
# with a single shard, then again with SHARDS worker processes of which
# one is SIGKILLed mid-grid, resumed, and merged. The two merged tables
# must be byte-identical — worker count, completion order and crashes
# change wall-clock only, never a digit of the results (docs/GRID.md).
#
# Usage: scripts/grid_demo.sh [OUTDIR]
# (OUTDIR defaults to a fresh temp directory; it keeps the merged
# tables and the status JSONL so CI can upload them as artifacts.)
set -eu

OUT=${1:-$(mktemp -d "${TMPDIR:-/tmp}/grid-demo-XXXXXX")}
SCALE=${SCALE:-smoke}
SHARDS=${SHARDS:-3}
VARIANTS=${VARIANTS:-all}
KILL_AFTER=${KILL_AFTER:-0.4}
# The built binary, not `dune exec`: backgrounded workers must not
# fight over the dune build lock.
BIN=${BIN:-_build/default/bin/adapt_pnc.exe}

GRID_ARGS="--scale $SCALE --variants $VARIANTS"
# DATASETS (space-separated) restricts the grid, e.g. DATASETS="GPOVY PowerCons"
for d in ${DATASETS:-}; do GRID_ARGS="$GRID_ARGS -d $d"; done

mkdir -p "$OUT"

echo "== grid demo: $SCALE scale, $VARIANTS variants, $SHARDS shards, kill one at ${KILL_AFTER}s =="

echo "-- reference: 1 shard, straight through --"
$BIN grid run --cache-dir "$OUT/ref" --shards 1 $GRID_ARGS
$BIN grid merge --cache-dir "$OUT/ref" $GRID_ARGS > "$OUT/merged-ref.txt"

echo "-- sharded: $SHARDS workers, SIGKILL one mid-grid --"
mkdir -p "$OUT/sharded"
pids=""
i=1
while [ "$i" -le "$SHARDS" ]; do
  $BIN grid worker --cache-dir "$OUT/sharded" --worker-id "$i" $GRID_ARGS &
  pids="$pids $!"
  i=$((i + 1))
done
victim=${pids##* }
sleep "$KILL_AFTER"
echo "-- SIGKILL worker pid $victim --"
kill -9 "$victim" 2>/dev/null || echo "   (worker $victim already finished — grid too fast to crash)"
for p in $pids; do wait "$p" || true; done

echo "-- status after the crash (the dead worker's claim shows as stale) --"
$BIN grid status --cache-dir "$OUT/sharded" $GRID_ARGS || true

echo "-- resume: 2 shards finish whatever the crash left behind --"
$BIN grid run --cache-dir "$OUT/sharded" --shards 2 $GRID_ARGS
$BIN grid status --cache-dir "$OUT/sharded" --json $GRID_ARGS > "$OUT/grid-status.jsonl"
$BIN grid merge --cache-dir "$OUT/sharded" $GRID_ARGS > "$OUT/merged-sharded.txt"

echo "-- comparing merged tables --"
cmp "$OUT/merged-ref.txt" "$OUT/merged-sharded.txt"
echo "OK: $SHARDS shards + SIGKILL + resume merge byte-identical to the 1-shard run"

echo "-- merged tables ($OUT/merged-ref.txt) --"
cat "$OUT/merged-ref.txt"
