#!/bin/sh
# End-to-end smoke of the streaming protocol through the real CLI:
# train a smoke-scale model (cached as a grid cell so both runs share
# it), stream a drifting, perturbed sensor stream over it — frozen
# baseline plus online test-time adaptation — under a sequential pool
# and a 4-worker pool with different batch chunking, and require the
# printed accuracy-over-time tables to be byte-identical (the
# pool/batch-invariance contract, checked here with cmp end to end).
#
# Usage: scripts/stream_smoke.sh [OUTDIR]
# OUTDIR keeps the tables and the per-window telemetry JSONL so CI can
# upload them as artifacts.
set -eu

OUT=${1:-$(mktemp -d "${TMPDIR:-/tmp}/stream-smoke-XXXXXX")}
DATASET=${DATASET:-GPOVY}
SCALE=${SCALE:-smoke}
CLI="dune exec --no-print-directory bin/adapt_pnc.exe --"

mkdir -p "$OUT"

# One drifting scenario with every perturbation on, adaptation against
# the frozen baseline (the knobs pinned by test/test_stream.ml).
run_stream() {
  $CLI stream -d "$DATASET" --scale "$SCALE" \
    --samples 96 --drift-at 32 --width 8 \
    --burst-rate 0.2 --dropout-rate 0.05 --wander-amp 0.3 \
    --adapt all --adapt-lr 0.2 --adapt-steps 4 \
    --cache-dir "$OUT/cells" "$@"
}

echo "== stream smoke: $DATASET @ $SCALE scale =="

echo "-- sequential pool (trains and caches the cell) --"
run_stream -j 1 --metrics-out "$OUT/stream-j1.jsonl" >"$OUT/stream-j1.txt"

echo "-- 4-worker pool, ragged batch chunking (reuses the cached cell) --"
run_stream -j 4 --batch-size 3 --metrics-out "$OUT/stream-j4.jsonl" >"$OUT/stream-j4.txt"

echo "-- parity: tables must be byte-identical across pool/batch --"
cmp "$OUT/stream-j1.txt" "$OUT/stream-j4.txt" || {
  echo "POOL/BATCH PARITY VIOLATION between stream-j1.txt and stream-j4.txt" >&2
  diff "$OUT/stream-j1.txt" "$OUT/stream-j4.txt" >&2 || true
  exit 1
}

echo "-- the run exercised what it claims --"
grep -q '^frozen : ' "$OUT/stream-j1.txt"
grep -q '^adapted: ' "$OUT/stream-j1.txt"
grep -q '\*drift' "$OUT/stream-j1.txt"
grep -q 'detected at [0-9]' "$OUT/stream-j1.txt"
grep -q '"event":"stream.window"' "$OUT/stream-j1.jsonl"
grep -q '"event":"stream.done"' "$OUT/stream-j1.jsonl"
grep -q '"event":"stream.drift"' "$OUT/stream-j1.jsonl"

echo "== stream smoke OK (artifacts in $OUT) =="
