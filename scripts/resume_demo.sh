#!/bin/sh
# Crash-and-resume demonstration: train a model straight through, then
# train the same configuration with a simulated crash mid-run and
# resume it from the checkpoint. The two final model checkpoints must
# be byte-identical — resume is exact, not approximate.
#
# Usage: scripts/resume_demo.sh [OUTDIR]
# (OUTDIR defaults to a fresh temp directory; it keeps the checkpoints
# so CI can upload one as an artifact.)
set -eu

OUT=${1:-$(mktemp -d "${TMPDIR:-/tmp}/resume-demo-XXXXXX")}
DATASET=${DATASET:-GPOVY}
SCALE=${SCALE:-smoke}
DIE_AT=${DIE_AT:-3}
CLI="dune exec --no-print-directory bin/adapt_pnc.exe --"

mkdir -p "$OUT/straight" "$OUT/crashed"

echo "== resume demo: $DATASET @ $SCALE scale, crash after epoch $DIE_AT =="

echo "-- straight run --"
$CLI train -d "$DATASET" --scale "$SCALE" --checkpoint-dir "$OUT/straight"

echo "-- crashed run (dies after epoch $DIE_AT) --"
$CLI train -d "$DATASET" --scale "$SCALE" --checkpoint-dir "$OUT/crashed" \
  --die-at-epoch "$DIE_AT"

echo "-- resumed run --"
$CLI train -d "$DATASET" --scale "$SCALE" --checkpoint-dir "$OUT/crashed" \
  --resume

echo "-- comparing final checkpoints --"
cmp "$OUT/straight/model.ckpt" "$OUT/crashed/model.ckpt"
cmp "$OUT/straight/train.ckpt" "$OUT/crashed/train.ckpt"
echo "OK: crash-at-epoch-$DIE_AT + resume is byte-identical to the straight run"

echo "-- checkpoint header ($OUT/straight/model.ckpt) --"
$CLI ckpt inspect "$OUT/straight/model.ckpt"
