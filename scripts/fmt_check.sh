#!/bin/sh
# Minimal format gate for the OCaml sources. The toolchain image has no
# ocamlformat binary, so this enforces the subset that matters for
# diffs staying reviewable: no tab indentation and no trailing
# whitespace in .ml/.mli files (dune files included).
set -eu

cd "$(dirname "$0")/.."

status=0
files=$(find lib bin bench test -name '*.ml' -o -name '*.mli' -o -name 'dune' | sort)

for f in $files; do
  if grep -n "$(printf '\t')" "$f" >/dev/null 2>&1; then
    echo "fmt-check: tab character in $f:" >&2
    grep -n "$(printf '\t')" "$f" | head -3 >&2
    status=1
  fi
  if grep -n ' $' "$f" >/dev/null 2>&1; then
    echo "fmt-check: trailing whitespace in $f:" >&2
    grep -n ' $' "$f" | head -3 >&2
    status=1
  fi
done

if [ "$status" -eq 0 ]; then
  echo "fmt-check: OK ($(echo "$files" | wc -l | tr -d ' ') files)"
fi
exit "$status"
