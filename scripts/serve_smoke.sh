#!/bin/sh
# End-to-end smoke of the real serving daemon: train a smoke-scale
# checkpoint, boot `adapt_pnc serve` on it, drive the HTTP API
# (health, single + batch inference, malformed bodies), then SIGTERM
# it and require a clean graceful drain.
#
# Usage: scripts/serve_smoke.sh [OUTDIR]
# Needs curl. OUTDIR keeps the checkpoint and daemon log so CI can
# upload them as artifacts.
set -eu

OUT=${1:-$(mktemp -d "${TMPDIR:-/tmp}/serve-smoke-XXXXXX")}
DATASET=${DATASET:-GPOVY}
SCALE=${SCALE:-smoke}
PORT=${PORT:-18473}
CLI="dune exec --no-print-directory bin/adapt_pnc.exe --"

command -v curl >/dev/null 2>&1 || { echo "serve_smoke: curl not found" >&2; exit 1; }

mkdir -p "$OUT/ckpt"

echo "== serve smoke: $DATASET @ $SCALE scale on port $PORT =="

echo "-- training the checkpoint --"
$CLI train -d "$DATASET" --scale "$SCALE" --checkpoint-dir "$OUT/ckpt"

echo "-- starting the daemon --"
$CLI serve --load "$OUT/ckpt/model.ckpt" -p "$PORT" --max-batch 8 \
  --max-delay-ms 2 >"$OUT/serve.log" 2>&1 &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true' EXIT

# Wait for the daemon to answer (the CLI builds first, so be patient).
i=0
until curl -sf "http://127.0.0.1:$PORT/healthz" >/dev/null 2>&1; do
  i=$((i + 1))
  [ "$i" -le 120 ] || { echo "daemon never came up"; cat "$OUT/serve.log"; exit 1; }
  kill -0 "$SERVE_PID" 2>/dev/null || { echo "daemon died"; cat "$OUT/serve.log"; exit 1; }
  sleep 0.5
done

echo "-- health --"
curl -sf "http://127.0.0.1:$PORT/healthz"; echo

echo "-- single-series inference --"
curl -sf -X POST --data '{"series":[0.1,-0.2,0.3,0.05]}' \
  "http://127.0.0.1:$PORT/v1/logits" | grep -q '"model_version"'
curl -sf -X POST --data '{"series":[0.1,-0.2,0.3,0.05]}' \
  "http://127.0.0.1:$PORT/v1/predict"; echo

echo "-- batch inference --"
curl -sf -X POST --data '{"batch":[[0.1,0.2,0.3,0.4],[1,2,3,4]]}' \
  "http://127.0.0.1:$PORT/v1/logits" | grep -q '"logits"'

echo "-- malformed bodies get 400s, daemon stays up --"
for body in '{"series":[1,' '{"series":[1],"t":"\uZZZZ"}' '{"batch":[[1,2],[1]]}'; do
  code=$(curl -s -o /dev/null -w '%{http_code}' -X POST --data "$body" \
    "http://127.0.0.1:$PORT/v1/logits")
  [ "$code" = 400 ] || { echo "expected 400 for $body, got $code"; exit 1; }
done
curl -sf "http://127.0.0.1:$PORT/healthz" >/dev/null

echo "-- metrics --"
curl -sf "http://127.0.0.1:$PORT/metrics" | grep -q 'serve.requests'

echo "-- graceful shutdown --"
kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
trap - EXIT
grep -q "drained and stopped" "$OUT/serve.log" || {
  echo "daemon did not report a clean drain"; cat "$OUT/serve.log"; exit 1;
}
echo "OK: daemon served, survived malformed input, and drained cleanly"
