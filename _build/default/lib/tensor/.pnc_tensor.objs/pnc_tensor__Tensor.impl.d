lib/tensor/tensor.ml: Array Float Format Pnc_util Stdlib
