lib/tensor/tensor.mli: Format Pnc_util
