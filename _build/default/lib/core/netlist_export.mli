(** Export trained circuit models to SPICE-lite netlists.

    This closes the loop between the training abstraction and the
    physical circuit: the surrogate crossbar parameters become printed
    resistances (at the technology scale of {!Hardware.g_scale}), the
    learnable filters become RC stages, and the resulting netlist can
    be solved with {!Pnc_spice.Dc} / {!Pnc_spice.Transient} to
    cross-validate the mathematical model — or rendered as a SPICE deck
    with {!Pnc_spice.Deck}. *)

val crossbar :
  ?g_scale:float ->
  Crossbar.t ->
  inputs:float array ->
  Pnc_spice.Circuit.t * Pnc_spice.Circuit.node array
(** Build the resistor-crossbar netlist of Fig. 3(a) with the given
    input voltages applied: one weight resistor per printable θ
    (negative θ drive from an inverted copy of the input), a bias
    resistor to the 1 V rail, and the dummy resistor R_d per output.
    Returns the circuit and the output nodes. Solving its DC operating
    point reproduces Eq. (1) — see [test/test_export.ml]. *)

val filter_stage :
  Filter_layer.t -> stage:int -> channel:int -> Pnc_spice.Circuit.t * Pnc_spice.Circuit.node
(** One trained RC stage as a netlist driven by a 1 V AC source;
    its −3 dB point matches {!Filter_layer.cutoff_hz} for first-order
    stages. *)

val deck : Network.t -> string
(** Human-readable SPICE decks for every crossbar (with inputs held at
    0 V) and filter stage of a trained network, concatenated with
    titles. *)

val dc_check : ?g_scale:float -> Crossbar.t -> inputs:float array -> max_abs_error:float -> bool
(** Solve the exported crossbar at the given inputs and compare each
    output voltage against the training-model forward pass. *)
