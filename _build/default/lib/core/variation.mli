(** Process-variation modeling and the reparameterization strategy of
    Sec. III-A.

    Trainable component values are treated as random variables through
    multiplicative factors: θ = θ₀ ⊙ ε, R = R₀ ⊙ ε_R, C = C₀ ⊙ ε_C.
    The default distribution is the uniform ±level model used for the
    headline ±10 % results; a two-component Gaussian mixture is
    provided to mirror the device-level study the paper cites
    (Rasheed et al.). *)

type dist =
  | Uniform  (** ε ~ U[1 − level, 1 + level] *)
  | Gaussian  (** ε ~ N(1, (level/2)²), clipped to ±3σ *)
  | Gmm of { w1 : float; m1 : float; s1 : float; m2 : float; s2 : float }
      (** two-component mixture of Gaussians around 1 (scaled by
          [level] relative spread) *)

type spec = { level : float; dist : dist }

val none : spec
(** Zero variation: every ε is exactly 1. *)

val uniform : float -> spec
(** [uniform 0.1] is the paper's ±10 % precision-printing model. *)

val gaussian : float -> spec
val default_gmm : float -> spec

val sample_eps : Pnc_util.Rng.t -> spec -> rows:int -> cols:int -> Pnc_tensor.Tensor.t
(** A tensor of independent ε factors. *)

val sample_scalar : Pnc_util.Rng.t -> spec -> float

val sample_mu : Pnc_util.Rng.t -> cols:int -> Pnc_tensor.Tensor.t
(** Per-filter coupling factors µ ~ U[{!Printed.mu_min},
    {!Printed.mu_max}] as a [1 x cols] row. *)

val sample_v0 : Pnc_util.Rng.t -> sigma:float -> cols:int -> Pnc_tensor.Tensor.t
(** Random initial filter voltages V₀ ~ N(0, σ²), [1 x cols]. *)

(** {1 Per-forward-pass draw}

    A [draw] bundles one joint sample of every non-trainable random
    input of a forward pass. Trainable-parameter ε tensors are sampled
    lazily per parameter via {!eps_for} so models of any shape can use
    the same draw. *)

type draw = {
  rng : Pnc_util.Rng.t;
  spec : spec;
  v0_sigma : float;
  mirror : bool;  (** reflect every sample around its mean (antithetic) *)
}

val make_draw : ?v0_sigma:float -> Pnc_util.Rng.t -> spec -> draw
(** Default [v0_sigma = 0.05] V. *)

val antithetic_pair : ?v0_sigma:float -> Pnc_util.Rng.t -> spec -> draw * draw
(** A draw and its mirror image (ε ↦ 2 − ε, µ reflected in its range,
    V₀ negated): averaging a loss over the pair cancels the linear part
    of its dependence on the variation factors — a variance-reduced
    two-sample Monte-Carlo estimate (extension; not in the paper). *)

val deterministic : draw
(** No variation, zero V₀, µ fixed at 1 — used for clean evaluation. *)

val is_deterministic : draw -> bool

val eps_for : draw -> rows:int -> cols:int -> Pnc_tensor.Tensor.t
val mu_for : draw -> cols:int -> Pnc_tensor.Tensor.t
val v0_for : draw -> cols:int -> Pnc_tensor.Tensor.t
