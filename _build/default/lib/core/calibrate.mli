(** Post-print per-chip calibration ("trimming").

    Variation-aware training makes the *design* robust in expectation;
    a complementary printed-electronics practice is to trim each
    manufactured instance after printing: measure it, then adjust the
    few components that are cheap to program — here the crossbar bias
    conductances — against a small calibration set, while the rest of
    the (already printed) circuit stays fixed.

    A manufactured instance is represented by a replayable
    {!Variation.draw}: the same ε, µ and V₀ samples on every forward
    pass (the physical chip does not re-randomize itself). *)

val chip : seed:int -> Variation.spec -> unit -> Variation.draw
(** A factory for one manufactured instance: every call returns a draw
    that replays the identical variation sample stream, so repeated
    forward passes see the same physical chip. *)

val bias_params : Network.t -> Pnc_autodiff.Var.t list
(** The crossbar bias parameters θ_b of every layer — the trimmable
    subset. *)

val trim :
  ?epochs:int ->
  ?lr:float ->
  chip:(unit -> Variation.draw) ->
  Network.t ->
  Pnc_data.Dataset.t ->
  unit
(** Gradient-trim the biases of this chip against the calibration set
    (default 60 epochs of Adam at lr 0.02). Only θ_b moves; everything
    else keeps its printed value. *)

type outcome = { before : float; after : float }

val evaluate :
  ?epochs:int ->
  ?lr:float ->
  chip:(unit -> Variation.draw) ->
  Network.t ->
  calibration:Pnc_data.Dataset.t ->
  test:Pnc_data.Dataset.t ->
  outcome
(** Accuracy of this chip on [test] before and after trimming on
    [calibration]. Restores the un-trimmed biases before returning, so
    the design is unchanged (each chip would be trimmed separately). *)
