module Circuit = Pnc_spice.Circuit
module Transient = Pnc_spice.Transient
module Measure = Pnc_spice.Measure
module Rng = Pnc_util.Rng

type extraction = { r : float; c : float; r_load : float; mu : float; fit_rms : float }

(* Band-limited excitation: a few sines below the data-rate Nyquist. *)
let excitation rng =
  let comps =
    (* Keep the excitation well below the data-rate Nyquist so the
       zero-order-hold assumption of the discrete fit holds. *)
    Array.init 4 (fun _ ->
        ( Rng.uniform rng ~lo:0.2 ~hi:0.9,
          Rng.uniform rng ~lo:0.5 ~hi:(0.04 /. Printed.dt),
          Rng.uniform rng ~lo:0. ~hi:(2. *. Float.pi) ))
  in
  fun t ->
    Array.fold_left (fun acc (a, f, p) -> acc +. (a *. sin ((2. *. Float.pi *. f *. t) +. p))) 0. comps

let extract ?(seed = 0) ?(n_samples = 256) ~r ~c ~r_load () =
  let rng = Rng.create ~seed in
  let wave = excitation rng in
  let circ = Circuit.create () in
  let vin = Circuit.node circ "in" and out = Circuit.node circ "out" in
  Circuit.vsource circ ~waveform:wave vin Circuit.ground 0.;
  Circuit.resistor circ vin out r;
  Circuit.capacitor circ out Circuit.ground c;
  Circuit.resistor circ out Circuit.ground r_load;
  (* Simulate at a finer grid, subsample at the training rate. *)
  let oversample = 20 in
  let dt_sim = Printed.dt /. float_of_int oversample in
  let steps = n_samples * oversample in
  let { Transient.times; samples } =
    Transient.run ~integrator:Transient.Trapezoidal circ ~dt:dt_sim ~steps ~probes:[ out ]
  in
  let output = Array.init n_samples (fun k -> samples.(0).(((k + 1) * oversample) - 1)) in
  let input = Array.init n_samples (fun k -> wave times.((((k + 1) * oversample) - 1))) in
  let a, b = Measure.fit_first_order ~input ~output in
  let mu = Measure.mu_from_coeff ~a ~r ~c ~dt:Printed.dt in
  { r; c; r_load; mu; fit_rms = Measure.goodness_of_fit ~input ~output ~a ~b }

let survey ?(seed = 7) () =
  let rs = [ 330.; 1000. ] in
  let cs = [ 1e-6; 1e-5 ] in
  let loads = [ 6_800.; 33_000.; 330_000. ] in
  List.concat_map
    (fun r ->
      List.concat_map
        (fun c -> List.map (fun r_load -> extract ~seed ~r ~c ~r_load ()) loads)
        cs)
    rs

let mu_range xs =
  List.fold_left
    (fun (lo, hi) e -> (Float.min lo e.mu, Float.max hi e.mu))
    (infinity, neg_infinity) xs

(* Matching a = RC/(µRC + Δt) against the backward-Euler discretization
   of C dv/dt = (u − v)/R − v/R_load gives µRC + Δt = RC + Δt(1 + R/R_load),
   i.e. µ = 1 + Δt/(R_load·C): the shunted charge per step relative to
   the load's time constant. *)
let mu_theory ~c ~r_load = 1. +. (Printed.dt /. (r_load *. c))
