(** Post-training conductance discretization.

    Additive printing cannot realize a continuum of conductances: ink
    layering and geometry quantize what is actually printable. This
    module snaps the trained surrogate conductances |θ| to a uniform
    grid of [levels] values over the printable window (sub-threshold
    values round to "not printed"), and reports how the classifier
    survives — the printing analogue of weight quantization. *)

val quantize_value : levels:int -> float -> float
(** Snap one surrogate θ (sign preserved): |θ| below the print
    threshold becomes 0, otherwise it moves to the nearest of [levels]
    uniformly spaced magnitudes spanning [threshold, 1]. *)

val quantize_network : levels:int -> Network.t -> unit
(** In-place quantization of every crossbar θ (filters and activations
    are left untouched — their values are set by geometry, not ink
    steps). *)

val with_quantized : levels:int -> Network.t -> (unit -> 'a) -> 'a
(** Run the thunk with the network temporarily quantized; the original
    parameter values are restored afterwards (also on exceptions). *)

val accuracy_ladder :
  levels_list:int list ->
  Network.t ->
  Pnc_data.Dataset.t ->
  (int * float) list
(** Deterministic accuracy after quantizing to each level count. The
    original weights are restored between entries. *)
