module Circuit = Pnc_spice.Circuit
module Dc = Pnc_spice.Dc

type design = { r_load : float; r_degen : float; egt : Circuit.egt_params }

let default_design =
  {
    r_load = 300_000.;
    r_degen = 30_000.;
    egt = { Circuit.i0 = 1e-5; vth = 0.1; vss = 0.2; vds0 = 0.3 };
  }

let build ?(design = default_design) () =
  let circ = Circuit.create () in
  let vdd = Circuit.node circ "vdd" in
  let vin = Circuit.node circ "vin" in
  let out = Circuit.node circ "out" in
  let mid = Circuit.node circ "mid" in
  Circuit.vsource circ ~name:"Vdd" vdd Circuit.ground Printed.v_supply;
  Circuit.vsource circ ~name:"Vin" vin Circuit.ground 0.;
  (* Common-source n-EGT with source degeneration and a second,
     diode-connected EGT in the degeneration path shaping the knee —
     the 2T/2R printed activation of Fig. 3(b). *)
  Circuit.resistor circ ~name:"R1" vdd out design.r_load;
  Circuit.egt circ ~name:"T1" ~params:design.egt ~drain:out ~gate:vin ~source:mid ();
  Circuit.resistor circ ~name:"R2" mid Circuit.ground design.r_degen;
  Circuit.egt circ ~name:"T2" ~params:design.egt ~drain:mid ~gate:mid ~source:Circuit.ground ();
  (circ, out)

let transfer ?design ~v_in () =
  let circ, out = build ?design () in
  Dc.sweep circ ~source:"Vin" ~values:v_in ~probe:out

type eta = { eta1 : float; eta2 : float; eta3 : float; eta4 : float }

let eval_eta e v = e.eta1 +. (e.eta2 *. tanh ((v -. e.eta3) *. e.eta4))

let rms_residual ~v_in ~v_out e =
  let n = Array.length v_in in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    acc := !acc +. ((eval_eta e v_in.(i) -. v_out.(i)) ** 2.)
  done;
  sqrt (!acc /. float_of_int n)

let fit_eta ~v_in ~v_out =
  assert (Array.length v_in = Array.length v_out && Array.length v_in >= 8);
  let lo = Pnc_util.Vec.min v_out and hi = Pnc_util.Vec.max v_out in
  (* Initial guess from the curve's geometry; refine each parameter by
     shrinking-step coordinate descent with two symmetric starts
     (rising and falling curves). *)
  let refine start =
    let best = ref start in
    let best_err = ref (rms_residual ~v_in ~v_out start) in
    let try_candidate e =
      let err = rms_residual ~v_in ~v_out e in
      if err < !best_err then begin
        best := e;
        best_err := err
      end
    in
    let steps = [| 0.2; 0.05; 0.01; 0.002 |] in
    Array.iter
      (fun step ->
        for _ = 1 to 40 do
          let e = !best in
          try_candidate { e with eta1 = e.eta1 +. step };
          try_candidate { e with eta1 = e.eta1 -. step };
          try_candidate { e with eta2 = e.eta2 +. step };
          try_candidate { e with eta2 = e.eta2 -. step };
          try_candidate { e with eta3 = e.eta3 +. step };
          try_candidate { e with eta3 = e.eta3 -. step };
          try_candidate { e with eta4 = e.eta4 *. (1. +. step) };
          try_candidate { e with eta4 = e.eta4 /. (1. +. step) }
        done)
      steps;
    (!best, !best_err)
  in
  let mid_level = (lo +. hi) /. 2. and amp = (hi -. lo) /. 2. in
  let start_rising = { eta1 = mid_level; eta2 = amp; eta3 = 0.; eta4 = 2. } in
  let start_falling = { eta1 = mid_level; eta2 = -.amp; eta3 = 0.; eta4 = 2. } in
  let (e1, r1) = refine start_rising and (e2, r2) = refine start_falling in
  if r1 <= r2 then (e1, r1) else (e2, r2)

let characterize ?design () =
  let v_in = Pnc_util.Vec.linspace (-1.) 1. 81 in
  let v_out = transfer ?design ~v_in () in
  let e, rms = fit_eta ~v_in ~v_out in
  (* The raw stage inverts; report the equivalent after the crossbar
     inverter, i.e. the fit of -V_out(V_in). *)
  let e = if e.eta2 < 0. then { e with eta1 = -.e.eta1; eta2 = -.e.eta2 } else e in
  (e, rms)
