module T = Pnc_tensor.Tensor
module Var = Pnc_autodiff.Var

type arch = Ptpnc | Adapt

let arch_name = function Ptpnc -> "pTPNC" | Adapt -> "ADAPT-pNC"

type layer = Crossbar.t * Filter_layer.t * Ptanh.t

type t = { arch : arch; n_in : int; n_hidden : int; n_classes : int; layers : layer list }

let create ?hidden rng arch ~inputs ~classes =
  let hidden =
    match hidden with Some h -> h | None -> ( match arch with Ptpnc -> 3 | Adapt -> 6)
  in
  let filter_order =
    match arch with Ptpnc -> Filter_layer.First | Adapt -> Filter_layer.Second
  in
  let layer ~n_in ~n_out =
    ( Crossbar.create rng ~inputs:n_in ~outputs:n_out,
      Filter_layer.create rng filter_order ~features:n_out,
      Ptanh.create rng ~features:n_out )
  in
  {
    arch;
    n_in = inputs;
    n_hidden = hidden;
    n_classes = classes;
    layers = [ layer ~n_in:inputs ~n_out:hidden; layer ~n_in:hidden ~n_out:classes ];
  }

let arch net = net.arch
let inputs net = net.n_in
let classes net = net.n_classes
let hidden net = net.n_hidden
let layers net = net.layers

let params net =
  List.concat_map
    (fun (cb, fl, act) -> Crossbar.params cb @ Filter_layer.params fl @ Ptanh.params act)
    net.layers

let n_params net =
  List.fold_left (fun acc v -> acc + T.numel (Var.value v)) 0 (params net)

(* One sampled physical instance of a layer, shared across time steps:
   the variation-folded component values are realized once, only the
   input-dependent computation runs per step. *)
type layer_real = {
  cb : Crossbar.realization;
  filt : Filter_layer.realization;
  act : Ptanh.realization;
  mutable filt_state : Filter_layer.state;
}

let realize_layers_selective ~draw_crossbar ~draw_filter ~draw_act ~batch net =
  List.map
    (fun (cb, fl, act) ->
      let filt = Filter_layer.realize ~draw:draw_filter fl in
      {
        cb = Crossbar.realize ~draw:draw_crossbar cb;
        filt;
        act = Ptanh.realize ~draw:draw_act act;
        filt_state = Filter_layer.init_state filt ~batch;
      })
    net.layers

let step_layer lr x =
  let summed = Crossbar.apply lr.cb x in
  let state', filtered = Filter_layer.step lr.filt lr.filt_state summed in
  lr.filt_state <- state';
  Ptanh.apply lr.act filtered

type readout = Integrated | Last_step

let forward_multi_readout ~readout ~draw_crossbar ~draw_filter ~draw_act net steps =
  assert (Array.length steps > 0);
  let batch = T.rows steps.(0) in
  let reals = realize_layers_selective ~draw_crossbar ~draw_filter ~draw_act ~batch net in
  (* Default read-out: the class scores integrate the output voltage
     over the window — physically one slow RC stage per output (counted
     by Hardware). Reading only the final instant (Last_step, kept for
     the ablation bench) forgets transient evidence faster than any
     printable RC can retain it. *)
  let acc = ref None in
  Array.iter
    (fun x_t ->
      let signal = ref (Var.const x_t) in
      List.iter (fun lr -> signal := step_layer lr !signal) reals;
      acc :=
        Some
          (match (readout, !acc) with
          | Last_step, _ | Integrated, None -> !signal
          | Integrated, Some a -> Var.add a !signal))
    steps;
  match (readout, !acc) with
  | Integrated, Some sum -> Var.scale (1. /. float_of_int (Array.length steps)) sum
  | Last_step, Some last -> last
  | _, None -> assert false

let forward_multi_selective ~draw_crossbar ~draw_filter ~draw_act net steps =
  forward_multi_readout ~readout:Integrated ~draw_crossbar ~draw_filter ~draw_act net steps

let forward_readout ~readout ~draw net x =
  let steps = Array.init (T.cols x) (fun k -> T.col x k) in
  forward_multi_readout ~readout ~draw_crossbar:draw ~draw_filter:draw ~draw_act:draw net steps

let forward_multi ~draw net steps =
  forward_multi_selective ~draw_crossbar:draw ~draw_filter:draw ~draw_act:draw net steps

let forward_selective ~draw_crossbar ~draw_filter ~draw_act net x =
  let steps = Array.init (T.cols x) (fun k -> T.col x k) in
  forward_multi_selective ~draw_crossbar ~draw_filter ~draw_act net steps

let forward ~draw net x =
  let time = T.cols x in
  let steps = Array.init time (fun k -> T.col x k) in
  forward_multi ~draw net steps

let predict ?(draw = Variation.deterministic) net x =
  T.argmax_rows (Var.value (forward ~draw net x))

let clamp net =
  List.iter
    (fun (cb, fl, act) ->
      Crossbar.clamp cb;
      Filter_layer.clamp fl;
      Ptanh.clamp act)
    net.layers
