(** Hardware cost model: device counts and static power (Table III).

    Counting rules (per pTPB layer, documented in DESIGN.md):
    - one weight resistor per surrogate θ whose magnitude is printable
      (θ below {!Printed.theta_print_threshold} rounds to "not
      printed"), plus one bias resistor per output and one dummy
      resistor R_d per output;
    - one inverter (2 EGTs + 2 resistors, Fig. 3c) per input line that
      feeds at least one negative weight, and one per negative bias;
    - one ptanh circuit (2 EGTs + 2 resistors, Fig. 3b) per neuron;
    - one resistor and one capacitor per filter stage (so the SO-LF
      doubles the reactive components — the paper's ≈1.9x device
      overhead).

    Power model: static dissipation at V_b = 1 V. Crossbar conductance
    magnitudes are free up to a global scale (Eq. 1 only fixes ratios),
    and the proposed design exploits this by printing at the
    high-resistance end ({!g_scale} is 10x smaller for ADAPT-pNC),
    which is the source of the paper's ≈91 % power saving. *)

type counts = { transistors : int; resistors : int; capacitors : int }

val zero : counts
val add : counts -> counts -> counts
val total : counts -> int

val of_network : Network.t -> counts

val g_scale : Network.arch -> float
(** Conductance (siemens) that a surrogate magnitude of 1.0 is printed
    at: {!Printed.crossbar_g_max} for the baseline, a tenth of it for
    ADAPT-pNC. *)

val power_w : Network.t -> float
(** Static power in watts under the model above. *)

val power_mw : Network.t -> float

val describe : counts -> string
