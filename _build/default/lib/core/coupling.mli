(** Extraction of the coupling factor µ from circuit simulation
    (Sec. III-2).

    The paper determines µ ∈ [1, 1.3] by SPICE-simulating printed
    filter stages loaded by the downstream circuitry. Here the same
    experiment runs on the {!Pnc_spice} simulator: a first-order RC
    stage driving a resistive load (the input resistance of the next
    stage / crossbar) is excited with a band-limited waveform, the
    response is sampled at the training discretization {!Printed.dt},
    the discrete coefficient [a] is least-squares fitted, and µ is
    recovered from [a = RC / (µRC + Δt)]. *)

type extraction = {
  r : float;  (** filter resistance (Ω) *)
  c : float;  (** filter capacitance (F) *)
  r_load : float;  (** load resistance (Ω) *)
  mu : float;  (** extracted coupling factor *)
  fit_rms : float;  (** residual of the first-order fit *)
}

val extract : ?seed:int -> ?n_samples:int -> r:float -> c:float -> r_load:float -> unit -> extraction
(** One extraction. [n_samples] is the number of Δt-spaced samples of
    the fitted waveform (default 256). *)

val survey : ?seed:int -> unit -> extraction list
(** Sweep printable R and C against representative load resistances
    (crossbar input resistance down to a few kΩ). *)

val mu_range : extraction list -> float * float

val mu_theory : c:float -> r_load:float -> float
(** First-order prediction µ ≈ 1 + Δt / (R_load · C) — the fraction of
    each step's charge shunted into the load — for cross-checking the
    extraction. *)
