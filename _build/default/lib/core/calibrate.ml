module T = Pnc_tensor.Tensor
module Var = Pnc_autodiff.Var
module Rng = Pnc_util.Rng
module Optimizer = Pnc_optim.Optimizer

let chip ~seed spec =
  let frozen = Rng.create ~seed in
  fun () -> Variation.make_draw (Rng.copy frozen) spec

let bias_params net =
  List.concat_map
    (fun (cb, _, _) ->
      match Crossbar.params cb with [ _theta; theta_b ] -> [ theta_b ] | _ -> assert false)
    (Network.layers net)

let trim ?(epochs = 60) ?(lr = 0.02) ~chip net dataset =
  let x, y = Train.to_xy dataset in
  let params = bias_params net in
  let opt = Optimizer.adam ~params () in
  for _ = 1 to epochs do
    Optimizer.zero_grads opt;
    let logits = Network.forward ~draw:(chip ()) net x in
    Var.backward (Pnc_autodiff.Loss.softmax_cross_entropy ~logits ~labels:y);
    Optimizer.step opt ~lr;
    Network.clamp net
  done

type outcome = { before : float; after : float }

let chip_accuracy ~chip net dataset =
  let x, y = Train.to_xy dataset in
  let pred = T.argmax_rows (Var.value (Network.forward ~draw:(chip ()) net x)) in
  Pnc_util.Stats.accuracy ~pred ~truth:y

let evaluate ?epochs ?lr ~chip net ~calibration ~test =
  let saved = List.map (fun p -> T.copy (Var.value p)) (bias_params net) in
  let before = chip_accuracy ~chip net test in
  trim ?epochs ?lr ~chip net calibration;
  let after = chip_accuracy ~chip net test in
  (* Restore the design: each physical chip is trimmed independently. *)
  List.iter2
    (fun p s ->
      let t = Var.value p in
      for r = 0 to T.rows t - 1 do
        for c = 0 to T.cols t - 1 do
          T.set t r c (T.get s r c)
        done
      done)
    (bias_params net) saved;
  { before; after }
