lib/core/ptanh_circuit.mli: Pnc_spice
