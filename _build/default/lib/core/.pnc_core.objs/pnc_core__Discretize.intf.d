lib/core/discretize.mli: Network Pnc_data
