lib/core/train.mli: Model Pnc_data Pnc_tensor Pnc_util Variation
