lib/core/netlist_export.ml: Array Buffer Crossbar Filter_layer Float List Network Option Pnc_spice Pnc_tensor Printed Printf
