lib/core/yield.mli: Model Pnc_data Pnc_util Variation
