lib/core/sensitivity.mli: Network Pnc_data Pnc_util
