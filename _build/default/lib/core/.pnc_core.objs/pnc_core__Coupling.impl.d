lib/core/coupling.ml: Array Float List Pnc_spice Pnc_util Printed
