lib/core/variation.ml: Float Pnc_tensor Pnc_util Printed
