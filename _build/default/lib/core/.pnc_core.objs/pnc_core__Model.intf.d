lib/core/model.mli: Elman Network Pnc_autodiff Pnc_tensor Variation
