lib/core/calibrate.mli: Network Pnc_autodiff Pnc_data Variation
