lib/core/ptanh.mli: Pnc_autodiff Pnc_tensor Pnc_util Variation
