lib/core/filter_layer.ml: Array Float List Pnc_autodiff Pnc_signal Pnc_tensor Pnc_util Printed Variation
