lib/core/hardware.ml: Crossbar Filter_layer Float Fun List Network Pnc_tensor Printed Printf Ptanh
