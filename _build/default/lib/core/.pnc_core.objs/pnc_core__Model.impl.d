lib/core/model.ml: Elman Network Pnc_autodiff Pnc_tensor Variation
