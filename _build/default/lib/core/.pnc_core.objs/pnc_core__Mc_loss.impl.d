lib/core/mc_loss.ml: Model Pnc_autodiff Pnc_tensor Variation
