lib/core/crossbar.ml: Float Pnc_autodiff Pnc_tensor Pnc_util Printed Variation
