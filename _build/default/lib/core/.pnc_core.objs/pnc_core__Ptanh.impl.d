lib/core/ptanh.ml: Array Float Pnc_autodiff Pnc_tensor Pnc_util Variation
