lib/core/coupling.mli:
