lib/core/sensitivity.ml: List Network Pnc_autodiff Pnc_tensor Pnc_util Printf String Train Variation
