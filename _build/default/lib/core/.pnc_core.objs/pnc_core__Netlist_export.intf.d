lib/core/netlist_export.mli: Crossbar Filter_layer Network Pnc_spice
