lib/core/hardware.mli: Network
