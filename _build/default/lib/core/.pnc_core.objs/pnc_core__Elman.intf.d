lib/core/elman.mli: Pnc_autodiff Pnc_tensor Pnc_util
