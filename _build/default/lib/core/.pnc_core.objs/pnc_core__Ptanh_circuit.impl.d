lib/core/ptanh_circuit.ml: Array Pnc_spice Pnc_util Printed
