lib/core/crossbar.mli: Pnc_autodiff Pnc_tensor Pnc_util Variation
