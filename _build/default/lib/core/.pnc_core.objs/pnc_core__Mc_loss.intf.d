lib/core/mc_loss.mli: Model Pnc_autodiff Pnc_tensor Pnc_util Variation
