lib/core/network.mli: Crossbar Filter_layer Pnc_autodiff Pnc_tensor Pnc_util Ptanh Variation
