lib/core/discretize.ml: Crossbar Float Fun List Network Pnc_autodiff Pnc_tensor Pnc_util Printed Train
