lib/core/yield.ml: Array Float List Model Pnc_util Printf Train Variation
