lib/core/printed.mli:
