lib/core/filter_layer.mli: Pnc_autodiff Pnc_util Variation
