lib/core/calibrate.ml: Crossbar List Network Pnc_autodiff Pnc_optim Pnc_tensor Pnc_util Train Variation
