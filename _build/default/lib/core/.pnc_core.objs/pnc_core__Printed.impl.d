lib/core/printed.ml: Float
