lib/core/elman.ml: Array List Pnc_autodiff Pnc_tensor Pnc_util
