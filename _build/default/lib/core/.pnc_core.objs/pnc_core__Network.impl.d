lib/core/network.ml: Array Crossbar Filter_layer List Pnc_autodiff Pnc_tensor Ptanh Variation
