lib/core/train.ml: Array List Mc_loss Model Pnc_autodiff Pnc_data Pnc_optim Pnc_tensor Pnc_util Variation
