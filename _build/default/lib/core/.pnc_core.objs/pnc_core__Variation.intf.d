lib/core/variation.mli: Pnc_tensor Pnc_util
