(** Circuit-level grounding of the printed tanh activation (Fig. 3b).

    {!Ptanh} trains the abstract parameters η₁..η₄; this module closes
    the loop to the hardware the paper assumes: it builds the two-EGT /
    two-resistor nonlinear transfer circuit in the SPICE-lite engine,
    DC-sweeps it, and least-squares fits

      V_out ≈ η₁ + η₂ · tanh((V_in − η₃) · η₄)

    to the simulated transfer curve — the printed analogue of reading
    the η values off a Cadence sweep with the pPDK. The raw circuit is
    inverting (common-source stage); the following crossbar inverter
    absorbs the sign, so the fit reports η₂ < 0 for the raw curve and
    the helper {!characterize} returns the non-inverted equivalent. *)

type design = {
  r_load : float;  (** pull-up resistor from the 1 V rail (Ω) *)
  r_degen : float;  (** source-degeneration resistor (Ω) *)
  egt : Pnc_spice.Circuit.egt_params;
}

val default_design : design

val build : ?design:design -> unit -> Pnc_spice.Circuit.t * Pnc_spice.Circuit.node
(** The activation circuit with its input source named "Vin"; returns
    the netlist and the output node. *)

val transfer : ?design:design -> v_in:float array -> unit -> float array
(** DC transfer curve V_out(V_in). *)

type eta = { eta1 : float; eta2 : float; eta3 : float; eta4 : float }

val fit_eta : v_in:float array -> v_out:float array -> eta * float
(** Least-squares fit of the four-parameter tanh to a curve; returns
    the parameters and the RMS residual. Multi-start coordinate
    descent — the curve is 1-D and smooth, so this is reliable. *)

val eval_eta : eta -> float -> float

val characterize : ?design:design -> unit -> eta * float
(** Sweep [-1, 1] V, fit, and return the non-inverted equivalent
    (η₂ > 0) with the RMS residual — values directly comparable to the
    windows {!Ptanh.clamp} enforces during training. *)
