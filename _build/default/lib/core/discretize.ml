module T = Pnc_tensor.Tensor
module Var = Pnc_autodiff.Var

let quantize_value ~levels th =
  assert (levels >= 2);
  let lo = Printed.theta_print_threshold in
  let mag = Float.abs th in
  if mag < lo then 0.
  else
    let steps = float_of_int (levels - 1) in
    let pos = (Float.min 1. mag -. lo) /. (1. -. lo) in
    let snapped = lo +. (Float.round (pos *. steps) /. steps *. (1. -. lo)) in
    if th < 0. then -.snapped else snapped

let iter_theta net f =
  List.iter
    (fun (cb, _, _) ->
      List.iter
        (fun p ->
          let t = Var.value p in
          for r = 0 to T.rows t - 1 do
            for c = 0 to T.cols t - 1 do
              T.set t r c (f (T.get t r c))
            done
          done)
        (Crossbar.params cb))
    (Network.layers net)

let quantize_network ~levels net = iter_theta net (quantize_value ~levels)

let snapshot_theta net =
  List.concat_map
    (fun (cb, _, _) -> List.map (fun p -> T.copy (Var.value p)) (Crossbar.params cb))
    (Network.layers net)

let restore_theta net snap =
  let remaining = ref snap in
  List.iter
    (fun (cb, _, _) ->
      List.iter
        (fun p ->
          match !remaining with
          | saved :: rest ->
              remaining := rest;
              let t = Var.value p in
              for r = 0 to T.rows t - 1 do
                for c = 0 to T.cols t - 1 do
                  T.set t r c (T.get saved r c)
                done
              done
          | [] -> assert false)
        (Crossbar.params cb))
    (Network.layers net)

let with_quantized ~levels net f =
  let snap = snapshot_theta net in
  quantize_network ~levels net;
  Fun.protect ~finally:(fun () -> restore_theta net snap) f

let accuracy_ladder ~levels_list net dataset =
  let x, y = Train.to_xy dataset in
  List.map
    (fun levels ->
      let acc =
        with_quantized ~levels net (fun () ->
            Pnc_util.Stats.accuracy ~pred:(Network.predict net x) ~truth:y)
      in
      (levels, acc))
    levels_list
