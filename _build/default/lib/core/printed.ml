let v_supply = 1.0
let crossbar_r_min = 1e5
let crossbar_r_max = 1e7
let crossbar_g_min = 1. /. crossbar_r_max
let crossbar_g_max = 1. /. crossbar_r_min
let theta_print_threshold = crossbar_g_min /. crossbar_g_max (* 0.01 *)

let clamp_theta th =
  let mag = Float.abs th in
  if mag < theta_print_threshold then th
  else
    let mag = Float.min 1.0 mag in
    if th < 0. then -.mag else mag

let filter_r_min = 10.
let filter_r_max = 1000.
let filter_c_min = 1e-7
let filter_c_max = 1e-4
let clamp_filter_r r = Float.max filter_r_min (Float.min filter_r_max r)
let clamp_filter_c c = Float.max filter_c_min (Float.min filter_c_max c)
let dt = 0.002
let mu_min = 1.0
let mu_max = 1.3
