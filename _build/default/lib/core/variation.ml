module Rng = Pnc_util.Rng
module T = Pnc_tensor.Tensor

type dist =
  | Uniform
  | Gaussian
  | Gmm of { w1 : float; m1 : float; s1 : float; m2 : float; s2 : float }

type spec = { level : float; dist : dist }

let none = { level = 0.; dist = Uniform }
let uniform level = { level; dist = Uniform }
let gaussian level = { level; dist = Gaussian }

(* A dominant tight mode plus a minority wide mode: the qualitative
   shape reported for printed EGT parameter spreads. *)
let default_gmm level =
  { level; dist = Gmm { w1 = 0.85; m1 = 0.; s1 = 0.35; m2 = 0.3; s2 = 1.0 } }

let sample_scalar rng spec =
  if spec.level = 0. then 1.
  else
    match spec.dist with
    | Uniform -> Rng.uniform rng ~lo:(1. -. spec.level) ~hi:(1. +. spec.level)
    | Gaussian ->
        let s = spec.level /. 2. in
        let x = Rng.gaussian ~mu:1. ~sigma:s rng in
        Float.max (1. -. (3. *. s)) (Float.min (1. +. (3. *. s)) x)
    | Gmm { w1; m1; s1; m2; s2 } ->
        let m, s = if Rng.float rng 1. < w1 then (m1, s1) else (m2, s2) in
        1. +. (spec.level *. Rng.gaussian ~mu:m ~sigma:s rng)

let sample_eps rng spec ~rows ~cols = T.init ~rows ~cols (fun _ _ -> sample_scalar rng spec)

let sample_mu rng ~cols =
  T.init ~rows:1 ~cols (fun _ _ -> Rng.uniform rng ~lo:Printed.mu_min ~hi:Printed.mu_max)

let sample_v0 rng ~sigma ~cols = T.init ~rows:1 ~cols (fun _ _ -> Rng.gaussian ~sigma rng)

type draw = { rng : Rng.t; spec : spec; v0_sigma : float; mirror : bool }

let make_draw ?(v0_sigma = 0.05) rng spec = { rng; spec; v0_sigma; mirror = false }
let deterministic = { rng = Rng.create ~seed:0; spec = none; v0_sigma = 0.; mirror = false }
let is_deterministic d = d.spec.level = 0. && d.v0_sigma = 0.

let antithetic_pair ?(v0_sigma = 0.05) rng spec =
  (* The mirrored draw replays the same random stream (a state copy)
     and reflects every sample around its mean — the classic antithetic
     variates construction, which cancels the linear part of the loss's
     dependence on the variation factors. *)
  let r1 = Rng.split rng in
  let r2 = Rng.copy r1 in
  ( { rng = r1; spec; v0_sigma; mirror = false },
    { rng = r2; spec; v0_sigma; mirror = true } )

let eps_for d ~rows ~cols =
  if d.spec.level = 0. then T.create ~rows ~cols 1.
  else
    let e = sample_eps d.rng d.spec ~rows ~cols in
    if d.mirror then T.map (fun x -> 2. -. x) e else e

let mu_for d ~cols =
  if is_deterministic d then T.create ~rows:1 ~cols 1.
  else
    let mu = sample_mu d.rng ~cols in
    if d.mirror then T.map (fun m -> Printed.mu_min +. Printed.mu_max -. m) mu else mu

let v0_for d ~cols =
  if d.v0_sigma = 0. then T.zeros ~rows:1 ~cols
  else
    let v0 = sample_v0 d.rng ~sigma:d.v0_sigma ~cols in
    if d.mirror then T.neg v0 else v0
