module T = Pnc_tensor.Tensor
module Circuit = Pnc_spice.Circuit
module Dc = Pnc_spice.Dc
module Deck = Pnc_spice.Deck

let printable th = Float.abs th >= Printed.theta_print_threshold

let crossbar ?(g_scale = Printed.crossbar_g_max) cb ~inputs =
  let theta = Crossbar.theta_values cb and bias = Crossbar.bias_values cb in
  let n_in = T.rows theta and n_out = T.cols theta in
  assert (Array.length inputs = n_in);
  let circ = Circuit.create () in
  (* Input rails; inverted rails only where some negative weight needs
     them (the inverter of Fig. 3c, idealized as a negated source for
     cross-validation purposes). *)
  let in_node = Array.init n_in (fun i -> Circuit.node circ (Printf.sprintf "in%d" i)) in
  Array.iteri
    (fun i node -> Circuit.vsource circ ~name:(Printf.sprintf "Vin%d" i) node Circuit.ground inputs.(i))
    in_node;
  let inv_node =
    Array.init n_in (fun i ->
        let needs =
          let rec any j =
            j < n_out && ((printable (T.get theta i j) && T.get theta i j < 0.) || any (j + 1))
          in
          any 0
        in
        if needs then begin
          let node = Circuit.node circ (Printf.sprintf "inb%d" i) in
          Circuit.vsource circ ~name:(Printf.sprintf "Vinb%d" i) node Circuit.ground (-.inputs.(i));
          Some node
        end
        else None)
  in
  let vb = Circuit.node circ "vb" in
  Circuit.vsource circ ~name:"Vb" vb Circuit.ground Printed.v_supply;
  let vbn =
    let needs =
      let rec any j = j < n_out && ((printable (T.get bias 0 j) && T.get bias 0 j < 0.) || any (j + 1)) in
      any 0
    in
    if needs then begin
      let node = Circuit.node circ "vbn" in
      Circuit.vsource circ ~name:"Vbn" node Circuit.ground (-.Printed.v_supply);
      Some node
    end
    else None
  in
  let outputs =
    Array.init n_out (fun j ->
        let out = Circuit.node circ (Printf.sprintf "out%d" j) in
        for i = 0 to n_in - 1 do
          let th = T.get theta i j in
          if printable th then begin
            let src = if th >= 0. then in_node.(i) else Option.get inv_node.(i) in
            Circuit.resistor circ
              ~name:(Printf.sprintf "Rw%d_%d" i j)
              src out
              (1. /. (Float.abs th *. g_scale))
          end
        done;
        let thb = T.get bias 0 j in
        if printable thb then begin
          let src = if thb >= 0. then vb else Option.get vbn in
          Circuit.resistor circ ~name:(Printf.sprintf "Rb%d" j) src out
            (1. /. (Float.abs thb *. g_scale))
        end;
        Circuit.resistor circ ~name:(Printf.sprintf "Rd%d" j) out Circuit.ground
          (1. /. (Crossbar.g_dummy *. g_scale));
        out)
  in
  (circ, outputs)

(* Eq. (1) restricted to the printable (actually printed) devices —
   what the exported netlist must compute exactly. *)
let expected_outputs cb ~inputs =
  let theta = Crossbar.theta_values cb and bias = Crossbar.bias_values cb in
  let n_in = T.rows theta and n_out = T.cols theta in
  Array.init n_out (fun j ->
      let num = ref 0. and den = ref Crossbar.g_dummy in
      for i = 0 to n_in - 1 do
        let th = T.get theta i j in
        if printable th then begin
          num := !num +. (th *. inputs.(i));
          den := !den +. Float.abs th
        end
      done;
      let thb = T.get bias 0 j in
      if printable thb then begin
        num := !num +. (thb *. Printed.v_supply);
        den := !den +. Float.abs thb
      end;
      !num /. !den)

let dc_check ?g_scale cb ~inputs ~max_abs_error =
  let circ, outputs = crossbar ?g_scale cb ~inputs in
  let sol = Dc.solve circ in
  let expected = expected_outputs cb ~inputs in
  Array.for_all2
    (fun node exp_v -> Float.abs (Dc.voltage sol node -. exp_v) <= max_abs_error)
    outputs expected

let filter_stage fl ~stage ~channel =
  let r = (Filter_layer.r_values fl).(stage).(channel) in
  let c = (Filter_layer.c_values fl).(stage).(channel) in
  let circ = Circuit.create () in
  let vin = Circuit.node circ "in" and out = Circuit.node circ "out" in
  Circuit.vsource circ ~name:"Vin" ~ac:1. vin Circuit.ground 0.;
  Circuit.resistor circ ~name:"Rf" vin out r;
  Circuit.capacitor circ ~name:"Cf" out Circuit.ground c;
  (circ, out)

let deck net =
  let buf = Buffer.create 1024 in
  List.iteri
    (fun li (cb, fl, _) ->
      let circ, _ = crossbar cb ~inputs:(Array.make (Crossbar.inputs cb) 0.) in
      Buffer.add_string buf
        (Deck.to_string ~title:(Printf.sprintf "layer %d crossbar (%s)" (li + 1) (Deck.component_summary circ))
           circ);
      let stages = match Filter_layer.order fl with Filter_layer.First -> 1 | Filter_layer.Second -> 2 in
      for s = 0 to stages - 1 do
        for ch = 0 to Filter_layer.features fl - 1 do
          let circ, _ = filter_stage fl ~stage:s ~channel:ch in
          Buffer.add_string buf
            (Deck.to_string
               ~title:(Printf.sprintf "layer %d filter stage %d channel %d" (li + 1) (s + 1) ch)
               circ)
        done
      done)
    (Network.layers net);
  Buffer.contents buf
