module T = Pnc_tensor.Tensor

type counts = { transistors : int; resistors : int; capacitors : int }

let zero = { transistors = 0; resistors = 0; capacitors = 0 }

let add a b =
  {
    transistors = a.transistors + b.transistors;
    resistors = a.resistors + b.resistors;
    capacitors = a.capacitors + b.capacitors;
  }

let total c = c.transistors + c.resistors + c.capacitors

let printable th = Float.abs th >= Printed.theta_print_threshold

let crossbar_counts cb =
  let theta = Crossbar.theta_values cb and bias = Crossbar.bias_values cb in
  let n_in = T.rows theta and n_out = T.cols theta in
  let weights = ref 0 and inverted_lines = ref 0 in
  for i = 0 to n_in - 1 do
    let needs_inverter = ref false in
    for j = 0 to n_out - 1 do
      let th = T.get theta i j in
      if printable th then begin
        incr weights;
        if th < 0. then needs_inverter := true
      end
    done;
    if !needs_inverter then incr inverted_lines
  done;
  let bias_resistors = ref 0 and bias_inverters = ref 0 in
  for j = 0 to n_out - 1 do
    let th = T.get bias 0 j in
    if printable th then begin
      incr bias_resistors;
      if th < 0. then incr bias_inverters
    end
  done;
  let inverters = !inverted_lines + !bias_inverters in
  {
    transistors = 2 * inverters;
    resistors = !weights + !bias_resistors + n_out (* R_d *) + (2 * inverters);
    capacitors = 0;
  }

let filter_counts fl =
  let stages = match Filter_layer.order fl with Filter_layer.First -> 1 | Filter_layer.Second -> 2 in
  let n = Filter_layer.features fl in
  { transistors = 0; resistors = stages * n; capacitors = stages * n }

let ptanh_counts act =
  let n = Ptanh.features act in
  { transistors = 2 * n; resistors = 2 * n; capacitors = 0 }

let of_network net =
  let layers =
    List.fold_left
      (fun acc (cb, fl, act) ->
        acc |> add (crossbar_counts cb) |> Fun.flip add (filter_counts fl)
        |> Fun.flip add (ptanh_counts act))
      zero (Network.layers net)
  in
  (* One RC output integrator per class score (the time-averaged
     read-out of Network.forward). *)
  let n_out = Network.classes net in
  add layers { transistors = 0; resistors = n_out; capacitors = n_out }

let g_scale = function
  | Network.Ptpnc -> Printed.crossbar_g_max
  | Network.Adapt -> Printed.crossbar_g_max /. 10.

(* Effective conductances of the activation and inverter circuits at the
   chosen technology scale (per instance, at V_b^2 = 1 V^2). *)
let act_g_factor = 5.
let inv_g_factor = 2.
let v_sq = Printed.v_supply *. Printed.v_supply

let power_w net =
  let scale = g_scale (Network.arch net) in
  let layer_power (cb, _fl, act) =
    let theta = Crossbar.theta_values cb and bias = Crossbar.bias_values cb in
    let sum_g = ref 0. in
    let accumulate t =
      for i = 0 to T.rows t - 1 do
        for j = 0 to T.cols t - 1 do
          let th = T.get t i j in
          if printable th then sum_g := !sum_g +. Float.abs th
        done
      done
    in
    accumulate theta;
    accumulate bias;
    let cnt = crossbar_counts cb in
    let inverters = cnt.transistors / 2 in
    let crossbar_p = !sum_g *. scale *. v_sq in
    let act_p = float_of_int (Ptanh.features act) *. act_g_factor *. scale *. v_sq in
    let inv_p = float_of_int inverters *. inv_g_factor *. scale *. v_sq in
    crossbar_p +. act_p +. inv_p
  in
  List.fold_left (fun acc l -> acc +. layer_power l) 0. (Network.layers net)

let power_mw net = 1000. *. power_w net

let describe c =
  Printf.sprintf "%dT %dR %dC (total %d)" c.transistors c.resistors c.capacitors (total c)
