(** Printable component ranges and technology constants
    (Sec. IV-A1 of the paper).

    Crossbar resistors are printed in [100 kΩ, 10 MΩ]; filter resistors
    are kept below 1 kΩ and capacitors as large as the technology
    allows (100 nF – 100 µF) to minimize the coupling effect. These
    bounds clamp the trainable parameters after every optimizer step
    and drive the hardware cost model. *)

val v_supply : float
(** Supply/bias voltage of the printed circuits: 1 V (Eq. 1 uses
    V_b = 1 V). *)

(** {1 Crossbar} *)

val crossbar_r_min : float
val crossbar_r_max : float

val crossbar_g_min : float
(** 1 / {!crossbar_r_max}. *)

val crossbar_g_max : float

val theta_print_threshold : float
(** Surrogate conductances (in units of {!crossbar_g_max}) below this
    fraction are treated as "not printed": the weight is effectively
    absent and costs no resistor. *)

val clamp_theta : float -> float
(** Clamp a surrogate conductance magnitude into the printable window
    [theta_print_threshold_free .. 1.0] while preserving sign; values
    whose magnitude is below {!theta_print_threshold} are left as-is
    (they round to an unprinted device). *)

(** {1 Filter components} *)

val filter_r_min : float
val filter_r_max : float
val filter_c_min : float
val filter_c_max : float

val clamp_filter_r : float -> float
val clamp_filter_c : float -> float

(** {1 Temporal discretization} *)

val dt : float
(** Sampling interval assigned to one step of the length-64 series:
    2 ms. The printable RC products (up to R_max·C_max = 0.1 s) then
    reach a discrete coefficient a = RC/(RC+Δt) up to 0.98, i.e. a
    memory horizon of ≈50 steps — enough for the filters to integrate
    evidence across the whole 64-step window. *)

(** {1 Coupling factor} *)

val mu_min : float
val mu_max : float
(** µ ∈ [1, 1.3], the range established by circuit simulation
    (Sec. III-2; reproduced by {!Coupling}). *)
