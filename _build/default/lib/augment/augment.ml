module Rng = Pnc_util.Rng
module Vec = Pnc_util.Vec
module Fft = Pnc_signal.Fft
module Dataset = Pnc_data.Dataset

type transform =
  | Jitter of { sigma : float }
  | Magnitude_scale of { sigma : float }
  | Time_warp of { knots : int; strength : float }
  | Random_crop of { ratio : float }
  | Freq_noise of { sigma : float }
  | Drift of { max_drift : float; knots : int }
  | Dropout of { ratio : float; fill : [ `Zero | `Hold ] }
  | Quantize of { levels : int }

type policy = { transforms : transform list; prob : float }

let default_policy =
  {
    transforms =
      [
        Jitter { sigma = 0.05 };
        Magnitude_scale { sigma = 0.1 };
        Time_warp { knots = 4; strength = 0.3 };
        Random_crop { ratio = 0.85 };
        Freq_noise { sigma = 0.05 };
      ];
    prob = 0.5;
  }

let describe = function
  | Jitter { sigma } -> Printf.sprintf "jitter(sigma=%.3f)" sigma
  | Magnitude_scale { sigma } -> Printf.sprintf "scale(sigma=%.3f)" sigma
  | Time_warp { knots; strength } -> Printf.sprintf "warp(knots=%d,strength=%.2f)" knots strength
  | Random_crop { ratio } -> Printf.sprintf "crop(ratio=%.2f)" ratio
  | Freq_noise { sigma } -> Printf.sprintf "freq(sigma=%.3f)" sigma
  | Drift { max_drift; knots } -> Printf.sprintf "drift(max=%.2f,knots=%d)" max_drift knots
  | Dropout { ratio; fill } ->
      Printf.sprintf "dropout(ratio=%.2f,%s)" ratio
        (match fill with `Zero -> "zero" | `Hold -> "hold")
  | Quantize { levels } -> Printf.sprintf "quantize(levels=%d)" levels

let describe_policy p =
  Printf.sprintf "p=%.2f [%s]" p.prob (String.concat "; " (List.map describe p.transforms))

let warp_path rng ~knots ~strength length =
  assert (knots >= 1 && strength >= 0. && strength < 1.);
  (* Segment durations perturbed multiplicatively, then integrated and
     renormalized: a strictly increasing map with fixed endpoints. *)
  let n_seg = knots + 1 in
  let durations =
    Array.init n_seg (fun _ -> Float.max 0.05 (1. +. Rng.uniform rng ~lo:(-.strength) ~hi:strength))
  in
  let cum = Vec.cumsum durations in
  let total = cum.(n_seg - 1) in
  let knot_x = Array.init (n_seg + 1) (fun i -> float_of_int i /. float_of_int n_seg) in
  let knot_y = Array.init (n_seg + 1) (fun i -> if i = 0 then 0. else cum.(i - 1) /. total) in
  Array.init length (fun i ->
      let t = float_of_int i /. float_of_int (length - 1) in
      let warped = Vec.interp1 ~xs:knot_y ~ys:knot_x t in
      warped *. float_of_int (length - 1))

let sample_at s positions =
  let n = Array.length s in
  let xs = Array.init n float_of_int in
  Array.map (fun p -> Vec.interp1 ~xs ~ys:s p) positions

let apply_transform rng transform s =
  let n = Array.length s in
  match transform with
  | Jitter { sigma } -> Array.map (fun x -> x +. Rng.gaussian ~sigma rng) s
  | Magnitude_scale { sigma } ->
      let k = Rng.gaussian ~mu:1. ~sigma rng in
      Array.map (fun x -> k *. x) s
  | Time_warp { knots; strength } ->
      if n < 3 then Array.copy s else sample_at s (warp_path rng ~knots ~strength n)
  | Random_crop { ratio } ->
      let keep = Stdlib.max 2 (int_of_float (Float.round (ratio *. float_of_int n))) in
      if keep >= n then Array.copy s
      else
        let start = Rng.int rng (n - keep + 1) in
        Vec.resample (Array.sub s start keep) n
  | Drift { max_drift; knots } ->
      (* Smooth additive baseline wander: piecewise-linear through
         random knot offsets (tsaug's Drift). *)
      let k = Stdlib.max 1 knots in
      let knot_x = Array.init (k + 2) (fun i -> float_of_int i /. float_of_int (k + 1)) in
      let knot_y =
        Array.init (k + 2) (fun i ->
            if i = 0 then 0. else Rng.uniform rng ~lo:(-.max_drift) ~hi:max_drift)
      in
      Array.mapi
        (fun i x ->
          let t = float_of_int i /. float_of_int (Stdlib.max 1 (n - 1)) in
          x +. Vec.interp1 ~xs:knot_x ~ys:knot_y t)
        s
  | Dropout { ratio; fill } ->
      (* Random samples lost by the sensor: replaced by zero or by the
         previous held value (tsaug's Dropout). *)
      let out = Array.copy s in
      let last = ref (if n > 0 then s.(0) else 0.) in
      for i = 0 to n - 1 do
        if Rng.float rng 1. < ratio then
          out.(i) <- (match fill with `Zero -> 0. | `Hold -> !last)
        else last := out.(i)
      done;
      out
  | Quantize { levels } ->
      (* ADC-style uniform quantization over the series' own range
         (tsaug's Quantize). *)
      assert (levels >= 2);
      let lo = Vec.min s and hi = Vec.max s in
      if hi -. lo < 1e-12 then Array.copy s
      else
        let q = float_of_int (levels - 1) in
        Array.map
          (fun x -> lo +. (Float.round ((x -. lo) /. (hi -. lo) *. q) /. q *. (hi -. lo)))
          s
  | Freq_noise { sigma } ->
      if n < 4 then Array.copy s
      else begin
        let spec = Fft.fft_real s in
        let scale =
          (* Calibrate the perturbation to the signal's spectral mass. *)
          let m = Fft.magnitude spec in
          sigma *. Vec.mean m
        in
        for k = 1 to (n - 1) / 2 do
          let re = Rng.gaussian ~sigma:scale rng and im = Rng.gaussian ~sigma:scale rng in
          spec.(k) <- Complex.add spec.(k) { Complex.re; im };
          spec.(n - k) <- Complex.add spec.(n - k) { Complex.re; im = -.im }
        done;
        Fft.ifft_real spec
      end

let apply_policy rng policy s =
  List.fold_left
    (fun acc t -> if Rng.float rng 1. < policy.prob then apply_transform rng t acc else acc)
    (Array.copy s) policy.transforms

let augment_dataset rng policy ~copies (d : Dataset.t) =
  assert (copies >= 0);
  let augmented_x = ref [] and augmented_y = ref [] in
  for _ = 1 to copies do
    Array.iteri
      (fun i s ->
        augmented_x := apply_policy rng policy s :: !augmented_x;
        augmented_y := d.y.(i) :: !augmented_y)
      d.x
  done;
  Dataset.make ~name:d.name ~n_classes:d.n_classes
    ~x:(Array.append d.x (Array.of_list (List.rev !augmented_x)))
    ~y:(Array.append d.y (Array.of_list (List.rev !augmented_y)))

let perturb_dataset rng policy d =
  (* Guarantee at least one transform fires on every series so the
     "perturbed" condition is never silently identical to clean. *)
  let apply_forced s =
    let out = apply_policy rng policy s in
    if out = s then
      match policy.transforms with
      | [] -> out
      | t :: _ -> apply_transform rng t out
    else out
  in
  Dataset.map_series apply_forced d
