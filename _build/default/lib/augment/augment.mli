(** Time-series data augmentation (the tsaug substitute, Sec. III-B).

    The five transforms named in the paper: jittering, magnitude
    scaling, time warping, random cropping (with resize back to the
    original length) and frequency-domain noise. All are deterministic
    under a seeded {!Pnc_util.Rng.t} and length-preserving. *)

type transform =
  | Jitter of { sigma : float }  (** additive Gaussian sensor noise *)
  | Magnitude_scale of { sigma : float }  (** multiplicative gain drawn from N(1, sigma) *)
  | Time_warp of { knots : int; strength : float }
      (** smooth monotone re-timing with [knots] control points;
          [strength] bounds the relative segment stretch *)
  | Random_crop of { ratio : float }
      (** keep a random window of [ratio] x length, resampled back *)
  | Freq_noise of { sigma : float }
      (** complex Gaussian noise added to non-DC spectrum bins,
          conjugate-symmetric so the result stays real *)
  | Drift of { max_drift : float; knots : int }
      (** smooth additive baseline wander (tsaug extension, not part of
          the paper's five transforms) *)
  | Dropout of { ratio : float; fill : [ `Zero | `Hold ] }
      (** random sample loss, zero-filled or sample-and-hold (tsaug
          extension) *)
  | Quantize of { levels : int }
      (** ADC-style uniform quantization over the series range (tsaug
          extension) *)

type policy = {
  transforms : transform list;
  prob : float;  (** independent application probability per transform *)
}

val default_policy : policy
(** The paper's combined augmentation with moderate strengths, each
    transform applied with probability 0.5. *)

val describe : transform -> string
val describe_policy : policy -> string

val apply_transform : Pnc_util.Rng.t -> transform -> float array -> float array
(** Always applies (ignores [prob]). Length-preserving. *)

val apply_policy : Pnc_util.Rng.t -> policy -> float array -> float array

val augment_dataset :
  Pnc_util.Rng.t -> policy -> copies:int -> Pnc_data.Dataset.t -> Pnc_data.Dataset.t
(** Original samples plus [copies] augmented variants of each — the
    paper trains, validates and tests on original + augmented data. *)

val perturb_dataset : Pnc_util.Rng.t -> policy -> Pnc_data.Dataset.t -> Pnc_data.Dataset.t
(** Transform every series once (no originals kept): the "perturbed
    input" test condition of Fig. 5 / Fig. 7. *)

val warp_path : Pnc_util.Rng.t -> knots:int -> strength:float -> int -> float array
(** The monotone time map used by [Time_warp], exposed for tests:
    returns [length] sample positions in [0, length-1], strictly
    increasing, fixed endpoints. *)
