(** Budgeted random search over augmentation hyper-parameters (the
    Ray Tune substitute, Sec. IV-A2).

    The paper tunes crop size, noise level and time-warp strength per
    dataset on validation accuracy; [search] draws candidate policies
    from the same space and keeps the best-scoring one. *)

type candidate = { policy : Augment.policy; score : float }

val random_policy : Pnc_util.Rng.t -> Augment.policy
(** One policy with strengths drawn from the paper-motivated ranges:
    jitter sigma in [0.01, 0.1], scale sigma in [0.05, 0.2], warp
    strength in [0.1, 0.5], crop ratio in [0.7, 0.95], frequency noise
    sigma in [0.01, 0.1], probability in [0.3, 0.8]. *)

val search :
  Pnc_util.Rng.t -> budget:int -> eval:(Augment.policy -> float) -> candidate
(** Evaluates [budget] random candidates plus {!Augment.default_policy}
    and returns the argmax (higher scores better). *)
