module Rng = Pnc_util.Rng

type candidate = { policy : Augment.policy; score : float }

let random_policy rng =
  {
    Augment.transforms =
      [
        Augment.Jitter { sigma = Rng.uniform rng ~lo:0.01 ~hi:0.1 };
        Augment.Magnitude_scale { sigma = Rng.uniform rng ~lo:0.05 ~hi:0.2 };
        Augment.Time_warp
          { knots = 2 + Rng.int rng 5; strength = Rng.uniform rng ~lo:0.1 ~hi:0.5 };
        Augment.Random_crop { ratio = Rng.uniform rng ~lo:0.7 ~hi:0.95 };
        Augment.Freq_noise { sigma = Rng.uniform rng ~lo:0.01 ~hi:0.1 };
      ];
    prob = Rng.uniform rng ~lo:0.3 ~hi:0.8;
  }

let search rng ~budget ~eval =
  assert (budget >= 0);
  let consider best policy =
    let score = eval policy in
    match best with
    | Some b when b.score >= score -> best
    | _ -> Some { policy; score }
  in
  let best = ref (consider None Augment.default_policy) in
  for _ = 1 to budget do
    best := consider !best (random_policy rng)
  done;
  match !best with Some b -> b | None -> assert false
