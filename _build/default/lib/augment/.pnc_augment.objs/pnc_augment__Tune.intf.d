lib/augment/tune.mli: Augment Pnc_util
