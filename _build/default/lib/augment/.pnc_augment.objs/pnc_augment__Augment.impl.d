lib/augment/augment.ml: Array Complex Float List Pnc_data Pnc_signal Pnc_util Printf Stdlib String
