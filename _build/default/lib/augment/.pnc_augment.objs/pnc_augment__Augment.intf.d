lib/augment/augment.mli: Pnc_data Pnc_util
