lib/augment/tune.ml: Augment Pnc_util
