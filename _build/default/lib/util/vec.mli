(** Operations on [float array] vectors.

    These are the low-level signal helpers shared by the dataset
    generators, the augmentation library and the signal-processing
    substrate. All functions are pure unless stated otherwise. *)

val linspace : float -> float -> int -> float array
(** [linspace a b n] is [n] evenly spaced points from [a] to [b]
    inclusive. Requires [n >= 2]. *)

val arange : int -> float array
(** [arange n] is [[|0.; 1.; ...; float (n-1)|]]. *)

val map2 : (float -> float -> float) -> float array -> float array -> float array
(** Pointwise combination; requires equal lengths. *)

val add : float array -> float array -> float array
val sub : float array -> float array -> float array
val mul : float array -> float array -> float array
val scale : float -> float array -> float array
val offset : float -> float array -> float array

val dot : float array -> float array -> float
val sum : float array -> float
val mean : float array -> float
val min : float array -> float
val max : float array -> float

val norm2 : float array -> float
(** Euclidean norm. *)

val clip : lo:float -> hi:float -> float array -> float array

val normalize_range : ?lo:float -> ?hi:float -> float array -> float array
(** Affine rescale of the values into [lo, hi] (defaults [-1, 1]).
    A constant vector maps to the midpoint. *)

val interp1 : xs:float array -> ys:float array -> float -> float
(** Piecewise-linear interpolation of the sample points [(xs, ys)]
    (xs strictly increasing). Clamps outside the domain. *)

val resample : float array -> int -> float array
(** Linear resampling of a series to a new length, preserving the
    endpoints. Used to resize every dataset to length 64, and by
    random-crop / time-warp augmentation. *)

val cumsum : float array -> float array

val argmax : float array -> int

val equal_eps : eps:float -> float array -> float array -> bool
(** Pointwise comparison with absolute tolerance. *)
