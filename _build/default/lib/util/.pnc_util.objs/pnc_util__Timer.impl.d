lib/util/timer.ml: Printf Unix
