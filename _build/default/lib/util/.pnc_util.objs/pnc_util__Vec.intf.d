lib/util/vec.mli:
