lib/util/rng.mli:
