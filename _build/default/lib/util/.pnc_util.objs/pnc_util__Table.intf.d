lib/util/table.mli:
