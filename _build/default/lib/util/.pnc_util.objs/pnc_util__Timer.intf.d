lib/util/timer.mli:
