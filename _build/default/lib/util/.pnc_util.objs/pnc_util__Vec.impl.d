lib/util/vec.ml: Array Float Stdlib
