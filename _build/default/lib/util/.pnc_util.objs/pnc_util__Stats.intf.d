lib/util/stats.mli:
