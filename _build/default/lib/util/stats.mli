(** Descriptive statistics and classification metrics. *)

val mean : float array -> float
val variance : float array -> float
(** Unbiased sample variance (n-1 denominator); 0 for n <= 1. *)

val std : float array -> float
val median : float array -> float
val percentile : float array -> float -> float
(** [percentile a p] for [p] in [0, 100], linear interpolation. *)

val mean_std : float array -> float * float

val accuracy : pred:int array -> truth:int array -> float
(** Fraction of positions where prediction equals ground truth. *)

val confusion : n_classes:int -> pred:int array -> truth:int array -> int array array
(** [confusion.(truth).(pred)] counts. *)

val summarize : string -> float array -> string
(** ["name: mean ± std (n=...)"] convenience formatting. *)
