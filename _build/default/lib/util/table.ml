type t = {
  header : string list;
  mutable rows : [ `Row of string list | `Rule ] list; (* reversed *)
}

let create ~header = { header; rows = [] }
let add_row t cells = t.rows <- `Row cells :: t.rows
let add_rule t = t.rows <- `Rule :: t.rows

let render t =
  let rows = List.rev t.rows in
  let all_cells =
    t.header :: List.filter_map (function `Row r -> Some r | `Rule -> None) rows
  in
  let n_cols = List.fold_left (fun m r -> Stdlib.max m (List.length r)) 0 all_cells in
  let widths = Array.make n_cols 0 in
  let measure r = List.iteri (fun i c -> widths.(i) <- Stdlib.max widths.(i) (String.length c)) r in
  List.iter measure all_cells;
  let pad i c = c ^ String.make (widths.(i) - String.length c) ' ' in
  let line r = String.concat "  " (List.mapi pad r) in
  let total = Array.fold_left ( + ) 0 widths + (2 * Stdlib.max 0 (n_cols - 1)) in
  let rule = String.make total '-' in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (line t.header);
  Buffer.add_char buf '\n';
  Buffer.add_string buf rule;
  Buffer.add_char buf '\n';
  List.iter
    (fun r ->
      (match r with `Row cells -> Buffer.add_string buf (line cells) | `Rule -> Buffer.add_string buf rule);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let print t = print_string (render t)
let fmt_f ?(digits = 3) x = Printf.sprintf "%.*f" digits x

let fmt_mean_std ?(digits = 3) (m, s) =
  Printf.sprintf "%.*f ± %.*f" digits m digits s
