(** Wall-clock timing helpers used by the runtime comparison (Table II). *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns its result and the elapsed seconds. *)

val time_mean : repeats:int -> (unit -> 'a) -> float
(** Mean elapsed seconds of [repeats] runs (result discarded). *)

val fmt_seconds : float -> string
(** Human formatting: ns/µs/ms/s depending on magnitude. *)
