let linspace a b n =
  assert (n >= 2);
  let step = (b -. a) /. float_of_int (n - 1) in
  Array.init n (fun i -> a +. (float_of_int i *. step))

let arange n = Array.init n float_of_int

let map2 f a b =
  assert (Array.length a = Array.length b);
  Array.init (Array.length a) (fun i -> f a.(i) b.(i))

let add a b = map2 ( +. ) a b
let sub a b = map2 ( -. ) a b
let mul a b = map2 ( *. ) a b
let scale k a = Array.map (fun x -> k *. x) a
let offset k a = Array.map (fun x -> k +. x) a

let dot a b =
  assert (Array.length a = Array.length b);
  let acc = ref 0. in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. (a.(i) *. b.(i))
  done;
  !acc

let sum a = Array.fold_left ( +. ) 0. a
let mean a = sum a /. float_of_int (Stdlib.max 1 (Array.length a))
let min a = Array.fold_left Stdlib.min a.(0) a
let max a = Array.fold_left Stdlib.max a.(0) a
let norm2 a = sqrt (dot a a)

let clip ~lo ~hi a = Array.map (fun x -> Float.max lo (Float.min hi x)) a

let normalize_range ?(lo = -1.) ?(hi = 1.) a =
  let vmin = min a and vmax = max a in
  if vmax -. vmin < 1e-12 then Array.map (fun _ -> (lo +. hi) /. 2.) a
  else
    let k = (hi -. lo) /. (vmax -. vmin) in
    Array.map (fun x -> lo +. ((x -. vmin) *. k)) a

let interp1 ~xs ~ys x =
  let n = Array.length xs in
  assert (n = Array.length ys && n >= 1);
  if x <= xs.(0) then ys.(0)
  else if x >= xs.(n - 1) then ys.(n - 1)
  else begin
    (* binary search for the segment containing x *)
    let lo = ref 0 and hi = ref (n - 1) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if xs.(mid) <= x then lo := mid else hi := mid
    done;
    let x0 = xs.(!lo) and x1 = xs.(!hi) in
    let t = (x -. x0) /. (x1 -. x0) in
    ys.(!lo) +. (t *. (ys.(!hi) -. ys.(!lo)))
  end

let resample a n =
  let m = Array.length a in
  assert (m >= 1 && n >= 1);
  if m = n then Array.copy a
  else if m = 1 then Array.make n a.(0)
  else
    let xs = linspace 0. 1. m in
    let ts = linspace 0. 1. n in
    Array.map (fun t -> interp1 ~xs ~ys:a t) ts

let cumsum a =
  let acc = ref 0. in
  Array.map
    (fun x ->
      acc := !acc +. x;
      !acc)
    a

let argmax a =
  let best = ref 0 in
  for i = 1 to Array.length a - 1 do
    if a.(i) > a.(!best) then best := i
  done;
  !best

let equal_eps ~eps a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun x y -> Float.abs (x -. y) <= eps) a b
