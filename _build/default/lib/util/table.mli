(** Aligned plain-text tables for the benchmark reports.

    Every table and figure of the paper is regenerated as text; this
    module renders the rows with column alignment so the output is
    directly comparable to the paper. *)

type t

val create : header:string list -> t
val add_row : t -> string list -> unit
val add_rule : t -> unit
(** Horizontal separator before the next row (e.g. above a summary row). *)

val render : t -> string
(** The formatted table, trailing newline included. *)

val print : t -> unit

val fmt_f : ?digits:int -> float -> string
(** Fixed-point float formatting, default 3 digits. *)

val fmt_mean_std : ?digits:int -> float * float -> string
(** ["0.726 ± 0.014"] style cell. *)
