module Train = Pnc_core.Train
module Variation = Pnc_core.Variation

type scale = Smoke | Fast | Paper

type t = {
  scale : scale;
  seeds : int list;
  top_k : int;
  train_base : Train.config;
  train_va : Train.config;
  aug_copies : int;
  eval_draws : int;
  eval_level : float;
  dataset_n : int option;
  datasets : string list;
}

let all_datasets = Pnc_data.Registry.names

let of_scale scale =
  match scale with
  | Smoke ->
      {
        scale;
        seeds = [ 0 ];
        top_k = 1;
        train_base = { Train.smoke_config with variation = Variation.none; mc_samples = 1 };
        train_va = Train.smoke_config;
        aug_copies = 1;
        eval_draws = 3;
        eval_level = 0.1;
        dataset_n = Some 60;
        datasets = [ "GPOVY"; "PowerCons" ];
      }
  | Fast ->
      {
        scale;
        seeds = [ 0; 1; 2 ];
        top_k = 2;
        train_base =
          {
            Train.fast_config with
            variation = Variation.none;
            mc_samples = 1;
            max_epochs = 350;
            patience = 15;
          };
        train_va = { Train.fast_config with max_epochs = 450; patience = 18 };
        aug_copies = 1;
        eval_draws = 5;
        eval_level = 0.1;
        dataset_n = Some 200;
        datasets = all_datasets;
      }
  | Paper ->
      {
        scale;
        seeds = List.init 10 Fun.id;
        top_k = 3;
        train_base = { Train.paper_config with variation = Variation.none; mc_samples = 1 };
        train_va = Train.paper_config;
        aug_copies = 1;
        eval_draws = 10;
        eval_level = 0.1;
        dataset_n = None;
        datasets = all_datasets;
      }

let scale_of_string = function
  | "smoke" -> Smoke
  | "fast" -> Fast
  | "paper" -> Paper
  | s -> invalid_arg ("unknown scale: " ^ s ^ " (expected smoke|fast|paper)")

let scale_name = function Smoke -> "smoke" | Fast -> "fast" | Paper -> "paper"

let from_env () =
  match Sys.getenv_opt "ADAPT_PNC_SCALE" with
  | Some s -> of_scale (scale_of_string s)
  | None -> of_scale Fast
