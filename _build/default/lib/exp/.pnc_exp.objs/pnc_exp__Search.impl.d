lib/exp/search.ml: Config List Pnc_augment Pnc_core Pnc_data Pnc_util Printf Stdlib
