lib/exp/experiments.ml: Array Config Float List Pnc_augment Pnc_core Pnc_data Pnc_signal Pnc_spice Pnc_util Printf Stdlib String
