lib/exp/config.mli: Pnc_core
