lib/exp/search.mli: Config Pnc_core Pnc_util
