lib/exp/experiments.mli: Config Pnc_core
