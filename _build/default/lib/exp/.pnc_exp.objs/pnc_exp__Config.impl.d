lib/exp/config.ml: Fun List Pnc_core Pnc_data Sys
