module Rng = Pnc_util.Rng
module Dataset = Pnc_data.Dataset
module Augment = Pnc_augment.Augment
module Network = Pnc_core.Network
module Filter_layer = Pnc_core.Filter_layer
module Model = Pnc_core.Model
module Train = Pnc_core.Train
module Variation = Pnc_core.Variation
module Hardware = Pnc_core.Hardware

type genome = { hidden : int; order : Filter_layer.order; use_va : bool; use_at : bool }

type candidate = {
  genome : genome;
  val_acc : float;
  test_acc : float;
  devices : int;
  power_mw : float;
}

let describe_genome g =
  Printf.sprintf "hidden=%d %s%s%s" g.hidden
    (match g.order with Filter_layer.First -> "LF" | Filter_layer.Second -> "SO-LF")
    (if g.use_va then " +VA" else "")
    (if g.use_at then " +AT" else "")

let random_genome rng =
  {
    hidden = 2 + Rng.int rng 9;
    order = (if Rng.bool rng then Filter_layer.First else Filter_layer.Second);
    use_va = Rng.bool rng;
    use_at = Rng.bool rng;
  }

let evaluate cfg ~dataset ~seed genome =
  let raw = Pnc_data.Registry.load ?n:cfg.Config.dataset_n ~seed dataset in
  let split = Dataset.preprocess (Rng.create ~seed:(seed + 1000)) raw in
  let classes = raw.Dataset.n_classes in
  (* The filter order decides between the two circuit families. *)
  let arch = match genome.order with Filter_layer.First -> Network.Ptpnc | Filter_layer.Second -> Network.Adapt in
  let net = Network.create ~hidden:genome.hidden (Rng.create ~seed:(seed + 77)) arch ~inputs:1 ~classes in
  let model = Model.Circuit net in
  let train_cfg = if genome.use_va then cfg.Config.train_va else cfg.Config.train_base in
  let split_for_training =
    if genome.use_at then begin
      let arng = Rng.create ~seed:(seed + 2000) in
      let aug d = Augment.augment_dataset arng Augment.default_policy ~copies:cfg.Config.aug_copies d in
      { split with Dataset.train = aug split.Dataset.train; valid = aug split.Dataset.valid }
    end
    else split
  in
  let _ = Train.train ~rng:(Rng.create ~seed:(seed + 3000)) train_cfg model split_for_training in
  let spec = Variation.uniform cfg.Config.eval_level in
  let eval d =
    Train.accuracy_under_variation ~rng:(Rng.create ~seed:(seed + 4000)) ~spec
      ~draws:cfg.Config.eval_draws model d
  in
  {
    genome;
    val_acc = eval split.Dataset.valid;
    test_acc = eval split.Dataset.test;
    devices = Hardware.total (Hardware.of_network net);
    power_mw = Hardware.power_mw net;
  }

let anchor_genome ~classes =
  {
    hidden = Stdlib.min 8 (Stdlib.max 4 (2 * classes));
    order = Filter_layer.Second;
    use_va = true;
    use_at = true;
  }

let random_search ?(progress = fun _ -> ()) cfg ~dataset ~seed ~budget =
  assert (budget >= 0);
  let raw = Pnc_data.Registry.load ?n:cfg.Config.dataset_n ~seed dataset in
  let rng = Rng.create ~seed:(seed + 9000) in
  let genomes =
    anchor_genome ~classes:raw.Dataset.n_classes
    :: List.init budget (fun _ -> random_genome rng)
  in
  let candidates =
    List.map
      (fun g ->
        progress (describe_genome g);
        evaluate cfg ~dataset ~seed g)
      genomes
  in
  List.sort (fun a b -> compare b.val_acc a.val_acc) candidates

let pareto_front candidates =
  let dominated c =
    List.exists
      (fun o ->
        o != c
        && o.val_acc >= c.val_acc
        && o.devices <= c.devices
        && (o.val_acc > c.val_acc || o.devices < c.devices))
      candidates
  in
  candidates
  |> List.filter (fun c -> not (dominated c))
  |> List.sort (fun a b -> compare a.devices b.devices)
