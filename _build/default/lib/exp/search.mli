(** Architecture search for ADAPT-pNCs — the future-work direction the
    paper's conclusion names ("new architectural search methodologies
    ... to further address sensor variations").

    A budgeted random search over the circuit design space (hidden
    width, filter order, variation-aware training, augmented training)
    that scores candidates by validation accuracy under component
    variation and reports their hardware cost, so the result is a
    small accuracy-vs-devices trade-off front rather than a single
    winner. *)

type genome = {
  hidden : int;
  order : Pnc_core.Filter_layer.order;
  use_va : bool;
  use_at : bool;
}

type candidate = {
  genome : genome;
  val_acc : float;  (** validation accuracy under ±10 % variation *)
  test_acc : float;  (** test accuracy under ±10 % variation *)
  devices : int;
  power_mw : float;
}

val describe_genome : genome -> string

val random_genome : Pnc_util.Rng.t -> genome
(** hidden in [2, 10], uniform over the other axes. *)

val evaluate :
  Config.t -> dataset:string -> seed:int -> genome -> candidate
(** Train the genome's circuit with the config's budget and score it. *)

val random_search :
  ?progress:(string -> unit) ->
  Config.t ->
  dataset:string ->
  seed:int ->
  budget:int ->
  candidate list
(** [budget] random genomes (plus the paper's ADAPT-pNC design as an
    anchor), sorted by validation accuracy, best first. *)

val pareto_front : candidate list -> candidate list
(** Non-dominated candidates under (maximize val_acc, minimize
    devices), sorted by device count. *)
