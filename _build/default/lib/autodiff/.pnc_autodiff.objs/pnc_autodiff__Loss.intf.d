lib/autodiff/loss.mli: Pnc_tensor Var
