lib/autodiff/var.mli: Pnc_tensor
