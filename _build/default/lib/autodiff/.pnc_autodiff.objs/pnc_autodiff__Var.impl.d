lib/autodiff/var.ml: Float Fun Hashtbl Int List Pnc_tensor Set Stdlib
