lib/autodiff/loss.ml: Array Float Pnc_tensor Var
