lib/optim/scheduler.mli:
