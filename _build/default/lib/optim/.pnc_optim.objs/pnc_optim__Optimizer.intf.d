lib/optim/optimizer.mli: Pnc_autodiff
