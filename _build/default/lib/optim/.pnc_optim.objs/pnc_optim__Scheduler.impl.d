lib/optim/scheduler.ml:
