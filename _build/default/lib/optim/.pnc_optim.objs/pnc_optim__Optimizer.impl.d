lib/optim/optimizer.ml: Array Pnc_autodiff Pnc_tensor
