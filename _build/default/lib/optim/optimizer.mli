(** First-order optimizers over {!Pnc_autodiff.Var} parameter lists.

    The paper trains with AdamW (default settings) under full-batch
    gradient descent; SGD and Adam are provided for the ablation and
    test harnesses. Optimizers mutate the parameter tensors in place
    and never touch gradients (call {!zero_grads} between steps). *)

type t

val sgd : ?momentum:float -> params:Pnc_autodiff.Var.t list -> unit -> t
val adam : ?beta1:float -> ?beta2:float -> ?eps:float -> params:Pnc_autodiff.Var.t list -> unit -> t

val adamw :
  ?beta1:float ->
  ?beta2:float ->
  ?eps:float ->
  ?weight_decay:float ->
  params:Pnc_autodiff.Var.t list ->
  unit ->
  t
(** Decoupled weight decay (Loshchilov & Hutter), default
    [weight_decay = 0.01] as in the PyTorch defaults used by the
    paper. *)

val step : t -> lr:float -> unit
(** One update using the gradients currently accumulated on the
    parameters. *)

val zero_grads : t -> unit
val params : t -> Pnc_autodiff.Var.t list

val grad_norm : t -> float
(** Global L2 norm of all parameter gradients. *)

val clip_grad_norm : t -> max_norm:float -> unit
(** Rescale all gradients when the global norm exceeds [max_norm]. *)
