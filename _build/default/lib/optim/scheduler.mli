(** Learning-rate schedules.

    The paper's schedule: start at 0.1, halve after [patience] epochs
    without validation improvement, stop when the learning rate falls
    below 1e-5. *)

type t

val plateau :
  ?factor:float -> ?patience:int -> ?min_lr:float -> ?threshold:float -> init_lr:float -> unit -> t
(** Defaults: [factor = 0.5], [patience = 100], [min_lr = 1e-5],
    [threshold = 1e-6] (required improvement to reset patience). *)

val lr : t -> float

val observe : t -> float -> [ `Continue | `Stop ]
(** Feed the epoch's validation loss. Returns [`Stop] once the learning
    rate has decayed below [min_lr]. *)

val best : t -> float
(** Best validation loss seen so far ([infinity] before the first
    observation). *)
