(** Name → generator registry for the paper's 15 benchmark datasets
    (Table I order). *)

type spec = {
  name : string;
  n_classes : int;
  default_n : int;  (** number of generated samples before splitting *)
  gen : Generators.gen;
}

val all : spec list
(** The 15 datasets in the paper's table order: CBF, DPTW, FRT, FST,
    GPAS, GPMVF, GPOVY, MPOAG, MSRT, PowerCons, PPOC, SRSCP2, Slope,
    SmoothS, Symbols. *)

val names : string list
val find : string -> spec
(** @raise Not_found for unknown names. *)

val load : ?n:int -> ?length:int -> seed:int -> string -> Dataset.t
(** Generate the named dataset. [length] is the raw generated length
    (default 128) — callers then run {!Dataset.preprocess} which
    resizes to 64. *)
