(** Univariate time-series classification datasets.

    Mirrors the paper's data handling (Sec. IV-A2): every series is
    resized to a common length (64), normalized to [-1, 1], shuffled
    and split 60 % / 20 % / 20 % into train / validation / test. *)

type t = {
  name : string;
  n_classes : int;
  x : float array array;  (** [x.(i)] is sample i's series *)
  y : int array;  (** labels in [0, n_classes) *)
}

val make : name:string -> n_classes:int -> x:float array array -> y:int array -> t
(** Validates shapes and label range. *)

val n_samples : t -> int
val length : t -> int
(** Series length (all series have equal length). *)

val class_counts : t -> int array

val resize : t -> int -> t
(** Linear resampling of every series to the given length. *)

val normalize : t -> t
(** Per-series affine rescale into [-1, 1]. *)

val shuffle : Pnc_util.Rng.t -> t -> t

type split = { train : t; valid : t; test : t }

val split : ?fractions:float * float -> Pnc_util.Rng.t -> t -> split
(** Shuffles, then splits. [fractions] are (train, valid) shares,
    default (0.6, 0.2); the remainder is the test set. *)

val preprocess : ?length:int -> Pnc_util.Rng.t -> t -> split
(** The paper's full pipeline: resize (default 64) → normalize →
    shuffle → split. *)

val concat : t -> t -> t
(** Append the samples of two compatible datasets (same name metadata
    kept from the first). Used to mix augmented and original data. *)

val subset : t -> int array -> t

val map_series : (float array -> float array) -> t -> t
(** Apply a transformation to every series (e.g. a perturbation). *)
