type spec = { name : string; n_classes : int; default_n : int; gen : Generators.gen }

let all =
  [
    { name = "CBF"; n_classes = 3; default_n = 240; gen = Generators.cbf };
    { name = "DPTW"; n_classes = 6; default_n = 300; gen = Generators.dptw };
    {
      name = "FRT";
      n_classes = 2;
      default_n = 240;
      gen = Generators.freezer ~name:"FRT" ~separation:0.8;
    };
    {
      name = "FST";
      n_classes = 2;
      default_n = 80;
      gen = Generators.freezer ~name:"FST" ~separation:0.8;
    };
    {
      name = "GPAS";
      n_classes = 2;
      default_n = 220;
      gen = Generators.gun_point ~name:"GPAS" ~separation:0.35 ~noise:0.12;
    };
    {
      name = "GPMVF";
      n_classes = 2;
      default_n = 220;
      gen = Generators.gun_point ~name:"GPMVF" ~separation:0.7 ~noise:0.08;
    };
    {
      name = "GPOVY";
      n_classes = 2;
      default_n = 220;
      gen = Generators.gun_point ~name:"GPOVY" ~separation:1.0 ~noise:0.05;
    };
    { name = "MPOAG"; n_classes = 3; default_n = 260; gen = Generators.mpoag };
    { name = "MSRT"; n_classes = 5; default_n = 300; gen = Generators.msrt };
    { name = "PowerCons"; n_classes = 2; default_n = 240; gen = Generators.power_cons };
    { name = "PPOC"; n_classes = 2; default_n = 260; gen = Generators.ppoc };
    { name = "SRSCP2"; n_classes = 2; default_n = 240; gen = Generators.srscp2 };
    { name = "Slope"; n_classes = 3; default_n = 240; gen = Generators.slope };
    { name = "SmoothS"; n_classes = 3; default_n = 240; gen = Generators.smooth_subspace };
    { name = "Symbols"; n_classes = 6; default_n = 360; gen = Generators.symbols };
  ]

let names = List.map (fun s -> s.name) all

let find name =
  match List.find_opt (fun s -> s.name = name) all with
  | Some s -> s
  | None -> raise Not_found

let load ?n ?(length = 128) ~seed name =
  let spec = find name in
  let n = match n with Some n -> n | None -> spec.default_n in
  let rng = Pnc_util.Rng.create ~seed:(seed lxor Hashtbl.hash name) in
  spec.gen rng ~n ~length
