(** Loading and saving datasets in the UCR archive's text format.

    The repository ships synthetic generators because the UCR archive
    is not redistributable, but the pipeline is format-compatible: drop
    the real `<Name>_TRAIN.tsv` / `<Name>_TEST.tsv` files next to your
    experiment and load them here — everything downstream (preprocess,
    augment, train, evaluate) is unchanged.

    Format: one sample per line; first field is the (integer) class
    label, remaining fields are the series values. Both tab- and
    comma-separated files are accepted; blank lines are skipped.
    Labels are remapped to contiguous 0-based ids in order of first
    appearance (UCR labels may be arbitrary integers, e.g. {-1, 1}). *)

val parse : name:string -> string -> Dataset.t
(** Parse file contents given as a string.
    @raise Failure with a line-numbered message on malformed input. *)

val load_file : ?name:string -> string -> Dataset.t
(** Read a dataset from a path; [name] defaults to the basename without
    extension/suffix. *)

val load_pair : train:string -> test:string -> name:string -> Dataset.t
(** Concatenate a TRAIN/TEST pair into one pool, as the paper does
    before its own reshuffled 60/20/20 split. Label maps must agree. *)

val to_string : Dataset.t -> string
(** Render in the same TSV format (labels as stored, tab-separated). *)

val save_file : Dataset.t -> string -> unit

val label_map : string -> (string * int) list
(** The raw-label → class-id mapping that {!parse} would use for the
    given contents (diagnostics). *)
