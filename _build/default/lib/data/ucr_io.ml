let split_fields line =
  let sep = if String.contains line '\t' then '\t' else ',' in
  String.split_on_char sep line
  |> List.map String.trim
  |> List.filter (fun s -> s <> "")

let non_blank_lines contents =
  String.split_on_char '\n' contents
  |> List.mapi (fun i l -> (i + 1, String.trim l))
  |> List.filter (fun (_, l) -> l <> "")

let parse_rows contents =
  List.map
    (fun (lineno, line) ->
      match split_fields line with
      | label :: (_ :: _ as values) ->
          let parse_float s =
            match float_of_string_opt s with
            | Some v -> v
            | None -> failwith (Printf.sprintf "line %d: not a number: %S" lineno s)
          in
          (lineno, label, Array.of_list (List.map parse_float values))
      | _ -> failwith (Printf.sprintf "line %d: expected label and at least one value" lineno))
    (non_blank_lines contents)

let build_label_map rows =
  List.fold_left
    (fun acc (_, label, _) -> if List.mem_assoc label acc then acc else acc @ [ (label, List.length acc) ])
    [] rows

let label_map contents = build_label_map (parse_rows contents)

let parse ~name contents =
  let rows = parse_rows contents in
  if rows = [] then failwith "empty dataset";
  let map = build_label_map rows in
  let _, _, first = List.hd rows in
  let len = Array.length first in
  List.iter
    (fun (lineno, _, v) ->
      if Array.length v <> len then
        failwith
          (Printf.sprintf "line %d: series length %d differs from %d" lineno (Array.length v) len))
    rows;
  let x = Array.of_list (List.map (fun (_, _, v) -> v) rows) in
  let y = Array.of_list (List.map (fun (_, l, _) -> List.assoc l map) rows) in
  Dataset.make ~name ~n_classes:(List.length map) ~x ~y

let read_whole_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let default_name path =
  let base = Filename.remove_extension (Filename.basename path) in
  (* strip UCR suffixes *)
  let strip suffix s =
    if Filename.check_suffix s suffix then Filename.chop_suffix s suffix else s
  in
  base |> strip "_TRAIN" |> strip "_TEST"

let load_file ?name path =
  let name = match name with Some n -> n | None -> default_name path in
  parse ~name (read_whole_file path)

let load_pair ~train ~test ~name =
  (* Parse jointly so the label map is shared. *)
  let combined = read_whole_file train ^ "\n" ^ read_whole_file test in
  parse ~name combined

let to_string (d : Dataset.t) =
  let buf = Buffer.create 4096 in
  Array.iteri
    (fun i series ->
      Buffer.add_string buf (string_of_int d.y.(i));
      Array.iter
        (fun v ->
          Buffer.add_char buf '\t';
          Buffer.add_string buf (Printf.sprintf "%.12g" v))
        series;
      Buffer.add_char buf '\n')
    d.x;
  Buffer.contents buf

let save_file d path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string d))
