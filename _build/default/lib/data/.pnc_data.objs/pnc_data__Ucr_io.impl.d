lib/data/ucr_io.ml: Array Buffer Dataset Filename Fun List Printf String
