lib/data/registry.ml: Generators Hashtbl List Pnc_util
