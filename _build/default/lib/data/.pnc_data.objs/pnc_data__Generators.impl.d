lib/data/generators.ml: Array Dataset Float Pnc_util
