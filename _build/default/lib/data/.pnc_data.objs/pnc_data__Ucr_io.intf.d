lib/data/ucr_io.mli: Dataset
