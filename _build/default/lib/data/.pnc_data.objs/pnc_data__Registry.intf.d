lib/data/registry.mli: Dataset Generators
