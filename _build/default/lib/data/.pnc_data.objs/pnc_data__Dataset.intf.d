lib/data/dataset.mli: Pnc_util
