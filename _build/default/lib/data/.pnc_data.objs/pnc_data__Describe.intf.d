lib/data/describe.mli: Dataset
