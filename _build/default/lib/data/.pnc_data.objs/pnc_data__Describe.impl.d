lib/data/describe.ml: Array Dataset Float Pnc_util Printf Stdlib String
