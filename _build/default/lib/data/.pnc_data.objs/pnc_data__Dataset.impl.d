lib/data/dataset.ml: Array Float Pnc_util
