lib/data/generators.mli: Dataset Pnc_util
