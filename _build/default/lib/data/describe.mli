(** Dataset diagnostics: the quantities to inspect before blaming a
    model — class balance, value ranges, per-class prototype
    separation, and a 1-nearest-neighbour reference accuracy that upper
    bounds what a tiny printed classifier can be expected to reach. *)

type stats = {
  name : string;
  n_samples : int;
  length : int;
  n_classes : int;
  class_counts : int array;
  value_min : float;
  value_max : float;
  mean_abs : float;
  (* Mean Euclidean distance between per-class mean series (prototype
     separation), and mean within-class distance to the own prototype
     (spread); their ratio is a crude separability index. *)
  between_class_distance : float;
  within_class_distance : float;
}

val stats : Dataset.t -> stats
val separability : stats -> float
(** [between / within]; > 1 means prototypes are farther apart than the
    classes are wide. *)

val nn_accuracy : ?seed:int -> Dataset.t -> float
(** 1-NN (Euclidean) accuracy after the standard preprocess/split — a
    dataset-difficulty reference, not a deployable model. *)

val report : ?seed:int -> Dataset.t -> string
(** Multi-line human-readable summary. *)
