module Rng = Pnc_util.Rng
module Vec = Pnc_util.Vec

type t = { name : string; n_classes : int; x : float array array; y : int array }

let make ~name ~n_classes ~x ~y =
  assert (Array.length x = Array.length y);
  assert (Array.length x > 0);
  let len = Array.length x.(0) in
  Array.iter (fun s -> assert (Array.length s = len)) x;
  Array.iter (fun l -> assert (l >= 0 && l < n_classes)) y;
  { name; n_classes; x; y }

let n_samples t = Array.length t.x
let length t = Array.length t.x.(0)

let class_counts t =
  let counts = Array.make t.n_classes 0 in
  Array.iter (fun l -> counts.(l) <- counts.(l) + 1) t.y;
  counts

let resize t len = { t with x = Array.map (fun s -> Vec.resample s len) t.x }
let normalize t = { t with x = Array.map (fun s -> Vec.normalize_range s) t.x }

let subset t idx =
  { t with x = Array.map (fun i -> t.x.(i)) idx; y = Array.map (fun i -> t.y.(i)) idx }

let shuffle rng t = subset t (Rng.permutation rng (n_samples t))

type split = { train : t; valid : t; test : t }

let split ?(fractions = (0.6, 0.2)) rng t =
  let f_train, f_valid = fractions in
  assert (f_train > 0. && f_valid >= 0. && f_train +. f_valid < 1.);
  let t = shuffle rng t in
  let n = n_samples t in
  let n_train = int_of_float (Float.round (f_train *. float_of_int n)) in
  let n_valid = int_of_float (Float.round (f_valid *. float_of_int n)) in
  let range a b = Array.init (b - a) (fun i -> a + i) in
  {
    train = subset t (range 0 n_train);
    valid = subset t (range n_train (n_train + n_valid));
    test = subset t (range (n_train + n_valid) n);
  }

let preprocess ?(length = 64) rng t = split rng (normalize (resize t length))

let concat a b =
  assert (a.n_classes = b.n_classes);
  assert (length a = length b);
  { a with x = Array.append a.x b.x; y = Array.append a.y b.y }

let map_series f t = { t with x = Array.map f t.x }
