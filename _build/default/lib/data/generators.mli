(** Synthetic stand-ins for the paper's 15 UCR benchmark datasets.

    The UCR archive is not redistributable inside this repository, so
    each benchmark is replaced by a parametric generator with the same
    class count and qualitatively similar temporal structure and
    difficulty (see DESIGN.md §1 for the substitution rationale). CBF
    follows the published Cylinder–Bell–Funnel construction, which is
    synthetic in the original archive as well.

    Every generator is deterministic given the [Rng.t] and emits
    approximately class-balanced samples of the requested [length]
    (before the common resize-to-64 preprocessing). *)

type gen = Pnc_util.Rng.t -> n:int -> length:int -> Dataset.t

val cbf : gen
(** Cylinder–Bell–Funnel, 3 classes. *)

val dptw : gen
(** Distal-phalanx bone outlines by tightness-of-width group, 6 classes. *)

val freezer : name:string -> separation:float -> gen
(** Freezer power curves, 2 classes; [separation] scales the
    between-class difference (FreezerRegularTrain vs SmallTrain reuse
    this family). *)

val gun_point : name:string -> separation:float -> noise:float -> gen
(** Gun-draw vs point motion profiles, 2 classes; the three paper
    variants (AgeSpan, MaleVersusFemale, OldVersusYoung) differ in
    separation and noise. *)

val mpoag : gen
(** Middle-phalanx outlines by age group, 3 classes. *)

val msrt : gen
(** Mixed shape prototypes, 5 classes, heavy intra-class warping. *)

val power_cons : gen
(** Household power consumption, warm vs cold season, 2 classes. *)

val ppoc : gen
(** Proximal-phalanx outline correct/incorrect, 2 classes, heavily
    overlapping. *)

val srscp2 : gen
(** Self-regulation of slow cortical potentials (EEG), 2 classes,
    near-chance difficulty. *)

val slope : gen
(** Trend-slope classification (down / flat / up), 3 classes. *)

val smooth_subspace : gen
(** Smooth low-dimensional subspace curves, 3 classes. *)

val symbols : gen
(** Pen-trajectory symbol profiles, 6 classes. *)
