module Rng = Pnc_util.Rng

type gen = Rng.t -> n:int -> length:int -> Dataset.t

(* ----------------------------------------------------------------------
   Waveform primitives. Series are built as functions of t in [0, 1). *)

let series length f = Array.init length (fun i -> f (float_of_int i /. float_of_int length))
let gauss_bump ~center ~width t = exp (-.(((t -. center) /. width) ** 2.))

let sigmoid_edge ~at ~steep t = 1. /. (1. +. exp (-.steep *. (t -. at)))

let add_noise rng sigma s = Array.map (fun x -> x +. Rng.gaussian ~sigma rng) s

(* Smooth random warping of the time axis: t -> t + sum of low-frequency
   sine perturbations. Used for intra-class variability. *)
let random_warp rng ~strength f =
  let a1 = Rng.uniform rng ~lo:(-.strength) ~hi:strength in
  let a2 = Rng.uniform rng ~lo:(-.strength) ~hi:strength in
  let p1 = Rng.uniform rng ~lo:0. ~hi:(2. *. Float.pi) in
  let p2 = Rng.uniform rng ~lo:0. ~hi:(2. *. Float.pi) in
  fun t ->
    let t' =
      t
      +. (a1 *. sin ((2. *. Float.pi *. t) +. p1))
      +. (a2 *. sin ((4. *. Float.pi *. t) +. p2))
    in
    f (Float.max 0. (Float.min 1. t'))

let balanced_label rng ~n_classes i =
  (* Mostly balanced with a touch of randomness so splits differ. *)
  if Rng.float rng 1. < 0.05 then Rng.int rng n_classes else i mod n_classes

let build rng ~name ~n_classes ~n ~length sample =
  let y = Array.init n (fun i -> balanced_label rng ~n_classes i) in
  let x = Array.map (fun label -> sample label) y in
  ignore length;
  Dataset.make ~name ~n_classes ~x ~y

(* ----------------------------------------------------------------------
   CBF: the classic Cylinder-Bell-Funnel generator. *)

let cbf rng ~n ~length =
  let sample label =
    let a = Rng.uniform rng ~lo:0.125 ~hi:0.25 in
    let b = a +. Rng.uniform rng ~lo:0.25 ~hi:0.6 in
    let amp = 6. +. Rng.gaussian rng in
    let shape t =
      if t < a || t > b then 0.
      else
        match label with
        | 0 -> amp (* cylinder *)
        | 1 -> amp *. ((t -. a) /. (b -. a)) (* bell *)
        | _ -> amp *. ((b -. t) /. (b -. a)) (* funnel *)
    in
    add_noise rng 1.0 (series length shape)
  in
  build rng ~name:"CBF" ~n_classes:3 ~n ~length sample

(* ----------------------------------------------------------------------
   Phalanx outline families: smooth arches whose curvature and secondary
   structure depend on the class. *)

let phalanx_arch rng ~width ~skew ~notch t =
  let arch = sin (Float.pi *. (t ** skew)) ** width in
  let notch_term = notch *. gauss_bump ~center:0.7 ~width:0.08 t in
  ignore rng;
  arch -. notch_term

let dptw rng ~n ~length =
  let sample label =
    let fl = float_of_int label in
    let width = 1.0 +. (0.45 *. fl) +. Rng.gaussian ~sigma:0.1 rng in
    let skew = 0.85 +. (0.05 *. fl) +. Rng.gaussian ~sigma:0.06 rng in
    let notch = 0.08 *. fl /. 5. in
    let f = random_warp rng ~strength:0.02 (phalanx_arch rng ~width:(Float.max 0.2 width) ~skew ~notch) in
    add_noise rng 0.06 (series length f)
  in
  build rng ~name:"DPTW" ~n_classes:6 ~n ~length sample

let mpoag rng ~n ~length =
  let sample label =
    let fl = float_of_int label in
    let width = 1.0 +. (0.5 *. fl) +. Rng.gaussian ~sigma:0.25 rng in
    let skew = 1.0 +. (0.12 *. fl) +. Rng.gaussian ~sigma:0.08 rng in
    let f = random_warp rng ~strength:0.025 (phalanx_arch rng ~width:(Float.max 0.2 width) ~skew ~notch:0.) in
    add_noise rng 0.07 (series length f)
  in
  build rng ~name:"MPOAG" ~n_classes:3 ~n ~length sample

let ppoc rng ~n ~length =
  let sample label =
    (* Correct outlines are clean arches; incorrect ones carry an extra
       irregular wiggle. Overlap is intentionally heavy. *)
    let width = 1.2 +. Rng.gaussian ~sigma:0.3 rng in
    let wiggle_amp = if label = 0 then 0.05 else 0.16 in
    let wf = Rng.uniform rng ~lo:5. ~hi:9. in
    let ph = Rng.uniform rng ~lo:0. ~hi:(2. *. Float.pi) in
    let f t =
      phalanx_arch rng ~width:(Float.max 0.2 width) ~skew:1.0 ~notch:0. t
      +. (wiggle_amp *. sin ((wf *. 2. *. Float.pi *. t) +. ph) *. sin (Float.pi *. t))
    in
    add_noise rng 0.12 (series length (random_warp rng ~strength:0.03 f))
  in
  build rng ~name:"PPOC" ~n_classes:2 ~n ~length sample

(* ----------------------------------------------------------------------
   Freezer power curves: compressor switch-on transient; the two
   conditions differ in plateau level and decay slope. *)

let freezer ~name ~separation rng ~n ~length =
  let sample label =
    let d = if label = 0 then 0. else separation in
    let plateau = 0.8 +. (0.25 *. d) +. Rng.gaussian ~sigma:0.05 rng in
    let decay = 2.0 +. (1.5 *. d) +. Rng.gaussian ~sigma:0.2 rng in
    let rise_at = 0.12 +. Rng.gaussian ~sigma:0.01 rng in
    let f t =
      let on = sigmoid_edge ~at:rise_at ~steep:60. t in
      let level = plateau *. exp (-.decay *. Float.max 0. (t -. rise_at)) in
      on *. (0.3 +. level)
    in
    add_noise rng 0.12 (series length (random_warp rng ~strength:0.03 f))
  in
  build rng ~name ~n_classes:2 ~n ~length sample

(* ----------------------------------------------------------------------
   Gun-draw vs point motion profiles. *)

let gun_point ~name ~separation ~noise rng ~n ~length =
  let sample label =
    let overshoot = if label = 0 then 0.05 else 0.05 +. (0.5 *. separation) in
    let hold = 0.85 +. Rng.gaussian ~sigma:0.04 rng in
    let up = 0.18 +. Rng.gaussian ~sigma:(0.015 +. (0.02 *. (1. -. separation))) rng in
    let down = 0.78 +. Rng.gaussian ~sigma:0.015 rng in
    let f t =
      let rise = sigmoid_edge ~at:up ~steep:35. t in
      let fall = sigmoid_edge ~at:down ~steep:35. t in
      (hold *. (rise -. fall))
      -. (overshoot *. gauss_bump ~center:(up -. 0.05) ~width:0.035 t)
      +. (overshoot *. 0.6 *. gauss_bump ~center:(down +. 0.06) ~width:0.04 t)
    in
    add_noise rng noise (series length (random_warp rng ~strength:0.012 f))
  in
  build rng ~name ~n_classes:2 ~n ~length sample

(* ----------------------------------------------------------------------
   Mixed shape prototypes (5 classes) with heavy intra-class warping. *)

let msrt rng ~n ~length =
  let sample label =
    let f t =
      match label with
      | 0 -> 1. -. (2. *. Float.abs (t -. 0.5)) (* triangle *)
      | 1 -> if t > 0.25 && t < 0.75 then 0.9 else 0.1 (* plateau *)
      | 2 ->
          gauss_bump ~center:0.3 ~width:0.09 t
          +. gauss_bump ~center:0.7 ~width:0.09 t (* double bump *)
      | 3 -> t (* ramp *)
      | _ -> 0.5 +. (0.45 *. sin (3. *. Float.pi *. t)) (* oscillation *)
    in
    let amp = 1. +. Rng.gaussian ~sigma:0.45 rng in
    let off = Rng.gaussian ~sigma:0.35 rng in
    let warped = random_warp rng ~strength:0.13 f in
    add_noise rng 0.4 (series length (fun t -> (amp *. warped t) +. off))
  in
  build rng ~name:"MSRT" ~n_classes:5 ~n ~length sample

(* ----------------------------------------------------------------------
   PowerCons: warm season (single evening peak) vs cold season (morning
   and evening peaks on a higher base). *)

let power_cons rng ~n ~length =
  let sample label =
    let evening = 0.75 +. Rng.gaussian ~sigma:0.08 rng in
    let morning = if label = 0 then 0.12 +. Rng.gaussian ~sigma:0.05 rng else 0.45 +. Rng.gaussian ~sigma:0.1 rng in
    let base = if label = 0 then 0.15 else 0.3 in
    let f t =
      base
      +. (morning *. gauss_bump ~center:0.3 ~width:0.07 t)
      +. (evening *. gauss_bump ~center:0.78 ~width:0.09 t)
    in
    add_noise rng 0.1 (series length (random_warp rng ~strength:0.025 f))
  in
  build rng ~name:"PowerCons" ~n_classes:2 ~n ~length sample

(* ----------------------------------------------------------------------
   SRSCP2: slow cortical potential drifts buried in EEG noise. *)

let srscp2 rng ~n ~length =
  let sample label =
    let drift = (if label = 0 then -0.25 else 0.25) +. Rng.gaussian ~sigma:0.28 rng in
    let alpha_amp = 0.5 +. Rng.float rng 0.5 in
    let alpha_f = Rng.uniform rng ~lo:6. ~hi:11. in
    let ph = Rng.uniform rng ~lo:0. ~hi:(2. *. Float.pi) in
    let f t = (drift *. t) +. (alpha_amp *. sin ((alpha_f *. 2. *. Float.pi *. t) +. ph)) in
    add_noise rng 0.55 (series length f)
  in
  build rng ~name:"SRSCP2" ~n_classes:2 ~n ~length sample

(* ----------------------------------------------------------------------
   Slope: trend direction classification. *)

let slope rng ~n ~length =
  let sample label =
    let k = (float_of_int label -. 1.) *. (0.9 +. Rng.gaussian ~sigma:0.15 rng) in
    let season_amp = 0.35 +. Rng.float rng 0.25 in
    let sf = Rng.uniform rng ~lo:2. ~hi:4. in
    let ph = Rng.uniform rng ~lo:0. ~hi:(2. *. Float.pi) in
    let f t = (k *. t) +. (season_amp *. sin ((sf *. 2. *. Float.pi *. t) +. ph)) in
    add_noise rng 0.15 (series length f)
  in
  build rng ~name:"Slope" ~n_classes:3 ~n ~length sample

(* ----------------------------------------------------------------------
   SmoothSubspace: each class is a fixed smooth basis curve plus small
   coefficient noise. *)

let smooth_subspace rng ~n ~length =
  let basis label t =
    match label with
    | 0 -> sin (Float.pi *. t)
    | 1 -> cos (2. *. Float.pi *. t)
    | _ -> sin (3. *. Float.pi *. t) *. (1. -. t)
  in
  let sample label =
    let c0 = 1. +. Rng.gaussian ~sigma:0.15 rng in
    let c_mix = Rng.gaussian ~sigma:0.3 rng in
    let other = (label + 1) mod 3 in
    let f t = (c0 *. basis label t) +. (c_mix *. basis other t) in
    add_noise rng 0.2 (series length f)
  in
  build rng ~name:"SmoothS" ~n_classes:3 ~n ~length sample

(* ----------------------------------------------------------------------
   Symbols: pen-trajectory-like profiles, 6 classes. *)

let symbols rng ~n ~length =
  let sample label =
    let f t =
      match label with
      | 0 -> sin (2. *. Float.pi *. t)
      | 1 -> sin (4. *. Float.pi *. t) *. sin (Float.pi *. t)
      | 2 -> (2. *. gauss_bump ~center:0.5 ~width:0.15 t) -. 1.
      | 3 -> Float.abs (sin (2. *. Float.pi *. t))
      | 4 -> (if t < 0.5 then sin (2. *. Float.pi *. t) else -1. +. (2. *. t)) (* hook *)
      | _ -> cos (3. *. Float.pi *. t) *. exp (-2. *. t)
    in
    let amp = 1. +. Rng.gaussian ~sigma:0.3 rng in
    let warped = random_warp rng ~strength:0.09 f in
    add_noise rng 0.3 (series length (fun t -> amp *. warped t))
  in
  build rng ~name:"Symbols" ~n_classes:6 ~n ~length sample
